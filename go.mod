module laminar

go 1.24
