// laminar is the command-line client: it wraps the dual-layer Client
// (Section 3.4) so PEs and workflows can be registered, searched and run
// against a laminar-server from the shell.
//
// Usage:
//
//	laminar -server http://127.0.0.1:8080 register <user> <password>
//	laminar -server ... -user u -password p register-pe <file.py> [description...]
//	laminar -server ... -user u -password p register-workflow <file.py> <name> [description...]
//	laminar -server ... -user u -password p run <name-or-file> [-input N] [-process MULTI] [-num 5]
//	laminar -server ... -user u -password p search <query> [-type pe|workflow|both] [-query text|semantic|code]
//	laminar -server ... -user u -password p list
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"laminar"
	"laminar/internal/core"
)

func main() {
	serverURL := flag.String("server", "http://127.0.0.1:8080", "Laminar server URL")
	user := flag.String("user", "", "user name (for authenticated commands)")
	password := flag.String("password", "", "password")
	input := flag.Int("input", 1, "run: producer iterations")
	process := flag.String("process", "SIMPLE", "run: mapping (SIMPLE, MULTI, MPI, REDIS)")
	num := flag.Int("num", 0, "run: process count for parallel mappings")
	seed := flag.Int64("seed", 0, "run: deterministic seed")
	searchType := flag.String("type", "both", "search: pe, workflow or both")
	queryType := flag.String("query", "text", "search: text, semantic or code")
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	cli := laminar.NewClient(*serverURL)
	login := func() {
		if *user == "" || *password == "" {
			log.Fatal("laminar: -user and -password are required for this command")
		}
		if err := cli.Login(*user, *password); err != nil {
			log.Fatalf("laminar: login: %v", err)
		}
	}

	switch args[0] {
	case "register":
		if len(args) != 3 {
			log.Fatal("usage: laminar register <user> <password>")
		}
		if err := cli.Register(args[1], args[2]); err != nil {
			log.Fatalf("laminar: %v", err)
		}
		fmt.Printf("registered user %q\n", args[1])

	case "register-pe":
		login()
		if len(args) < 2 {
			log.Fatal("usage: laminar register-pe <file.py> [description...]")
		}
		source, err := os.ReadFile(args[1])
		if err != nil {
			log.Fatalf("laminar: %v", err)
		}
		desc := strings.Join(args[2:], " ")
		recs, err := cli.RegisterPEs(string(source), desc)
		if err != nil {
			log.Fatalf("laminar: %v", err)
		}
		for _, rec := range recs {
			fmt.Printf("registered PE %q (id %d): %s\n", rec.PEName, rec.PEID, rec.Description)
		}

	case "register-workflow":
		login()
		if len(args) < 3 {
			log.Fatal("usage: laminar register-workflow <file.py> <name> [description...]")
		}
		source, err := os.ReadFile(args[1])
		if err != nil {
			log.Fatalf("laminar: %v", err)
		}
		desc := strings.Join(args[3:], " ")
		wf, err := cli.RegisterWorkflow(string(source), args[2], desc)
		if err != nil {
			log.Fatalf("laminar: %v", err)
		}
		fmt.Printf("registered workflow %q (id %d)\n", wf.EntryPoint, wf.WorkflowID)

	case "run":
		login()
		if len(args) != 2 {
			log.Fatal("usage: laminar run <name-or-file>")
		}
		target := args[1]
		var workflow any = target
		if data, err := os.ReadFile(target); err == nil {
			workflow = string(data)
		} else if id, err := strconv.Atoi(target); err == nil {
			workflow = id
		}
		opts := laminar.RunOptions{Input: *input, Process: *process, Seed: *seed}
		if *num > 0 {
			opts.Args = map[string]any{"num": *num}
		}
		resp, err := cli.Run(workflow, opts)
		if err != nil {
			log.Fatalf("laminar: %v", err)
		}
		fmt.Print(resp.Output)
		fmt.Print(resp.Summary)
		if len(resp.InstalledLibraries) > 0 {
			fmt.Printf("auto-installed: %v\n", resp.InstalledLibraries)
		}

	case "search":
		login()
		if len(args) < 2 {
			log.Fatal("usage: laminar search <query...>")
		}
		hits, err := cli.SearchRegistry(strings.Join(args[1:], " "),
			core.SearchType(*searchType), core.QueryType(*queryType))
		if err != nil {
			log.Fatalf("laminar: %v", err)
		}
		if len(hits) == 0 {
			fmt.Println("no results")
			return
		}
		for i, h := range hits {
			if h.Score != 0 {
				fmt.Printf("%2d. [%s %d] %-24s %.4f  %s\n", i+1, h.Kind, h.ID, h.Name, h.Score, h.Description)
			} else {
				fmt.Printf("%2d. [%s %d] %-24s %s\n", i+1, h.Kind, h.ID, h.Name, h.Description)
			}
		}

	case "list":
		login()
		listing, err := cli.GetRegistry()
		if err != nil {
			log.Fatalf("laminar: %v", err)
		}
		fmt.Printf("PEs (%d):\n", len(listing.PEs))
		for _, pe := range listing.PEs {
			fmt.Printf("  %3d %-24s %s\n", pe.PEID, pe.PEName, pe.Description)
		}
		fmt.Printf("Workflows (%d):\n", len(listing.Workflows))
		for _, wf := range listing.Workflows {
			fmt.Printf("  %3d %-24s %s\n", wf.WorkflowID, wf.EntryPoint, wf.Description)
		}

	default:
		log.Fatalf("laminar: unknown command %q", args[0])
	}
}
