// vo-service runs the Virtual Observatory simulator: the stand-in for the
// amiga.iaa.es VOTable service the astrophysics workflow (Section 5.2)
// queries. GET /votable?ra=<deg>&dec=<deg> returns a deterministic VOTable
// for the cone query after the configured latency.
//
// Usage:
//
//	vo-service -addr 127.0.0.1:9090 -latency 12ms
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"laminar/internal/votable"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9090", "listen address")
	latency := flag.Duration("latency", 12*time.Millisecond, "simulated service latency per request")
	flag.Parse()

	svc := votable.NewService(*latency)
	url, err := svc.Start(*addr)
	if err != nil {
		log.Fatalf("vo-service: %v", err)
	}
	log.Printf("vo-service: Virtual Observatory simulator at %s/votable?ra=<deg>&dec=<deg>", url)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	svc.Close()
}
