// laminar-server runs the Laminar API server: the registry (Section 3.1)
// plus the layered controller tree of Table 3, with an embedded execution
// engine for /execution/{user}/run.
//
// Usage:
//
//	laminar-server -addr 127.0.0.1:8080 -registry registry.json \
//	    -registry-latency 10ms -vo-url http://127.0.0.1:9090
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"laminar"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	registryPath := flag.String("registry", "", "snapshot file to load/persist the registry (optional)")
	storeFormat := flag.String("store", "v2", "on-disk registry format: v2 (streamed JSON + binary vector sidecar at <registry>-<sum>.vec) or v1 (legacy single JSON document); load auto-detects, so -store v2 migrates a v1 file on the first save")
	registryLatency := flag.Duration("registry-latency", 0, "simulated WAN latency of the remote registry")
	voURL := flag.String("vo-url", "", "Virtual Observatory simulator base URL (empty = offline catalog)")
	installScale := flag.Float64("install-scale", 1, "library install latency scale (0 disables simulated installs)")
	indexKind := flag.String("index", "flat", "vector index for semantic search: flat (exact) or clustered (IVF ANN)")
	indexCentroids := flag.Int("index-centroids", 0, "clustered index shard count (0 = auto ~sqrt(N))")
	indexNProbe := flag.Int("index-nprobe", 0, "shards probed per clustered query (0 = auto; >= centroids is exact)")
	flag.Parse()

	if *indexKind != "flat" && *indexKind != "clustered" {
		log.Fatalf("laminar-server: unknown -index %q (want flat or clustered)", *indexKind)
	}
	if *storeFormat != "v1" && *storeFormat != "v2" {
		log.Fatalf("laminar-server: unknown -store %q (want v1 or v2)", *storeFormat)
	}
	srv := laminar.NewServer(laminar.ServerOptions{
		RegistryLatency:   *registryLatency,
		VOBaseURL:         *voURL,
		InstallDelayScale: *installScale,
		RegistryPath:      *registryPath,
		StoreFormat:       *storeFormat,
		Index:             *indexKind,
		IndexCentroids:    *indexCentroids,
		IndexNProbe:       *indexNProbe,
	})
	url, err := srv.Start(*addr)
	if err != nil {
		log.Fatalf("laminar-server: %v", err)
	}
	log.Printf("laminar-server: serving the Laminar API at %s (vector index: %s)", url, srv.Registry().IndexName())
	if *registryPath != "" {
		how := "rebuilt (no usable index snapshot)"
		if srv.Registry().IndexesRestored() {
			how = "restored from snapshot, no retrain"
		}
		log.Printf("laminar-server: registry persisted to %s as %s (indexes %s)",
			*registryPath, srv.Registry().StoreFormat(), how)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	log.Printf("laminar-server: shutting down")
	// Drain first, save second: Close's graceful shutdown lets in-flight
	// writes finish (and be acknowledged), so the snapshot taken afterwards
	// contains them — saving before the drain would lose every write the
	// grace window accepts.
	srv.Close()
	if err := srv.SaveRegistry(); err != nil {
		log.Printf("laminar-server: saving registry: %v", err)
	}
	time.Sleep(50 * time.Millisecond)
}
