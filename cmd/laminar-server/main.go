// laminar-server runs the Laminar API server: the registry (Section 3.1)
// plus the layered controller tree of Table 3, with an embedded execution
// engine for /execution/{user}/run.
//
// Usage:
//
//	laminar-server -addr 127.0.0.1:8080 -registry registry.json \
//	    -registry-latency 10ms -vo-url http://127.0.0.1:9090
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"laminar"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	registryPath := flag.String("registry", "", "snapshot file to load/persist the registry (optional)")
	storeFormat := flag.String("store", "v2", "on-disk registry format: v2 (streamed JSON + binary vector sidecar at <registry>-<sum>.vec) or v1 (legacy single JSON document); load auto-detects, so -store v2 migrates a v1 file on the first save")
	registryLatency := flag.Duration("registry-latency", 0, "simulated WAN latency of the remote registry")
	voURL := flag.String("vo-url", "", "Virtual Observatory simulator base URL (empty = offline catalog)")
	installScale := flag.Float64("install-scale", 1, "library install latency scale (0 disables simulated installs)")
	indexKind := flag.String("index", "flat", "vector index for semantic search and code completion: flat (exact scan) or clustered (IVF ANN; tune with the -index-* knobs, see docs/search.md)")
	indexCentroids := flag.Int("index-centroids", 0, "clustered index shard count (0 = auto ~sqrt(N))")
	indexNProbe := flag.Int("index-nprobe", 0, "shards probed per clustered query (0 = auto = centroids/4; >= centroids is exact); with -index-recall-target set a nonzero value is the adaptive probe floor instead (auto floor is 1 — easy queries stop after a single shard)")
	indexRecallTarget := flag.Float64("index-recall-target", 0, "per-query adaptive probing aimed at this recall in (0,1]: shards are visited best-bound-first until the kth-best hit beats every unprobed shard's score bound (1.0 = provably exact, equals flat, unless -index-max-probe caps the scan); 0 keeps the fixed -index-nprobe policy")
	indexMaxProbe := flag.Int("index-max-probe", 0, "cap on shards an adaptive query may scan, a worst-case latency budget that overrides the recall target (0 = no cap)")
	indexSpill := flag.Float64("index-spill", 0, "spilled (overlapping) shard assignment: also replicate a vector into its second-nearest shard when that centroid is within (1+ratio)x the distance of its nearest (0 = off; 0.25 is a good start); changes the trained structure, so a mismatched snapshot rebuilds")
	indexOverfetch := flag.Int("index-overfetch", 0, "re-ranked candidate pool: probe for k*overfetch candidates with cheap partial scoring, then exact-rescore the pool before the top-k (<=1 = off; ignored at -index-recall-target 1.0)")
	flag.Parse()

	if *indexKind != "flat" && *indexKind != "clustered" {
		log.Fatalf("laminar-server: unknown -index %q (want flat or clustered)", *indexKind)
	}
	if *indexRecallTarget < 0 || *indexRecallTarget > 1 {
		log.Fatalf("laminar-server: -index-recall-target %g out of range (want 0, or a target in (0,1])", *indexRecallTarget)
	}
	if *indexSpill < 0 {
		log.Fatalf("laminar-server: -index-spill %g out of range (want >= 0)", *indexSpill)
	}
	if *storeFormat != "v1" && *storeFormat != "v2" {
		log.Fatalf("laminar-server: unknown -store %q (want v1 or v2)", *storeFormat)
	}
	srv := laminar.NewServer(laminar.ServerOptions{
		RegistryLatency:   *registryLatency,
		VOBaseURL:         *voURL,
		InstallDelayScale: *installScale,
		RegistryPath:      *registryPath,
		StoreFormat:       *storeFormat,
		Index:             *indexKind,
		IndexCentroids:    *indexCentroids,
		IndexNProbe:       *indexNProbe,
		IndexRecallTarget: *indexRecallTarget,
		IndexMaxProbe:     *indexMaxProbe,
		IndexSpill:        *indexSpill,
		IndexOverfetch:    *indexOverfetch,
	})
	url, err := srv.Start(*addr)
	if err != nil {
		log.Fatalf("laminar-server: %v", err)
	}
	log.Printf("laminar-server: serving the Laminar API at %s (vector index: %s)", url, srv.Registry().IndexName())
	if *registryPath != "" {
		how := "rebuilt (no usable index snapshot)"
		if srv.Registry().IndexesRestored() {
			how = "restored from snapshot, no retrain"
		}
		log.Printf("laminar-server: registry persisted to %s as %s (indexes %s)",
			*registryPath, srv.Registry().StoreFormat(), how)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	log.Printf("laminar-server: shutting down")
	// Drain first, save second: Close's graceful shutdown lets in-flight
	// writes finish (and be acknowledged), so the snapshot taken afterwards
	// contains them — saving before the drain would lose every write the
	// grace window accepts.
	srv.Close()
	if err := srv.SaveRegistry(); err != nil {
		log.Printf("laminar-server: saving registry: %v", err)
	}
	time.Sleep(50 * time.Millisecond)
}
