// laminar-server runs the Laminar API server: the registry (Section 3.1)
// plus the layered controller tree of Table 3, with an embedded execution
// engine for /execution/{user}/run and an optional operational telemetry
// endpoint (-metrics; see docs/operations.md).
//
// Usage:
//
//	laminar-server -addr 127.0.0.1:8080 -registry registry.json \
//	    -registry-latency 10ms -vo-url http://127.0.0.1:9090 -metrics
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"laminar"
)

func main() {
	cfg := registerFlags(flag.CommandLine)
	flag.Parse()
	if err := cfg.validate(); err != nil {
		log.Fatalf("laminar-server: %v", err)
	}
	srv := laminar.NewServer(cfg.serverOptions())
	url, err := srv.Start(cfg.addr)
	if err != nil {
		log.Fatalf("laminar-server: %v", err)
	}
	log.Printf("laminar-server: serving the Laminar API at %s (vector index: %s)", url, srv.Registry().IndexName())
	if cfg.metrics {
		log.Printf("laminar-server: telemetry exposed at %s/metrics", url)
	}
	if cfg.registryPath != "" {
		how := "rebuilt (no usable index snapshot)"
		if srv.Registry().IndexesRestored() {
			how = "restored from snapshot, no retrain"
		}
		log.Printf("laminar-server: registry persisted to %s as %s (indexes %s)",
			cfg.registryPath, srv.Registry().StoreFormat(), how)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	log.Printf("laminar-server: shutting down")
	// Drain first, save second: Close's graceful shutdown lets in-flight
	// writes finish (and be acknowledged), so the snapshot taken afterwards
	// contains them — saving before the drain would lose every write the
	// grace window accepts.
	srv.Close()
	if err := srv.SaveRegistry(); err != nil {
		log.Printf("laminar-server: saving registry: %v", err)
	}
	time.Sleep(50 * time.Millisecond)
}
