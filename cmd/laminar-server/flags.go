package main

import (
	"flag"
	"fmt"
	"net"
	"strings"
	"time"

	"laminar"
	"laminar/internal/cluster"
	"laminar/internal/core"
	"laminar/internal/dataflow"
)

// serverConfig holds every laminar-server flag value. Flag registration
// lives here, separate from main, so the help-text drift test can build
// the flag set without running a server and cross-check the `-index-*`
// knobs against the documented knob table in docs/search.md.
type serverConfig struct {
	addr            string
	registryPath    string
	storeFormat     string
	registryLatency time.Duration
	voURL           string
	installScale    float64
	metrics         bool

	metricsAuthToken string
	metricsAllow     string

	clusterPeers        string
	clusterShardTimeout time.Duration
	clusterHedgeDelay   time.Duration
	replica             bool

	indexKind            string
	indexCentroids       int
	indexNProbe          int
	indexRecallTarget    float64
	indexMaxProbe        int
	indexSpill           float64
	indexOverfetch       int
	indexQuantize        bool
	indexRetrainCooldown time.Duration

	searchMode string

	cacheSize       int
	clusterCacheTTL time.Duration

	deltaMaxSegments  int
	deltaCompactRatio float64

	flowQueueCap int
	flowAlloc    string
}

// registerFlags declares every laminar-server flag on fs. The `-index-*`
// descriptions must stay in agreement with the knob table in
// docs/search.md — TestIndexFlagsMatchDocumentedKnobs pins the two sets
// to each other.
func registerFlags(fs *flag.FlagSet) *serverConfig {
	c := &serverConfig{}
	fs.StringVar(&c.addr, "addr", "127.0.0.1:8080", "listen address")
	fs.StringVar(&c.registryPath, "registry", "", "snapshot file to load/persist the registry (optional)")
	fs.StringVar(&c.storeFormat, "store", "v2", "on-disk registry format: v2 (streamed JSON + binary vector sidecar at <registry>-<sum>.vec) or v1 (legacy single JSON document); load auto-detects, so -store v2 migrates a v1 file on the first save")
	fs.DurationVar(&c.registryLatency, "registry-latency", 0, "simulated WAN latency of the remote registry")
	fs.StringVar(&c.voURL, "vo-url", "", "Virtual Observatory simulator base URL (empty = offline catalog)")
	fs.Float64Var(&c.installScale, "install-scale", 1, "library install latency scale (0 disables simulated installs)")
	fs.BoolVar(&c.metrics, "metrics", false, "expose operational telemetry at GET /metrics (Prometheus text format; metric reference in docs/operations.md)")
	fs.StringVar(&c.metricsAuthToken, "metrics-auth-token", "", "bearer token required to scrape /metrics (empty = no token check; composes with -metrics-allow as OR)")
	fs.StringVar(&c.metricsAllow, "metrics-allow", "", "comma-separated CIDRs allowed to scrape /metrics without a token (e.g. 10.0.0.0/8,127.0.0.0/8; empty with no token = open)")
	fs.StringVar(&c.clusterPeers, "cluster-peers", "", "make this node a cluster coordinator over the listed shard nodes: name=primaryURL[|replicaURL...] comma-separated; semantic and code searches scatter-gather across the shards (see docs/cluster.md; shard nodes run without this flag)")
	fs.DurationVar(&c.clusterShardTimeout, "cluster-shard-timeout", 0, "per-shard deadline for coordinated searches; a shard past it costs coverage (degraded partial result), not availability (0 = 2s default)")
	fs.DurationVar(&c.clusterHedgeDelay, "cluster-hedge-delay", 0, "hedge a shard's read replica once its primary has been silent this long, first answer wins (0 = hedging off)")
	fs.BoolVar(&c.replica, "replica", false, "serve as a read-only query replica: the registry restores from -registry (v2 sidecar restores the trained indexes, no k-means) and every write is rejected with 403")
	fs.StringVar(&c.indexKind, "index", "flat", "vector index for semantic search and code completion: flat (exact scan) or clustered (IVF ANN; tune with the -index-* knobs, see docs/search.md)")
	fs.IntVar(&c.indexCentroids, "index-centroids", 0, "clustered index shard count at (re)train time (0 = auto ~sqrt(N))")
	fs.IntVar(&c.indexNProbe, "index-nprobe", 0, "fixed shards scanned per clustered query (0 = auto = centroids/4; >= centroids is exact); with -index-recall-target set a nonzero value is the adaptive probe floor instead (auto floor is 1 — easy queries stop after a single shard)")
	fs.Float64Var(&c.indexRecallTarget, "index-recall-target", 0, "per-query adaptive probing aimed at this recall in (0,1]: shards are visited best-first until the kth-best hit beats every unprobed shard's score bound (1.0 = provably exact, equals flat, unless -index-max-probe caps the scan); 0 keeps the fixed -index-nprobe policy")
	fs.IntVar(&c.indexMaxProbe, "index-max-probe", 0, "cap on shards an adaptive query may scan, a worst-case latency budget that overrides the recall target including 1.0's exactness (0 = no cap)")
	fs.Float64Var(&c.indexSpill, "index-spill", 0, "spilled (overlapping) shard assignment: also replicate a vector into its second-nearest shard when that centroid is within (1+ratio)x the distance of its nearest (0 = off; 0.25 is a good start); changes the trained structure, so a mismatched snapshot rebuilds")
	fs.IntVar(&c.indexOverfetch, "index-overfetch", 0, "re-ranked candidate pool: probe for k*overfetch candidates with cheap partial scoring, then exact-rescore the pool before the top-k (<=1 = off; ignored at -index-recall-target 1.0)")
	fs.BoolVar(&c.indexQuantize, "index-quantize", false, "int8 scalar quantization for the clustered candidate pass: maintain quantized companions of the stored vectors and score probed shards with cheap int8 dot products, always exact-rescoring the final top-k from float32 (off by default; bypassed at -index-recall-target 1.0, whose exactness needs exact scores)")
	fs.DurationVar(&c.indexRetrainCooldown, "index-retrain-cooldown", 0, "rate limit on automatic clustered retrains: triggers within this window of the last launch coalesce into one deferred retrain, so a churn burst cannot retrain back-to-back (0 = no limit; tuning guidance in docs/operations.md)")
	fs.StringVar(&c.searchMode, "search-mode", "ann", "default retrieval pipeline for semantic and code queries: ann (pure vector index), hybrid (ANN + BM25 lexical leg fused with reciprocal-rank fusion) or reranked (hybrid plus a cross-encoder rerank of the fused pool); requests override per query with the mode field (see docs/search.md)")
	fs.IntVar(&c.cacheSize, "cache-size", 0, "generation-tagged query-result cache capacity in entries (0 = off): repeated semantic/code queries are served from cache until a registry mutation or index retrain invalidates them (see docs/search.md; laminar_cache_* metrics in docs/operations.md)")
	fs.DurationVar(&c.clusterCacheTTL, "cluster-cache-ttl", 0, "staleness bound on a coordinator's fan-out cache — shard epochs are invisible to the coordinator, so its cached results expire by clock (0 = 2s default; negative disables the coordinator tier; needs -cache-size)")
	fs.IntVar(&c.deltaMaxSegments, "delta-max-segments", 0, "delta-journal segments allowed to accumulate before an incremental save compacts the chain into a full snapshot (0 = 64 default; see docs/storage.md)")
	fs.Float64Var(&c.deltaCompactRatio, "delta-compact-ratio", 0, "compact the delta chain once its on-disk size or the dirty record fraction exceeds this ratio of the base snapshot, in (0,1] (0 = 0.5 default)")
	fs.IntVar(&c.flowQueueCap, "flow-queue-cap", 0, "bound on each PE instance's input queue during workflow enactment; senders park when a downstream queue fills (0 = default 1024; see docs/dataflow.md)")
	fs.StringVar(&c.flowAlloc, "flow-alloc", "even", "instance division for parallel workflow mappings: even (the paper's split) or weighted (proportional to per-PE cost measured across runs; see docs/dataflow.md)")
	return c
}

// validate applies the same fail-fast range checks the façade panics on,
// as flag errors instead.
func (c *serverConfig) validate() error {
	if c.indexKind != "flat" && c.indexKind != "clustered" {
		return fmt.Errorf("unknown -index %q (want flat or clustered)", c.indexKind)
	}
	if c.indexRecallTarget < 0 || c.indexRecallTarget > 1 {
		return fmt.Errorf("-index-recall-target %g out of range (want 0, or a target in (0,1])", c.indexRecallTarget)
	}
	if c.indexSpill < 0 {
		return fmt.Errorf("-index-spill %g out of range (want >= 0)", c.indexSpill)
	}
	if c.indexRetrainCooldown < 0 {
		return fmt.Errorf("-index-retrain-cooldown %v out of range (want >= 0)", c.indexRetrainCooldown)
	}
	if c.storeFormat != "v1" && c.storeFormat != "v2" {
		return fmt.Errorf("unknown -store %q (want v1 or v2)", c.storeFormat)
	}
	if c.searchMode != core.ModeANN && c.searchMode != core.ModeHybrid && c.searchMode != core.ModeReranked {
		return fmt.Errorf("unknown -search-mode %q (want ann, hybrid or reranked)", c.searchMode)
	}
	if c.flowQueueCap < 0 {
		return fmt.Errorf("-flow-queue-cap %d out of range (want >= 0)", c.flowQueueCap)
	}
	if _, err := dataflow.ParseAllocMode(c.flowAlloc); err != nil {
		return fmt.Errorf("unknown -flow-alloc %q (want even or weighted)", c.flowAlloc)
	}
	if c.clusterPeers != "" {
		if _, err := cluster.ParseShards(c.clusterPeers); err != nil {
			return fmt.Errorf("-cluster-peers: %v", err)
		}
	}
	if c.clusterShardTimeout < 0 {
		return fmt.Errorf("-cluster-shard-timeout %v out of range (want >= 0)", c.clusterShardTimeout)
	}
	if c.clusterHedgeDelay < 0 {
		return fmt.Errorf("-cluster-hedge-delay %v out of range (want >= 0)", c.clusterHedgeDelay)
	}
	for _, cidr := range c.metricsAllowList() {
		if _, _, err := net.ParseCIDR(cidr); err != nil {
			return fmt.Errorf("-metrics-allow: bad CIDR %q", cidr)
		}
	}
	if c.replica && c.registryPath == "" {
		return fmt.Errorf("-replica needs -registry: a read-only replica serves a restored snapshot")
	}
	if c.cacheSize < 0 {
		return fmt.Errorf("-cache-size %d out of range (want >= 0)", c.cacheSize)
	}
	if c.deltaMaxSegments < 0 {
		return fmt.Errorf("-delta-max-segments %d out of range (want >= 0)", c.deltaMaxSegments)
	}
	if c.deltaCompactRatio < 0 || c.deltaCompactRatio > 1 {
		return fmt.Errorf("-delta-compact-ratio %g out of range (want 0, or a ratio in (0,1])", c.deltaCompactRatio)
	}
	return nil
}

// metricsAllowList splits the comma-separated -metrics-allow value.
func (c *serverConfig) metricsAllowList() []string {
	var out []string
	for _, cidr := range strings.Split(c.metricsAllow, ",") {
		if cidr = strings.TrimSpace(cidr); cidr != "" {
			out = append(out, cidr)
		}
	}
	return out
}

// serverOptions maps the parsed flags onto the façade's options.
func (c *serverConfig) serverOptions() laminar.ServerOptions {
	return laminar.ServerOptions{
		RegistryLatency:      c.registryLatency,
		VOBaseURL:            c.voURL,
		InstallDelayScale:    c.installScale,
		RegistryPath:         c.registryPath,
		StoreFormat:          c.storeFormat,
		Metrics:              c.metrics,
		Index:                c.indexKind,
		IndexCentroids:       c.indexCentroids,
		IndexNProbe:          c.indexNProbe,
		IndexRecallTarget:    c.indexRecallTarget,
		IndexMaxProbe:        c.indexMaxProbe,
		IndexSpill:           c.indexSpill,
		IndexOverfetch:       c.indexOverfetch,
		IndexQuantize:        c.indexQuantize,
		IndexRetrainCooldown: c.indexRetrainCooldown,
		SearchMode:           c.searchMode,
		FlowQueueCap:         c.flowQueueCap,
		FlowAlloc:            c.flowAlloc,
		MetricsAuthToken:     c.metricsAuthToken,
		MetricsAllow:         c.metricsAllowList(),
		ClusterPeers:         c.clusterPeers,
		ClusterShardTimeout:  c.clusterShardTimeout,
		ClusterHedgeDelay:    c.clusterHedgeDelay,
		ReadOnlyReplica:      c.replica,
		CacheSize:            c.cacheSize,
		ClusterCacheTTL:      c.clusterCacheTTL,
		DeltaMaxSegments:     c.deltaMaxSegments,
		DeltaCompactRatio:    c.deltaCompactRatio,
	}
}
