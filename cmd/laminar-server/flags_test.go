package main

import (
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// knobRowRE matches the first cell of a docs/search.md knob-table row,
// e.g. `| `-index-centroids` | ...`.
var knobRowRE = regexp.MustCompile("^`-(index-[a-z-]+)`$")

// TestIndexFlagsMatchDocumentedKnobs pins `laminar-server -h` to the knob
// table in docs/search.md: every `-index-*` flag the binary registers
// must have a row in the table, and every row in the table must be a
// registered flag. Help-text drift between the two was found by audit
// once; this keeps it from coming back.
func TestIndexFlagsMatchDocumentedKnobs(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "docs", "search.md"))
	if err != nil {
		t.Fatalf("reading the knob table's home: %v", err)
	}
	documented := map[string]bool{}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "|") {
			continue
		}
		cells := strings.Split(line, "|")
		if len(cells) < 2 {
			continue
		}
		if m := knobRowRE.FindStringSubmatch(strings.TrimSpace(cells[1])); m != nil {
			documented[m[1]] = true
		}
	}
	if len(documented) == 0 {
		t.Fatal("no `-index-*` knob rows found in docs/search.md — did the table move?")
	}

	fs := flag.NewFlagSet("laminar-server", flag.ContinueOnError)
	registerFlags(fs)
	registered := map[string]bool{}
	fs.VisitAll(func(f *flag.Flag) {
		if strings.HasPrefix(f.Name, "index-") {
			registered[f.Name] = true
			if strings.TrimSpace(f.Usage) == "" {
				t.Errorf("flag -%s has no help text", f.Name)
			}
		}
	})

	for name := range registered {
		if !documented[name] {
			t.Errorf("flag -%s is registered but has no row in docs/search.md's knob table", name)
		}
	}
	for name := range documented {
		if !registered[name] {
			t.Errorf("docs/search.md documents -%s but laminar-server does not register it", name)
		}
	}
}

// TestFlagValidation pins the fail-fast ranges so a typo'd deployment
// flag dies at startup, not at first query.
func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*serverConfig)
		ok   bool
	}{
		{"defaults", func(c *serverConfig) {}, true},
		{"clustered", func(c *serverConfig) { c.indexKind = "clustered" }, true},
		{"bad index kind", func(c *serverConfig) { c.indexKind = "ivf" }, false},
		{"target over 1", func(c *serverConfig) { c.indexRecallTarget = 1.5 }, false},
		{"negative spill", func(c *serverConfig) { c.indexSpill = -0.1 }, false},
		{"negative cooldown", func(c *serverConfig) { c.indexRetrainCooldown = -1 }, false},
		{"bad store", func(c *serverConfig) { c.storeFormat = "v3" }, false},
		{"hybrid search mode", func(c *serverConfig) { c.searchMode = "hybrid" }, true},
		{"reranked search mode", func(c *serverConfig) { c.searchMode = "reranked" }, true},
		{"bad search mode", func(c *serverConfig) { c.searchMode = "bm25" }, false},
	}
	for _, tc := range cases {
		fs := flag.NewFlagSet("laminar-server", flag.ContinueOnError)
		cfg := registerFlags(fs)
		tc.mut(cfg)
		if err := cfg.validate(); (err == nil) != tc.ok {
			t.Errorf("%s: validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}
