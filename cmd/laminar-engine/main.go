// laminar-engine runs a standalone remote Execution Engine (Section 3.3) —
// the deployment the paper packages as a Docker image on Azure App
// Services. It exposes the single POST /run endpoint and can inject a
// simulated WAN latency for the Table 5 remote-execution configuration.
//
// Usage:
//
//	laminar-engine -addr 127.0.0.1:8090 -wan-latency 25ms \
//	    -vo-url http://127.0.0.1:9090
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"

	"laminar/internal/engine"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8090", "listen address")
	wanLatency := flag.Duration("wan-latency", 0, "simulated WAN round trip per request")
	voURL := flag.String("vo-url", "", "Virtual Observatory simulator base URL (empty = offline catalog)")
	installScale := flag.Float64("install-scale", 1, "library install latency scale")
	flag.Parse()

	eng := engine.New(engine.Config{
		VOBaseURL:         *voURL,
		InstallDelayScale: *installScale,
	})
	rs := engine.NewRemoteServer(eng, *wanLatency)
	url, err := rs.Start(*addr)
	if err != nil {
		log.Fatalf("laminar-engine: %v", err)
	}
	log.Printf("laminar-engine: serverless Execution Engine at %s/run", url)
	log.Printf("laminar-engine: installed libraries: %v", eng.Env().Installed())

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	rs.Close()
}
