// laminar-bench regenerates the paper's evaluation (Section 6) as text:
// Table 5 (execution latency), Table 6 (zero-shot text-to-code search),
// Table 7 (zero-shot clone detection), the figures (1, 6-9) and the two
// design ablations.
//
// Usage:
//
//	laminar-bench               # everything
//	laminar-bench -table 6      # one table
//	laminar-bench -figures      # figures only
//	laminar-bench -searchbench  # Flat vs Clustered vector-index comparison
//	laminar-bench -persistbench # index persistence + background-retrain cold start
package main

import (
	"flag"
	"fmt"
	"log"

	"laminar/internal/bench"
	"laminar/internal/index"
)

func main() {
	table := flag.Int("table", 0, "run only this table (5, 6 or 7)")
	figures := flag.Bool("figures", false, "run only the figures")
	ablations := flag.Bool("ablations", false, "run only the ablations")
	searchBench := flag.Bool("searchbench", false, "run only the vector-index comparison (Flat vs Clustered), the recall-vs-latency knob frontier, and the hybrid-retrieval quality table (pure-ANN vs hybrid RRF vs cross-encoder reranked, with an adversarial exact-identifier query set)")
	searchSmoke := flag.Bool("searchbench-smoke", false, "run the fast CI recall gate: tiny corpus, fails when tuned recall@10 drops below 0.9, behind the fixed-nprobe baseline, when target 1.0 stops being exact, or when hybrid retrieval falls behind pure ANN on exact-identifier queries")
	indexNProbe := flag.Int("index-nprobe", 0, "shards probed per clustered query in -searchbench (0 = auto; a nonzero value is the adaptive floor when -index-recall-target is set)")
	indexRecallTarget := flag.Float64("index-recall-target", 0, "adaptive probe recall target in (0,1] for -searchbench (0 = fixed nprobe)")
	indexMaxProbe := flag.Int("index-max-probe", 0, "adaptive probe budget cap for -searchbench (0 = no cap)")
	indexSpill := flag.Float64("index-spill", 0, "spilled-shard ratio for -searchbench (0 = off)")
	indexOverfetch := flag.Int("index-overfetch", 0, "re-rank pool widening factor for -searchbench (<=1 = off)")
	indexQuantize := flag.Bool("index-quantize", false, "int8-quantized candidate scoring for -searchbench (final top-k is always exact-rescored)")
	vecBench := flag.Bool("vecbench", false, "run only the scoring-kernel throughput table (scalar vs vecmath, float32 vs int8) plus batched-vs-sequential search timing")
	frontierSize := flag.Int("frontier-size", 10000, "corpus size for the -searchbench knob frontier (0 disables the sweep)")
	persistBench := flag.Bool("persistbench", false, "run only the index persistence + background-retrain benchmark, plus the churn table: delta-journal save cost per churn fraction and the query-cache hit-rate curve on a repeated workload")
	persistSize := flag.Int("persist-size", 10000, "registry size (PEs) for -persistbench")
	persistSmoke := flag.Bool("persistbench-smoke", false, "run the ingestion CI gate: at 5k PEs a 10% churn delta save must cost < 50% of a full save, the repeated-query cache hit rate must reach 0.8, a mutation must invalidate cached results, and a delta chain must reload losslessly")
	metricsSmoke := flag.Bool("metrics-smoke", false, "run the telemetry CI gate: boot a metrics-enabled server on a corpus, issue searches, scrape /metrics, and fail when the probe/route histograms are empty, the exposition stops parsing, or the runbook's metric names drift from the live endpoint")
	metricsSmokeDoc := flag.String("metrics-smoke-doc", "docs/operations.md", "runbook whose metric names -metrics-smoke validates against the live endpoint")
	flowBench := flag.Bool("flowbench", false, "run only the dataflow-engine benchmark: one skewed 4-PE streaming pipeline through all four mappings plus a cost-weighted MULTI run, with a throughput/latency/allocation/backpressure table (reading guide in docs/dataflow.md)")
	flowRecords := flag.Int("flow-records", 0, "records the -flowbench source emits (0 = default 4000)")
	flowProcesses := flag.Int("flow-processes", 0, "process budget for every -flowbench mapping (0 = default 8)")
	flowQueueCap := flag.Int("flow-queue-cap", 0, "per-instance input queue bound for -flowbench (0 = default 256)")
	flowSmoke := flag.Bool("flowbench-smoke", false, "run the dataflow CI gate: all four mappings on a small skewed pipeline, asserting identical output multisets, populated laminar_flow_* telemetry, a bounded queue high-water mark, a settled queue gauge, and a 400 for cyclic workflow registration")
	clusterBench := flag.Bool("clusterbench", false, "run only the cluster benchmark: in-process shard nodes behind a scatter-gather coordinator, with single-node vs 3-shard latency, a replica failover row, and a kill-a-node degraded-mode row (reading guide in docs/cluster.md)")
	clusterSmoke := flag.Bool("clusterbench-smoke", false, "run the cluster CI gate: small sharded corpus, failing when the 3-shard p50 exceeds 1.3x the single-node baseline at 3x the corpus, when the merged ranking drifts from a global exact scan, when replica failover degrades, or when a killed shard errors instead of degrading")
	flag.Parse()

	all := *table == 0 && !*figures && !*ablations && !*searchBench && !*persistBench && !*searchSmoke && !*metricsSmoke && !*vecBench && !*flowBench && !*flowSmoke && !*clusterBench && !*clusterSmoke && !*persistSmoke

	if all || *table == 5 {
		res, err := bench.RunTable5(bench.DefaultTable5Options())
		if err != nil {
			log.Fatalf("table 5: %v", err)
		}
		fmt.Println(res.Render())
	}
	if all || *table == 6 {
		res, err := bench.RunTable6(bench.DefaultTable6Options())
		if err != nil {
			log.Fatalf("table 6: %v", err)
		}
		fmt.Println(res.Render())
	}
	if all || *table == 7 {
		res, err := bench.RunTable7(bench.DefaultTable7Options())
		if err != nil {
			log.Fatalf("table 7: %v", err)
		}
		fmt.Println(res.Render())
	}
	if all || *figures {
		f1, err := bench.Figure1()
		if err != nil {
			log.Fatalf("figure 1: %v", err)
		}
		fmt.Println(f1)
		sc, err := bench.NewShowcase()
		if err != nil {
			log.Fatalf("showcase: %v", err)
		}
		defer sc.Close()
		for _, fig := range []func() (string, error){
			func() (string, error) { return bench.Figure6(sc.Client) },
			func() (string, error) { return bench.Figure7(sc.Client) },
			func() (string, error) { return bench.Figure8(sc.Client) },
			func() (string, error) { return bench.Figure9(sc.Client) },
		} {
			out, err := fig()
			if err != nil {
				log.Fatalf("figure: %v", err)
			}
			fmt.Println(out)
		}
	}
	if all || *searchBench {
		sb, err := bench.RunSearchBench(nil, 0, index.ClusteredConfig{
			NProbe:       *indexNProbe,
			RecallTarget: *indexRecallTarget,
			MaxProbe:     *indexMaxProbe,
			SpillRatio:   *indexSpill,
			Overfetch:    *indexOverfetch,
			Quantize:     *indexQuantize,
		})
		if err != nil {
			log.Fatalf("search bench: %v", err)
		}
		fmt.Println(sb.Render())
		if *frontierSize > 0 {
			fr, err := bench.RunSearchFrontier(*frontierSize, 0)
			if err != nil {
				log.Fatalf("search frontier: %v", err)
			}
			fmt.Println(fr.Render())
		}
		hq, err := bench.RunHybridQuality(0, 0)
		if err != nil {
			log.Fatalf("hybrid quality: %v", err)
		}
		fmt.Println(hq.Render())
	}
	if *vecBench {
		out, err := bench.RunVecBench()
		if out != "" {
			fmt.Println(out)
		}
		if err != nil {
			log.Fatalf("vecbench: %v", err)
		}
	}
	if *searchSmoke {
		summary, err := bench.RunSearchSmoke()
		fmt.Println(summary)
		if err != nil {
			log.Fatalf("searchbench-smoke: %v", err)
		}
	}
	if *metricsSmoke {
		summary, err := bench.RunMetricsSmoke(*metricsSmokeDoc)
		if summary != "" {
			fmt.Println(summary)
		}
		if err != nil {
			log.Fatalf("metrics-smoke: %v", err)
		}
	}
	if all || *flowBench {
		fb, err := bench.RunFlowBench(bench.FlowBenchOptions{
			Records:   *flowRecords,
			Processes: *flowProcesses,
			QueueCap:  *flowQueueCap,
		})
		if err != nil {
			log.Fatalf("flowbench: %v", err)
		}
		fmt.Println(fb.Render())
	}
	if *flowSmoke {
		summary, err := bench.RunFlowSmoke()
		if summary != "" {
			fmt.Println(summary)
		}
		if err != nil {
			log.Fatalf("flowbench-smoke: %v", err)
		}
	}
	if all || *clusterBench {
		cb, err := bench.RunClusterBench()
		if err != nil {
			log.Fatalf("clusterbench: %v", err)
		}
		fmt.Println(cb.Render())
	}
	if *clusterSmoke {
		summary, err := bench.RunClusterSmoke()
		if summary != "" {
			fmt.Println(summary)
		}
		if err != nil {
			log.Fatalf("clusterbench-smoke: %v", err)
		}
	}
	if all || *persistBench {
		pb, err := bench.RunPersistBench(*persistSize, 0)
		if err != nil {
			log.Fatalf("persist bench: %v", err)
		}
		fmt.Println(pb.Render())
		cb, err := bench.RunChurnBench(*persistSize / 2)
		if err != nil {
			log.Fatalf("churn bench: %v", err)
		}
		fmt.Println(cb.Render())
	}
	if *persistSmoke {
		summary, err := bench.RunPersistSmoke()
		if summary != "" {
			fmt.Println(summary)
		}
		if err != nil {
			log.Fatalf("persistbench-smoke: %v", err)
		}
	}
	if all || *ablations {
		bv, err := bench.RunBiVsCross(61, 1)
		if err != nil {
			log.Fatalf("bi-vs-cross: %v", err)
		}
		fmt.Println(bv.Render())
		er, err := bench.RunEmbeddingReuse(61, 3)
		if err != nil {
			log.Fatalf("embedding reuse: %v", err)
		}
		fmt.Println(er.Render())
	}
}
