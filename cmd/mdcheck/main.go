// mdcheck lints the repository's Markdown: every relative link must point
// at an existing file and every heading anchor must resolve. `make docs`
// runs it (and `make verify` includes it), so documentation drift fails the
// build alongside vet and gofmt.
//
// Usage:
//
//	mdcheck [root]
//
// root defaults to the current directory.
package main

import (
	"fmt"
	"os"

	"laminar/internal/mdcheck"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	probs, err := mdcheck.Check(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mdcheck: %v\n", err)
		os.Exit(2)
	}
	for _, p := range probs {
		fmt.Println(p)
	}
	if len(probs) > 0 {
		fmt.Fprintf(os.Stderr, "mdcheck: %d broken reference(s)\n", len(probs))
		os.Exit(1)
	}
}
