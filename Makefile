# Tier-1 verification plus the fast static gates (vet + gofmt + docs), so
# formatting, vet and documentation regressions fail before review.
# `make verify` is the one-shot pre-commit check.

GO ?= go

.PHONY: build test vet fmt-check docs bench verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt: the following files need formatting:"; \
		echo "$$out"; \
		exit 1; \
	fi

# docs lints every Markdown file: relative links must resolve to existing
# files and heading anchors must exist, so stale docs fail fast.
docs:
	$(GO) run ./cmd/mdcheck .

bench:
	$(GO) test -bench=. -benchtime=1x -run XXX .

verify: build vet fmt-check docs test
