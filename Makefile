# Tier-1 verification plus the fast static gates (vet + gofmt), so
# formatting and vet regressions fail before review. `make verify` is the
# one-shot pre-commit check.

GO ?= go

.PHONY: build test vet fmt-check bench verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt: the following files need formatting:"; \
		echo "$$out"; \
		exit 1; \
	fi

bench:
	$(GO) test -bench=. -benchtime=1x -run XXX .

verify: build vet fmt-check test
