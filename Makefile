# Tier-1 verification plus the fast static gates (vet + gofmt + docs), so
# formatting, vet and documentation regressions fail before review.
# `make verify` is the one-shot pre-commit check.

GO ?= go

# The packages whose concurrency actually matters (sharded registry store,
# vector indexes with background retrains, HTTP serving layer, the four
# dataflow mappings and the Redis transport under them) run under the race
# detector; running the whole tree under -race would double the verify wall
# clock for packages with no shared state.
RACE_PKGS = ./internal/registry/... ./internal/index ./internal/server ./internal/telemetry ./internal/dataflow ./internal/resp ./internal/redisserver ./internal/cluster ./internal/lexical ./internal/search ./internal/qcache

# The hybrid-retrieval and persistence packages carry a statement-coverage
# floor: their test walls (BM25/RRF properties, tokenizer and delta-segment
# fuzz seeds, rerank goldens, crash-consistency torture tests) are the only
# thing standing between a scoring or durability regression and silent data
# loss, so `make verify` fails if coverage decays below this.
COVER_FLOOR = 85
COVER_PKGS = ./internal/lexical ./internal/search ./internal/registry/storage ./internal/qcache

.PHONY: build test vet fmt-check docs bench race purego cover-check searchbench-smoke metrics-smoke flowbench-smoke clusterbench-smoke persistbench-smoke verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt: the following files need formatting:"; \
		echo "$$out"; \
		exit 1; \
	fi

# docs lints every Markdown file: relative links must resolve to existing
# files and heading anchors must exist, so stale docs fail fast.
docs:
	$(GO) run ./cmd/mdcheck .

bench:
	$(GO) test -bench=. -benchtime=1x -run XXX . ./internal/vecmath

# purego re-runs the scoring-kernel suites with the assembly and
# unrolled kernels swapped out for their portable twins, so the fallback
# path non-amd64 builds take is tested on every verify, not just on
# exotic hardware.
purego:
	$(GO) test -tags purego ./internal/vecmath ./internal/index

# race runs the concurrency-heavy packages under the race detector; the
# registry stress test (concurrent AddPE/RemovePE/Search/Save) is its
# main customer.
race:
	$(GO) test -race $(RACE_PKGS)

# cover-check enforces the COVER_FLOOR statement-coverage floor on the
# hybrid-retrieval packages listed in COVER_PKGS.
cover-check:
	@fail=0; for pkg in $(COVER_PKGS); do \
		out="$$($(GO) test -cover $$pkg)" || { echo "$$out"; exit 1; }; \
		pct="$$(echo "$$out" | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p')"; \
		echo "$$pkg coverage: $$pct% (floor $(COVER_FLOOR)%)"; \
		if [ -z "$$pct" ] || [ "$$(echo "$$pct $(COVER_FLOOR)" | awk '{print ($$1 >= $$2) ? 1 : 0}')" != "1" ]; then \
			echo "cover-check: $$pkg coverage $$pct% is below the $(COVER_FLOOR)% floor"; fail=1; \
		fi; \
	done; exit $$fail

# searchbench-smoke is the fast recall gate: a tiny corpus of real
# description embeddings, hard floors on the tuned recall engine (recall@10
# >= 0.9, never behind the fixed-nprobe baseline, RecallTarget=1.0 exactly
# matches Flat). Seconds of wall clock, so recall regressions fail in CI,
# not in a quarterly benchmark run.
searchbench-smoke:
	$(GO) run ./cmd/laminar-bench -searchbench-smoke

# metrics-smoke is the telemetry gate: boot a metrics-enabled server on a
# realistic corpus, issue searches over HTTP, scrape /metrics, and fail
# when the probe/route histograms come back empty, the exposition stops
# parsing, or docs/operations.md and the live endpoint disagree about
# which metrics exist. Keeps the runbook's metric reference honest.
metrics-smoke:
	$(GO) run ./cmd/laminar-bench -metrics-smoke

# flowbench-smoke is the dataflow gate: run one skewed 4-PE streaming
# pipeline through all four mappings (plus a cost-weighted MULTI run),
# asserting identical output multisets, populated laminar_flow_* telemetry,
# a queue high-water mark bounded by QueueCap x instances, a settled
# queue-depth gauge, and that a cyclic workflow is refused at registration
# with HTTP 400 naming the defect.
flowbench-smoke:
	$(GO) run ./cmd/laminar-bench -flowbench-smoke

# clusterbench-smoke is the distributed-serving gate: partition a small
# corpus across three in-process shard nodes behind a scatter-gather
# coordinator and fail when the 3-shard p50 exceeds 1.3x the single-node
# baseline at 3x the corpus, when the merged top-10 drifts from a global
# exact scan, when a killed primary's read replica fails to take over
# cleanly, or when a killed replica-less shard produces errors instead of
# flagged partial results.
clusterbench-smoke:
	$(GO) run ./cmd/laminar-bench -clusterbench-smoke

# persistbench-smoke is the durability gate: drive a churning registry
# through delta saves, compare delta-save vs full-save latency and bytes,
# force a compaction, crash-reload through the journal chain, and fail when
# the reloaded state diverges from the live one, when delta saves stop
# being cheaper than full saves, or when compaction never triggers.
persistbench-smoke:
	$(GO) run ./cmd/laminar-bench -persistbench-smoke

verify: build vet fmt-check docs test race purego cover-check searchbench-smoke metrics-smoke flowbench-smoke clusterbench-smoke persistbench-smoke
