package laminar

import (
	"fmt"
	"os"
	"reflect"
	"strings"
	"testing"
	"time"
)

// isPrimeTemplate stamps out distinct PE classes for index-scale tests; the
// single %d becomes the class-name suffix.
const isPrimeTemplate = `
class Check%d(IterativePE):
    def __init__(self):
        IterativePE.__init__(self)
    def _process(self, num):
        if num >= 2 and all(num %% i != 0 for i in range(2, num)):
            return num
`

const isPrimeWorkflow = `
import random

class NumberProducer(ProducerPE):
    def __init__(self):
        ProducerPE.__init__(self)
    def _process(self):
        return random.randint(1, 1000)

class IsPrime(IterativePE):
    def __init__(self):
        IterativePE.__init__(self)
    def _process(self, num):
        if num >= 2 and all(num % i != 0 for i in range(2, num)):
            return num

class PrintPrime(ConsumerPE):
    def __init__(self):
        ConsumerPE.__init__(self)
    def _process(self, num):
        print("the num %s is prime" % num)

pe1 = NumberProducer()
pe2 = IsPrime()
pe3 = PrintPrime()
graph = WorkflowGraph()
graph.connect(pe1, 'output', pe2, 'input')
graph.connect(pe2, 'output', pe3, 'input')
`

// TestFacadeEndToEnd drives the public API exactly as the README shows.
func TestFacadeEndToEnd(t *testing.T) {
	srv := NewServer(ServerOptions{})
	url, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cli := NewClient(url)
	if err := cli.Register("zz46", "password"); err != nil {
		t.Fatal(err)
	}
	resp, err := cli.Run(isPrimeWorkflow, RunOptions{
		Input:   10,
		Process: "MULTI",
		Args:    map[string]any{"num": 5},
		Seed:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Summary, "mapping=MULTI") {
		t.Errorf("summary: %s", resp.Summary)
	}
	// run() auto-registered the workflow under an inferred name derived
	// from its first PE class.
	hits, err := cli.SearchRegistry("number producer", SearchWorkflows, QueryText)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Error("auto-registered workflow should be text-searchable")
	}
	hits, err = cli.SearchRegistry("a PE that checks whether numbers are prime", SearchPEs, QuerySemantic)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 || !strings.Contains(hits[0].Name, "Prime") {
		t.Errorf("semantic hits: %+v", hits)
	}
}

// TestFacadeRegistryPersistence verifies the RegistryPath round trip.
func TestFacadeRegistryPersistence(t *testing.T) {
	path := t.TempDir() + "/registry.json"
	srv := NewServer(ServerOptions{RegistryPath: path})
	url, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cli := NewClient(url)
	if err := cli.Register("ann", "pw"); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.RegisterWorkflow(isPrimeWorkflow, "isPrime", "primes"); err != nil {
		t.Fatal(err)
	}
	if err := srv.SaveRegistry(); err != nil {
		t.Fatal(err)
	}
	srv.Close()

	srv2 := NewServer(ServerOptions{RegistryPath: path})
	url2, err := srv2.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	cli2 := NewClient(url2)
	if err := cli2.Login("ann", "pw"); err != nil {
		t.Fatalf("credentials lost across restart: %v", err)
	}
	wf, err := cli2.GetWorkflow("isPrime")
	if err != nil || wf.EntryPoint != "isPrime" {
		t.Fatalf("workflow lost across restart: %v %v", wf, err)
	}
	// the reloaded workflow still executes
	if _, err := cli2.Run("isPrime", RunOptions{Input: 2, Seed: 5}); err != nil {
		t.Fatalf("reloaded workflow does not run: %v", err)
	}
}

// TestFacadeClusteredRestartRestoresIndex is the deployment-level restart
// guarantee: a clustered laminar-server saves its registry, and the next
// process restores the trained index structure from the snapshot — semantic
// answers are identical and nothing was retrained.
func TestFacadeClusteredRestartRestoresIndex(t *testing.T) {
	path := t.TempDir() + "/registry.json"
	opts := ServerOptions{RegistryPath: path, Index: "clustered", IndexCentroids: 8, IndexNProbe: 2}
	srv := NewServer(opts)
	url, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cli := NewClient(url)
	if err := cli.Register("ann", "pw"); err != nil {
		t.Fatal(err)
	}
	// Enough PEs that the clustered index actually trains (>= 64 vectors).
	for i := 0; i < 70; i++ {
		src := fmt.Sprintf(isPrimeTemplate, i)
		if _, err := cli.RegisterPE(src, fmt.Sprintf("Check%d", i),
			fmt.Sprintf("checks property number %d of an integer stream", i)); err != nil {
			t.Fatal(err)
		}
	}
	srv.Registry().WaitIndexReady()
	before, err := cli.SearchRegistry("checks an integer property", SearchPEs, QuerySemantic)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.SaveRegistry(); err != nil {
		t.Fatal(err)
	}
	srv.Close()

	srv2 := NewServer(opts)
	if !srv2.Registry().IndexesRestored() {
		t.Fatal("restart rebuilt the indexes instead of restoring the snapshot")
	}
	url2, err := srv2.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	cli2 := NewClient(url2)
	if err := cli2.Login("ann", "pw"); err != nil {
		t.Fatal(err)
	}
	after, err := cli2.SearchRegistry("checks an integer property", SearchPEs, QuerySemantic)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("semantic answers changed across restart:\n before %+v\n after  %+v", before, after)
	}
}

// TestFacadeCorruptRegistryRefusesToStart: a damaged registry file must
// abort startup — booting empty would let the shutdown Save overwrite a
// recoverable file with nothing.
func TestFacadeCorruptRegistryRefusesToStart(t *testing.T) {
	path := t.TempDir() + "/registry.json"
	if err := os.WriteFile(path, []byte(`{"users": [truncated`), 0o644); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewServer started over a corrupt registry file")
		}
	}()
	NewServer(ServerOptions{RegistryPath: path})
}

// TestFacadeRemoteEngine wires the Table 5 remote configuration through the
// public constructors.
func TestFacadeRemoteEngine(t *testing.T) {
	srv := NewServer(ServerOptions{})
	url, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	rs, engineURL, err := NewRemoteEngine("", 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()

	cli := NewClient(url)
	cli.RemoteEngineURL = engineURL
	if err := cli.Register("bob", "pw"); err != nil {
		t.Fatal(err)
	}
	resp, err := cli.Run(isPrimeWorkflow, RunOptions{Input: 3, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if resp.DurationMS <= 0 {
		t.Error("remote engine reported no duration")
	}
}

// TestFacadeVOService checks the VO constructor used by the astrophysics
// example.
func TestFacadeVOService(t *testing.T) {
	svc, voURL, err := NewVOService(time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if !strings.HasPrefix(voURL, "http://") {
		t.Errorf("vo url: %s", voURL)
	}
	eng := NewLocalEngine(voURL)
	if eng == nil {
		t.Fatal("nil engine")
	}
}
