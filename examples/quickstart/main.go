// Quickstart: boot a Laminar deployment in-process, register a user, run a
// three-PE streaming workflow serverlessly, and print the engine's output —
// the end-to-end path of Fig. 9 in five minutes.
package main

import (
	"fmt"
	"log"

	"laminar"
)

// workflowSource is the IsPrime pipeline of the paper's Listing 3, written
// in the pycode dialect the execution engine interprets.
const workflowSource = `
import random

class NumberProducer(ProducerPE):
    def __init__(self):
        ProducerPE.__init__(self)
    def _process(self):
        # Generate a random number
        result = random.randint(1, 1000)
        # Return the number as the output
        return result

class IsPrime(IterativePE):
    def __init__(self):
        IterativePE.__init__(self)
    def _process(self, num):
        print("before checking data - %s - is prime or not" % num)
        if num >= 2 and all(num % i != 0 for i in range(2, num)):
            return num

class PrintPrime(ConsumerPE):
    def __init__(self):
        ConsumerPE.__init__(self)
    def _process(self, num):
        print("the num %s is prime" % num)

pe1 = NumberProducer()
pe2 = IsPrime()
pe3 = PrintPrime()
graph = WorkflowGraph()
graph.connect(pe1, 'output', pe2, 'input')
graph.connect(pe2, 'output', pe3, 'input')
`

func main() {
	// 1. Start a full Laminar deployment (registry + API server + engine).
	srv := laminar.NewServer(laminar.ServerOptions{})
	url, err := srv.Start("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Println("Laminar server:", url)

	// 2. Register a user, exactly as the paper's client does.
	cli := laminar.NewClient(url)
	if err := cli.Register("zz46", "password"); err != nil {
		log.Fatal(err)
	}

	// 3. Run the workflow serverlessly: 5 iterations, Multi mapping with 5
	//    processes (Listing 4). run() auto-registers the workflow and PEs.
	resp, err := cli.Run(workflowSource, laminar.RunOptions{
		Input:   5,
		Process: "MULTI",
		Args:    map[string]any{"num": 5},
		Seed:    20,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 4. The output sent from the Execution Engine to the Client (Fig. 9).
	fmt.Println("---- engine output ----")
	fmt.Print(resp.Output)
	fmt.Print(resp.Summary)

	// 5. Everything was registered along the way.
	listing, err := cli.GetRegistry()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registry now holds %d PEs and %d workflow(s)\n",
		len(listing.PEs), len(listing.Workflows))
}
