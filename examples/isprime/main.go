// IsPrime: the Fig. 1 / Listings 1-4 showcase. Builds the three-PE
// workflow, prints the abstract→concrete expansion for five processes, and
// enacts it under all four dispel4py mappings (Simple, Multi, MPI, Redis),
// demonstrating that every mapping computes the same stream.
package main

import (
	"fmt"
	"log"

	"laminar/internal/dataflow"
	"laminar/internal/pype"
)

const source = `
import random

class NumberProducer(ProducerPE):
    def __init__(self):
        ProducerPE.__init__(self)
    def _process(self):
        return random.randint(1, 1000)

class IsPrime(IterativePE):
    def __init__(self):
        IterativePE.__init__(self)
    def _process(self, num):
        if num >= 2 and all(num % i != 0 for i in range(2, num)):
            return num

class PrintPrime(ConsumerPE):
    def __init__(self):
        ConsumerPE.__init__(self)
    def _process(self, num):
        print("the num %s is prime" % num)

pe1 = NumberProducer()
pe2 = IsPrime()
pe3 = PrintPrime()
graph = WorkflowGraph()
graph.connect(pe1, 'output', pe2, 'input')
graph.connect(pe2, 'output', pe3, 'input')
`

func main() {
	// Abstract → concrete expansion (Fig. 1): the user describes the green
	// graph; enactment derives the blue one.
	build, err := pype.BuildWorkflow(source, pype.Options{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	plan, err := dataflow.NewPlan(build.Graph, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(plan.Describe())

	// Enact under every mapping. The seed fixes the producer's stream so
	// all mappings print the same primes (order may differ in parallel
	// mappings).
	for _, mapping := range []dataflow.Mapping{
		dataflow.MappingSimple,
		dataflow.MappingMulti,
		dataflow.MappingMPI,
		dataflow.MappingRedis,
	} {
		build, err := pype.BuildWorkflow(source, pype.Options{Seed: 42})
		if err != nil {
			log.Fatal(err)
		}
		result, err := dataflow.Run(build.Graph, dataflow.Options{
			Mapping:    mapping,
			Iterations: 10,
			Processes:  5,
		})
		if err != nil {
			log.Fatalf("%s: %v", mapping, err)
		}
		fmt.Printf("==== mapping %s (%.2f ms) ====\n", mapping,
			float64(result.Duration.Microseconds())/1000)
		fmt.Print(result.StdoutText)
	}
}
