// Astrophysics: the Section 5.2 Internal Extinction workflow. A Virtual
// Observatory simulator serves VOTable cone queries; the four-PE pipeline
// (readRaDec → getVoTable → filterColumns → internalExt) computes the dust
// extinction within each galaxy. The run ships a coordinates file as a
// staged resource and uses the Redis parallel mapping, as Listing 7 does.
package main

import (
	"fmt"
	"log"
	"time"

	"laminar"
	"laminar/internal/astro"
)

const workflowSource = `
import vo
import astropy
import astro

class ReadRaDec(IterativePE):
    def __init__(self):
        IterativePE.__init__(self)
    def _process(self, filename):
        text = open(filename).read()
        coords = astro.parse_coordinates(text)
        for c in coords:
            self.write("output", [c[0], c[1]])

class GetVOTable(IterativePE):
    def __init__(self):
        IterativePE.__init__(self)
    def _process(self, coord):
        # download the VOTable for this coordinate from the VO service
        return vo.get_votable(coord[0], coord[1])

class FilterColumns(IterativePE):
    def __init__(self):
        IterativePE.__init__(self)
    def _process(self, xml):
        table = astropy.parse_votable(xml)
        filtered = table.filter_columns(["Name", "Mtype", "logR25"])
        name = filtered.rows[0][0]
        mtype = int(filtered.rows[0][1])
        logr = float(filtered.rows[0][2])
        return [name, mtype, logr]

class InternalExtinction(IterativePE):
    def __init__(self):
        IterativePE.__init__(self)
    def _process(self, rec):
        a_int = astro.internal_extinction(rec[1], rec[2])
        print("%s  T=%d  logR25=%.4f  A_int=%.4f mag" % (rec[0], rec[1], rec[2], a_int))
        return a_int

graph = WorkflowGraph()
rd = ReadRaDec()
gv = GetVOTable()
fc = FilterColumns()
ie = InternalExtinction()
graph.connect(rd, 'output', gv, 'input')
graph.connect(gv, 'output', fc, 'input')
graph.connect(fc, 'output', ie, 'input')
`

func main() {
	// 1. Start the Virtual Observatory simulator (the amiga.iaa.es
	//    substitution) with a realistic per-query latency.
	vos, voURL, err := laminar.NewVOService(10 * time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	defer vos.Close()
	fmt.Println("Virtual Observatory:", voURL)

	// 2. Start Laminar pointing its engine at the VO service.
	srv := laminar.NewServer(laminar.ServerOptions{VOBaseURL: voURL})
	url, err := srv.Start("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	cli := laminar.NewClient(url)
	if err := cli.Register("rf208", "password"); err != nil {
		log.Fatal(err)
	}

	// 3. Register the workflow under a name (Listing 5) so it can be
	//    retrieved later (Listing 6).
	if _, err := cli.RegisterWorkflow(workflowSource, "Astrophysics",
		"A workflow to compute the internal extinction of galaxies"); err != nil {
		log.Fatal(err)
	}

	// 4. Execute with the Redis mapping and staged resources (Listing 7).
	coords := astro.GenerateCoordinates(10, 2026)
	resp, err := cli.Run("Astrophysics", laminar.RunOptions{
		Input:     []any{map[string]any{"input": "coordinates.txt"}},
		Process:   "REDIS",
		Args:      map[string]any{"num": 10},
		Resources: map[string]string{"coordinates.txt": coords},
		Seed:      7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("---- engine output ----")
	fmt.Print(resp.Output)
	fmt.Print(resp.Summary)
	if len(resp.InstalledLibraries) > 0 {
		fmt.Printf("auto-installed libraries: %v\n", resp.InstalledLibraries)
	}
}
