// Word count: the Listing 2 showcase. A stateful CountWords PE declares a
// group-by on the first tuple element — the MapReduce-style routing that
// sends every occurrence of a word to the same PE instance — accumulates
// counts in per-instance state, and emits the totals at end of stream via
// the _postprocess hook. Run under the parallel Multi mapping, the
// per-instance counts always reassemble into exact global counts because
// group-by never splits a word across instances.
package main

import (
	"fmt"
	"log"
	"sort"

	"laminar/internal/dataflow"
	"laminar/internal/pype"
)

const source = `
import random
from collections import defaultdict

class WordProducer(ProducerPE):
    def __init__(self):
        ProducerPE.__init__(self)
        self.words = ["stream", "data", "flow", "serverless", "registry", "laminar"]
    def _process(self):
        word = random.choice(self.words)
        # Tuples with shape (word, 1); grouping routes by element 0
        return (word, 1)

class CountWords(GenericPE):
    def __init__(self):
        GenericPE.__init__(self)
        # Add an input port named "input"; data is group-by (MapReduce)
        # the first element (index 0) of the tuples
        self._add_input("input", grouping=[0])
        # Add an output port named "output"
        self._add_output("output")
        # Initialize a stateful variable to store word counts
        self.count = defaultdict(int)
    def _process(self, inputs):
        # Extract word and count from the input
        word, count = inputs['input']
        # Update the count for the word
        self.count[word] += count
    def _postprocess(self):
        # End of stream: emit this instance's totals
        for word in self.count.keys():
            self.write("output", (word, self.count[word]))

graph = WorkflowGraph()
wp = WordProducer()
cw = CountWords()
graph.connect(wp, 'output', cw, 'input')
`

func main() {
	const iterations = 120
	build, err := pype.BuildWorkflow(source, pype.Options{Seed: 99})
	if err != nil {
		log.Fatal(err)
	}
	result, err := dataflow.Run(build.Graph, dataflow.Options{
		Mapping:    dataflow.MappingMulti,
		Iterations: iterations,
		Processes:  6,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("processed %d words across %d CountWords instances (Multi mapping)\n",
		result.Processed("CountWords"), result.Alloc["CountWords"])

	// Reassemble the per-instance emissions into global counts.
	counts := map[string]int64{}
	var total int64
	for _, v := range result.Outputs("CountWords.output") {
		rec := v.([]any)
		word := rec[0].(string)
		n := rec[1].(int64)
		counts[word] += n
		total += n
	}
	words := make([]string, 0, len(counts))
	for w := range counts {
		words = append(words, w)
	}
	sort.Strings(words)
	for _, w := range words {
		fmt.Printf("  %-12s %4d\n", w, counts[w])
	}
	fmt.Printf("total %d (must equal the %d produced records)\n", total, iterations)
	if total != iterations {
		log.Fatalf("count mismatch: %d != %d", total, iterations)
	}
}
