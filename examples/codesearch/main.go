// Code search: the Figures 6-8 walkthrough. Populates a registry with the
// paper's scenario (5 workflows, 22+ PEs, some auto-summarized), then runs
// all three search mechanisms: text-based partial matching, semantic code
// search over description embeddings (unixcoder-code-search), and
// retrieval-based code completion over code embeddings (ReACC-py-retriever).
package main

import (
	"fmt"
	"log"

	"laminar/internal/bench"
	"laminar/internal/core"
)

func main() {
	sc, err := bench.NewShowcase()
	if err != nil {
		log.Fatal(err)
	}
	defer sc.Close()
	pes, wfs, err := sc.Counts()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registry populated: %d PEs, %d workflows\n\n", pes, wfs)

	// Figure 6: text-based search with partial matching — 'prime' matches
	// the workflow named 'isPrime'.
	f6, err := bench.Figure6(sc.Client)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(f6)

	// Figure 7: semantic code search — natural language ranked against
	// stored description embeddings by cosine similarity.
	f7, err := bench.Figure7(sc.Client)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(f7)

	// Figure 8: code completion — a partial snippet ranked against stored
	// code embeddings.
	f8, err := bench.Figure8(sc.Client)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(f8)

	// Beyond the paper's figures: a free-form semantic query.
	hits, err := sc.Client.SearchRegistry(
		"a stateful PE that counts how often each word appears",
		core.SearchPEs, core.QuerySemantic)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("bonus semantic query: 'a stateful PE that counts how often each word appears'")
	for i, h := range hits[:min(5, len(hits))] {
		fmt.Printf("  %d. %-24s %.4f  %s\n", i+1, h.Name, h.Score, h.Description)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
