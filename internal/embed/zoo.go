package embed

import (
	"fmt"
	"sort"
	"sync"
)

// Model ids for every model evaluated in the paper (Tables 6 and 7) plus
// the summarization model. Names match the HuggingFace ids in the paper.
const (
	ModelUnixcoderBase  = "microsoft/unixcoder-base"
	ModelCodeSearch     = "Lazyhope/unixcoder-nine-advtest"    // unixcoder-code-search
	ModelCloneDetection = "Lazyhope/unixcoder-clone-detection" // unixcoder-clone-detection
	ModelReACC          = "microsoft/reacc-py-retriever"       // ReACC-py-retriever
	ModelCodeBERT       = "microsoft/codebert-base"
	ModelGraphCodeBERT  = "microsoft/graphcodebert-base"
	ModelBGELargeEN     = "BAAI/bge-large-en"
	ModelGTELarge       = "thenlper/gte-large"
)

// zooConfigs capture each transformer's behaviour profile:
//
//   - unixcoder-base: code-pretrained (identifier splitting, keyword
//     down-weighting) but NOT aligned across modalities → mid text-to-code.
//   - unixcoder-code-search: + cross-modal alignment, low noise — the
//     fine-tuning on AdvTest (Section 2.6/6.2.1).
//   - unixcoder-clone-detection: tuned for code-to-code: strong subtoken
//     semantics, mild lexical features; best MAP@100 in Table 7.
//   - ReACC-py-retriever: retrieval-augmented completion retriever —
//     dominated by lexical char-4-gram features; best Precision@1.
//   - CodeBERT: NL-first tokenizer fragments code (heavy dropout, high
//     noise) → worst in Table 7.
//   - GraphCodeBERT: dataflow-aware pretraining → better than CodeBERT.
//   - bge-large-en: strong general text embedder; decent zero-shot.
//   - gte-large: general text embedder that fragments code harder.
var zooConfigs = []Config{
	{
		Name:             ModelUnixcoderBase,
		Seed:             0xA11CE,
		SplitIdentifiers: true,
		DropStopwords:    true,
		KeywordWeight:    0.4,
		Noise:            1.10,
	},
	{
		Name:             ModelCodeSearch,
		Seed:             0xA11CE, // shares pretrained space with the base model
		SplitIdentifiers: true,
		KeywordWeight:    0.4,
		DropStopwords:    true,
		Align:            CrossModalLexicon,
		AlignWeight:      1.0,
		Noise:            0.35,
	},
	{
		Name:             ModelCloneDetection,
		Seed:             0xA11CE,
		SplitIdentifiers: true,
		KeywordWeight:    0.6,
		CharNGram:        3,
		NGramWeight:      1.0,
		NumberWeight:     1.55,
		Noise:            0.86,
	},
	{
		Name:             ModelReACC,
		Seed:             0x5EACC,
		SplitIdentifiers: true,
		KeywordWeight:    0.8,
		CharNGram:        4,
		NGramWeight:      2.4,
		Noise:            0.28,
	},
	{
		Name:             ModelCodeBERT,
		Seed:             0xC0DEB,
		SplitIdentifiers: false,
		TokenDropout:     0.45,
		Noise:            1.6,
	},
	{
		Name:             ModelGraphCodeBERT,
		Seed:             0x9CB,
		SplitIdentifiers: true,
		KeywordWeight:    0.7,
		TokenDropout:     0.15,
		Noise:            0.85,
	},
	{
		Name:             ModelBGELargeEN,
		Seed:             0xB9E,
		SplitIdentifiers: true,
		DropStopwords:    true,
		TokenDropout:     0.10,
		CharNGram:        4,
		NGramWeight:      0.5,
		Noise:            0.55,
	},
	{
		Name:             ModelGTELarge,
		Seed:             0x97E,
		SplitIdentifiers: false,
		DropStopwords:    true,
		TokenDropout:     0.40,
		Noise:            1.25,
	},
}

var (
	zooOnce sync.Once
	zoo     map[string]*Model
)

func buildZoo() {
	zoo = make(map[string]*Model, len(zooConfigs))
	for _, cfg := range zooConfigs {
		zoo[cfg.Name] = New(cfg)
	}
}

// Lookup returns the named model from the zoo.
func Lookup(name string) (*Model, error) {
	zooOnce.Do(buildZoo)
	m, ok := zoo[name]
	if !ok {
		return nil, fmt.Errorf("embed: unknown model %q", name)
	}
	return m, nil
}

// MustLookup panics on unknown model names (for package wiring).
func MustLookup(name string) *Model {
	m, err := Lookup(name)
	if err != nil {
		panic(err)
	}
	return m
}

// ModelNames lists every model in the zoo, sorted.
func ModelNames() []string {
	zooOnce.Do(buildZoo)
	names := make([]string, 0, len(zoo))
	for n := range zoo {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
