package embed

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in    string
		split bool
		want  []string
	}{
		{"check if a number is prime", false, []string{"check", "if", "a", "number", "is", "prime"}},
		{"getVoTable", true, []string{"get", "vo", "table"}},
		{"snake_case_name", true, []string{"snake", "case", "name"}},
		{"HTTPServer2", true, []string{"http", "server", "2"}},
		{"random.randint(1, 1000)", true, []string{"random", "randint", "1", "1000"}},
		{"snake_case_name", false, []string{"snake_case_name"}},
	}
	for _, c := range cases {
		got := Tokenize(c.in, c.split)
		if len(got) != len(c.want) {
			t.Errorf("Tokenize(%q, %v) = %v, want %v", c.in, c.split, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Tokenize(%q)[%d] = %q, want %q", c.in, i, got[i], c.want[i])
			}
		}
	}
}

func TestEmbeddingsAreUnitVectors(t *testing.T) {
	for _, name := range ModelNames() {
		m := MustLookup(name)
		for _, text := range []string{
			"check if a number is prime",
			"def f(x):\n    return x * 2",
			"",
			"a",
		} {
			v := m.Embed(text)
			if len(v) != Dim {
				t.Fatalf("%s: dim %d", name, len(v))
			}
			var norm float64
			for _, x := range v {
				norm += float64(x) * float64(x)
			}
			if math.Abs(math.Sqrt(norm)-1) > 1e-3 {
				t.Errorf("%s: |v| = %f for %q", name, math.Sqrt(norm), text)
			}
		}
	}
}

func TestEmbeddingsDeterministic(t *testing.T) {
	m := MustLookup(ModelCodeSearch)
	a := m.Embed("reverse a string")
	b := m.Embed("reverse a string")
	if Cosine(a, b) < 0.9999 {
		t.Error("same input must embed identically")
	}
}

func TestRelatedTextsScoreHigherThanUnrelated(t *testing.T) {
	m := MustLookup(ModelCodeSearch)
	query := m.Embed("check if a number is prime")
	related := m.Embed("def check_prime(num):\n    return all(num % i != 0 for i in range(2, num))")
	unrelated := m.Embed("def read_file(path):\n    f = open(path)\n    return f.read()")
	if Cosine(query, related) <= Cosine(query, unrelated) {
		t.Errorf("related %.3f should beat unrelated %.3f",
			Cosine(query, related), Cosine(query, unrelated))
	}
}

func TestAlignmentBridgesParaphrases(t *testing.T) {
	// The fine-tuned model must map 'verify'→'check'; the base model keeps
	// them apart — the Table 6 mechanism.
	tuned := MustLookup(ModelCodeSearch)
	base := MustLookup(ModelUnixcoderBase)
	code := "def check_prime(num):\n    return all(num % i != 0 for i in range(2, num))"
	para := "verify that an integer is prime"

	tunedGap := Cosine(tuned.Embed(para), tuned.Embed(code))
	baseGap := Cosine(base.Embed(para), base.Embed(code))
	if tunedGap <= baseGap {
		t.Errorf("fine-tuned similarity %.3f should exceed base %.3f", tunedGap, baseGap)
	}
}

func TestIdentifierSplittingSurvivesRenames(t *testing.T) {
	// Models with identifier splitting keep similarity under renames.
	m := MustLookup(ModelCloneDetection)
	a := m.Embed("def solve(n):\n    total = 0\n    for i in range(n):\n        total += i\n    return total")
	b := m.Embed("def answer(n):\n    total = 0\n    for x in range(n):\n        total += x\n    return total")
	c := m.Embed("def parse_json(text):\n    import json\n    return json.loads(text)")
	if Cosine(a, b) <= Cosine(a, c) {
		t.Errorf("renamed clone %.3f should beat unrelated %.3f", Cosine(a, b), Cosine(a, c))
	}
}

func TestRankOrdersByScore(t *testing.T) {
	m := MustLookup(ModelCodeSearch)
	q := m.Embed("sort a list ascending")
	cands := []Vector{
		m.Embed("def delete_space(text):\n    return text.replace(' ', '')"),
		m.Embed("def sort_ascending(items):\n    out = list(items)\n    out.sort()\n    return out"),
		m.Embed("def get_first(items):\n    return items[0]"),
	}
	idxs, scores := Rank(q, cands)
	if idxs[0] != 1 {
		t.Errorf("top hit = %d (scores %v)", idxs[0], scores)
	}
	for i := 1; i < len(scores); i++ {
		if scores[i] > scores[i-1] {
			t.Errorf("scores not descending: %v", scores)
		}
	}
}

func TestLookupErrors(t *testing.T) {
	if _, err := Lookup("no/such-model"); err == nil {
		t.Error("unknown model should fail")
	}
	if len(ModelNames()) != 8 {
		t.Errorf("zoo size = %d, want 8", len(ModelNames()))
	}
}

func TestCrossEncoderPrefersTrueMatch(t *testing.T) {
	ce := NewCrossEncoder(MustLookup(ModelCodeSearch))
	query := "calculate the factorial of a number"
	candidates := []string{
		"def reverse_string(text):\n    return text[::-1]",
		"def calculate_factorial(n):\n    result = 1\n    for i in range(2, n + 1):\n        result *= i\n    return result",
		"def read_file(path):\n    return open(path).read()",
	}
	idxs, _ := ce.RankStrings(query, candidates)
	if idxs[0] != 1 {
		t.Errorf("cross-encoder top hit = %d", idxs[0])
	}
}

// Property: cosine similarity of any two embeddings stays within [-1, 1].
func TestCosineBounded(t *testing.T) {
	m := MustLookup(ModelReACC)
	f := func(a, b string) bool {
		c := Cosine(m.Embed(a), m.Embed(b))
		return c >= -1.0001 && c <= 1.0001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: embedding is invariant to leading/trailing whitespace of the
// whole text modulo the noise component's text-dependence — so check only
// the token-dominant low-noise model.
func TestCharNGrams(t *testing.T) {
	grams := charNGrams("abc def", 4)
	if len(grams) != 4 {
		t.Errorf("grams: %v", grams)
	}
	if grams[0] != "abc " {
		t.Errorf("first gram: %q", grams[0])
	}
	if got := charNGrams("ab", 4); len(got) != 1 || got[0] != "ab" {
		t.Errorf("short input: %v", got)
	}
	if got := charNGrams("", 4); got != nil {
		t.Errorf("empty input: %v", got)
	}
}
