// Package embed provides the deterministic embedding-model substrate that
// substitutes for the transformer models Laminar uses (UnixCoder, ReACC,
// CodeBERT, GraphCodeBERT, bge, gte). Each model maps text (natural language
// or code) to a unit vector; semantic search and code completion rank
// candidates by cosine similarity, exactly as the paper's bi-encoder
// architecture does (Section 2.4). Models are configured with the properties
// the paper attributes to them — cross-modal alignment for the fine-tuned
// code-search model, strong lexical n-gram features for the ReACC retriever,
// NL-oriented tokenization for bge/gte — so the relative results of Tables 6
// and 7 are reproduced without GPU inference.
package embed

import (
	"strings"
	"unicode"
)

// pythonKeywords get down-weighted by code-aware models: they carry little
// distinguishing signal between snippets.
var pythonKeywords = map[string]bool{
	"def": true, "class": true, "return": true, "if": true, "elif": true,
	"else": true, "while": true, "for": true, "in": true, "import": true,
	"from": true, "self": true, "none": true, "true": true, "false": true,
	"and": true, "or": true, "not": true, "pass": true, "break": true,
	"continue": true, "print": true, "range": true, "len": true, "init": true,
}

// nlStopwords are filtered by models with NL-oriented preprocessing.
var nlStopwords = map[string]bool{
	"a": true, "an": true, "the": true, "is": true, "are": true, "was": true,
	"to": true, "of": true, "and": true, "or": true, "that": true,
	"this": true, "it": true, "in": true, "on": true, "for": true,
	"with": true, "how": true, "do": true, "i": true, "you": true,
	"can": true, "be": true, "my": true, "me": true, "does": true,
	"what": true, "when": true, "which": true, "python": true,
}

// Tokenize splits text into word tokens: identifiers are split on camelCase
// and snake_case boundaries when splitIdentifiers is set, everything is
// lowercased, and punctuation becomes separators.
func Tokenize(text string, splitIdentifiers bool) []string {
	var tokens []string
	var cur []rune
	flush := func() {
		if len(cur) == 0 {
			return
		}
		word := string(cur)
		cur = cur[:0]
		if splitIdentifiers {
			for _, part := range splitIdentifier(word) {
				tokens = append(tokens, strings.ToLower(part))
			}
		} else {
			tokens = append(tokens, strings.ToLower(word))
		}
	}
	for _, r := range text {
		if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' {
			cur = append(cur, r)
		} else {
			flush()
		}
	}
	flush()
	return tokens
}

// splitIdentifier breaks fooBarBaz / foo_bar_baz / HTTPServer2 into parts.
func splitIdentifier(word string) []string {
	var parts []string
	var cur []rune
	runes := []rune(word)
	for i, r := range runes {
		switch {
		case r == '_':
			if len(cur) > 0 {
				parts = append(parts, string(cur))
				cur = cur[:0]
			}
		case unicode.IsUpper(r):
			// boundary at lower→Upper and at Upper followed by lower inside
			// an uppercase run (HTTPServer → HTTP, Server).
			if len(cur) > 0 {
				prev := runes[i-1]
				nextLower := i+1 < len(runes) && unicode.IsLower(runes[i+1])
				if unicode.IsLower(prev) || unicode.IsDigit(prev) || (unicode.IsUpper(prev) && nextLower) {
					parts = append(parts, string(cur))
					cur = cur[:0]
				}
			}
			cur = append(cur, r)
		case unicode.IsDigit(r):
			if len(cur) > 0 && !unicode.IsDigit(runes[i-1]) {
				parts = append(parts, string(cur))
				cur = cur[:0]
			}
			cur = append(cur, r)
		default:
			cur = append(cur, r)
		}
	}
	if len(cur) > 0 {
		parts = append(parts, string(cur))
	}
	if len(parts) == 0 {
		return []string{word}
	}
	return parts
}

// charNGrams returns the character n-grams of the (whitespace-normalized)
// text. Lexical models use these to detect near-verbatim code reuse.
func charNGrams(text string, n int) []string {
	cleaned := strings.Join(strings.Fields(strings.ToLower(text)), " ")
	if len(cleaned) < n {
		if cleaned == "" {
			return nil
		}
		return []string{cleaned}
	}
	out := make([]string, 0, len(cleaned)-n+1)
	for i := 0; i+n <= len(cleaned); i++ {
		out = append(out, cleaned[i:i+n])
	}
	return out
}
