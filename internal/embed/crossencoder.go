package embed

import "math"

// CrossEncoder scores (query, candidate) pairs with token-level soft
// alignment instead of comparing two pre-computed vectors — the
// late-interaction shape of the cross-encoder architecture in Fig. 2 of the
// paper. The decisive property Section 2.4 discusses is the cost asymmetry:
// a cross-encoder cannot reuse stored embeddings, so every query pays
// O(|query| · |corpus|) token-alignment work, while the bi-encoder answers
// from embeddings computed once at registration. The
// BenchmarkBiVsCrossEncoder ablation measures that asymmetry (accuracy of
// this lightweight proxy is comparable to, not above, the bi-encoder).
type CrossEncoder struct {
	m *Model
}

// NewCrossEncoder builds a cross-encoder sharing a bi-encoder's token space.
func NewCrossEncoder(m *Model) *CrossEncoder { return &CrossEncoder{m: m} }

// Score computes a soft token-alignment score in [−1, 1]: for each query
// token the best-matching candidate token (and vice versa), averaged —
// the late-interaction scoring of ColBERT-style cross architectures.
func (ce *CrossEncoder) Score(query, candidate string) float64 {
	qt := ce.prepTokens(query)
	ct := ce.prepTokens(candidate)
	if len(qt) == 0 || len(ct) == 0 {
		return 0
	}
	qv := make([]Vector, len(qt))
	for i, t := range qt {
		qv[i] = ce.m.direction("tok:" + t)
	}
	cv := make([]Vector, len(ct))
	for i, t := range ct {
		cv[i] = ce.m.direction("tok:" + t)
	}
	forward := ce.bestMatchMean(qv, cv)
	backward := ce.bestMatchMean(cv, qv)
	return (forward + backward) / 2
}

func (ce *CrossEncoder) prepTokens(text string) []string {
	raw := Tokenize(text, ce.m.cfg.SplitIdentifiers)
	out := raw[:0]
	for _, t := range raw {
		if nlStopwords[t] || pythonKeywords[t] {
			// full attention over content tokens only: keywords and
			// stopwords match everything and dilute the alignment
			continue
		}
		out = append(out, t)
		// The cross-encoder sees aligned twins too: full attention lets it
		// relate paraphrases directly.
		if ce.m.cfg.Align != nil {
			if twin, ok := ce.m.cfg.Align[t]; ok && twin != t {
				out = append(out, twin)
			}
		}
	}
	return out
}

// weightedBestMatch scores IDF-weighted query tokens against their best
// candidate-token alignments.
func weightedBestMatch(qVecs []Vector, qWeights []float64, cVecs []Vector) float64 {
	if len(qVecs) == 0 || len(cVecs) == 0 {
		return 0
	}
	var total, wsum float64
	for i, qv := range qVecs {
		best := math.Inf(-1)
		for _, cv := range cVecs {
			if s := Cosine(qv, cv); s > best {
				best = s
			}
		}
		total += qWeights[i] * best
		wsum += qWeights[i]
	}
	if wsum == 0 {
		return 0
	}
	return total / wsum
}

func (ce *CrossEncoder) bestMatchMean(a, b []Vector) float64 {
	var total float64
	for _, av := range a {
		best := math.Inf(-1)
		for _, bv := range b {
			if s := Cosine(av, bv); s > best {
				best = s
			}
		}
		total += best
	}
	return total / float64(len(a))
}

// RankStrings orders candidate texts by cross-encoder score, descending.
func (ce *CrossEncoder) RankStrings(query string, candidates []string) ([]int, []float64) {
	scores := make([]float64, len(candidates))
	for i, c := range candidates {
		scores[i] = ce.Score(query, c)
	}
	idxs := make([]int, len(candidates))
	for i := range idxs {
		idxs[i] = i
	}
	// descending by score, ascending index for ties
	for i := 1; i < len(idxs); i++ {
		for j := i; j > 0; j-- {
			a, b := idxs[j], idxs[j-1]
			if scores[a] > scores[b] || (scores[a] == scores[b] && a < b) {
				idxs[j], idxs[j-1] = idxs[j-1], idxs[j]
			} else {
				break
			}
		}
	}
	ordered := make([]float64, len(idxs))
	for i, idx := range idxs {
		ordered[i] = scores[idx]
	}
	return idxs, ordered
}
