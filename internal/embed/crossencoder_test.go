package embed_test

import (
	"math"
	"reflect"
	"testing"

	"laminar/internal/dataset"
	"laminar/internal/embed"
)

// External test package: the golden ablation below needs the dataset
// generators, and dataset imports embed.

func csModel(t *testing.T) *embed.Model {
	t.Helper()
	m, err := embed.Lookup(embed.ModelCodeSearch)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

var rankCandidates = []string{
	"def photon_filter(stream):\n    return [s for s in stream if s.kind == 'photon']",
	"def render_dashboard(widgets):\n    return draw(widgets)",
	"def aggregate_counts(window):\n    return sum(window)",
	"def photon_gate(stream):\n    return stream",
}

func TestRankStringsDeterministic(t *testing.T) {
	ce := embed.NewCrossEncoder(csModel(t))
	idxs1, scores1 := ce.RankStrings("filter photon events", rankCandidates)
	idxs2, scores2 := ce.RankStrings("filter photon events", rankCandidates)
	if !reflect.DeepEqual(idxs1, idxs2) || !reflect.DeepEqual(scores1, scores2) {
		t.Fatalf("RankStrings nondeterministic:\n%v %v\n%v %v", idxs1, scores1, idxs2, scores2)
	}
}

// TestRankStringsOrderInvariance pins that the ranking depends on candidate
// content, never on candidate order: permuting the input permutes the
// returned indices but the ranked sequence of texts and their scores are
// identical.
func TestRankStringsOrderInvariance(t *testing.T) {
	ce := embed.NewCrossEncoder(csModel(t))
	query := "filter photon events"
	idxs, scores := ce.RankStrings(query, rankCandidates)

	perm := []int{2, 0, 3, 1}
	shuffled := make([]string, len(rankCandidates))
	for to, from := range perm {
		shuffled[to] = rankCandidates[from]
	}
	pIdxs, pScores := ce.RankStrings(query, shuffled)

	for i := range idxs {
		if rankCandidates[idxs[i]] != shuffled[pIdxs[i]] {
			t.Fatalf("rank %d differs under permutation: %q vs %q",
				i, rankCandidates[idxs[i]], shuffled[pIdxs[i]])
		}
		if scores[i] != pScores[i] {
			t.Fatalf("score at rank %d differs under permutation: %v vs %v", i, scores[i], pScores[i])
		}
	}
}

// TestRankStringsScoresAlignedAndSorted pins the return contract: the
// second value is the scores in OUTPUT order (ordered[i] belongs to
// candidates[idxs[i]]), descending, with ties broken by ascending index.
func TestRankStringsScoresAlignedAndSorted(t *testing.T) {
	ce := embed.NewCrossEncoder(csModel(t))
	query := "aggregate window counts"
	idxs, scores := ce.RankStrings(query, rankCandidates)
	if len(idxs) != len(rankCandidates) || len(scores) != len(rankCandidates) {
		t.Fatalf("lengths: %d idxs, %d scores", len(idxs), len(scores))
	}
	for i, idx := range idxs {
		if want := ce.Score(query, rankCandidates[idx]); math.Abs(scores[i]-want) > 1e-12 {
			t.Fatalf("scores not aligned to output order: ordered[%d]=%v, Score(candidates[%d])=%v",
				i, scores[i], idx, want)
		}
		if i > 0 && scores[i] > scores[i-1] {
			t.Fatalf("scores not descending at rank %d: %v", i, scores)
		}
	}
	// Identical candidates tie; the stable sort must keep ascending index.
	dupes := []string{"def same(x): pass", "def same(x): pass", "def same(x): pass"}
	dIdxs, _ := ce.RankStrings("same", dupes)
	if !reflect.DeepEqual(dIdxs, []int{0, 1, 2}) {
		t.Fatalf("tied candidates not in ascending-index order: %v", dIdxs)
	}
}

func TestRankStringsEdgeCases(t *testing.T) {
	ce := embed.NewCrossEncoder(csModel(t))
	if idxs, scores := ce.RankStrings("query", nil); len(idxs) != 0 || len(scores) != 0 {
		t.Fatalf("empty candidates: %v %v", idxs, scores)
	}
	// A query with no content tokens scores everything 0 and preserves
	// input order via the index tiebreak.
	idxs, scores := ce.RankStrings("", rankCandidates)
	if !reflect.DeepEqual(idxs, []int{0, 1, 2, 3}) {
		t.Fatalf("empty query order: %v", idxs)
	}
	for _, s := range scores {
		if s != 0 {
			t.Fatalf("empty query scored nonzero: %v", scores)
		}
	}
}

// biEncoderMissesRerankFixes are the GenCSN(61, 1) query indices — the
// exact corpus BenchmarkBiVsCrossEncoder and `laminar-bench -ablations`
// evaluate — where the bi-encoder's top-1 is wrong and cross-encoder
// reranking of its top-10 pool recovers the relevant code. Measured once
// and pinned: these are the pairs that justify the reranked search mode,
// and a cross-encoder scoring regression shows up here as a lost fix.
var biEncoderMissesRerankFixes = []int{4, 15, 20, 26, 48}

// TestGoldenRerankFixesBiEncoderMisses is the golden ablation for the
// rerank stage. On every pinned pair the bi-encoder retrieval alone ranks
// a wrong code first, and cross-encoder reranking of the bi-encoder's own
// top-10 puts a relevant one back on top. (Globally the lightweight
// cross-encoder proxy is comparable to — not above — the bi-encoder, as
// the package doc states; these pinned pairs are where it earns its
// latency, so they must keep holding.)
func TestGoldenRerankFixesBiEncoderMisses(t *testing.T) {
	corpus := dataset.GenCSN(61, 1)
	m := csModel(t)
	docVecs := make([]embed.Vector, len(corpus.Codes))
	for i, code := range corpus.Codes {
		docVecs[i] = m.Embed(code)
	}
	ce := embed.NewCrossEncoder(m)
	for _, qi := range biEncoderMissesRerankFixes {
		if qi >= len(corpus.Queries) {
			t.Fatalf("pinned query index %d out of range (corpus has %d queries)", qi, len(corpus.Queries))
		}
		q := corpus.Queries[qi]
		rel := corpus.RelevantSet(q)
		ranking, _ := embed.Rank(m.Embed(q.Query), docVecs)
		if rel[ranking[0]] {
			t.Errorf("query %d %q: bi-encoder top-1 now relevant — the pinned miss set is stale, re-measure it", qi, q.Query)
			continue
		}
		pool := make([]string, 0, 10)
		for _, di := range ranking[:min(10, len(ranking))] {
			pool = append(pool, corpus.Codes[di])
		}
		rr, _ := ce.RankStrings(q.Query, pool)
		if !rel[ranking[rr[0]]] {
			t.Errorf("query %d %q: rerank no longer fixes the bi-encoder miss (top-1 = doc %d)",
				qi, q.Query, ranking[rr[0]])
		}
	}
}
