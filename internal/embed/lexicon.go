package embed

// CrossModalLexicon maps natural-language paraphrase words to the canonical
// code-domain vocabulary. It plays the role of the (docstring, function)
// alignment that fine-tuning on AdvTest teaches the unixcoder-code-search
// model: a fine-tuned bi-encoder embeds "determine", "verify" and "check"
// near the code token "check", while the base model keeps them apart.
//
// The synthetic CoSQA/CSN dataset generators use the *inverse* direction —
// replacing canonical words with paraphrases — so only alignment-equipped
// models can bridge the gap, reproducing Table 6's fine-tuning effect.
var CrossModalLexicon = map[string]string{
	// verbs
	"determine": "check", "verify": "check", "test": "check",
	"compute": "calculate", "evaluate": "calculate", "derive": "calculate",
	"fetch": "get", "retrieve": "get", "obtain": "get", "grab": "get",
	"produce": "generate", "create": "generate", "make": "generate",
	"emit": "output", "yield": "output",
	"transform": "convert", "translate": "convert", "turn": "convert",
	"remove": "delete", "drop": "delete", "erase": "delete",
	"merge": "combine", "join": "combine", "concatenate": "combine",
	"locate": "find", "search": "find", "lookup": "find",
	"order": "sort", "arrange": "sort", "rank": "sort",
	"tally": "count", "enumerate": "count",
	"invert": "reverse", "flip": "reverse",
	"display": "print", "show": "print",
	"parse": "read", "load": "read", "scan": "read",
	"store": "write", "save": "write", "persist": "write",
	"filter": "select", "keep": "select",
	"total": "sum", "add": "sum", "accumulate": "sum",
	"divide": "split", "partition": "split", "separate": "split",
	"validate": "check", "confirm": "check",
	// nouns
	"integer": "number", "numeral": "number", "digit": "number",
	"text": "string", "phrase": "string", "sentence": "string",
	"array": "list", "sequence": "list", "collection": "list",
	"mapping": "dict", "dictionary": "dict", "table": "dict",
	"document": "file", "record": "file",
	"term": "word", "token": "word",
	"character": "letter", "symbol": "letter",
	"maximum": "max", "largest": "max", "biggest": "max",
	"minimum": "min", "smallest": "min", "lowest": "min",
	"mean":      "average",
	"factorial": "factorial", "fibonacci": "fibonacci",
	"palindrome": "palindrome", "prime": "prime",
	"vowels": "vowel", "duplicates": "duplicate",
	"frequency": "count", "occurrences": "count",
	"items": "element", "entries": "element", "values": "element",
	"initial": "first", "final": "last", "ending": "last",
	"temperature": "temperature", "celsius": "celsius",
	"whitespace": "space", "blanks": "space",
	"url": "url", "json": "json", "csv": "csv",
	// adjectives / misc
	"even": "even", "odd": "odd", "unique": "distinct",
	"ascending": "ascending", "descending": "descending",
	"uppercase": "upper", "lowercase": "lower", "capitalized": "upper",
	"longest": "longest", "shortest": "shortest",
	"common": "common", "nested": "nested", "empty": "empty",
}
