package embed

import (
	"math"
	"sort"
	"sync"

	"laminar/internal/vecmath"
)

// Dim is the embedding dimensionality used by every model.
const Dim = 256

// Vector is a dense embedding. Model outputs are L2-normalized, so cosine
// similarity reduces to a dot product.
type Vector []float32

// Config describes one embedding model's behaviour. The fields correspond to
// properties of the original transformer models that determine their
// relative strengths in the paper's evaluation.
type Config struct {
	// Name is the HuggingFace-style model id.
	Name string
	// Seed isolates the model's feature space (two models embed the same
	// token differently, as different pretrained weights would).
	Seed uint64
	// SplitIdentifiers enables camelCase/snake_case subtokenization (code
	// pretraining); without it identifier renames destroy the signal.
	SplitIdentifiers bool
	// DropStopwords removes NL stopwords before embedding.
	DropStopwords bool
	// KeywordWeight scales Python keywords (code-aware models down-weight
	// them; 1.0 = neutral).
	KeywordWeight float64
	// CharNGram adds character n-gram features of that order (0 disables).
	// Strong n-grams make a lexical retriever (ReACC-style).
	CharNGram int
	// NGramWeight scales the n-gram feature block relative to tokens.
	NGramWeight float64
	// Align maps NL words to code-domain words — the effect of cross-modal
	// fine-tuning on (docstring, code) pairs such as AdvTest.
	Align map[string]string
	// AlignWeight scales injected aligned tokens.
	AlignWeight float64
	// Noise replaces a fraction of the signal with an input-dependent
	// pseudo-random direction, modelling domain mismatch: higher noise
	// means two related texts agree less.
	Noise float64
	// TokenDropout deterministically ignores a fraction of tokens,
	// modelling tokenizers that fragment code (NL-only models).
	TokenDropout float64
	// NumberWeight scales purely numeric tokens. Clone-detection
	// fine-tuning learns that literals identify a problem across
	// structurally different solutions (1.0 = neutral).
	NumberWeight float64
}

// Model is a ready-to-use embedding model.
type Model struct {
	cfg   Config
	cache sync.Map // token → Vector (unnormalized direction)
}

// New instantiates a model from a config.
func New(cfg Config) *Model {
	if cfg.KeywordWeight == 0 {
		cfg.KeywordWeight = 1
	}
	if cfg.NGramWeight == 0 {
		cfg.NGramWeight = 1
	}
	if cfg.AlignWeight == 0 {
		cfg.AlignWeight = 1
	}
	if cfg.NumberWeight == 0 {
		cfg.NumberWeight = 1
	}
	return &Model{cfg: cfg}
}

// Name returns the model id.
func (m *Model) Name() string { return m.cfg.Name }

// splitmix64 is a fast deterministic PRNG step.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func hashString(seed uint64, s string) uint64 {
	h := seed ^ 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// direction returns the deterministic pseudo-random unit direction for a
// feature string under this model's seed.
func (m *Model) direction(feature string) Vector {
	if v, ok := m.cache.Load(feature); ok {
		return v.(Vector)
	}
	h := hashString(m.cfg.Seed, feature)
	v := make(Vector, Dim)
	state := h
	var norm float64
	for i := 0; i < Dim; i += 2 {
		state = splitmix64(state)
		// Box-Muller from two uniform halves of the state.
		u1 := float64(state>>11) / float64(1<<53)
		if u1 < 1e-12 {
			u1 = 1e-12
		}
		state = splitmix64(state)
		u2 := float64(state>>11) / float64(1<<53)
		r := math.Sqrt(-2 * math.Log(u1))
		g1 := r * math.Cos(2*math.Pi*u2)
		g2 := r * math.Sin(2*math.Pi*u2)
		v[i] = float32(g1)
		if i+1 < Dim {
			v[i+1] = float32(g2)
		}
		norm += g1*g1 + g2*g2
	}
	norm = math.Sqrt(norm)
	if norm > 0 {
		for i := range v {
			v[i] = float32(float64(v[i]) / norm)
		}
	}
	m.cache.Store(feature, v)
	return v
}

// dropToken reports whether this model's tokenizer loses the token
// (deterministic per token, independent of position).
func (m *Model) dropToken(tok string) bool {
	if m.cfg.TokenDropout <= 0 {
		return false
	}
	h := hashString(m.cfg.Seed^0xD09, tok)
	return float64(h%10000)/10000 < m.cfg.TokenDropout
}

// Embed maps text to a unit vector.
func (m *Model) Embed(text string) Vector {
	tokens := Tokenize(text, m.cfg.SplitIdentifiers)
	acc := make([]float64, Dim)
	// token features with log-scaled term frequency
	tf := map[string]int{}
	var order []string
	for _, t := range tokens {
		if m.cfg.DropStopwords && nlStopwords[t] {
			continue
		}
		if m.dropToken(t) {
			continue
		}
		if tf[t] == 0 {
			order = append(order, t)
		}
		tf[t]++
	}
	for _, t := range order {
		w := 1 + math.Log(float64(tf[t]))
		if pythonKeywords[t] {
			w *= m.cfg.KeywordWeight
		}
		if isNumericToken(t) {
			w *= m.cfg.NumberWeight
		}
		dir := m.direction("tok:" + t)
		for i := range acc {
			acc[i] += w * float64(dir[i])
		}
		// cross-modal alignment: inject the code-domain twin of NL words
		if m.cfg.Align != nil {
			if twin, ok := m.cfg.Align[t]; ok && twin != t {
				adir := m.direction("tok:" + twin)
				aw := w * m.cfg.AlignWeight
				for i := range acc {
					acc[i] += aw * float64(adir[i])
				}
			}
		}
	}
	// character n-gram lexical block
	if m.cfg.CharNGram > 0 {
		grams := charNGrams(text, m.cfg.CharNGram)
		if len(grams) > 0 {
			gw := m.cfg.NGramWeight / math.Sqrt(float64(len(grams)))
			for _, g := range grams {
				dir := m.direction("ng:" + g)
				for i := range acc {
					acc[i] += gw * float64(dir[i])
				}
			}
		}
	}
	// input-dependent noise: fraction of the signal norm pointed in a
	// direction that depends on the exact input text.
	sig := l2(acc)
	if m.cfg.Noise > 0 && sig > 0 {
		nd := m.direction("noise:" + text)
		nw := m.cfg.Noise * sig
		for i := range acc {
			acc[i] += nw * float64(nd[i])
		}
	}
	out := make(Vector, Dim)
	norm := l2(acc)
	if norm == 0 {
		// Degenerate input: a stable arbitrary unit vector.
		return m.direction("empty")
	}
	for i := range acc {
		out[i] = float32(acc[i] / norm)
	}
	return out
}

func isNumericToken(t string) bool {
	if t == "" {
		return false
	}
	for i := 0; i < len(t); i++ {
		if t[i] < '0' || t[i] > '9' {
			return false
		}
	}
	return true
}

func l2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Cosine returns the cosine similarity of two embeddings (dot product for
// unit vectors). It delegates to the shared scoring kernel, which keeps
// the historic contract: a float64 dot product over the common prefix,
// bit-identical to the scalar loop this function used to carry.
func Cosine(a, b Vector) float64 {
	return vecmath.Dot(a, b)
}

// Rank orders candidate embeddings by similarity to the query, descending.
// Returns candidate indices and scores.
func Rank(query Vector, candidates []Vector) ([]int, []float64) {
	type scored struct {
		idx   int
		score float64
	}
	out := make([]scored, len(candidates))
	for i, c := range candidates {
		out[i] = scored{idx: i, score: Cosine(query, c)}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].score != out[j].score {
			return out[i].score > out[j].score
		}
		return out[i].idx < out[j].idx
	})
	idxs := make([]int, len(out))
	scores := make([]float64, len(out))
	for i, s := range out {
		idxs[i] = s.idx
		scores[i] = s.score
	}
	return idxs, scores
}
