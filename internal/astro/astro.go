// Package astro implements the internal-extinction computation of the
// Section 5.2 showcase. The AMIGA project corrects galaxy optical
// luminosities for the dust extinction within the galaxy itself:
//
//	A_int = γ(T) · log10(R25)
//
// where R25 is the major-to-minor isophotal diameter ratio and γ depends on
// the RC3 morphological type T of the (spiral) galaxy. The coefficients
// follow the AMIGA internal-extinction prescription the workflow's
// internalExt PE applies.
package astro

import (
	"fmt"
	"math"
)

// gammaByType maps the RC3 morphological type code T (1=Sa … 7=Sd) to the
// extinction slope γ.
var gammaByType = map[int]float64{
	1: 1.12, // Sa
	2: 1.28, // Sab
	3: 1.42, // Sb
	4: 1.52, // Sbc
	5: 1.46, // Sc
	6: 1.34, // Scd
	7: 1.18, // Sd
}

// Gamma returns the extinction slope for a morphological type.
func Gamma(mtype int) (float64, error) {
	g, ok := gammaByType[mtype]
	if !ok {
		return 0, fmt.Errorf("astro: morphological type %d outside the spiral range 1..7", mtype)
	}
	return g, nil
}

// InternalExtinction computes A_int (magnitudes) for a galaxy of
// morphological type mtype with axis-ratio logarithm logR25.
func InternalExtinction(mtype int, logR25 float64) (float64, error) {
	g, err := Gamma(mtype)
	if err != nil {
		return 0, err
	}
	if logR25 < 0 || math.IsNaN(logR25) || math.IsInf(logR25, 0) {
		return 0, fmt.Errorf("astro: logR25 must be a non-negative finite number, got %v", logR25)
	}
	return g * logR25, nil
}

// Coordinate is a (RA, Dec) sky position in degrees.
type Coordinate struct {
	RA  float64
	Dec float64
}

// ParseCoordinates reads the coordinates.txt resource format: one "ra dec"
// pair per line, whitespace separated, '#' comments allowed.
func ParseCoordinates(text string) ([]Coordinate, error) {
	var out []Coordinate
	line := 0
	for _, raw := range splitLines(text) {
		line++
		s := trim(raw)
		if s == "" || s[0] == '#' {
			continue
		}
		var ra, dec float64
		if _, err := fmt.Sscanf(s, "%f %f", &ra, &dec); err != nil {
			return nil, fmt.Errorf("astro: coordinates line %d: %q: %w", line, raw, err)
		}
		if ra < 0 || ra >= 360 {
			return nil, fmt.Errorf("astro: coordinates line %d: RA %v out of [0,360)", line, ra)
		}
		if dec < -90 || dec > 90 {
			return nil, fmt.Errorf("astro: coordinates line %d: Dec %v out of [-90,90]", line, dec)
		}
		out = append(out, Coordinate{RA: ra, Dec: dec})
	}
	return out, nil
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

func trim(s string) string {
	i, j := 0, len(s)
	for i < j && (s[i] == ' ' || s[i] == '\t' || s[i] == '\r') {
		i++
	}
	for j > i && (s[j-1] == ' ' || s[j-1] == '\t' || s[j-1] == '\r') {
		j--
	}
	return s[i:j]
}

// GenerateCoordinates renders n deterministic coordinate lines (the
// synthetic resources/coordinates.txt).
func GenerateCoordinates(n int, seed int64) string {
	out := "# ra dec (degrees) — synthetic AMIGA sample\n"
	state := uint64(seed)*2654435761 + 1
	for i := 0; i < n; i++ {
		state = state*6364136223846793005 + 1442695040888963407
		ra := float64(state%36000000) / 100000.0
		state = state*6364136223846793005 + 1442695040888963407
		dec := float64(state%18000000)/100000.0 - 90.0
		out += fmt.Sprintf("%.5f %.5f\n", ra, dec)
	}
	return out
}
