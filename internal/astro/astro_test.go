package astro

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestGamma(t *testing.T) {
	for mtype := 1; mtype <= 7; mtype++ {
		g, err := Gamma(mtype)
		if err != nil {
			t.Fatalf("type %d: %v", mtype, err)
		}
		if g < 1.0 || g > 1.6 {
			t.Errorf("gamma(%d) = %f outside plausible range", mtype, g)
		}
	}
	for _, bad := range []int{0, 8, -1, 100} {
		if _, err := Gamma(bad); err == nil {
			t.Errorf("Gamma(%d) should fail", bad)
		}
	}
	// Sbc galaxies have the steepest extinction slope in the prescription.
	gSbc, _ := Gamma(4)
	for mtype := 1; mtype <= 7; mtype++ {
		g, _ := Gamma(mtype)
		if g > gSbc {
			t.Errorf("gamma(%d)=%f exceeds Sbc %f", mtype, g, gSbc)
		}
	}
}

func TestInternalExtinction(t *testing.T) {
	// face-on galaxy (logR25 = 0) has no internal extinction
	a, err := InternalExtinction(3, 0)
	if err != nil || a != 0 {
		t.Errorf("face-on: %v %v", a, err)
	}
	// edge-on galaxies extinct more
	low, _ := InternalExtinction(3, 0.1)
	high, _ := InternalExtinction(3, 0.4)
	if high <= low {
		t.Errorf("extinction should grow with inclination: %f vs %f", low, high)
	}
	// exact value: gamma(3) = 1.42
	got, _ := InternalExtinction(3, 0.25)
	if math.Abs(got-1.42*0.25) > 1e-12 {
		t.Errorf("got %f", got)
	}
	// invalid inputs
	if _, err := InternalExtinction(9, 0.1); err == nil {
		t.Error("bad mtype should fail")
	}
	if _, err := InternalExtinction(3, -0.1); err == nil {
		t.Error("negative logR25 should fail")
	}
	if _, err := InternalExtinction(3, math.NaN()); err == nil {
		t.Error("NaN should fail")
	}
}

// Property: extinction is monotone in logR25 for every type.
func TestExtinctionMonotone(t *testing.T) {
	f := func(mtypeRaw uint8, aRaw, bRaw uint16) bool {
		mtype := int(mtypeRaw%7) + 1
		a := float64(aRaw) / 65535.0
		b := float64(bRaw) / 65535.0
		if a > b {
			a, b = b, a
		}
		ea, err1 := InternalExtinction(mtype, a)
		eb, err2 := InternalExtinction(mtype, b)
		return err1 == nil && err2 == nil && ea <= eb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestParseCoordinates(t *testing.T) {
	text := "# header comment\n10.5 -20.25\n350.0 89.9\n\n  0.0 0.0  \n"
	coords, err := ParseCoordinates(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(coords) != 3 {
		t.Fatalf("coords: %v", coords)
	}
	if coords[0].RA != 10.5 || coords[0].Dec != -20.25 {
		t.Errorf("first: %+v", coords[0])
	}
}

func TestParseCoordinatesValidation(t *testing.T) {
	cases := []string{
		"not numbers\n",
		"400.0 10.0\n",  // RA out of range
		"10.0 -100.0\n", // Dec out of range
	}
	for _, c := range cases {
		if _, err := ParseCoordinates(c); err == nil {
			t.Errorf("ParseCoordinates(%q) should fail", c)
		}
	}
}

func TestGenerateCoordinatesRoundTrips(t *testing.T) {
	text := GenerateCoordinates(25, 7)
	coords, err := ParseCoordinates(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(coords) != 25 {
		t.Fatalf("generated %d coords", len(coords))
	}
	// deterministic per seed
	if GenerateCoordinates(25, 7) != text {
		t.Error("generation must be deterministic")
	}
	if GenerateCoordinates(25, 8) == text {
		t.Error("different seeds should differ")
	}
	if !strings.HasPrefix(text, "#") {
		t.Error("generated file should carry the header comment")
	}
}
