package server

import (
	"context"
	"net/http"
	"testing"

	"laminar/internal/cluster"
	"laminar/internal/core"
	"laminar/internal/engine"
	"laminar/internal/registry"
	"laminar/internal/search"
)

// fakeShardPeer answers coordinator fan-outs from a fixed hit list.
type fakeShardPeer struct {
	name string
	hits []core.SearchHit
	err  error
}

func (p *fakeShardPeer) Name() string { return p.name }
func (p *fakeShardPeer) Search(context.Context, string, core.SearchRequest) ([]core.SearchHit, error) {
	return p.hits, p.err
}

// startClusterServer boots a coordinator node whose shards are fakes —
// the HTTP surface is real, the fan-out targets are not.
func startClusterServer(t *testing.T, shards []cluster.Shard) string {
	t.Helper()
	co, err := cluster.NewCoordinator(cluster.CoordinatorConfig{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Engine: engine.New(engine.Config{InstallDelayScale: 0}), Cluster: co})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	if code, raw := doReq(t, http.MethodPost, addr+"/auth/register",
		core.RegisterUserRequest{UserName: "zz46", Password: "password"}, nil); code != http.StatusCreated {
		t.Fatalf("register: %d %s", code, raw)
	}
	return addr
}

func TestClusterSearchDelegatesSemanticQueries(t *testing.T) {
	addr := startClusterServer(t, []cluster.Shard{
		{Name: "a", Primary: &fakeShardPeer{name: "a", hits: []core.SearchHit{
			{Kind: "pe", ID: 2, Name: "A2", Score: 0.9}}}},
		{Name: "b", Primary: &fakeShardPeer{name: "b", hits: []core.SearchHit{
			{Kind: "pe", ID: 5, Name: "B5", Score: 0.7}}}},
	})
	var res core.SearchResponse
	code, raw := doReq(t, http.MethodPost, addr+"/registry/zz46/search", core.SearchRequest{
		Search: "stream processing", QueryType: core.QuerySemantic,
	}, &res)
	if code != http.StatusOK {
		t.Fatalf("search: %d %s", code, raw)
	}
	if res.Degraded {
		t.Fatalf("healthy cluster answered degraded: %s", raw)
	}
	if len(res.Hits) != 2 || res.Hits[0].ID != 2 || res.Hits[1].ID != 5 {
		t.Fatalf("merged hits wrong: %+v", res.Hits)
	}
}

func TestClusterSearchFlagsDegradedReplies(t *testing.T) {
	addr := startClusterServer(t, []cluster.Shard{
		{Name: "a", Primary: &fakeShardPeer{name: "a", hits: []core.SearchHit{
			{Kind: "pe", ID: 2, Name: "A2", Score: 0.9}}}},
		{Name: "down", Primary: &fakeShardPeer{name: "down", err: context.DeadlineExceeded}},
	})
	var res core.SearchResponse
	code, raw := doReq(t, http.MethodPost, addr+"/registry/zz46/search", core.SearchRequest{
		Search: "stream processing", QueryType: core.QuerySemantic,
	}, &res)
	if code != http.StatusOK {
		t.Fatalf("a degraded reply is still 200, got %d %s", code, raw)
	}
	if !res.Degraded {
		t.Fatalf("degraded flag lost on the wire: %s", raw)
	}
	if len(res.Hits) != 1 || res.Hits[0].ID != 2 {
		t.Fatalf("surviving shard's hits lost: %+v", res.Hits)
	}
}

func TestClusterSearchLeavesTextQueriesLocal(t *testing.T) {
	// Text lookups are registry-local metadata scans, not vector queries;
	// the coordinator must not intercept them.
	poison := &fakeShardPeer{name: "a", err: context.DeadlineExceeded}
	addr := startClusterServer(t, []cluster.Shard{{Name: "a", Primary: poison}})
	addTestPE(t, addr, "LocalPE")
	var res core.SearchResponse
	code, raw := doReq(t, http.MethodPost, addr+"/registry/zz46/search", core.SearchRequest{
		Search: "LocalPE", QueryType: core.QueryText,
	}, &res)
	if code != http.StatusOK {
		t.Fatalf("text search: %d %s", code, raw)
	}
	if res.Degraded || len(res.Hits) != 1 || res.Hits[0].Name != "LocalPE" {
		t.Fatalf("text search went through the cluster: %s", raw)
	}
}

func TestClusterSearchLocalServesPeers(t *testing.T) {
	// ClusterSearchLocal is the hook the RESP transport calls on a shard
	// node; it must answer like POST /registry/{user}/search does.
	reg := registry.NewStore()
	u, err := reg.RegisterUser("alice", "pw")
	if err != nil {
		t.Fatal(err)
	}
	vec := search.EmbedDescription("transforms astronomy data streams")
	if _, err := reg.AddPE(u.UserID, core.AddPERequest{PEName: "Astro", PECode: "c", DescEmbedding: vec}); err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Registry: reg, Engine: engine.New(engine.Config{InstallDelayScale: 0})})

	res, err := srv.ClusterSearchLocal("alice", core.SearchRequest{
		QueryType: core.QuerySemantic, QueryEmbedding: vec, Limit: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 1 || res.Hits[0].Name != "Astro" {
		t.Fatalf("hits = %+v", res.Hits)
	}
	if _, err := srv.ClusterSearchLocal("ghost", core.SearchRequest{QueryType: core.QuerySemantic, QueryEmbedding: vec}); err == nil {
		t.Fatal("unknown user must error")
	}
}

func TestMetricsGuardToken(t *testing.T) {
	srv := New(Config{Engine: engine.New(engine.Config{InstallDelayScale: 0}), Metrics: true,
		MetricsAuthToken: "s3cret"})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)

	get := func(authz string) int {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, addr+"/metrics", nil)
		if err != nil {
			t.Fatal(err)
		}
		if authz != "" {
			req.Header.Set("Authorization", authz)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get(""); code != http.StatusForbidden {
		t.Errorf("no token: %d, want 403", code)
	}
	if code := get("Bearer wrong"); code != http.StatusForbidden {
		t.Errorf("wrong token: %d, want 403", code)
	}
	if code := get("Bearer s3cret"); code != http.StatusOK {
		t.Errorf("right token: %d, want 200", code)
	}
}

func TestMetricsGuardCIDR(t *testing.T) {
	// Loopback allowlisted: the test client (127.0.0.1) passes with no
	// token at all.
	srv := New(Config{Engine: engine.New(engine.Config{InstallDelayScale: 0}), Metrics: true,
		MetricsAllow: []string{"127.0.0.0/8"}})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	if code, _ := doReq(t, http.MethodGet, addr+"/metrics", nil, nil); code != http.StatusOK {
		t.Errorf("allowlisted client: %d, want 200", code)
	}

	// A non-matching allowlist turns the same request away.
	srv2 := New(Config{Engine: engine.New(engine.Config{InstallDelayScale: 0}), Metrics: true,
		MetricsAllow: []string{"10.0.0.0/8"}})
	addr2, err := srv2.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv2.Close)
	if code, _ := doReq(t, http.MethodGet, addr2+"/metrics", nil, nil); code != http.StatusForbidden {
		t.Errorf("blocked client: %d, want 403", code)
	}
}

func TestMetricsGuardTokenOrCIDRComposeAsOr(t *testing.T) {
	srv := New(Config{Engine: engine.New(engine.Config{InstallDelayScale: 0}), Metrics: true,
		MetricsAuthToken: "s3cret", MetricsAllow: []string{"10.0.0.0/8"}})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)

	// Client is not in 10/8, but the token alone must admit it.
	req, err := http.NewRequest(http.MethodGet, addr+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer s3cret")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("token with non-matching CIDR: %d, want 200 (OR semantics)", resp.StatusCode)
	}
	if code, _ := doReq(t, http.MethodGet, addr+"/metrics", nil, nil); code != http.StatusForbidden {
		t.Errorf("neither credential: %d, want 403", code)
	}
}

func TestMetricsOpenByDefault(t *testing.T) {
	srv := New(Config{Engine: engine.New(engine.Config{InstallDelayScale: 0}), Metrics: true})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	if code, _ := doReq(t, http.MethodGet, addr+"/metrics", nil, nil); code != http.StatusOK {
		t.Errorf("unguarded /metrics: %d, want 200", code)
	}
}
