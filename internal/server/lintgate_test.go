package server

import (
	"net/http"
	"strings"
	"testing"

	"laminar/internal/codec"
	"laminar/internal/core"
)

// The registration-time graph lint: workflows whose dataflow cannot enact
// are refused with HTTP 400 naming the defect, while legacy opaque
// workflow blobs (not decodable envelopes) keep registering as before.

func encodeWorkflow(t *testing.T, source string) string {
	t.Helper()
	enc, err := codec.Encode(codec.Envelope{Kind: codec.KindWorkflow, Name: "wf", Source: source})
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

const cyclicWorkflowSource = `
class Forward(IterativePE):
    def __init__(self):
        IterativePE.__init__(self)
    def _process(self, v):
        return v

class Backward(IterativePE):
    def __init__(self):
        IterativePE.__init__(self)
    def _process(self, v):
        return v

a = Forward()
b = Backward()
graph = WorkflowGraph()
graph.connect(a, 'output', b, 'input')
graph.connect(b, 'output', a, 'input')
`

const twoRootsWorkflowSource = `
class P1(ProducerPE):
    def __init__(self):
        ProducerPE.__init__(self)
    def _process(self):
        return 1

class P2(ProducerPE):
    def __init__(self):
        ProducerPE.__init__(self)
    def _process(self):
        return 2

class Join(GenericPE):
    def __init__(self):
        GenericPE.__init__(self)
        self._add_input('a')
        self._add_input('b')
    def _process(self, inputs):
        return None

p1 = P1()
p2 = P2()
j = Join()
graph = WorkflowGraph()
graph.connect(p1, 'output', j, 'a')
graph.connect(p2, 'output', j, 'b')
`

func TestWorkflowRegistrationRejectsCyclicGraph(t *testing.T) {
	addr := startServer(t)
	code, raw := doReq(t, http.MethodPost, addr+"/registry/zz46/workflow/add", core.AddWorkflowRequest{
		WorkflowName: "Cyclic", EntryPoint: "cyclic", WorkflowCode: encodeWorkflow(t, cyclicWorkflowSource),
	}, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("cyclic workflow: status %d (%s), want 400", code, raw)
	}
	if !strings.Contains(raw, "cycle") {
		t.Errorf("400 body does not name the cycle defect: %s", raw)
	}
	if !strings.Contains(raw, "BadRequestError") {
		t.Errorf("400 body is not the standard error shape: %s", raw)
	}
}

func TestWorkflowRegistrationRejectsMultipleRoots(t *testing.T) {
	addr := startServer(t)
	code, raw := doReq(t, http.MethodPost, addr+"/registry/zz46/workflow/add", core.AddWorkflowRequest{
		WorkflowName: "TwoRoots", EntryPoint: "tworoots", WorkflowCode: encodeWorkflow(t, twoRootsWorkflowSource),
	}, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("two-root workflow: status %d (%s), want 400", code, raw)
	}
	if !strings.Contains(raw, "multiple-roots") {
		t.Errorf("400 body does not name the multiple-roots defect: %s", raw)
	}
}

func TestWorkflowRegistrationRejectsUnbuildableSource(t *testing.T) {
	addr := startServer(t)
	code, raw := doReq(t, http.MethodPost, addr+"/registry/zz46/workflow/add", core.AddWorkflowRequest{
		WorkflowName: "Broken", EntryPoint: "broken",
		WorkflowCode: encodeWorkflow(t, "graph = connect(,,,\n"),
	}, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("unbuildable workflow: status %d (%s), want 400", code, raw)
	}
	if !strings.Contains(raw, "does not build") {
		t.Errorf("400 body does not explain the build failure: %s", raw)
	}
}

func TestWorkflowRegistrationKeepsAcceptingOpaqueBlobs(t *testing.T) {
	// Pre-codec registrations stored opaque strings in WorkflowCode; the
	// lint gate must not break them.
	addr := startServer(t)
	var wf core.WorkflowRecord
	code, raw := doReq(t, http.MethodPost, addr+"/registry/zz46/workflow/add", core.AddWorkflowRequest{
		WorkflowName: "Legacy", EntryPoint: "legacy", WorkflowCode: "WF-legacyOpaqueBlob",
	}, &wf)
	if code != http.StatusCreated {
		t.Fatalf("opaque workflow blob: status %d (%s), want 201", code, raw)
	}
}

func TestWorkflowRegistrationAcceptsCleanGraph(t *testing.T) {
	addr := startServer(t)
	clean := `
class Producer(ProducerPE):
    def __init__(self):
        ProducerPE.__init__(self)
    def _process(self):
        return 1

class Echo(IterativePE):
    def __init__(self):
        IterativePE.__init__(self)
    def _process(self, v):
        return v

p = Producer()
e = Echo()
graph = WorkflowGraph()
graph.connect(p, 'output', e, 'input')
`
	var wf core.WorkflowRecord
	code, raw := doReq(t, http.MethodPost, addr+"/registry/zz46/workflow/add", core.AddWorkflowRequest{
		WorkflowName: "Clean", EntryPoint: "clean", WorkflowCode: encodeWorkflow(t, clean),
	}, &wf)
	if code != http.StatusCreated {
		t.Fatalf("clean workflow: status %d (%s), want 201", code, raw)
	}
}
