package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"laminar/internal/codec"
	"laminar/internal/core"
	"laminar/internal/embed"
	"laminar/internal/engine"
	"laminar/internal/search"
)

// startServer boots a server with an instant-install engine and creates the
// test user, returning the base URL.
func startServer(t *testing.T) string {
	t.Helper()
	srv := New(Config{Engine: engine.New(engine.Config{InstallDelayScale: 0})})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	code, _ := doReq(t, http.MethodPost, addr+"/auth/register",
		core.RegisterUserRequest{UserName: "zz46", Password: "password"}, nil)
	if code != http.StatusCreated {
		t.Fatalf("register status %d", code)
	}
	return addr
}

// doReq performs a JSON request, returning status and decoding into out.
func doReq(t *testing.T, method, url string, body any, out any) (int, string) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode < 400 {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("decode %s: %v (%s)", url, err, raw)
		}
	}
	return resp.StatusCode, string(raw)
}

const peSource = `
class EchoPE(IterativePE):
    def __init__(self):
        IterativePE.__init__(self)
    def _process(self, v):
        return v
`

func addTestPE(t *testing.T, addr, name string) core.PERecord {
	t.Helper()
	enc, err := codec.Encode(codec.Envelope{Kind: codec.KindPE, Name: name, Source: peSource})
	if err != nil {
		t.Fatal(err)
	}
	var rec core.PERecord
	code, raw := doReq(t, http.MethodPost, addr+"/registry/zz46/pe/add", core.AddPERequest{
		PEName: name, Description: "echoes values", PECode: enc,
	}, &rec)
	if code != http.StatusCreated {
		t.Fatalf("add PE: %d %s", code, raw)
	}
	return rec
}

func TestAuthEndpoints(t *testing.T) {
	addr := startServer(t)
	// login works
	var auth core.AuthResponse
	code, _ := doReq(t, http.MethodPost, addr+"/auth/login",
		core.LoginRequest{UserName: "zz46", Password: "password"}, &auth)
	if code != 200 || auth.Token == "" {
		t.Fatalf("login: %d %+v", code, auth)
	}
	// wrong password is the canonical Section 3.2.5 error
	code, raw := doReq(t, http.MethodPost, addr+"/auth/login",
		core.LoginRequest{UserName: "zz46", Password: "wrong"}, nil)
	if code != http.StatusUnauthorized || !strings.Contains(raw, "UnauthorizedError") {
		t.Fatalf("bad login: %d %s", code, raw)
	}
	// user listing
	var users []core.UserRecord
	code, _ = doReq(t, http.MethodGet, addr+"/auth/all", nil, &users)
	if code != 200 || len(users) != 1 {
		t.Fatalf("users: %d %+v", code, users)
	}
	// duplicate registration conflicts
	code, raw = doReq(t, http.MethodPost, addr+"/auth/register",
		core.RegisterUserRequest{UserName: "zz46", Password: "x"}, nil)
	if code != http.StatusConflict || !strings.Contains(raw, "ConflictError") {
		t.Fatalf("dup register: %d %s", code, raw)
	}
}

func TestPEEndpoints(t *testing.T) {
	addr := startServer(t)
	rec := addTestPE(t, addr, "EchoPE")

	var got core.PERecord
	code, _ := doReq(t, http.MethodGet, fmt.Sprintf("%s/registry/zz46/pe/id/%d", addr, rec.PEID), nil, &got)
	if code != 200 || got.PEName != "EchoPE" {
		t.Fatalf("by id: %d %+v", code, got)
	}
	code, _ = doReq(t, http.MethodGet, addr+"/registry/zz46/pe/name/EchoPE", nil, &got)
	if code != 200 || got.PEID != rec.PEID {
		t.Fatalf("by name: %d %+v", code, got)
	}
	var all []core.PERecord
	code, _ = doReq(t, http.MethodGet, addr+"/registry/zz46/pe/all", nil, &all)
	if code != 200 || len(all) != 1 {
		t.Fatalf("all: %d %+v", code, all)
	}
	// unknown id → standardized 404
	code, raw := doReq(t, http.MethodGet, addr+"/registry/zz46/pe/id/999", nil, nil)
	if code != 404 || !strings.Contains(raw, "NotFoundError") {
		t.Fatalf("missing: %d %s", code, raw)
	}
	// non-integer id → 400
	code, raw = doReq(t, http.MethodGet, addr+"/registry/zz46/pe/id/abc", nil, nil)
	if code != 400 || !strings.Contains(raw, "BadRequestError") {
		t.Fatalf("bad id: %d %s", code, raw)
	}
	// removal by both paths
	code, _ = doReq(t, http.MethodDelete, fmt.Sprintf("%s/registry/zz46/pe/remove/id/%d", addr, rec.PEID), nil, nil)
	if code != 200 {
		t.Fatalf("remove: %d", code)
	}
	rec2 := addTestPE(t, addr, "EchoPE2")
	code, _ = doReq(t, http.MethodDelete, addr+"/registry/zz46/pe/remove/name/EchoPE2", nil, nil)
	if code != 200 {
		t.Fatalf("remove by name: %d", code)
	}
	_ = rec2
}

func TestWorkflowEndpoints(t *testing.T) {
	addr := startServer(t)
	pe := addTestPE(t, addr, "EchoPE")
	enc, err := codec.Encode(codec.Envelope{Kind: codec.KindWorkflow, Name: "echo", Source: peSource})
	if err != nil {
		t.Fatal(err)
	}
	var wf core.WorkflowRecord
	code, raw := doReq(t, http.MethodPost, addr+"/registry/zz46/workflow/add", core.AddWorkflowRequest{
		WorkflowName: "Echo", EntryPoint: "echo", WorkflowCode: enc, PEIDs: []int{pe.PEID},
	}, &wf)
	if code != http.StatusCreated {
		t.Fatalf("add workflow: %d %s", code, raw)
	}

	var got core.WorkflowRecord
	code, _ = doReq(t, http.MethodGet, fmt.Sprintf("%s/registry/zz46/workflow/id/%d", addr, wf.WorkflowID), nil, &got)
	if code != 200 || got.EntryPoint != "echo" {
		t.Fatalf("by id: %d %+v", code, got)
	}
	code, _ = doReq(t, http.MethodGet, addr+"/registry/zz46/workflow/name/echo", nil, &got)
	if code != 200 {
		t.Fatalf("by name: %d", code)
	}
	var all []core.WorkflowRecord
	code, _ = doReq(t, http.MethodGet, addr+"/registry/zz46/workflow/all", nil, &all)
	if code != 200 || len(all) != 1 {
		t.Fatalf("all: %d %+v", code, all)
	}
	// PEs of the workflow, by id and name
	var pes []core.PERecord
	code, _ = doReq(t, http.MethodGet, fmt.Sprintf("%s/registry/zz46/workflow/pes/id/%d", addr, wf.WorkflowID), nil, &pes)
	if code != 200 || len(pes) != 1 {
		t.Fatalf("pes by id: %d %+v", code, pes)
	}
	code, _ = doReq(t, http.MethodGet, addr+"/registry/zz46/workflow/pes/name/echo", nil, &pes)
	if code != 200 || len(pes) != 1 {
		t.Fatalf("pes by name: %d %+v", code, pes)
	}
	// associate another PE
	pe2 := addTestPE(t, addr, "SecondPE")
	code, _ = doReq(t, http.MethodPut, fmt.Sprintf("%s/registry/zz46/workflow/%d/pe/%d", addr, wf.WorkflowID, pe2.PEID), nil, nil)
	if code != 200 {
		t.Fatalf("associate: %d", code)
	}
	code, _ = doReq(t, http.MethodGet, fmt.Sprintf("%s/registry/zz46/workflow/pes/id/%d", addr, wf.WorkflowID), nil, &pes)
	if code != 200 || len(pes) != 2 {
		t.Fatalf("after associate: %+v", pes)
	}
	// registry listing
	var listing core.RegistryListing
	code, _ = doReq(t, http.MethodGet, addr+"/registry/zz46/all", nil, &listing)
	if code != 200 || len(listing.PEs) != 2 || len(listing.Workflows) != 1 {
		t.Fatalf("listing: %+v", listing)
	}
	// removal
	code, _ = doReq(t, http.MethodDelete, addr+"/registry/zz46/workflow/remove/name/echo", nil, nil)
	if code != 200 {
		t.Fatalf("remove: %d", code)
	}
}

func TestSearchEndpointGETForm(t *testing.T) {
	addr := startServer(t)
	addTestPE(t, addr, "PrimeChecker")
	var resp core.SearchResponse
	code, _ := doReq(t, http.MethodGet, addr+"/registry/zz46/search/prime/type/pe", nil, &resp)
	if code != 200 || len(resp.Hits) != 1 || resp.Hits[0].Name != "PrimeChecker" {
		t.Fatalf("search: %d %+v", code, resp)
	}
	// unknown search type errors
	code, raw := doReq(t, http.MethodGet, addr+"/registry/zz46/search/x/type/bogus", nil, nil)
	if code != 400 || !strings.Contains(raw, "BadRequestError") {
		t.Fatalf("bad type: %d %s", code, raw)
	}
}

func TestUnknownUser404s(t *testing.T) {
	addr := startServer(t)
	code, raw := doReq(t, http.MethodGet, addr+"/registry/ghost/pe/all", nil, nil)
	if code != 404 || !strings.Contains(raw, "NotFoundError") {
		t.Fatalf("ghost user: %d %s", code, raw)
	}
}

func TestExecutionEndpoint(t *testing.T) {
	addr := startServer(t)
	source := `
class Producer(ProducerPE):
    def __init__(self):
        ProducerPE.__init__(self)
    def _process(self):
        return 7
`
	enc, err := codec.Encode(codec.Envelope{Kind: codec.KindWorkflow, Name: "sevens", Source: source})
	if err != nil {
		t.Fatal(err)
	}
	var resp core.ExecutionResponse
	code, raw := doReq(t, http.MethodPost, addr+"/execution/zz46/run", core.ExecutionRequest{
		WorkflowCode: enc, Input: 4, Process: "SIMPLE",
	}, &resp)
	if code != 200 {
		t.Fatalf("run: %d %s", code, raw)
	}
	if len(resp.Outputs["Producer.output"]) != 4 {
		t.Fatalf("outputs: %+v", resp.Outputs)
	}
	// no workflow selected
	code, raw = doReq(t, http.MethodPost, addr+"/execution/zz46/run", core.ExecutionRequest{}, nil)
	if code != 400 || !strings.Contains(raw, "BadRequestError") {
		t.Fatalf("empty run: %d %s", code, raw)
	}
}

// TestSemanticSearchViaIndex drives the index-backed semantic and code
// query paths: the GET form carries no client embedding, so the server
// embeds the query itself before probing the registry's vector index.
func TestSemanticSearchViaIndex(t *testing.T) {
	addr := startServer(t)
	for _, p := range []struct{ name, desc string }{
		{"PrimeChecker", "checks if a number is prime"},
		{"WordCounter", "counts the words in a text stream"},
		{"FileReader", "reads the contents of a file"},
	} {
		enc, err := codec.Encode(codec.Envelope{Kind: codec.KindPE, Name: p.name, Source: peSource})
		if err != nil {
			t.Fatal(err)
		}
		code, raw := doReq(t, http.MethodPost, addr+"/registry/zz46/pe/add", core.AddPERequest{
			PEName: p.name, Description: p.desc, PECode: enc,
			DescEmbedding: search.EmbedDescription(p.desc),
			CodeEmbedding: search.EmbedCode("def _process(self):\n    pass"),
		}, nil)
		if code != http.StatusCreated {
			t.Fatalf("add %s: %d %s", p.name, code, raw)
		}
	}
	var resp core.SearchResponse
	code, _ := doReq(t, http.MethodGet,
		addr+"/registry/zz46/search/checks+whether+a+number+is+prime/type/pe?query=semantic", nil, &resp)
	if code != 200 || len(resp.Hits) != 3 || resp.Hits[0].Name != "PrimeChecker" {
		t.Fatalf("semantic: %d %+v", code, resp)
	}
	// POST form threads an explicit limit down to the index's top-k heap.
	code, _ = doReq(t, http.MethodPost, addr+"/registry/zz46/search", core.SearchRequest{
		Search: "prime numbers", SearchType: core.SearchPEs, QueryType: core.QuerySemantic, Limit: 1,
	}, &resp)
	if code != 200 || len(resp.Hits) != 1 {
		t.Fatalf("limited semantic: %d %+v", code, resp)
	}
}

// TestSemanticSearchCoversWorkflows: workflows carry description embeddings
// of their own, so a semantic SearchBoth ranks PE and workflow hits in one
// cosine space, and a workflow-only semantic search probes just the
// workflow index.
func TestSemanticSearchCoversWorkflows(t *testing.T) {
	addr := startServer(t)
	enc, err := codec.Encode(codec.Envelope{Kind: codec.KindPE, Name: "PrimeChecker", Source: peSource})
	if err != nil {
		t.Fatal(err)
	}
	code, raw := doReq(t, http.MethodPost, addr+"/registry/zz46/pe/add", core.AddPERequest{
		PEName: "PrimeChecker", Description: "checks if a number is prime", PECode: enc,
		DescEmbedding: search.EmbedDescription("checks if a number is prime"),
	}, nil)
	if code != http.StatusCreated {
		t.Fatalf("add pe: %d %s", code, raw)
	}
	for _, w := range []struct{ name, desc string }{
		{"primePipeline", "produces numbers and checks them for primality"},
		{"wordPipeline", "streams a text corpus and counts its words"},
	} {
		code, raw = doReq(t, http.MethodPost, addr+"/registry/zz46/workflow/add", core.AddWorkflowRequest{
			WorkflowName: w.name, EntryPoint: w.name, Description: w.desc,
			WorkflowCode:  "WF-" + w.name,
			DescEmbedding: search.EmbedDescription(w.desc),
		}, nil)
		if code != http.StatusCreated {
			t.Fatalf("add workflow %s: %d %s", w.name, code, raw)
		}
	}

	// Workflow-only semantic search hits the workflow index.
	var resp core.SearchResponse
	code, _ = doReq(t, http.MethodGet,
		addr+"/registry/zz46/search/checking+numbers+for+primality/type/workflow?query=semantic", nil, &resp)
	if code != 200 || len(resp.Hits) != 2 || resp.Hits[0].Name != "primePipeline" {
		t.Fatalf("workflow semantic: %d %+v", code, resp)
	}
	for _, h := range resp.Hits {
		if h.Kind != "workflow" {
			t.Fatalf("workflow search returned kind %q: %+v", h.Kind, resp.Hits)
		}
	}

	// SearchBoth merges the two indexes by score; the prime PE and prime
	// workflow must both rank above the word-counting workflow.
	code, _ = doReq(t, http.MethodGet,
		addr+"/registry/zz46/search/checking+numbers+for+primality/type/both?query=semantic", nil, &resp)
	if code != 200 || len(resp.Hits) != 3 {
		t.Fatalf("both semantic: %d %+v", code, resp)
	}
	kinds := map[string]bool{}
	for _, h := range resp.Hits {
		kinds[h.Kind] = true
	}
	if !kinds["pe"] || !kinds["workflow"] {
		t.Fatalf("SearchBoth missing a kind: %+v", resp.Hits)
	}
	if resp.Hits[2].Name != "wordPipeline" {
		t.Fatalf("score merge misranked: %+v", resp.Hits)
	}
	for i := 1; i < len(resp.Hits); i++ {
		if resp.Hits[i].Score > resp.Hits[i-1].Score {
			t.Fatalf("merged hits not score-descending: %+v", resp.Hits)
		}
	}

	// Workflows carry no code embeddings: a workflow-only code query has
	// nothing to rank.
	code, _ = doReq(t, http.MethodGet,
		addr+"/registry/zz46/search/def+f/type/workflow?query=code", nil, &resp)
	if code != 200 || len(resp.Hits) != 0 {
		t.Fatalf("workflow code query: %d %+v", code, resp)
	}
}

// TestBodySizeLimit: a request body over Config.MaxBodyBytes must be
// refused with 413 and the standardized PayloadTooLargeError, on every
// body-accepting endpoint (they all funnel through decodeBody).
func TestBodySizeLimit(t *testing.T) {
	srv := New(Config{Engine: engine.New(engine.Config{InstallDelayScale: 0}), MaxBodyBytes: 512})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	code, raw := doReq(t, http.MethodPost, addr+"/auth/register", core.RegisterUserRequest{
		UserName: strings.Repeat("x", 2048), Password: "pw",
	}, nil)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize body: status %d (%s), want 413", code, raw)
	}
	if !strings.Contains(raw, "PayloadTooLargeError") {
		t.Fatalf("oversize body error shape: %s", raw)
	}
	// A request under the limit still works.
	code, raw = doReq(t, http.MethodPost, addr+"/auth/register",
		core.RegisterUserRequest{UserName: "ok", Password: "pw"}, nil)
	if code != http.StatusCreated {
		t.Fatalf("normal register after limit config: %d %s", code, raw)
	}
}

// TestWriteErrUnwrapsWrappedAPIErrors: an APIError that picked up
// fmt.Errorf wrapping on its way out must keep its real status, not
// collapse to 500.
func TestWriteErrUnwrapsWrappedAPIErrors(t *testing.T) {
	rec := httptest.NewRecorder()
	writeErr(rec, fmt.Errorf("service layer context: %w", core.ErrNotFound("peId", "no PE with id %d", 9)))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("wrapped NotFound surfaced as %d, want 404", rec.Code)
	}
	var apiErr core.APIError
	if err := json.Unmarshal(rec.Body.Bytes(), &apiErr); err != nil || apiErr.Type != "NotFoundError" {
		t.Fatalf("wrapped error body: %s (%v)", rec.Body.String(), err)
	}
}

// TestGracefulShutdown: Close must let an in-flight request finish (the
// historic http.Server.Close dropped it mid-response).
func TestGracefulShutdown(t *testing.T) {
	srv := New(Config{Engine: engine.New(engine.Config{InstallDelayScale: 0})})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// Make the registry slow so the request is genuinely in flight when
	// Close lands.
	srv.Registry().SetLatency(300 * time.Millisecond)
	type result struct {
		code int
		err  error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Get(addr + "/auth/all")
		if err != nil {
			done <- result{0, err}
			return
		}
		defer resp.Body.Close()
		_, _ = io.ReadAll(resp.Body)
		done <- result{resp.StatusCode, nil}
	}()
	time.Sleep(100 * time.Millisecond) // request is inside the handler now
	srv.Close()
	r := <-done
	if r.err != nil {
		t.Fatalf("in-flight request dropped during shutdown: %v", r.err)
	}
	if r.code != http.StatusOK {
		t.Fatalf("in-flight request status %d during shutdown, want 200", r.code)
	}
}

// TestEmbeddingDimValidation: the registration endpoints enforce the
// bi-encoder contract — an embedding is either absent or exactly
// embed.Dim wide. A mis-sized vector must be named and refused with 400,
// not stored to silently score only its common prefix forever after.
func TestEmbeddingDimValidation(t *testing.T) {
	addr := startServer(t)
	enc, err := codec.Encode(codec.Envelope{Kind: codec.KindPE, Name: "DimPE", Source: peSource})
	if err != nil {
		t.Fatal(err)
	}
	bad := make([]float32, embed.Dim+1)

	code, raw := doReq(t, http.MethodPost, addr+"/registry/zz46/pe/add", core.AddPERequest{
		PEName: "DimPE", Description: "d", PECode: enc, DescEmbedding: bad,
	}, nil)
	if code != 400 || !strings.Contains(raw, "BadRequestError") || !strings.Contains(raw, "descEmbedding") {
		t.Fatalf("oversize descEmbedding: %d %s", code, raw)
	}
	code, raw = doReq(t, http.MethodPost, addr+"/registry/zz46/pe/add", core.AddPERequest{
		PEName: "DimPE", Description: "d", PECode: enc, CodeEmbedding: bad[:3],
	}, nil)
	if code != 400 || !strings.Contains(raw, "codeEmbedding") {
		t.Fatalf("undersize codeEmbedding: %d %s", code, raw)
	}
	code, raw = doReq(t, http.MethodPost, addr+"/registry/zz46/workflow/add", core.AddWorkflowRequest{
		WorkflowName: "wfDim", EntryPoint: "e", WorkflowCode: "c", DescEmbedding: bad,
	}, nil)
	if code != 400 || !strings.Contains(raw, "descEmbedding") {
		t.Fatalf("workflow oversize descEmbedding: %d %s", code, raw)
	}

	// Exactly embed.Dim wide — and absent entirely — both register.
	code, raw = doReq(t, http.MethodPost, addr+"/registry/zz46/pe/add", core.AddPERequest{
		PEName: "DimPE", Description: "d", PECode: enc,
		DescEmbedding: search.EmbedDescription("d"),
		CodeEmbedding: search.EmbedCode("def f(): pass"),
	}, nil)
	if code != http.StatusCreated {
		t.Fatalf("exact-dim embeddings refused: %d %s", code, raw)
	}
	code, raw = doReq(t, http.MethodPost, addr+"/registry/zz46/pe/add", core.AddPERequest{
		PEName: "DimPE2", Description: "d", PECode: enc,
	}, nil)
	if code != http.StatusCreated {
		t.Fatalf("absent embeddings refused: %d %s", code, raw)
	}
}

// TestSearchBatchEndpoint: POST /search/batch answers one hit list per
// query, each identical to what the single-query search path returns —
// batching is an amortization, never a semantic change.
func TestSearchBatchEndpoint(t *testing.T) {
	addr := startServer(t)
	for _, p := range []struct{ name, desc string }{
		{"PrimeChecker", "checks if a number is prime"},
		{"WordCounter", "counts the words in a text stream"},
		{"FileReader", "reads the contents of a file"},
	} {
		enc, err := codec.Encode(codec.Envelope{Kind: codec.KindPE, Name: p.name, Source: peSource})
		if err != nil {
			t.Fatal(err)
		}
		code, raw := doReq(t, http.MethodPost, addr+"/registry/zz46/pe/add", core.AddPERequest{
			PEName: p.name, Description: p.desc, PECode: enc,
			DescEmbedding: search.EmbedDescription(p.desc),
			CodeEmbedding: search.EmbedCode("def _process(self):\n    pass"),
		}, nil)
		if code != http.StatusCreated {
			t.Fatalf("add %s: %d %s", p.name, code, raw)
		}
	}
	queries := []string{
		"checks whether a number is prime",
		"counting words in text",
		"reading a file from disk",
	}

	// Server-side embedding from query text.
	var batch core.SearchBatchResponse
	code, raw := doReq(t, http.MethodPost, addr+"/registry/zz46/search/batch", core.SearchBatchRequest{
		QueryType: core.QuerySemantic, Queries: queries, Limit: 2,
	}, &batch)
	if code != 200 || len(batch.Results) != len(queries) {
		t.Fatalf("batch: %d %s", code, raw)
	}
	for i, q := range queries {
		var single core.SearchResponse
		code, _ = doReq(t, http.MethodPost, addr+"/registry/zz46/search", core.SearchRequest{
			Search: q, SearchType: core.SearchPEs, QueryType: core.QuerySemantic, Limit: 2,
		}, &single)
		if code != 200 {
			t.Fatalf("single search %q: %d", q, code)
		}
		if !reflect.DeepEqual(batch.Results[i], single.Hits) {
			t.Fatalf("query %q: batch diverged from single search:\n got %+v\nwant %+v", q, batch.Results[i], single.Hits)
		}
	}
	if batch.Results[0][0].Name != "PrimeChecker" {
		t.Fatalf("batch misranked: %+v", batch.Results[0])
	}

	// Pre-embedded client-side batch takes the same path.
	embs := make([][]float32, len(queries))
	for i, q := range queries {
		embs[i] = search.EmbedDescription(q)
	}
	var preEmb core.SearchBatchResponse
	code, raw = doReq(t, http.MethodPost, addr+"/registry/zz46/search/batch", core.SearchBatchRequest{
		QueryType: core.QuerySemantic, QueryEmbeddings: embs, Limit: 2,
	}, &preEmb)
	if code != 200 || !reflect.DeepEqual(preEmb.Results, batch.Results) {
		t.Fatalf("pre-embedded batch diverged: %d %s", code, raw)
	}

	// Code-completion batches rank by code embeddings.
	var codeBatch core.SearchBatchResponse
	code, raw = doReq(t, http.MethodPost, addr+"/registry/zz46/search/batch", core.SearchBatchRequest{
		QueryType: core.QueryCode, Queries: []string{"def _process(self):"},
	}, &codeBatch)
	if code != 200 || len(codeBatch.Results) != 1 || len(codeBatch.Results[0]) == 0 {
		t.Fatalf("code batch: %d %s", code, raw)
	}

	// Degenerate and invalid requests are named 400s.
	code, raw = doReq(t, http.MethodPost, addr+"/registry/zz46/search/batch", core.SearchBatchRequest{}, nil)
	if code != 400 || !strings.Contains(raw, "BadRequestError") {
		t.Fatalf("empty batch: %d %s", code, raw)
	}
	code, raw = doReq(t, http.MethodPost, addr+"/registry/zz46/search/batch", core.SearchBatchRequest{
		QueryType: "nonsense", Queries: []string{"x"},
	}, nil)
	if code != 400 || !strings.Contains(raw, "query type") {
		t.Fatalf("bad query type: %d %s", code, raw)
	}
	// Unknown user 404s like every registry route.
	code, raw = doReq(t, http.MethodPost, addr+"/registry/nobody/search/batch", core.SearchBatchRequest{
		Queries: []string{"x"},
	}, nil)
	if code != 404 {
		t.Fatalf("unknown user batch: %d %s", code, raw)
	}
}
