package server

import (
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"testing"

	"laminar/internal/core"
	"laminar/internal/engine"
	"laminar/internal/search"
)

// addHybridPE registers a PE the bi-encoder way — client-computed
// embeddings travel with the record — so both hybrid legs have something
// to retrieve. The code is raw source (not an envelope): the lexical index
// falls back to indexing it verbatim.
func addHybridPE(t *testing.T, addr, name, desc, source string) core.PERecord {
	t.Helper()
	var rec core.PERecord
	code, raw := doReq(t, http.MethodPost, addr+"/registry/zz46/pe/add", core.AddPERequest{
		PEName:        name,
		Description:   desc,
		PECode:        source,
		CodeEmbedding: search.EmbedCode(source),
		DescEmbedding: search.EmbedDescription(desc),
	}, &rec)
	if code != http.StatusCreated {
		t.Fatalf("add PE %s: %d %s", name, code, raw)
	}
	return rec
}

func TestSearchModeHybridFindsExactIdentifier(t *testing.T) {
	addr := startServer(t)
	// Near-identical descriptions: the ANN leg cannot tell these apart, so
	// only the BM25 leg over the code can pin the exact identifier.
	var want core.PERecord
	for i, ident := range []string{"seismic_pick_0042", "seismic_pick_0043", "seismic_pick_0044"} {
		rec := addHybridPE(t, addr, ident,
			"a PE that picks seismic phase arrivals",
			"def "+ident+"(stream):\n    return stream")
		if i == 0 {
			want = rec
		}
	}
	q := "seismic_pick_0042"
	var res core.SearchResponse
	code, raw := doReq(t, http.MethodPost, addr+"/registry/zz46/search", core.SearchRequest{
		Search:         q,
		SearchType:     core.SearchPEs,
		QueryType:      core.QuerySemantic,
		QueryEmbedding: search.EmbedDescription(q),
		Mode:           core.ModeHybrid,
		Limit:          2,
	}, &res)
	if code != 200 || len(res.Hits) == 0 || res.Hits[0].ID != want.PEID {
		t.Fatalf("hybrid exact-identifier query: %d %s", code, raw)
	}
	// The reranked mode answers the same query too.
	code, raw = doReq(t, http.MethodPost, addr+"/registry/zz46/search", core.SearchRequest{
		Search:         q,
		SearchType:     core.SearchPEs,
		QueryType:      core.QuerySemantic,
		QueryEmbedding: search.EmbedDescription(q),
		Mode:           core.ModeReranked,
		Limit:          2,
	}, &res)
	if code != 200 || len(res.Hits) == 0 {
		t.Fatalf("reranked query: %d %s", code, raw)
	}
}

func TestSearchModeGETFormAndBadMode(t *testing.T) {
	addr := startServer(t)
	rec := addHybridPE(t, addr, "waveform_taper_7731",
		"a PE that tapers waveform windows",
		"def waveform_taper_7731(stream):\n    return stream")
	// The GET path form carries the mode as a query parameter; no client
	// embedding travels, so the server embeds and the lexical leg still
	// pins the exact identifier.
	var res core.SearchResponse
	u := fmt.Sprintf("%s/registry/zz46/search/%s/type/pe?query=semantic&mode=hybrid",
		addr, url.PathEscape("waveform_taper_7731"))
	code, raw := doReq(t, http.MethodGet, u, nil, &res)
	if code != 200 || len(res.Hits) == 0 || res.Hits[0].ID != rec.PEID {
		t.Fatalf("GET hybrid search: %d %s", code, raw)
	}
	// An unknown mode is a 400, not a silent ANN fallback.
	code, raw = doReq(t, http.MethodPost, addr+"/registry/zz46/search", core.SearchRequest{
		Search:    "waveform",
		QueryType: core.QuerySemantic,
		Mode:      "bm25",
	}, nil)
	if code != http.StatusBadRequest || !strings.Contains(raw, "BadRequestError") {
		t.Fatalf("unknown mode: %d %s", code, raw)
	}
	// Code queries accept modes too.
	code, raw = doReq(t, http.MethodPost, addr+"/registry/zz46/search", core.SearchRequest{
		Search:     "waveform_taper_7731",
		SearchType: core.SearchPEs,
		QueryType:  core.QueryCode,
		Mode:       core.ModeHybrid,
	}, &res)
	if code != 200 || len(res.Hits) == 0 || res.Hits[0].ID != rec.PEID {
		t.Fatalf("hybrid code query: %d %s", code, raw)
	}
}

// TestSearchModeServerDefault pins Config.SearchMode: requests that name
// no mode run the configured pipeline, and an explicit per-request mode
// overrides it.
func TestSearchModeServerDefault(t *testing.T) {
	srv := New(Config{
		Engine:     engine.New(engine.Config{InstallDelayScale: 0}),
		SearchMode: core.ModeHybrid,
	})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	if code, _ := doReq(t, http.MethodPost, addr+"/auth/register",
		core.RegisterUserRequest{UserName: "zz46", Password: "password"}, nil); code != http.StatusCreated {
		t.Fatalf("register status %d", code)
	}
	var want core.PERecord
	for i, ident := range []string{"tremor_scan_0917", "tremor_scan_0918"} {
		rec := addHybridPE(t, addr, ident,
			"a PE that scans tremor episodes",
			"def "+ident+"(stream):\n    return stream")
		if i == 0 {
			want = rec
		}
	}
	// No mode in the request: the server's hybrid default finds the exact
	// identifier the pure-ANN pipeline cannot separate.
	var res core.SearchResponse
	code, raw := doReq(t, http.MethodPost, addr+"/registry/zz46/search", core.SearchRequest{
		Search:         "tremor_scan_0917",
		SearchType:     core.SearchPEs,
		QueryType:      core.QuerySemantic,
		QueryEmbedding: search.EmbedDescription("tremor_scan_0917"),
		Limit:          1,
	}, &res)
	if code != 200 || len(res.Hits) != 1 || res.Hits[0].ID != want.PEID {
		t.Fatalf("server-default hybrid: %d %s", code, raw)
	}
	// An explicit per-request mode still overrides the default.
	code, raw = doReq(t, http.MethodPost, addr+"/registry/zz46/search", core.SearchRequest{
		Search:         "scans tremor episodes",
		SearchType:     core.SearchPEs,
		QueryType:      core.QuerySemantic,
		QueryEmbedding: search.EmbedDescription("scans tremor episodes"),
		Mode:           core.ModeANN,
		Limit:          1,
	}, &res)
	if code != 200 || len(res.Hits) != 1 {
		t.Fatalf("explicit ann override: %d %s", code, raw)
	}
}

func TestBadSearchModePanicsAtStartup(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted a bogus Config.SearchMode")
		}
	}()
	New(Config{SearchMode: "bm25"})
}

// TestHybridPreEmbeddedQuerySkipsServerEmbedding audits the bi-encoder
// contract on the hybrid path: a request that carries its own embedding is
// compared, never re-embedded. The probe sends a search TEXT aimed at one
// PE with an EMBEDDING aimed at a semantically disjoint one — the second
// PE can only surface if the server used the client's embedding verbatim
// (re-embedding the text server-side would point the ANN leg at the first).
func TestHybridPreEmbeddedQuerySkipsServerEmbedding(t *testing.T) {
	addr := startServer(t)
	lexTarget := addHybridPE(t, addr, "photon_gate_5501",
		"a PE that gates photon arrival events",
		"def photon_gate_5501(stream):\n    return stream")
	annTarget := addHybridPE(t, addr, "orbitPlotter",
		"a PE that renders orbital trajectory dashboards",
		"def orbit_plotter(stream):\n    return stream")
	var res core.SearchResponse
	code, raw := doReq(t, http.MethodPost, addr+"/registry/zz46/search", core.SearchRequest{
		Search:         "photon_gate_5501",
		SearchType:     core.SearchPEs,
		QueryType:      core.QuerySemantic,
		QueryEmbedding: search.EmbedDescription("renders orbital trajectory dashboards"),
		Mode:           core.ModeHybrid,
		Limit:          5,
	}, &res)
	if code != 200 {
		t.Fatalf("hybrid search: %d %s", code, raw)
	}
	var sawLex, sawANN bool
	for _, h := range res.Hits {
		switch h.ID {
		case lexTarget.PEID:
			sawLex = true
		case annTarget.PEID:
			sawANN = true
		}
	}
	if !sawANN {
		t.Fatalf("ANN leg ignored the client embedding (server re-embedded the text?): %+v", res.Hits)
	}
	if !sawLex {
		t.Fatalf("lexical leg missed its exact identifier: %+v", res.Hits)
	}
}
