// Package server implements Laminar's Server (Section 3.2): the layered
// Controller / Service / DAO architecture exposing every endpoint of
// Table 3 over JSON HTTP. Controllers parse requests and shape responses;
// the Service layer holds the business logic (resolving workflows for
// execution, dispatching searches); the DAO layer is the registry store.
// Errors follow the standardized JSON format of Section 3.2.5.
package server

import (
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"time"

	"laminar/internal/cluster"
	"laminar/internal/core"
	"laminar/internal/dataflow"
	"laminar/internal/embed"
	"laminar/internal/engine"
	"laminar/internal/qcache"
	"laminar/internal/registry"
	"laminar/internal/search"
	"laminar/internal/telemetry"
)

// DefaultMaxBodyBytes caps request bodies when Config.MaxBodyBytes is 0.
// Generous for legitimate traffic — serialized PE/workflow code envelopes
// plus embeddings are tens of kilobytes — while keeping a hostile client
// from streaming gigabytes into a JSON decoder.
const DefaultMaxBodyBytes = 8 << 20

// shutdownGrace bounds how long Close waits for in-flight requests before
// forcing the listener down.
const shutdownGrace = 5 * time.Second

// Config assembles a server.
type Config struct {
	// Registry is the DAO layer; a fresh store is created when nil.
	Registry *registry.Store
	// Engine handles /execution requests; a default engine is created when
	// nil.
	Engine *engine.Engine
	// SearchLimit caps search hit lists (0 = search.DefaultLimit).
	SearchLimit int
	// SearchMode is the default retrieval pipeline for semantic and code
	// queries when the request doesn't name one: core.ModeANN (the default
	// when empty), core.ModeHybrid or core.ModeReranked. Any other value
	// panics in New — a typo silently falling back to ANN would hide the
	// operator's intent.
	SearchMode string
	// MaxBodyBytes caps request body sizes (0 = DefaultMaxBodyBytes;
	// negative disables the limit).
	MaxBodyBytes int64
	// Telemetry is the metric registry the server (and its registry
	// store) report into; a fresh one is created when nil. Each server
	// needs its own — instrument names are registered once per telemetry
	// registry.
	Telemetry *telemetry.Registry
	// Metrics, when true, exposes the telemetry registry at GET /metrics
	// (Prometheus text format). Collection always runs — atomic counters
	// cost nothing worth flagging off — this only gates the endpoint.
	Metrics bool
	// MetricsAuthToken, when non-empty, requires scrapes to present it as
	// "Authorization: Bearer <token>"; other requests get 403.
	MetricsAuthToken string
	// MetricsAllow, when non-empty, lists CIDRs (e.g. "10.0.0.0/8") whose
	// source addresses may scrape without a token. Token and allowlist
	// compose as OR: either satisfies the guard. Both empty = open.
	MetricsAllow []string
	// Cluster, when set, makes this node a coordinator: semantic and code
	// searches scatter-gather across the configured shards instead of
	// probing the local indexes. Text search and every other endpoint stay
	// local.
	Cluster *cluster.Coordinator
	// CacheSize bounds the generation-tagged query-result cache, in
	// entries (0 = caching off). Cached semantic/code results are
	// invalidated by the registry mutation epoch and the vector indexes'
	// retrain generation, so the cache can never serve results computed
	// against a world that has since changed. See docs/search.md.
	CacheSize int
	// ClusterCacheTTL bounds staleness of the coordinator-tier cache. A
	// coordinator cannot observe its shards' mutation epochs, so its
	// cached fan-out results expire by clock instead of by tag
	// (0 = DefaultClusterCacheTTL; negative disables the coordinator
	// tier while keeping the local one). Ignored without Cluster.
	ClusterCacheTTL time.Duration
	// DeltaMaxSegments and DeltaCompactRatio override the registry's
	// delta-journal compaction policy when > 0 (see
	// registry.DeltaPolicy and docs/storage.md).
	DeltaMaxSegments  int
	DeltaCompactRatio float64
}

// DefaultClusterCacheTTL bounds coordinator-tier cache staleness when
// Config.ClusterCacheTTL is 0: long enough to absorb a hot-query burst,
// short enough that a shard-side write is visible within a beat.
const DefaultClusterCacheTTL = 2 * time.Second

// Server is the Laminar API server.
type Server struct {
	reg   *registry.Store
	eng   *engine.Engine
	mux   *http.ServeMux
	root  http.Handler // mux wrapped in the telemetry middleware
	cfg   Config
	httpS *http.Server
	addr  string

	telem       *telemetry.Registry
	httpReqs    *telemetry.CounterVec   // laminar_http_requests_total{route,code}
	httpLatency *telemetry.HistogramVec // laminar_http_request_seconds{route}

	// cache holds local semantic/code search results tagged with the
	// registry epoch + index generation they were computed against;
	// coordCache holds coordinator fan-out results, TTL-expired (shard
	// epochs are invisible here). Both nil when caching is off.
	cache      *qcache.Cache[[]core.SearchHit]
	coordCache *qcache.Cache[cluster.Result]

	// metricsAllow holds the parsed Config.MetricsAllow networks.
	metricsAllow []*net.IPNet
}

// New assembles the controller tree.
func New(cfg Config) *Server {
	if cfg.Registry == nil {
		cfg.Registry = registry.NewStore()
	}
	if cfg.Engine == nil {
		cfg.Engine = engine.New(engine.Config{})
	}
	if cfg.Telemetry == nil {
		cfg.Telemetry = telemetry.NewRegistry()
	}
	s := &Server{reg: cfg.Registry, eng: cfg.Engine, cfg: cfg, mux: http.NewServeMux(), telem: cfg.Telemetry}
	s.httpReqs = s.telem.CounterVec("laminar_http_requests_total",
		"HTTP requests served, by matched route pattern and status code.", "route", "code")
	s.httpLatency = s.telem.HistogramVec("laminar_http_request_seconds",
		"HTTP request latency by matched route pattern.", telemetry.LatencyBuckets(), "route")
	// An owner that instrumented the store before handing it over (the
	// façade does, so its startup Load is counted) keeps its wiring.
	if !s.reg.Instrumented() {
		s.reg.SetTelemetry(s.telem)
	}
	// The execution engine's laminar_flow_* families register here too, at
	// startup, so /metrics advertises them (and the runbook sync holds)
	// before the first workflow runs.
	if !s.eng.Instrumented() {
		s.eng.SetTelemetry(s.telem)
	}
	// The laminar_cluster_* families register unconditionally — even a
	// plain single-node server advertises them (empty) on /metrics, which
	// is what keeps the docs/operations.md runbook sync that metrics-smoke
	// enforces valid for every deployment shape. A coordinator additionally
	// feeds them.
	clusterMetrics := cluster.NewMetrics(s.telem)
	if cfg.Cluster != nil {
		cfg.Cluster.SetMetrics(clusterMetrics)
	}
	// The laminar_cache_* families register unconditionally (same runbook
	// contract as the cluster families above); both tiers' children exist
	// from startup so a scrape shows zeros, not absence. The caches
	// themselves come to life only with a CacheSize.
	cacheHits := s.telem.CounterVec("laminar_cache_hits_total",
		"Query-cache lookups answered from cache.", "cache")
	cacheMisses := s.telem.CounterVec("laminar_cache_misses_total",
		"Query-cache lookups that had to run the full retrieval pipeline.", "cache")
	cacheInvalidations := s.telem.CounterVec("laminar_cache_invalidations_total",
		"Query-cache entries dropped because their epoch/generation tag or TTL no longer matched.", "cache")
	cacheEvictions := s.telem.CounterVec("laminar_cache_evictions_total",
		"Query-cache entries evicted by the LRU capacity bound.", "cache")
	cacheEntries := s.telem.GaugeVec("laminar_cache_entries",
		"Live query-cache entries.", "cache")
	tierMetrics := func(tier string) qcache.Metrics {
		return qcache.Metrics{
			Hits:          cacheHits.With(tier),
			Misses:        cacheMisses.With(tier),
			Invalidations: cacheInvalidations.With(tier),
			Evictions:     cacheEvictions.With(tier),
			Entries:       cacheEntries.With(tier),
		}
	}
	localCacheMetrics := tierMetrics("local")
	coordCacheMetrics := tierMetrics("coordinator")
	if cfg.CacheSize > 0 {
		s.cache = qcache.New[[]core.SearchHit](qcache.Options{
			MaxEntries: cfg.CacheSize,
			Metrics:    localCacheMetrics,
		})
		if cfg.Cluster != nil && cfg.ClusterCacheTTL >= 0 {
			ttl := cfg.ClusterCacheTTL
			if ttl == 0 {
				ttl = DefaultClusterCacheTTL
			}
			s.coordCache = qcache.New[cluster.Result](qcache.Options{
				MaxEntries: cfg.CacheSize,
				TTL:        ttl,
				Metrics:    coordCacheMetrics,
			})
		}
	}
	if cfg.DeltaMaxSegments > 0 || cfg.DeltaCompactRatio > 0 {
		s.reg.SetDeltaPolicy(registry.DeltaPolicy{
			MaxSegments:  cfg.DeltaMaxSegments,
			CompactRatio: cfg.DeltaCompactRatio,
		})
	}
	// Fail fast on a bad default search mode, same rationale as the CIDR
	// check below: configuration typos should stop the process, not
	// silently serve a different pipeline than the operator asked for.
	switch cfg.SearchMode {
	case "", core.ModeANN, core.ModeHybrid, core.ModeReranked:
	default:
		panic(fmt.Sprintf("server: bad -search-mode %q (want ann, hybrid or reranked)", cfg.SearchMode))
	}
	// Fail fast on an unparsable scrape allowlist: a typo silently skipped
	// would leave /metrics more open (or more closed) than configured.
	for _, cidr := range cfg.MetricsAllow {
		_, ipnet, err := net.ParseCIDR(strings.TrimSpace(cidr))
		if err != nil {
			panic(fmt.Sprintf("server: bad -metrics-allow CIDR %q: %v", cidr, err))
		}
		s.metricsAllow = append(s.metricsAllow, ipnet)
	}
	// Process-health gauges, evaluated at scrape time so idle servers pay
	// nothing between scrapes. See docs/operations.md for runbook guidance.
	s.telem.GaugeFunc("laminar_process_goroutines",
		"Live goroutines in the server process.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	s.telem.GaugeFunc("laminar_process_heap_inuse_bytes",
		"Bytes of heap memory in active use (runtime MemStats HeapInuse).",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapInuse)
		})
	s.routes()
	s.root = s.instrument(s.mux)
	return s
}

// Registry exposes the DAO layer (tests, embedded mode).
func (s *Server) Registry() *registry.Store { return s.reg }

// Telemetry exposes the metric registry the server reports into (the
// /metrics endpoint serves exactly this).
func (s *Server) Telemetry() *telemetry.Registry { return s.telem }

// Handler returns the root HTTP handler (the controller tree wrapped in
// the per-route telemetry middleware).
func (s *Server) Handler() http.Handler { return s.root }

// instrument wraps the mux with per-route accounting: request counts by
// route pattern and status code, latency histograms by route pattern.
// The route label is the ServeMux pattern that matched ("POST
// /registry/{user}/search"), not the raw URL — bounded cardinality, and
// it aggregates across users by construction. Unmatched requests (404s
// from outside the route table) share one "unmatched" label.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r)
		route := r.Pattern
		if route == "" {
			route = "unmatched"
		}
		s.httpReqs.With(route, strconv.Itoa(rec.status)).Inc()
		s.httpLatency.With(route).ObserveSince(start)
	})
}

// statusRecorder captures the status code written by a handler.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// Start listens on addr ("127.0.0.1:0" picks a free port) and serves in the
// background, returning the base URL.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.addr = "http://" + ln.Addr().String()
	s.httpS = &http.Server{Handler: s.root, ReadHeaderTimeout: 10 * time.Second}
	go func() { _ = s.httpS.Serve(ln) }()
	return s.addr, nil
}

// BaseURL returns the server root once started.
func (s *Server) BaseURL() string { return s.addr }

// Close stops the server gracefully: in-flight requests get up to
// shutdownGrace to complete (new connections are refused immediately);
// whatever is still running after that is cut off hard. The historic
// behavior — http.Server.Close dropping live requests mid-response — made
// every deployment restart a visible error for some client.
func (s *Server) Close() {
	if s.httpS == nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	if err := s.httpS.Shutdown(ctx); err != nil {
		_ = s.httpS.Close()
	}
}

// routes wires every Table 3 endpoint.
func (s *Server) routes() {
	// User controller
	s.mux.HandleFunc("GET /auth/all", s.handleUsers)
	s.mux.HandleFunc("POST /auth/login", s.handleLogin)
	s.mux.HandleFunc("POST /auth/register", s.handleRegister)

	// PE controller
	s.mux.HandleFunc("POST /registry/{user}/pe/add", s.withUser(s.handleAddPE))
	s.mux.HandleFunc("GET /registry/{user}/pe/all", s.withUser(s.handleAllPEs))
	s.mux.HandleFunc("GET /registry/{user}/pe/id/{id}", s.withUser(s.handlePEByID))
	s.mux.HandleFunc("GET /registry/{user}/pe/name/{name}", s.withUser(s.handlePEByName))
	s.mux.HandleFunc("DELETE /registry/{user}/pe/remove/id/{id}", s.withUser(s.handleRemovePEByID))
	s.mux.HandleFunc("DELETE /registry/{user}/pe/remove/name/{name}", s.withUser(s.handleRemovePEByName))

	// Workflow controller
	s.mux.HandleFunc("POST /registry/{user}/workflow/add", s.withUser(s.handleAddWorkflow))
	s.mux.HandleFunc("GET /registry/{user}/workflow/all", s.withUser(s.handleAllWorkflows))
	s.mux.HandleFunc("GET /registry/{user}/workflow/id/{id}", s.withUser(s.handleWorkflowByID))
	s.mux.HandleFunc("GET /registry/{user}/workflow/name/{name}", s.withUser(s.handleWorkflowByName))
	s.mux.HandleFunc("GET /registry/{user}/workflow/pes/id/{id}", s.withUser(s.handleWorkflowPEsByID))
	s.mux.HandleFunc("GET /registry/{user}/workflow/pes/name/{name}", s.withUser(s.handleWorkflowPEsByName))
	s.mux.HandleFunc("DELETE /registry/{user}/workflow/remove/id/{id}", s.withUser(s.handleRemoveWorkflowByID))
	s.mux.HandleFunc("DELETE /registry/{user}/workflow/remove/name/{name}", s.withUser(s.handleRemoveWorkflowByName))
	s.mux.HandleFunc("PUT /registry/{user}/workflow/{workflowId}/pe/{peId}", s.withUser(s.handleAssociatePE))

	// Registry controller
	s.mux.HandleFunc("GET /registry/{user}/all", s.withUser(s.handleRegistryAll))
	s.mux.HandleFunc("GET /registry/{user}/search/{search}/type/{type}", s.withUser(s.handleSearch))
	s.mux.HandleFunc("POST /registry/{user}/search", s.withUser(s.handleSearchPost))
	s.mux.HandleFunc("POST /registry/{user}/search/batch", s.withUser(s.handleSearchBatch))

	// Execution controller
	s.mux.HandleFunc("POST /execution/{user}/run", s.withUser(s.handleRun))

	// Observability. Flag-gated: a deployment that does not want the
	// operational surface reachable simply leaves it off; collection runs
	// either way. See docs/operations.md for the metric reference.
	if s.cfg.Metrics {
		s.mux.Handle("GET /metrics", s.guardMetrics(s.telem.Handler()))
	}
}

// guardMetrics wraps the /metrics endpoint in the optional scrape
// protection: a bearer token, a source-CIDR allowlist, or both (OR'd).
// With neither configured the endpoint stays open, as before.
func (s *Server) guardMetrics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		token := s.cfg.MetricsAuthToken
		if token == "" && len(s.metricsAllow) == 0 {
			next.ServeHTTP(w, r)
			return
		}
		if token != "" {
			got := strings.TrimPrefix(r.Header.Get("Authorization"), "Bearer ")
			if subtle.ConstantTimeCompare([]byte(got), []byte(token)) == 1 {
				next.ServeHTTP(w, r)
				return
			}
		}
		if len(s.metricsAllow) > 0 {
			host, _, err := net.SplitHostPort(r.RemoteAddr)
			if err != nil {
				host = r.RemoteAddr
			}
			if ip := net.ParseIP(host); ip != nil {
				for _, n := range s.metricsAllow {
					if n.Contains(ip) {
						next.ServeHTTP(w, r)
						return
					}
				}
			}
		}
		writeJSON(w, http.StatusForbidden,
			&core.APIError{Type: "ForbiddenError", Code: http.StatusForbidden, Message: "metrics scrape rejected: present the bearer token or scrape from an allowed network"})
	})
}

// ---- plumbing ----

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeErr maps an error to the standardized JSON error body and the
// matching HTTP status. errors.As (not a bare type assertion) so an
// APIError that picked up wrapping layers on the way out of the service
// stack still reaches the client with its real status instead of a
// blanket 500; an oversize body surfaces as 413 even when it was detected
// somewhere other than decodeBody.
func writeErr(w http.ResponseWriter, err error) {
	var apiErr *core.APIError
	if errors.As(err, &apiErr) {
		writeJSON(w, apiErr.HTTPStatus(), apiErr)
		return
	}
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		writeJSON(w, http.StatusRequestEntityTooLarge,
			core.ErrTooLarge("body", "request body exceeds the %d-byte limit", tooBig.Limit))
		return
	}
	writeJSON(w, http.StatusInternalServerError, core.ErrInternal("%v", err))
}

// decodeBody parses a JSON request body under the configured size cap.
// Every body-accepting controller funnels through here, so no handler can
// forget the MaxBytesReader wrap (which also hard-stops the underlying
// read, protecting the connection, not just the decoder).
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	limit := s.cfg.MaxBodyBytes
	if limit == 0 {
		limit = DefaultMaxBodyBytes
	}
	if limit > 0 {
		r.Body = http.MaxBytesReader(w, r.Body, limit)
	}
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return core.ErrTooLarge("body", "request body exceeds the %d-byte limit", tooBig.Limit)
		}
		return core.ErrBadRequest("body", "invalid JSON: %v", err)
	}
	return nil
}

// withUser resolves the {user} path segment to a user record before the
// controller body runs.
func (s *Server) withUser(h func(w http.ResponseWriter, r *http.Request, user *core.UserRecord)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("user")
		user, err := s.reg.UserByName(name)
		if err != nil {
			writeErr(w, err)
			return
		}
		h(w, r, user)
	}
}

func pathInt(r *http.Request, key string) (int, error) {
	raw := r.PathValue(key)
	n, err := strconv.Atoi(raw)
	if err != nil {
		return 0, core.ErrBadRequest(key, "%q is not an integer id", raw)
	}
	return n, nil
}

// ---- User controller ----

func (s *Server) handleUsers(w http.ResponseWriter, r *http.Request) {
	users := s.reg.Users()
	// never expose password hashes
	writeJSON(w, http.StatusOK, users)
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req core.RegisterUserRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		writeErr(w, err)
		return
	}
	u, err := s.reg.RegisterUser(req.UserName, req.Password)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, core.AuthResponse{UserID: u.UserID, UserName: u.UserName})
}

func (s *Server) handleLogin(w http.ResponseWriter, r *http.Request) {
	var req core.LoginRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		writeErr(w, err)
		return
	}
	u, token, err := s.reg.Login(req.UserName, req.Password)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, core.AuthResponse{UserID: u.UserID, UserName: u.UserName, Token: token})
}

// ---- PE controller ----

// checkEmbeddingDim enforces the bi-encoder registration contract at the
// controller: an embedding is either absent or exactly embed.Dim wide.
// A mis-sized vector would be stored verbatim and then silently score only
// its common prefix against every query — a correctness bug that looks
// like mysteriously-bad recall. Rejecting at the boundary names the field
// and the expected width instead. (The registry layer itself stays
// width-agnostic: its unit tests exercise small toy vectors.)
func checkEmbeddingDim(field string, v []float32) error {
	if len(v) != 0 && len(v) != embed.Dim {
		return core.ErrBadRequest(field, "embedding has dimension %d, want %d", len(v), embed.Dim)
	}
	return nil
}

func (s *Server) handleAddPE(w http.ResponseWriter, r *http.Request, user *core.UserRecord) {
	var req core.AddPERequest
	if err := s.decodeBody(w, r, &req); err != nil {
		writeErr(w, err)
		return
	}
	if err := checkEmbeddingDim("codeEmbedding", req.CodeEmbedding); err != nil {
		writeErr(w, err)
		return
	}
	if err := checkEmbeddingDim("descEmbedding", req.DescEmbedding); err != nil {
		writeErr(w, err)
		return
	}
	pe, err := s.reg.AddPE(user.UserID, req)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, pe)
}

func (s *Server) handleAllPEs(w http.ResponseWriter, r *http.Request, user *core.UserRecord) {
	writeJSON(w, http.StatusOK, s.reg.PEsForUser(user.UserID))
}

func (s *Server) handlePEByID(w http.ResponseWriter, r *http.Request, user *core.UserRecord) {
	id, err := pathInt(r, "id")
	if err != nil {
		writeErr(w, err)
		return
	}
	pe, err := s.reg.PEByID(user.UserID, id)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, pe)
}

func (s *Server) handlePEByName(w http.ResponseWriter, r *http.Request, user *core.UserRecord) {
	pe, err := s.reg.PEByName(user.UserID, r.PathValue("name"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, pe)
}

func (s *Server) handleRemovePEByID(w http.ResponseWriter, r *http.Request, user *core.UserRecord) {
	id, err := pathInt(r, "id")
	if err != nil {
		writeErr(w, err)
		return
	}
	if err := s.reg.RemovePE(user.UserID, id); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "removed"})
}

func (s *Server) handleRemovePEByName(w http.ResponseWriter, r *http.Request, user *core.UserRecord) {
	if err := s.reg.RemovePEByName(user.UserID, r.PathValue("name")); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "removed"})
}

// ---- Workflow controller ----

func (s *Server) handleAddWorkflow(w http.ResponseWriter, r *http.Request, user *core.UserRecord) {
	var req core.AddWorkflowRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		writeErr(w, err)
		return
	}
	if err := checkEmbeddingDim("descEmbedding", req.DescEmbedding); err != nil {
		writeErr(w, err)
		return
	}
	// Registration-time dataflow lint (ROADMAP item 4): workflow code that
	// builds into a graph must pass Graph.Lint, so defective dataflows —
	// cycles, dangling ports, ambiguous roots — are rejected here with a
	// named defect instead of failing at run time. Code the engine cannot
	// even decode as a workflow envelope (legacy opaque blobs) registers
	// unchecked, as before.
	issues, err := s.eng.LintWorkflow(req.WorkflowCode)
	if err != nil {
		writeErr(w, err)
		return
	}
	if len(issues) > 0 {
		writeErr(w, core.ErrBadRequest("workflowCode", "workflow failed dataflow lint: %s", dataflow.LintSummary(issues)))
		return
	}
	wf, err := s.reg.AddWorkflow(user.UserID, req)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, wf)
}

func (s *Server) handleAllWorkflows(w http.ResponseWriter, r *http.Request, user *core.UserRecord) {
	writeJSON(w, http.StatusOK, s.reg.WorkflowsForUser(user.UserID))
}

func (s *Server) handleWorkflowByID(w http.ResponseWriter, r *http.Request, user *core.UserRecord) {
	id, err := pathInt(r, "id")
	if err != nil {
		writeErr(w, err)
		return
	}
	wf, err := s.reg.WorkflowByID(user.UserID, id)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, wf)
}

func (s *Server) handleWorkflowByName(w http.ResponseWriter, r *http.Request, user *core.UserRecord) {
	wf, err := s.reg.WorkflowByName(user.UserID, r.PathValue("name"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, wf)
}

func (s *Server) handleWorkflowPEsByID(w http.ResponseWriter, r *http.Request, user *core.UserRecord) {
	id, err := pathInt(r, "id")
	if err != nil {
		writeErr(w, err)
		return
	}
	pes, err := s.reg.PEsByWorkflow(user.UserID, id)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, pes)
}

func (s *Server) handleWorkflowPEsByName(w http.ResponseWriter, r *http.Request, user *core.UserRecord) {
	wf, err := s.reg.WorkflowByName(user.UserID, r.PathValue("name"))
	if err != nil {
		writeErr(w, err)
		return
	}
	pes, err := s.reg.PEsByWorkflow(user.UserID, wf.WorkflowID)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, pes)
}

func (s *Server) handleRemoveWorkflowByID(w http.ResponseWriter, r *http.Request, user *core.UserRecord) {
	id, err := pathInt(r, "id")
	if err != nil {
		writeErr(w, err)
		return
	}
	if err := s.reg.RemoveWorkflow(user.UserID, id); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "removed"})
}

func (s *Server) handleRemoveWorkflowByName(w http.ResponseWriter, r *http.Request, user *core.UserRecord) {
	if err := s.reg.RemoveWorkflowByName(user.UserID, r.PathValue("name")); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "removed"})
}

func (s *Server) handleAssociatePE(w http.ResponseWriter, r *http.Request, user *core.UserRecord) {
	wfID, err := pathInt(r, "workflowId")
	if err != nil {
		writeErr(w, err)
		return
	}
	peID, err := pathInt(r, "peId")
	if err != nil {
		writeErr(w, err)
		return
	}
	if err := s.reg.AssociatePE(user.UserID, wfID, peID); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "associated"})
}

// ---- Registry controller ----

func (s *Server) handleRegistryAll(w http.ResponseWriter, r *http.Request, user *core.UserRecord) {
	writeJSON(w, http.StatusOK, s.reg.Listing(user.UserID))
}

// handleSearch serves the path form of Table 3:
// GET /registry/{user}/search/{search}/type/{type}?query=text|semantic|code
func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request, user *core.UserRecord) {
	req := core.SearchRequest{
		Search:     r.PathValue("search"),
		SearchType: core.SearchType(strings.ToLower(r.PathValue("type"))),
		QueryType:  core.QueryType(strings.ToLower(r.URL.Query().Get("query"))),
		Mode:       strings.ToLower(r.URL.Query().Get("mode")),
	}
	if req.QueryType == "" {
		req.QueryType = core.QueryText
	}
	s.search(w, r, user, req)
}

// handleSearchPost accepts the full SearchRequest body (semantic and code
// queries carry client-computed embeddings this way).
func (s *Server) handleSearchPost(w http.ResponseWriter, r *http.Request, user *core.UserRecord) {
	var req core.SearchRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		writeErr(w, err)
		return
	}
	s.search(w, r, user, req)
}

// search is the Service-layer dispatch across the three mechanisms. Text
// queries still match over the user's record listing; semantic and code
// queries are answered by the registry's incrementally maintained vector
// indexes — or, on a coordinator node, scatter-gathered across the
// cluster's shards and merged into one global ranking.
func (s *Server) search(w http.ResponseWriter, r *http.Request, user *core.UserRecord, req core.SearchRequest) {
	if req.SearchType == "" {
		req.SearchType = core.SearchBoth
	}
	switch req.SearchType {
	case core.SearchPEs, core.SearchWorkflows, core.SearchBoth:
	default:
		writeErr(w, core.ErrBadRequest("type", "unknown search type %q (want pe, workflow or both)", req.SearchType))
		return
	}
	// Coordinator path: embedding-ranked queries fan out to the shards
	// (each holds a partition of the corpus) and the per-shard top-k lists
	// merge into one ranking. The query embedding is computed once, here,
	// so shards compare rather than re-embed. Text search stays local —
	// it ranks over the user's own listing, which every shard-broadcast
	// user resolves locally.
	if s.cfg.Cluster != nil && (req.QueryType == core.QuerySemantic || req.QueryType == core.QueryCode) {
		// Resolve the retrieval mode here, against the coordinator's
		// default, and forward it explicitly — every shard then runs the
		// same pipeline regardless of its own configured default.
		mode, err := s.resolveMode(req.Mode)
		if err != nil {
			writeErr(w, err)
			return
		}
		req.Mode = mode
		if req.QueryEmbedding == nil {
			if req.QueryType == core.QueryCode {
				req.QueryEmbedding = search.EmbedCode(req.Search)
			} else {
				req.QueryEmbedding = search.EmbedDescription(req.Search)
			}
		}
		if req.Limit <= 0 {
			req.Limit = s.cfg.SearchLimit
		}
		// Coordinator-tier cache: a repeated fan-out within the TTL is
		// answered here, costing zero shard round trips. Degraded results
		// are never cached — a shard coming back should be visible on the
		// next attempt, not after a TTL.
		var ckey uint64
		if s.coordCache != nil {
			ckey = searchKey(user.UserID, mode, req)
			if res, ok := s.coordCache.Get(ckey, qcache.Tag{}); ok {
				writeJSON(w, http.StatusOK, core.SearchResponse{Hits: res.Hits, Degraded: res.Degraded})
				return
			}
		}
		res := s.cfg.Cluster.Search(r.Context(), user.UserName, req)
		if s.coordCache != nil && !res.Degraded {
			s.coordCache.Put(ckey, qcache.Tag{}, res)
		}
		writeJSON(w, http.StatusOK, core.SearchResponse{Hits: res.Hits, Degraded: res.Degraded})
		return
	}
	hits, err := s.searchHits(user, req)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, core.SearchResponse{Hits: hits})
}

// searchHits answers one query from the node's own registry.
func (s *Server) searchHits(user *core.UserRecord, req core.SearchRequest) ([]core.SearchHit, error) {
	// limit <= 0 falls through to each mechanism's search.DefaultLimit.
	limit := req.Limit
	if limit <= 0 {
		limit = s.cfg.SearchLimit
	}
	// Local-tier cache: embedding-ranked queries short-circuit the ANN
	// walk (and the hybrid/rerank stages behind it) when the same query
	// already ran against the same world state. The tag pairs the
	// registry mutation epoch with the index retrain generation, so any
	// add/remove/load/restore or retrain invalidates on the next lookup.
	ckey, ctag, cacheable := s.searchCacheKey(user.UserID, req, limit)
	if cacheable {
		if hits, ok := s.cache.Get(ckey, ctag); ok {
			return hits, nil
		}
	}
	var hits []core.SearchHit
	switch req.QueryType {
	case core.QueryText, "":
		pes := s.reg.PEsForUser(user.UserID)
		wfs := s.reg.WorkflowsForUser(user.UserID)
		hits = search.Text(req.Search, req.SearchType, pes, wfs, limit)
	case core.QuerySemantic:
		mode, err := s.resolveMode(req.Mode)
		if err != nil {
			return nil, err
		}
		// Bi-encoder contract: clients embed their own queries; embed
		// server-side only when the request carries none.
		emb := req.QueryEmbedding
		if emb == nil {
			emb = search.EmbedDescription(req.Search)
		}
		if mode != core.ModeANN {
			hits = s.reg.HybridSearch(user.UserID, registry.HybridQuery{
				Text:      req.Search,
				Embedding: emb,
				Type:      req.SearchType,
				Limit:     limit,
				Rerank:    mode == core.ModeReranked,
			})
			break
		}
		// Both kinds are semantically indexed (PE descriptions and workflow
		// descriptions share the embedding model), so SearchBoth ranks them
		// against each other in one cosine space.
		switch req.SearchType {
		case core.SearchPEs:
			hits = s.reg.SemanticSearch(user.UserID, emb, limit)
		case core.SearchWorkflows:
			hits = s.reg.SemanticSearchWorkflows(user.UserID, emb, limit)
		default: // SearchBoth: one registry round trip for both indexes
			hits = s.reg.SemanticSearchBoth(user.UserID, emb, limit)
		}
	case core.QueryCode:
		mode, err := s.resolveMode(req.Mode)
		if err != nil {
			return nil, err
		}
		// Only PEs carry code embeddings; a workflow-only code query has
		// nothing to rank and returns no hits.
		if req.SearchType == core.SearchWorkflows {
			break
		}
		emb := req.QueryEmbedding
		if emb == nil {
			emb = search.EmbedCode(req.Search)
		}
		if mode != core.ModeANN {
			hits = s.reg.HybridSearch(user.UserID, registry.HybridQuery{
				Text:      req.Search,
				Embedding: emb,
				Code:      true,
				Type:      req.SearchType,
				Limit:     limit,
				Rerank:    mode == core.ModeReranked,
			})
			break
		}
		hits = s.reg.CompletionSearch(user.UserID, emb, limit)
	default:
		return nil, core.ErrBadRequest("query", "unknown query type %q (want text, semantic or code)", req.QueryType)
	}
	if cacheable {
		s.cache.Put(ckey, ctag, hits)
	}
	return hits, nil
}

// searchCacheKey decides whether a query is cacheable on the local tier
// and, when it is, returns its key and the current world tag. Text
// queries rank over the user's own listing (cheap, no index walk to
// save) and stay uncached; mode errors fall through so the pipeline
// branch reports them.
func (s *Server) searchCacheKey(userID int, req core.SearchRequest, limit int) (uint64, qcache.Tag, bool) {
	if s.cache == nil || (req.QueryType != core.QuerySemantic && req.QueryType != core.QueryCode) {
		return 0, qcache.Tag{}, false
	}
	mode, err := s.resolveMode(req.Mode)
	if err != nil {
		return 0, qcache.Tag{}, false
	}
	key := searchKey(userID, mode, core.SearchRequest{
		Search:         req.Search,
		SearchType:     req.SearchType,
		QueryType:      req.QueryType,
		QueryEmbedding: req.QueryEmbedding,
		Limit:          limit,
	})
	tag := qcache.Tag{Epoch: s.reg.Epoch(), Gen: s.reg.IndexGeneration()}
	return key, tag, true
}

// searchKey hashes a query's identity fields: who asked, what ran
// (mode + query type + search type), over what input (text and any
// client-supplied embedding) and how much of it (limit). The embedding
// is part of the key because the bi-encoder contract lets clients send
// one that differs from what the text would embed to server-side.
func searchKey(userID int, mode string, req core.SearchRequest) uint64 {
	return qcache.NewKey().
		Int(userID).
		String(mode).
		String(string(req.QueryType)).
		String(string(req.SearchType)).
		Int(req.Limit).
		String(req.Search).
		Floats(req.QueryEmbedding).
		Sum()
}

// resolveMode picks the retrieval pipeline for a semantic or code query:
// the request's explicit mode wins, else the server's configured default,
// else pure ANN. An unknown mode is a client error, not a fallback.
func (s *Server) resolveMode(reqMode string) (string, error) {
	mode := reqMode
	if mode == "" {
		mode = s.cfg.SearchMode
	}
	switch mode {
	case "", core.ModeANN:
		return core.ModeANN, nil
	case core.ModeHybrid, core.ModeReranked:
		return mode, nil
	}
	return "", core.ErrBadRequest("mode", "unknown search mode %q (want ann, hybrid or reranked)", mode)
}

// ClusterSearchLocal answers one search against this node's own registry
// the way POST /registry/{user}/search would, shaped for the cluster
// package's RESP transport (cluster.SearchFunc). It never consults the
// coordinator — it IS the per-shard leaf of a scatter-gather.
func (s *Server) ClusterSearchLocal(userName string, req core.SearchRequest) (core.SearchResponse, error) {
	user, err := s.reg.UserByName(userName)
	if err != nil {
		return core.SearchResponse{}, err
	}
	if req.SearchType == "" {
		req.SearchType = core.SearchBoth
	}
	switch req.SearchType {
	case core.SearchPEs, core.SearchWorkflows, core.SearchBoth:
	default:
		return core.SearchResponse{}, core.ErrBadRequest("type", "unknown search type %q (want pe, workflow or both)", req.SearchType)
	}
	hits, err := s.searchHits(user, req)
	if err != nil {
		return core.SearchResponse{}, err
	}
	return core.SearchResponse{Hits: hits}, nil
}

// handleSearchBatch answers many semantic or code PE queries in one
// request: the embeddings travel to the registry together, which probes
// the vector index with a single batched call (one lock acquisition,
// shared shard visits). Each result list is identical to what the same
// query would return through POST /registry/{user}/search.
func (s *Server) handleSearchBatch(w http.ResponseWriter, r *http.Request, user *core.UserRecord) {
	var req core.SearchBatchRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		writeErr(w, err)
		return
	}
	embs := req.QueryEmbeddings
	if len(embs) == 0 {
		if len(req.Queries) == 0 {
			writeErr(w, core.ErrBadRequest("queries", "batch carries no queries and no embeddings"))
			return
		}
		embs = make([][]float32, len(req.Queries))
		for i, q := range req.Queries {
			if req.QueryType == core.QueryCode {
				embs[i] = search.EmbedCode(q)
			} else {
				embs[i] = search.EmbedDescription(q)
			}
		}
	}
	limit := req.Limit
	if limit <= 0 {
		limit = s.cfg.SearchLimit
	}
	var results [][]core.SearchHit
	switch req.QueryType {
	case core.QuerySemantic, "":
		results = s.reg.SemanticSearchBatch(user.UserID, embs, limit)
	case core.QueryCode:
		results = s.reg.CompletionSearchBatch(user.UserID, embs, limit)
	default:
		writeErr(w, core.ErrBadRequest("query", "unknown query type %q (want semantic or code)", req.QueryType))
		return
	}
	writeJSON(w, http.StatusOK, core.SearchBatchResponse{Results: results})
}

// ---- Execution controller ----

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request, user *core.UserRecord) {
	var req core.ExecutionRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		writeErr(w, err)
		return
	}
	resp, err := s.Execute(user, req)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// Execute is the Service-layer execution path: resolve registered
// workflows to code, then hand the self-contained request to the engine.
func (s *Server) Execute(user *core.UserRecord, req core.ExecutionRequest) (*core.ExecutionResponse, error) {
	if req.WorkflowCode == "" {
		var wf *core.WorkflowRecord
		var err error
		switch {
		case req.WorkflowID != 0:
			wf, err = s.reg.WorkflowByID(user.UserID, req.WorkflowID)
		case req.WorkflowName != "":
			wf, err = s.reg.WorkflowByName(user.UserID, req.WorkflowName)
		default:
			return nil, core.ErrBadRequest("workflow", "request names no workflow and carries no code")
		}
		if err != nil {
			return nil, err
		}
		req.WorkflowCode = wf.WorkflowCode
	}
	return s.eng.Execute(req)
}
