package server

import (
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"

	"laminar/internal/core"
	"laminar/internal/engine"
	"laminar/internal/index"
	"laminar/internal/registry"
	"laminar/internal/search"
	"laminar/internal/telemetry"
)

// sampleLineRE matches one exposition sample: name{labels} value. Label
// values are quoted strings and may contain anything (route patterns
// carry literal braces), so the label block is matched as a sequence of
// name="escaped-string" pairs.
var sampleLineRE = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})? (NaN|[+-]?Inf|[0-9eE.+-]+)$`)

// TestMetricsEndpoint drives a metrics-enabled server through real
// traffic and pins the /metrics contract: the endpoint is reachable only
// when enabled, the output parses as Prometheus text, and the per-route,
// per-index and registry families all carry the traffic just generated.
func TestMetricsEndpoint(t *testing.T) {
	// A clustered index so the probe/stop-rule instruments have a
	// reporter; at this corpus size it brute-scans (exactly), which is
	// itself a stop-rule attribution worth pinning.
	reg := registry.NewStore()
	reg.ConfigureIndex(func() index.VectorIndex {
		return index.NewClustered(index.ClusteredConfig{RecallTarget: 0.9})
	})
	srv := New(Config{Registry: reg, Engine: engine.New(engine.Config{InstallDelayScale: 0}), Metrics: true})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)

	if code, _ := doReq(t, http.MethodPost, addr+"/auth/register",
		core.RegisterUserRequest{UserName: "zz46", Password: "password"}, nil); code != http.StatusCreated {
		t.Fatalf("register status %d", code)
	}
	for i := 0; i < 3; i++ {
		req := core.AddPERequest{
			PEName:        fmt.Sprintf("pe%d", i),
			PECode:        "class P(IterativePE): pass",
			Description:   fmt.Sprintf("a PE that filters sensor readings %d", i),
			DescEmbedding: search.EmbedDescription(fmt.Sprintf("filters sensor readings %d", i)),
		}
		if code, body := doReq(t, http.MethodPost, addr+"/registry/zz46/pe/add", req, nil); code != http.StatusCreated {
			t.Fatalf("add PE status %d: %s", code, body)
		}
	}
	for i := 0; i < 5; i++ {
		sr := core.SearchRequest{
			Search:     "sensor readings",
			SearchType: core.SearchPEs,
			QueryType:  core.QuerySemantic,
		}
		if code, _ := doReq(t, http.MethodPost, addr+"/registry/zz46/search", sr, nil); code != http.StatusOK {
			t.Fatalf("search status %d", code)
		}
	}

	resp, err := http.Get(addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != telemetry.ContentType {
		t.Errorf("/metrics Content-Type = %q, want %q", ct, telemetry.ContentType)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(raw)

	// Every line must be a comment or a well-formed sample.
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "# ") {
			continue
		}
		if !sampleLineRE.MatchString(line) {
			t.Errorf("malformed exposition line: %q", line)
		}
	}

	// The traffic just generated must be visible in each family.
	for _, want := range []string{
		`laminar_http_requests_total{route="POST /registry/{user}/search",code="200"} 5`,
		`laminar_http_requests_total{route="POST /registry/{user}/pe/add",code="201"} 3`,
		`laminar_http_request_seconds_count{route="POST /registry/{user}/search"} 5`,
		`laminar_index_probe_shards_count{index="desc"} 5`,
		`laminar_index_query_stops_total{index="desc",rule="brute-scan"} 5`,
		`laminar_registry_pes 3`,
		`laminar_registry_users 1`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestMetricsEndpointGatedOff pins that the default configuration does
// not expose the operational surface.
func TestMetricsEndpointGatedOff(t *testing.T) {
	addr := startServer(t)
	resp, err := http.Get(addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/metrics on a default server: status %d, want 404", resp.StatusCode)
	}
}
