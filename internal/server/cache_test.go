package server

import (
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"laminar/internal/codec"
	"laminar/internal/core"
	"laminar/internal/engine"
	"laminar/internal/search"
)

// startCacheServer boots a server with the local query cache enabled and
// the metrics endpoint exposed, plus the standard test user.
func startCacheServer(t *testing.T, cacheSize int) (*Server, string) {
	t.Helper()
	srv := New(Config{
		Engine:    engine.New(engine.Config{InstallDelayScale: 0}),
		CacheSize: cacheSize,
		Metrics:   true,
	})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	code, _ := doReq(t, http.MethodPost, addr+"/auth/register",
		core.RegisterUserRequest{UserName: "zz46", Password: "password"}, nil)
	if code != http.StatusCreated {
		t.Fatalf("register status %d", code)
	}
	return srv, addr
}

// addEmbeddedPE registers a PE carrying real description and code
// embeddings, so it participates in semantic and code retrieval.
func addEmbeddedPE(t *testing.T, addr, name, desc string) core.PERecord {
	t.Helper()
	enc, err := codec.Encode(codec.Envelope{Kind: codec.KindPE, Name: name, Source: peSource})
	if err != nil {
		t.Fatal(err)
	}
	var rec core.PERecord
	code, raw := doReq(t, http.MethodPost, addr+"/registry/zz46/pe/add", core.AddPERequest{
		PEName: name, Description: desc, PECode: enc,
		DescEmbedding: search.EmbedDescription(desc),
		CodeEmbedding: search.EmbedCode(peSource),
	}, &rec)
	if code != http.StatusCreated {
		t.Fatalf("add %s: %d %s", name, code, raw)
	}
	return rec
}

// cacheMetric scrapes /metrics and returns the local-tier sample of one
// laminar_cache_* family.
func cacheMetric(t *testing.T, addr, family string) float64 {
	t.Helper()
	resp, err := http.Get(addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	prefix := family + `{cache="local"} `
	for _, line := range strings.Split(string(raw), "\n") {
		if strings.HasPrefix(line, prefix) {
			v, err := strconv.ParseFloat(strings.TrimPrefix(line, prefix), 64)
			if err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("no %s sample for the local tier in scrape", family)
	return 0
}

// TestSearchCacheMatchesUncachedAcrossModes runs the same queries against a
// cached and an uncached server holding identical corpora, across all three
// retrieval modes and through churn + retrain. Cached answers — first
// (miss, pipeline) and second (hit, cache) — must equal the uncached
// server's, before and after the world changes.
func TestSearchCacheMatchesUncachedAcrossModes(t *testing.T) {
	cached, cachedAddr := startCacheServer(t, 32)
	uncachedAddr := startServer(t)

	descs := []string{
		"echoes values downstream", "filters odd numbers", "joins two streams",
		"splits a stream by key", "counts words per window", "echoes values twice",
	}
	seed := func(addr string) {
		for i, d := range descs {
			addEmbeddedPE(t, addr, fmt.Sprintf("Corpus%d", i), d)
		}
	}
	seed(cachedAddr)
	seed(uncachedAddr)

	query := func(srv *Server, req core.SearchRequest) []core.SearchHit {
		t.Helper()
		res, err := srv.ClusterSearchLocal("zz46", req)
		if err != nil {
			t.Fatalf("search %+v: %v", req, err)
		}
		return res.Hits
	}
	httpQuery := func(addr string, req core.SearchRequest) []core.SearchHit {
		t.Helper()
		var res core.SearchResponse
		code, raw := doReq(t, http.MethodPost, addr+"/registry/zz46/search", req, &res)
		if code != http.StatusOK {
			t.Fatalf("search: %d %s", code, raw)
		}
		return res.Hits
	}

	requests := []core.SearchRequest{}
	for _, mode := range []string{core.ModeANN, core.ModeHybrid, core.ModeReranked} {
		requests = append(requests, core.SearchRequest{
			Search: "echoes values", SearchType: core.SearchPEs,
			QueryType: core.QuerySemantic, Mode: mode, Limit: 4,
		})
	}
	requests = append(requests, core.SearchRequest{
		Search: "class EchoPE", SearchType: core.SearchPEs,
		QueryType: core.QueryCode, Mode: core.ModeANN, Limit: 4,
	})

	check := func(stage string) {
		t.Helper()
		for _, req := range requests {
			want := httpQuery(uncachedAddr, req)
			first := query(cached, req)
			second := query(cached, req) // answered from cache
			if !reflect.DeepEqual(first, want) {
				t.Fatalf("%s mode=%s %s: cached pipeline diverged\n got %+v\nwant %+v",
					stage, req.Mode, req.QueryType, first, want)
			}
			if !reflect.DeepEqual(second, first) {
				t.Fatalf("%s mode=%s %s: cache hit diverged from pipeline\n got %+v\nwant %+v",
					stage, req.Mode, req.QueryType, second, first)
			}
		}
	}
	check("cold")
	if hits := cacheMetric(t, cachedAddr, "laminar_cache_hits_total"); hits < float64(len(requests)) {
		t.Fatalf("cache hits = %v after %d repeated queries", hits, len(requests))
	}

	// Churn both corpora identically, then retrain the cached side: every
	// previously cached entry is now stale and must not be served.
	addEmbeddedPE(t, cachedAddr, "Fresh", "echoes values loudly")
	addEmbeddedPE(t, uncachedAddr, "Fresh", "echoes values loudly")
	cached.Registry().RetrainIndexes()
	check("post-churn")
	if inv := cacheMetric(t, cachedAddr, "laminar_cache_invalidations_total"); inv < 1 {
		t.Fatalf("no invalidations recorded after churn (got %v)", inv)
	}
}

// TestCacheServesNoPreRestoreResults is the replica regression: a cached
// search result must not survive a registry restore (Load), which replaces
// the whole world without touching any record through the mutation API.
func TestCacheServesNoPreRestoreResults(t *testing.T) {
	srv, addr := startCacheServer(t, 32)
	addEmbeddedPE(t, addr, "Old", "echoes values quietly")
	path := filepath.Join(t.TempDir(), "replica.json")
	if err := srv.Registry().Save(path); err != nil {
		t.Fatal(err)
	}

	rec := addEmbeddedPE(t, addr, "BrandNew", "echoes values")
	req := core.SearchRequest{
		Search: "echoes values", SearchType: core.SearchPEs,
		QueryType: core.QuerySemantic, Limit: 10,
	}
	sawNew := false
	for i := 0; i < 2; i++ { // second pass caches, then hits
		res, err := srv.ClusterSearchLocal("zz46", req)
		if err != nil {
			t.Fatal(err)
		}
		for _, h := range res.Hits {
			if h.ID == rec.PEID {
				sawNew = true
			}
		}
	}
	if !sawNew {
		t.Fatal("pre-restore search never returned the new PE; test is vacuous")
	}

	// Roll back to the snapshot taken before BrandNew existed.
	if err := srv.Registry().Load(path); err != nil {
		t.Fatal(err)
	}
	srv.Registry().WaitIndexReady()

	res, err := srv.ClusterSearchLocal("zz46", req)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) == 0 {
		t.Fatal("post-restore search returned nothing")
	}
	for _, h := range res.Hits {
		if h.ID == rec.PEID || h.Name == "BrandNew" {
			t.Fatalf("cache served a pre-restore result after Load: %+v", h)
		}
	}
}
