package index

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: a Clustered index probing every shard is an exact search — for
// any randomized corpus (including deletions and re-upserts along the way)
// it returns exactly the hits of the Flat brute force, same ids, same
// order, same scores. Shards partition the stored vectors and both sides
// score with the same dot product and rank with the same top-k heap, so
// full-probe results must be identical, not merely close.
func TestClusteredFullProbeMatchesFlatProperty(t *testing.T) {
	f := func(seed int64, nRaw uint16, centRaw, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%600) + 1
		centroids := int(centRaw%24) + 1
		k := int(kRaw%15) + 1

		flat := NewFlat()
		// NProbe = #centroids: every shard is scanned (the nprobe resolver
		// also clamps, so over-asking is equivalent).
		clus := NewClustered(ClusteredConfig{Centroids: centroids, NProbe: centroids})
		live := map[int][]float32{}
		for id := 1; id <= n; id++ {
			v := unitVec(rng, 24)
			live[id] = v
			flat.Upsert(id, v)
			clus.Upsert(id, v)
			// Occasionally delete or re-upsert an earlier id, so the
			// incremental maintenance paths (shard removal, reassignment)
			// are exercised mid-stream.
			switch rng.Intn(10) {
			case 0:
				victim := rng.Intn(id) + 1
				delete(live, victim)
				flat.Delete(victim)
				clus.Delete(victim)
			case 1:
				victim := rng.Intn(id) + 1
				if _, ok := live[victim]; ok {
					nv := unitVec(rng, 24)
					live[victim] = nv
					flat.Upsert(victim, nv)
					clus.Upsert(victim, nv)
				}
			}
		}
		if flat.Len() != clus.Len() || flat.Len() != len(live) {
			t.Logf("len mismatch: flat=%d clustered=%d live=%d", flat.Len(), clus.Len(), len(live))
			return false
		}
		for q := 0; q < 5; q++ {
			query := unitVec(rng, 24)
			got := clus.Search(query, k, nil)
			want := flat.Search(query, k, nil)
			if fmt.Sprintf("%v", got) != fmt.Sprintf("%v", want) {
				t.Logf("seed=%d n=%d centroids=%d k=%d query %d diverged:\n got %v\nwant %v",
					seed, n, centroids, k, q, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: a filtered full-probe search equals the filtered brute force —
// ownership filtering must not perturb ANN results.
func TestClusteredFilteredFullProbeMatchesFlat(t *testing.T) {
	f := func(seed int64, modRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		mod := int(modRaw%4) + 2
		flat := NewFlat()
		clus := NewClustered(ClusteredConfig{Centroids: 8, NProbe: 8})
		for id := 1; id <= 300; id++ {
			v := unitVec(rng, 16)
			flat.Upsert(id, v)
			clus.Upsert(id, v)
		}
		filter := func(id int) bool { return id%mod == 0 }
		query := unitVec(rng, 16)
		got := clus.Search(query, 10, filter)
		want := flat.Search(query, 10, filter)
		return fmt.Sprintf("%v", got) == fmt.Sprintf("%v", want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
