package index

import "laminar/internal/telemetry"

// Stop-rule attribution values recorded per query under the "rule" label
// of ClusteredMetrics.Stops. Together they explain *why* each clustered
// search stopped scanning where it did — the per-query cost story behind
// the recall-vs-latency frontier of docs/search.md (see docs/operations.md
// for how to read the distribution in production).
const (
	// StopProof: the kth-best candidate provably beat every unprobed
	// shard's score bound — the scan lost nothing by stopping. The only
	// rule allowed at RecallTarget 1.0.
	StopProof = "proof"
	// StopPatience: the diminishing-returns rule — enough consecutive
	// shards contributed nothing to the top-k (patience scales with the
	// recall target).
	StopPatience = "diminishing-returns"
	// StopBudget: the MaxProbe latency budget truncated the scan before
	// either quality rule fired; recall may be below target.
	StopBudget = "max-probe"
	// StopExhausted: the adaptive scan visited every shard without a stop
	// rule firing — the query was hard enough to degenerate to a full
	// probe.
	StopExhausted = "exhausted"
	// StopFixed: the historic fixed-NProbe policy (no RecallTarget); the
	// probe count is a constant, not a per-query decision.
	StopFixed = "fixed-nprobe"
	// StopBrute: no clustering is live yet (corpus below the training
	// threshold or first training still pending); the query brute-scanned
	// the whole corpus exactly.
	StopBrute = "brute-scan"
)

// ClusteredMetrics is the observability surface a Clustered index reports
// into, installed with SetMetrics. Every field is optional — a nil field
// simply records nothing — so owners can wire exactly the instruments
// they export. The fields are telemetry instruments rather than raw
// callbacks so recording stays a couple of atomic operations inside the
// query's read-lock scope.
type ClusteredMetrics struct {
	// Probes observes the number of shards each query scanned.
	Probes *telemetry.Histogram
	// Scanned observes the number of candidate vectors each query scored
	// (shard members after filter/dedup, plus the overflow buffer).
	Scanned *telemetry.Histogram
	// Stops counts queries by the rule that ended their shard scan; the
	// single label is "rule" with the Stop* values above.
	Stops *telemetry.CounterVec
	// Retrains counts completed full retrains.
	Retrains *telemetry.Counter
	// RetrainSeconds observes the wall-clock duration of each completed
	// retrain (k-means plus merge).
	RetrainSeconds *telemetry.Histogram
	// QuantizedScans counts queries whose candidate pass ran over the int8
	// quantized companion set instead of full float dot products.
	QuantizedScans *telemetry.Counter
	// BatchSize observes the number of queries in each SearchBatch call.
	BatchSize *telemetry.Histogram
}

// observeQuery records one search's probe cost and stop attribution.
func (m *ClusteredMetrics) observeQuery(probes, scanned int, rule string) {
	if m == nil {
		return
	}
	if m.Probes != nil {
		m.Probes.Observe(float64(probes))
	}
	if m.Scanned != nil {
		m.Scanned.Observe(float64(scanned))
	}
	if m.Stops != nil {
		m.Stops.With(rule).Inc()
	}
}

// observeQuantized records that one search's candidate pass was scored
// over the quantized companion set.
func (m *ClusteredMetrics) observeQuantized() {
	if m == nil || m.QuantizedScans == nil {
		return
	}
	m.QuantizedScans.Inc()
}

// observeBatch records one SearchBatch call's query count.
func (m *ClusteredMetrics) observeBatch(n int) {
	if m == nil || m.BatchSize == nil {
		return
	}
	m.BatchSize.Observe(float64(n))
}

// observeRetrain records one completed retrain and its duration.
func (m *ClusteredMetrics) observeRetrain(seconds float64) {
	if m == nil {
		return
	}
	if m.Retrains != nil {
		m.Retrains.Inc()
	}
	if m.RetrainSeconds != nil {
		m.RetrainSeconds.Observe(seconds)
	}
}

// SetMetrics installs (or, with nil, removes) the index's observability
// surface. Safe to call while serving; queries pick up the new surface on
// their next lock acquisition.
func (c *Clustered) SetMetrics(m *ClusteredMetrics) {
	c.mu.Lock()
	c.metrics = m
	c.mu.Unlock()
}
