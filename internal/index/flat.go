package index

import "sync"

// Flat is the exact baseline index: every stored vector is scored against
// the query. It reproduces the historic brute-force scan byte-for-byte
// (same float64 dot product, same score-then-id ordering) while replacing
// the full sort with a bounded top-k heap.
type Flat struct {
	mu   sync.RWMutex
	vecs map[int][]float32
}

// NewFlat creates an empty exact index.
func NewFlat() *Flat {
	return &Flat{vecs: map[int][]float32{}}
}

// Name identifies the implementation.
func (f *Flat) Name() string { return "flat" }

// Len reports the number of stored vectors.
func (f *Flat) Len() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.vecs)
}

// Upsert stores a copy of vec under id; an empty vec removes the entry.
func (f *Flat) Upsert(id int, vec []float32) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(vec) == 0 {
		delete(f.vecs, id)
		return
	}
	f.vecs[id] = append([]float32(nil), vec...)
}

// Delete removes the entry for id.
func (f *Flat) Delete(id int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.vecs, id)
}

// Snapshot captures the serialized form. Flat has no structure beyond the
// vectors themselves, so the snapshot is just the version/kind/checksum
// envelope; Restore gets everything it needs from the vectors the registry
// hands back.
func (f *Flat) Snapshot() *Snapshot {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return &Snapshot{
		Version:  SnapshotVersion,
		Kind:     f.Name(),
		Count:    len(f.vecs),
		Checksum: ChecksumVectors(f.vecs),
	}
}

// Restore replaces the contents from a snapshot and its vector set.
func (f *Flat) Restore(snap *Snapshot, vecs map[int][]float32) error {
	if err := validateSnapshot(snap, f.Name(), vecs); err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.vecs = copyVecs(vecs)
	return nil
}

// Search scans every stored vector, keeping the k best. The result is
// deterministic regardless of map iteration order because (score, id) is a
// strict total order.
func (f *Flat) Search(query []float32, k int, filter Filter) []Candidate {
	f.mu.RLock()
	defer f.mu.RUnlock()
	top := NewTopK(k)
	for id, v := range f.vecs {
		if filter != nil && !filter(id) {
			continue
		}
		top.Push(Candidate{ID: id, Score: dot(query, v)})
	}
	return top.Sorted()
}
