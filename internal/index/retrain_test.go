package index

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync/atomic"
	"testing"
	"time"
)

// TestQueriesDuringRetrainMatchFlat pins the serving contract of the
// background retrain: while a retrain is held open, a full-probe query must
// equal Flat over the union of the old (sharded) records and the overflow
// buffer — i.e. over every live vector — including inserts, deletes and
// re-upserts that happen mid-retrain. After the retrain lands, the overflow
// buffer must have drained into the new shards.
func TestQueriesDuringRetrainMatchFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	const dim = 16
	clus := NewClustered(ClusteredConfig{Centroids: 8, NProbe: 8})
	flat := NewFlat()

	// Gate the retrain goroutine: when armed, it blocks until released.
	var armed atomic.Bool
	entered := make(chan struct{}, 4)
	release := make(chan struct{})
	clus.retrainHook = func() {
		if armed.Load() {
			entered <- struct{}{}
			<-release
		}
	}

	// First training runs to completion unimpeded.
	vecs := map[int][]float32{}
	for id := 1; id <= minTrainSize; id++ {
		v := unitVec(rng, dim)
		vecs[id] = v
		clus.Upsert(id, v)
		flat.Upsert(id, v)
	}
	clus.WaitRetrain()
	if clus.Retrains() != 1 {
		t.Fatalf("retrains after first training: %d", clus.Retrains())
	}

	// Fill to the next corpus doubling; the retrain it triggers blocks in
	// the hook.
	armed.Store(true)
	for id := minTrainSize + 1; id <= 2*minTrainSize; id++ {
		v := unitVec(rng, dim)
		vecs[id] = v
		clus.Upsert(id, v)
		flat.Upsert(id, v)
	}
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("doubling the corpus did not launch a retrain")
	}

	// Mutations while the retrain is in flight: fresh inserts (overflow),
	// deletes of old sharded ids, and a re-upsert of an old id.
	for id := 2*minTrainSize + 1; id <= 2*minTrainSize+10; id++ {
		v := unitVec(rng, dim)
		vecs[id] = v
		clus.Upsert(id, v)
		flat.Upsert(id, v)
	}
	for _, victim := range []int{3, minTrainSize + 5} {
		delete(vecs, victim)
		clus.Delete(victim)
		flat.Delete(victim)
	}
	nv := unitVec(rng, dim)
	vecs[7] = nv
	clus.Upsert(7, nv)
	flat.Upsert(7, nv)

	clus.mu.RLock()
	stillRetraining, overflowLen := clus.retraining, len(clus.overflow)
	clus.mu.RUnlock()
	if !stillRetraining {
		t.Fatal("retrain finished despite the gate")
	}
	if overflowLen == 0 {
		t.Fatal("mid-retrain inserts did not land in the overflow buffer")
	}

	for q := 0; q < 10; q++ {
		query := unitVec(rng, dim)
		got := clus.Search(query, 10, nil)
		want := flat.Search(query, 10, nil)
		if fmt.Sprintf("%v", got) != fmt.Sprintf("%v", want) {
			t.Fatalf("mid-retrain query %d diverged:\n got %v\nwant %v", q, got, want)
		}
	}

	// Release the retrain; the swap must fold the overflow into shards and
	// keep full-probe exactness.
	armed.Store(false)
	close(release)
	clus.WaitRetrain()
	clus.mu.RLock()
	overflowLen, assigned := len(clus.overflow), len(clus.trained.assign)
	clus.mu.RUnlock()
	if overflowLen != 0 {
		t.Fatalf("overflow not drained after retrain: %d", overflowLen)
	}
	if assigned != len(vecs) {
		t.Fatalf("assignments cover %d ids, want %d", assigned, len(vecs))
	}
	if clus.Retrains() < 2 {
		t.Fatalf("second retrain never completed: %d", clus.Retrains())
	}
	// The id re-upserted mid-retrain must be sharded by its *new* vector,
	// not by the stale snapshot position k-means saw.
	clus.mu.RLock()
	gotShard := clus.trained.assign[7]
	wantShard := nearestCentroid(clus.trained.centroids, vecs[7])
	clus.mu.RUnlock()
	if gotShard != wantShard {
		t.Fatalf("re-upserted id kept stale assignment: shard %d, want %d", gotShard, wantShard)
	}
	for q := 0; q < 5; q++ {
		query := unitVec(rng, dim)
		got := clus.Search(query, 10, nil)
		want := flat.Search(query, 10, nil)
		if fmt.Sprintf("%v", got) != fmt.Sprintf("%v", want) {
			t.Fatalf("post-retrain query %d diverged:\n got %v\nwant %v", q, got, want)
		}
	}
}

// TestRetrainNeverBlocksSearch is the latency half of the contract: with a
// retrain held open for the whole test, searches keep completing. (Before
// the background-retrain change, the doubling insert retrained inline under
// the write lock and every query behind it stalled.)
func TestRetrainNeverBlocksSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	clus := NewClustered(ClusteredConfig{Centroids: 8})
	var armed atomic.Bool
	release := make(chan struct{})
	clus.retrainHook = func() {
		if armed.Load() {
			<-release
		}
	}
	for id := 1; id <= minTrainSize; id++ {
		clus.Upsert(id, unitVec(rng, 8))
	}
	clus.WaitRetrain()
	armed.Store(true)
	for id := minTrainSize + 1; id <= 2*minTrainSize; id++ {
		clus.Upsert(id, unitVec(rng, 8))
	}

	done := make(chan struct{})
	go func() {
		for i := 0; i < 50; i++ {
			clus.Search(unitVec(rng, 8), 5, nil)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("searches blocked behind an in-flight retrain")
	}
	close(release)
	clus.WaitRetrain()
}

// TestReplaceDuringFirstTrainingReassigns: replacing a vector while the
// FIRST training (trained==nil) is in flight must flag it for
// reassignment — the k-means result positions its stale snapshot value.
func TestReplaceDuringFirstTrainingReassigns(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	clus := NewClustered(ClusteredConfig{Centroids: 8, NProbe: 8})
	flat := NewFlat()
	release := make(chan struct{})
	clus.retrainHook = func() { <-release }

	vecs := map[int][]float32{}
	for id := 1; id <= minTrainSize; id++ {
		v := unitVec(rng, 8)
		vecs[id] = v
		clus.Upsert(id, v)
		flat.Upsert(id, v)
	}
	// First training is now gated; replace a snapshotted id.
	nv := unitVec(rng, 8)
	vecs[1] = nv
	clus.Upsert(1, nv)
	flat.Upsert(1, nv)
	clus.mu.RLock()
	flagged := clus.overflow[1]
	clus.mu.RUnlock()
	if !flagged {
		t.Fatal("replacement during first training not flagged for reassignment")
	}
	close(release)
	clus.WaitRetrain()
	clus.mu.RLock()
	gotShard := clus.trained.assign[1]
	wantShard := nearestCentroid(clus.trained.centroids, nv)
	clus.mu.RUnlock()
	if gotShard != wantShard {
		t.Fatalf("replaced id sharded by stale vector: shard %d, want %d", gotShard, wantShard)
	}
	query := unitVec(rng, 8)
	if got, want := clus.Search(query, 10, nil), flat.Search(query, 10, nil); fmt.Sprintf("%v", got) != fmt.Sprintf("%v", want) {
		t.Fatalf("post-training search diverged:\n got %v\nwant %v", got, want)
	}
}

// TestCorpusDoublingMidRetrainRelaunches: when the corpus doubles again
// while a retrain is computing, the merge must immediately launch a
// follow-up retrain — otherwise the mid-retrain arrivals would be served
// from centroids trained on half the corpus until the *next* doubling.
func TestCorpusDoublingMidRetrainRelaunches(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	clus := NewClustered(ClusteredConfig{Centroids: 8})
	var armed atomic.Bool
	release := make(chan struct{})
	clus.retrainHook = func() {
		if armed.Load() {
			<-release
		}
	}
	for id := 1; id <= minTrainSize; id++ {
		clus.Upsert(id, unitVec(rng, 8))
	}
	clus.WaitRetrain() // retrain #1: trainedAt = minTrainSize

	// Gate retrain #2 (triggered at 2*minTrainSize), then keep inserting
	// past another doubling while it is stuck.
	armed.Store(true)
	for id := minTrainSize + 1; id <= 5*minTrainSize; id++ {
		clus.Upsert(id, unitVec(rng, 8))
	}
	armed.Store(false)
	close(release)
	clus.WaitRetrain() // waits through the relaunch chain

	if clus.Retrains() < 3 {
		t.Fatalf("doubling mid-retrain did not relaunch: %d retrains", clus.Retrains())
	}
	clus.mu.RLock()
	trainedAt, n := clus.trainedAt, len(clus.vecs)
	clus.mu.RUnlock()
	if n >= 2*trainedAt {
		t.Fatalf("index settled stale: trainedAt=%d with corpus %d", trainedAt, n)
	}
}

// TestRestoreInvalidatesInflightRetrain: a Restore that lands while a
// retrain is computing must win — the stale result describes a corpus that
// no longer exists and is discarded on generation mismatch.
func TestRestoreInvalidatesInflightRetrain(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	src := NewClustered(ClusteredConfig{Centroids: 4})
	live := map[int][]float32{}
	for id := 1; id <= 200; id++ {
		v := unitVec(rng, 8)
		live[id] = v
		src.Upsert(id, v)
	}
	src.WaitRetrain()
	snap := src.Snapshot()

	dst := NewClustered(ClusteredConfig{Centroids: 4})
	var armed atomic.Bool
	release := make(chan struct{})
	dst.retrainHook = func() {
		if armed.Load() {
			<-release
		}
	}
	armed.Store(true)
	other := map[int][]float32{}
	for id := 1; id <= minTrainSize; id++ {
		v := unitVec(rng, 8)
		other[id] = v
		dst.Upsert(id, v)
	}
	// A retrain over `other` is now gated. Restoring `snap` must supersede it.
	if err := dst.Restore(snap, live); err != nil {
		t.Fatal(err)
	}
	close(release)
	// Give the stale goroutine a chance to (wrongly) merge, then verify the
	// restored state survived.
	time.Sleep(50 * time.Millisecond)
	dst.WaitRetrain()
	if got := dst.Len(); got != len(live) {
		t.Fatalf("len %d after restore, want %d", got, len(live))
	}
	query := unitVec(rng, 8)
	if got, want := dst.Search(query, 10, nil), src.Search(query, 10, nil); !reflect.DeepEqual(got, want) {
		t.Fatalf("stale retrain clobbered the restore:\n got %+v\nwant %+v", got, want)
	}
	if dst.Retrains() != 0 {
		t.Fatalf("stale retrain counted as completed: %d", dst.Retrains())
	}
}
