package index

import (
	"math"
	"sort"
	"sync"
)

// ClusteredConfig tunes the IVF-style index.
type ClusteredConfig struct {
	// Centroids fixes the number of clusters; 0 chooses ~sqrt(N)
	// automatically at (re)train time.
	Centroids int
	// NProbe is how many nearest shards a query scans; 0 chooses
	// max(1, centroids/4). Setting NProbe >= centroids makes the search
	// exact (identical results to Flat).
	NProbe int
}

// minTrainSize is the corpus size below which clustering buys nothing; the
// index brute-scans until it is reached.
const minTrainSize = 64

// maxLloydIters bounds the k-means refinement loop per (re)train.
const maxLloydIters = 8

// Clustered is an IVF-style approximate index: vectors are partitioned into
// shards around k-means-ish centroids, and a query scans only the nprobe
// shards whose centroids are most similar to it. Maintenance is
// incremental — a new vector is assigned to its nearest existing centroid —
// with a full deterministic retrain amortized over doublings of the corpus.
type Clustered struct {
	mu  sync.RWMutex
	cfg ClusteredConfig

	vecs      map[int][]float32
	centroids [][]float32
	shards    [][]int     // centroid index → member ids
	assign    map[int]int // id → centroid index
	trainedAt int         // corpus size at the last retrain
}

// NewClustered creates an empty IVF index.
func NewClustered(cfg ClusteredConfig) *Clustered {
	return &Clustered{cfg: cfg, vecs: map[int][]float32{}, assign: map[int]int{}}
}

// Name identifies the implementation.
func (c *Clustered) Name() string { return "clustered" }

// Len reports the number of stored vectors.
func (c *Clustered) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.vecs)
}

// Upsert stores a copy of vec under id, assigning it to the nearest shard;
// an empty vec removes the entry. Crossing a corpus doubling triggers a
// full retrain, so amortized insert cost stays O(centroids·d).
func (c *Clustered) Upsert(id int, vec []float32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(vec) == 0 {
		c.deleteLocked(id)
		return
	}
	c.deleteLocked(id) // replacing: drop any stale shard membership
	c.vecs[id] = append([]float32(nil), vec...)
	if c.retrainDueLocked() {
		c.retrainLocked()
		return
	}
	if len(c.centroids) > 0 {
		ci := c.nearestCentroidLocked(c.vecs[id])
		c.assign[id] = ci
		c.shards[ci] = append(c.shards[ci], id)
	}
}

// Delete removes the entry for id.
func (c *Clustered) Delete(id int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.deleteLocked(id)
}

func (c *Clustered) deleteLocked(id int) {
	if _, ok := c.vecs[id]; !ok {
		return
	}
	delete(c.vecs, id)
	if ci, ok := c.assign[id]; ok {
		delete(c.assign, id)
		members := c.shards[ci]
		for i, m := range members {
			if m == id {
				c.shards[ci] = append(members[:i], members[i+1:]...)
				break
			}
		}
	}
}

func (c *Clustered) retrainDueLocked() bool {
	n := len(c.vecs)
	if n < minTrainSize {
		return false
	}
	return len(c.centroids) == 0 || n >= 2*c.trainedAt
}

// numCentroids picks the cluster count for a corpus of n vectors.
func (c *Clustered) numCentroids(n int) int {
	k := c.cfg.Centroids
	if k <= 0 {
		k = int(math.Ceil(math.Sqrt(float64(n))))
	}
	if k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}
	return k
}

// retrainLocked rebuilds centroids and shards with a deterministic k-means:
// seeds are evenly spaced over the id-sorted corpus, then up to
// maxLloydIters Lloyd iterations refine them (ties break toward the lowest
// centroid index, so the result is reproducible).
func (c *Clustered) retrainLocked() {
	n := len(c.vecs)
	if n == 0 {
		c.centroids, c.shards, c.assign, c.trainedAt = nil, nil, map[int]int{}, 0
		return
	}
	ids := make([]int, 0, n)
	for id := range c.vecs {
		ids = append(ids, id)
	}
	sort.Ints(ids)

	k := c.numCentroids(n)
	cents := make([][]float32, k)
	for i := 0; i < k; i++ {
		cents[i] = append([]float32(nil), c.vecs[ids[i*n/k]]...)
	}
	assign := make([]int, len(ids))
	for i := range assign {
		assign[i] = -1
	}
	for iter := 0; iter < maxLloydIters; iter++ {
		changed := false
		for i, id := range ids {
			best, bestScore := 0, math.Inf(-1)
			for ci, cent := range cents {
				if s := dot(cent, c.vecs[id]); s > bestScore {
					best, bestScore = ci, s
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed {
			break
		}
		// Recompute each centroid as the normalized mean of its members;
		// empty clusters keep their previous centroid.
		sums := make([][]float64, k)
		counts := make([]int, k)
		for i, id := range ids {
			ci := assign[i]
			v := c.vecs[id]
			if sums[ci] == nil {
				sums[ci] = make([]float64, len(v))
			}
			s := sums[ci]
			for d := 0; d < len(v) && d < len(s); d++ {
				s[d] += float64(v[d])
			}
			counts[ci]++
		}
		for ci := range cents {
			if counts[ci] == 0 {
				continue
			}
			var norm float64
			for _, x := range sums[ci] {
				norm += x * x
			}
			norm = math.Sqrt(norm)
			if norm == 0 {
				continue
			}
			cent := make([]float32, len(sums[ci]))
			for d, x := range sums[ci] {
				cent[d] = float32(x / norm)
			}
			cents[ci] = cent
		}
	}

	c.centroids = cents
	c.shards = make([][]int, k)
	c.assign = make(map[int]int, n)
	for i, id := range ids {
		ci := assign[i]
		c.assign[id] = ci
		c.shards[ci] = append(c.shards[ci], id)
	}
	c.trainedAt = n
}

func (c *Clustered) nearestCentroidLocked(v []float32) int {
	best, bestScore := 0, math.Inf(-1)
	for ci, cent := range c.centroids {
		if s := dot(cent, v); s > bestScore {
			best, bestScore = ci, s
		}
	}
	return best
}

// nprobe resolves the configured probe count against the live centroid set.
func (c *Clustered) nprobe() int {
	p := c.cfg.NProbe
	if p <= 0 {
		p = len(c.centroids) / 4
	}
	if p < 1 {
		p = 1
	}
	if p > len(c.centroids) {
		p = len(c.centroids)
	}
	return p
}

// Search probes the nprobe shards nearest the query. Below minTrainSize
// (no centroids yet) it brute-scans, which is both exact and cheap at that
// scale. Because shards partition the corpus, probing every shard yields
// exactly the Flat result.
func (c *Clustered) Search(query []float32, k int, filter Filter) []Candidate {
	c.mu.RLock()
	defer c.mu.RUnlock()
	top := NewTopK(k)
	if len(c.centroids) == 0 {
		for id, v := range c.vecs {
			if filter != nil && !filter(id) {
				continue
			}
			top.Push(Candidate{ID: id, Score: dot(query, v)})
		}
		return top.Sorted()
	}
	probe := NewTopK(c.nprobe())
	for ci, cent := range c.centroids {
		probe.Push(Candidate{ID: ci, Score: dot(query, cent)})
	}
	for _, p := range probe.Sorted() {
		for _, id := range c.shards[p.ID] {
			if filter != nil && !filter(id) {
				continue
			}
			top.Push(Candidate{ID: id, Score: dot(query, c.vecs[id])})
		}
	}
	return top.Sorted()
}
