package index

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"laminar/internal/vecmath"
)

// ClusteredConfig tunes the IVF-style index. Centroids and SpillRatio shape
// the trained *structure* (and are therefore recorded in snapshots); the
// remaining knobs are pure query-time policy and can differ freely between
// the process that trained an index and the one that restored it.
type ClusteredConfig struct {
	// Centroids fixes the number of clusters; 0 chooses ~sqrt(N)
	// automatically at (re)train time.
	Centroids int
	// NProbe is how many nearest shards a query scans; 0 chooses
	// max(1, centroids/4). Setting NProbe >= centroids makes the search
	// exact (identical results to Flat). When RecallTarget is set, NProbe
	// instead acts as the adaptive probe loop's floor (0 = 1).
	NProbe int
	// RecallTarget, in (0, 1], switches probing from the fixed NProbe count
	// to per-query adaptive widening. The scan stops early on either of two
	// rules: the *proof* rule — the kth-best candidate found so far exceeds
	// the score upper bound (centroid similarity + shard radius) of every
	// unprobed shard, so stopping provably loses nothing — or, below 1.0,
	// the *diminishing-returns* rule — enough consecutive shards in
	// best-first order contributed nothing to the top-k (the patience grows
	// with the target; see patienceFor). At 1.0 only the proof rule may
	// stop the scan, so the search returns exactly the Flat answer —
	// unless MaxProbe truncates it first (the budget always wins). 0 (the
	// default) keeps the historic fixed-NProbe behavior.
	RecallTarget float64
	// MaxProbe caps how many shards an adaptive query may scan — a hard
	// latency budget for worst-case queries that overrides the recall
	// target, including the exactness of 1.0; 0 means no cap. Ignored
	// when RecallTarget is 0.
	MaxProbe int
	// SpillRatio, when > 0, replicates near-boundary vectors into their
	// second-nearest shard at assignment time: a vector spills when its
	// distance to the second-nearest centroid is within (1+SpillRatio)
	// times the distance to its nearest. Spilled shards overlap, so queries
	// deduplicate; a full probe still returns exactly the Flat answer.
	SpillRatio float64
	// Overfetch, when > 1, widens the candidate pool to k*Overfetch during
	// the shard scans using cheap partial scoring (a prefix of the vector
	// dimensions), then exact-rescores the pool with full dot products
	// before the final top-k. Disabled when RecallTarget >= 1 — exactness
	// would be lost to the partial scores — and at dimensionalities too
	// small for a prefix to be cheaper than the full product.
	Overfetch int
	// Quantize, when true, maintains an int8 scalar-quantized companion
	// of every stored vector (a vecmath.QuantizedSet) and scores the
	// candidate-selection pass of probed shards with cheap int8 dot
	// products instead of full float32 ones; the final top-k is always
	// exact-rescored from the float vectors. Bypassed entirely at
	// RecallTarget >= 1 — the proof rule's byte-identical-to-Flat
	// guarantee only holds over exact scores. The companion is persisted
	// as an optional sidecar section and rebuilt from the float vectors
	// on restore when absent or damaged.
	Quantize bool
	// RetrainCooldown, when > 0, rate-limits automatic background
	// retrains: once a retrain launches, further automatic triggers
	// (corpus doublings, accumulated churn) within the window coalesce
	// into at most one deferred retrain that launches when the window
	// closes — so a pathological churn burst can no longer retrain
	// back-to-back indefinitely. The deferred retrain covers everything
	// the burst changed (the churn counter keeps accumulating while
	// gated). TrainNow, an explicit operator/benchmark action, bypasses
	// the cooldown. See docs/operations.md for tuning guidance.
	RetrainCooldown time.Duration
}

// minTrainSize is the corpus size below which clustering buys nothing; the
// index brute-scans until it is reached.
const minTrainSize = 64

// maxLloydIters bounds the k-means refinement loop per (re)train.
const maxLloydIters = 8

// minPartialDims is the smallest scoring prefix Overfetch will use: a
// half-vector prefix below this carries too little signal to preselect the
// pool reliably, so at fewer than 2*minPartialDims total dimensions partial
// scoring is skipped and the widened pool is scored exactly.
const minPartialDims = 64

// trainedSet is one trained clustering: the centroids, the shard membership
// of every assigned id (primary assignment plus optional spill replicas),
// and per-shard radii bounding how far any member sits from its centroid. A
// retrain builds a fresh trainedSet off to the side and installs it with a
// single pointer swap, so queries either see the old clustering or the new
// one, never a half-built hybrid. Between retrains the set is maintained
// incrementally (nearest-centroid insert, shard removal on delete) under
// the index lock.
type trainedSet struct {
	centroids [][]float32
	shards    [][]int     // centroid index → member ids (primary + spilled)
	assign    map[int]int // id → primary centroid index
	spill     map[int]int // id → secondary centroid index (near-boundary replicas)
	// radii[ci] is an upper bound on the distance from centroid ci to any
	// member of shard ci (including spilled members). Inserts widen it,
	// deletes leave it (still a valid upper bound), retrains recompute it.
	// The adaptive probe loop turns it into a per-shard score bound:
	// no member of shard ci can score above dot(q, centroid) + radius.
	radii []float64
	// qradii[ci] is the radiusQuantile (p95) of member distances in shard
	// ci at train/restore time — a tighter, slightly leaky bound that a
	// single outlier member cannot inflate. Approximate adaptive scans
	// (RecallTarget < 1) bound shards with it instead of the max radius,
	// stopping sooner on the same corpus; exact scans (target 1.0) keep
	// the provable max. Inserts widen it just like radii so a shard's
	// newest member is never bounded out.
	qradii []float64
}

// radiusQuantile is the member-distance quantile qradii stores.
const radiusQuantile = 0.95

// quantileDist returns the q-quantile of ds (sorted in place). Empty in,
// zero out.
func quantileDist(ds []float64, q float64) float64 {
	if len(ds) == 0 {
		return 0
	}
	sort.Float64s(ds)
	i := int(math.Ceil(q*float64(len(ds)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(ds) {
		i = len(ds) - 1
	}
	return ds[i]
}

// Clustered is an IVF-style approximate index: vectors are partitioned into
// shards around k-means-ish centroids, and a query scans only the shards
// whose centroids are most similar to it — a fixed NProbe count, or an
// adaptively widened set under RecallTarget (see Search).
//
// Maintenance is incremental — a new vector is assigned to its nearest
// existing centroid (and replicated to its second-nearest under SpillRatio)
// — with a full deterministic retrain amortized over doublings of the
// corpus and over delete/replace churn. The retrain runs in a background
// goroutine against a copy-on-write snapshot of the vectors: queries keep
// being served from the previous clustering the whole time, inserts that
// arrive mid-retrain land in a small exact overflow buffer that every query
// scans alongside the probed shards, and the finished clustering is
// installed with an atomic pointer swap. The serving path therefore never
// waits on k-means.
type Clustered struct {
	mu   sync.RWMutex
	cond *sync.Cond // broadcast whenever a retrain attempt finishes
	cfg  ClusteredConfig

	vecs     map[int][]float32
	trained  *trainedSet // nil until the first training completes
	overflow map[int]bool

	// qset mirrors vecs with int8 quantized codes when cfg.Quantize is
	// set (nil otherwise); maintained under mu by the same paths that
	// maintain vecs.
	qset *vecmath.QuantizedSet

	trainedAt  int  // corpus size at the last completed retrain
	churn      int  // removals/replacements since the last retrain launch
	retraining bool // a background retrain is in flight
	gen        int  // invalidates in-flight retrains on Restore
	retrains   int  // completed full retrains (observability/tests)

	// Retrain-cooldown state. lastLaunch is when the most recent retrain
	// (automatic or TrainNow) was launched; deferred records that a
	// cooldown-gated trigger already scheduled the one coalesced retrain
	// for the end of the window. clock and schedule are time.Now and
	// time.AfterFunc, injectable so the cooldown unit tests run on a fake
	// clock instead of sleeping.
	lastLaunch time.Time
	deferred   bool
	clock      func() time.Time
	schedule   func(d time.Duration, f func())
	// lastRetrainDur is how long the most recent completed retrain took
	// (measured on the injectable clock). The cooldown adapts to it: a
	// corpus whose retrains take minutes gets a proportionally longer
	// window than the flag alone would give (see effectiveCooldownLocked).
	lastRetrainDur time.Duration

	// metrics, when set, is the observability surface every query and
	// completed retrain reports into (see SetMetrics).
	metrics *ClusteredMetrics

	// retrainHook, when set, runs inside the retrain goroutine before the
	// k-means computation — tests use it to hold a retrain open while they
	// probe the serving path.
	retrainHook func()
}

// NewClustered creates an empty IVF index. Out-of-range knobs are clamped
// to their "off" settings rather than rejected — a negative spill ratio or
// recall target cannot mean anything else.
func NewClustered(cfg ClusteredConfig) *Clustered {
	if cfg.SpillRatio < 0 {
		cfg.SpillRatio = 0
	}
	if cfg.RecallTarget < 0 {
		cfg.RecallTarget = 0
	}
	if cfg.RecallTarget > 1 {
		cfg.RecallTarget = 1
	}
	c := &Clustered{
		cfg:      cfg,
		vecs:     map[int][]float32{},
		overflow: map[int]bool{},
		clock:    time.Now,
		schedule: func(d time.Duration, f func()) { time.AfterFunc(d, f) },
	}
	if cfg.Quantize {
		c.qset = vecmath.NewQuantizedSet()
	}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// Name identifies the implementation.
func (c *Clustered) Name() string { return "clustered" }

// Len reports the number of stored vectors.
func (c *Clustered) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.vecs)
}

// Retrains reports how many full retrains have completed — the registry's
// restore path asserts this stays zero when a snapshot loads cleanly.
func (c *Clustered) Retrains() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.retrains
}

// Generation reports a counter that advances whenever the trained
// structure an answer depends on is replaced — a completed retrain or a
// snapshot Restore. Result caches key their entries to it: the same query
// against the same generation (and the same record set) returns the same
// candidates, so a generation bump is exactly when cached ANN answers must
// be discarded. Monotonic: both underlying counters only ever increase.
func (c *Clustered) Generation() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return uint64(c.retrains) + uint64(c.gen)
}

// WaitRetrain blocks until no background retrain is in flight. Benchmarks
// and tests call it to reach a settled clustering; serving code never needs
// to.
func (c *Clustered) WaitRetrain() {
	c.mu.Lock()
	for c.retraining {
		c.cond.Wait()
	}
	c.mu.Unlock()
}

// TrainNow runs one full retrain over the current corpus and blocks until
// it lands — the synchronous path to the same fully-trained state a
// snapshot restore reproduces. Below minTrainSize it is a no-op: the index
// brute-scans there (exactly), and installing a tiny clustering would
// silently make those corpora approximate. Benchmarks use it as the
// rebuild baseline; the serving path sticks to background retrains.
func (c *Clustered) TrainNow() {
	c.mu.Lock()
	for c.retraining {
		c.cond.Wait()
	}
	if len(c.vecs) < minTrainSize {
		c.mu.Unlock()
		return
	}
	c.launchRetrainLocked()
	c.mu.Unlock()
	c.WaitRetrain()
}

// Upsert stores a copy of vec under id; an empty vec removes the entry.
// With a clustering live the id is assigned to its nearest shard (plus a
// spill replica when configured); while a retrain is in flight it goes to
// the exact overflow buffer instead (the in-flight result is computed from
// a snapshot and would lose a concurrent shard insert at swap time).
// Crossing a corpus doubling launches a background retrain.
func (c *Clustered) Upsert(id int, vec []float32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(vec) == 0 {
		// A removal, not an insert — it accrues churn exactly like Delete,
		// so it must run the same trigger check or churn-due retrains
		// would defer until some unrelated mutation happens by.
		c.deleteLocked(id)
		c.maybeRetrainLocked()
		return
	}
	c.deleteLocked(id) // replacing: drop any stale shard membership
	c.vecs[id] = append([]float32(nil), vec...)
	if c.qset != nil {
		c.qset.Upsert(id, c.vecs[id])
	}
	switch {
	case c.retraining:
		// Checked before trained==nil: even during the FIRST training a
		// replaced vector must be flagged, or the merge would keep the
		// k-means assignment computed from its stale snapshot value.
		// (While trained is nil queries brute-scan everything, so the flag
		// costs nothing there.)
		c.overflow[id] = true
	case c.trained == nil:
		// Brute-scan mode: every query visits every vector already.
	default:
		c.trained.insert(c.cfg, id, c.vecs[id])
	}
	c.maybeRetrainLocked()
}

// Delete removes the entry for id. Removals count toward the retrain
// trigger: a corpus that churns in place (delete + insert at a steady size)
// never crosses a doubling, but its clustering still degrades, so enough
// accumulated churn relaunches the training too.
func (c *Clustered) Delete(id int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.deleteLocked(id)
	c.maybeRetrainLocked()
}

func (c *Clustered) deleteLocked(id int) {
	if _, ok := c.vecs[id]; !ok {
		return
	}
	delete(c.vecs, id)
	delete(c.overflow, id)
	if c.qset != nil {
		c.qset.Delete(id)
	}
	c.churn++
	if c.trained == nil {
		return
	}
	if ci, ok := c.trained.assign[id]; ok {
		delete(c.trained.assign, id)
		c.trained.removeMember(ci, id)
	}
	if ci, ok := c.trained.spill[id]; ok {
		delete(c.trained.spill, id)
		c.trained.removeMember(ci, id)
	}
}

// removeMember drops id from shard ci's member list. The shard radius is
// deliberately left alone — it remains a valid (if looser) upper bound, and
// the next retrain recomputes it tight.
func (ts *trainedSet) removeMember(ci, id int) {
	members := ts.shards[ci]
	for i, m := range members {
		if m == id {
			ts.shards[ci] = append(members[:i], members[i+1:]...)
			return
		}
	}
}

// insert assigns one vector into the trained set exactly as every
// incremental path does: primary nearest shard, a spill replica when the
// second-nearest centroid is within the spill ratio, and radii widened so
// the adaptive-probe score bounds stay valid for the new member.
func (ts *trainedSet) insert(cfg ClusteredConfig, id int, v []float32) {
	best, second := nearestTwoCentroids(ts.centroids, v)
	ts.assign[id] = best
	ts.shards[best] = append(ts.shards[best], id)
	d1 := distance(ts.centroids[best], v)
	if d1 > ts.radii[best] {
		ts.radii[best] = d1
	}
	if len(ts.qradii) == len(ts.radii) && d1 > ts.qradii[best] {
		ts.qradii[best] = d1
	}
	if cfg.SpillRatio > 0 && second >= 0 {
		if d2 := distance(ts.centroids[second], v); d2 <= (1+cfg.SpillRatio)*d1 {
			ts.spill[id] = second
			ts.shards[second] = append(ts.shards[second], id)
			if d2 > ts.radii[second] {
				ts.radii[second] = d2
			}
			if len(ts.qradii) == len(ts.radii) && d2 > ts.qradii[second] {
				ts.qradii[second] = d2
			}
		}
	}
}

func (c *Clustered) retrainDueLocked() bool {
	n := len(c.vecs)
	if n < minTrainSize {
		return false
	}
	if c.trained == nil {
		return true
	}
	return n >= 2*c.trainedAt || c.churn >= c.trainedAt
}

// maybeRetrainLocked is the single automatic-retrain gate: it launches a
// due background retrain unless one is already in flight or the cooldown
// suppresses it. A cooldown-gated trigger coalesces into one retrain
// deferred to the end of the window — the churn that keeps arriving
// meanwhile accumulates and is covered by that single launch. Explicit
// TrainNow calls bypass this gate by design.
func (c *Clustered) maybeRetrainLocked() {
	if c.retraining || !c.retrainDueLocked() {
		return
	}
	if cd := c.effectiveCooldownLocked(); cd > 0 && !c.lastLaunch.IsZero() {
		if elapsed := c.clock().Sub(c.lastLaunch); elapsed < cd {
			c.deferRetrainLocked(cd - elapsed)
			return
		}
	}
	c.launchRetrainLocked()
}

// cooldownDurationFactor scales the adaptive cooldown: a retrain may
// consume at most ~1/cooldownDurationFactor of the index's background
// compute budget.
const cooldownDurationFactor = 5

// effectiveCooldownLocked is the cooldown window actually enforced: the
// configured flag, stretched to cooldownDurationFactor times the last
// measured retrain duration when that is longer. A flag tuned for a small
// corpus therefore cannot make a grown corpus spend most of its time in
// k-means — the window scales with the cost it gates. Cooldown off
// (flag <= 0) stays off regardless of duration.
func (c *Clustered) effectiveCooldownLocked() time.Duration {
	cd := c.cfg.RetrainCooldown
	if cd <= 0 {
		return cd
	}
	if adaptive := cooldownDurationFactor * c.lastRetrainDur; adaptive > cd {
		return adaptive
	}
	return cd
}

// deferRetrainLocked schedules the one coalesced retrain a cooldown
// window is allowed. Idempotent — the first gated trigger schedules, the
// rest ride along. The callback re-checks everything under the lock: the
// corpus may have been Restored (gen moved on — Restore never retrains),
// the pending churn may have been absorbed by a TrainNow, or the window
// may have been extended by another launch in the meantime.
func (c *Clustered) deferRetrainLocked(wait time.Duration) {
	if c.deferred {
		return
	}
	c.deferred = true
	gen := c.gen
	c.schedule(wait, func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		if gen != c.gen {
			// A Restore replaced the corpus since this was scheduled. The
			// Restore cleared the deferral flag, so any post-Restore
			// trigger owns a fresh deferral of its own — leave the flag
			// alone and do nothing (Restore never retrains, and neither
			// may a timer that predates it).
			return
		}
		c.deferred = false
		c.maybeRetrainLocked()
	})
}

// launchRetrainLocked snapshots the vector set and starts the background
// retrain goroutine. The snapshot shares vector slices with the live map —
// safe because Upsert always installs a fresh slice, never mutates one in
// place — so the copy is O(N) map entries, not O(N·d) floats. The churn
// counter restarts here: mutations that land after the launch are not
// reflected in the training under way and must count toward the next one.
func (c *Clustered) launchRetrainLocked() {
	c.retraining = true
	c.churn = 0
	c.lastLaunch = c.clock()
	gen := c.gen
	snap := make(map[int][]float32, len(c.vecs))
	for id, v := range c.vecs {
		snap[id] = v
	}
	hook := c.retrainHook
	go c.retrain(snap, gen, hook)
}

// retrain runs off the serving path: k-means over the snapshot without any
// lock held, then a brief locked merge that reconciles what changed while
// training (deletes drop out, overflow inserts are assigned to their nearest
// new centroid) and installs the new clustering with a pointer swap.
func (c *Clustered) retrain(snap map[int][]float32, gen int, hook func()) {
	// The measured window opens before the hook on purpose: the hook is the
	// injectable stand-in for "the retrain takes a while", which is what
	// the adaptive-cooldown tests advance the fake clock inside.
	start := c.clock()
	if hook != nil {
		hook()
	}
	cents, assign, spill, radii, qradii := trainKMeans(c.cfg, snap)

	c.mu.Lock()
	defer c.mu.Unlock()
	defer c.cond.Broadcast()
	if gen != c.gen {
		// A Restore replaced the corpus while we trained; the result
		// describes vectors that no longer exist. Whoever bumped gen also
		// owns the retraining flag, so leave all state alone.
		return
	}
	ts := &trainedSet{
		centroids: cents,
		shards:    make([][]int, len(cents)),
		assign:    make(map[int]int, len(c.vecs)),
		spill:     map[int]int{},
		radii:     radii,
		qradii:    qradii,
	}
	for id, ci := range assign {
		if _, ok := c.vecs[id]; !ok {
			continue // deleted while training
		}
		if c.overflow[id] {
			// The vector was replaced mid-retrain; the k-means assignment
			// positions its *old* value. Reassign from the live vector
			// below instead.
			continue
		}
		ts.assign[id] = ci
		ts.shards[ci] = append(ts.shards[ci], id)
	}
	for id, ci := range spill {
		if _, ok := ts.assign[id]; !ok {
			continue // deleted or replaced mid-retrain; handled below
		}
		ts.spill[id] = ci
		ts.shards[ci] = append(ts.shards[ci], id)
	}
	// Everything else arrived (or was replaced) mid-retrain and is exactly
	// the overflow buffer — inserts and replacements during a retrain
	// always flag it, deletes always clear it. Assign each live vector as
	// an incremental insert would. Walking the overflow, not all of vecs,
	// keeps this O(Δ·k·d) for Δ mid-retrain changes — the only index work
	// that ever happens under the write lock during a retrain. (The radii
	// computed over the snapshot stay valid upper bounds for ids deleted
	// mid-retrain; insert only ever widens them.)
	for id := range c.overflow {
		v, ok := c.vecs[id]
		if !ok {
			continue
		}
		ts.insert(c.cfg, id, v)
	}
	c.trained = ts // the atomic swap: queries now see the new clustering
	c.overflow = map[int]bool{}
	// trainedAt is the corpus size the clustering was actually computed
	// over — the snapshot, not the live set. Using the live size here would
	// absorb everything that arrived mid-retrain into the "trained" count
	// and make the relaunch check below unreachable.
	c.trainedAt = len(snap)
	c.retraining = false
	c.retrains++
	dur := c.clock().Sub(start)
	c.lastRetrainDur = dur
	c.metrics.observeRetrain(dur.Seconds())
	// The corpus may have doubled (or churned) again while we were
	// training; go around — through the cooldown gate, which is exactly
	// where back-to-back retrain storms are broken.
	c.maybeRetrainLocked()
}

// numCentroids picks the cluster count for a corpus of n vectors.
func numCentroids(cfg ClusteredConfig, n int) int {
	k := cfg.Centroids
	if k <= 0 {
		k = int(math.Ceil(math.Sqrt(float64(n))))
	}
	if k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}
	return k
}

// trainKMeans clusters a vector set with a deterministic k-means: seeds are
// evenly spaced over the id-sorted corpus, up to maxLloydIters Lloyd
// iterations refine them (ties break toward the lowest centroid index), and
// a final pass assigns every id to its nearest *final* centroid so shard
// membership always agrees with the centroids a query probes against. The
// same final pass computes the spill replicas (second-nearest centroid
// within the configured ratio) and the per-shard radii — the max and the
// radiusQuantile — the adaptive probe bounds need. It is a pure function —
// the background retrain runs it without holding the index lock.
func trainKMeans(cfg ClusteredConfig, vecs map[int][]float32) ([][]float32, map[int]int, map[int]int, []float64, []float64) {
	n := len(vecs)
	if n == 0 {
		return nil, map[int]int{}, map[int]int{}, nil, nil
	}
	ids := make([]int, 0, n)
	for id := range vecs {
		ids = append(ids, id)
	}
	sort.Ints(ids)

	k := numCentroids(cfg, n)
	cents := make([][]float32, k)
	for i := 0; i < k; i++ {
		cents[i] = append([]float32(nil), vecs[ids[i*n/k]]...)
	}
	assign := make([]int, len(ids))
	for i := range assign {
		assign[i] = -1
	}
	for iter := 0; iter < maxLloydIters; iter++ {
		changed := false
		for i, id := range ids {
			best := nearestCentroid(cents, vecs[id])
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed {
			break
		}
		// Recompute each centroid as the normalized mean of its members;
		// empty clusters keep their previous centroid.
		sums := make([][]float64, k)
		counts := make([]int, k)
		for i, id := range ids {
			ci := assign[i]
			v := vecs[id]
			if sums[ci] == nil {
				sums[ci] = make([]float64, len(v))
			}
			s := sums[ci]
			for d := 0; d < len(v) && d < len(s); d++ {
				s[d] += float64(v[d])
			}
			counts[ci]++
		}
		for ci := range cents {
			if counts[ci] == 0 {
				continue
			}
			var norm float64
			for _, x := range sums[ci] {
				norm += x * x
			}
			norm = math.Sqrt(norm)
			if norm == 0 {
				continue
			}
			cent := make([]float32, len(sums[ci]))
			for d, x := range sums[ci] {
				cent[d] = float32(x / norm)
			}
			cents[ci] = cent
		}
	}

	out := make(map[int]int, n)
	spill := map[int]int{}
	radii := make([]float64, k)
	dists := make([][]float64, k)
	for _, id := range ids {
		v := vecs[id]
		best, second := nearestTwoCentroids(cents, v)
		out[id] = best
		d1 := distance(cents[best], v)
		if d1 > radii[best] {
			radii[best] = d1
		}
		dists[best] = append(dists[best], d1)
		if cfg.SpillRatio > 0 && second >= 0 {
			if d2 := distance(cents[second], v); d2 <= (1+cfg.SpillRatio)*d1 {
				spill[id] = second
				if d2 > radii[second] {
					radii[second] = d2
				}
				dists[second] = append(dists[second], d2)
			}
		}
	}
	qradii := make([]float64, k)
	for ci := range dists {
		qradii[ci] = quantileDist(dists[ci], radiusQuantile)
	}
	return cents, out, spill, radii, qradii
}

// nearestCentroid returns the index of the centroid most similar to v (ties
// break toward the lowest index).
func nearestCentroid(cents [][]float32, v []float32) int {
	best, bestScore := 0, math.Inf(-1)
	for ci, cent := range cents {
		if s := dot(cent, v); s > bestScore {
			best, bestScore = ci, s
		}
	}
	return best
}

// nearestTwoCentroids returns the indexes of the two centroids most similar
// to v. The primary follows nearestCentroid's exact tie rule (toward the
// lowest index); second is -1 when fewer than two centroids exist.
func nearestTwoCentroids(cents [][]float32, v []float32) (best, second int) {
	best, second = 0, -1
	bestScore, secondScore := math.Inf(-1), math.Inf(-1)
	for ci, cent := range cents {
		s := dot(cent, v)
		switch {
		case s > bestScore:
			second, secondScore = best, bestScore
			best, bestScore = ci, s
		case s > secondScore:
			second, secondScore = ci, s
		}
	}
	if len(cents) < 2 {
		second = -1
	}
	return best, second
}

// distance is the Euclidean distance over the common prefix of two vectors
// (the same prefix rule the shared dot product uses). Computed directly
// rather than via 2-2·cos so the shard radii are true distances, not
// unit-norm approximations — the adaptive stop rule's exactness proof at
// RecallTarget=1 leans on these being genuine upper bounds. vecmath.L2
// keeps the historic scalar loop's semantics bit-identically.
func distance(a, b []float32) float64 {
	return vecmath.L2(a, b)
}

// dotPrefix scores only the first m dimensions — the cheap partial score
// Overfetch uses to build its widened candidate pool before the exact
// rescore.
func dotPrefix(a, b []float32, m int) float64 {
	return vecmath.DotPrefix(a, b, m)
}

// boundPad is the safety margin added to a shard's score upper bound. The
// bound dot(q,c)+r is exact in real arithmetic for a unit-norm query; the
// pad absorbs the float32 normalization error of real queries (≲1e-6
// relative) and the float64 accumulation error of dot and distance, so a
// bound never rounds *below* a reachable score and the RecallTarget=1 stop
// rule stays a proof rather than a heuristic.
func boundPad(r float64) float64 { return 1e-5*r + 1e-9 }

// nprobeLocked resolves the configured fixed probe count against the live
// centroid set.
func (c *Clustered) nprobeLocked() int {
	p := c.cfg.NProbe
	n := len(c.trained.centroids)
	if p <= 0 {
		p = n / 4
	}
	if p < 1 {
		p = 1
	}
	if p > n {
		p = n
	}
	return p
}

// probeTarget is one shard in a query's visit plan: its centroid index, the
// centroid's similarity to the query, and the upper bound on any member's
// score (centroid similarity + shard radius).
type probeTarget struct {
	ci    int
	score float64
	bound float64
}

// patienceFor maps a recall target to the adaptive probe loop's patience:
// how many consecutive shards may fail to improve the top-k before the scan
// concludes it has hit diminishing returns. The mapping grows without bound
// as the target approaches 1 (0.5→1, 0.8→2, 0.9→5, 0.95→10, 0.99→50);
// target 1.0 never uses it — only the provable bound rule may stop an exact
// scan.
func patienceFor(target float64) int {
	p := int(math.Ceil(target / (2 * (1 - target))))
	if p < 1 {
		p = 1
	}
	return p
}

// Search returns the top-k most similar stored vectors.
//
// Before the first training completes there are no centroids and the whole
// corpus is brute-scanned, which is both exact and cheap at that scale.
// With a clustering live the query runs the probe → (rescore) pipeline:
//
//  1. Probe selection. With RecallTarget unset, the NProbe shards with the
//     most similar centroids are scanned — the historic fixed policy. With
//     RecallTarget set, shards are visited best-first and the loop stops
//     early on the proof rule (the kth-best candidate exceeds every
//     remaining shard's score upper bound, so stopping loses nothing) or,
//     below target 1.0, the diminishing-returns rule (target-scaled
//     patience ran out with no top-k improvement) — bounded below by
//     NProbe and above by MaxProbe. At target 1.0 only the proof rule
//     stops the scan, so with no MaxProbe cap the answer equals Flat's
//     exactly (the budget, when set, always wins over the target).
//  2. Candidate scoring. Shard members are scored with the shared exact dot
//     product, or — when Overfetch widens the pool — with a cheap
//     prefix-dimension partial score, keeping the best k·Overfetch.
//     Spilled (replicated) members are deduplicated as they are met.
//  3. Overflow. The exact overflow buffer (inserts a live retrain has not
//     folded in yet) is always scanned, so fresh vectors are immediately
//     findable.
//  4. Re-rank. A widened or partially-scored pool is exact-rescored with
//     full dot products before the final top-k.
//
// Because shards plus overflow cover every live vector (spill replicas are
// deduplicated), probing every shard yields exactly the Flat result.
func (c *Clustered) Search(query []float32, k int, filter Filter) []Candidate {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.searchLocked(query, k, filter)
}

// searchLocked is Search's body, factored out so SearchBatch can answer
// many queries under a single lock acquisition. Callers hold c.mu (read
// or write).
func (c *Clustered) searchLocked(query []float32, k int, filter Filter) []Candidate {
	if k <= 0 {
		return []Candidate{}
	}
	met := c.metrics
	if c.trained == nil {
		top := NewTopK(k)
		scanned := 0
		for id, v := range c.vecs {
			if filter != nil && !filter(id) {
				continue
			}
			scanned++
			top.Push(Candidate{ID: id, Score: dot(query, v)})
		}
		met.observeQuery(0, scanned, StopBrute)
		return top.Sorted()
	}
	ts := c.trained
	adaptive := c.cfg.RecallTarget > 0

	// Pool sizing and scoring mode. Overfetch widens the pool and switches
	// the scan to partial scoring; RecallTarget=1 turns it off (partial
	// scores would break the exactness the zero-slack stop rule proves),
	// as do dimensionalities where the prefix is no cheaper than the whole.
	poolK := k
	partialDims := 0
	// The quantized pass engages whenever a companion set exists and the
	// proof rule is not in play: RecallTarget >= 1 promises byte-identical-
	// to-Flat answers, which only exact scores can honor. When it engages
	// it replaces Overfetch's prefix partial scoring — int8 over the full
	// width is both cheaper and better-conditioned than a float prefix.
	quantized := c.qset != nil && c.cfg.RecallTarget < 1
	if of := c.cfg.Overfetch; of > 1 && c.cfg.RecallTarget < 1 {
		// k is a client-controlled limit and travels here unclamped; a
		// widened pool must saturate, never overflow into TopK(0).
		if k > math.MaxInt/of {
			poolK = math.MaxInt
		} else {
			poolK = k * of
		}
		if pd := len(query) / 2; !quantized && pd >= minPartialDims && pd < len(query) {
			partialDims = pd
		}
	}
	var qCodes []int8
	var qScale float32
	if quantized {
		qCodes, qScale = vecmath.Quantize(query)
	}
	// approx marks a pool holding lossy scores (quantized or partial):
	// the proof rule must not trust them and the final top-k must be
	// exact-rescored.
	approx := quantized || partialDims > 0

	pool := NewTopK(poolK)
	// gate tracks the kth-best score seen, feeding the adaptive stop rule;
	// when the pool is not widened it IS the pool.
	gate := pool
	if adaptive && poolK != k {
		gate = NewTopK(k)
	}
	var seen map[int]bool // lazy: only spilled ids can be met twice
	scanned := 0          // candidate vectors actually scored (observability)
	scanID := func(id int) {
		if filter != nil && !filter(id) {
			return
		}
		if _, spilled := ts.spill[id]; spilled {
			if seen[id] {
				return
			}
			if seen == nil {
				seen = map[int]bool{}
			}
			seen[id] = true
		}
		v, ok := c.vecs[id]
		if !ok {
			return
		}
		scanned++
		var s float64
		switch {
		case quantized:
			if qs, qok := c.qset.Dot(qCodes, qScale, id); qok {
				s = qs
			} else {
				// No companion for this id (e.g. a damaged persisted entry
				// adopted partially): degrade to the exact float score,
				// never to a miss.
				s = dot(query, v)
			}
		case partialDims > 0:
			s = dotPrefix(query, v, partialDims)
		default:
			s = dot(query, v)
		}
		cand := Candidate{ID: id, Score: s}
		pool.Push(cand)
		if gate != pool {
			gate.Push(cand)
		}
	}
	probes := 0 // shards visited (observability)
	stopRule := StopFixed

	if !adaptive {
		probe := NewTopK(c.nprobeLocked())
		for ci, cent := range ts.centroids {
			probe.Push(Candidate{ID: ci, Score: dot(query, cent)})
		}
		for _, p := range probe.Sorted() {
			probes++
			for _, id := range ts.shards[p.ID] {
				scanID(id)
			}
		}
	} else {
		exact := c.cfg.RecallTarget >= 1
		targets := make([]probeTarget, len(ts.centroids))
		for ci, cent := range ts.centroids {
			cs := dot(query, cent)
			// Exact scans bound each shard by its max radius — the provable
			// cap the proof rule needs. Approximate scans use the p95
			// quantile radius instead: a single outlier member can no longer
			// hold a shard's bound open, so the stop rules fire sooner, and
			// the members past the quantile are exactly the kind of long-shot
			// candidates a sub-1.0 target has already agreed to trade away.
			r := ts.radii[ci]
			if !exact && len(ts.qradii) == len(ts.radii) {
				r = ts.qradii[ci]
			}
			targets[ci] = probeTarget{ci: ci, score: cs, bound: cs + r + boundPad(r)}
		}
		// An exact scan visits shards best-bound-first so the provable stop
		// rule sees a monotone bound sequence; an approximate one visits
		// best-centroid-first, which concentrates the likely hits up front
		// (a shard with an outlier-inflated radius must not jump the queue).
		sort.Slice(targets, func(i, j int) bool {
			a, b := targets[i], targets[j]
			if exact && a.bound != b.bound {
				return a.bound > b.bound
			}
			if !exact && a.score != b.score {
				return a.score > b.score
			}
			return a.ci < b.ci
		})
		// suffixBound[i] caps every score reachable from shard i onward.
		suffixBound := make([]float64, len(targets)+1)
		suffixBound[len(targets)] = math.Inf(-1)
		for i := len(targets) - 1; i >= 0; i-- {
			suffixBound[i] = math.Max(suffixBound[i+1], targets[i].bound)
		}
		minProbe := c.cfg.NProbe
		if minProbe < 1 {
			minProbe = 1
		}
		maxProbe := c.cfg.MaxProbe
		if maxProbe <= 0 || maxProbe > len(targets) {
			maxProbe = len(targets)
		}
		if minProbe > maxProbe {
			minProbe = maxProbe
		}
		patience := 0
		if !exact {
			patience = patienceFor(c.cfg.RecallTarget)
		}
		// An adaptive scan that runs out of shards degenerated to a full
		// probe; every early break below overwrites this attribution.
		stopRule = StopExhausted
		unimproved := 0
		for i, t := range targets {
			if i >= maxProbe {
				stopRule = StopBudget
				break
			}
			if i >= minProbe {
				worst, full := gate.Worst()
				// The proof rule: nothing in any remaining shard can reach
				// the kth-best score, so stopping loses nothing. This is the
				// only rule an exact (target 1.0) scan may stop on. It is
				// unsound over approximate scores (a prefix dot can exceed
				// the full dot the bounds cap, and a quantized score can
				// drift either way), so it only runs when the gate holds
				// exact scores.
				if full && !approx && worst.Score > suffixBound[i] {
					stopRule = StopProof
					break
				}
				// The diminishing-returns rule: enough consecutive shards
				// contributed nothing to the top-k that the rest are
				// unlikely to either. Patience scales with the target.
				// (Unlike the proof rule this is score-scale-free — it only
				// compares gate scores to each other — so partial scoring
				// does not affect its validity, just its sharpness.)
				if !exact && full && unimproved >= patience {
					stopRule = StopPatience
					break
				}
			}
			prevWorst, prevFull := gate.Worst()
			probes++
			for _, id := range ts.shards[t.ci] {
				scanID(id)
			}
			if !exact {
				if worst, full := gate.Worst(); full && prevFull && worst.Score <= prevWorst.Score {
					unimproved++
				} else {
					unimproved = 0
				}
			}
		}
	}
	for id := range c.overflow {
		scanID(id)
	}
	met.observeQuery(probes, scanned, stopRule)
	if quantized {
		met.observeQuantized()
	}

	if poolK == k && !approx {
		return pool.Sorted()
	}
	// Re-rank: exact-rescore the widened or approximately-scored pool with
	// full dot products. When the pool was already exactly scored this
	// recomputes identical values, so enabling Overfetch never changes
	// scores, only which candidates survive into the pool; a quantized pool
	// always passes through here, which is what keeps quantization a
	// candidate-selection heuristic rather than a scoring change.
	final := NewTopK(k)
	for _, cand := range pool.Sorted() {
		if v, ok := c.vecs[cand.ID]; ok {
			final.Push(Candidate{ID: cand.ID, Score: dot(query, v)})
		}
	}
	return final.Sorted()
}

// SearchBatch answers every query under a single lock acquisition,
// amortizing the shared scan work across the batch. Results are identical
// to calling Search once per query (the top-k selection is a strict total
// order — score descending, id ascending — so it is insensitive to visit
// order, which is the only thing batching changes):
//
//   - Untrained (brute-scan) corpus: the vector map is iterated ONCE and
//     each vector is scored against every query, instead of len(queries)
//     full map walks.
//   - Fixed-probe clustering (RecallTarget unset): per-query probe plans
//     are inverted into a shard → subscribed-queries map, so each probed
//     shard's members are fetched and spill-checked once and scored only
//     for the queries that probed that shard.
//   - Adaptive probing (RecallTarget set): each query's stop rule depends
//     on its own evolving top-k, so shard visits cannot be shared without
//     changing which shards get visited; the batch degenerates to a
//     sequential loop that still saves the per-query lock round-trips.
func (c *Clustered) SearchBatch(queries [][]float32, k int, filter Filter) [][]Candidate {
	out := make([][]Candidate, len(queries))
	if len(queries) == 0 {
		return out
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	c.metrics.observeBatch(len(queries))
	if k <= 0 {
		for i := range out {
			out[i] = []Candidate{}
		}
		return out
	}
	switch {
	case c.trained == nil:
		c.searchBatchBruteLocked(queries, k, filter, out)
	case c.cfg.RecallTarget > 0:
		for i, q := range queries {
			out[i] = c.searchLocked(q, k, filter)
		}
	default:
		c.searchBatchFixedLocked(queries, k, filter, out)
	}
	return out
}

// searchBatchBruteLocked is the untrained-corpus batch path: one walk of
// the vector map, every vector scored (exactly) against every query.
func (c *Clustered) searchBatchBruteLocked(queries [][]float32, k int, filter Filter, out [][]Candidate) {
	met := c.metrics
	tops := make([]*TopK, len(queries))
	for i := range tops {
		tops[i] = NewTopK(k)
	}
	scanned := 0
	for id, v := range c.vecs {
		if filter != nil && !filter(id) {
			continue
		}
		scanned++
		for qi, q := range queries {
			tops[qi].Push(Candidate{ID: id, Score: dot(q, v)})
		}
	}
	for i, t := range tops {
		met.observeQuery(0, scanned, StopBrute)
		out[i] = t.Sorted()
	}
}

// searchBatchFixedLocked is the fixed-NProbe batch path. Each query's
// probe plan is computed as Search would, then inverted: for every probed
// shard, the member vectors are fetched and spill-checked once and scored
// for each query subscribed to that shard. Scoring mode (quantized /
// partial / exact) and the final rescore follow searchLocked exactly.
func (c *Clustered) searchBatchFixedLocked(queries [][]float32, k int, filter Filter, out [][]Candidate) {
	met := c.metrics
	ts := c.trained

	poolK := k
	quantized := c.qset != nil && c.cfg.RecallTarget < 1
	overfetched := false
	if of := c.cfg.Overfetch; of > 1 && c.cfg.RecallTarget < 1 {
		overfetched = true
		if k > math.MaxInt/of {
			poolK = math.MaxInt
		} else {
			poolK = k * of
		}
	}

	type qstate struct {
		query   []float32
		pool    *TopK
		seen    map[int]bool // lazy spill dedup, as in searchLocked
		scanned int
		partial int
		qcodes  []int8
		qscale  float32
	}
	states := make([]qstate, len(queries))
	for qi, q := range queries {
		st := &states[qi]
		st.query = q
		st.pool = NewTopK(poolK)
		if quantized {
			st.qcodes, st.qscale = vecmath.Quantize(q)
		} else if overfetched {
			if pd := len(q) / 2; pd >= minPartialDims && pd < len(q) {
				st.partial = pd
			}
		}
	}

	// Invert the probe plans: shard → query indexes probing it.
	nprobe := c.nprobeLocked()
	subs := map[int][]int{}
	for qi := range states {
		probe := NewTopK(nprobe)
		for ci, cent := range ts.centroids {
			probe.Push(Candidate{ID: ci, Score: dot(states[qi].query, cent)})
		}
		for _, p := range probe.Sorted() {
			subs[p.ID] = append(subs[p.ID], qi)
		}
	}

	scanFor := func(st *qstate, id int, v []float32, spilled bool) {
		if spilled {
			if st.seen[id] {
				return
			}
			if st.seen == nil {
				st.seen = map[int]bool{}
			}
			st.seen[id] = true
		}
		st.scanned++
		var s float64
		switch {
		case quantized:
			if qs, qok := c.qset.Dot(st.qcodes, st.qscale, id); qok {
				s = qs
			} else {
				s = dot(st.query, v)
			}
		case st.partial > 0:
			s = dotPrefix(st.query, v, st.partial)
		default:
			s = dot(st.query, v)
		}
		st.pool.Push(Candidate{ID: id, Score: s})
	}

	for ci, qis := range subs {
		for _, id := range ts.shards[ci] {
			if filter != nil && !filter(id) {
				continue
			}
			v, ok := c.vecs[id]
			if !ok {
				continue
			}
			_, spilled := ts.spill[id]
			for _, qi := range qis {
				scanFor(&states[qi], id, v, spilled)
			}
		}
	}
	// The exact overflow buffer is scanned by every query, as in Search.
	for id := range c.overflow {
		if filter != nil && !filter(id) {
			continue
		}
		v, ok := c.vecs[id]
		if !ok {
			continue
		}
		_, spilled := ts.spill[id]
		for qi := range states {
			scanFor(&states[qi], id, v, spilled)
		}
	}

	for qi := range states {
		st := &states[qi]
		met.observeQuery(nprobe, st.scanned, StopFixed)
		if quantized {
			met.observeQuantized()
		}
		approx := quantized || st.partial > 0
		if poolK == k && !approx {
			out[qi] = st.pool.Sorted()
			continue
		}
		final := NewTopK(k)
		for _, cand := range st.pool.Sorted() {
			if v, ok := c.vecs[cand.ID]; ok {
				final.Push(Candidate{ID: cand.ID, Score: dot(st.query, v)})
			}
		}
		out[qi] = final.Sorted()
	}
}

// Snapshot captures the trained structure (centroids + shard assignments,
// primary and spilled) in the versioned serialized form. Ids sitting in the
// overflow buffer are simply omitted from the assignment map; Restore folds
// them back in via a nearest-centroid assignment. Shard radii are not
// persisted — Restore recomputes them from the members it re-shards.
func (c *Clustered) Snapshot() *Snapshot {
	c.mu.RLock()
	defer c.mu.RUnlock()
	snap := &Snapshot{
		Version:  SnapshotVersion,
		Kind:     c.Name(),
		Count:    len(c.vecs),
		Checksum: ChecksumVectors(c.vecs),
	}
	if c.trained != nil {
		cs := &ClusteredSnapshot{
			Centroids:  make([][]float32, len(c.trained.centroids)),
			Assign:     make(map[int]int, len(c.trained.assign)),
			TrainedAt:  c.trainedAt,
			SpillRatio: c.cfg.SpillRatio,
		}
		for i, cent := range c.trained.centroids {
			cs.Centroids[i] = append([]float32(nil), cent...)
		}
		for id, ci := range c.trained.assign {
			cs.Assign[id] = ci
		}
		if len(c.trained.spill) > 0 {
			cs.Spill = make(map[int]int, len(c.trained.spill))
			for id, ci := range c.trained.spill {
				cs.Spill[id] = ci
			}
		}
		snap.Clustered = cs
	}
	if c.qset != nil {
		codes, scales := c.qset.Entries()
		snap.Quantized = &QuantizedSnapshot{Codes: codes, Scales: scales}
	}
	return snap
}

// Restore replaces the index contents from a snapshot and its vector set
// without retraining: centroids and shard assignments (primary and spill)
// come straight from the snapshot, shard radii are recomputed from the
// re-sharded members, and any id the snapshot leaves unassigned (it was in
// the overflow buffer at save time) is assigned to its nearest centroid,
// the same computation an incremental insert performs. An in-flight retrain
// is invalidated. On any validation failure the index is left unchanged.
func (c *Clustered) Restore(snap *Snapshot, vecs map[int][]float32) error {
	if err := validateSnapshot(snap, c.Name(), vecs); err != nil {
		return err
	}
	var ts *trainedSet
	trainedAt := len(vecs)
	if cs := snap.Clustered; cs != nil {
		k := len(cs.Centroids)
		if k == 0 {
			return fmt.Errorf("index: clustered snapshot carries no centroids")
		}
		// An explicitly pinned centroid count is authoritative: restoring a
		// snapshot trained with a different count would silently turn the
		// -index-centroids flag into a no-op until the next corpus
		// doubling. Rejecting makes the caller rebuild at the configured
		// count. The comparison goes through numCentroids so a snapshot
		// this very config produced always passes (k is clamped to the
		// corpus size at train time). Auto (0) accepts whatever the
		// snapshot trained.
		ta := cs.TrainedAt
		if ta <= 0 {
			ta = len(vecs)
		}
		if c.cfg.Centroids > 0 && k != numCentroids(c.cfg, ta) {
			return fmt.Errorf("index: snapshot trained %d centroids but config pins %d", k, c.cfg.Centroids)
		}
		// The spill ratio shapes the persisted structure the same way the
		// centroid count does: accepting a mismatch would turn -index-spill
		// into a silent no-op until the next retrain. Reject and let the
		// caller rebuild at the configured ratio. (Pre-spill snapshots
		// carry ratio 0, so they restore exactly when spill is off.)
		if cs.SpillRatio != c.cfg.SpillRatio {
			return fmt.Errorf("index: snapshot spill ratio %g but config wants %g", cs.SpillRatio, c.cfg.SpillRatio)
		}
		ts = &trainedSet{
			centroids: make([][]float32, k),
			shards:    make([][]int, k),
			assign:    make(map[int]int, len(vecs)),
			spill:     map[int]int{},
			radii:     make([]float64, k),
			qradii:    make([]float64, k),
		}
		for i, cent := range cs.Centroids {
			if len(cent) == 0 {
				return fmt.Errorf("index: clustered snapshot centroid %d is empty", i)
			}
			ts.centroids[i] = append([]float32(nil), cent...)
		}
		// Deterministic shard order: walk ids sorted, not in map order.
		// Snapshot-assigned ids re-shard first, collecting per-shard member
		// distances so the quantile radii can be computed over the full
		// restored membership; unassigned ids (the save-time overflow
		// buffer) fold in afterwards through the same incremental insert a
		// live index would use, widening both radius kinds as needed.
		ids := make([]int, 0, len(vecs))
		for id := range vecs {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		var pending []int
		dists := make([][]float64, k)
		for _, id := range ids {
			ci, ok := cs.Assign[id]
			if !ok {
				pending = append(pending, id)
				continue
			}
			if ci < 0 || ci >= k {
				return fmt.Errorf("index: snapshot assigns id %d to centroid %d of %d", id, ci, k)
			}
			ts.assign[id] = ci
			ts.shards[ci] = append(ts.shards[ci], id)
			d := distance(ts.centroids[ci], vecs[id])
			if d > ts.radii[ci] {
				ts.radii[ci] = d
			}
			dists[ci] = append(dists[ci], d)
			if sp, ok := cs.Spill[id]; ok {
				if sp < 0 || sp >= k {
					return fmt.Errorf("index: snapshot spills id %d to centroid %d of %d", id, sp, k)
				}
				ts.spill[id] = sp
				ts.shards[sp] = append(ts.shards[sp], id)
				d := distance(ts.centroids[sp], vecs[id])
				if d > ts.radii[sp] {
					ts.radii[sp] = d
				}
				dists[sp] = append(dists[sp], d)
			}
		}
		for ci := range dists {
			ts.qradii[ci] = quantileDist(dists[ci], radiusQuantile)
		}
		for _, id := range pending {
			ts.insert(c.cfg, id, vecs[id])
		}
		if cs.TrainedAt > 0 {
			trainedAt = cs.TrainedAt
		}
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen++ // a retrain in flight now describes a corpus that is gone
	c.retraining = false
	// Disown any pending cooldown deferral the same way: the stale
	// callback sees the gen bump and does nothing, and clearing the flag
	// here lets the first post-Restore gated trigger schedule a fresh
	// deferral instead of riding a callback that will refuse to act.
	c.deferred = false
	c.vecs = copyVecs(vecs)
	c.overflow = map[int]bool{}
	c.trained = ts
	c.trainedAt = trainedAt
	c.churn = 0
	// Rebuild the quantized companion set. Persisted entries are adopted
	// only when internally consistent with the float vector under the same
	// id (codes present, matching dimensionality, scale recorded); any
	// other entry — and the entire set when the snapshot carries none —
	// is re-quantized from the float source. Quantization is derived data:
	// a damaged or missing section degrades to a rebuild, never to a
	// failed load.
	if c.cfg.Quantize {
		qs := vecmath.NewQuantizedSet()
		for id, v := range c.vecs {
			if q := snap.Quantized; q != nil {
				if codes, ok := q.Codes[id]; ok && len(codes) == len(v) {
					if scale, sok := q.Scales[id]; sok {
						qs.Set(id, codes, scale)
						continue
					}
				}
			}
			qs.Upsert(id, v)
		}
		c.qset = qs
	} else {
		c.qset = nil
	}
	// Restore never retrains, by definition — even from an untrained
	// snapshot (corpus saved inside its first-training window). Such an
	// index serves exact brute-force answers until the next Upsert, whose
	// doubling check launches the training; side-effecting a goroutine
	// here would make "restored, no retrain" a lie and waste a k-means
	// when the caller discards this index (all-or-nothing registry
	// restore).
	return nil
}
