package index

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// ClusteredConfig tunes the IVF-style index.
type ClusteredConfig struct {
	// Centroids fixes the number of clusters; 0 chooses ~sqrt(N)
	// automatically at (re)train time.
	Centroids int
	// NProbe is how many nearest shards a query scans; 0 chooses
	// max(1, centroids/4). Setting NProbe >= centroids makes the search
	// exact (identical results to Flat).
	NProbe int
}

// minTrainSize is the corpus size below which clustering buys nothing; the
// index brute-scans until it is reached.
const minTrainSize = 64

// maxLloydIters bounds the k-means refinement loop per (re)train.
const maxLloydIters = 8

// trainedSet is one trained clustering: the centroids plus the shard
// membership of every assigned id. A retrain builds a fresh trainedSet off
// to the side and installs it with a single pointer swap, so queries either
// see the old clustering or the new one, never a half-built hybrid.
// Between retrains the set is maintained incrementally (nearest-centroid
// insert, shard removal on delete) under the index lock.
type trainedSet struct {
	centroids [][]float32
	shards    [][]int     // centroid index → member ids
	assign    map[int]int // id → centroid index
}

// Clustered is an IVF-style approximate index: vectors are partitioned into
// shards around k-means-ish centroids, and a query scans only the nprobe
// shards whose centroids are most similar to it.
//
// Maintenance is incremental — a new vector is assigned to its nearest
// existing centroid — with a full deterministic retrain amortized over
// doublings of the corpus. The retrain runs in a background goroutine
// against a copy-on-write snapshot of the vectors: queries keep being served
// from the previous clustering the whole time, inserts that arrive
// mid-retrain land in a small exact overflow buffer that every query scans
// alongside the probed shards, and the finished clustering is installed with
// an atomic pointer swap. The serving path therefore never waits on k-means.
type Clustered struct {
	mu   sync.RWMutex
	cond *sync.Cond // broadcast whenever a retrain attempt finishes
	cfg  ClusteredConfig

	vecs     map[int][]float32
	trained  *trainedSet // nil until the first training completes
	overflow map[int]bool

	trainedAt  int  // corpus size at the last completed retrain
	retraining bool // a background retrain is in flight
	gen        int  // invalidates in-flight retrains on Restore
	retrains   int  // completed full retrains (observability/tests)

	// retrainHook, when set, runs inside the retrain goroutine before the
	// k-means computation — tests use it to hold a retrain open while they
	// probe the serving path.
	retrainHook func()
}

// NewClustered creates an empty IVF index.
func NewClustered(cfg ClusteredConfig) *Clustered {
	c := &Clustered{cfg: cfg, vecs: map[int][]float32{}, overflow: map[int]bool{}}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// Name identifies the implementation.
func (c *Clustered) Name() string { return "clustered" }

// Len reports the number of stored vectors.
func (c *Clustered) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.vecs)
}

// Retrains reports how many full retrains have completed — the registry's
// restore path asserts this stays zero when a snapshot loads cleanly.
func (c *Clustered) Retrains() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.retrains
}

// WaitRetrain blocks until no background retrain is in flight. Benchmarks
// and tests call it to reach a settled clustering; serving code never needs
// to.
func (c *Clustered) WaitRetrain() {
	c.mu.Lock()
	for c.retraining {
		c.cond.Wait()
	}
	c.mu.Unlock()
}

// TrainNow runs one full retrain over the current corpus and blocks until
// it lands — the synchronous path to the same fully-trained state a
// snapshot restore reproduces. Below minTrainSize it is a no-op: the index
// brute-scans there (exactly), and installing a tiny clustering would
// silently make those corpora approximate. Benchmarks use it as the
// rebuild baseline; the serving path sticks to background retrains.
func (c *Clustered) TrainNow() {
	c.mu.Lock()
	for c.retraining {
		c.cond.Wait()
	}
	if len(c.vecs) < minTrainSize {
		c.mu.Unlock()
		return
	}
	c.launchRetrainLocked()
	c.mu.Unlock()
	c.WaitRetrain()
}

// Upsert stores a copy of vec under id; an empty vec removes the entry.
// With a clustering live the id is assigned to its nearest shard; while a
// retrain is in flight it goes to the exact overflow buffer instead (the
// in-flight result is computed from a snapshot and would lose a concurrent
// shard insert at swap time). Crossing a corpus doubling launches a
// background retrain.
func (c *Clustered) Upsert(id int, vec []float32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(vec) == 0 {
		c.deleteLocked(id)
		return
	}
	c.deleteLocked(id) // replacing: drop any stale shard membership
	c.vecs[id] = append([]float32(nil), vec...)
	switch {
	case c.retraining:
		// Checked before trained==nil: even during the FIRST training a
		// replaced vector must be flagged, or the merge would keep the
		// k-means assignment computed from its stale snapshot value.
		// (While trained is nil queries brute-scan everything, so the flag
		// costs nothing there.)
		c.overflow[id] = true
	case c.trained == nil:
		// Brute-scan mode: every query visits every vector already.
	default:
		ci := nearestCentroid(c.trained.centroids, c.vecs[id])
		c.trained.assign[id] = ci
		c.trained.shards[ci] = append(c.trained.shards[ci], id)
	}
	if !c.retraining && c.retrainDueLocked() {
		c.launchRetrainLocked()
	}
}

// Delete removes the entry for id.
func (c *Clustered) Delete(id int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.deleteLocked(id)
}

func (c *Clustered) deleteLocked(id int) {
	if _, ok := c.vecs[id]; !ok {
		return
	}
	delete(c.vecs, id)
	delete(c.overflow, id)
	if c.trained == nil {
		return
	}
	if ci, ok := c.trained.assign[id]; ok {
		delete(c.trained.assign, id)
		members := c.trained.shards[ci]
		for i, m := range members {
			if m == id {
				c.trained.shards[ci] = append(members[:i], members[i+1:]...)
				break
			}
		}
	}
}

func (c *Clustered) retrainDueLocked() bool {
	n := len(c.vecs)
	if n < minTrainSize {
		return false
	}
	return c.trained == nil || n >= 2*c.trainedAt
}

// launchRetrainLocked snapshots the vector set and starts the background
// retrain goroutine. The snapshot shares vector slices with the live map —
// safe because Upsert always installs a fresh slice, never mutates one in
// place — so the copy is O(N) map entries, not O(N·d) floats.
func (c *Clustered) launchRetrainLocked() {
	c.retraining = true
	gen := c.gen
	snap := make(map[int][]float32, len(c.vecs))
	for id, v := range c.vecs {
		snap[id] = v
	}
	hook := c.retrainHook
	go c.retrain(snap, gen, hook)
}

// retrain runs off the serving path: k-means over the snapshot without any
// lock held, then a brief locked merge that reconciles what changed while
// training (deletes drop out, overflow inserts are assigned to their nearest
// new centroid) and installs the new clustering with a pointer swap.
func (c *Clustered) retrain(snap map[int][]float32, gen int, hook func()) {
	if hook != nil {
		hook()
	}
	cents, assign := trainKMeans(c.cfg, snap)

	c.mu.Lock()
	defer c.mu.Unlock()
	defer c.cond.Broadcast()
	if gen != c.gen {
		// A Restore replaced the corpus while we trained; the result
		// describes vectors that no longer exist. Whoever bumped gen also
		// owns the retraining flag, so leave all state alone.
		return
	}
	ts := &trainedSet{
		centroids: cents,
		shards:    make([][]int, len(cents)),
		assign:    make(map[int]int, len(c.vecs)),
	}
	for id, ci := range assign {
		if _, ok := c.vecs[id]; !ok {
			continue // deleted while training
		}
		if c.overflow[id] {
			// The vector was replaced mid-retrain; the k-means assignment
			// positions its *old* value. Reassign from the live vector
			// below instead.
			continue
		}
		ts.assign[id] = ci
		ts.shards[ci] = append(ts.shards[ci], id)
	}
	// Everything else arrived (or was replaced) mid-retrain and is exactly
	// the overflow buffer — inserts and replacements during a retrain
	// always flag it, deletes always clear it. Assign each live vector as
	// an incremental insert would. Walking the overflow, not all of vecs,
	// keeps this O(Δ·k·d) for Δ mid-retrain changes — the only index work
	// that ever happens under the write lock during a retrain.
	for id := range c.overflow {
		v, ok := c.vecs[id]
		if !ok {
			continue
		}
		ci := nearestCentroid(cents, v)
		ts.assign[id] = ci
		ts.shards[ci] = append(ts.shards[ci], id)
	}
	c.trained = ts // the atomic swap: queries now see the new clustering
	c.overflow = map[int]bool{}
	// trainedAt is the corpus size the clustering was actually computed
	// over — the snapshot, not the live set. Using the live size here would
	// absorb everything that arrived mid-retrain into the "trained" count
	// and make the relaunch check below unreachable.
	c.trainedAt = len(snap)
	c.retraining = false
	c.retrains++
	if c.retrainDueLocked() {
		// The corpus doubled again while we were training; go around.
		c.launchRetrainLocked()
	}
}

// numCentroids picks the cluster count for a corpus of n vectors.
func numCentroids(cfg ClusteredConfig, n int) int {
	k := cfg.Centroids
	if k <= 0 {
		k = int(math.Ceil(math.Sqrt(float64(n))))
	}
	if k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}
	return k
}

// trainKMeans clusters a vector set with a deterministic k-means: seeds are
// evenly spaced over the id-sorted corpus, up to maxLloydIters Lloyd
// iterations refine them (ties break toward the lowest centroid index), and
// a final pass assigns every id to its nearest *final* centroid so shard
// membership always agrees with the centroids a query probes against. It is
// a pure function — the background retrain runs it without holding the
// index lock.
func trainKMeans(cfg ClusteredConfig, vecs map[int][]float32) ([][]float32, map[int]int) {
	n := len(vecs)
	if n == 0 {
		return nil, map[int]int{}
	}
	ids := make([]int, 0, n)
	for id := range vecs {
		ids = append(ids, id)
	}
	sort.Ints(ids)

	k := numCentroids(cfg, n)
	cents := make([][]float32, k)
	for i := 0; i < k; i++ {
		cents[i] = append([]float32(nil), vecs[ids[i*n/k]]...)
	}
	assign := make([]int, len(ids))
	for i := range assign {
		assign[i] = -1
	}
	for iter := 0; iter < maxLloydIters; iter++ {
		changed := false
		for i, id := range ids {
			best := nearestCentroid(cents, vecs[id])
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed {
			break
		}
		// Recompute each centroid as the normalized mean of its members;
		// empty clusters keep their previous centroid.
		sums := make([][]float64, k)
		counts := make([]int, k)
		for i, id := range ids {
			ci := assign[i]
			v := vecs[id]
			if sums[ci] == nil {
				sums[ci] = make([]float64, len(v))
			}
			s := sums[ci]
			for d := 0; d < len(v) && d < len(s); d++ {
				s[d] += float64(v[d])
			}
			counts[ci]++
		}
		for ci := range cents {
			if counts[ci] == 0 {
				continue
			}
			var norm float64
			for _, x := range sums[ci] {
				norm += x * x
			}
			norm = math.Sqrt(norm)
			if norm == 0 {
				continue
			}
			cent := make([]float32, len(sums[ci]))
			for d, x := range sums[ci] {
				cent[d] = float32(x / norm)
			}
			cents[ci] = cent
		}
	}

	out := make(map[int]int, n)
	for _, id := range ids {
		out[id] = nearestCentroid(cents, vecs[id])
	}
	return cents, out
}

// nearestCentroid returns the index of the centroid most similar to v (ties
// break toward the lowest index).
func nearestCentroid(cents [][]float32, v []float32) int {
	best, bestScore := 0, math.Inf(-1)
	for ci, cent := range cents {
		if s := dot(cent, v); s > bestScore {
			best, bestScore = ci, s
		}
	}
	return best
}

// nprobeLocked resolves the configured probe count against the live
// centroid set.
func (c *Clustered) nprobeLocked() int {
	p := c.cfg.NProbe
	n := len(c.trained.centroids)
	if p <= 0 {
		p = n / 4
	}
	if p < 1 {
		p = 1
	}
	if p > n {
		p = n
	}
	return p
}

// Search probes the nprobe shards nearest the query, then brute-scans the
// overflow buffer (inserts a live retrain has not folded in yet), so fresh
// vectors are immediately findable — exactly, not approximately. Before the
// first training completes there are no centroids and the whole corpus is
// brute-scanned, which is both exact and cheap at that scale. Because
// shards plus overflow partition the corpus, probing every shard yields
// exactly the Flat result.
func (c *Clustered) Search(query []float32, k int, filter Filter) []Candidate {
	c.mu.RLock()
	defer c.mu.RUnlock()
	top := NewTopK(k)
	if c.trained == nil {
		for id, v := range c.vecs {
			if filter != nil && !filter(id) {
				continue
			}
			top.Push(Candidate{ID: id, Score: dot(query, v)})
		}
		return top.Sorted()
	}
	probe := NewTopK(c.nprobeLocked())
	for ci, cent := range c.trained.centroids {
		probe.Push(Candidate{ID: ci, Score: dot(query, cent)})
	}
	for _, p := range probe.Sorted() {
		for _, id := range c.trained.shards[p.ID] {
			if filter != nil && !filter(id) {
				continue
			}
			if v, ok := c.vecs[id]; ok {
				top.Push(Candidate{ID: id, Score: dot(query, v)})
			}
		}
	}
	for id := range c.overflow {
		if filter != nil && !filter(id) {
			continue
		}
		if v, ok := c.vecs[id]; ok {
			top.Push(Candidate{ID: id, Score: dot(query, v)})
		}
	}
	return top.Sorted()
}

// Snapshot captures the trained structure (centroids + shard assignments)
// in the versioned serialized form. Ids sitting in the overflow buffer are
// simply omitted from the assignment map; Restore folds them back in via a
// nearest-centroid assignment.
func (c *Clustered) Snapshot() *Snapshot {
	c.mu.RLock()
	defer c.mu.RUnlock()
	snap := &Snapshot{
		Version:  SnapshotVersion,
		Kind:     c.Name(),
		Count:    len(c.vecs),
		Checksum: ChecksumVectors(c.vecs),
	}
	if c.trained != nil {
		cs := &ClusteredSnapshot{
			Centroids: make([][]float32, len(c.trained.centroids)),
			Assign:    make(map[int]int, len(c.trained.assign)),
			TrainedAt: c.trainedAt,
		}
		for i, cent := range c.trained.centroids {
			cs.Centroids[i] = append([]float32(nil), cent...)
		}
		for id, ci := range c.trained.assign {
			cs.Assign[id] = ci
		}
		snap.Clustered = cs
	}
	return snap
}

// Restore replaces the index contents from a snapshot and its vector set
// without retraining: centroids and shard assignments come straight from
// the snapshot, and any id the snapshot leaves unassigned (it was in the
// overflow buffer at save time) is assigned to its nearest centroid, the
// same computation an incremental insert performs. An in-flight retrain is
// invalidated. On any validation failure the index is left unchanged.
func (c *Clustered) Restore(snap *Snapshot, vecs map[int][]float32) error {
	if err := validateSnapshot(snap, c.Name(), vecs); err != nil {
		return err
	}
	var ts *trainedSet
	trainedAt := len(vecs)
	if cs := snap.Clustered; cs != nil {
		k := len(cs.Centroids)
		if k == 0 {
			return fmt.Errorf("index: clustered snapshot carries no centroids")
		}
		// An explicitly pinned centroid count is authoritative: restoring a
		// snapshot trained with a different count would silently turn the
		// -index-centroids flag into a no-op until the next corpus
		// doubling. Rejecting makes the caller rebuild at the configured
		// count. The comparison goes through numCentroids so a snapshot
		// this very config produced always passes (k is clamped to the
		// corpus size at train time). Auto (0) accepts whatever the
		// snapshot trained.
		ta := cs.TrainedAt
		if ta <= 0 {
			ta = len(vecs)
		}
		if c.cfg.Centroids > 0 && k != numCentroids(c.cfg, ta) {
			return fmt.Errorf("index: snapshot trained %d centroids but config pins %d", k, c.cfg.Centroids)
		}
		ts = &trainedSet{
			centroids: make([][]float32, k),
			shards:    make([][]int, k),
			assign:    make(map[int]int, len(vecs)),
		}
		for i, cent := range cs.Centroids {
			if len(cent) == 0 {
				return fmt.Errorf("index: clustered snapshot centroid %d is empty", i)
			}
			ts.centroids[i] = append([]float32(nil), cent...)
		}
		// Deterministic shard order: walk ids sorted, not in map order.
		ids := make([]int, 0, len(vecs))
		for id := range vecs {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			ci, ok := cs.Assign[id]
			if !ok {
				ci = nearestCentroid(ts.centroids, vecs[id])
			} else if ci < 0 || ci >= k {
				return fmt.Errorf("index: snapshot assigns id %d to centroid %d of %d", id, ci, k)
			}
			ts.assign[id] = ci
			ts.shards[ci] = append(ts.shards[ci], id)
		}
		if cs.TrainedAt > 0 {
			trainedAt = cs.TrainedAt
		}
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen++ // a retrain in flight now describes a corpus that is gone
	c.retraining = false
	c.vecs = copyVecs(vecs)
	c.overflow = map[int]bool{}
	c.trained = ts
	c.trainedAt = trainedAt
	// Restore never retrains, by definition — even from an untrained
	// snapshot (corpus saved inside its first-training window). Such an
	// index serves exact brute-force answers until the next Upsert, whose
	// doubling check launches the training; side-effecting a goroutine
	// here would make "restored, no retrain" a lie and waste a k-means
	// when the caller discards this index (all-or-nothing registry
	// restore).
	return nil
}
