// Package index implements the pluggable vector-index subsystem behind
// semantic code search (Section 4.2) and retrieval-based code completion
// (Section 4.3). It preserves the bi-encoder contract of Section 2.4: PE
// embeddings are computed exactly once at registration time by the embed
// model zoo and are only ever *compared* here — the index never re-embeds,
// it only stores vectors and answers top-k similarity queries against them.
//
// The embed models emit L2-normalized vectors, so cosine similarity reduces
// to a plain dot product (embed.Cosine is exactly that). Every index scores
// candidates with the same float64 dot product over the same stored raw
// vectors, which is what makes the Flat index byte-identical to the historic
// per-query brute-force scan.
//
// Two implementations are provided:
//
//   - Flat: exact search. Every stored vector is scored; a bounded top-k
//     heap replaces the historic full sort, so a query is O(N·d + N log k)
//     instead of O(N·d + N log N) with no allocation proportional to N.
//   - Clustered: an IVF-style approximate index. Vectors are sharded across
//     k-means-ish centroids; a query probes only the shards nearest it,
//     giving sublinear scan cost at a recall trade-off the recall engine's
//     three composable mechanisms control (see below). With every shard
//     probed it degenerates to an exact search identical to Flat.
//
// The Clustered recall engine stacks three mechanisms, each independently
// switchable through ClusteredConfig:
//
//   - Adaptive probing (RecallTarget/MaxProbe/NProbe): instead of a fixed
//     probe count, shards are visited best-first and the scan stops early
//     on a proof (the kth-best candidate beats every remaining shard's
//     centroid-similarity + shard-radius bound — the only rule allowed at
//     target 1.0, which therefore returns exactly the Flat answer) or on
//     diminishing returns (target-scaled patience with no top-k
//     improvement). Easy queries probe one shard; hard ones widen.
//   - Spilled shards (SpillRatio): near-boundary vectors are replicated
//     into their second-nearest shard at assignment time, so points that
//     straddle a centroid boundary stop being missed. Shards then overlap;
//     queries deduplicate replicas.
//   - Widened-pool re-ranking (Overfetch): shard scans collect k·Overfetch
//     candidates with a cheap prefix-dimension partial score, then the pool
//     is exact-rescored before the final top-k — more of the scan budget
//     turns into candidates instead of full-width dot products.
//
// Indexes are maintained incrementally: the registry upserts/deletes
// vectors as records are registered and removed, so queries never need to
// re-snapshot the full record set. Two durability properties come on top:
// every index serializes its structure to a versioned Snapshot (restored
// with checksum validation, so a restart skips retraining), and the
// Clustered retrain runs in a background goroutine with an atomic swap —
// triggered by corpus doublings and by delete/replace churn — with queries
// served from the previous clustering throughout, and mid-retrain inserts
// staying findable via an exact overflow buffer. See docs/index.md for the
// subsystem story and docs/search.md for the end-to-end search pipeline and
// tuning guide.
package index

import "laminar/internal/vecmath"

// Candidate is one scored index entry: the PE id and its similarity score.
type Candidate struct {
	ID    int
	Score float64
}

// Filter restricts a search to ids it accepts (e.g. the querying user's
// visible PEs). A nil Filter accepts everything.
type Filter func(id int) bool

// VectorIndex is the pluggable contract for similarity search over stored
// embeddings. Implementations are safe for concurrent use.
type VectorIndex interface {
	// Upsert inserts or replaces the vector stored under id. An empty
	// vector removes the entry (a PE registered without embeddings is not
	// searchable semantically).
	Upsert(id int, vec []float32)
	// Delete removes the entry for id, if present.
	Delete(id int)
	// Search returns the top-k candidates by similarity to query (score
	// descending, ties broken by ascending id), visiting only ids the
	// filter accepts.
	Search(query []float32, k int, filter Filter) []Candidate
	// Len reports the number of stored vectors.
	Len() int
	// Name identifies the implementation ("flat", "clustered").
	Name() string
	// Snapshot captures the index structure in the versioned serialized
	// form. Vectors themselves are not included — the owner (the registry)
	// persists them with its records and hands them back to Restore.
	Snapshot() *Snapshot
	// Restore replaces the index contents from a snapshot plus the vector
	// set it was taken over. It fails (leaving the index unchanged) when the
	// snapshot's version or kind does not match, or when its checksum does
	// not cover exactly the supplied vectors; callers fall back to a
	// rebuild in that case.
	Restore(snap *Snapshot, vecs map[int][]float32) error
}

// Factory builds a fresh, empty VectorIndex. The registry uses one factory
// to create its description- and code-embedding indexes.
type Factory func() VectorIndex

// dot is the shared scoring function. Delegating to vecmath.Dot (a float64
// dot product over the common prefix; cosine for the unit vectors the embed
// models emit — embed.Cosine delegates to the very same kernel) makes the
// byte-identical-to-brute-force guarantee true by construction rather than
// by keeping two copies in sync.
func dot(a, b []float32) float64 {
	return vecmath.Dot(a, b)
}

// BatchSearcher is the optional batched-execution extension of
// VectorIndex: answer many queries under one lock acquisition, amortizing
// centroid probing and shard visits across the batch where the index's
// probe policy allows. Results are identical to calling Search per query.
type BatchSearcher interface {
	SearchBatch(queries [][]float32, k int, filter Filter) [][]Candidate
}

// SearchBatchOf answers every query against idx, using the index's native
// batched execution when it implements BatchSearcher and falling back to
// sequential Search calls otherwise.
func SearchBatchOf(idx VectorIndex, queries [][]float32, k int, filter Filter) [][]Candidate {
	if b, ok := idx.(BatchSearcher); ok {
		return b.SearchBatch(queries, k, filter)
	}
	out := make([][]Candidate, len(queries))
	for i, q := range queries {
		out[i] = idx.Search(q, k, filter)
	}
	return out
}
