package index

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// unitVec draws a random unit vector from rng.
func unitVec(rng *rand.Rand, dim int) []float32 {
	v := make([]float32, dim)
	var norm float64
	for i := range v {
		x := rng.NormFloat64()
		v[i] = float32(x)
		norm += x * x
	}
	norm = math.Sqrt(norm)
	for i := range v {
		v[i] = float32(float64(v[i]) / norm)
	}
	return v
}

func TestTopKKeepsBestInOrder(t *testing.T) {
	top := NewTopK(3)
	for _, c := range []Candidate{
		{ID: 1, Score: 0.1}, {ID: 2, Score: 0.9}, {ID: 3, Score: 0.5},
		{ID: 4, Score: 0.7}, {ID: 5, Score: 0.3},
	} {
		top.Push(c)
	}
	got := top.Sorted()
	want := []Candidate{{ID: 2, Score: 0.9}, {ID: 4, Score: 0.7}, {ID: 3, Score: 0.5}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %+v want %+v", got, want)
	}
}

func TestTopKTiesBreakByID(t *testing.T) {
	top := NewTopK(2)
	for _, id := range []int{9, 3, 7, 1} {
		top.Push(Candidate{ID: id, Score: 1})
	}
	got := top.Sorted()
	want := []Candidate{{ID: 1, Score: 1}, {ID: 3, Score: 1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ties: got %+v want %+v", got, want)
	}
}

func TestTopKZeroAndUnderfilled(t *testing.T) {
	if got := NewTopK(0).Sorted(); len(got) != 0 {
		t.Fatalf("k=0: %+v", got)
	}
	top := NewTopK(10)
	top.Push(Candidate{ID: 1, Score: 0.5})
	if got := top.Sorted(); len(got) != 1 || got[0].ID != 1 {
		t.Fatalf("underfilled: %+v", got)
	}
}

func TestFlatUpsertDeleteSearch(t *testing.T) {
	f := NewFlat()
	f.Upsert(1, []float32{1, 0})
	f.Upsert(2, []float32{0, 1})
	f.Upsert(3, []float32{0.6, 0.8})
	if f.Len() != 3 {
		t.Fatalf("len %d", f.Len())
	}
	got := f.Search([]float32{1, 0}, 2, nil)
	if len(got) != 2 || got[0].ID != 1 || got[1].ID != 3 {
		t.Fatalf("search: %+v", got)
	}
	// upsert replaces
	f.Upsert(2, []float32{0.9, 0.1})
	got = f.Search([]float32{1, 0}, 1, nil)
	if got[0].ID != 1 {
		t.Fatalf("after upsert: %+v", got)
	}
	// empty vector deletes
	f.Upsert(1, nil)
	f.Delete(3)
	if f.Len() != 1 {
		t.Fatalf("len after deletes %d", f.Len())
	}
	got = f.Search([]float32{1, 0}, 5, nil)
	if len(got) != 1 || got[0].ID != 2 {
		t.Fatalf("after deletes: %+v", got)
	}
}

func TestFlatFilter(t *testing.T) {
	f := NewFlat()
	for id := 1; id <= 10; id++ {
		f.Upsert(id, []float32{float32(id), 1})
	}
	got := f.Search([]float32{1, 0}, 3, func(id int) bool { return id%2 == 0 })
	for _, c := range got {
		if c.ID%2 != 0 {
			t.Fatalf("filter leaked id %d: %+v", c.ID, got)
		}
	}
	if len(got) != 3 || got[0].ID != 10 {
		t.Fatalf("filtered: %+v", got)
	}
}

// TestClusteredFindsExactMatch: a query identical to a stored vector must be
// retrieved even with minimal probing — the vector's shard is by definition
// the query's nearest centroid.
func TestClusteredFindsExactMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := NewClustered(ClusteredConfig{NProbe: 1})
	vecs := map[int][]float32{}
	for id := 1; id <= 500; id++ {
		v := unitVec(rng, 32)
		vecs[id] = v
		c.Upsert(id, v)
	}
	if c.Len() != 500 {
		t.Fatalf("len %d", c.Len())
	}
	for _, id := range []int{1, 99, 250, 500} {
		got := c.Search(vecs[id], 1, nil)
		if len(got) != 1 || got[0].ID != id {
			t.Fatalf("query=vec[%d]: %+v", id, got)
		}
	}
}

func TestClusteredDeleteAndFilter(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := NewClustered(ClusteredConfig{})
	vecs := map[int][]float32{}
	for id := 1; id <= 200; id++ {
		v := unitVec(rng, 16)
		vecs[id] = v
		c.Upsert(id, v)
	}
	c.Delete(42)
	if c.Len() != 199 {
		t.Fatalf("len %d", c.Len())
	}
	got := c.Search(vecs[42], 200, nil)
	for _, cand := range got {
		if cand.ID == 42 {
			t.Fatalf("deleted id still returned: %+v", cand)
		}
	}
	got = c.Search(vecs[50], 5, func(id int) bool { return id <= 10 })
	for _, cand := range got {
		if cand.ID > 10 {
			t.Fatalf("filter leaked: %+v", got)
		}
	}
}

// TestClusteredSmallCorpusIsExact: below the training threshold the index
// brute-scans, so results equal Flat exactly.
func TestClusteredSmallCorpusIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f, c := NewFlat(), NewClustered(ClusteredConfig{})
	for id := 1; id <= minTrainSize-1; id++ {
		v := unitVec(rng, 16)
		f.Upsert(id, v)
		c.Upsert(id, v)
	}
	q := unitVec(rng, 16)
	if got, want := c.Search(q, 10, nil), f.Search(q, 10, nil); !reflect.DeepEqual(got, want) {
		t.Fatalf("small corpus diverged:\n got %+v\nwant %+v", got, want)
	}
}

func TestNames(t *testing.T) {
	if NewFlat().Name() != "flat" || NewClustered(ClusteredConfig{}).Name() != "clustered" {
		t.Fatal("index names")
	}
}
