package index

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strconv"
)

// SnapshotVersion is the current serialized-index format version. Version 2
// made shard assignments multi-valued: near-boundary vectors may carry a
// second (spilled) shard membership, recorded in ClusteredSnapshot.Spill
// alongside the primary Assign map, together with the SpillRatio that
// produced them. Restore accepts every version up to the current one —
// version-1 snapshots simply restore with no spill replicas — and rejects
// versions from the future, which makes the caller fall back to a full
// rebuild: forward compatibility by retraining, never by guessing at a
// foreign layout.
const SnapshotVersion = 2

// Snapshot is the versioned, JSON-serializable form of a VectorIndex. It
// deliberately stores only index *structure* (centroids and shard
// assignments), not the vectors themselves: the registry already persists
// every embedding inside its PE/workflow records, and Restore is handed
// those vectors back. Checksum ties the structure to the exact vector set it
// was trained on, so a snapshot that no longer matches the records (edited
// registry file, partial write, version skew) fails closed into a rebuild.
type Snapshot struct {
	// Version is the format version (SnapshotVersion at write time).
	Version int `json:"version"`
	// Kind names the implementation that produced the snapshot ("flat",
	// "clustered"); Restore rejects a kind other than its own.
	Kind string `json:"kind"`
	// Count is the number of vectors indexed at snapshot time.
	Count int `json:"count"`
	// Checksum fingerprints the (id, vector) set the structure was built
	// over; see ChecksumVectors.
	Checksum string `json:"checksum"`
	// Clustered carries the IVF structure; nil for flat snapshots and for a
	// clustered index that has not trained yet (it brute-scans below
	// minTrainSize).
	Clustered *ClusteredSnapshot `json:"clustered,omitempty"`
	// Quantized carries the int8 quantized companion set, present only when
	// the index was running with quantization on. It is strictly OPTIONAL:
	// a restore with it absent (older snapshot, or a damaged/dropped
	// section) rebuilds the companion from the float vectors — quantization
	// is derived data, so losing it can never fail a load.
	Quantized *QuantizedSnapshot `json:"quantized,omitempty"`
}

// QuantizedSnapshot is the serialized form of a vecmath.QuantizedSet: the
// int8 codes and per-vector scale for each stored id. Entries are adopted
// on restore only when they are consistent with the float vector under the
// same id (matching dimensionality); anything else is silently
// re-quantized from the float source.
type QuantizedSnapshot struct {
	Codes  map[int][]int8  `json:"codes"`
	Scales map[int]float32 `json:"scales"`
}

// ClusteredSnapshot is the trained IVF state: the centroids and which
// centroid(s) each stored id was assigned to — the primary assignment in
// Assign, plus the optional second membership in Spill for near-boundary
// vectors replicated under SpillRatio (format version 2; version-1
// snapshots have neither field and decode with both empty).
// Overflow-buffered ids (inserted while a retrain was in flight) are simply
// absent from Assign; Restore re-assigns any unlisted id to its nearest
// centroid(s), exactly as an incremental insert would. Shard radii are not
// persisted: Restore recomputes them from the memberships it rebuilds.
type ClusteredSnapshot struct {
	Centroids [][]float32 `json:"centroids"`
	Assign    map[int]int `json:"assign"`
	// Spill maps near-boundary ids to their secondary shard. Together with
	// Assign it makes assignments multi-valued; shards overlap and queries
	// deduplicate.
	Spill map[int]int `json:"spill,omitempty"`
	// SpillRatio is the ratio the spill set was computed under. Restore
	// rejects a snapshot whose ratio differs from the configured one — the
	// structure would silently ignore the knob otherwise.
	SpillRatio float64 `json:"spillRatio,omitempty"`
	// TrainedAt is the corpus size at the last full retrain; it anchors the
	// next corpus-doubling trigger after a restore.
	TrainedAt int `json:"trainedAt"`
}

// ChecksumVectors fingerprints a vector set: FNV-1a (64-bit) over the
// id-sorted sequence of (id, dim, raw float bits). Two registries with
// byte-identical embeddings under the same ids produce the same checksum
// regardless of map iteration order. FNV is a staleness detector, not a
// security boundary — the snapshot lives next to the records it guards —
// and it keeps the restore path fast at millions of stored floats.
func ChecksumVectors(vecs map[int][]float32) string {
	ids := make([]int, 0, len(vecs))
	for id := range vecs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	h := fnv.New64a()
	buf := make([]byte, 0, 4096)
	for _, id := range ids {
		v := vecs[id]
		buf = binary.LittleEndian.AppendUint64(buf[:0], uint64(int64(id)))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(len(v)))
		for _, x := range v {
			buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(x))
		}
		h.Write(buf)
	}
	return "fnv1a64:" + strconv.FormatUint(h.Sum64(), 16)
}

// validateSnapshot runs the checks shared by every Restore implementation:
// format version, implementation kind, and the checksum binding the
// structure to the vectors the caller supplies.
func validateSnapshot(snap *Snapshot, kind string, vecs map[int][]float32) error {
	if snap == nil {
		return fmt.Errorf("index: nil snapshot")
	}
	if snap.Version < 1 || snap.Version > SnapshotVersion {
		return fmt.Errorf("index: snapshot version %d, want 1..%d", snap.Version, SnapshotVersion)
	}
	if snap.Kind != kind {
		return fmt.Errorf("index: snapshot kind %q, want %q", snap.Kind, kind)
	}
	if snap.Count != len(vecs) {
		return fmt.Errorf("index: snapshot covers %d vectors, records carry %d", snap.Count, len(vecs))
	}
	if got := ChecksumVectors(vecs); got != snap.Checksum {
		return fmt.Errorf("index: snapshot checksum mismatch (stale snapshot or edited records)")
	}
	return nil
}

// copyVecs deep-copies a vector map so an index never shares slices with
// its caller.
func copyVecs(vecs map[int][]float32) map[int][]float32 {
	out := make(map[int][]float32, len(vecs))
	for id, v := range vecs {
		out[id] = append([]float32(nil), v...)
	}
	return out
}
