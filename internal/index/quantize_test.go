package index

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"laminar/internal/vecmath"
)

// TestQuantizedRecallFloor: the int8 candidate pass is a speed trade, not
// a quality one — on the seeded topic-clustered corpus the quantized
// recall engine must still clear the 0.9 recall@10 floor and stay at
// least as good as the fixed-nprobe float baseline.
func TestQuantizedRecallFloor(t *testing.T) {
	for _, seed := range []int64{7, 61, 193} {
		corpus, qs := topicCorpus(seed, 1500, 64, 25, 0.2)
		flat := NewFlat()
		fixed := NewClustered(ClusteredConfig{})
		engine := NewClustered(ClusteredConfig{
			RecallTarget: 0.95,
			SpillRatio:   0.25,
			Overfetch:    4,
			Quantize:     true,
		})
		for i, v := range corpus {
			flat.Upsert(i+1, v)
			fixed.Upsert(i+1, v)
			engine.Upsert(i+1, v)
		}
		fixed.TrainNow()
		engine.TrainNow()

		base := recallAt10(flat, fixed, qs)
		got := recallAt10(flat, engine, qs)
		if got < base {
			t.Errorf("seed %d: quantized engine recall %.3f below fixed-nprobe baseline %.3f", seed, got, base)
		}
		if got < 0.9 {
			t.Errorf("seed %d: quantized engine recall %.3f below the 0.9 floor", seed, got)
		}
	}
}

// TestQuantizedExactTargetMatchesFlat pins the bypass contract: with
// Quantize configured AND RecallTarget 1.0, the quantized pass must not
// engage — the proof rule's byte-identical-to-Flat guarantee only holds
// over exact scores, so the search must equal Flat exactly.
func TestQuantizedExactTargetMatchesFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	flat := NewFlat()
	clus := NewClustered(ClusteredConfig{
		RecallTarget: 1.0,
		SpillRatio:   0.2,
		Overfetch:    8,
		Quantize:     true,
	})
	live := liveCorpus(rng, 400, 24, flat, clus)
	clus.WaitRetrain()
	if len(live) == 0 {
		t.Fatal("empty corpus")
	}
	for q := 0; q < 10; q++ {
		query := unitVec(rng, 24)
		got := clus.Search(query, 10, nil)
		want := flat.Search(query, 10, nil)
		if fmt.Sprintf("%v", got) != fmt.Sprintf("%v", want) {
			t.Fatalf("query %d diverged from Flat with quantization configured at target 1.0:\n got %v\nwant %v", q, got, want)
		}
	}
}

// TestQuantizedSetTracksCorpus: the companion set must mirror the float
// vector set exactly through upserts, deletes, replacements and a full
// retrain — every live id quantized, no ghost entries.
func TestQuantizedSetTracksCorpus(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	clus := NewClustered(ClusteredConfig{RecallTarget: 0.9, Quantize: true})
	live := liveCorpus(rng, 500, 16, clus)
	clus.TrainNow()

	clus.mu.RLock()
	defer clus.mu.RUnlock()
	if clus.qset == nil {
		t.Fatal("Quantize on but no companion set")
	}
	if clus.qset.Len() != len(clus.vecs) {
		t.Fatalf("companion set has %d entries, corpus has %d", clus.qset.Len(), len(clus.vecs))
	}
	if len(clus.vecs) != len(live) {
		t.Fatalf("corpus has %d vectors, expected %d", len(clus.vecs), len(live))
	}
	for id, v := range clus.vecs {
		codes, scale, ok := clus.qset.Codes(id)
		if !ok {
			t.Fatalf("id %d has no quantized companion", id)
		}
		wantCodes, wantScale := vecmath.Quantize(v)
		if scale != wantScale {
			t.Fatalf("id %d companion scale %g, want %g", id, scale, wantScale)
		}
		for i := range codes {
			if codes[i] != wantCodes[i] {
				t.Fatalf("id %d companion code[%d] = %d, want %d", id, i, codes[i], wantCodes[i])
			}
		}
	}
}

// TestQuantizedSnapshotRoundTrip: the companion set travels through the
// snapshot (JSON field and binary section codec), a restore adopts the
// persisted codes, and the degraded paths — companion absent, or damaged
// entries — rebuild from the float vectors instead of failing the load.
func TestQuantizedSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	cfg := ClusteredConfig{Centroids: 8, NProbe: 2, RecallTarget: 0.9, Quantize: true}
	src := NewClustered(cfg)
	live := liveCorpus(rng, 400, 24, src)
	src.WaitRetrain()

	snap := src.Snapshot()
	if snap.Quantized == nil {
		t.Fatal("quantize-configured snapshot carries no companion set")
	}
	if len(snap.Quantized.Codes) != len(live) {
		t.Fatalf("snapshot carries %d quantized entries, corpus has %d", len(snap.Quantized.Codes), len(live))
	}

	// Binary section codec round-trips losslessly.
	var buf bytes.Buffer
	if err := snap.Quantized.EncodeBinary(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeQuantizedBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for id, codes := range snap.Quantized.Codes {
		got := decoded.Codes[id]
		if len(got) != len(codes) {
			t.Fatalf("id %d round-tripped to %d codes, want %d", id, len(got), len(codes))
		}
		for i := range codes {
			if got[i] != codes[i] {
				t.Fatalf("id %d code[%d] round-tripped to %d, want %d", id, i, got[i], codes[i])
			}
		}
		if decoded.Scales[id] != snap.Quantized.Scales[id] {
			t.Fatalf("id %d scale round-tripped to %g, want %g", id, decoded.Scales[id], snap.Quantized.Scales[id])
		}
	}

	check := func(name string, s *Snapshot) {
		dst := NewClustered(cfg)
		if err := dst.Restore(s, live); err != nil {
			t.Fatalf("%s: restore: %v", name, err)
		}
		if dst.Retrains() != 0 {
			t.Fatalf("%s: restore ran %d retrains", name, dst.Retrains())
		}
		dst.mu.RLock()
		if dst.qset == nil || dst.qset.Len() != len(live) {
			dst.mu.RUnlock()
			t.Fatalf("%s: restored companion set incomplete", name)
		}
		dst.mu.RUnlock()
		for q := 0; q < 5; q++ {
			query := unitVec(rng, 24)
			got := dst.Search(query, 10, nil)
			want := src.Search(query, 10, nil)
			if fmt.Sprintf("%v", got) != fmt.Sprintf("%v", want) {
				t.Fatalf("%s: restored search diverged:\n got %v\nwant %v", name, got, want)
			}
		}
	}

	// Intact snapshot: persisted codes adopted verbatim.
	check("intact", snap)

	// Companion absent entirely (pre-quantization snapshot): rebuilt.
	bare := *snap
	bare.Quantized = nil
	check("absent-companion", &bare)

	// Damaged entries — wrong-dimensionality codes and a missing scale —
	// are individually re-quantized; everything else is adopted.
	damaged := *snap
	dq := &QuantizedSnapshot{Codes: map[int][]int8{}, Scales: map[int]float32{}}
	for id, codes := range snap.Quantized.Codes {
		dq.Codes[id] = codes
		dq.Scales[id] = snap.Quantized.Scales[id]
	}
	for id := range dq.Codes {
		dq.Codes[id] = dq.Codes[id][:4] // wrong dim: must be re-quantized
		delete(dq.Scales, id)
		break
	}
	damaged.Quantized = dq
	check("damaged-entries", &damaged)
}

// TestDecodeQuantizedBinaryRejectsGarbage: the section decoder must fail
// cleanly (error, not panic or giant allocation) on corrupt bytes — the
// storage layer then drops the section and the index rebuilds.
func TestDecodeQuantizedBinaryRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		{},
		{1, 0, 0},              // truncated version
		{9, 9, 0, 0},           // wrong version
		{1, 0, 0, 0, 255, 255}, // truncated count
		{1, 0, 0, 0, 255, 255, 255, 255, 255, 255, 255, 255}, // absurd count
	}
	for i, raw := range cases {
		if _, err := DecodeQuantizedBinary(bytes.NewReader(raw)); err == nil {
			t.Errorf("case %d: corrupt quantized section decoded without error", i)
		}
	}
}
