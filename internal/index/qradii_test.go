package index

import (
	"encoding/json"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// snapshotTrained reads the live trainedSet under the lock.
func snapshotTrained(c *Clustered) *trainedSet {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.trained
}

// TestQuantileRadiiBoundedByMaxRadii pins qradii's defining invariant: a
// p95 of member distances can never exceed the max of member distances,
// per shard, after training and after incremental inserts.
func TestQuantileRadiiBoundedByMaxRadii(t *testing.T) {
	c := NewClustered(ClusteredConfig{RecallTarget: 0.9})
	vecs := cooldownVecs(600, 16, 31)
	for i, v := range vecs[:500] {
		c.Upsert(i, v)
	}
	c.TrainNow()
	c.WaitRetrain()

	check := func(stage string) {
		t.Helper()
		ts := snapshotTrained(c)
		if ts == nil {
			t.Fatalf("%s: no trained set", stage)
		}
		if len(ts.qradii) != len(ts.radii) {
			t.Fatalf("%s: qradii has %d entries, radii %d", stage, len(ts.qradii), len(ts.radii))
		}
		const eps = 1e-9
		for ci := range ts.radii {
			if ts.qradii[ci] > ts.radii[ci]+eps {
				t.Errorf("%s: shard %d qradii %.6f exceeds max radius %.6f", stage, ci, ts.qradii[ci], ts.radii[ci])
			}
		}
	}
	check("after train")

	// Incremental inserts widen both bounds; the invariant must survive.
	for i, v := range vecs[500:] {
		c.Upsert(500+i, v)
	}
	check("after inserts")
}

// TestQuantileRadiiSurviveSnapshotRoundTrip pins the satellite's
// persistence requirement: a Restore recomputes qradii from the restored
// membership, and an approximate adaptive search answers identically
// before and after the round trip.
func TestQuantileRadiiSurviveSnapshotRoundTrip(t *testing.T) {
	cfg := ClusteredConfig{RecallTarget: 0.9}
	c := NewClustered(cfg)
	vecs := cooldownVecs(800, 16, 57)
	live := map[int][]float32{}
	for i, v := range vecs[:700] {
		c.Upsert(i, v)
		live[i] = v
	}
	c.TrainNow()
	c.WaitRetrain()

	// Through the JSON wire format, the way the v2 sidecar ships it.
	data, err := json.Marshal(c.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	r := NewClustered(cfg)
	if err := r.Restore(&snap, live); err != nil {
		t.Fatalf("snapshot did not restore: %v", err)
	}

	ts := snapshotTrained(r)
	if len(ts.qradii) != len(ts.radii) {
		t.Fatalf("restored qradii has %d entries, radii %d", len(ts.qradii), len(ts.radii))
	}
	nonzero := 0
	for ci := range ts.radii {
		if ts.qradii[ci] > ts.radii[ci]+1e-9 {
			t.Errorf("restored shard %d qradii %.6f exceeds max radius %.6f", ci, ts.qradii[ci], ts.radii[ci])
		}
		if ts.qradii[ci] > 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Error("every restored qradii is zero; the restore walk did not collect member distances")
	}

	for qi := 700; qi < 720; qi++ {
		want := c.Search(vecs[qi], 10, nil)
		got := r.Search(vecs[qi], 10, nil)
		if len(want) != len(got) {
			t.Fatalf("query %d: %d hits before round trip, %d after", qi, len(want), len(got))
		}
		for i := range want {
			if want[i].ID != got[i].ID {
				t.Fatalf("query %d rank %d: id %d before round trip, %d after", qi, i, want[i].ID, got[i].ID)
			}
		}
	}
}

// TestQuantileRadiiDoNotTouchExactScans pins the exactness carve-out: at
// RecallTarget 1.0 the adaptive scan must keep the provable max-radius
// bound, so its results equal Flat's on every query even when a shard's
// p95 would have stopped the scan early.
func TestQuantileRadiiDoNotTouchExactScans(t *testing.T) {
	c := NewClustered(ClusteredConfig{RecallTarget: 1.0})
	f := NewFlat()
	vecs := cooldownVecs(700, 16, 83)
	for i, v := range vecs[:600] {
		c.Upsert(i, v)
		f.Upsert(i, v)
	}
	c.TrainNow()
	c.WaitRetrain()

	for qi := 600; qi < 640; qi++ {
		want := f.Search(vecs[qi], 10, nil)
		got := c.Search(vecs[qi], 10, nil)
		for i := range want {
			if got[i].ID != want[i].ID {
				t.Fatalf("query %d rank %d: clustered(target=1.0) returned id %d, flat returned %d", qi, i, got[i].ID, want[i].ID)
			}
		}
	}
}

// TestQuantileRadiiKeepRecallAtTarget is the satellite's effectiveness
// floor: with the tighter p95 bounds the adaptive scan at target 0.9 must
// still deliver high recall against an exact scan.
func TestQuantileRadiiKeepRecallAtTarget(t *testing.T) {
	c := NewClustered(ClusteredConfig{RecallTarget: 0.9})
	f := NewFlat()
	vecs := cooldownVecs(1100, 16, 101)
	for i, v := range vecs[:1000] {
		c.Upsert(i, v)
		f.Upsert(i, v)
	}
	c.TrainNow()
	c.WaitRetrain()

	overlap, total := 0, 0
	for qi := 1000; qi < 1050; qi++ {
		exact := map[int]bool{}
		for _, h := range f.Search(vecs[qi], 10, nil) {
			exact[h.ID] = true
		}
		for _, h := range c.Search(vecs[qi], 10, nil) {
			if exact[h.ID] {
				overlap++
			}
		}
		total += 10
	}
	if recall := float64(overlap) / float64(total); recall < 0.85 {
		t.Errorf("recall@10 with p95 bounds at target 0.9 = %.3f, want >= 0.85", recall)
	}
}

// TestAdaptiveCooldownStretchesWithRetrainDuration pins the adaptive
// retrain cooldown: the enforced window is max(flag, 5x the last measured
// retrain duration), so a flag tuned for a small corpus cannot make a
// grown corpus spend most of its background compute re-running k-means.
// The clock is injected and advanced inside the retrain hook, so the test
// "takes" a 60-second retrain without sleeping.
func TestAdaptiveCooldownStretchesWithRetrainDuration(t *testing.T) {
	const n = 128
	c := NewClustered(ClusteredConfig{RetrainCooldown: time.Minute})
	var now atomic.Int64
	now.Store(time.Hour.Nanoseconds())
	c.clock = func() time.Time { return time.Unix(0, now.Load()) }
	var schedMu sync.Mutex
	var pending []func()
	c.schedule = func(_ time.Duration, f func()) {
		schedMu.Lock()
		pending = append(pending, f)
		schedMu.Unlock()
	}
	// Every retrain "takes" 60s of fake time.
	c.retrainHook = func() { now.Add(time.Minute.Nanoseconds()) }

	vecs := cooldownVecs(2*n, 8, 29)
	for i := 0; i < n; i++ {
		c.Upsert(i, vecs[i])
	}
	c.TrainNow()
	c.WaitRetrain()
	r0 := c.Retrains()

	// With the flag alone the window would be 1 minute; the 60s retrain
	// stretches it to 5 minutes. Churn 2 minutes after the launch must
	// therefore be deferred, not retrained.
	now.Add(2 * time.Minute.Nanoseconds())
	for i := 0; i < n; i++ {
		c.Upsert(i, vecs[(i+1)%(2*n)])
	}
	c.WaitRetrain()
	if got := c.Retrains(); got != r0 {
		t.Fatalf("retrain launched %d times inside the stretched window, want 0 (flag 1m, adaptive 5m)", got-r0)
	}
	schedMu.Lock()
	deferred := len(pending)
	schedMu.Unlock()
	if deferred != 1 {
		t.Fatalf("deferred retrains = %d, want exactly 1", deferred)
	}

	// Past the 5-minute adaptive window the deferred retrain fires.
	now.Add(4 * time.Minute.Nanoseconds())
	pending[0]()
	c.WaitRetrain()
	if got := c.Retrains(); got != r0+1 {
		t.Fatalf("retrains after the stretched window = %d, want %d", got, r0+1)
	}
}
