package index

import (
	"container/heap"
	"sort"
)

// Better reports whether a ranks strictly above b in search results: higher
// score first, ties broken by ascending id. This is the single result
// ordering used by every index implementation and by the search package's
// ranking, so exact and approximate paths stay comparable.
func Better(a, b Candidate) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.ID < b.ID
}

// candidateHeap is a min-heap under Better: the root is the *weakest*
// retained candidate, so it is the one evicted when a stronger candidate
// arrives.
type candidateHeap []Candidate

func (h candidateHeap) Len() int           { return len(h) }
func (h candidateHeap) Less(i, j int) bool { return Better(h[j], h[i]) }
func (h candidateHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *candidateHeap) Push(x any)        { *h = append(*h, x.(Candidate)) }
func (h *candidateHeap) Pop() any          { old := *h; n := len(old); c := old[n-1]; *h = old[:n-1]; return c }

// TopK is a bounded top-k collector: push any number of candidates, keep
// only the k best under Better. Pushing is O(log k); memory is O(k). It
// replaces the historic collect-everything-then-sort.Slice ranking, whose
// cost grew with the corpus instead of with the result size.
type TopK struct {
	k int
	h candidateHeap
}

// NewTopK creates a collector retaining the k best candidates.
func NewTopK(k int) *TopK {
	if k < 0 {
		k = 0
	}
	// The preallocation is only a hint: k is caller-controlled (a search
	// request's limit travels here unclamped), so cap it and let the heap
	// grow to min(k, pushed) naturally. A huge k must cost nothing until
	// candidates actually arrive.
	capHint := k
	if capHint > 1024 {
		capHint = 1024
	}
	return &TopK{k: k, h: make(candidateHeap, 0, capHint)}
}

// Push offers a candidate, evicting the current weakest when full.
func (t *TopK) Push(c Candidate) {
	if t.k == 0 {
		return
	}
	if len(t.h) < t.k {
		heap.Push(&t.h, c)
		return
	}
	if Better(c, t.h[0]) {
		t.h[0] = c
		heap.Fix(&t.h, 0)
	}
}

// Worst returns the weakest retained candidate, and whether the collector
// is full (k candidates held). The adaptive probe loop's stop rule needs
// exactly "the kth-best score so far", which is only meaningful once k
// candidates have been seen.
func (t *TopK) Worst() (Candidate, bool) {
	if t.k == 0 || len(t.h) < t.k {
		return Candidate{}, false
	}
	return t.h[0], true
}

// Sorted returns the retained candidates best-first. The collector can keep
// accepting pushes afterwards.
func (t *TopK) Sorted() []Candidate {
	out := make([]Candidate, len(t.h))
	copy(out, t.h)
	sort.Slice(out, func(i, j int) bool { return Better(out[i], out[j]) })
	return out
}
