package index

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"laminar/internal/telemetry"
)

// cooldownVecs draws n random unit vectors of dimension dim.
func cooldownVecs(n, dim int, seed int64) [][]float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float32, n)
	for i := range out {
		v := make([]float32, dim)
		var norm float64
		for d := range v {
			x := rng.NormFloat64()
			v[d] = float32(x)
			norm += x * x
		}
		norm = math.Sqrt(norm)
		for d := range v {
			v[d] = float32(float64(v[d]) / norm)
		}
		out[i] = v
	}
	return out
}

// TestRetrainCooldownCoalescesBurst is the retrain-governance contract: a
// churn burst under a cooldown produces exactly one retrain inside the
// window, with the remainder coalesced into a single deferred retrain
// that launches when the window closes. The clock and the deferral timer
// are injected, so the test advances time explicitly instead of sleeping.
func TestRetrainCooldownCoalescesBurst(t *testing.T) {
	const n = 128
	c := NewClustered(ClusteredConfig{RetrainCooldown: time.Minute})
	var now atomic.Int64 // fake clock, nanoseconds
	now.Store(time.Hour.Nanoseconds())
	c.clock = func() time.Time { return time.Unix(0, now.Load()) }
	var schedMu sync.Mutex
	var pending []func()
	c.schedule = func(_ time.Duration, f func()) {
		schedMu.Lock()
		pending = append(pending, f)
		schedMu.Unlock()
	}

	vecs := cooldownVecs(2*n, 8, 17)
	for i := 0; i < n; i++ {
		c.Upsert(i, vecs[i])
	}
	c.TrainNow() // settle explicitly (TrainNow bypasses the cooldown by design)
	r0 := c.Retrains()
	// Open the window: the burst must start eligible to retrain once.
	now.Add(2 * time.Minute.Nanoseconds())

	// The burst: replace every vector three times — enough churn for three
	// back-to-back retrains without a cooldown.
	for round := 0; round < 3; round++ {
		for i := 0; i < n; i++ {
			c.Upsert(i, vecs[(i+round+1)%(2*n)])
		}
	}
	c.WaitRetrain()

	if got := c.Retrains(); got != r0+1 {
		t.Fatalf("retrains during the burst = %d, want exactly 1 (got %d total, started at %d)", got-r0, got, r0)
	}
	schedMu.Lock()
	deferred := len(pending)
	schedMu.Unlock()
	if deferred != 1 {
		t.Fatalf("deferred retrains scheduled = %d, want exactly 1 (coalesced)", deferred)
	}

	// Close the window and fire the deferred retrain: the burst's residual
	// churn is covered by this single launch.
	now.Add(2 * time.Minute.Nanoseconds())
	pending[0]()
	c.WaitRetrain()
	if got := c.Retrains(); got != r0+2 {
		t.Fatalf("retrains after the window = %d, want %d (one coalesced launch)", got, r0+2)
	}

	// Fully quiet now: firing nothing further, a fresh mutation after the
	// window retrains normally (the gate is a rate limit, not a latch).
	schedMu.Lock()
	if len(pending) != 1 {
		t.Fatalf("deferred retrains after coalesced launch = %d, want still 1", len(pending))
	}
	schedMu.Unlock()

	// The index kept serving exact content through all of it.
	got := c.Search(vecs[5], 1, nil)
	if len(got) != 1 {
		t.Fatalf("search returned %d hits, want 1", len(got))
	}
}

// TestRetrainCooldownStaleAfterRestore pins that a deferred retrain
// scheduled before a Restore does nothing when it fires: the corpus it
// was due for no longer exists, and Restore never retrains.
func TestRetrainCooldownStaleAfterRestore(t *testing.T) {
	const n = 128
	c := NewClustered(ClusteredConfig{RetrainCooldown: time.Minute})
	var now atomic.Int64
	now.Store(time.Hour.Nanoseconds())
	c.clock = func() time.Time { return time.Unix(0, now.Load()) }
	var schedMu sync.Mutex
	var pending []func()
	c.schedule = func(_ time.Duration, f func()) {
		schedMu.Lock()
		pending = append(pending, f)
		schedMu.Unlock()
	}

	vecs := cooldownVecs(2*n, 8, 19)
	for i := 0; i < n; i++ {
		c.Upsert(i, vecs[i])
	}
	c.TrainNow()
	// Churn enough to get a retrain deferred (the cooldown window is still
	// open after TrainNow's launch).
	for i := 0; i < n; i++ {
		c.Upsert(i, vecs[n+i])
	}
	c.WaitRetrain()
	schedMu.Lock()
	deferred := len(pending)
	schedMu.Unlock()
	if deferred != 1 {
		t.Fatalf("deferred retrains = %d, want 1", deferred)
	}

	// Restore the index from its own snapshot — the deferred callback's
	// generation is now stale.
	snap := c.Snapshot()
	liveVecs := map[int][]float32{}
	for i := 0; i < n; i++ {
		liveVecs[i] = vecs[n+i]
	}
	if err := c.Restore(snap, liveVecs); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	r0 := c.Retrains()
	now.Add(2 * time.Minute.Nanoseconds())
	pending[0]()
	c.WaitRetrain()
	if got := c.Retrains(); got != r0 {
		t.Fatalf("stale deferred retrain fired a retrain: %d -> %d", r0, got)
	}

	// Liveness after the stale callback: churn that becomes due
	// post-Restore must get its own fresh deferral (the Restore disowned
	// the old one), and firing it must actually retrain — the due work is
	// never swallowed by the generation guard.
	c.TrainNow() // lastLaunch = now, so the burst below is cooldown-gated
	r1 := c.Retrains()
	for i := 0; i < n; i++ {
		c.Upsert(i, vecs[i])
	}
	c.WaitRetrain()
	if got := c.Retrains(); got != r1 {
		t.Fatalf("gated burst retrained inside the window: %d -> %d", r1, got)
	}
	schedMu.Lock()
	total := len(pending)
	schedMu.Unlock()
	if total != 2 {
		t.Fatalf("deferred retrains scheduled = %d, want a fresh one after Restore (2 total)", total)
	}
	now.Add(2 * time.Minute.Nanoseconds())
	pending[1]()
	c.WaitRetrain()
	if got := c.Retrains(); got != r1+1 {
		t.Fatalf("fresh deferred retrain after Restore: retrains %d -> %d, want +1", r1, got)
	}
}

// TestClusteredMetricsAttribution wires a Clustered index into telemetry
// instruments and checks the per-query accounting: every query lands one
// probe-histogram sample and one stop-rule attribution, retrains land in
// the retrain counter and duration histogram, and an exact (target 1.0)
// query attributes its stop to the proof rule or a full scan — never a
// heuristic.
func TestClusteredMetricsAttribution(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := &ClusteredMetrics{
		Probes:         reg.Histogram("probe_shards", "probes", telemetry.CountBuckets()),
		Scanned:        reg.Histogram("scanned_vectors", "scanned", telemetry.CountBuckets()),
		Stops:          reg.CounterVec("stops_total", "stops", "rule"),
		Retrains:       reg.Counter("retrains_total", "retrains"),
		RetrainSeconds: reg.Histogram("retrain_seconds", "duration", telemetry.LatencyBuckets()),
	}
	c := NewClustered(ClusteredConfig{RecallTarget: 1.0})
	c.SetMetrics(m)

	vecs := cooldownVecs(256, 32, 23)
	for i, v := range vecs {
		c.Upsert(i, v)
	}
	c.TrainNow()
	retrainsBefore := m.Retrains.Value()
	if retrainsBefore == 0 {
		t.Fatal("TrainNow recorded no retrain")
	}
	if m.RetrainSeconds.Count() != uint64(retrainsBefore) {
		t.Fatalf("retrain duration samples = %d, want %d", m.RetrainSeconds.Count(), retrainsBefore)
	}

	const queries = 20
	for i := 0; i < queries; i++ {
		c.Search(vecs[i], 5, nil)
	}
	if got := m.Probes.Count(); got != queries {
		t.Fatalf("probe histogram samples = %d, want %d", got, queries)
	}
	if got := m.Scanned.Count(); got != queries {
		t.Fatalf("scanned histogram samples = %d, want %d", got, queries)
	}
	var stops uint64
	for rule, v := range m.Stops.Values() {
		if rule != StopProof && rule != StopExhausted {
			t.Errorf("exact query attributed to %q, want only proof/exhausted", rule)
		}
		stops += v
	}
	if stops != queries {
		t.Fatalf("stop attributions = %d, want %d", stops, queries)
	}

	// A fixed-nprobe index attributes to the fixed rule; a brand-new tiny
	// index attributes to the brute scan.
	fixed := NewClustered(ClusteredConfig{})
	fm := &ClusteredMetrics{Stops: reg.CounterVec("fixed_stops_total", "stops", "rule")}
	fixed.SetMetrics(fm)
	for i, v := range vecs {
		fixed.Upsert(i, v)
	}
	fixed.TrainNow()
	fixed.Search(vecs[0], 5, nil)
	if got := fm.Stops.Values()[StopFixed]; got != 1 {
		t.Fatalf("fixed-nprobe attribution = %d, want 1 (%v)", got, fm.Stops.Values())
	}

	brute := NewClustered(ClusteredConfig{})
	bm := &ClusteredMetrics{Stops: reg.CounterVec("brute_stops_total", "stops", "rule")}
	brute.SetMetrics(bm)
	brute.Upsert(1, vecs[0])
	brute.Search(vecs[0], 1, nil)
	if got := bm.Stops.Values()[StopBrute]; got != 1 {
		t.Fatalf("brute-scan attribution = %d, want 1 (%v)", got, bm.Stops.Values())
	}
}
