package index

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// topicCorpus draws a seeded topic-clustered corpus of unit vectors plus
// query vectors from the same distribution. The noise level shapes how
// cleanly the corpus clusters: real embedding corpora (token-direction sums
// over shared vocabulary) sit at the clean end, the search benchmark's
// adversarial profile at the noisy end.
func topicCorpus(seed int64, n, dim, queries int, noise float64) (corpus, qs [][]float32) {
	rng := rand.New(rand.NewSource(seed))
	topics := make([][]float32, 16)
	for t := range topics {
		topics[t] = unitVec(rng, dim)
	}
	draw := func() []float32 {
		base := topics[rng.Intn(len(topics))]
		v := make([]float32, dim)
		var norm float64
		for i := range v {
			x := float64(base[i]) + noise*rng.NormFloat64()
			v[i] = float32(x)
			norm += x * x
		}
		norm = math.Sqrt(norm)
		for i := range v {
			v[i] = float32(float64(v[i]) / norm)
		}
		return v
	}
	corpus = make([][]float32, n)
	for i := range corpus {
		corpus[i] = draw()
	}
	qs = make([][]float32, queries)
	for i := range qs {
		qs[i] = draw()
	}
	return corpus, qs
}

// recallAt10 measures the fraction of the exact top-10 an approximate
// index recovers over the given queries.
func recallAt10(exact, approx VectorIndex, qs [][]float32) float64 {
	var found, want int
	for _, q := range qs {
		truth := map[int]bool{}
		for _, c := range exact.Search(q, 10, nil) {
			truth[c.ID] = true
		}
		want += len(truth)
		for _, c := range approx.Search(q, 10, nil) {
			if truth[c.ID] {
				found++
			}
		}
	}
	if want == 0 {
		return 1
	}
	return float64(found) / float64(want)
}

// TestSpilledAdaptiveRecallBeatsFixed is the recall-floor property of the
// recall engine: on a seeded topic-clustered corpus, adaptive probing with
// spilled shards and a re-ranked widened pool must reach recall@10 at least
// as high as the historic fixed-nprobe baseline (same centroid count, auto
// probe count), and clear the 0.9 floor the ROADMAP targets.
func TestSpilledAdaptiveRecallBeatsFixed(t *testing.T) {
	for _, seed := range []int64{7, 61, 193} {
		corpus, qs := topicCorpus(seed, 1500, 64, 25, 0.2)
		flat := NewFlat()
		fixed := NewClustered(ClusteredConfig{})
		engine := NewClustered(ClusteredConfig{
			RecallTarget: 0.95,
			SpillRatio:   0.25,
			Overfetch:    4,
		})
		for i, v := range corpus {
			flat.Upsert(i+1, v)
			fixed.Upsert(i+1, v)
			engine.Upsert(i+1, v)
		}
		fixed.TrainNow()
		engine.TrainNow()

		base := recallAt10(flat, fixed, qs)
		got := recallAt10(flat, engine, qs)
		if got < base {
			t.Errorf("seed %d: engine recall %.3f below fixed-nprobe baseline %.3f", seed, got, base)
		}
		if got < 0.9 {
			t.Errorf("seed %d: engine recall %.3f below the 0.9 floor", seed, got)
		}
	}
}

// TestRecallTargetOneIsExact pins the degeneration contract: RecallTarget
// 1.0 disables the slack (and partial scoring), so the adaptive stop rule
// only fires when no unprobed shard can possibly improve the result — the
// search must equal Flat byte-for-byte, spill replicas, deletions and
// re-upserts notwithstanding.
func TestRecallTargetOneIsExact(t *testing.T) {
	f := func(seed int64, nRaw uint16, kRaw uint8, spillRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%500) + minTrainSize
		k := int(kRaw%15) + 1
		spill := float64(spillRaw%3) * 0.2 // 0, 0.2, 0.4

		flat := NewFlat()
		clus := NewClustered(ClusteredConfig{
			RecallTarget: 1.0,
			SpillRatio:   spill,
			Overfetch:    8, // must be ignored at target 1.0
		})
		live := liveCorpus(rng, n, 24, flat, clus)
		clus.WaitRetrain()
		if len(live) == 0 {
			return true
		}
		for q := 0; q < 6; q++ {
			query := unitVec(rng, 24)
			got := clus.Search(query, k, nil)
			want := flat.Search(query, k, nil)
			if fmt.Sprintf("%v", got) != fmt.Sprintf("%v", want) {
				t.Logf("seed=%d n=%d k=%d spill=%.1f query %d diverged:\n got %v\nwant %v",
					seed, n, k, spill, q, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestSpilledFullProbeMatchesFlat: spill replicas overlap the shards, so a
// full probe visits near-boundary vectors twice — deduplication must keep
// the result identical to Flat, not duplicated.
func TestSpilledFullProbeMatchesFlat(t *testing.T) {
	f := func(seed int64, centRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		centroids := int(centRaw%12) + 2
		flat := NewFlat()
		clus := NewClustered(ClusteredConfig{Centroids: centroids, NProbe: centroids, SpillRatio: 0.5})
		live := liveCorpus(rng, 300, 16, flat, clus)
		clus.WaitRetrain()
		if len(live) == 0 {
			return true
		}
		query := unitVec(rng, 16)
		got := clus.Search(query, 10, nil)
		want := flat.Search(query, 10, nil)
		return fmt.Sprintf("%v", got) == fmt.Sprintf("%v", want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestDeleteChurnTriggersRetrain: a corpus that churns in place (delete +
// insert at a steady size) never crosses a corpus doubling, but the
// accumulated removals must still relaunch the training once they reach the
// size the clustering was computed over.
func TestDeleteChurnTriggersRetrain(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	clus := NewClustered(ClusteredConfig{Centroids: 8, NProbe: 8})
	flat := NewFlat()
	n := 2 * minTrainSize
	for id := 1; id <= n; id++ {
		v := unitVec(rng, 8)
		clus.Upsert(id, v)
		flat.Upsert(id, v)
	}
	clus.WaitRetrain()
	before := clus.Retrains()

	// Churn: replace the oldest live id with a fresh one, keeping the
	// corpus size constant the whole time. Well before 2*n mutations the
	// removal count alone must have relaunched a retrain. Both removal
	// spellings (Delete and the empty-vec Upsert) must feed the trigger.
	next := n
	for cycle := 0; cycle < 2*n; cycle++ {
		victim := cycle + 1
		if cycle%2 == 0 {
			clus.Delete(victim)
		} else {
			clus.Upsert(victim, nil)
		}
		flat.Delete(victim)
		next++
		v := unitVec(rng, 8)
		clus.Upsert(next, v)
		flat.Upsert(next, v)
		if clus.Len() != n {
			t.Fatalf("churn changed the corpus size: %d", clus.Len())
		}
	}
	clus.WaitRetrain()
	if got := clus.Retrains(); got <= before {
		t.Fatalf("delete-heavy churn never retrained: %d retrains before and after", got)
	}
	// The retrained index must still be exact at full probe.
	for q := 0; q < 5; q++ {
		query := unitVec(rng, 8)
		got := clus.Search(query, 10, nil)
		want := flat.Search(query, 10, nil)
		if fmt.Sprintf("%v", got) != fmt.Sprintf("%v", want) {
			t.Fatalf("post-churn-retrain query %d diverged:\n got %v\nwant %v", q, got, want)
		}
	}
}

// TestSpillSnapshotRoundTrip: the version-2 snapshot carries the spill
// replicas and the ratio that produced them through both codecs, restores
// into an identically-configured index with identical limited-probe
// results and zero retrains, and fails closed on a ratio mismatch.
func TestSpillSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	cfg := ClusteredConfig{Centroids: 8, NProbe: 2, SpillRatio: 0.3}
	src := NewClustered(cfg)
	live := liveCorpus(rng, 400, 24, src)
	src.WaitRetrain()
	snap := src.Snapshot()
	if snap.Version != SnapshotVersion {
		t.Fatalf("snapshot version %d, want %d", snap.Version, SnapshotVersion)
	}
	if snap.Clustered == nil || len(snap.Clustered.Spill) == 0 {
		t.Fatal("spill-configured snapshot carries no spill replicas")
	}
	if snap.Clustered.SpillRatio != cfg.SpillRatio {
		t.Fatalf("snapshot spill ratio %g, want %g", snap.Clustered.SpillRatio, cfg.SpillRatio)
	}

	// JSON and binary codecs must both round-trip the multi-valued
	// assignments losslessly.
	decodeJSON := func() *Snapshot {
		data, err := json.Marshal(snap)
		if err != nil {
			t.Fatal(err)
		}
		var out Snapshot
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatal(err)
		}
		return &out
	}
	decodeBinary := func() *Snapshot {
		var buf bytes.Buffer
		if err := snap.EncodeBinary(&buf); err != nil {
			t.Fatal(err)
		}
		out, err := DecodeSnapshotBinary(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	for name, decoded := range map[string]*Snapshot{"json": decodeJSON(), "binary": decodeBinary()} {
		dst := NewClustered(cfg)
		if err := dst.Restore(decoded, live); err != nil {
			t.Fatalf("%s: restore: %v", name, err)
		}
		if dst.Retrains() != 0 {
			t.Fatalf("%s: restore ran %d retrains", name, dst.Retrains())
		}
		for q := 0; q < 5; q++ {
			query := unitVec(rng, 24)
			got := dst.Search(query, 10, nil)
			want := src.Search(query, 10, nil)
			if fmt.Sprintf("%v", got) != fmt.Sprintf("%v", want) {
				t.Fatalf("%s: restored search diverged:\n got %v\nwant %v", name, got, want)
			}
		}
	}

	// A differently-configured spill ratio must reject the snapshot — the
	// caller rebuilds at the configured ratio instead of silently ignoring
	// the knob.
	off := cfg
	off.SpillRatio = 0
	if err := NewClustered(off).Restore(snap, live); err == nil {
		t.Error("spill-ratio mismatch should fail the restore")
	}
}

// TestV1SnapshotStillRestores: a pre-spill (version 1) snapshot — single-
// valued assignments, no spill section — must keep restoring into a
// spill-off index.
func TestV1SnapshotStillRestores(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	src := NewClustered(ClusteredConfig{Centroids: 6, NProbe: 2})
	live := liveCorpus(rng, 300, 16, src)
	src.WaitRetrain()
	snap := src.Snapshot()
	// Shape the snapshot exactly as the v1 writer produced it.
	snap.Version = 1
	snap.Clustered.Spill = nil
	snap.Clustered.SpillRatio = 0

	dst := NewClustered(ClusteredConfig{Centroids: 6, NProbe: 2})
	if err := dst.Restore(snap, live); err != nil {
		t.Fatalf("v1 snapshot rejected: %v", err)
	}
	if dst.Retrains() != 0 {
		t.Fatalf("v1 restore ran %d retrains", dst.Retrains())
	}
	for q := 0; q < 5; q++ {
		query := unitVec(rng, 16)
		got := dst.Search(query, 10, nil)
		want := src.Search(query, 10, nil)
		if fmt.Sprintf("%v", got) != fmt.Sprintf("%v", want) {
			t.Fatalf("v1-restored search diverged:\n got %v\nwant %v", got, want)
		}
	}
}
