package index

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestSearchBatchMatchesSequential pins the batch contract: SearchBatch
// answers exactly what k sequential Search calls would, across every
// probing regime (brute-scan, fixed nprobe, adaptive recall target),
// with and without a filter, and with the quantized candidate pass and
// overfetch engaged. Batching may only change the visit order, and the
// strict total order on candidates (score desc, id asc) makes results
// insensitive to that.
func TestSearchBatchMatchesSequential(t *testing.T) {
	cases := []struct {
		name string
		n    int // corpus size; < minTrainSize keeps the brute path
		cfg  ClusteredConfig
	}{
		{"brute", minTrainSize - 10, ClusteredConfig{Quantize: true}},
		{"fixed-plain", 500, ClusteredConfig{NProbe: 3}},
		{"fixed-quantized", 500, ClusteredConfig{NProbe: 3, Overfetch: 4, Quantize: true}},
		{"fixed-spilled", 500, ClusteredConfig{NProbe: 2, SpillRatio: 0.3, Overfetch: 4}},
		{"adaptive", 500, ClusteredConfig{RecallTarget: 0.9, SpillRatio: 0.2, Overfetch: 4, Quantize: true}},
		{"adaptive-exact", 300, ClusteredConfig{RecallTarget: 1.0, Quantize: true}},
	}
	filters := map[string]Filter{
		"unfiltered": nil,
		"even-ids":   func(id int) bool { return id%2 == 0 },
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(113))
			clus := NewClustered(tc.cfg)
			live := liveCorpus(rng, tc.n, 24, clus)
			if tc.n >= minTrainSize {
				clus.TrainNow()
			} else {
				clus.WaitRetrain()
				clus.mu.RLock()
				untrained := clus.trained == nil
				clus.mu.RUnlock()
				if !untrained {
					t.Fatalf("corpus of %d unexpectedly trained", tc.n)
				}
			}
			if len(live) == 0 {
				t.Fatal("empty corpus")
			}
			queries := make([][]float32, 8)
			for i := range queries {
				queries[i] = unitVec(rng, 24)
			}
			for fname, filter := range filters {
				want := make([][]Candidate, len(queries))
				for i, q := range queries {
					want[i] = clus.Search(q, 10, filter)
				}
				got := clus.SearchBatch(queries, 10, filter)
				if len(got) != len(want) {
					t.Fatalf("%s: batch answered %d queries, want %d", fname, len(got), len(want))
				}
				for i := range want {
					if fmt.Sprintf("%v", got[i]) != fmt.Sprintf("%v", want[i]) {
						t.Errorf("%s: query %d batch diverged from sequential:\n got %v\nwant %v", fname, i, got[i], want[i])
					}
				}
			}
		})
	}
}

// TestSearchBatchOfFallsBack: SearchBatchOf duck-types the batch
// interface — a Clustered index takes the batched path, while the Flat
// index (no SearchBatch) transparently falls back to sequential calls.
// Both must answer identically on the same corpus.
func TestSearchBatchOfFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	flat := NewFlat()
	clus := NewClustered(ClusteredConfig{NProbe: 4, Quantize: true})
	live := liveCorpus(rng, 300, 16, flat, clus)
	clus.TrainNow()
	// nprobe 4 of auto ~sqrt(300) centroids is approximate; to compare
	// across index kinds make the clustered scan exact instead.
	exact := NewClustered(ClusteredConfig{NProbe: 1 << 20})
	for id, v := range live {
		exact.Upsert(id, v)
	}
	exact.TrainNow()

	queries := make([][]float32, 5)
	for i := range queries {
		queries[i] = unitVec(rng, 16)
	}
	fromFlat := SearchBatchOf(flat, queries, 10, nil)
	fromExact := SearchBatchOf(exact, queries, 10, nil)
	if fmt.Sprintf("%v", fromFlat) != fmt.Sprintf("%v", fromExact) {
		t.Fatalf("exact clustered batch diverged from flat fallback:\n got %v\nwant %v", fromExact, fromFlat)
	}
	// The approximate index still answers per-query-identical batches.
	seq := make([][]Candidate, len(queries))
	for i, q := range queries {
		seq[i] = clus.Search(q, 10, nil)
	}
	if got := SearchBatchOf(clus, queries, 10, nil); fmt.Sprintf("%v", got) != fmt.Sprintf("%v", seq) {
		t.Fatalf("SearchBatchOf on clustered diverged from sequential:\n got %v\nwant %v", got, seq)
	}
}

// TestSearchBatchEdges: degenerate inputs must not panic and must keep
// the one-answer-per-query shape.
func TestSearchBatchEdges(t *testing.T) {
	clus := NewClustered(ClusteredConfig{Quantize: true})
	if got := clus.SearchBatch(nil, 10, nil); len(got) != 0 {
		t.Fatalf("nil batch answered %d lists", len(got))
	}
	clus.Upsert(1, []float32{1, 0})
	qs := [][]float32{{1, 0}, {0, 1}}
	if got := clus.SearchBatch(qs, 0, nil); len(got) != 2 || len(got[0]) != 0 || len(got[1]) != 0 {
		t.Fatalf("k=0 batch = %v, want two empty lists", got)
	}
	got := clus.SearchBatch(qs, 5, nil)
	if len(got) != 2 {
		t.Fatalf("batch answered %d lists, want 2", len(got))
	}
	if len(got[0]) != 1 || got[0][0].ID != 1 {
		t.Fatalf("batch[0] = %v, want the single stored vector", got[0])
	}
}
