package index

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// liveCorpus builds a randomized corpus (with interleaved deletes and
// re-upserts) into every supplied index, returning the surviving vectors.
func liveCorpus(rng *rand.Rand, n, dim int, idxs ...VectorIndex) map[int][]float32 {
	live := map[int][]float32{}
	for id := 1; id <= n; id++ {
		v := unitVec(rng, dim)
		live[id] = v
		for _, ix := range idxs {
			ix.Upsert(id, v)
		}
		switch rng.Intn(10) {
		case 0:
			victim := rng.Intn(id) + 1
			delete(live, victim)
			for _, ix := range idxs {
				ix.Delete(victim)
			}
		case 1:
			victim := rng.Intn(id) + 1
			if _, ok := live[victim]; ok {
				nv := unitVec(rng, dim)
				live[victim] = nv
				for _, ix := range idxs {
					ix.Upsert(victim, nv)
				}
			}
		}
	}
	return live
}

// Property: Snapshot → JSON → Restore round-trips a clustered index
// byte-identically to serving state — same centroids, and identical search
// results at the *configured* (limited) probe count, not just under a full
// probe. The restored index must answer without having retrained.
func TestClusteredSnapshotRoundTripProperty(t *testing.T) {
	f := func(seed int64, nRaw uint16, centRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%500) + 50
		centroids := int(centRaw%16) + 2

		src := NewClustered(ClusteredConfig{Centroids: centroids, NProbe: 2})
		live := liveCorpus(rng, n, 24, src)
		src.WaitRetrain()

		snap := src.Snapshot()
		data, err := json.Marshal(snap)
		if err != nil {
			t.Logf("marshal: %v", err)
			return false
		}
		var decoded Snapshot
		if err := json.Unmarshal(data, &decoded); err != nil {
			t.Logf("unmarshal: %v", err)
			return false
		}

		dst := NewClustered(ClusteredConfig{Centroids: centroids, NProbe: 2})
		if err := dst.Restore(&decoded, live); err != nil {
			t.Logf("restore: %v", err)
			return false
		}
		if dst.Retrains() != 0 {
			t.Logf("restore ran %d retrains, want 0", dst.Retrains())
			return false
		}
		if src.trained != nil {
			if dst.trained == nil {
				t.Log("trained structure lost in round trip")
				return false
			}
			if !reflect.DeepEqual(src.trained.centroids, dst.trained.centroids) {
				t.Log("centroids diverged in round trip")
				return false
			}
		}
		for q := 0; q < 5; q++ {
			query := unitVec(rng, 24)
			got := dst.Search(query, 10, nil)
			want := src.Search(query, 10, nil)
			if fmt.Sprintf("%v", got) != fmt.Sprintf("%v", want) {
				t.Logf("seed=%d n=%d centroids=%d: restored search diverged\n got %v\nwant %v",
					seed, n, centroids, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestFlatSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	src := NewFlat()
	live := liveCorpus(rng, 120, 16, src)

	snap := src.Snapshot()
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var decoded Snapshot
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	dst := NewFlat()
	if err := dst.Restore(&decoded, live); err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 5; q++ {
		query := unitVec(rng, 16)
		got, want := dst.Search(query, 7, nil), src.Search(query, 7, nil)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("restored flat diverged:\n got %+v\nwant %+v", got, want)
		}
	}
}

// Restore must fail closed — wrong kind, wrong version, or a vector set the
// snapshot's checksum does not cover leaves the index untouched so the
// caller can rebuild.
func TestRestoreRejectsMismatches(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	src := NewClustered(ClusteredConfig{Centroids: 4})
	live := map[int][]float32{}
	for id := 1; id <= 100; id++ {
		v := unitVec(rng, 8)
		live[id] = v
		src.Upsert(id, v)
	}
	src.WaitRetrain()
	good := src.Snapshot()

	if err := NewFlat().Restore(good, live); err == nil {
		t.Error("flat restore of a clustered snapshot should fail")
	}

	stale := *good
	stale.Version = SnapshotVersion + 1
	if err := NewClustered(ClusteredConfig{}).Restore(&stale, live); err == nil {
		t.Error("future-version snapshot should fail")
	}

	// Mutate one vector: the records no longer match the trained structure.
	edited := map[int][]float32{}
	for id, v := range live {
		edited[id] = v
	}
	edited[50] = unitVec(rng, 8)
	dst := NewClustered(ClusteredConfig{})
	if err := dst.Restore(good, edited); err == nil {
		t.Error("checksum mismatch should fail")
	}
	if dst.Len() != 0 {
		t.Errorf("failed restore mutated the index: len=%d", dst.Len())
	}

	// A missing record changes the count/checksum too.
	delete(edited, 50)
	if err := NewClustered(ClusteredConfig{}).Restore(good, edited); err == nil {
		t.Error("count mismatch should fail")
	}

	// A pinned centroid count that disagrees with the snapshot must reject
	// it (the flag would otherwise silently be a no-op); auto accepts.
	if err := NewClustered(ClusteredConfig{Centroids: 32}).Restore(good, live); err == nil {
		t.Error("pinned-centroid mismatch should fail")
	}
	if err := NewClustered(ClusteredConfig{Centroids: 4}).Restore(good, live); err != nil {
		t.Errorf("matching pinned centroids failed: %v", err)
	}
	// A pinned count larger than the corpus at train time gets clamped by
	// numCentroids; the snapshot that same config produced must restore.
	big := NewClustered(ClusteredConfig{Centroids: 500})
	for id, v := range live {
		big.Upsert(id, v)
	}
	big.WaitRetrain()
	if err := NewClustered(ClusteredConfig{Centroids: 500}).Restore(big.Snapshot(), live); err != nil {
		t.Errorf("clamped pinned-centroid snapshot rejected by its own config: %v", err)
	}

	if err := NewClustered(ClusteredConfig{}).Restore(good, live); err != nil {
		t.Errorf("pristine restore failed: %v", err)
	}
}

// An untrained clustered snapshot (corpus below minTrainSize at save time)
// restores into brute-scan mode and stays exact.
func TestClusteredRestoreUntrained(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	src := NewClustered(ClusteredConfig{})
	flat := NewFlat()
	live := map[int][]float32{}
	for id := 1; id < minTrainSize; id++ {
		v := unitVec(rng, 8)
		live[id] = v
		src.Upsert(id, v)
		flat.Upsert(id, v)
	}
	dst := NewClustered(ClusteredConfig{})
	if err := dst.Restore(src.Snapshot(), live); err != nil {
		t.Fatal(err)
	}
	q := unitVec(rng, 8)
	if got, want := dst.Search(q, 10, nil), flat.Search(q, 10, nil); !reflect.DeepEqual(got, want) {
		t.Fatalf("untrained restore diverged:\n got %+v\nwant %+v", got, want)
	}
}
