package index

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"
)

// Binary snapshot codec. The JSON form of Snapshot (used when an index
// snapshot is embedded in a legacy v1 registry file) spends ~12 bytes and a
// float parse per centroid component and a decimal round trip per
// assignment; the v2 registry sidecar instead stores the same structure in
// this little-endian binary layout, which is both smaller and a straight
// bit-copy to decode. The layout is versioned by binarySnapshotVersion
// independently of SnapshotVersion: the former describes the container
// bytes, the latter the logical index structure.
//
//	u32 binary codec version
//	u32 SnapshotVersion, kind (u16 len + bytes), u64 count,
//	checksum (u16 len + bytes)
//	u8 hasClustered
//	if clustered:
//	  u32 ncentroids, then per centroid: u32 dim + dim*f32
//	  u64 nassign, then per entry: i64 id, i64 centroid (id-sorted)
//	  i64 trainedAt
//	  codec v2 appends the spill section:
//	    f64 spillRatio
//	    u64 nspill, then per entry: i64 id, i64 centroid (id-sorted)
//
// The decoder still reads codec-v1 bytes (no spill section — spill ratio 0,
// no replicas), so sidecars written before the recall engine keep loading.
const binarySnapshotVersion = 2

// maxBinaryString bounds decoded string lengths — a corrupt length prefix
// must fail fast, not allocate gigabytes.
const maxBinaryString = 1 << 16

func writeU32(w io.Writer, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func writeU64(w io.Writer, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func writeString(w io.Writer, s string) error {
	if len(s) > maxBinaryString {
		return fmt.Errorf("index: binary snapshot string of %d bytes", len(s))
	}
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], uint16(len(s)))
	if _, err := w.Write(b[:]); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readU32(r io.Reader) (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func readU64(r io.Reader) (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

func readString(r io.Reader) (string, error) {
	var b [2]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return "", err
	}
	n := int(binary.LittleEndian.Uint16(b[:]))
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func writeVec(w io.Writer, v []float32) error {
	if err := writeU32(w, uint32(len(v))); err != nil {
		return err
	}
	buf := make([]byte, 4*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(x))
	}
	_, err := w.Write(buf)
	return err
}

func readVec(r io.Reader) ([]float32, error) {
	dim, err := readU32(r)
	if err != nil {
		return nil, err
	}
	if dim > 1<<20 {
		return nil, fmt.Errorf("index: binary snapshot vector of dim %d", dim)
	}
	buf := make([]byte, 4*dim)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	out := make([]float32, dim)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
	}
	return out, nil
}

// writeAssignMap emits an id→centroid map as a u64 count followed by
// id-sorted i64 pairs — the layout shared by the assign and spill sections.
func writeAssignMap(w io.Writer, m map[int]int) error {
	ids := make([]int, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	if err := writeU64(w, uint64(len(ids))); err != nil {
		return err
	}
	for _, id := range ids {
		if err := writeU64(w, uint64(int64(id))); err != nil {
			return err
		}
		if err := writeU64(w, uint64(int64(m[id]))); err != nil {
			return err
		}
	}
	return nil
}

// readAssignMap reads the layout writeAssignMap emits. A nil return (rather
// than an empty map) for zero entries keeps decoded snapshots
// DeepEqual-comparable to freshly taken ones, whose optional maps stay nil
// when unused.
func readAssignMap(r io.Reader) (map[int]int, error) {
	n, err := readU64(r)
	if err != nil {
		return nil, err
	}
	if n > 1<<40 {
		return nil, fmt.Errorf("index: binary snapshot with %d assignments", n)
	}
	if n == 0 {
		return nil, nil
	}
	out := make(map[int]int, n)
	for i := uint64(0); i < n; i++ {
		id, err := readU64(r)
		if err != nil {
			return nil, err
		}
		cent, err := readU64(r)
		if err != nil {
			return nil, err
		}
		out[int(int64(id))] = int(int64(cent))
	}
	return out, nil
}

// EncodeBinary writes the snapshot in the binary little-endian sidecar
// form. The encoding is deterministic: assignments are emitted id-sorted,
// so identical snapshots produce identical bytes.
func (s *Snapshot) EncodeBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if err := writeU32(bw, binarySnapshotVersion); err != nil {
		return err
	}
	if err := writeU32(bw, uint32(s.Version)); err != nil {
		return err
	}
	if err := writeString(bw, s.Kind); err != nil {
		return err
	}
	if err := writeU64(bw, uint64(s.Count)); err != nil {
		return err
	}
	if err := writeString(bw, s.Checksum); err != nil {
		return err
	}
	hasClustered := byte(0)
	if s.Clustered != nil {
		hasClustered = 1
	}
	if _, err := bw.Write([]byte{hasClustered}); err != nil {
		return err
	}
	if s.Clustered != nil {
		c := s.Clustered
		if err := writeU32(bw, uint32(len(c.Centroids))); err != nil {
			return err
		}
		for _, cent := range c.Centroids {
			if err := writeVec(bw, cent); err != nil {
				return err
			}
		}
		if err := writeAssignMap(bw, c.Assign); err != nil {
			return err
		}
		if err := writeU64(bw, uint64(int64(c.TrainedAt))); err != nil {
			return err
		}
		if err := writeU64(bw, math.Float64bits(c.SpillRatio)); err != nil {
			return err
		}
		if err := writeAssignMap(bw, c.Spill); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// quantizedBinaryVersion versions the quantized-companion section's bytes
// independently of the index codec: the section is optional and derivable,
// so a reader that does not understand a future version simply drops it
// and rebuilds from the float vectors.
const quantizedBinaryVersion = 1

// EncodeBinary writes the quantized companion set in the binary sidecar
// form: u32 codec version, u64 count, then per id-sorted entry
// i64 id, u32 dim, f32 scale, dim raw int8 code bytes. Deterministic, like
// Snapshot.EncodeBinary.
func (q *QuantizedSnapshot) EncodeBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if err := writeU32(bw, quantizedBinaryVersion); err != nil {
		return err
	}
	ids := make([]int, 0, len(q.Codes))
	for id := range q.Codes {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	if err := writeU64(bw, uint64(len(ids))); err != nil {
		return err
	}
	for _, id := range ids {
		codes := q.Codes[id]
		if err := writeU64(bw, uint64(int64(id))); err != nil {
			return err
		}
		if err := writeU32(bw, uint32(len(codes))); err != nil {
			return err
		}
		if err := writeU32(bw, math.Float32bits(q.Scales[id])); err != nil {
			return err
		}
		buf := make([]byte, len(codes))
		for i, c := range codes {
			buf[i] = byte(c)
		}
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DecodeQuantizedBinary reads a companion set written by
// QuantizedSnapshot.EncodeBinary.
func DecodeQuantizedBinary(r io.Reader) (*QuantizedSnapshot, error) {
	br := bufio.NewReader(r)
	ver, err := readU32(br)
	if err != nil {
		return nil, fmt.Errorf("index: quantized section header: %w", err)
	}
	if ver != quantizedBinaryVersion {
		return nil, fmt.Errorf("index: quantized section codec version %d, want %d", ver, quantizedBinaryVersion)
	}
	n, err := readU64(br)
	if err != nil {
		return nil, err
	}
	if n > 1<<40 {
		return nil, fmt.Errorf("index: quantized section with %d entries", n)
	}
	hint := n
	if hint > 1<<20 {
		hint = 1 << 20
	}
	q := &QuantizedSnapshot{
		Codes:  make(map[int][]int8, hint),
		Scales: make(map[int]float32, hint),
	}
	for i := uint64(0); i < n; i++ {
		id, err := readU64(br)
		if err != nil {
			return nil, err
		}
		dim, err := readU32(br)
		if err != nil {
			return nil, err
		}
		if dim > 1<<20 {
			return nil, fmt.Errorf("index: quantized entry for id %d claims dim %d", int(int64(id)), dim)
		}
		scaleBits, err := readU32(br)
		if err != nil {
			return nil, err
		}
		buf := make([]byte, dim)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, err
		}
		codes := make([]int8, dim)
		for j, b := range buf {
			codes[j] = int8(b)
		}
		q.Codes[int(int64(id))] = codes
		q.Scales[int(int64(id))] = math.Float32frombits(scaleBits)
	}
	return q, nil
}

// DecodeSnapshotBinary reads a snapshot written by EncodeBinary. It only
// validates the binary container version; logical validation (kind,
// SnapshotVersion, checksum against the vectors) stays where it always was,
// in Restore.
func DecodeSnapshotBinary(r io.Reader) (*Snapshot, error) {
	br := bufio.NewReader(r)
	codecVer, err := readU32(br)
	if err != nil {
		return nil, fmt.Errorf("index: binary snapshot header: %w", err)
	}
	if codecVer < 1 || codecVer > binarySnapshotVersion {
		return nil, fmt.Errorf("index: binary snapshot codec version %d, want 1..%d", codecVer, binarySnapshotVersion)
	}
	snap := &Snapshot{}
	ver, err := readU32(br)
	if err != nil {
		return nil, err
	}
	snap.Version = int(ver)
	if snap.Kind, err = readString(br); err != nil {
		return nil, err
	}
	count, err := readU64(br)
	if err != nil {
		return nil, err
	}
	snap.Count = int(count)
	if snap.Checksum, err = readString(br); err != nil {
		return nil, err
	}
	var has [1]byte
	if _, err := io.ReadFull(br, has[:]); err != nil {
		return nil, err
	}
	if has[0] == 0 {
		return snap, nil
	}
	c := &ClusteredSnapshot{}
	ncent, err := readU32(br)
	if err != nil {
		return nil, err
	}
	if ncent > 1<<20 {
		return nil, fmt.Errorf("index: binary snapshot with %d centroids", ncent)
	}
	c.Centroids = make([][]float32, ncent)
	for i := range c.Centroids {
		if c.Centroids[i], err = readVec(br); err != nil {
			return nil, err
		}
	}
	if c.Assign, err = readAssignMap(br); err != nil {
		return nil, err
	}
	if c.Assign == nil {
		c.Assign = map[int]int{} // Snapshot always allocates it; stay DeepEqual
	}
	trainedAt, err := readU64(br)
	if err != nil {
		return nil, err
	}
	c.TrainedAt = int(int64(trainedAt))
	if codecVer >= 2 {
		ratioBits, err := readU64(br)
		if err != nil {
			return nil, err
		}
		c.SpillRatio = math.Float64frombits(ratioBits)
		if c.Spill, err = readAssignMap(br); err != nil {
			return nil, err
		}
	}
	snap.Clustered = c
	return snap, nil
}
