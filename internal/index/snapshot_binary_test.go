package index

import (
	"bytes"
	"reflect"
	"testing"
)

// TestBinarySnapshotRoundTrip: EncodeBinary/DecodeSnapshotBinary must be a
// lossless pair for both flat and trained-clustered snapshots, and the
// encoding must be deterministic (identical snapshots → identical bytes).
func TestBinarySnapshotRoundTrip(t *testing.T) {
	vecs := map[int][]float32{}
	flat := NewFlat()
	clus := NewClustered(ClusteredConfig{Centroids: 4, NProbe: 2})
	for i := 0; i < 100; i++ {
		v := []float32{float32(i) / 100, float32(100-i) / 100, 0.5}
		vecs[i+1] = v
		flat.Upsert(i+1, v)
		clus.Upsert(i+1, v)
	}
	clus.WaitRetrain()

	for name, idx := range map[string]VectorIndex{"flat": flat, "clustered": clus} {
		snap := idx.Snapshot()
		var buf bytes.Buffer
		if err := snap.EncodeBinary(&buf); err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		got, err := DecodeSnapshotBinary(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if !reflect.DeepEqual(got, snap) {
			t.Fatalf("%s: round trip diverged:\n got %+v\nwant %+v", name, got, snap)
		}
		var buf2 bytes.Buffer
		if err := snap.EncodeBinary(&buf2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatalf("%s: encoding is not deterministic", name)
		}
		// A decoded snapshot must restore exactly like the original.
		fresh := NewClustered(ClusteredConfig{Centroids: 4, NProbe: 2})
		if name == "clustered" {
			if err := fresh.Restore(got, vecs); err != nil {
				t.Fatalf("restore from decoded snapshot: %v", err)
			}
		}
	}
}

// TestBinarySnapshotRejectsGarbage: truncated or foreign bytes must error,
// never panic or mis-decode.
func TestBinarySnapshotRejectsGarbage(t *testing.T) {
	snap := &Snapshot{Version: SnapshotVersion, Kind: "flat", Count: 3, Checksum: "fnv1a64:abc"}
	var buf bytes.Buffer
	if err := snap.EncodeBinary(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut++ {
		if _, err := DecodeSnapshotBinary(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d decoded cleanly", cut)
		}
	}
	if _, err := DecodeSnapshotBinary(bytes.NewReader([]byte("not a snapshot at all"))); err == nil {
		t.Fatal("garbage decoded cleanly")
	}
}
