package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestReciprocalRank(t *testing.T) {
	rel := map[int]bool{7: true}
	if rr := ReciprocalRank([]int{7, 1, 2}, rel); !almostEqual(rr, 1) {
		t.Errorf("rank 1: %v", rr)
	}
	if rr := ReciprocalRank([]int{1, 2, 7}, rel); !almostEqual(rr, 1.0/3) {
		t.Errorf("rank 3: %v", rr)
	}
	if rr := ReciprocalRank([]int{1, 2, 3}, rel); rr != 0 {
		t.Errorf("missing: %v", rr)
	}
	if rr := ReciprocalRank(nil, rel); rr != 0 {
		t.Errorf("empty ranking: %v", rr)
	}
}

func TestMRR(t *testing.T) {
	rankings := [][]int{{5, 1}, {1, 5}, {2, 3}}
	relevants := []map[int]bool{{5: true}, {5: true}, {5: true}}
	// 1 + 1/2 + 0 over 3 = 0.5
	if got := MRR(rankings, relevants); !almostEqual(got, 0.5) {
		t.Errorf("MRR = %v", got)
	}
	if got := MRR(nil, nil); got != 0 {
		t.Errorf("empty MRR = %v", got)
	}
}

func TestAveragePrecisionAtK(t *testing.T) {
	// relevant at positions 1 and 3 (1-based), K=3, |rel|=2:
	// (1/1 + 2/3)/2 = 5/6
	rel := map[int]bool{10: true, 30: true}
	ap := AveragePrecisionAtK([]int{10, 20, 30}, rel, 3)
	if !almostEqual(ap, 5.0/6) {
		t.Errorf("AP = %v, want %v", ap, 5.0/6)
	}
	// nothing relevant retrieved
	if ap := AveragePrecisionAtK([]int{20, 40}, rel, 2); ap != 0 {
		t.Errorf("AP = %v", ap)
	}
	// K smaller than relevant count normalizes by K
	rel3 := map[int]bool{1: true, 2: true, 3: true}
	ap = AveragePrecisionAtK([]int{1}, rel3, 1)
	if !almostEqual(ap, 1) {
		t.Errorf("AP@1 with 3 relevant = %v, want 1", ap)
	}
}

func TestPrecisionAt1(t *testing.T) {
	rankings := [][]int{{1, 2}, {3, 4}, {}}
	relevants := []map[int]bool{{1: true}, {4: true}, {9: true}}
	if got := PrecisionAt1(rankings, relevants); !almostEqual(got, 1.0/3) {
		t.Errorf("P@1 = %v", got)
	}
}

func TestPrecisionAtK(t *testing.T) {
	rankings := [][]int{{1, 2, 3, 4}}
	relevants := []map[int]bool{{1: true, 3: true}}
	if got := PrecisionAtK(rankings, relevants, 4); !almostEqual(got, 0.5) {
		t.Errorf("P@4 = %v", got)
	}
	if got := PrecisionAtK(rankings, relevants, 2); !almostEqual(got, 0.5) {
		t.Errorf("P@2 = %v", got)
	}
}

// Property: metrics are always within [0, 1].
func TestMetricsBounded(t *testing.T) {
	f := func(perm []uint8, relBits []bool) bool {
		ranking := make([]int, len(perm))
		for i, p := range perm {
			ranking[i] = int(p)
		}
		rel := map[int]bool{}
		for i, b := range relBits {
			if b {
				rel[i%256] = true
			}
		}
		rr := ReciprocalRank(ranking, rel)
		ap := AveragePrecisionAtK(ranking, rel, 100)
		return rr >= 0 && rr <= 1 && ap >= 0 && ap <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: putting a relevant item strictly earlier never lowers RR.
func TestRRMonotonicInRank(t *testing.T) {
	f := func(n uint8, pos uint8) bool {
		size := int(n%50) + 2
		p := int(pos) % size
		ranking := make([]int, size)
		for i := range ranking {
			ranking[i] = i + 1000 // non-relevant filler
		}
		rel := map[int]bool{-1: true}
		ranking[p] = -1
		rrLate := ReciprocalRank(ranking, rel)
		if p == 0 {
			return almostEqual(rrLate, 1)
		}
		ranking[p] = p + 1000
		ranking[p-1] = -1
		rrEarly := ReciprocalRank(ranking, rel)
		return rrEarly > rrLate
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: AP@K equals 1 when all top-min(K,|rel|) items are relevant.
func TestAPPerfectRanking(t *testing.T) {
	f := func(n uint8) bool {
		k := int(n%20) + 1
		ranking := make([]int, k)
		rel := map[int]bool{}
		for i := 0; i < k; i++ {
			ranking[i] = i
			rel[i] = true
		}
		return almostEqual(AveragePrecisionAtK(ranking, rel, k), 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
