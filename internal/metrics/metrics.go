// Package metrics implements the retrieval metrics of the paper's
// evaluation: Mean Reciprocal Rank (Table 6), Mean Average Precision at K
// and Precision at 1 (Table 7).
package metrics

// ReciprocalRank returns 1/rank of the first relevant item in the ranking
// (0 when none is relevant). ranking holds candidate ids in ranked order;
// relevant is the ground-truth set.
func ReciprocalRank(ranking []int, relevant map[int]bool) float64 {
	for i, id := range ranking {
		if relevant[id] {
			return 1 / float64(i+1)
		}
	}
	return 0
}

// MRR averages reciprocal ranks over queries.
func MRR(rankings [][]int, relevants []map[int]bool) float64 {
	if len(rankings) == 0 {
		return 0
	}
	var total float64
	for i, r := range rankings {
		total += ReciprocalRank(r, relevants[i])
	}
	return total / float64(len(rankings))
}

// AveragePrecisionAtK computes AP@K for one query: the mean of precision at
// each relevant hit within the top K, normalized by min(K, |relevant|).
func AveragePrecisionAtK(ranking []int, relevant map[int]bool, k int) float64 {
	if len(relevant) == 0 {
		return 0
	}
	if k > len(ranking) {
		k = len(ranking)
	}
	hits := 0
	var sum float64
	for i := 0; i < k; i++ {
		if relevant[ranking[i]] {
			hits++
			sum += float64(hits) / float64(i+1)
		}
	}
	denom := len(relevant)
	if k < denom {
		denom = k
	}
	if denom == 0 {
		return 0
	}
	return sum / float64(denom)
}

// MAPAtK averages AP@K over queries (the MAP@100 of Table 7 with k=100).
func MAPAtK(rankings [][]int, relevants []map[int]bool, k int) float64 {
	if len(rankings) == 0 {
		return 0
	}
	var total float64
	for i, r := range rankings {
		total += AveragePrecisionAtK(r, relevants[i], k)
	}
	return total / float64(len(rankings))
}

// PrecisionAt1 is the fraction of queries whose top-ranked item is relevant.
func PrecisionAt1(rankings [][]int, relevants []map[int]bool) float64 {
	if len(rankings) == 0 {
		return 0
	}
	hits := 0
	for i, r := range rankings {
		if len(r) > 0 && relevants[i][r[0]] {
			hits++
		}
	}
	return float64(hits) / float64(len(rankings))
}

// PrecisionAtK is the fraction of relevant items within the top K, averaged
// over queries.
func PrecisionAtK(rankings [][]int, relevants []map[int]bool, k int) float64 {
	if len(rankings) == 0 {
		return 0
	}
	var total float64
	for i, r := range rankings {
		kk := k
		if kk > len(r) {
			kk = len(r)
		}
		hits := 0
		for j := 0; j < kk; j++ {
			if relevants[i][r[j]] {
				hits++
			}
		}
		if kk > 0 {
			total += float64(hits) / float64(kk)
		}
	}
	return total / float64(len(rankings))
}
