// Package telemetry is Laminar's operational metric registry: the
// dependency-free substrate the serving stack reports into and the
// `GET /metrics` endpoint reads out of (Prometheus text exposition,
// format version 0.0.4).
//
// The package deliberately implements only what the serving path needs,
// with the hot path reduced to one or two atomic operations:
//
//   - Counter: a monotonically increasing uint64 (requests served,
//     retrains completed). Inc/Add are single atomic adds.
//   - Gauge: an arbitrary float64 set by the owner (live record counts);
//     GaugeFunc evaluates a callback at scrape time instead, so a gauge
//     can read a value the owner already maintains under its own locks.
//   - Histogram: a bounded-bucket distribution (request latency, shards
//     probed per query). Buckets are fixed at construction; Observe is a
//     binary search plus three atomic adds, and never allocates.
//   - CounterVec / HistogramVec: the labeled forms. A vec resolves a
//     label-value tuple to a child metric once (With, an RLock-guarded
//     map lookup); callers on the hot path hold the child pointer so
//     per-event cost stays purely atomic.
//
// Metrics are created through a Registry, which owns naming (duplicate
// registration panics — it is a wiring bug, not a runtime condition) and
// exposition order (registration order, so scrapes are deterministic and
// diffable). WritePrometheus renders the whole registry in the Prometheus
// text format; Handler wraps that as an http.Handler for /metrics.
//
// Every exported metric is documented by exact name in docs/operations.md,
// and `make metrics-smoke` cross-validates that list against a live
// endpoint — when adding a metric here, add its row to the runbook or the
// gate fails.
package telemetry

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// labelSep joins label values into child-map keys; it cannot appear in
// UTF-8 text, so joined values never collide.
const labelSep = "\xff"

var nameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// desc is the identity every metric shares: its family name, help text and
// exposition type.
type desc struct {
	fqName string
	help   string
	typ    string // "counter", "gauge" or "histogram"
}

// metric is one registered exposition family.
type metric interface {
	describe() *desc
	// collect appends the family's sample lines (no HELP/TYPE headers).
	collect(sb *strings.Builder)
}

// Registry is an ordered collection of metrics. All methods are safe for
// concurrent use; construction typically happens once at wiring time and
// scrapes read concurrently with hot-path updates.
type Registry struct {
	mu      sync.RWMutex
	metrics []metric
	byName  map[string]bool
}

// NewRegistry creates an empty metric registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]bool{}}
}

// register adds a family, panicking on an invalid or duplicate name —
// both are wiring bugs that must fail at startup, not scrape time.
func (r *Registry) register(m metric) {
	d := m.describe()
	if !nameRE.MatchString(d.fqName) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", d.fqName))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.byName[d.fqName] {
		panic(fmt.Sprintf("telemetry: metric %q registered twice", d.fqName))
	}
	r.byName[d.fqName] = true
	r.metrics = append(r.metrics, m)
}

// Counter registers and returns a monotonically increasing counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{d: &desc{fqName: name, help: help, typ: "counter"}}
	r.register(c)
	return c
}

// CounterVec registers a labeled counter family. Children are created on
// first With and live for the registry's lifetime.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	validateLabels(name, labelNames)
	v := &CounterVec{
		d:        &desc{fqName: name, help: help, typ: "counter"},
		allNames: labelNames,
		mu:       &sync.RWMutex{},
		children: map[string]*Counter{},
	}
	r.register(v)
	return v
}

// Gauge registers and returns a settable gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{d: &desc{fqName: name, help: help, typ: "gauge"}}
	r.register(g)
	return g
}

// GaugeVec registers a labeled gauge family. Children are created on first
// With and live for the registry's lifetime.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	validateLabels(name, labelNames)
	v := &GaugeVec{
		d:        &desc{fqName: name, help: help, typ: "gauge"},
		allNames: labelNames,
		children: map[string]*Gauge{},
	}
	r.register(v)
	return v
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape
// time. fn runs on the scraping goroutine and may take locks of its own;
// it must not call back into this registry.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&gaugeFunc{d: &desc{fqName: name, help: help, typ: "gauge"}, fn: fn})
}

// Histogram registers and returns a bounded-bucket histogram. buckets are
// the upper bounds (inclusive, ascending); an implicit +Inf bucket is
// always appended. The slice is copied.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	h := newHistogram(&desc{fqName: name, help: help, typ: "histogram"}, "", buckets)
	r.register(h)
	return h
}

// HistogramVec registers a labeled histogram family; every child shares
// the same bucket layout.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	validateLabels(name, labelNames)
	v := &HistogramVec{
		d:          &desc{fqName: name, help: help, typ: "histogram"},
		labelNames: labelNames,
		buckets:    checkBuckets(buckets),
		children:   map[string]*Histogram{},
	}
	r.register(v)
	return v
}

func validateLabels(name string, labelNames []string) {
	if len(labelNames) == 0 {
		panic(fmt.Sprintf("telemetry: vec metric %q declares no labels", name))
	}
	for _, l := range labelNames {
		if !nameRE.MatchString(l) {
			panic(fmt.Sprintf("telemetry: metric %q: invalid label name %q", name, l))
		}
	}
}

// ---- Counter ----

// Counter is a monotonically increasing counter. The zero value is not
// usable; create counters through a Registry (or a CounterVec).
type Counter struct {
	d      *desc
	labels string // pre-rendered {k="v",...} or ""
	n      atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.n.Add(n) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.n.Load() }

func (c *Counter) describe() *desc { return c.d }

func (c *Counter) collect(sb *strings.Builder) {
	sb.WriteString(c.d.fqName)
	sb.WriteString(c.labels)
	sb.WriteByte(' ')
	sb.WriteString(strconv.FormatUint(c.n.Load(), 10))
	sb.WriteByte('\n')
}

// CounterVec is a counter family partitioned by label values. A vec
// returned by Curry is a view with leading label values pre-bound; all
// views share one child set, and only the registered root is exposed.
type CounterVec struct {
	d        *desc
	allNames []string // the full declared label set (rendering)
	bound    []string // values pre-bound by Curry, positional prefix
	mu       *sync.RWMutex
	children map[string]*Counter
}

// With resolves (creating on first use) the child counter for the given
// label values, which — after any Curry-bound prefix — must match the
// declared label names positionally. Hot paths should resolve once and
// hold the child.
func (v *CounterVec) With(values ...string) *Counter {
	full := values
	if len(v.bound) > 0 {
		full = append(append(make([]string, 0, len(v.bound)+len(values)), v.bound...), values...)
	}
	key := childKey(v.d.fqName, v.allNames, full)
	v.mu.RLock()
	c := v.children[key]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c = v.children[key]; c == nil {
		c = &Counter{d: v.d, labels: renderLabels(v.allNames, full)}
		v.children[key] = c
	}
	return c
}

// Curry returns a view of the family with the given leading label values
// pre-bound: With on the view supplies only the remaining labels. Owners
// use it to hand a sub-family ("this index's stop rules") to a component
// that knows nothing about the outer label.
func (v *CounterVec) Curry(values ...string) *CounterVec {
	if len(v.bound)+len(values) > len(v.allNames) {
		panic(fmt.Sprintf("telemetry: metric %q: currying %d values over %d labels",
			v.d.fqName, len(v.bound)+len(values), len(v.allNames)))
	}
	nv := *v
	nv.bound = append(append(make([]string, 0, len(v.bound)+len(values)), v.bound...), values...)
	return &nv
}

// Values reports the count of every child under this view's bound
// prefix, keyed by its remaining label values (", "-joined) — a readout
// for tests and bench summaries, not a serving API.
func (v *CounterVec) Values() map[string]uint64 {
	prefix := ""
	if len(v.bound) > 0 {
		prefix = strings.Join(v.bound, labelSep) + labelSep
	}
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make(map[string]uint64, len(v.children))
	for key, c := range v.children {
		if !strings.HasPrefix(key, prefix) {
			continue
		}
		out[strings.ReplaceAll(strings.TrimPrefix(key, prefix), labelSep, ", ")] = c.Value()
	}
	return out
}

func (v *CounterVec) describe() *desc { return v.d }

func (v *CounterVec) collect(sb *strings.Builder) {
	for _, c := range v.sortedChildren() {
		c.collect(sb)
	}
}

func (v *CounterVec) sortedChildren() []*Counter {
	v.mu.RLock()
	defer v.mu.RUnlock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*Counter, len(keys))
	for i, k := range keys {
		out[i] = v.children[k]
	}
	return out
}

// ---- Gauge ----

// Gauge is a float64 that can go up and down. The zero value is not
// usable; create gauges through a Registry (or a GaugeVec).
type Gauge struct {
	d      *desc
	labels string // pre-rendered {k="v",...} or ""
	bits   atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta (CAS loop; gauges are not hot-path
// metrics in this codebase).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value reads the gauge.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) describe() *desc { return g.d }

func (g *Gauge) collect(sb *strings.Builder) {
	fmt.Fprintf(sb, "%s%s %s\n", g.d.fqName, g.labels, formatFloat(g.Value()))
}

// GaugeVec is a gauge family partitioned by label values.
type GaugeVec struct {
	d        *desc
	allNames []string
	mu       sync.RWMutex
	children map[string]*Gauge
}

// With resolves (creating on first use) the child gauge for the given label
// values, which must match the declared label names positionally. Hot paths
// should resolve once and hold the child.
func (v *GaugeVec) With(values ...string) *Gauge {
	key := childKey(v.d.fqName, v.allNames, values)
	v.mu.RLock()
	g := v.children[key]
	v.mu.RUnlock()
	if g != nil {
		return g
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if g = v.children[key]; g == nil {
		g = &Gauge{d: v.d, labels: renderLabels(v.allNames, values)}
		v.children[key] = g
	}
	return g
}

// Values reports every child's current value keyed by its label values
// (", "-joined) — a readout for tests and bench summaries.
func (v *GaugeVec) Values() map[string]float64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make(map[string]float64, len(v.children))
	for key, g := range v.children {
		out[strings.ReplaceAll(key, labelSep, ", ")] = g.Value()
	}
	return out
}

func (v *GaugeVec) describe() *desc { return v.d }

func (v *GaugeVec) collect(sb *strings.Builder) {
	v.mu.RLock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	children := make([]*Gauge, 0, len(keys))
	sort.Strings(keys)
	for _, k := range keys {
		children = append(children, v.children[k])
	}
	v.mu.RUnlock()
	for _, g := range children {
		g.collect(sb)
	}
}

type gaugeFunc struct {
	d  *desc
	fn func() float64
}

func (g *gaugeFunc) describe() *desc { return g.d }

func (g *gaugeFunc) collect(sb *strings.Builder) {
	fmt.Fprintf(sb, "%s %s\n", g.d.fqName, formatFloat(g.fn()))
}

// ---- shared helpers ----

func childKey(name string, labelNames, values []string) string {
	if len(values) != len(labelNames) {
		panic(fmt.Sprintf("telemetry: metric %q wants %d label values, got %d",
			name, len(labelNames), len(values)))
	}
	return strings.Join(values, labelSep)
}

// renderLabels pre-renders a child's {k="v",...} suffix once at creation.
func renderLabels(names, values []string) string {
	var sb strings.Builder
	sb.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(n)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(values[i]))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// escapeLabel applies the exposition-format label-value escapes.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// formatFloat renders a float the way the exposition format expects
// (shortest round-trip form; +Inf/-Inf/NaN spelled out).
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
