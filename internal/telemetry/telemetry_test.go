package telemetry

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestHistogramBucketBoundaries pins the Prometheus bucket semantics: a
// sample lands in the first bucket whose upper bound is >= the value
// (bounds are inclusive), and exposition accumulates per-bucket counts
// into the cumulative le form.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_hist", "boundary test", []float64{1, 2, 4})

	// One sample per interesting position: below the first bound, exactly
	// on each bound, between bounds, and beyond the last bound (+Inf).
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 9} {
		h.Observe(v)
	}
	if got := h.Count(); got != 7 {
		t.Fatalf("Count() = %d, want 7", got)
	}
	if got, want := h.Sum(), 0.5+1+1.5+2+3+4+9; got != want {
		t.Fatalf("Sum() = %g, want %g", got, want)
	}

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// le=1: {0.5, 1}; le=2 adds {1.5, 2}; le=4 adds {3, 4}; +Inf adds {9}.
	for _, line := range []string{
		`test_hist_bucket{le="1"} 2`,
		`test_hist_bucket{le="2"} 4`,
		`test_hist_bucket{le="4"} 6`,
		`test_hist_bucket{le="+Inf"} 7`,
		`test_hist_count 7`,
	} {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("exposition missing %q:\n%s", line, out)
		}
	}
}

func TestHistogramQuantileAndMax(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_hist", "quantile test", ExponentialBuckets(1, 2, 8))
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty Quantile = %g, want 0", got)
	}
	for i := 0; i < 100; i++ {
		h.Observe(float64(i % 10)) // 0..9, uniform
	}
	p50 := h.Quantile(0.5)
	if p50 < 2 || p50 > 8 {
		t.Errorf("p50 = %g, want within the 2..8 bucket span for uniform 0..9", p50)
	}
	if got := h.Max(); got != 16 {
		// max sample 9 lands in the (8,16] bucket.
		t.Errorf("Max() = %g, want 16 (bucket bound above 9)", got)
	}
}

// TestHistogramConcurrentObserve drives many goroutines through Observe
// and a concurrent scraper; run under -race (make race) this is the
// lock-free hot path's correctness test, and the final totals must be
// exact regardless of interleaving.
func TestHistogramConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("conc_hist", "concurrency test", []float64{1, 10, 100})
	c := r.Counter("conc_count", "concurrency counter")
	vec := r.CounterVec("conc_vec", "concurrency vec", "worker")

	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			child := vec.With("shared")
			for i := 0; i < perWorker; i++ {
				h.Observe(float64(i % 200))
				c.Inc()
				child.Inc()
			}
		}(w)
	}
	// Scrape continuously while the writers run.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			_ = r.WritePrometheus(&sb)
		}
	}()
	wg.Wait()
	<-done

	const total = workers * perWorker
	if got := h.Count(); got != total {
		t.Errorf("histogram Count = %d, want %d", got, total)
	}
	if got := c.Value(); got != total {
		t.Errorf("counter = %d, want %d", got, total)
	}
	if got := vec.With("shared").Value(); got != total {
		t.Errorf("vec child = %d, want %d", got, total)
	}
	// Bucket counts must add back up to the total.
	var sum uint64
	for i := range h.counts {
		sum += h.counts[i].Load()
	}
	if sum != total {
		t.Errorf("bucket sum = %d, want %d", sum, total)
	}
}

// TestExpositionGolden pins the full text format for one of each metric
// kind: HELP/TYPE headers, label rendering and escaping, histogram
// suffixes, registration order.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("app_requests_total", "Requests served.")
	c.Add(3)
	v := r.CounterVec("app_stops_total", "Stop rules.", "rule")
	v.With("proof").Add(2)
	v.With(`we"ird`).Inc()
	g := r.Gauge("app_temperature", "A gauge.")
	g.Set(1.5)
	r.GaugeFunc("app_records", "A computed gauge.", func() float64 { return 42 })
	h := r.Histogram("app_latency_seconds", "A histogram.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(3)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP app_requests_total Requests served.
# TYPE app_requests_total counter
app_requests_total 3
# HELP app_stops_total Stop rules.
# TYPE app_stops_total counter
app_stops_total{rule="proof"} 2
app_stops_total{rule="we\"ird"} 1
# HELP app_temperature A gauge.
# TYPE app_temperature gauge
app_temperature 1.5
# HELP app_records A computed gauge.
# TYPE app_records gauge
app_records 42
# HELP app_latency_seconds A histogram.
# TYPE app_latency_seconds histogram
app_latency_seconds_bucket{le="0.1"} 1
app_latency_seconds_bucket{le="1"} 2
app_latency_seconds_bucket{le="+Inf"} 3
app_latency_seconds_sum 3.55
app_latency_seconds_count 3
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestHandlerContentType(t *testing.T) {
	r := NewRegistry()
	r.Counter("one", "help").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != ContentType {
		t.Errorf("Content-Type = %q, want %q", ct, ContentType)
	}
	if !strings.Contains(rec.Body.String(), "one 1\n") {
		t.Errorf("body missing sample:\n%s", rec.Body.String())
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup", "first")
	defer func() {
		if recover() == nil {
			t.Fatal("expected a panic on duplicate registration")
		}
	}()
	r.Counter("dup", "second")
}

func TestGaugeAddAndInfinities(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("g", "gauge")
	g.Add(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", got)
	}
	g.Set(math.Inf(1))
	var sb strings.Builder
	_ = r.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), "g +Inf\n") {
		t.Errorf("infinity not rendered:\n%s", sb.String())
	}
}
