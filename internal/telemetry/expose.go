package telemetry

import (
	"io"
	"net/http"
	"strings"
)

// ContentType is the Prometheus text exposition content type served by
// Handler.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered metric family in the
// Prometheus text exposition format, in registration order (so scrapes
// are deterministic). It is safe to call concurrently with hot-path
// updates; values are read atomically per sample.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	metrics := append([]metric(nil), r.metrics...)
	r.mu.RUnlock()

	var sb strings.Builder
	for _, m := range metrics {
		d := m.describe()
		sb.WriteString("# HELP ")
		sb.WriteString(d.fqName)
		sb.WriteByte(' ')
		sb.WriteString(escapeHelp(d.help))
		sb.WriteByte('\n')
		sb.WriteString("# TYPE ")
		sb.WriteString(d.fqName)
		sb.WriteByte(' ')
		sb.WriteString(d.typ)
		sb.WriteByte('\n')
		m.collect(&sb)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// escapeHelp applies the exposition-format help-text escapes.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Handler serves the registry as a /metrics endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		_ = r.WritePrometheus(w)
	})
}
