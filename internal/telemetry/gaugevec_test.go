package telemetry

import (
	"strings"
	"testing"
)

func TestGaugeVecChildrenAndExposition(t *testing.T) {
	r := NewRegistry()
	v := r.GaugeVec("laminar_test_depth", "Test depth gauge.", "pe")
	v.With("Filter").Add(3)
	v.With("Filter").Add(-1)
	v.With("Transform").Set(7)

	// With returns the same child for the same label values.
	if v.With("Filter") != v.With("Filter") {
		t.Error("With created a second child for identical labels")
	}
	if got := v.With("Filter").Value(); got != 2 {
		t.Errorf("Filter = %g, want 2", got)
	}

	vals := v.Values()
	if vals["Filter"] != 2 || vals["Transform"] != 7 {
		t.Errorf("Values() = %v", vals)
	}

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	scrape := sb.String()
	for _, want := range []string{
		"# TYPE laminar_test_depth gauge",
		`laminar_test_depth{pe="Filter"} 2`,
		`laminar_test_depth{pe="Transform"} 7`,
	} {
		if !strings.Contains(scrape, want) {
			t.Errorf("exposition missing %q:\n%s", want, scrape)
		}
	}
	// Children render sorted, so scrapes are deterministic.
	if strings.Index(scrape, `pe="Filter"`) > strings.Index(scrape, `pe="Transform"`) {
		t.Error("gauge children not sorted by label key")
	}
}

func TestGaugeVecDuplicateNamePanics(t *testing.T) {
	r := NewRegistry()
	r.GaugeVec("laminar_test_dup", "first", "pe")
	defer func() {
		if recover() == nil {
			t.Error("duplicate GaugeVec registration did not panic")
		}
	}()
	r.GaugeVec("laminar_test_dup", "second", "pe")
}

func TestGaugeVecConcurrentWith(t *testing.T) {
	r := NewRegistry()
	v := r.GaugeVec("laminar_test_conc", "concurrent children", "pe")
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 500; j++ {
				v.With("shared").Add(1)
			}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	if got := v.With("shared").Value(); got != 8*500 {
		t.Errorf("concurrent adds lost updates: %g", got)
	}
}
