package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket distribution. Observe is the hot path: a
// binary search over the bucket bounds plus three atomic adds — no locks,
// no allocation. Bucket counts are stored per-bucket (not cumulative);
// exposition accumulates them into the cumulative `le` form Prometheus
// expects, and a scrape racing an Observe can at worst read a sample into
// `_count` a beat before its bucket — both values are exact the next
// scrape, which is the usual eventually-consistent contract of lock-free
// histograms.
type Histogram struct {
	d       *desc
	labels  string
	bounds  []float64 // ascending upper bounds; +Inf is implicit at the end
	counts  []atomic.Uint64
	sumBits atomic.Uint64 // float64 bits of the running sum, CAS-updated
	count   atomic.Uint64
}

func newHistogram(d *desc, labels string, buckets []float64) *Histogram {
	bounds := checkBuckets(buckets)
	return &Histogram{
		d:      d,
		labels: labels,
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// checkBuckets validates and copies a bucket layout.
func checkBuckets(buckets []float64) []float64 {
	if len(buckets) == 0 {
		panic("telemetry: histogram needs at least one bucket bound")
	}
	out := append([]float64(nil), buckets...)
	if !sort.Float64sAreSorted(out) {
		panic(fmt.Sprintf("telemetry: histogram buckets not ascending: %v", out))
	}
	return out
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	// First bound >= v: Prometheus buckets are "value <= le". The total
	// count is bumped before the bucket so a racing scrape can only
	// under-read the cumulative buckets relative to _count — the benign
	// direction the type comment documents (+Inf must never exceed
	// _count).
	i := sort.SearchFloat64s(h.bounds, v)
	h.count.Add(1)
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since t0 — the idiom for
// latency histograms.
func (h *Histogram) ObserveSince(t0 time.Time) {
	h.Observe(time.Since(t0).Seconds())
}

// Count reports the total number of samples observed.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum reports the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-quantile (q in [0,1]) from the bucket counts
// with linear interpolation inside the target bucket — the standard
// histogram_quantile estimate. Samples in the +Inf bucket clamp to the
// highest finite bound. Returns 0 with no samples. A readout for bench
// summaries and tests, not a serving API.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i := range h.counts {
		n := float64(h.counts[i].Load())
		if cum+n >= rank && n > 0 {
			if i >= len(h.bounds) { // +Inf bucket
				return h.bounds[len(h.bounds)-1]
			}
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			return lower + (h.bounds[i]-lower)*((rank-cum)/n)
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

// Max reports the upper bound of the highest non-empty bucket (the
// coarse-grained maximum a bounded histogram can know). Returns 0 with no
// samples.
func (h *Histogram) Max() float64 {
	for i := len(h.counts) - 1; i >= 0; i-- {
		if h.counts[i].Load() > 0 {
			if i >= len(h.bounds) {
				return h.bounds[len(h.bounds)-1]
			}
			return h.bounds[i]
		}
	}
	return 0
}

func (h *Histogram) describe() *desc { return h.d }

func (h *Histogram) collect(sb *strings.Builder) {
	// Cumulative le buckets, then sum and count, label-merged with any vec
	// labels this child carries.
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		writeBucket(sb, h.d.fqName, h.labels, formatFloat(bound), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	writeBucket(sb, h.d.fqName, h.labels, "+Inf", cum)
	fmt.Fprintf(sb, "%s_sum%s %s\n", h.d.fqName, h.labels, formatFloat(h.Sum()))
	fmt.Fprintf(sb, "%s_count%s %d\n", h.d.fqName, h.labels, h.count.Load())
}

// writeBucket emits one _bucket line, splicing the le label into any
// existing child label set.
func writeBucket(sb *strings.Builder, name, labels, le string, cum uint64) {
	sb.WriteString(name)
	sb.WriteString("_bucket")
	if labels == "" {
		fmt.Fprintf(sb, `{le="%s"}`, le)
	} else {
		// labels is "{...}": open it back up and append le.
		sb.WriteString(labels[:len(labels)-1])
		fmt.Fprintf(sb, `,le="%s"}`, le)
	}
	fmt.Fprintf(sb, " %d\n", cum)
}

// HistogramVec is a histogram family partitioned by label values; every
// child shares one bucket layout.
type HistogramVec struct {
	d          *desc
	labelNames []string
	buckets    []float64
	mu         sync.RWMutex
	children   map[string]*Histogram
}

// With resolves (creating on first use) the child histogram for the given
// label values. Hot paths should resolve once and hold the child.
func (v *HistogramVec) With(values ...string) *Histogram {
	key := childKey(v.d.fqName, v.labelNames, values)
	v.mu.RLock()
	h := v.children[key]
	v.mu.RUnlock()
	if h != nil {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h = v.children[key]; h == nil {
		h = newHistogram(v.d, renderLabels(v.labelNames, values), v.buckets)
		v.children[key] = h
	}
	return h
}

func (v *HistogramVec) describe() *desc { return v.d }

func (v *HistogramVec) collect(sb *strings.Builder) {
	v.mu.RLock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	children := make(map[string]*Histogram, len(v.children))
	for k, h := range v.children {
		children[k] = h
	}
	v.mu.RUnlock()
	sort.Strings(keys)
	for _, k := range keys {
		children[k].collect(sb)
	}
}

// ---- bucket layout helpers ----

// LinearBuckets returns n ascending bounds starting at start, width apart.
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExponentialBuckets returns n ascending bounds starting at start, each
// factor times the previous.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LatencyBuckets is the shared layout for request/operation latency
// histograms in seconds: 100µs to ~13s, doubling — wide enough for an
// in-process search and a WAN-simulated save alike.
func LatencyBuckets() []float64 { return ExponentialBuckets(0.0001, 2, 18) }

// CountBuckets is the shared layout for small-count histograms (shards
// probed, vectors scanned): powers of two from 1 to 65536.
func CountBuckets() []float64 { return ExponentialBuckets(1, 2, 17) }
