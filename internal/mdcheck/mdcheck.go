// Package mdcheck is the documentation linter behind `make docs`: it walks
// a tree for Markdown files and verifies that relative links point at files
// that exist and that fragment links (`file.md#section`, `#section`)
// resolve to a real heading anchor, using GitHub's heading-slug rules. Docs
// that drift from the code — a renamed file, a deleted section — fail the
// build instead of rotting silently.
package mdcheck

import (
	"fmt"
	"io/fs"
	"net/url"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Problem is one broken reference found in a Markdown file.
type Problem struct {
	File    string // path of the file containing the problem
	Line    int    // 1-based line number
	Message string
}

func (p Problem) String() string {
	return fmt.Sprintf("%s:%d: %s", p.File, p.Line, p.Message)
}

// linkRe matches inline Markdown links [text](target). Images share the
// syntax with a leading '!', which the pattern also accepts.
var linkRe = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// codeSpanRe matches inline code spans; their content is rendered literally
// (a `[text](path.md)` span documents the syntax, it is not a link).
var codeSpanRe = regexp.MustCompile("`[^`]*`")

// headingRe matches ATX headings (# through ######).
var headingRe = regexp.MustCompile(`^(#{1,6})\s+(.*?)\s*#*\s*$`)

// slug converts a heading to its GitHub anchor: lowercase, spaces to
// hyphens, punctuation dropped (hyphens and underscores survive). Inline
// code/emphasis markers are stripped first.
func slug(heading string) string {
	h := strings.NewReplacer("`", "", "*", "").Replace(heading)
	var sb strings.Builder
	for _, r := range strings.ToLower(strings.TrimSpace(h)) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '-' || r == '_':
			sb.WriteRune(r)
		case r == ' ':
			sb.WriteByte('-')
		}
	}
	return sb.String()
}

// doc is one parsed Markdown file: its anchors and the links to verify.
type doc struct {
	path    string
	anchors map[string]bool
	links   []link
}

type link struct {
	target string
	line   int
}

// parse reads a Markdown file, skipping fenced code blocks so example
// snippets are neither headings nor links.
func parse(path string) (*doc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	d := &doc{path: path, anchors: map[string]bool{}}
	fence := "" // the marker that opened the current fenced block, if any
	seen := map[string]int{}
	for i, line := range strings.Split(string(data), "\n") {
		trimmed := strings.TrimSpace(line)
		if fence == "" {
			if strings.HasPrefix(trimmed, "```") {
				fence = "```"
				continue
			}
			if strings.HasPrefix(trimmed, "~~~") {
				fence = "~~~"
				continue
			}
		} else {
			// Only the marker that opened the block closes it: a ``` line
			// inside a ~~~ block is content (the standard way to show
			// fenced examples), not a closer.
			if strings.HasPrefix(trimmed, fence) {
				fence = ""
			}
			continue
		}
		if m := headingRe.FindStringSubmatch(line); m != nil {
			s := slug(m[2])
			// GitHub de-duplicates repeated headings with -1, -2, ...
			if n := seen[s]; n > 0 {
				d.anchors[fmt.Sprintf("%s-%d", s, n)] = true
			} else {
				d.anchors[s] = true
			}
			seen[s]++
			continue
		}
		// Strip inline code spans before link extraction (headings keep
		// them: their text contributes to the anchor, which slug handles).
		for _, m := range linkRe.FindAllStringSubmatch(codeSpanRe.ReplaceAllString(line, ""), -1) {
			d.links = append(d.links, link{target: m[1], line: i + 1})
		}
	}
	return d, nil
}

// Check walks root for .md files and returns every broken relative link or
// unresolved heading anchor, sorted by file and line.
func Check(root string) ([]Problem, error) {
	docs := map[string]*doc{} // keyed by cleaned path
	var paths []string
	err := filepath.WalkDir(root, func(path string, e fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if e.IsDir() {
			name := e.Name()
			if name == ".git" || name == "node_modules" || name == "vendor" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.EqualFold(filepath.Ext(path), ".md") {
			paths = append(paths, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, p := range paths {
		d, err := parse(p)
		if err != nil {
			return nil, err
		}
		docs[filepath.Clean(p)] = d
	}

	var probs []Problem
	for _, p := range paths {
		d := docs[filepath.Clean(p)]
		for _, l := range d.links {
			if prob := checkLink(docs, d, l); prob != "" {
				probs = append(probs, Problem{File: p, Line: l.line, Message: prob})
			}
		}
	}
	sort.Slice(probs, func(i, j int) bool {
		if probs[i].File != probs[j].File {
			return probs[i].File < probs[j].File
		}
		return probs[i].Line < probs[j].Line
	})
	return probs, nil
}

// checkLink validates one link target against the parsed corpus, returning
// a problem description or "" when the link is fine. External schemes and
// absolute paths are out of scope — only relative references can rot with
// the repository.
func checkLink(docs map[string]*doc, from *doc, l link) string {
	target := l.target
	if u, err := url.Parse(target); err == nil && u.Scheme != "" {
		return "" // http(s), mailto, ...
	}
	if strings.HasPrefix(target, "/") {
		return "" // site-absolute: not resolvable inside the repo
	}
	path, frag, _ := strings.Cut(target, "#")
	if dec, err := url.PathUnescape(path); err == nil {
		path = dec
	}
	resolved := filepath.Clean(from.path)
	if path != "" {
		resolved = filepath.Clean(filepath.Join(filepath.Dir(from.path), path))
		if _, err := os.Stat(resolved); err != nil {
			return fmt.Sprintf("broken link %q: %s does not exist", target, resolved)
		}
	}
	if frag == "" {
		return ""
	}
	td, ok := docs[resolved]
	if !ok {
		if path == "" || strings.EqualFold(filepath.Ext(resolved), ".md") {
			return fmt.Sprintf("broken anchor %q: %s was not scanned", target, resolved)
		}
		return "" // fragment into a non-Markdown file: out of scope
	}
	if !td.anchors[frag] {
		return fmt.Sprintf("broken anchor %q: no heading %q in %s", target, frag, resolved)
	}
	return ""
}
