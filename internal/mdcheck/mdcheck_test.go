package mdcheck

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, dir, name, content string) {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestSlug(t *testing.T) {
	cases := map[string]string{
		"Quickstart":             "quickstart",
		"Flat vs Clustered":      "flat-vs-clustered",
		"The `-index` flag":      "the--index-flag",
		"Recall@10 (hard cases)": "recall10-hard-cases",
		"snapshot_format notes":  "snapshot_format-notes", // GitHub keeps underscores
	}
	for in, want := range cases {
		if got := slug(in); got != want {
			t.Errorf("slug(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCheckCleanTree(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "README.md", `# Top

See [the docs](docs/guide.md) and [section two](docs/guide.md#second-part)
or jump [within](#local-bit). External [ok](https://example.com/missing).

## Local bit
text
`)
	writeFile(t, dir, "docs/guide.md", `# Guide

## Second part

Back to [readme](../README.md).
`)
	probs, err := Check(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(probs) != 0 {
		t.Fatalf("clean tree reported problems: %v", probs)
	}
}

func TestCheckFindsBreakage(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "README.md", `# Top

[gone](docs/missing.md)
[bad anchor](guide.md#nope)
[bad local](#nothing-here)
`)
	writeFile(t, dir, "guide.md", "# Guide\n")
	probs, err := Check(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(probs) != 3 {
		t.Fatalf("want 3 problems, got %v", probs)
	}
	for i, want := range []string{"missing.md", "nope", "nothing-here"} {
		if !strings.Contains(probs[i].Message, want) {
			t.Errorf("problem %d = %q, want mention of %q", i, probs[i].Message, want)
		}
		if probs[i].Line == 0 {
			t.Errorf("problem %d has no line number", i)
		}
	}
}

func TestCodeFencesAreIgnored(t *testing.T) {
	dir := t.TempDir()
	fence := "```"
	writeFile(t, dir, "README.md",
		"# Top\n\n"+fence+"\n[not a link](nowhere.md)\n# not a heading\n"+fence+"\n\n[real](#top)\n")
	probs, err := Check(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(probs) != 0 {
		t.Fatalf("fenced content was checked: %v", probs)
	}
}

func TestInlineCodeSpansAreIgnored(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "README.md",
		"# Top\n\nUse the `[text](nowhere.md)` form for links.\n\n[real broken](gone.md)\n")
	probs, err := Check(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(probs) != 1 || !strings.Contains(probs[0].Message, "gone.md") {
		t.Fatalf("inline code span handling: %v", probs)
	}
}

func TestMixedFenceMarkersDoNotDesync(t *testing.T) {
	dir := t.TempDir()
	// A tilde block showing a backtick fence as content: the inner ```
	// must not close the block, and linting must resume after ~~~.
	writeFile(t, dir, "README.md",
		"# Top\n\n~~~\n```\n[not a link](nowhere.md)\n```\n~~~\n\n[bad](missing.md)\n")
	probs, err := Check(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(probs) != 1 || !strings.Contains(probs[0].Message, "missing.md") {
		t.Fatalf("fence desync: %v", probs)
	}
}

func TestDuplicateHeadingsGetSuffixedAnchors(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "README.md", `# Top

## Usage
a
## Usage
b

[first](#usage) [second](#usage-1)
`)
	probs, err := Check(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(probs) != 0 {
		t.Fatalf("duplicate-heading anchors broke: %v", probs)
	}
}
