// Package dataset generates the deterministic synthetic corpora that stand
// in for the paper's evaluation datasets: CoSQA and CSN (CodeSearchNet) for
// zero-shot text-to-code search (Table 6), and a CodeNet-style Python
// problem/solution corpus for zero-shot clone detection (Table 7). The
// generators are seeded, so every run of the benchmark harness evaluates the
// exact same corpora.
package dataset

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"laminar/internal/embed"
)

// SearchPair is one (query, code) evaluation item: the query must retrieve
// the code at Index within the corpus.
type SearchPair struct {
	Query string
	Index int
}

// SearchCorpus is a code-search evaluation set.
type SearchCorpus struct {
	Name    string
	Codes   []string // the retrieval corpus
	Docs    []string // the docstring of each code (for summarize tests)
	Queries []SearchPair
}

// task is a hand-curated (docstring, code) template; the generators derive
// renamed corpus variants and paraphrased queries from these.
type task struct {
	name string // snake_case function name
	doc  string // canonical docstring (vocabulary the models may align)
	code string // python body, {fn} placeholder for the function name
}

// taskBank covers the everyday Python tasks that CoSQA/CSN queries ask for.
var taskBank = []task{
	{"check_prime", "check if a number is prime",
		"def {fn}(num):\n    if num < 2:\n        return False\n    return all(num % i != 0 for i in range(2, num))"},
	{"check_even", "check if a number is even",
		"def {fn}(num):\n    return num % 2 == 0"},
	{"check_palindrome", "check if a string is a palindrome",
		"def {fn}(text):\n    cleaned = text.lower().strip()\n    return cleaned == cleaned[::-1]"},
	{"reverse_string", "reverse a string",
		"def {fn}(text):\n    out = ''\n    for ch in text:\n        out = ch + out\n    return out"},
	{"reverse_list", "reverse the elements of a list",
		"def {fn}(items):\n    result = []\n    for x in items:\n        result.insert(0, x)\n    return result"},
	{"count_words", "count the words in a string",
		"def {fn}(text):\n    return len(text.split())"},
	{"count_vowel", "count the vowel letters in a string",
		"def {fn}(text):\n    total = 0\n    for ch in text.lower():\n        if ch in 'aeiou':\n            total += 1\n    return total"},
	{"count_lines_file", "count the lines in a file",
		"def {fn}(path):\n    f = open(path)\n    lines = f.readlines()\n    f.close()\n    return len(lines)"},
	{"calculate_factorial", "calculate the factorial of a number",
		"def {fn}(n):\n    result = 1\n    for i in range(2, n + 1):\n        result *= i\n    return result"},
	{"calculate_fibonacci", "calculate the fibonacci sequence up to n",
		"def {fn}(n):\n    a, b = 0, 1\n    seq = []\n    while a < n:\n        seq.append(a)\n        a, b = b, a + b\n    return seq"},
	{"calculate_average", "calculate the average of a list of numbers",
		"def {fn}(numbers):\n    return sum(numbers) / len(numbers)"},
	{"calculate_gcd", "calculate the greatest common divisor of two numbers",
		"def {fn}(a, b):\n    while b:\n        a, b = b, a % b\n    return a"},
	{"sum_list", "sum the elements of a list",
		"def {fn}(items):\n    total = 0\n    for x in items:\n        total += x\n    return total"},
	{"sum_digits", "sum the digits of a number",
		"def {fn}(num):\n    total = 0\n    while num > 0:\n        total += num % 10\n        num //= 10\n    return total"},
	{"find_max", "find the max element in a list",
		"def {fn}(items):\n    best = items[0]\n    for x in items:\n        if x > best:\n            best = x\n    return best"},
	{"find_min", "find the min element in a list",
		"def {fn}(items):\n    best = items[0]\n    for x in items:\n        if x < best:\n            best = x\n    return best"},
	{"find_duplicate", "find duplicate elements in a list",
		"def {fn}(items):\n    seen = set()\n    dups = []\n    for x in items:\n        if x in seen:\n            dups.append(x)\n        seen.add(x)\n    return dups"},
	{"find_longest_word", "find the longest word in a string",
		"def {fn}(text):\n    words = text.split()\n    return max(words, key=len)"},
	{"find_common", "find the common elements of two lists",
		"def {fn}(a, b):\n    return [x for x in a if x in b]"},
	{"sort_ascending", "sort a list in ascending order",
		"def {fn}(items):\n    out = list(items)\n    out.sort()\n    return out"},
	{"sort_descending", "sort a list in descending order",
		"def {fn}(items):\n    return sorted(items, reverse=True)"},
	{"sort_dict_value", "sort a dict by its element values",
		"def {fn}(d):\n    return sorted(d.items(), key=lambda kv: kv[1])"},
	{"convert_celsius", "convert celsius temperature to fahrenheit",
		"def {fn}(celsius):\n    return celsius * 9 / 5 + 32"},
	{"convert_upper", "convert a string to upper case",
		"def {fn}(text):\n    return text.upper()"},
	{"convert_int_string", "convert a number to a string",
		"def {fn}(num):\n    return str(num)"},
	{"convert_list_string", "combine a list of word into a string",
		"def {fn}(words):\n    return ' '.join(words)"},
	{"delete_duplicate", "delete duplicate elements keeping distinct values",
		"def {fn}(items):\n    seen = set()\n    out = []\n    for x in items:\n        if x not in seen:\n            seen.add(x)\n            out.append(x)\n    return out"},
	{"delete_space", "delete the space characters from a string",
		"def {fn}(text):\n    return text.replace(' ', '')"},
	{"split_string", "split a string into a list of word",
		"def {fn}(text):\n    return text.split()"},
	{"split_chunks", "split a list into chunks of size n",
		"def {fn}(items, n):\n    return [items[i:i + n] for i in range(0, len(items), n)]"},
	{"combine_dicts", "combine two dict into one",
		"def {fn}(a, b):\n    out = dict(a)\n    out.update(b)\n    return out"},
	{"read_file", "read the contents of a file",
		"def {fn}(path):\n    f = open(path)\n    data = f.read()\n    f.close()\n    return data"},
	{"read_json_file", "read a json file into a dict",
		"def {fn}(path):\n    import json\n    f = open(path)\n    data = json.loads(f.read())\n    f.close()\n    return data"},
	{"write_file", "write a string to a file",
		"def {fn}(path, text):\n    f = open(path, 'w')\n    f.write(text)\n    f.close()"},
	{"print_pattern", "print a triangle pattern of stars",
		"def {fn}(rows):\n    for i in range(1, rows + 1):\n        print('*' * i)"},
	{"generate_random_number", "generate a random number in a range",
		"def {fn}(lo, hi):\n    import random\n    return random.randint(lo, hi)"},
	{"generate_password", "generate a random password string",
		"def {fn}(length):\n    import random\n    import string\n    chars = string.ascii_lowercase + string.digits\n    return ''.join(random.choice(chars) for _ in range(length))"},
	{"get_first_element", "get the first element of a list",
		"def {fn}(items):\n    return items[0]"},
	{"get_last_element", "get the last element of a list",
		"def {fn}(items):\n    return items[-1]"},
	{"get_dict_keys", "get the keys of a dict as a list",
		"def {fn}(d):\n    return list(d.keys())"},
	{"select_even", "select the even numbers from a list",
		"def {fn}(numbers):\n    return [x for x in numbers if x % 2 == 0]"},
	{"select_positive", "select the positive numbers from a list",
		"def {fn}(numbers):\n    return [x for x in numbers if x > 0]"},
	{"count_frequency", "count the frequency of each word in a string",
		"def {fn}(text):\n    counts = {}\n    for word in text.split():\n        counts[word] = counts.get(word, 0) + 1\n    return counts"},
	{"check_anagram", "check if two string are anagrams",
		"def {fn}(a, b):\n    return sorted(a) == sorted(b)"},
	{"calculate_power", "calculate a number raised to a power",
		"def {fn}(base, exp):\n    result = 1\n    for _ in range(exp):\n        result *= base\n    return result"},
	{"flatten_nested", "flatten a nested list",
		"def {fn}(items):\n    out = []\n    for x in items:\n        if isinstance(x, list):\n            out.extend({fn}(x))\n        else:\n            out.append(x)\n    return out"},
	{"check_empty", "check if a list is empty",
		"def {fn}(items):\n    return len(items) == 0"},
	{"swap_case", "convert upper case letters to lower case and back",
		"def {fn}(text):\n    out = ''\n    for ch in text:\n        if ch.isalpha():\n            out += ch.lower() if ch.isupper() else ch.upper()\n        else:\n            out += ch\n    return out"},
	{"merge_sorted", "combine two sorted lists into one sorted list",
		"def {fn}(a, b):\n    out = []\n    i = j = 0\n    while i < len(a) and j < len(b):\n        if a[i] <= b[j]:\n            out.append(a[i])\n            i += 1\n        else:\n            out.append(b[j])\n            j += 1\n    out.extend(a[i:])\n    out.extend(b[j:])\n    return out"},
	{"binary_search", "find the index of a value in a sorted list",
		"def {fn}(items, target):\n    lo, hi = 0, len(items) - 1\n    while lo <= hi:\n        mid = (lo + hi) // 2\n        if items[mid] == target:\n            return mid\n        if items[mid] < target:\n            lo = mid + 1\n        else:\n            hi = mid - 1\n    return -1"},
}

// inverseLexicon maps canonical code-domain words to their NL paraphrases
// (derived from embed.CrossModalLexicon).
var inverseLexicon = func() map[string][]string {
	inv := map[string][]string{}
	for para, canon := range embed.CrossModalLexicon {
		if para == canon {
			continue
		}
		inv[canon] = append(inv[canon], para)
	}
	// Map iteration order randomizes per process; without this sort the
	// paraphrase draws differ between runs and the "exact same corpora"
	// promise in the package doc silently breaks across processes.
	for _, alts := range inv {
		sort.Strings(alts)
	}
	return inv
}()

// webSynonyms are paraphrases OUTSIDE the cross-modal lexicon: web queries
// use vocabulary that even the AdvTest fine-tuning never aligned, which is
// why the fine-tuned model scores lower on CoSQA than on CSN in Table 6.
var webSynonyms = map[string][]string{
	"check": {"ascertain", "figure out"}, "calculate": {"crunch", "work out"},
	"get": {"pull"}, "generate": {"whip up"}, "convert": {"morph"},
	"delete": {"expunge"}, "combine": {"fuse"}, "find": {"spot"},
	"sort": {"organise"}, "count": {"tot up"}, "reverse": {"backwards"},
	"print": {"echo out"}, "read": {"ingest"}, "write": {"dump"},
	"select": {"cherry pick"}, "sum": {"aggregate"}, "split": {"chop"},
	"string": {"wording"}, "list": {"bunch"}, "dict": {"hashmap"},
	"file": {"doc on disk"}, "word": {"vocab"}, "number": {"figure"},
	"max": {"top one"}, "min": {"bottom one"}, "average": {"typical value"},
	"prime": {"indivisible"}, "palindrome": {"mirrored"}, "empty": {"bare"},
	"duplicate": {"repeated twice"}, "vowel": {"aeiou"},
}

// paraphrase rewrites canonical doc words: with probability pIn it uses an
// in-lexicon paraphrase (which alignment-equipped models can undo), and
// with probability pOut an out-of-lexicon web synonym (which no model can).
func paraphrase(rng *rand.Rand, doc string, pIn, pOut float64) string {
	words := strings.Fields(doc)
	for i, w := range words {
		r := rng.Float64()
		if r < pOut {
			if alts, ok := webSynonyms[w]; ok {
				words[i] = alts[rng.Intn(len(alts))]
				continue
			}
		}
		if r < pOut+pIn {
			if alts, ok := inverseLexicon[w]; ok {
				words[i] = alts[rng.Intn(len(alts))]
			}
		}
	}
	return strings.Join(words, " ")
}

// renameIdentifiers derives a corpus variant by renaming the function and
// common argument identifiers.
func renameIdentifiers(rng *rand.Rand, code string, variant int) string {
	if variant == 0 {
		return code
	}
	prefixes := []string{"my_", "do_", "impl_", "run_", "solve_"}
	argRenames := map[string]string{
		"items": "values", "text": "s", "num": "n", "numbers": "nums",
		"path": "filename", "words": "tokens",
	}
	out := code
	pre := prefixes[rng.Intn(len(prefixes))]
	out = strings.ReplaceAll(out, "{fn}", pre+"{fn}")
	if variant > 1 {
		for from, to := range argRenames {
			out = replaceIdent(out, from, to)
		}
	}
	return out
}

// replaceIdent replaces whole-word identifier occurrences.
func replaceIdent(code, from, to string) string {
	var sb strings.Builder
	i := 0
	for i < len(code) {
		j := strings.Index(code[i:], from)
		if j < 0 {
			sb.WriteString(code[i:])
			break
		}
		j += i
		beforeOK := j == 0 || !isIdentChar(code[j-1])
		after := j + len(from)
		afterOK := after >= len(code) || !isIdentChar(code[after])
		if beforeOK && afterOK {
			sb.WriteString(code[i:j])
			sb.WriteString(to)
			i = after
		} else {
			sb.WriteString(code[i : j+1])
			i = j + 1
		}
	}
	return sb.String()
}

func isIdentChar(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

// noiseWords pad CoSQA-style queries the way web queries carry extra intent
// words ("example", "best way", ...).
var noiseWords = []string{
	"example", "best way", "simple", "fast", "code", "snippet", "one line",
	"without library", "easy", "function", "beginner", "efficient",
}

// GenCSN builds a CSN-style corpus: queries are paraphrased docstrings with
// in-lexicon substitutions only (CodeSearchNet queries come from curated
// docstrings, inside the vocabulary fine-tuning covers).
func GenCSN(seed int64, queriesPerTask int) *SearchCorpus {
	return genSearch("CSN", seed, queriesPerTask, 0.55, 0.0, false)
}

// GenCoSQA builds a CoSQA-style corpus: web-style queries mixing in-lexicon
// paraphrases with out-of-lexicon web vocabulary and intent words. The
// out-of-lexicon share is what the fine-tuned model cannot bridge, dropping
// its CoSQA MRR below CSN as in Table 6.
func GenCoSQA(seed int64, queriesPerTask int) *SearchCorpus {
	return genSearch("CosQA", seed, queriesPerTask, 0.15, 0.30, true)
}

func genSearch(name string, seed int64, queriesPerTask int, paraIn, paraOut float64, webStyle bool) *SearchCorpus {
	rng := rand.New(rand.NewSource(seed))
	c := &SearchCorpus{Name: name}
	// corpus: every task in 3 identifier variants → task i occupies indices
	// 3i..3i+2; the canonical variant (offset 0) is each query's target.
	const variants = 3
	for _, tk := range taskBank {
		for v := 0; v < variants; v++ {
			code := renameIdentifiers(rng, tk.code, v)
			code = strings.ReplaceAll(code, "{fn}", tk.name)
			doc := tk.doc
			c.Codes = append(c.Codes, code)
			c.Docs = append(c.Docs, doc)
		}
	}
	for ti, tk := range taskBank {
		for q := 0; q < queriesPerTask; q++ {
			query := paraphrase(rng, tk.doc, paraIn, paraOut)
			if webStyle {
				switch rng.Intn(3) {
				case 0:
					query = "how to " + query + " in python"
				case 1:
					query = "python " + query
				default:
					query = query + " python"
				}
				if rng.Float64() < 0.6 {
					query += " " + noiseWords[rng.Intn(len(noiseWords))]
				}
			}
			c.Queries = append(c.Queries, SearchPair{Query: query, Index: ti * variants})
		}
	}
	return c
}

// RelevantSet returns the ground-truth corpus indices for a query: all
// variants of the query's task count as relevant.
func (c *SearchCorpus) RelevantSet(q SearchPair) map[int]bool {
	const variants = 3
	base := (q.Index / variants) * variants
	rel := map[int]bool{}
	for v := 0; v < variants; v++ {
		rel[base+v] = true
	}
	return rel
}

// TaskCount reports how many distinct tasks the corpus covers.
func (c *SearchCorpus) TaskCount() int { return len(taskBank) }

// String summarizes the corpus.
func (c *SearchCorpus) String() string {
	return fmt.Sprintf("%s: %d codes, %d queries", c.Name, len(c.Codes), len(c.Queries))
}
