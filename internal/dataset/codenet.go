package dataset

import (
	"fmt"
	"math/rand"
	"strings"
)

// CloneSnippet is one solution in the CodeNet-style corpus.
type CloneSnippet struct {
	Problem int // problem id — snippets sharing it are clones
	Code    string
}

// CloneQuery is a partial-code query (the ReACC zero-shot clone detection
// setup, Section 6.2.2): the prefix of a held-out solution must retrieve
// the other solutions of the same problem.
type CloneQuery struct {
	Problem int
	Partial string
}

// CloneCorpus is a clone-detection evaluation set.
type CloneCorpus struct {
	Snippets []CloneSnippet
	Queries  []CloneQuery
}

// approach is one algorithmic strategy for a problem; each problem has
// several, and each approach is rendered under multiple identifier styles.
type approach struct {
	lines []string // body lines with {v0} {v1} {fn} placeholders
}

// problemSpec defines a CodeNet-style problem.
type problemSpec struct {
	fnBase     string
	approaches []approach
}

// cloneProblems are the generated problems. They reuse the same low-level
// vocabulary (loops, accumulators, conditionals) so cross-problem snippets
// are lexically confusable — that is what drives absolute scores down, as
// in CodeNet where millions of solutions share surface forms.
var cloneProblems = func() []problemSpec {
	// Parameterized families: each family instantiates several problems
	// differing in operation and constant, with two approaches each
	// (loop-based and builtin/comprehension-based).
	type fam struct {
		name      string
		loopBody  string
		builtin   string
		constants []string
	}
	families := []fam{
		{
			name:      "sum_multiples",
			loopBody:  "    total = 0\n    for {v0} in range(n):\n        if {v0} % {C} == 0:\n            total += {v0}\n    return total",
			builtin:   "    return sum({v0} for {v0} in range(n) if {v0} % {C} == 0)",
			constants: []string{"3", "5", "7", "4", "6", "9", "11", "13"},
		},
		{
			name:      "count_divisors",
			loopBody:  "    cnt = 0\n    for {v0} in range(1, n + 1):\n        if n % {v0} == {C}:\n            cnt += 1\n    return cnt",
			builtin:   "    return len([{v0} for {v0} in range(1, n + 1) if n % {v0} == {C}])",
			constants: []string{"0"},
		},
		{
			name:      "power_mod",
			loopBody:  "    result = 1\n    for {v0} in range(k):\n        result = result * n % {C}\n    return result",
			builtin:   "    return pow(n, k, {C})",
			constants: []string{"1000000007", "998244353", "97", "13", "31", "63"},
		},
		{
			name:      "max_window",
			loopBody:  "    best = 0\n    for {v0} in range(len(a) - {C} + 1):\n        cur = sum(a[{v0}:{v0} + {C}])\n        if cur > best:\n            best = cur\n    return best",
			builtin:   "    return max(sum(a[{v0}:{v0} + {C}]) for {v0} in range(len(a) - {C} + 1))",
			constants: []string{"2", "3", "5"},
		},
		{
			name:      "digit_root",
			loopBody:  "    while n >= {C}:\n        s = 0\n        while n > 0:\n            s += n % 10\n            n //= 10\n        n = s\n    return n",
			builtin:   "    return 1 + (n - 1) % 9 if n else 0  # {C}",
			constants: []string{"10"},
		},
		{
			name:      "collatz_steps",
			loopBody:  "    steps = 0\n    while n != 1:\n        if n % 2 == 0:\n            n //= 2\n        else:\n            n = {C} * n + 1\n        steps += 1\n    return steps",
			builtin:   "    steps = 0\n    while n > 1:\n        n = n // 2 if n % 2 == 0 else {C} * n + 1\n        steps += 1\n    return steps",
			constants: []string{"3"},
		},
		{
			name:      "triangle_number",
			loopBody:  "    total = 0\n    for {v0} in range(1, n + 1):\n        total += {v0} ** {C}\n    return total",
			builtin:   "    return sum({v0} ** {C} for {v0} in range(1, n + 1))",
			constants: []string{"1", "2", "3", "4", "5"},
		},
		{
			name:      "count_pairs",
			loopBody:  "    cnt = 0\n    for {v0} in range(len(a)):\n        for {v1} in range({v0} + 1, len(a)):\n            if a[{v0}] + a[{v1}] == {C}:\n                cnt += 1\n    return cnt",
			builtin:   "    return sum(1 for {v0} in range(len(a)) for {v1} in range({v0} + 1, len(a)) if a[{v0}] + a[{v1}] == {C})",
			constants: []string{"0", "10", "100", "7", "50", "42"},
		},
	}
	var specs []problemSpec
	for _, f := range families {
		for _, c := range f.constants {
			specs = append(specs, problemSpec{
				fnBase: fmt.Sprintf("%s_%s", f.name, sanitizeConst(c)),
				approaches: []approach{
					{lines: strings.Split(strings.ReplaceAll(f.loopBody, "{C}", c), "\n")},
					{lines: strings.Split(strings.ReplaceAll(f.builtin, "{C}", c), "\n")},
				},
			})
		}
	}
	return specs
}()

func sanitizeConst(c string) string {
	return strings.NewReplacer("-", "m", ".", "_").Replace(c)
}

// identStyles are renaming schemes applied per snippet.
var identStyles = [][2]string{
	{"i", "j"}, {"x", "y"}, {"idx", "jdx"}, {"a1", "b1"}, {"p", "q"},
}

// fnStyles rename the solution entry point.
var fnStyles = []string{"solve", "main_logic", "answer", "calc", "f"}

// heldOutStyles are identifier schemes reserved for queries: no corpus
// snippet uses them, so queries never match the corpus verbatim.
var heldOutStyles = [][2]string{
	{"val", "pos"}, {"aa", "bb"}, {"left", "right"}, {"u", "w"},
}

// queryFnNames are entry-point names reserved for queries.
var queryFnNames = []string{"submission", "attempt", "entry", "prog"}

// cutDenoms vary how much of the held-out solution each query keeps
// (1/denom of the lines) — shorter prefixes are harder, as partial code in
// the ReACC evaluation.
var cutDenoms = []int{3, 2, 4, 3}

// GenCodeNet builds the clone-detection corpus: for every problem,
// `solutionsPer` snippets (cycling approaches × identifier styles), plus
// four partial-code queries per problem derived from held-out renderings
// (unseen identifier styles and entry-point names).
func GenCodeNet(seed int64, solutionsPer int) *CloneCorpus {
	return GenCodeNetQueries(seed, solutionsPer, 4)
}

// GenCodeNetQueries is GenCodeNet with an explicit per-problem query count
// (capped at the number of held-out styles).
func GenCodeNetQueries(seed int64, solutionsPer, queriesPer int) *CloneCorpus {
	rng := rand.New(rand.NewSource(seed))
	if queriesPer > len(heldOutStyles) {
		queriesPer = len(heldOutStyles)
	}
	c := &CloneCorpus{}
	for pid, spec := range cloneProblems {
		for s := 0; s < solutionsPer; s++ {
			ap := spec.approaches[s%len(spec.approaches)]
			style := identStyles[(s/len(spec.approaches))%len(identStyles)]
			fn := fnStyles[s%len(fnStyles)]
			code := renderSolution(spec, ap, fn, style, rng)
			c.Snippets = append(c.Snippets, CloneSnippet{Problem: pid, Code: code})
		}
		for q := 0; q < queriesPer; q++ {
			ap := spec.approaches[(pid+q)%len(spec.approaches)]
			full := renderSolution(spec, ap, queryFnNames[q], heldOutStyles[q], rng)
			lines := strings.Split(full, "\n")
			cut := len(lines)/cutDenoms[q] + 1
			if cut < 2 {
				cut = 2
			}
			partial := strings.Join(lines[:cut], "\n")
			c.Queries = append(c.Queries, CloneQuery{Problem: pid, Partial: partial})
		}
	}
	return c
}

func renderSolution(spec problemSpec, ap approach, fn string, style [2]string, rng *rand.Rand) string {
	header := fmt.Sprintf("def %s(n, a=None, k=2):", fn)
	body := strings.Join(ap.lines, "\n")
	body = strings.ReplaceAll(body, "{v0}", style[0])
	body = strings.ReplaceAll(body, "{v1}", style[1])
	body = strings.ReplaceAll(body, "{fn}", fn)
	// Occasional boilerplate IO wrapper, as competitive submissions carry.
	if rng.Float64() < 0.5 {
		return header + "\n" + body + "\n\nn = int(input())\nprint(" + fn + "(n))"
	}
	return header + "\n" + body
}

// RelevantSet returns the corpus indices of all clones for a query.
func (c *CloneCorpus) RelevantSet(q CloneQuery) map[int]bool {
	rel := map[int]bool{}
	for i, s := range c.Snippets {
		if s.Problem == q.Problem {
			rel[i] = true
		}
	}
	return rel
}

// String summarizes the corpus.
func (c *CloneCorpus) String() string {
	return fmt.Sprintf("CodeNet-style: %d problems, %d snippets, %d queries",
		len(cloneProblems), len(c.Snippets), len(c.Queries))
}
