package dataset

import (
	"strings"
	"testing"
)

func TestCSNDeterministic(t *testing.T) {
	a := GenCSN(7, 2)
	b := GenCSN(7, 2)
	if len(a.Codes) != len(b.Codes) || len(a.Queries) != len(b.Queries) {
		t.Fatal("sizes differ across runs")
	}
	for i := range a.Codes {
		if a.Codes[i] != b.Codes[i] {
			t.Fatalf("code %d differs", i)
		}
	}
	for i := range a.Queries {
		if a.Queries[i] != b.Queries[i] {
			t.Fatalf("query %d differs", i)
		}
	}
	c := GenCSN(8, 2)
	same := true
	for i := range a.Queries {
		if a.Queries[i].Query != c.Queries[i].Query {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should paraphrase differently")
	}
}

// TestCSNStableAcrossProcesses pins concrete query text. In-process
// equality (above) cannot catch map-iteration-order dependence — the
// inverseLexicon inversion once ordered its paraphrase lists by map
// iteration, so every *process* drew a different corpus while this
// suite stayed green. A golden string fails in any process that drifts.
func TestCSNStableAcrossProcesses(t *testing.T) {
	c := GenCSN(61, 1)
	if got, want := c.Queries[4].Query, "reverse the elements of a list"; got != want {
		t.Errorf("GenCSN(61,1).Queries[4] = %q, want %q — corpus generation is no longer process-deterministic (or the generator changed; re-pin the goldens here and in embed's rerank ablation)", got, want)
	}
}

func TestCorpusShape(t *testing.T) {
	c := GenCSN(1, 3)
	if len(c.Codes) != c.TaskCount()*3 {
		t.Errorf("codes: %d, tasks: %d", len(c.Codes), c.TaskCount())
	}
	if len(c.Queries) != c.TaskCount()*3 {
		t.Errorf("queries: %d", len(c.Queries))
	}
	if len(c.Docs) != len(c.Codes) {
		t.Errorf("docs: %d", len(c.Docs))
	}
	// every query's relevant set covers its 3 variants
	for _, q := range c.Queries {
		rel := c.RelevantSet(q)
		if len(rel) != 3 || !rel[q.Index] {
			t.Fatalf("relevant set %v for query index %d", rel, q.Index)
		}
	}
	// codes are syntactically plausible python
	for i, code := range c.Codes {
		if !strings.HasPrefix(code, "def ") {
			t.Errorf("code %d does not start with def: %q", i, code[:20])
		}
	}
}

func TestCoSQAQueriesAreWebStyle(t *testing.T) {
	c := GenCoSQA(3, 4)
	webish := 0
	for _, q := range c.Queries {
		if strings.Contains(q.Query, "python") || strings.Contains(q.Query, "how to") {
			webish++
		}
	}
	if webish < len(c.Queries)/2 {
		t.Errorf("only %d/%d queries look like web queries", webish, len(c.Queries))
	}
}

func TestParaphraseStaysOutOfCorpusVocabularyOnly(t *testing.T) {
	// Out-of-lexicon web synonyms must not appear as keys of the alignment
	// lexicon (otherwise fine-tuning could bridge them and the CoSQA gap
	// disappears).
	for canon, alts := range webSynonyms {
		_ = canon
		for _, alt := range alts {
			for _, word := range strings.Fields(alt) {
				if _, ok := inverseLexicon[word]; ok {
					t.Errorf("web synonym %q collides with lexicon canon %q", word, canon)
				}
			}
		}
	}
}

func TestCodeNetShape(t *testing.T) {
	c := GenCodeNet(5, 8)
	if len(c.Snippets) == 0 || len(c.Queries) == 0 {
		t.Fatal("empty corpus")
	}
	problems := map[int]int{}
	for _, s := range c.Snippets {
		problems[s.Problem]++
	}
	for pid, n := range problems {
		if n != 8 {
			t.Errorf("problem %d has %d solutions", pid, n)
		}
	}
	if len(c.Queries) != len(problems)*4 {
		t.Errorf("queries: %d for %d problems", len(c.Queries), len(problems))
	}
	for _, q := range c.Queries {
		rel := c.RelevantSet(q)
		if len(rel) != 8 {
			t.Fatalf("relevant set size %d", len(rel))
		}
		// the partial query must be a strict prefix-style fragment
		if !strings.HasPrefix(q.Partial, "def ") {
			t.Errorf("query does not look like code: %q", q.Partial[:20])
		}
	}
}

func TestCodeNetQueriesAreHeldOut(t *testing.T) {
	c := GenCodeNet(5, 8)
	// no query text equals any corpus snippet (held-out identifiers)
	corpus := map[string]bool{}
	for _, s := range c.Snippets {
		corpus[s.Code] = true
	}
	for _, q := range c.Queries {
		if corpus[q.Partial] {
			t.Fatal("query equals a corpus snippet verbatim")
		}
	}
	// held-out entry point names never appear in corpus snippets
	for _, s := range c.Snippets {
		for _, fn := range queryFnNames {
			if strings.Contains(s.Code, "def "+fn+"(") {
				t.Fatalf("held-out fn name %q leaked into corpus", fn)
			}
		}
	}
}

func TestCloneApproachesDiffer(t *testing.T) {
	c := GenCodeNetQueries(5, 2, 1)
	// with 2 solutions per problem the two approaches must render different
	// code for the same problem
	byProblem := map[int][]string{}
	for _, s := range c.Snippets {
		byProblem[s.Problem] = append(byProblem[s.Problem], s.Code)
	}
	for pid, codes := range byProblem {
		if len(codes) == 2 && codes[0] == codes[1] {
			t.Errorf("problem %d: approaches render identically", pid)
		}
	}
}

func TestStringers(t *testing.T) {
	if s := GenCSN(1, 1).String(); !strings.Contains(s, "CSN") {
		t.Errorf("csn: %s", s)
	}
	if s := GenCodeNet(1, 4).String(); !strings.Contains(s, "problems") {
		t.Errorf("codenet: %s", s)
	}
}
