// Package pylib simulates the Python package ecosystem the Execution Engine
// manages (Section 3.3): a catalog of installable libraries with realistic
// install latencies, and per-engine environments that track what is already
// present. The paper's engine runs inside a conda environment and
// auto-installs whatever a workflow imports; this substitution preserves the
// observable behaviour — the first run of a workflow needing a library pays
// an install cost, later runs do not — without network access.
package pylib

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Library describes one catalog entry.
type Library struct {
	Name    string
	Version string
	// InstallTime simulates download+install latency.
	InstallTime time.Duration
	// Builtin libraries ship with the base environment (the conda env the
	// engine is "furnished with", per the paper).
	Builtin bool
}

// Catalog is the package index (the PyPI substitution).
var catalog = map[string]Library{
	// interpreter builtins: always present
	"random":      {Name: "random", Version: "3.10", Builtin: true},
	"math":        {Name: "math", Version: "3.10", Builtin: true},
	"collections": {Name: "collections", Version: "3.10", Builtin: true},
	"time":        {Name: "time", Version: "3.10", Builtin: true},
	"json":        {Name: "json", Version: "3.10", Builtin: true},
	"os":          {Name: "os", Version: "3.10", Builtin: true},
	"sys":         {Name: "sys", Version: "3.10", Builtin: true},
	"statistics":  {Name: "statistics", Version: "3.10", Builtin: true},
	"string":      {Name: "string", Version: "3.10", Builtin: true},
	// the dispel4py runtime itself is pre-installed in the engine env
	"dispel4py": {Name: "dispel4py", Version: "2.0", Builtin: true},
	// installable scientific stack (the astrophysics workflow needs these)
	"astropy":  {Name: "astropy", Version: "5.3", InstallTime: 120 * time.Millisecond},
	"vo":       {Name: "vo", Version: "1.0", InstallTime: 60 * time.Millisecond},
	"astro":    {Name: "astro", Version: "1.0", InstallTime: 30 * time.Millisecond},
	"numpy":    {Name: "numpy", Version: "1.26", InstallTime: 80 * time.Millisecond},
	"pandas":   {Name: "pandas", Version: "2.1", InstallTime: 150 * time.Millisecond},
	"requests": {Name: "requests", Version: "2.31", InstallTime: 40 * time.Millisecond},
	"scipy":    {Name: "scipy", Version: "1.11", InstallTime: 140 * time.Millisecond},
}

// Lookup finds a catalog entry.
func Lookup(name string) (Library, bool) {
	lib, ok := catalog[name]
	return lib, ok
}

// CatalogNames lists every known library, sorted.
func CatalogNames() []string {
	names := make([]string, 0, len(catalog))
	for n := range catalog {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Env is one execution engine's installed-library state.
type Env struct {
	mu        sync.Mutex
	installed map[string]Library
	// InstallDelayScale scales simulated install latencies (0 disables the
	// sleep while still recording installs — used by fast tests).
	InstallDelayScale float64
}

// NewEnv creates an environment containing the builtins.
func NewEnv() *Env {
	e := &Env{installed: map[string]Library{}, InstallDelayScale: 1}
	for name, lib := range catalog {
		if lib.Builtin {
			e.installed[name] = lib
		}
	}
	return e
}

// Has reports whether a library is available.
func (e *Env) Has(name string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	_, ok := e.installed[name]
	return ok
}

// Installed lists available libraries, sorted.
func (e *Env) Installed() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	names := make([]string, 0, len(e.installed))
	for n := range e.installed {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Install ensures the named libraries are present, returning those newly
// installed. Unknown libraries fail, as pip would.
func (e *Env) Install(names []string) ([]string, error) {
	var added []string
	for _, name := range names {
		e.mu.Lock()
		_, present := e.installed[name]
		e.mu.Unlock()
		if present {
			continue
		}
		lib, ok := catalog[name]
		if !ok {
			return added, fmt.Errorf("pylib: no library %q in the package index", name)
		}
		if e.InstallDelayScale > 0 && lib.InstallTime > 0 {
			time.Sleep(time.Duration(float64(lib.InstallTime) * e.InstallDelayScale))
		}
		e.mu.Lock()
		e.installed[name] = lib
		e.mu.Unlock()
		added = append(added, name)
	}
	sort.Strings(added)
	return added, nil
}
