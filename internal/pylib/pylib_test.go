package pylib

import (
	"testing"
	"time"
)

func TestBuiltinsPreinstalled(t *testing.T) {
	e := NewEnv()
	for _, lib := range []string{"random", "math", "collections", "json", "dispel4py"} {
		if !e.Has(lib) {
			t.Errorf("builtin %q missing from fresh env", lib)
		}
	}
	if e.Has("astropy") {
		t.Error("astropy should not be preinstalled")
	}
}

func TestInstallFlow(t *testing.T) {
	e := NewEnv()
	e.InstallDelayScale = 0
	added, err := e.Install([]string{"astropy", "vo", "math"})
	if err != nil {
		t.Fatal(err)
	}
	// math was already present; only the two new ones are reported, sorted
	if len(added) != 2 || added[0] != "astropy" || added[1] != "vo" {
		t.Fatalf("added: %v", added)
	}
	if !e.Has("astropy") || !e.Has("vo") {
		t.Error("install did not register libraries")
	}
	// idempotent
	added, err = e.Install([]string{"astropy"})
	if err != nil || len(added) != 0 {
		t.Errorf("reinstall: %v %v", added, err)
	}
}

func TestUnknownLibraryFails(t *testing.T) {
	e := NewEnv()
	e.InstallDelayScale = 0
	if _, err := e.Install([]string{"tensorflow"}); err == nil {
		t.Error("unknown library should fail")
	}
}

func TestInstallLatencySimulated(t *testing.T) {
	e := NewEnv()
	e.InstallDelayScale = 0.2 // 20% of 120ms ≈ 24ms
	start := time.Now()
	if _, err := e.Install([]string{"astropy"}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Errorf("install latency not simulated: %v", elapsed)
	}
}

func TestCatalog(t *testing.T) {
	if _, ok := Lookup("astropy"); !ok {
		t.Error("astropy missing from catalog")
	}
	if _, ok := Lookup("nonexistent"); ok {
		t.Error("nonexistent should miss")
	}
	names := CatalogNames()
	if len(names) < 10 {
		t.Errorf("catalog too small: %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Error("catalog names not sorted")
		}
	}
}

func TestInstalledListing(t *testing.T) {
	e := NewEnv()
	e.InstallDelayScale = 0
	before := len(e.Installed())
	if _, err := e.Install([]string{"numpy"}); err != nil {
		t.Fatal(err)
	}
	after := e.Installed()
	if len(after) != before+1 {
		t.Errorf("installed count: %d -> %d", before, len(after))
	}
}
