// Package redisserver is a mini Redis server over TCP speaking RESP2. It
// implements the keyspace commands the Laminar Redis mapping (and its tests)
// use: strings (GET/SET/DEL/INCR/EXISTS), lists (LPUSH/RPUSH/LPOP/RPOP/
// BLPOP/BRPOP/LLEN/LRANGE), hashes (HSET/HGET/HGETALL/HDEL), plus PING,
// FLUSHALL, KEYS and SELECT. Blocking pops park the connection goroutine on
// a condition variable, giving the same work-queue semantics a real Redis
// provides to dispel4py's redis mapping.
package redisserver

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"laminar/internal/resp"
)

// Server is a mini Redis instance.
type Server struct {
	mu      sync.Mutex
	cond    *sync.Cond
	strings map[string]string
	lists   map[string][]string
	hashes  map[string]map[string]string

	ln       net.Listener
	addr     string
	closed   chan struct{}
	closeOne sync.Once
	wg       sync.WaitGroup
}

// New creates an empty server (not yet listening).
func New() *Server {
	s := &Server{
		strings: map[string]string{},
		lists:   map[string][]string{},
		hashes:  map[string]map[string]string{},
		closed:  make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Start listens on addr ("127.0.0.1:0" picks a free port) and serves until
// Close. It returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	s.addr = ln.Addr().String()
	s.wg.Add(1)
	go s.acceptLoop()
	return s.addr, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.addr }

// Close stops the listener and unblocks all clients.
func (s *Server) Close() {
	s.closeOne.Do(func() {
		close(s.closed)
		if s.ln != nil {
			s.ln.Close()
		}
		s.mu.Lock()
		s.mu.Unlock() //nolint:staticcheck // lock/unlock pairs with broadcast
		s.cond.Broadcast()
	})
	s.wg.Wait()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
				return
			}
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	r := resp.NewReader(conn)
	w := resp.NewWriter(conn)
	for {
		select {
		case <-s.closed:
			return
		default:
		}
		v, err := r.Read()
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				_ = w.Write(resp.Err("ERR protocol: " + err.Error()))
				_ = w.Flush()
			}
			return
		}
		if v.Type != resp.TypeArray || len(v.Array) == 0 {
			_ = w.Write(resp.Err("ERR expected command array"))
			_ = w.Flush()
			continue
		}
		args := make([]string, len(v.Array))
		for i, a := range v.Array {
			args[i] = a.Str
		}
		reply := s.Dispatch(args)
		if err := w.Write(reply); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
		if strings.EqualFold(args[0], "QUIT") {
			return
		}
	}
}

// Dispatch executes a command and returns the RESP reply. Exposed for
// in-process (no TCP) use by tests and the embedded mapping.
func (s *Server) Dispatch(args []string) resp.Value {
	cmd := strings.ToUpper(args[0])
	switch cmd {
	case "PING":
		if len(args) == 2 {
			return resp.Bulk(args[1])
		}
		return resp.Simple("PONG")
	case "ECHO":
		if len(args) != 2 {
			return wrongArity(cmd)
		}
		return resp.Bulk(args[1])
	case "QUIT":
		return resp.Simple("OK")
	case "SELECT":
		return resp.Simple("OK") // single logical database
	case "FLUSHALL", "FLUSHDB":
		s.mu.Lock()
		s.strings = map[string]string{}
		s.lists = map[string][]string{}
		s.hashes = map[string]map[string]string{}
		s.mu.Unlock()
		return resp.Simple("OK")
	case "SET":
		if len(args) < 3 {
			return wrongArity(cmd)
		}
		s.mu.Lock()
		s.strings[args[1]] = args[2]
		s.mu.Unlock()
		return resp.Simple("OK")
	case "GET":
		if len(args) != 2 {
			return wrongArity(cmd)
		}
		s.mu.Lock()
		v, ok := s.strings[args[1]]
		s.mu.Unlock()
		if !ok {
			return resp.NullBulk()
		}
		return resp.Bulk(v)
	case "DEL":
		if len(args) < 2 {
			return wrongArity(cmd)
		}
		n := int64(0)
		s.mu.Lock()
		for _, k := range args[1:] {
			if _, ok := s.strings[k]; ok {
				delete(s.strings, k)
				n++
			}
			if _, ok := s.lists[k]; ok {
				delete(s.lists, k)
				n++
			}
			if _, ok := s.hashes[k]; ok {
				delete(s.hashes, k)
				n++
			}
		}
		s.mu.Unlock()
		return resp.Integer(n)
	case "EXISTS":
		if len(args) != 2 {
			return wrongArity(cmd)
		}
		s.mu.Lock()
		_, ok1 := s.strings[args[1]]
		_, ok2 := s.lists[args[1]]
		_, ok3 := s.hashes[args[1]]
		s.mu.Unlock()
		if ok1 || ok2 || ok3 {
			return resp.Integer(1)
		}
		return resp.Integer(0)
	case "INCR", "INCRBY":
		if (cmd == "INCR" && len(args) != 2) || (cmd == "INCRBY" && len(args) != 3) {
			return wrongArity(cmd)
		}
		delta := int64(1)
		if cmd == "INCRBY" {
			d, err := strconv.ParseInt(args[2], 10, 64)
			if err != nil {
				return resp.Err("ERR value is not an integer or out of range")
			}
			delta = d
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		cur := int64(0)
		if v, ok := s.strings[args[1]]; ok {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return resp.Err("ERR value is not an integer or out of range")
			}
			cur = n
		}
		cur += delta
		s.strings[args[1]] = strconv.FormatInt(cur, 10)
		return resp.Integer(cur)
	case "KEYS":
		s.mu.Lock()
		var keys []string
		for k := range s.strings {
			keys = append(keys, k)
		}
		for k := range s.lists {
			keys = append(keys, k)
		}
		for k := range s.hashes {
			keys = append(keys, k)
		}
		s.mu.Unlock()
		sort.Strings(keys)
		items := make([]resp.Value, len(keys))
		for i, k := range keys {
			items[i] = resp.Bulk(k)
		}
		return resp.Array(items...)
	case "LPUSH", "RPUSH":
		if len(args) < 3 {
			return wrongArity(cmd)
		}
		s.mu.Lock()
		lst := s.lists[args[1]]
		for _, v := range args[2:] {
			if cmd == "LPUSH" {
				lst = append([]string{v}, lst...)
			} else {
				lst = append(lst, v)
			}
		}
		s.lists[args[1]] = lst
		n := len(lst)
		s.mu.Unlock()
		s.cond.Broadcast()
		return resp.Integer(int64(n))
	case "LPOP", "RPOP":
		if len(args) != 2 {
			return wrongArity(cmd)
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		v, ok := s.popLocked(args[1], cmd == "LPOP")
		if !ok {
			return resp.NullBulk()
		}
		return resp.Bulk(v)
	case "BLPOP", "BRPOP":
		if len(args) < 3 {
			return wrongArity(cmd)
		}
		timeout, err := strconv.ParseFloat(args[len(args)-1], 64)
		if err != nil || timeout < 0 {
			return resp.Err("ERR timeout is not a float or out of range")
		}
		keys := args[1 : len(args)-1]
		return s.blockingPop(keys, cmd == "BLPOP", timeout)
	case "LLEN":
		if len(args) != 2 {
			return wrongArity(cmd)
		}
		s.mu.Lock()
		n := len(s.lists[args[1]])
		s.mu.Unlock()
		return resp.Integer(int64(n))
	case "LRANGE":
		if len(args) != 4 {
			return wrongArity(cmd)
		}
		start, err1 := strconv.Atoi(args[2])
		stop, err2 := strconv.Atoi(args[3])
		if err1 != nil || err2 != nil {
			return resp.Err("ERR value is not an integer or out of range")
		}
		s.mu.Lock()
		lst := s.lists[args[1]]
		n := len(lst)
		if start < 0 {
			start += n
		}
		if stop < 0 {
			stop += n
		}
		if start < 0 {
			start = 0
		}
		if stop >= n {
			stop = n - 1
		}
		var out []resp.Value
		for i := start; i <= stop && i < n; i++ {
			out = append(out, resp.Bulk(lst[i]))
		}
		s.mu.Unlock()
		return resp.Array(out...)
	case "HSET":
		if len(args) < 4 || len(args)%2 != 0 {
			return wrongArity(cmd)
		}
		s.mu.Lock()
		h, ok := s.hashes[args[1]]
		if !ok {
			h = map[string]string{}
			s.hashes[args[1]] = h
		}
		added := int64(0)
		for i := 2; i+1 < len(args); i += 2 {
			if _, exists := h[args[i]]; !exists {
				added++
			}
			h[args[i]] = args[i+1]
		}
		s.mu.Unlock()
		return resp.Integer(added)
	case "HGET":
		if len(args) != 3 {
			return wrongArity(cmd)
		}
		s.mu.Lock()
		v, ok := s.hashes[args[1]][args[2]]
		s.mu.Unlock()
		if !ok {
			return resp.NullBulk()
		}
		return resp.Bulk(v)
	case "HDEL":
		if len(args) < 3 {
			return wrongArity(cmd)
		}
		s.mu.Lock()
		n := int64(0)
		for _, f := range args[2:] {
			if _, ok := s.hashes[args[1]][f]; ok {
				delete(s.hashes[args[1]], f)
				n++
			}
		}
		s.mu.Unlock()
		return resp.Integer(n)
	case "HGETALL":
		if len(args) != 2 {
			return wrongArity(cmd)
		}
		s.mu.Lock()
		h := s.hashes[args[1]]
		fields := make([]string, 0, len(h))
		for f := range h {
			fields = append(fields, f)
		}
		sort.Strings(fields)
		var out []resp.Value
		for _, f := range fields {
			out = append(out, resp.Bulk(f), resp.Bulk(h[f]))
		}
		s.mu.Unlock()
		return resp.Array(out...)
	default:
		return resp.Err(fmt.Sprintf("ERR unknown command '%s'", args[0]))
	}
}

func (s *Server) popLocked(key string, left bool) (string, bool) {
	lst := s.lists[key]
	if len(lst) == 0 {
		return "", false
	}
	var v string
	if left {
		v, lst = lst[0], lst[1:]
	} else {
		v, lst = lst[len(lst)-1], lst[:len(lst)-1]
	}
	if len(lst) == 0 {
		delete(s.lists, key)
	} else {
		s.lists[key] = lst
	}
	return v, true
}

// blockingPop implements BLPOP/BRPOP: wait until any key has an element or
// the timeout elapses (0 = wait forever).
func (s *Server) blockingPop(keys []string, left bool, timeout float64) resp.Value {
	deadline := time.Time{}
	if timeout > 0 {
		deadline = time.Now().Add(time.Duration(timeout * float64(time.Second)))
	}
	// A timer goroutine broadcasts periodically so waiters can observe both
	// timeouts and server shutdown.
	stopTick := make(chan struct{})
	defer close(stopTick)
	go func() {
		t := time.NewTicker(5 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-stopTick:
				return
			case <-t.C:
				s.mu.Lock()
				s.mu.Unlock() //nolint:staticcheck
				s.cond.Broadcast()
			}
		}
	}()
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		select {
		case <-s.closed:
			return resp.NullArray()
		default:
		}
		for _, k := range keys {
			if v, ok := s.popLocked(k, left); ok {
				return resp.Array(resp.Bulk(k), resp.Bulk(v))
			}
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			return resp.NullArray()
		}
		s.cond.Wait()
	}
}

func wrongArity(cmd string) resp.Value {
	return resp.Err(fmt.Sprintf("ERR wrong number of arguments for '%s' command", strings.ToLower(cmd)))
}
