package redisserver

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"laminar/internal/redisclient"
	"laminar/internal/resp"
)

func startServer(t *testing.T) (*Server, *redisclient.Client) {
	t.Helper()
	s := New()
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	c, err := redisclient.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return s, c
}

func TestPingEcho(t *testing.T) {
	_, c := startServer(t)
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	v, err := c.Do("ECHO", "hello")
	if err != nil || v.Str != "hello" {
		t.Fatalf("echo: %v %v", v, err)
	}
}

func TestStringCommands(t *testing.T) {
	_, c := startServer(t)
	if err := c.Set("k", "v1"); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get("k")
	if err != nil || got != "v1" {
		t.Fatalf("get: %q %v", got, err)
	}
	if _, err := c.Get("missing"); err != redisclient.ErrNil {
		t.Fatalf("expected ErrNil, got %v", err)
	}
	n, err := c.Del("k", "missing")
	if err != nil || n != 1 {
		t.Fatalf("del: %d %v", n, err)
	}
	for i := 0; i < 5; i++ {
		if _, err := c.Incr("ctr"); err != nil {
			t.Fatal(err)
		}
	}
	got, _ = c.Get("ctr")
	if got != "5" {
		t.Fatalf("incr: %q", got)
	}
}

func TestListCommands(t *testing.T) {
	_, c := startServer(t)
	if _, err := c.RPush("q", "a", "b", "c"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.LPush("q", "z"); err != nil {
		t.Fatal(err)
	}
	n, _ := c.LLen("q")
	if n != 4 {
		t.Fatalf("llen = %d", n)
	}
	v, err := c.Do("LRANGE", "q", "0", "-1")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"z", "a", "b", "c"}
	for i, item := range v.Array {
		if item.Str != want[i] {
			t.Errorf("lrange[%d] = %q want %q", i, item.Str, want[i])
		}
	}
	// LPOP drains in order
	got1, _ := c.Do("LPOP", "q")
	got2, _ := c.Do("RPOP", "q")
	if got1.Str != "z" || got2.Str != "c" {
		t.Errorf("pop: %q %q", got1.Str, got2.Str)
	}
}

func TestBLPopBlocksUntilPush(t *testing.T) {
	s, c := startServer(t)
	addr := s.Addr()
	done := make(chan string, 1)
	go func() {
		c2, err := redisclient.Dial(addr)
		if err != nil {
			done <- "dial-error"
			return
		}
		defer c2.Close()
		_, v, err := c2.BLPop(5*time.Second, "waitq")
		if err != nil {
			done <- "err:" + err.Error()
			return
		}
		done <- v
	}()
	time.Sleep(30 * time.Millisecond) // let the consumer block
	if _, err := c.RPush("waitq", "payload"); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-done:
		if v != "payload" {
			t.Fatalf("got %q", v)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("BLPOP did not unblock")
	}
}

func TestBLPopTimeout(t *testing.T) {
	_, c := startServer(t)
	start := time.Now()
	_, _, err := c.BLPop(50*time.Millisecond, "emptyq")
	if err != redisclient.ErrNil {
		t.Fatalf("expected ErrNil, got %v", err)
	}
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Fatalf("returned too early: %v", elapsed)
	}
}

func TestHashCommands(t *testing.T) {
	_, c := startServer(t)
	if err := c.HSet("h", "f1", "v1"); err != nil {
		t.Fatal(err)
	}
	if err := c.HSet("h", "f2", "v2"); err != nil {
		t.Fatal(err)
	}
	got, err := c.HGet("h", "f1")
	if err != nil || got != "v1" {
		t.Fatalf("hget: %q %v", got, err)
	}
	all, err := c.HGetAll("h")
	if err != nil || len(all) != 2 || all["f2"] != "v2" {
		t.Fatalf("hgetall: %v %v", all, err)
	}
	if _, err := c.HGet("h", "nope"); err != redisclient.ErrNil {
		t.Fatalf("expected ErrNil, got %v", err)
	}
}

func TestConcurrentProducersConsumers(t *testing.T) {
	s, _ := startServer(t)
	addr := s.Addr()
	const producers, consumers, itemsPer = 4, 4, 50
	var wg sync.WaitGroup
	results := make(chan string, producers*itemsPer)
	for i := 0; i < consumers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := redisclient.Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for {
				_, v, err := c.BLPop(300*time.Millisecond, "jobs")
				if err != nil {
					return // timed out: queue drained
				}
				results <- v
			}
		}()
	}
	for i := 0; i < producers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := redisclient.Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for j := 0; j < itemsPer; j++ {
				if _, err := c.RPush("jobs", fmt.Sprintf("p%d-%d", id, j)); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(results)
	seen := map[string]bool{}
	for v := range results {
		if seen[v] {
			t.Errorf("duplicate delivery: %s", v)
		}
		seen[v] = true
	}
	if len(seen) != producers*itemsPer {
		t.Fatalf("delivered %d items, want %d", len(seen), producers*itemsPer)
	}
}

func TestUnknownCommandAndArity(t *testing.T) {
	s := New()
	v := s.Dispatch([]string{"NOSUCH"})
	if !v.IsError() {
		t.Error("expected error for unknown command")
	}
	v = s.Dispatch([]string{"SET", "only-key"})
	if !v.IsError() {
		t.Error("expected arity error")
	}
	v = s.Dispatch([]string{"GET"})
	if !v.IsError() {
		t.Error("expected arity error for GET")
	}
}

func TestKeysAndFlush(t *testing.T) {
	s := New()
	s.Dispatch([]string{"SET", "a", "1"})
	s.Dispatch([]string{"RPUSH", "b", "x"})
	s.Dispatch([]string{"HSET", "c", "f", "v"})
	v := s.Dispatch([]string{"KEYS", "*"})
	if len(v.Array) != 3 {
		t.Fatalf("keys: %v", v)
	}
	if v.Array[0].Str != "a" || v.Array[1].Str != "b" || v.Array[2].Str != "c" {
		t.Fatalf("keys not sorted: %v", v.Array)
	}
	s.Dispatch([]string{"FLUSHALL"})
	v = s.Dispatch([]string{"KEYS", "*"})
	if len(v.Array) != 0 {
		t.Fatalf("flush failed: %v", v)
	}
}

func TestExists(t *testing.T) {
	s := New()
	if v := s.Dispatch([]string{"EXISTS", "nope"}); v.Int != 0 {
		t.Error("exists on missing key")
	}
	s.Dispatch([]string{"SET", "k", "v"})
	if v := s.Dispatch([]string{"EXISTS", "k"}); v.Int != 1 {
		t.Error("exists on present key")
	}
}

func TestRESPRoundTrip(t *testing.T) {
	vals := []resp.Value{
		resp.Simple("OK"),
		resp.Err("ERR boom"),
		resp.Integer(-42),
		resp.Bulk("hello\r\nworld"),
		resp.NullBulk(),
		resp.Array(resp.Bulk("a"), resp.Integer(1), resp.Array(resp.Bulk("nested"))),
		resp.NullArray(),
	}
	var buf writerBuffer
	w := resp.NewWriter(&buf)
	for _, v := range vals {
		if err := w.Write(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := resp.NewReader(&buf)
	for i, want := range vals {
		got, err := r.Read()
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if got.Type != want.Type || got.Str != want.Str || got.Int != want.Int || got.Null != want.Null || len(got.Array) != len(want.Array) {
			t.Errorf("round trip %d: got %+v want %+v", i, got, want)
		}
	}
}

// writerBuffer is a minimal io.ReadWriter for protocol round trips.
type writerBuffer struct {
	data []byte
}

func (b *writerBuffer) Write(p []byte) (int, error) {
	b.data = append(b.data, p...)
	return len(p), nil
}

func (b *writerBuffer) Read(p []byte) (int, error) {
	if len(b.data) == 0 {
		return 0, fmt.Errorf("EOF")
	}
	n := copy(p, b.data)
	b.data = b.data[n:]
	return n, nil
}
