package engine

import (
	"fmt"
	"io"
	"net/http"
	"time"

	"laminar/internal/astro"
	"laminar/internal/pycode"
	"laminar/internal/votable"
)

// ScienceModules builds the native modules the astrophysics workflow
// imports: `vo` (Virtual Observatory client), `astropy` (VOTable parsing
// and column filtering) and `astro` (the internal-extinction computation).
// voBaseURL points at a votable.Service; when empty, cone queries are
// answered locally from the synthetic catalog (offline mode).
func ScienceModules(voBaseURL string, httpTimeout time.Duration) map[string]*pycode.Module {
	mods := map[string]*pycode.Module{}

	vo := &pycode.Module{Name: "vo", Attrs: map[string]pycode.Value{}}
	vo.Attrs["get_votable"] = &pycode.NativeFunc{Name: "get_votable", Fn: func(ip *pycode.Interp, args []pycode.Value, kwargs map[string]pycode.Value) (pycode.Value, error) {
		if len(args) != 2 {
			return nil, pycode.Raise("TypeError", "get_votable() takes (ra, dec)")
		}
		ra, okA := toF(args[0])
		dec, okB := toF(args[1])
		if !okA || !okB {
			return nil, pycode.Raise("TypeError", "get_votable() arguments must be numbers")
		}
		if voBaseURL == "" {
			table := votable.ConeTable(ra, dec)
			text, err := votable.Encode(table, "amiga-cone")
			if err != nil {
				return nil, pycode.Raise("RuntimeError", "%s", err)
			}
			return pycode.Str(text), nil
		}
		client := &http.Client{Timeout: httpTimeout}
		url := fmt.Sprintf("%s/votable?ra=%f&dec=%f", voBaseURL, ra, dec)
		resp, err := client.Get(url)
		if err != nil {
			return nil, pycode.Raise("ConnectionError", "VO service: %s", err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, pycode.Raise("ConnectionError", "VO service read: %s", err)
		}
		if resp.StatusCode != http.StatusOK {
			return nil, pycode.Raise("ConnectionError", "VO service returned %d: %s", resp.StatusCode, string(body))
		}
		return pycode.Str(string(body)), nil
	}}
	mods["vo"] = vo

	ap := &pycode.Module{Name: "astropy", Attrs: map[string]pycode.Value{}}
	ap.Attrs["parse_votable"] = &pycode.NativeFunc{Name: "parse_votable", Fn: func(ip *pycode.Interp, args []pycode.Value, kwargs map[string]pycode.Value) (pycode.Value, error) {
		if len(args) != 1 {
			return nil, pycode.Raise("TypeError", "parse_votable() takes the XML text")
		}
		text, ok := args[0].(pycode.Str)
		if !ok {
			return nil, pycode.Raise("TypeError", "parse_votable() argument must be str")
		}
		table, err := votable.Parse(string(text))
		if err != nil {
			return nil, pycode.Raise("ValueError", "%s", err)
		}
		return wrapTable(table), nil
	}}
	mods["astropy"] = ap

	as := &pycode.Module{Name: "astro", Attrs: map[string]pycode.Value{}}
	as.Attrs["internal_extinction"] = &pycode.NativeFunc{Name: "internal_extinction", Fn: func(ip *pycode.Interp, args []pycode.Value, kwargs map[string]pycode.Value) (pycode.Value, error) {
		if len(args) != 2 {
			return nil, pycode.Raise("TypeError", "internal_extinction() takes (mtype, logr25)")
		}
		mtypeF, okA := toF(args[0])
		logr, okB := toF(args[1])
		if !okA || !okB {
			return nil, pycode.Raise("TypeError", "internal_extinction() arguments must be numbers")
		}
		a, err := astro.InternalExtinction(int(mtypeF), logr)
		if err != nil {
			return nil, pycode.Raise("ValueError", "%s", err)
		}
		return pycode.Float(a), nil
	}}
	as.Attrs["parse_coordinates"] = &pycode.NativeFunc{Name: "parse_coordinates", Fn: func(ip *pycode.Interp, args []pycode.Value, kwargs map[string]pycode.Value) (pycode.Value, error) {
		if len(args) != 1 {
			return nil, pycode.Raise("TypeError", "parse_coordinates() takes the file text")
		}
		text, ok := args[0].(pycode.Str)
		if !ok {
			return nil, pycode.Raise("TypeError", "parse_coordinates() argument must be str")
		}
		coords, err := astro.ParseCoordinates(string(text))
		if err != nil {
			return nil, pycode.Raise("ValueError", "%s", err)
		}
		items := make([]pycode.Value, len(coords))
		for i, c := range coords {
			items[i] = &pycode.Tuple{Items: []pycode.Value{pycode.Float(c.RA), pycode.Float(c.Dec)}}
		}
		return &pycode.List{Items: items}, nil
	}}
	mods["astro"] = as
	return mods
}

// wrapTable exposes a votable.Table to pycode with the astropy-flavoured
// surface the filterColumns PE uses.
func wrapTable(t *votable.Table) *pycode.NativeObject {
	obj := &pycode.NativeObject{TypeName: "VOTable", Data: t}
	obj.Length = func() int { return len(t.Rows) }
	obj.Str = func() string {
		return fmt.Sprintf("<VOTable %d rows x %d cols>", len(t.Rows), len(t.Fields))
	}
	obj.Attr = func(name string) (pycode.Value, bool) {
		switch name {
		case "filter_columns":
			return &pycode.NativeFunc{Name: "filter_columns", Fn: func(ip *pycode.Interp, args []pycode.Value, kwargs map[string]pycode.Value) (pycode.Value, error) {
				if len(args) != 1 {
					return nil, pycode.Raise("TypeError", "filter_columns() takes a list of column names")
				}
				lst, ok := args[0].(*pycode.List)
				if !ok {
					return nil, pycode.Raise("TypeError", "filter_columns() argument must be a list")
				}
				names := make([]string, len(lst.Items))
				for i, it := range lst.Items {
					s, ok := it.(pycode.Str)
					if !ok {
						return nil, pycode.Raise("TypeError", "column names must be str")
					}
					names[i] = string(s)
				}
				filtered, err := t.FilterColumns(names)
				if err != nil {
					return nil, pycode.Raise("KeyError", "%s", err)
				}
				return wrapTable(filtered), nil
			}}, true
		case "columns":
			items := make([]pycode.Value, len(t.Fields))
			for i, f := range t.Fields {
				items[i] = pycode.Str(f.Name)
			}
			return &pycode.List{Items: items}, true
		case "rows":
			rows := make([]pycode.Value, len(t.Rows))
			for i, row := range t.Rows {
				cells := make([]pycode.Value, len(row))
				for j, cell := range row {
					cells[j] = pycode.Str(cell)
				}
				rows[i] = &pycode.List{Items: cells}
			}
			return &pycode.List{Items: rows}, true
		case "float":
			return &pycode.NativeFunc{Name: "float", Fn: func(ip *pycode.Interp, args []pycode.Value, kwargs map[string]pycode.Value) (pycode.Value, error) {
				if len(args) != 2 {
					return nil, pycode.Raise("TypeError", "float() takes (row, col)")
				}
				r, okR := args[0].(pycode.Int)
				c, okC := args[1].(pycode.Int)
				if !okR || !okC {
					return nil, pycode.Raise("TypeError", "float() indices must be int")
				}
				f, err := t.Float(int(r), int(c))
				if err != nil {
					return nil, pycode.Raise("ValueError", "%s", err)
				}
				return pycode.Float(f), nil
			}}, true
		case "num_rows":
			return pycode.Int(len(t.Rows)), true
		}
		return nil, false
	}
	obj.Iter = func() ([]pycode.Value, error) {
		rows := make([]pycode.Value, len(t.Rows))
		for i, row := range t.Rows {
			cells := make([]pycode.Value, len(row))
			for j, cell := range row {
				cells[j] = pycode.Str(cell)
			}
			rows[i] = &pycode.List{Items: cells}
		}
		return rows, nil
	}
	return obj
}

func toF(v pycode.Value) (float64, bool) {
	switch x := v.(type) {
	case pycode.Int:
		return float64(x), true
	case pycode.Float:
		return float64(x), true
	default:
		return 0, false
	}
}
