package engine

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"time"

	"laminar/internal/core"
)

// RemoteServer fronts an Engine with the single /run HTTP endpoint the
// paper's remote deployment exposes (the Docker image on Azure App
// Services). RequestLatency injects the simulated WAN round trip used by
// Table 5's "Remote Execution" rows.
type RemoteServer struct {
	Engine         *Engine
	RequestLatency time.Duration

	srv  *http.Server
	addr string
}

// NewRemoteServer wraps an engine.
func NewRemoteServer(e *Engine, latency time.Duration) *RemoteServer {
	return &RemoteServer{Engine: e, RequestLatency: latency}
}

// Start listens on addr ("127.0.0.1:0" picks a free port) and returns the
// base URL.
func (rs *RemoteServer) Start(addr string) (string, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/run", rs.handleRun)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	rs.addr = "http://" + ln.Addr().String()
	rs.srv = &http.Server{Handler: mux}
	go func() { _ = rs.srv.Serve(ln) }()
	return rs.addr, nil
}

// BaseURL returns the server root once started.
func (rs *RemoteServer) BaseURL() string { return rs.addr }

// Close stops the server.
func (rs *RemoteServer) Close() {
	if rs.srv != nil {
		_ = rs.srv.Close()
	}
}

func (rs *RemoteServer) handleRun(w http.ResponseWriter, r *http.Request) {
	if rs.RequestLatency > 0 {
		time.Sleep(rs.RequestLatency)
	}
	if r.Method != http.MethodPost {
		writeAPIError(w, core.ErrBadRequest("method", "POST required"))
		return
	}
	var req core.ExecutionRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeAPIError(w, core.ErrBadRequest("body", "invalid JSON: %v", err))
		return
	}
	resp, err := rs.Engine.Execute(req)
	if err != nil {
		if apiErr, ok := err.(*core.APIError); ok {
			writeAPIError(w, apiErr)
			return
		}
		writeAPIError(w, core.ErrInternal("%v", err))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

func writeAPIError(w http.ResponseWriter, apiErr *core.APIError) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(apiErr.HTTPStatus())
	_ = json.NewEncoder(w).Encode(apiErr)
}
