package engine

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
)

// tiny HTTP helpers shared by engine tests.

func httpGet(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}

func httpPost(url, body string) (string, int, error) {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return "", 0, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return string(b), resp.StatusCode, err
}

func jsonString(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}
