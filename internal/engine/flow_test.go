package engine

import (
	"strings"
	"testing"

	"laminar/internal/core"
	"laminar/internal/dataflow"
	"laminar/internal/telemetry"
)

const pipelineSource = `
class Numbers(ProducerPE):
    def __init__(self):
        ProducerPE.__init__(self)
    def _process(self):
        return 3

class Triple(IterativePE):
    def __init__(self):
        IterativePE.__init__(self)
    def _process(self, v):
        return v * 3

n = Numbers()
t = Triple()
graph = WorkflowGraph()
graph.connect(n, 'output', t, 'input')
`

func TestExecuteLearnsCostsAcrossRuns(t *testing.T) {
	e := New(Config{InstallDelayScale: 0})
	if len(e.CostSnapshot()) != 0 {
		t.Fatalf("fresh engine already has costs: %v", e.CostSnapshot())
	}
	if _, err := e.Execute(core.ExecutionRequest{
		WorkflowCode: encodeWF(t, pipelineSource), Input: 5, Process: "MULTI",
	}); err != nil {
		t.Fatal(err)
	}
	costs := e.CostSnapshot()
	if costs["Numbers"] <= 0 || costs["Triple"] <= 0 {
		t.Errorf("engine did not learn per-PE costs: %v", costs)
	}
}

func TestExecuteAllocArg(t *testing.T) {
	e := New(Config{InstallDelayScale: 0})
	// Warm the cost profile, then request the weighted division explicitly.
	if _, err := e.Execute(core.ExecutionRequest{
		WorkflowCode: encodeWF(t, pipelineSource), Input: 5, Process: "MULTI",
	}); err != nil {
		t.Fatal(err)
	}
	resp, err := e.Execute(core.ExecutionRequest{
		WorkflowCode: encodeWF(t, pipelineSource), Input: 5, Process: "MULTI",
		Args: map[string]any{"alloc": "weighted", "num": 4},
	})
	if err != nil {
		t.Fatalf("weighted run: %v", err)
	}
	if resp.Summary == "" {
		t.Error("weighted run returned no summary")
	}

	// A non-string alloc argument is a client error, not a crash.
	_, err = e.Execute(core.ExecutionRequest{
		WorkflowCode: encodeWF(t, pipelineSource), Input: 2,
		Args: map[string]any{"alloc": 5},
	})
	if err == nil || !strings.Contains(err.Error(), "alloc") {
		t.Errorf("numeric alloc arg: err = %v, want a bad-request naming alloc", err)
	}
	// So is an unknown mode name.
	_, err = e.Execute(core.ExecutionRequest{
		WorkflowCode: encodeWF(t, pipelineSource), Input: 2,
		Args: map[string]any{"alloc": "fair"},
	})
	if err == nil {
		t.Error("unknown alloc mode accepted")
	}
}

func TestLintWorkflowClassification(t *testing.T) {
	e := New(Config{InstallDelayScale: 0})

	// Not a decodable envelope: not lintable, no error (legacy blobs).
	issues, err := e.LintWorkflow("WF-legacyOpaqueBlob")
	if err != nil || issues != nil {
		t.Errorf("opaque blob: issues=%v err=%v, want nil/nil", issues, err)
	}

	// Decodable but unbuildable: a client error naming the build failure.
	_, err = e.LintWorkflow(encodeWF(t, "graph = connect(,,,\n"))
	if err == nil || !strings.Contains(err.Error(), "does not build") {
		t.Errorf("unbuildable source: err = %v", err)
	}

	// Buildable and clean: no issues.
	issues, err = e.LintWorkflow(encodeWF(t, pipelineSource))
	if err != nil || len(issues) != 0 {
		t.Errorf("clean workflow: issues=%v err=%v", issues, err)
	}

	// Buildable with a cycle: the defect is named.
	cyclic := `
class A(IterativePE):
    def __init__(self):
        IterativePE.__init__(self)
    def _process(self, v):
        return v

class B(IterativePE):
    def __init__(self):
        IterativePE.__init__(self)
    def _process(self, v):
        return v

a = A()
b = B()
graph = WorkflowGraph()
graph.connect(a, 'output', b, 'input')
graph.connect(b, 'output', a, 'input')
`
	issues, err = e.LintWorkflow(encodeWF(t, cyclic))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, i := range issues {
		if i.Rule == dataflow.LintCycle {
			found = true
		}
	}
	if !found {
		t.Errorf("cyclic workflow lint = %v, want a %s issue", issues, dataflow.LintCycle)
	}
}

func TestSetTelemetryInstrumentsRuns(t *testing.T) {
	e := New(Config{InstallDelayScale: 0})
	if e.Instrumented() {
		t.Fatal("fresh engine claims instrumentation")
	}
	reg := telemetry.NewRegistry()
	e.SetTelemetry(reg)
	if !e.Instrumented() {
		t.Fatal("SetTelemetry did not instrument the engine")
	}
	if _, err := e.Execute(core.ExecutionRequest{
		WorkflowCode: encodeWF(t, pipelineSource), Input: 3, Process: "MULTI",
	}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `laminar_flow_runs_total{mapping="MULTI",status="ok"} 1`) {
		t.Errorf("instrumented run not visible in telemetry:\n%s", sb.String())
	}
}
