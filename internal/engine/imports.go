package engine

import (
	"sort"

	"laminar/internal/pycode"
)

// DetectImports is the findimports substitution (Section 3.4.2): it walks
// the full AST of a pycode module — including imports nested inside class
// bodies, __init__ and _process methods, as Listing 2 demonstrates — and
// returns the sorted set of top-level imported library names.
func DetectImports(source string) ([]string, error) {
	prog, err := pycode.Parse(source)
	if err != nil {
		return nil, err
	}
	set := map[string]bool{}
	var walkStmts func(body []pycode.Stmt)
	record := func(module string) {
		// `import os.path` depends on the `os` distribution
		root := module
		for i := 0; i < len(module); i++ {
			if module[i] == '.' {
				root = module[:i]
				break
			}
		}
		if root != "" && root != "dispel4py" {
			set[root] = true
		}
	}
	walkStmts = func(body []pycode.Stmt) {
		for _, st := range body {
			switch s := st.(type) {
			case *pycode.ImportStmt:
				for _, n := range s.Names {
					record(n.Module)
				}
			case *pycode.FromImportStmt:
				record(s.Module)
			case *pycode.IfStmt:
				walkStmts(s.Body)
				walkStmts(s.Else)
			case *pycode.WhileStmt:
				walkStmts(s.Body)
				walkStmts(s.Else)
			case *pycode.ForStmt:
				walkStmts(s.Body)
				walkStmts(s.Else)
			case *pycode.DefStmt:
				walkStmts(s.Body)
			case *pycode.ClassStmt:
				walkStmts(s.Body)
			case *pycode.TryStmt:
				walkStmts(s.Body)
				for _, h := range s.Handlers {
					walkStmts(h.Body)
				}
				walkStmts(s.Finally)
			}
		}
	}
	walkStmts(prog.Body)
	out := make([]string, 0, len(set))
	for name := range set {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}
