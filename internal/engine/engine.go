// Package engine is Laminar's serverless Execution Engine (Section 3.3):
// it receives a serialized workflow (or single PE), auto-installs the
// libraries its imports need, stages additional resources, autonomously
// identifies the initial PE, enacts the workflow under the requested
// mapping, and returns the combined output to the caller — all through the
// single /execution/{user}/run contract. The engine runs embedded (local
// execution) or behind the HTTP front of remote.go (the Docker-on-Azure
// deployment of the paper, reproduced with injected WAN latency).
package engine

import (
	"bytes"
	"encoding/base64"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"laminar/internal/codec"
	"laminar/internal/core"
	"laminar/internal/dataflow"
	"laminar/internal/pycode"
	"laminar/internal/pylib"
	"laminar/internal/pype"
	"laminar/internal/telemetry"
)

// Config tunes an engine instance.
type Config struct {
	// VOBaseURL points science modules at a Virtual Observatory service;
	// empty answers cone queries locally (offline mode).
	VOBaseURL string
	// HTTPTimeout bounds outbound service calls from PE code.
	HTTPTimeout time.Duration
	// InstallDelayScale scales simulated library install latencies
	// (1 = realistic, 0 = instant for tests).
	InstallDelayScale float64
	// MaxSteps bounds each PE interpreter instance.
	MaxSteps int64
	// WorkDir hosts staged resources; empty uses a temp directory per run.
	WorkDir string
	// FlowQueueCap bounds each PE instance's input queue during enactment
	// (0 = the dataflow default); see dataflow.Options.QueueCap.
	FlowQueueCap int
	// FlowAlloc selects the default instance-division mode for parallel
	// mappings (dataflow.AllocEven or AllocWeighted). Weighted division
	// uses per-PE costs the engine learns from prior runs' telemetry; a
	// request can override it with args.alloc.
	FlowAlloc dataflow.AllocMode
}

// Engine executes serverless requests.
type Engine struct {
	cfg Config
	env *pylib.Env
	// flow carries the laminar_flow_* telemetry families once SetTelemetry
	// wires a registry; nil runs un-instrumented.
	flow *dataflow.FlowMetrics

	// peCosts is the engine's memory of measured per-PE process cost
	// (seconds per record, EWMA across runs), the input to cost-weighted
	// allocation for subsequent enactments.
	costMu  sync.Mutex
	peCosts map[string]float64
}

// New creates an engine with a fresh library environment.
func New(cfg Config) *Engine {
	if cfg.HTTPTimeout == 0 {
		cfg.HTTPTimeout = 10 * time.Second
	}
	env := pylib.NewEnv()
	env.InstallDelayScale = cfg.InstallDelayScale
	return &Engine{cfg: cfg, env: env, peCosts: map[string]float64{}}
}

// Env exposes the engine's library environment (for inspection and tests).
func (e *Engine) Env() *pylib.Env { return e.env }

// SetTelemetry registers the laminar_flow_* metric families on t and routes
// enactment telemetry there. Call once at wiring time, before traffic.
func (e *Engine) SetTelemetry(t *telemetry.Registry) {
	e.flow = dataflow.NewFlowMetrics(t)
}

// Instrumented reports whether SetTelemetry has wired a registry.
func (e *Engine) Instrumented() bool { return e.flow != nil }

// costEWMAAlpha weighs the newest run's measurement against the engine's
// remembered per-PE cost.
const costEWMAAlpha = 0.5

// learnCosts folds a run's measured cost profile into the engine's memory.
func (e *Engine) learnCosts(profile map[string]float64) {
	if len(profile) == 0 {
		return
	}
	e.costMu.Lock()
	defer e.costMu.Unlock()
	for pe, c := range profile {
		if old, ok := e.peCosts[pe]; ok {
			e.peCosts[pe] = old*(1-costEWMAAlpha) + c*costEWMAAlpha
		} else {
			e.peCosts[pe] = c
		}
	}
}

// CostSnapshot returns a copy of the engine's learned per-PE costs.
func (e *Engine) CostSnapshot() map[string]float64 {
	e.costMu.Lock()
	defer e.costMu.Unlock()
	out := make(map[string]float64, len(e.peCosts))
	for pe, c := range e.peCosts {
		out[pe] = c
	}
	return out
}

// Execute runs one serverless request end to end.
func (e *Engine) Execute(req core.ExecutionRequest) (*core.ExecutionResponse, error) {
	if req.WorkflowCode == "" {
		return nil, core.ErrBadRequest("workflowCode", "execution request carries no workflow code (the server resolves names/ids before dispatch)")
	}
	env, err := codec.Decode(req.WorkflowCode)
	if err != nil {
		return nil, core.ErrBadRequest("workflowCode", "undecodable workflow envelope: %v", err)
	}

	// Dependency management: union of client-declared and engine-detected
	// imports, installed before execution (Section 3.3's auto-import).
	imports := map[string]bool{}
	for _, im := range req.Imports {
		imports[im] = true
	}
	for _, im := range env.Imports {
		imports[im] = true
	}
	if detected, derr := DetectImports(env.Source); derr == nil {
		for _, im := range detected {
			imports[im] = true
		}
	}
	var toInstall []string
	for im := range imports {
		toInstall = append(toInstall, im)
	}
	installed, err := e.env.Install(toInstall)
	if err != nil {
		return nil, core.ErrExecution("library installation failed: %v", err)
	}

	// Resource staging: the 'resources' directory travels base64-encoded
	// and is materialized for open() inside PE code.
	resourceDir, cleanup, err := e.stageResources(req.Resources)
	if err != nil {
		return nil, err
	}
	defer cleanup()

	build, err := pype.BuildWorkflow(env.Source, pype.Options{
		Seed:        req.Seed,
		ResourceDir: resourceDir,
		Modules:     ScienceModules(e.cfg.VOBaseURL, e.cfg.HTTPTimeout),
		MaxSteps:    e.cfg.MaxSteps,
	})
	if err != nil {
		return nil, core.ErrExecution("building workflow: %v", err)
	}

	opts, err := e.runOptions(req, build)
	if err != nil {
		return nil, err
	}
	result, err := dataflow.Run(build.Graph, opts)
	if err != nil {
		return nil, core.ErrExecution("enactment failed: %v", err)
	}
	// Remember what each PE cost, so the next weighted-allocation run
	// divides instances by measured load instead of evenly.
	e.learnCosts(result.CostProfile())

	resp := &core.ExecutionResponse{
		Output:             result.StdoutText,
		Summary:            result.Summary(),
		DurationMS:         float64(result.Duration.Microseconds()) / 1000,
		InstalledLibraries: installed,
		Outputs:            map[string][]any{},
	}
	for _, key := range result.OutputKeys() {
		resp.Outputs[key] = result.Outputs(key)
	}
	return resp, nil
}

// runOptions translates the wire request into dataflow options, resolving
// mapping, process count and input shape (iterations vs initial records).
func (e *Engine) runOptions(req core.ExecutionRequest, build *pype.BuildResult) (dataflow.Options, error) {
	mapping, err := dataflow.ParseMapping(req.Process)
	if err != nil {
		return dataflow.Options{}, core.ErrBadRequest("process", "%v", err)
	}
	opts := dataflow.Options{
		Mapping:   mapping,
		Args:      req.Args,
		Metrics:   e.flow,
		QueueCap:  e.cfg.FlowQueueCap,
		AllocMode: e.cfg.FlowAlloc,
	}
	if req.Args != nil {
		if n, ok := req.Args["num"]; ok {
			switch v := n.(type) {
			case float64:
				opts.Processes = int(v)
			case int:
				opts.Processes = v
			case int64:
				opts.Processes = int(v)
			default:
				return dataflow.Options{}, core.ErrBadRequest("args.num", "process count must be a number, got %T", n)
			}
		}
		if a, ok := req.Args["alloc"]; ok {
			s, ok := a.(string)
			if !ok {
				return dataflow.Options{}, core.ErrBadRequest("args.alloc", "allocation mode must be a string, got %T", a)
			}
			mode, err := dataflow.ParseAllocMode(s)
			if err != nil {
				return dataflow.Options{}, core.ErrBadRequest("args.alloc", "%v", err)
			}
			opts.AllocMode = mode
		}
	}
	if opts.AllocMode == dataflow.AllocWeighted {
		opts.PECosts = e.CostSnapshot()
	}
	switch in := req.Input.(type) {
	case nil:
		opts.Iterations = 1
	case float64:
		opts.Iterations = int(in)
	case int:
		opts.Iterations = in
	case int64:
		opts.Iterations = int(in)
	case []any:
		records, err := toInitialInputs(in)
		if err != nil {
			return dataflow.Options{}, err
		}
		opts.InitialInputs = records
		opts.Iterations = 1
	default:
		return dataflow.Options{}, core.ErrBadRequest("input", "input must be an iteration count or a list of input records, got %T", req.Input)
	}
	// The engine autonomously identifies the initial PE (Section 3.3); a
	// workflow whose root consumes inputs but received none still runs —
	// the injector simply closes the stream.
	if _, err := build.Graph.InitialPE(); err != nil {
		return dataflow.Options{}, core.ErrExecution("%v", err)
	}
	return opts, nil
}

func toInitialInputs(items []any) ([]map[string]dataflow.Value, error) {
	out := make([]map[string]dataflow.Value, 0, len(items))
	for i, item := range items {
		rec, ok := item.(map[string]any)
		if !ok {
			return nil, core.ErrBadRequest("input", "input[%d] must be an object mapping port to value, got %T", i, item)
		}
		m := make(map[string]dataflow.Value, len(rec))
		for k, v := range rec {
			m[k] = v
		}
		out = append(out, m)
	}
	return out, nil
}

// stageResources materializes the request's resources into a directory and
// returns it with a cleanup function.
func (e *Engine) stageResources(resources map[string]string) (string, func(), error) {
	if len(resources) == 0 && e.cfg.WorkDir == "" {
		return "", func() {}, nil
	}
	dir := e.cfg.WorkDir
	cleanup := func() {}
	if dir == "" {
		tmp, err := os.MkdirTemp("", "laminar-resources-*")
		if err != nil {
			return "", nil, core.ErrInternal("creating resources dir: %v", err)
		}
		dir = tmp
		cleanup = func() { _ = os.RemoveAll(tmp) }
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", nil, core.ErrInternal("creating resources dir: %v", err)
	}
	for name, b64 := range resources {
		clean := filepath.Clean(name)
		if strings.HasPrefix(clean, "..") || filepath.IsAbs(clean) {
			cleanup()
			return "", nil, core.ErrBadRequest("resources", "resource name %q escapes the resources directory", name)
		}
		data, err := base64.StdEncoding.DecodeString(b64)
		if err != nil {
			cleanup()
			return "", nil, core.ErrBadRequest("resources", "resource %q is not valid base64: %v", name, err)
		}
		full := filepath.Join(dir, clean)
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			cleanup()
			return "", nil, core.ErrInternal("staging resource %q: %v", name, err)
		}
		if err := os.WriteFile(full, data, 0o644); err != nil {
			cleanup()
			return "", nil, core.ErrInternal("staging resource %q: %v", name, err)
		}
	}
	return dir, cleanup, nil
}

// LintWorkflow statically checks a registered workflow's code for
// structural defects (dataflow.Graph.Lint), the registration-time gate of
// ROADMAP item 4. The policy is build-then-lint:
//
//   - Code that is not a Laminar workflow envelope (legacy opaque blobs,
//     PE envelopes) is not lintable: (nil, nil) — it registers as before.
//   - A workflow envelope that decodes but does not build is itself the
//     defect: the error names why.
//   - A buildable workflow must pass Lint; issues come back for the server
//     to reject with a named defect (HTTP 400).
//
// Building executes only module-level graph-construction code under the
// engine's science modules and step bound, exactly as Execute would.
func (e *Engine) LintWorkflow(encoded string) ([]dataflow.LintIssue, error) {
	env, err := codec.Decode(encoded)
	if err != nil || env.Kind != codec.KindWorkflow {
		return nil, nil
	}
	build, err := pype.BuildWorkflow(env.Source, pype.Options{
		Stdout:   &bytes.Buffer{},
		Modules:  ScienceModules(e.cfg.VOBaseURL, e.cfg.HTTPTimeout),
		MaxSteps: e.cfg.MaxSteps,
	})
	if err != nil {
		return nil, core.ErrBadRequest("workflowCode", "workflow does not build: %v", err)
	}
	return build.Graph.Lint(0), nil
}

// DescribeWorkflow parses an envelope and renders the concrete-workflow
// description for a process budget — the Fig. 1 view.
func DescribeWorkflow(encoded string, processes int) (string, error) {
	env, err := codec.Decode(encoded)
	if err != nil {
		return "", err
	}
	build, err := pype.BuildWorkflow(env.Source, pype.Options{Stdout: &bytes.Buffer{}})
	if err != nil {
		return "", err
	}
	plan, err := dataflow.NewPlan(build.Graph, processes)
	if err != nil {
		return "", err
	}
	return plan.Describe(), nil
}

// Interp note: pycode interpreters are created per PE instance inside pype;
// the engine itself never evaluates user code on its own goroutine.
var _ = pycode.TypeName
