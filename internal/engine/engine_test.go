package engine

import (
	"encoding/base64"
	"strings"
	"testing"
	"time"

	"laminar/internal/codec"
	"laminar/internal/core"
)

func encodeWF(t *testing.T, source string) string {
	t.Helper()
	enc, err := codec.Encode(codec.Envelope{Kind: codec.KindWorkflow, Name: "wf", Source: source})
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

const producerSource = `
import random

class Producer(ProducerPE):
    def __init__(self):
        ProducerPE.__init__(self)
    def _process(self):
        return random.randint(1, 100)
`

func TestDetectImports(t *testing.T) {
	src := `
import random
from collections import defaultdict

class PE1(GenericPE):
    def __init__(self):
        from math import sqrt
        GenericPE.__init__(self)
    def _process(self, inputs):
        import json
        import os.path
        return json.dumps(inputs)
`
	imports, err := DetectImports(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"collections", "json", "math", "os", "random"}
	if strings.Join(imports, ",") != strings.Join(want, ",") {
		t.Errorf("imports = %v, want %v", imports, want)
	}
}

func TestDetectImportsSkipsDispel4py(t *testing.T) {
	imports, err := DetectImports("from dispel4py import ProducerPE\nimport math\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(imports) != 1 || imports[0] != "math" {
		t.Errorf("imports = %v", imports)
	}
}

func TestExecuteSimpleProducer(t *testing.T) {
	e := New(Config{InstallDelayScale: 0})
	resp, err := e.Execute(core.ExecutionRequest{
		WorkflowCode: encodeWF(t, producerSource),
		Input:        3,
		Process:      "SIMPLE",
		Seed:         9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(resp.Outputs["Producer.output"]); got != 3 {
		t.Fatalf("outputs: %v", resp.Outputs)
	}
	if resp.DurationMS < 0 {
		t.Error("negative duration")
	}
}

func TestExecuteInstallsDetectedImports(t *testing.T) {
	e := New(Config{InstallDelayScale: 0})
	src := `
import astropy

class P(ProducerPE):
    def __init__(self):
        ProducerPE.__init__(self)
    def _process(self):
        return 1
`
	resp, err := e.Execute(core.ExecutionRequest{WorkflowCode: encodeWF(t, src), Input: 1})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, lib := range resp.InstalledLibraries {
		if lib == "astropy" {
			found = true
		}
	}
	if !found {
		t.Errorf("astropy not auto-installed: %v", resp.InstalledLibraries)
	}
	if !e.Env().Has("astropy") {
		t.Error("env should now have astropy")
	}
	// second run installs nothing new
	resp2, err := e.Execute(core.ExecutionRequest{WorkflowCode: encodeWF(t, src), Input: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp2.InstalledLibraries) != 0 {
		t.Errorf("re-run should install nothing: %v", resp2.InstalledLibraries)
	}
}

func TestExecuteUnknownLibraryFails(t *testing.T) {
	e := New(Config{InstallDelayScale: 0})
	src := `
import tensorflow

class P(ProducerPE):
    def __init__(self):
        ProducerPE.__init__(self)
    def _process(self):
        return 1
`
	_, err := e.Execute(core.ExecutionRequest{WorkflowCode: encodeWF(t, src), Input: 1})
	if err == nil {
		t.Fatal("unknown library should fail installation")
	}
	apiErr, ok := err.(*core.APIError)
	if !ok || apiErr.Type != "ExecutionError" {
		t.Errorf("got %v", err)
	}
}

func TestExecuteRejectsBadRequests(t *testing.T) {
	e := New(Config{InstallDelayScale: 0})
	if _, err := e.Execute(core.ExecutionRequest{}); err == nil {
		t.Error("missing code should fail")
	}
	if _, err := e.Execute(core.ExecutionRequest{WorkflowCode: "garbage"}); err == nil {
		t.Error("bad envelope should fail")
	}
	enc := encodeWF(t, producerSource)
	if _, err := e.Execute(core.ExecutionRequest{WorkflowCode: enc, Process: "SPARK"}); err == nil {
		t.Error("unknown mapping should fail")
	}
	if _, err := e.Execute(core.ExecutionRequest{WorkflowCode: enc, Input: "five"}); err == nil {
		t.Error("string input should fail")
	}
	if _, err := e.Execute(core.ExecutionRequest{WorkflowCode: enc, Args: map[string]any{"num": "many"}}); err == nil {
		t.Error("non-numeric process count should fail")
	}
}

func TestResourceStaging(t *testing.T) {
	e := New(Config{InstallDelayScale: 0})
	src := `
class Reader(IterativePE):
    def __init__(self):
        IterativePE.__init__(self)
    def _process(self, filename):
        return open(filename).read().strip()
`
	resp, err := e.Execute(core.ExecutionRequest{
		WorkflowCode: encodeWF(t, src),
		Input:        []any{map[string]any{"input": "data.txt"}},
		Resources: map[string]string{
			"data.txt": base64.StdEncoding.EncodeToString([]byte("hello resources\n")),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := resp.Outputs["Reader.output"]
	if len(out) != 1 || out[0] != "hello resources" {
		t.Fatalf("outputs: %v", resp.Outputs)
	}
}

func TestResourceEscapeRejected(t *testing.T) {
	e := New(Config{InstallDelayScale: 0})
	_, err := e.Execute(core.ExecutionRequest{
		WorkflowCode: encodeWF(t, producerSource),
		Input:        1,
		Resources: map[string]string{
			"../escape.txt": base64.StdEncoding.EncodeToString([]byte("nope")),
		},
	})
	if err == nil {
		t.Fatal("path escape should be rejected")
	}
	_, err = e.Execute(core.ExecutionRequest{
		WorkflowCode: encodeWF(t, producerSource),
		Input:        1,
		Resources:    map[string]string{"x.txt": "not-base64!!"},
	})
	if err == nil {
		t.Fatal("bad base64 should be rejected")
	}
}

func TestRemoteServerRoundTrip(t *testing.T) {
	e := New(Config{InstallDelayScale: 0})
	rs := NewRemoteServer(e, 5*time.Millisecond)
	url, err := rs.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()

	// health endpoint
	resp, err := httpGet(url + "/healthz")
	if err != nil || !strings.Contains(resp, "ok") {
		t.Fatalf("health: %q %v", resp, err)
	}
	// run endpoint with latency: must take at least the WAN time
	start := time.Now()
	body := `{"workflowCode": ` + jsonString(encodeWF(t, producerSource)) + `, "input": 2, "seed": 4}`
	out, status, err := httpPost(url+"/run", body)
	if err != nil {
		t.Fatal(err)
	}
	if status != 200 {
		t.Fatalf("status %d: %s", status, out)
	}
	if time.Since(start) < 5*time.Millisecond {
		t.Error("WAN latency not applied")
	}
	if !strings.Contains(out, "durationMs") {
		t.Errorf("response: %s", out)
	}
	// error path: bad JSON gives the standardized error shape
	out, status, err = httpPost(url+"/run", "{broken")
	if err != nil {
		t.Fatal(err)
	}
	if status != 400 || !strings.Contains(out, "BadRequestError") {
		t.Errorf("status %d body %s", status, out)
	}
}

func TestDescribeWorkflow(t *testing.T) {
	enc := encodeWF(t, `
class A(ProducerPE):
    def __init__(self):
        ProducerPE.__init__(self)
    def _process(self):
        return 1

class B(ConsumerPE):
    def __init__(self):
        ConsumerPE.__init__(self)
    def _process(self, v):
        pass

g = WorkflowGraph()
a = A()
b = B()
g.connect(a, 'output', b, 'input')
`)
	desc, err := DescribeWorkflow(enc, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(desc, "A") || !strings.Contains(desc, "x3") {
		t.Errorf("describe: %s", desc)
	}
}
