package lexical

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
)

// snapshotVersion is bumped whenever the binary layout changes; a restore
// of an unknown version fails and the caller rebuilds from source text.
const snapshotVersion = 1

// Snapshot is the index's durable term statistics: everything needed to
// serve BM25 without re-tokenizing the corpus. Each document carries an
// FNV-1a checksum of the source text it was built from, so a restore can
// refuse a snapshot that no longer matches the records it rides alongside
// — the same derivable-section contract the vector index snapshots use
// (see storage: absent or stale sections mean rebuild, never corruption).
type Snapshot struct {
	Docs []DocSnapshot
}

// DocSnapshot is one document's stored statistics.
type DocSnapshot struct {
	ID        int
	SourceSum uint64 // FNV-1a of the source text
	Length    uint32 // total tokens
	Terms     []TermCount
}

// TermCount is one (term, tf) pair.
type TermCount struct {
	Term string
	TF   uint32
}

// sourceSum is the FNV-1a checksum binding a snapshot entry to its source
// text; comparing sums on restore is ~100x cheaper than re-tokenizing.
func sourceSum(text string) uint64 {
	h := fnv.New64a()
	io.WriteString(h, text)
	return h.Sum64()
}

// Snapshot captures the index's current statistics in deterministic order
// (docs by id, terms lexicographically) so identical indexes encode to
// identical bytes — the sidecar's content-derived file naming depends on
// that.
func (ix *Index) Snapshot() *Snapshot {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	snap := &Snapshot{Docs: make([]DocSnapshot, 0, len(ix.docs))}
	for id, entry := range ix.docs {
		doc := DocSnapshot{
			ID:        id,
			SourceSum: entry.sum,
			Length:    entry.length,
			Terms:     make([]TermCount, 0, len(entry.terms)),
		}
		for t, tf := range entry.terms {
			doc.Terms = append(doc.Terms, TermCount{Term: t, TF: tf})
		}
		sort.Slice(doc.Terms, func(i, j int) bool { return doc.Terms[i].Term < doc.Terms[j].Term })
		snap.Docs = append(snap.Docs, doc)
	}
	sort.Slice(snap.Docs, func(i, j int) bool { return snap.Docs[i].ID < snap.Docs[j].ID })
	return snap
}

// Restore replaces the index's contents from a snapshot, validating each
// stored document against the live source text in docs (id → text). The
// check is all-or-nothing: any missing document, extra document, or
// checksum mismatch returns an error and leaves the index unchanged, and
// the caller rebuilds from source via Upsert. A nil snapshot restores only
// when docs is empty too.
func (ix *Index) Restore(snap *Snapshot, docs map[int]string) error {
	var sdocs []DocSnapshot
	if snap != nil {
		sdocs = snap.Docs
	}
	if len(sdocs) != len(docs) {
		return fmt.Errorf("lexical: snapshot has %d docs, store has %d", len(sdocs), len(docs))
	}
	entries := make(map[int]*docEntry, len(sdocs))
	for _, doc := range sdocs {
		text, ok := docs[doc.ID]
		if !ok {
			return fmt.Errorf("lexical: snapshot doc %d not in store", doc.ID)
		}
		if doc.SourceSum != sourceSum(text) {
			return fmt.Errorf("lexical: snapshot doc %d stale (source changed)", doc.ID)
		}
		if _, dup := entries[doc.ID]; dup {
			return fmt.Errorf("lexical: snapshot doc %d duplicated", doc.ID)
		}
		entry := &docEntry{
			terms:  make(map[string]uint32, len(doc.Terms)),
			length: doc.Length,
			sum:    doc.SourceSum,
		}
		var total uint64
		for _, tc := range doc.Terms {
			if tc.Term == "" || tc.TF == 0 {
				return fmt.Errorf("lexical: snapshot doc %d has empty term or zero tf", doc.ID)
			}
			if _, dup := entry.terms[tc.Term]; dup {
				return fmt.Errorf("lexical: snapshot doc %d repeats term %q", doc.ID, tc.Term)
			}
			entry.terms[tc.Term] = tc.TF
			total += uint64(tc.TF)
		}
		if total != uint64(doc.Length) || doc.Length == 0 {
			return fmt.Errorf("lexical: snapshot doc %d length %d != tf sum %d", doc.ID, doc.Length, total)
		}
		entries[doc.ID] = entry
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.docs = make(map[int]*docEntry, len(entries))
	ix.postings = map[string]map[int]uint32{}
	ix.totalLen = 0
	for id, entry := range entries {
		ix.installLocked(id, entry)
	}
	return nil
}

// Encode writes the snapshot's binary form: little-endian, length-prefixed
// strings, versioned. The layout is
//
//	u32 version | u32 docCount
//	per doc: u64 id | u64 sourceSum | u32 length | u32 termCount
//	  per term: u16 len | bytes | u32 tf
func (s *Snapshot) Encode(w io.Writer) error {
	le := binary.LittleEndian
	var scratch [8]byte
	writeU32 := func(v uint32) error {
		le.PutUint32(scratch[:4], v)
		_, err := w.Write(scratch[:4])
		return err
	}
	writeU64 := func(v uint64) error {
		le.PutUint64(scratch[:8], v)
		_, err := w.Write(scratch[:8])
		return err
	}
	if err := writeU32(snapshotVersion); err != nil {
		return err
	}
	if err := writeU32(uint32(len(s.Docs))); err != nil {
		return err
	}
	for _, doc := range s.Docs {
		if err := writeU64(uint64(doc.ID)); err != nil {
			return err
		}
		if err := writeU64(doc.SourceSum); err != nil {
			return err
		}
		if err := writeU32(doc.Length); err != nil {
			return err
		}
		if err := writeU32(uint32(len(doc.Terms))); err != nil {
			return err
		}
		for _, tc := range doc.Terms {
			if len(tc.Term) > 0xFFFF {
				return fmt.Errorf("lexical: term longer than 64KiB")
			}
			le.PutUint16(scratch[:2], uint16(len(tc.Term)))
			if _, err := w.Write(scratch[:2]); err != nil {
				return err
			}
			if _, err := io.WriteString(w, tc.Term); err != nil {
				return err
			}
			if err := writeU32(tc.TF); err != nil {
				return err
			}
		}
	}
	return nil
}

// DecodeSnapshot reads the binary form Encode writes. It validates
// structure (version, counts, sane lengths) but not source checksums —
// that is Restore's job, which has the live text to compare against.
func DecodeSnapshot(r io.Reader) (*Snapshot, error) {
	le := binary.LittleEndian
	var scratch [8]byte
	readU32 := func() (uint32, error) {
		if _, err := io.ReadFull(r, scratch[:4]); err != nil {
			return 0, err
		}
		return le.Uint32(scratch[:4]), nil
	}
	readU64 := func() (uint64, error) {
		if _, err := io.ReadFull(r, scratch[:8]); err != nil {
			return 0, err
		}
		return le.Uint64(scratch[:8]), nil
	}
	version, err := readU32()
	if err != nil {
		return nil, fmt.Errorf("lexical: snapshot header: %w", err)
	}
	if version != snapshotVersion {
		return nil, fmt.Errorf("lexical: unknown snapshot version %d", version)
	}
	docCount, err := readU32()
	if err != nil {
		return nil, fmt.Errorf("lexical: snapshot doc count: %w", err)
	}
	snap := &Snapshot{Docs: make([]DocSnapshot, 0, min(int(docCount), 1<<16))}
	for i := uint32(0); i < docCount; i++ {
		id, err := readU64()
		if err != nil {
			return nil, fmt.Errorf("lexical: snapshot doc %d id: %w", i, err)
		}
		sum, err := readU64()
		if err != nil {
			return nil, fmt.Errorf("lexical: snapshot doc %d sum: %w", i, err)
		}
		length, err := readU32()
		if err != nil {
			return nil, fmt.Errorf("lexical: snapshot doc %d length: %w", i, err)
		}
		termCount, err := readU32()
		if err != nil {
			return nil, fmt.Errorf("lexical: snapshot doc %d term count: %w", i, err)
		}
		doc := DocSnapshot{
			ID:        int(id),
			SourceSum: sum,
			Length:    length,
			Terms:     make([]TermCount, 0, min(int(termCount), 1<<12)),
		}
		for j := uint32(0); j < termCount; j++ {
			if _, err := io.ReadFull(r, scratch[:2]); err != nil {
				return nil, fmt.Errorf("lexical: snapshot doc %d term %d: %w", i, j, err)
			}
			termLen := int(le.Uint16(scratch[:2]))
			buf := make([]byte, termLen)
			if _, err := io.ReadFull(r, buf); err != nil {
				return nil, fmt.Errorf("lexical: snapshot doc %d term %d bytes: %w", i, j, err)
			}
			tf, err := readU32()
			if err != nil {
				return nil, fmt.Errorf("lexical: snapshot doc %d term %d tf: %w", i, j, err)
			}
			doc.Terms = append(doc.Terms, TermCount{Term: string(buf), TF: tf})
		}
		snap.Docs = append(snap.Docs, doc)
	}
	return snap, nil
}
