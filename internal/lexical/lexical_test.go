package lexical

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestTokenizeSplitsIdentifiers(t *testing.T) {
	got := Tokenize("parseHTTPRequest photon_events_filter_0042 v3")
	want := []string{"parse", "http", "request", "photon", "events", "filter", "0042", "v", "3"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
}

func TestUpsertSearchDelete(t *testing.T) {
	ix := New()
	ix.Upsert(1, "filter photon events from the detector stream")
	ix.Upsert(2, "aggregate photon counts per window")
	ix.Upsert(3, "render dashboard widgets")

	if ix.Len() != 3 {
		t.Fatalf("Len = %d, want 3", ix.Len())
	}
	hits := ix.Search("photon events", 10, nil)
	if len(hits) != 2 {
		t.Fatalf("Search returned %d hits, want 2: %+v", len(hits), hits)
	}
	if hits[0].ID != 1 {
		t.Fatalf("doc 1 matches both terms and should rank first, got %+v", hits)
	}
	if hits[0].Score <= hits[1].Score {
		t.Fatalf("scores not descending: %+v", hits)
	}

	// The filter scopes visibility exactly like the vector indexes.
	hits = ix.Search("photon", 10, func(id int) bool { return id == 2 })
	if len(hits) != 1 || hits[0].ID != 2 {
		t.Fatalf("filtered search = %+v, want only doc 2", hits)
	}

	ix.Delete(1)
	if ix.Len() != 2 {
		t.Fatalf("Len after delete = %d, want 2", ix.Len())
	}
	hits = ix.Search("events detector", 10, nil)
	if len(hits) != 0 {
		t.Fatalf("deleted doc still retrievable: %+v", hits)
	}
	// Postings for terms unique to doc 1 must be gone, not empty husks.
	if ix.Terms() == 0 {
		t.Fatal("Terms = 0 after delete, other docs' terms vanished")
	}
	for _, term := range Tokenize("filter events from the detector stream") {
		if _, ok := ix.postings[term]; ok && term != "filter" {
			// "filter" could survive via no other doc — check emptiness instead.
			t.Fatalf("term %q retains postings after sole doc deleted", term)
		}
	}
}

func TestUpsertReplacesAndEmptyRemoves(t *testing.T) {
	ix := New()
	ix.Upsert(7, "alpha beta gamma")
	ix.Upsert(7, "delta epsilon")
	if hits := ix.Search("alpha", 10, nil); len(hits) != 0 {
		t.Fatalf("stale terms retrievable after replace: %+v", hits)
	}
	if hits := ix.Search("delta", 10, nil); len(hits) != 1 || hits[0].ID != 7 {
		t.Fatalf("replaced doc not retrievable: %+v", hits)
	}
	// Empty text removes, mirroring the vector indexes' convention.
	ix.Upsert(7, "   \t  ")
	if ix.Len() != 0 {
		t.Fatalf("Len after empty upsert = %d, want 0", ix.Len())
	}
	if ix.Terms() != 0 || ix.totalLen != 0 {
		t.Fatalf("index not empty after removal: terms=%d totalLen=%d", ix.Terms(), ix.totalLen)
	}
}

func TestSearchEdgeCases(t *testing.T) {
	ix := New()
	if hits := ix.Search("anything", 10, nil); hits != nil {
		t.Fatalf("empty index returned %+v", hits)
	}
	ix.Upsert(1, "alpha beta")
	if hits := ix.Search("", 10, nil); hits != nil {
		t.Fatalf("empty query returned %+v", hits)
	}
	if hits := ix.Search("alpha", 0, nil); hits != nil {
		t.Fatalf("k=0 returned %+v", hits)
	}
	if hits := ix.Search("zeta", 10, nil); len(hits) != 0 {
		t.Fatalf("unindexed term returned %+v", hits)
	}
}

func TestSearchDeterministicTiebreak(t *testing.T) {
	// Identical docs score identically; the (score desc, id asc) order must
	// break the tie by id regardless of map iteration order.
	ix := New()
	for _, id := range []int{9, 3, 7, 1, 5} {
		ix.Upsert(id, "identical text body")
	}
	for trial := 0; trial < 20; trial++ {
		hits := ix.Search("identical", 3, nil)
		ids := []int{hits[0].ID, hits[1].ID, hits[2].ID}
		if !reflect.DeepEqual(ids, []int{1, 3, 5}) {
			t.Fatalf("trial %d: tie order %v, want [1 3 5]", trial, ids)
		}
	}
}

func TestBM25RareTermOutweighsCommon(t *testing.T) {
	ix := New()
	for i := 0; i < 50; i++ {
		ix.Upsert(i, "process records batch pipeline")
	}
	ix.Upsert(99, "process quasar records")
	hits := ix.Search("quasar process", 5, nil)
	if len(hits) == 0 || hits[0].ID != 99 {
		t.Fatalf("doc holding the rare term should rank first, got %+v", hits)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	ix := New()
	docs := map[int]string{
		1: "filter photonEvents by threshold",
		2: "aggregate window counts",
		3: "filter_noise from stream",
	}
	for id, text := range docs {
		ix.Upsert(id, text)
	}
	snap := ix.Snapshot()

	var buf bytes.Buffer
	if err := snap.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	decoded, err := DecodeSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("DecodeSnapshot: %v", err)
	}
	if !reflect.DeepEqual(decoded, snap) {
		t.Fatalf("decode mismatch:\n got %+v\nwant %+v", decoded, snap)
	}

	restored := New()
	if err := restored.Restore(decoded, docs); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	// The restored index must rank identically to the rebuilt one.
	for _, q := range []string{"filter", "photon events", "window", "noise stream"} {
		a := ix.Search(q, 10, nil)
		b := restored.Search(q, 10, nil)
		if len(a) != len(b) {
			t.Fatalf("query %q: %d vs %d hits", q, len(a), len(b))
		}
		for i := range a {
			if a[i].ID != b[i].ID || math.Abs(a[i].Score-b[i].Score) > 1e-12 {
				t.Fatalf("query %q hit %d: %+v vs %+v", q, i, a[i], b[i])
			}
		}
	}
}

func TestSnapshotDeterministicBytes(t *testing.T) {
	build := func() *bytes.Buffer {
		ix := New()
		ix.Upsert(2, "beta gamma alpha")
		ix.Upsert(1, "alpha beta")
		var buf bytes.Buffer
		if err := ix.Snapshot().Encode(&buf); err != nil {
			t.Fatalf("Encode: %v", err)
		}
		return &buf
	}
	a, b := build(), build()
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("identical indexes encoded to different bytes")
	}
}

func TestRestoreRejectsStaleOrMismatched(t *testing.T) {
	ix := New()
	docs := map[int]string{1: "alpha beta", 2: "gamma delta"}
	for id, text := range docs {
		ix.Upsert(id, text)
	}
	snap := ix.Snapshot()

	cases := []struct {
		name string
		docs map[int]string
	}{
		{"source changed", map[int]string{1: "alpha beta CHANGED", 2: "gamma delta"}},
		{"doc missing", map[int]string{1: "alpha beta"}},
		{"doc added", map[int]string{1: "alpha beta", 2: "gamma delta", 3: "extra"}},
		{"ids swapped", map[int]string{2: "alpha beta", 1: "gamma delta"}},
	}
	for _, tc := range cases {
		fresh := New()
		fresh.Upsert(42, "pre-existing state")
		if err := fresh.Restore(snap, tc.docs); err == nil {
			t.Errorf("%s: Restore succeeded, want error", tc.name)
		}
		// A failed restore must leave the index unchanged.
		if hits := fresh.Search("pre existing", 10, nil); len(hits) != 1 || hits[0].ID != 42 {
			t.Errorf("%s: failed restore mutated the index: %+v", tc.name, hits)
		}
	}

	// Happy path still works after the negative cases.
	fresh := New()
	if err := fresh.Restore(snap, docs); err != nil {
		t.Fatalf("valid Restore: %v", err)
	}

	// Nil snapshot: valid only for an empty store.
	empty := New()
	if err := empty.Restore(nil, nil); err != nil {
		t.Fatalf("nil snapshot + empty store should restore: %v", err)
	}
	if err := empty.Restore(nil, docs); err == nil {
		t.Fatal("nil snapshot + populated store should fail")
	}
}

func TestRestoreRejectsCorruptStatistics(t *testing.T) {
	docs := map[int]string{1: "alpha beta"}
	sum := sourceSum("alpha beta")
	cases := []struct {
		name string
		snap *Snapshot
	}{
		{"zero tf", &Snapshot{Docs: []DocSnapshot{{ID: 1, SourceSum: sum, Length: 2,
			Terms: []TermCount{{"alpha", 0}, {"beta", 2}}}}}},
		{"empty term", &Snapshot{Docs: []DocSnapshot{{ID: 1, SourceSum: sum, Length: 2,
			Terms: []TermCount{{"", 1}, {"beta", 1}}}}}},
		{"length mismatch", &Snapshot{Docs: []DocSnapshot{{ID: 1, SourceSum: sum, Length: 5,
			Terms: []TermCount{{"alpha", 1}, {"beta", 1}}}}}},
		{"duplicate term", &Snapshot{Docs: []DocSnapshot{{ID: 1, SourceSum: sum, Length: 2,
			Terms: []TermCount{{"alpha", 1}, {"alpha", 1}}}}}},
	}
	for _, tc := range cases {
		if err := New().Restore(tc.snap, docs); err == nil {
			t.Errorf("%s: Restore succeeded, want error", tc.name)
		}
	}
}

func TestDecodeRejectsCorruptBytes(t *testing.T) {
	ix := New()
	ix.Upsert(1, "alpha beta gamma")
	var buf bytes.Buffer
	if err := ix.Snapshot().Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	full := buf.Bytes()

	if _, err := DecodeSnapshot(bytes.NewReader(nil)); err == nil {
		t.Error("empty input decoded")
	}
	if _, err := DecodeSnapshot(bytes.NewReader(full[:len(full)-3])); err == nil {
		t.Error("truncated input decoded")
	}
	bad := append([]byte(nil), full...)
	bad[0] = 99 // version byte
	if _, err := DecodeSnapshot(bytes.NewReader(bad)); err == nil {
		t.Error("wrong version decoded")
	}
}

func TestConcurrentUpsertSearch(t *testing.T) {
	ix := New()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			ix.Upsert(i%50, strings.Repeat("alpha beta gamma ", i%5+1))
			if i%7 == 0 {
				ix.Delete(i % 50)
			}
		}
	}()
	for i := 0; i < 500; i++ {
		ix.Search("alpha gamma", 10, nil)
		ix.Len()
		ix.Terms()
	}
	<-done
}
