// Package lexical is the registry's keyword leg: a BM25 inverted index
// over PE and workflow text (names, descriptions, decoded code). It is the
// no-GPU complement to the dense vector indexes — exact-identifier queries
// that embeddings fuzz ("photon_events_filter_0042") resolve here through
// plain term statistics, and reciprocal-rank fusion (internal/search)
// merges the two rankings into one hybrid result.
//
// The index mirrors the vector indexes' contract: postings are maintained
// incrementally on every Upsert/Delete (never rebuilt per query), Search
// takes the same visibility filter and returns index.Candidate lists under
// the same deterministic (score desc, id asc) total order, and the trained
// state snapshots into the registry's v2 sidecar as an optional section —
// a restore validates per-document source checksums and skips
// re-tokenizing the corpus on cold start.
package lexical

import (
	"math"
	"sync"

	"laminar/internal/embed"
	"laminar/internal/index"
)

// BM25 parameters: the standard Robertson defaults. K1 saturates term
// frequency; B scales the document-length normalization.
const (
	K1 = 1.2
	B  = 0.75
)

// Tokenize is the code-aware tokenizer behind every postings list and
// query: identifiers split on camelCase/snake_case boundaries, everything
// lowercases, punctuation separates. It shares the embedding zoo's
// tokenizer so the lexical and semantic legs agree on what a "term" is.
func Tokenize(text string) []string {
	return embed.Tokenize(text, true)
}

// docEntry is one indexed document's term statistics.
type docEntry struct {
	terms  map[string]uint32 // term → tf
	length uint32            // total tokens (sum of tfs)
	sum    uint64            // FNV-1a of the source text (snapshot binding)
}

// Index is an incrementally maintained BM25 inverted index. All methods
// are safe for concurrent use; like the vector indexes it synchronizes
// internally so callers only hold it long enough to copy the pointer.
type Index struct {
	mu       sync.RWMutex
	docs     map[int]*docEntry
	postings map[string]map[int]uint32 // term → doc id → tf
	totalLen uint64                    // sum of doc lengths, for avgdl
}

// New creates an empty index.
func New() *Index {
	return &Index{
		docs:     map[int]*docEntry{},
		postings: map[string]map[int]uint32{},
	}
}

// Name reports the ranking function, mirroring index.VectorIndex.Name.
func (ix *Index) Name() string { return "bm25" }

// Len reports the number of indexed documents.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.docs)
}

// Terms reports the number of distinct terms with live postings.
func (ix *Index) Terms() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.postings)
}

// Upsert indexes text under id, replacing any previous document. A text
// that tokenizes to nothing removes the document — the same
// empty-input-removes convention the vector indexes use.
func (ix *Index) Upsert(id int, text string) {
	tokens := Tokenize(text)
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.removeLocked(id)
	if len(tokens) == 0 {
		return
	}
	entry := &docEntry{
		terms:  make(map[string]uint32, len(tokens)),
		length: uint32(len(tokens)),
		sum:    sourceSum(text),
	}
	for _, t := range tokens {
		entry.terms[t]++
	}
	ix.installLocked(id, entry)
}

// Delete removes a document; absent ids are a no-op.
func (ix *Index) Delete(id int) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.removeLocked(id)
}

// installLocked wires a prepared entry into the postings. Caller holds mu.
func (ix *Index) installLocked(id int, entry *docEntry) {
	ix.docs[id] = entry
	ix.totalLen += uint64(entry.length)
	for t, tf := range entry.terms {
		plist := ix.postings[t]
		if plist == nil {
			plist = map[int]uint32{}
			ix.postings[t] = plist
		}
		plist[id] = tf
	}
}

// removeLocked unwires a document from the postings. Caller holds mu.
func (ix *Index) removeLocked(id int) {
	entry, ok := ix.docs[id]
	if !ok {
		return
	}
	delete(ix.docs, id)
	ix.totalLen -= uint64(entry.length)
	for t := range entry.terms {
		plist := ix.postings[t]
		delete(plist, id)
		if len(plist) == 0 {
			delete(ix.postings, t)
		}
	}
}

// Search ranks documents against the query under BM25, returning at most k
// candidates that pass the filter (nil admits everything), best first under
// the same strict (score desc, id asc) total order every vector index uses.
// Query terms are deduplicated; documents sharing no term score zero and
// are never returned.
func (ix *Index) Search(query string, k int, filter func(int) bool) []index.Candidate {
	terms := Tokenize(query)
	if len(terms) == 0 || k <= 0 {
		return nil
	}
	seen := make(map[string]bool, len(terms))
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	n := len(ix.docs)
	if n == 0 {
		return nil
	}
	avgdl := float64(ix.totalLen) / float64(n)
	scores := map[int]float64{}
	for _, t := range terms {
		if seen[t] {
			continue
		}
		seen[t] = true
		plist := ix.postings[t]
		if len(plist) == 0 {
			continue
		}
		idf := idf(n, len(plist))
		for id, tf := range plist {
			dl := float64(ix.docs[id].length)
			f := float64(tf)
			scores[id] += idf * f * (K1 + 1) / (f + K1*(1-B+B*dl/avgdl))
		}
	}
	top := index.NewTopK(k)
	for id, score := range scores {
		if filter != nil && !filter(id) {
			continue
		}
		top.Push(index.Candidate{ID: id, Score: score})
	}
	return top.Sorted()
}

// idf is the BM25+ variant that never goes negative: ln(1 + (N-df+0.5)/(df+0.5)).
func idf(n, df int) float64 {
	return math.Log(1 + (float64(n)-float64(df)+0.5)/(float64(df)+0.5))
}
