package lexical

import (
	"reflect"
	"testing"
)

// FuzzTokenize is the BM25 tokenizer's property wall (seed corpus checked
// in under testdata/fuzz/FuzzTokenize). Three properties, each one a bug
// class the inverted index cannot tolerate:
//
//   - total: any UTF-8 (valid or not) tokenizes without panicking and
//     yields no empty tokens;
//   - idempotent: a produced token re-tokenizes to exactly itself, so
//     query terms and postings terms live in the same space;
//   - concatenation-stable: joining two texts with a space never merges
//     or splits tokens across the boundary — Upsert composes bodies from
//     name/description/code with separators, and a boundary-dependent
//     tokenizer would make those docs unsearchable at the seams.
//
// Plus the round trip that justifies the whole index: a document is
// findable by every one of its own tokens.
func FuzzTokenize(f *testing.F) {
	seeds := [][2]string{
		{"", ""},
		{"photon_events_filter_0042", "def photon_events_filter_0042(stream):"},
		{"camelCaseIdent v3", "snake_case_ident 0042"},
		{"a PE that filters photon events", "by threshold, in real time"},
		{"naïve café ümlaut", "日本語のテキスト"},
		{"\xff\xfe broken utf8 \x80", "mixed\xc3\x28invalid"},
		{"tab\there\nnewline", "  spaces   everywhere  "},
		{"x", "1"},
	}
	for _, s := range seeds {
		f.Add(s[0], s[1])
	}
	f.Fuzz(func(t *testing.T, a, b string) {
		ta, tb := Tokenize(a), Tokenize(b)
		for _, tok := range append(append([]string{}, ta...), tb...) {
			if tok == "" {
				t.Fatalf("empty token from %q / %q", a, b)
			}
			if again := Tokenize(tok); len(again) != 1 || again[0] != tok {
				t.Fatalf("token %q not idempotent: re-tokenizes to %q", tok, again)
			}
		}
		joined := Tokenize(a + " " + b)
		if want := append(append([]string{}, ta...), tb...); !reflect.DeepEqual(joined, want) {
			// reflect.DeepEqual treats nil and empty as different; token
			// slices are nil exactly when empty, so normalize first.
			if !(len(joined) == 0 && len(want) == 0) {
				t.Fatalf("space-joined tokenization differs:\n  Tokenize(a)+Tokenize(b) = %q\n  Tokenize(a+\" \"+b)      = %q", want, joined)
			}
		}
		// Round trip: a doc is findable by each of its own tokens.
		if len(ta) > 0 {
			ix := New()
			ix.Upsert(7, a)
			for _, tok := range ta {
				hits := ix.Search(tok, 1, nil)
				if len(hits) != 1 || hits[0].ID != 7 {
					t.Fatalf("doc not findable by own token %q (from %q): %+v", tok, a, hits)
				}
			}
		}
	})
}
