// Package codec implements Laminar's code serialization (Section 3.4.2).
// The paper serializes PEs and workflows with cloudpickle and base64-encodes
// the byte stream for registry storage and network transport; this package
// provides the equivalent contract for pycode sources: a JSON envelope
// (kind, name, source, imports) compressed with gzip and base64-encoded.
// The encoded string is opaque, printable and self-describing — exactly
// what the registry's peCode/workflowCode columns store.
package codec

import (
	"bytes"
	"compress/gzip"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Kind tags what an envelope carries.
const (
	KindPE       = "pe"
	KindWorkflow = "workflow"
)

// Envelope is the serialized form of a PE or workflow.
type Envelope struct {
	// Kind is KindPE or KindWorkflow.
	Kind string `json:"kind"`
	// Name is the PE class name or workflow entry point.
	Name string `json:"name"`
	// Source is the pycode module source.
	Source string `json:"source"`
	// Imports lists detected library dependencies.
	Imports []string `json:"imports,omitempty"`
}

// magic prefixes encoded envelopes so foreign strings fail fast.
const magic = "LAM1"

// Encode serializes an envelope to a printable string.
func Encode(env Envelope) (string, error) {
	if env.Kind != KindPE && env.Kind != KindWorkflow {
		return "", fmt.Errorf("codec: invalid envelope kind %q", env.Kind)
	}
	if strings.TrimSpace(env.Source) == "" {
		return "", fmt.Errorf("codec: envelope source must not be empty")
	}
	raw, err := json.Marshal(env)
	if err != nil {
		return "", fmt.Errorf("codec: marshal: %w", err)
	}
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(raw); err != nil {
		return "", fmt.Errorf("codec: compress: %w", err)
	}
	if err := zw.Close(); err != nil {
		return "", fmt.Errorf("codec: compress: %w", err)
	}
	return magic + base64.StdEncoding.EncodeToString(buf.Bytes()), nil
}

// Decode parses an encoded envelope.
func Decode(s string) (Envelope, error) {
	if !strings.HasPrefix(s, magic) {
		return Envelope{}, fmt.Errorf("codec: not a Laminar envelope (missing %s prefix)", magic)
	}
	data, err := base64.StdEncoding.DecodeString(s[len(magic):])
	if err != nil {
		return Envelope{}, fmt.Errorf("codec: base64: %w", err)
	}
	zr, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		return Envelope{}, fmt.Errorf("codec: gzip: %w", err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		return Envelope{}, fmt.Errorf("codec: decompress: %w", err)
	}
	if err := zr.Close(); err != nil {
		return Envelope{}, fmt.Errorf("codec: decompress: %w", err)
	}
	var env Envelope
	if err := json.Unmarshal(raw, &env); err != nil {
		return Envelope{}, fmt.Errorf("codec: unmarshal: %w", err)
	}
	if env.Kind != KindPE && env.Kind != KindWorkflow {
		return Envelope{}, fmt.Errorf("codec: invalid envelope kind %q", env.Kind)
	}
	return env, nil
}
