package codec

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	env := Envelope{
		Kind:    KindPE,
		Name:    "NumberProducer",
		Source:  "class NumberProducer(ProducerPE):\n    pass\n",
		Imports: []string{"random", "math"},
	}
	enc, err := Encode(env)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(enc, "LAM1") {
		t.Errorf("missing magic: %q", enc[:8])
	}
	dec, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Kind != env.Kind || dec.Name != env.Name || dec.Source != env.Source {
		t.Errorf("round trip mismatch: %+v", dec)
	}
	if len(dec.Imports) != 2 || dec.Imports[0] != "random" {
		t.Errorf("imports: %v", dec.Imports)
	}
}

func TestEncodeValidation(t *testing.T) {
	if _, err := Encode(Envelope{Kind: "bogus", Source: "x"}); err == nil {
		t.Error("invalid kind should fail")
	}
	if _, err := Encode(Envelope{Kind: KindPE, Source: "   "}); err == nil {
		t.Error("empty source should fail")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"not an envelope",
		"LAM1!!!not-base64!!!",
		"LAM1aGVsbG8=", // valid base64, not gzip
	}
	for _, c := range cases {
		if _, err := Decode(c); err == nil {
			t.Errorf("Decode(%q) should fail", c)
		}
	}
}

func TestEncodedFormIsPrintable(t *testing.T) {
	enc, err := Encode(Envelope{Kind: KindWorkflow, Name: "wf", Source: "x = 1\nprint(x)\n"})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range enc {
		if r < 32 || r > 126 {
			t.Fatalf("non-printable rune %q in encoded envelope", r)
		}
	}
}

// Property: every source string survives the round trip byte for byte.
func TestRoundTripProperty(t *testing.T) {
	f := func(name, source string) bool {
		if strings.TrimSpace(source) == "" {
			return true // rejected by validation, fine
		}
		enc, err := Encode(Envelope{Kind: KindPE, Name: name, Source: source})
		if err != nil {
			return false
		}
		dec, err := Decode(enc)
		if err != nil {
			return false
		}
		return dec.Source == source && dec.Name == name
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCompressionHelps(t *testing.T) {
	big := strings.Repeat("def repeated_function(x):\n    return x\n\n", 200)
	enc, err := Encode(Envelope{Kind: KindPE, Name: "big", Source: big})
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) >= len(big) {
		t.Errorf("envelope (%d bytes) should compress repetitive source (%d bytes)", len(enc), len(big))
	}
}
