// Package mpi is a simulated Message Passing Interface. dispel4py's MPI
// mapping enacts workflows over mpi4py ranks; this package provides the
// substitution: a World of N ranks backed by in-memory mailboxes, with the
// point-to-point and collective operations the dataflow MPI mapping needs
// (Send, Recv with tag matching and MPI_ANY_SOURCE semantics, Bcast, Barrier,
// Gather). Each rank runs as a goroutine; message order between a fixed
// (source, dest, tag) triple is FIFO, as MPI guarantees.
package mpi

import (
	"errors"
	"fmt"
	"sync"
)

// AnySource matches messages from any rank in Recv.
const AnySource = -1

// AnyTag matches messages with any tag in Recv.
const AnyTag = -1

// ErrAborted is returned by operations after the world is aborted.
var ErrAborted = errors.New("mpi: world aborted")

// Message is a delivered message with its envelope.
type Message struct {
	Source int
	Tag    int
	Data   any
}

// World is a set of communicating ranks (the simulated MPI_COMM_WORLD).
type World struct {
	size    int
	mu      sync.Mutex
	cond    *sync.Cond
	queues  [][]Message // per-destination mailbox
	aborted bool
	// queueCap bounds each mailbox (0 = unbounded). Senders block while a
	// destination mailbox is full, like MPI's synchronous-mode send under
	// receiver pressure.
	queueCap int
	// onBlocked, when set, is called once per Send that has to wait for
	// mailbox space (telemetry hook; called without the world lock held).
	onBlocked func(dest int)

	barrierMu    sync.Mutex
	barrierCond  *sync.Cond
	barrierCount int
	barrierGen   int
}

// SetQueueCap bounds every rank's mailbox to cap messages (0 restores the
// unbounded default). Must be called before Run starts the ranks.
func (w *World) SetQueueCap(cap int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if cap < 0 {
		cap = 0
	}
	w.queueCap = cap
}

// SetBlockedHook installs fn, called once per Send that parks on a full
// mailbox. Must be called before Run starts the ranks.
func (w *World) SetBlockedHook(fn func(dest int)) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.onBlocked = fn
}

// NewWorld creates a world with the given number of ranks.
func NewWorld(size int) (*World, error) {
	if size <= 0 {
		return nil, fmt.Errorf("mpi: world size must be positive, got %d", size)
	}
	w := &World{size: size, queues: make([][]Message, size)}
	w.cond = sync.NewCond(&w.mu)
	w.barrierCond = sync.NewCond(&w.barrierMu)
	return w, nil
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Abort wakes all blocked ranks with ErrAborted.
func (w *World) Abort() {
	w.mu.Lock()
	w.aborted = true
	w.mu.Unlock()
	w.cond.Broadcast()
	w.barrierMu.Lock()
	w.barrierMu.Unlock()
	w.barrierCond.Broadcast()
}

// Comm is a rank's handle onto the world.
type Comm struct {
	world *World
	rank  int
}

// Rank returns this communicator's rank id.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.world.size }

// CommForRank returns the communicator for a rank.
func (w *World) CommForRank(rank int) (*Comm, error) {
	if rank < 0 || rank >= w.size {
		return nil, fmt.Errorf("mpi: rank %d out of range [0,%d)", rank, w.size)
	}
	return &Comm{world: w, rank: rank}, nil
}

// Send delivers data to dest with a tag. Sends are buffered (asynchronous),
// matching MPI's standard-mode send for small messages — unless the world
// has a queue cap, in which case a send to a full mailbox blocks until the
// receiver drains (or the world aborts).
func (c *Comm) Send(dest, tag int, data any) error {
	w := c.world
	if dest < 0 || dest >= w.size {
		return fmt.Errorf("mpi: send to invalid rank %d", dest)
	}
	w.mu.Lock()
	blocked := false
	for w.queueCap > 0 && len(w.queues[dest]) >= w.queueCap && !w.aborted {
		if !blocked {
			blocked = true
			if hook := w.onBlocked; hook != nil {
				w.mu.Unlock()
				hook(dest)
				w.mu.Lock()
				continue
			}
		}
		w.cond.Wait()
	}
	defer w.mu.Unlock()
	if w.aborted {
		return ErrAborted
	}
	w.queues[dest] = append(w.queues[dest], Message{Source: c.rank, Tag: tag, Data: data})
	w.cond.Broadcast()
	return nil
}

// Recv blocks until a message matching (source, tag) arrives. Use AnySource /
// AnyTag as wildcards. Messages from the same source with the same tag are
// received in send order.
func (c *Comm) Recv(source, tag int) (Message, error) {
	w := c.world
	w.mu.Lock()
	defer w.mu.Unlock()
	for {
		if w.aborted {
			return Message{}, ErrAborted
		}
		q := w.queues[c.rank]
		for i, m := range q {
			if (source == AnySource || m.Source == source) && (tag == AnyTag || m.Tag == tag) {
				w.queues[c.rank] = append(append([]Message(nil), q[:i]...), q[i+1:]...)
				// Freed mailbox space: wake senders parked on the cap.
				w.cond.Broadcast()
				return m, nil
			}
		}
		w.cond.Wait()
	}
}

// Probe reports whether a matching message is waiting, without receiving it.
func (c *Comm) Probe(source, tag int) bool {
	w := c.world
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, m := range w.queues[c.rank] {
		if (source == AnySource || m.Source == source) && (tag == AnyTag || m.Tag == tag) {
			return true
		}
	}
	return false
}

// Barrier blocks until every rank has entered the barrier.
func (c *Comm) Barrier() error {
	w := c.world
	w.barrierMu.Lock()
	defer w.barrierMu.Unlock()
	w.mu.Lock()
	aborted := w.aborted
	w.mu.Unlock()
	if aborted {
		return ErrAborted
	}
	gen := w.barrierGen
	w.barrierCount++
	if w.barrierCount == w.size {
		w.barrierCount = 0
		w.barrierGen++
		w.barrierCond.Broadcast()
		return nil
	}
	for gen == w.barrierGen {
		w.barrierCond.Wait()
		w.mu.Lock()
		aborted := w.aborted
		w.mu.Unlock()
		if aborted {
			return ErrAborted
		}
	}
	return nil
}

// bcastTag is a reserved tag for broadcast traffic.
const bcastTag = -1000

// Bcast broadcasts data from root to every rank. Every rank must call it;
// each receives the root's value.
func (c *Comm) Bcast(root int, data any) (any, error) {
	if c.rank == root {
		for r := 0; r < c.world.size; r++ {
			if r == root {
				continue
			}
			if err := c.Send(r, bcastTag, data); err != nil {
				return nil, err
			}
		}
		return data, nil
	}
	m, err := c.Recv(root, bcastTag)
	if err != nil {
		return nil, err
	}
	return m.Data, nil
}

// gatherTag is a reserved tag for gather traffic.
const gatherTag = -1001

// Gather collects each rank's contribution at root. The root receives a
// slice indexed by rank; other ranks receive nil.
func (c *Comm) Gather(root int, data any) ([]any, error) {
	if c.rank != root {
		if err := c.Send(root, gatherTag, gatherItem{Rank: c.rank, Data: data}); err != nil {
			return nil, err
		}
		return nil, nil
	}
	out := make([]any, c.world.size)
	out[root] = data
	for i := 0; i < c.world.size-1; i++ {
		m, err := c.Recv(AnySource, gatherTag)
		if err != nil {
			return nil, err
		}
		item := m.Data.(gatherItem)
		out[item.Rank] = item.Data
	}
	return out, nil
}

type gatherItem struct {
	Rank int
	Data any
}

// Run spawns fn on every rank and waits for completion, returning the first
// error (aborting the world so other ranks unblock).
func (w *World) Run(fn func(c *Comm) error) error {
	var wg sync.WaitGroup
	errCh := make(chan error, w.size)
	for r := 0; r < w.size; r++ {
		comm, err := w.CommForRank(r)
		if err != nil {
			return err
		}
		wg.Add(1)
		go func(c *Comm) {
			defer wg.Done()
			if err := fn(c); err != nil {
				errCh <- err
				w.Abort()
			}
		}(comm)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		if errors.Is(err, ErrAborted) {
			return err
		}
		return err
	default:
		return nil
	}
}
