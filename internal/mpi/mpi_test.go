package mpi

import (
	"sync"
	"testing"
	"time"
)

func TestSendRecvFIFO(t *testing.T) {
	w, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < 100; i++ {
				if err := c.Send(1, 7, i); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < 100; i++ {
			m, err := c.Recv(0, 7)
			if err != nil {
				return err
			}
			if m.Data.(int) != i {
				t.Errorf("out of order: got %v want %d", m.Data, i)
			}
			if m.Source != 0 || m.Tag != 7 {
				t.Errorf("bad envelope %+v", m)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAnySourceRecv(t *testing.T) {
	w, _ := NewWorld(4)
	var mu sync.Mutex
	seen := map[int]bool{}
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < 3; i++ {
				m, err := c.Recv(AnySource, AnyTag)
				if err != nil {
					return err
				}
				mu.Lock()
				seen[m.Source] = true
				mu.Unlock()
			}
			return nil
		}
		return c.Send(0, c.Rank(), "hello")
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 {
		t.Fatalf("expected messages from 3 ranks, got %v", seen)
	}
}

func TestTagFiltering(t *testing.T) {
	w, _ := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			// Send tag 2 first, then tag 1; receiver asks for tag 1 first.
			if err := c.Send(1, 2, "second"); err != nil {
				return err
			}
			return c.Send(1, 1, "first")
		}
		m1, err := c.Recv(0, 1)
		if err != nil {
			return err
		}
		m2, err := c.Recv(0, 2)
		if err != nil {
			return err
		}
		if m1.Data != "first" || m2.Data != "second" {
			t.Errorf("tag filtering broken: %v %v", m1.Data, m2.Data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcast(t *testing.T) {
	w, _ := NewWorld(5)
	var mu sync.Mutex
	got := map[int]any{}
	err := w.Run(func(c *Comm) error {
		var data any
		if c.Rank() == 2 {
			data = "payload"
		}
		v, err := c.Bcast(2, data)
		if err != nil {
			return err
		}
		mu.Lock()
		got[c.Rank()] = v
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 5; r++ {
		if got[r] != "payload" {
			t.Errorf("rank %d got %v", r, got[r])
		}
	}
}

func TestGather(t *testing.T) {
	w, _ := NewWorld(4)
	var result []any
	err := w.Run(func(c *Comm) error {
		vals, err := c.Gather(0, c.Rank()*10)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			result = vals
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		if result[r] != r*10 {
			t.Errorf("gather[%d] = %v, want %d", r, result[r], r*10)
		}
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	w, _ := NewWorld(8)
	var before, after sync.WaitGroup
	before.Add(8)
	counter := 0
	var mu sync.Mutex
	err := w.Run(func(c *Comm) error {
		mu.Lock()
		counter++
		mu.Unlock()
		before.Done()
		if err := c.Barrier(); err != nil {
			return err
		}
		// After the barrier every rank must observe all 8 increments.
		mu.Lock()
		n := counter
		mu.Unlock()
		if n != 8 {
			t.Errorf("barrier did not synchronize: counter=%d", n)
		}
		return nil
	})
	after.Wait()
	if err != nil {
		t.Fatal(err)
	}
}

func TestAbortUnblocksReceivers(t *testing.T) {
	w, _ := NewWorld(2)
	done := make(chan error, 1)
	comm, _ := w.CommForRank(0)
	go func() {
		_, err := comm.Recv(AnySource, AnyTag)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	w.Abort()
	select {
	case err := <-done:
		if err != ErrAborted {
			t.Fatalf("got %v, want ErrAborted", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock after Abort")
	}
}

func TestInvalidWorldAndRank(t *testing.T) {
	if _, err := NewWorld(0); err == nil {
		t.Error("expected error for size 0")
	}
	w, _ := NewWorld(2)
	if _, err := w.CommForRank(5); err == nil {
		t.Error("expected error for out-of-range rank")
	}
	c, _ := w.CommForRank(0)
	if err := c.Send(9, 0, nil); err == nil {
		t.Error("expected error for send to invalid rank")
	}
}

func TestProbe(t *testing.T) {
	w, _ := NewWorld(2)
	c0, _ := w.CommForRank(0)
	c1, _ := w.CommForRank(1)
	if c1.Probe(AnySource, AnyTag) {
		t.Error("probe should be false on empty mailbox")
	}
	if err := c0.Send(1, 3, "x"); err != nil {
		t.Fatal(err)
	}
	if !c1.Probe(0, 3) {
		t.Error("probe should see the message")
	}
	if c1.Probe(0, 99) {
		t.Error("probe should filter by tag")
	}
	// message still receivable after probe
	m, err := c1.Recv(0, 3)
	if err != nil || m.Data != "x" {
		t.Fatalf("recv after probe failed: %v %v", m, err)
	}
}
