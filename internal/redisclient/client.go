// Package redisclient is a minimal Redis client for the mini Redis server
// (and any RESP2-compatible server). One Client owns one TCP connection and
// is safe for concurrent use; the Redis dataflow mapping opens one client
// per worker instance, mirroring how dispel4py workers each hold a
// connection.
package redisclient

import (
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"time"

	"laminar/internal/resp"
)

// ErrNil is returned when the server replies with a null bulk string/array
// (missing key, timed-out blocking pop).
var ErrNil = errors.New("redis: nil reply")

// Client is a connection to a Redis server.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	r    *resp.Reader
	w    *resp.Writer
}

// Dial connects to addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("redis: dial %s: %w", addr, err)
	}
	return &Client{conn: conn, r: resp.NewReader(conn), w: resp.NewWriter(conn)}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Do sends a command and returns the raw reply.
func (c *Client) Do(args ...string) (resp.Value, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.w.WriteCommand(args...); err != nil {
		return resp.Value{}, err
	}
	v, err := c.r.Read()
	if err != nil {
		return resp.Value{}, err
	}
	if v.IsError() {
		return v, fmt.Errorf("redis: %s", v.Str)
	}
	return v, nil
}

// Ping round-trips a PING.
func (c *Client) Ping() error {
	v, err := c.Do("PING")
	if err != nil {
		return err
	}
	if v.Str != "PONG" {
		return fmt.Errorf("redis: unexpected PING reply %q", v.Str)
	}
	return nil
}

// Set stores a string key.
func (c *Client) Set(key, value string) error {
	_, err := c.Do("SET", key, value)
	return err
}

// Get fetches a string key; ErrNil when missing.
func (c *Client) Get(key string) (string, error) {
	v, err := c.Do("GET", key)
	if err != nil {
		return "", err
	}
	if v.Null {
		return "", ErrNil
	}
	return v.Str, nil
}

// Del removes keys, returning how many existed.
func (c *Client) Del(keys ...string) (int64, error) {
	args := append([]string{"DEL"}, keys...)
	v, err := c.Do(args...)
	if err != nil {
		return 0, err
	}
	return v.Int, nil
}

// Incr increments an integer key.
func (c *Client) Incr(key string) (int64, error) {
	v, err := c.Do("INCR", key)
	if err != nil {
		return 0, err
	}
	return v.Int, nil
}

// LPush prepends values to a list, returning the new length.
func (c *Client) LPush(key string, values ...string) (int64, error) {
	args := append([]string{"LPUSH", key}, values...)
	v, err := c.Do(args...)
	if err != nil {
		return 0, err
	}
	return v.Int, nil
}

// RPush appends values to a list, returning the new length.
func (c *Client) RPush(key string, values ...string) (int64, error) {
	args := append([]string{"RPUSH", key}, values...)
	v, err := c.Do(args...)
	if err != nil {
		return 0, err
	}
	return v.Int, nil
}

// LLen returns a list's length.
func (c *Client) LLen(key string) (int64, error) {
	v, err := c.Do("LLEN", key)
	if err != nil {
		return 0, err
	}
	return v.Int, nil
}

// BLPop blocks until an element is available on any key or the timeout
// elapses (timeout 0 blocks forever). Returns (key, value).
func (c *Client) BLPop(timeout time.Duration, keys ...string) (string, string, error) {
	args := append([]string{"BLPOP"}, keys...)
	args = append(args, strconv.FormatFloat(timeout.Seconds(), 'f', 3, 64))
	v, err := c.Do(args...)
	if err != nil {
		return "", "", err
	}
	if v.Null || len(v.Array) != 2 {
		return "", "", ErrNil
	}
	return v.Array[0].Str, v.Array[1].Str, nil
}

// HSet sets a hash field.
func (c *Client) HSet(key, field, value string) error {
	_, err := c.Do("HSET", key, field, value)
	return err
}

// HGet fetches a hash field; ErrNil when missing.
func (c *Client) HGet(key, field string) (string, error) {
	v, err := c.Do("HGET", key, field)
	if err != nil {
		return "", err
	}
	if v.Null {
		return "", ErrNil
	}
	return v.Str, nil
}

// HGetAll fetches a whole hash.
func (c *Client) HGetAll(key string) (map[string]string, error) {
	v, err := c.Do("HGETALL", key)
	if err != nil {
		return nil, err
	}
	out := make(map[string]string, len(v.Array)/2)
	for i := 0; i+1 < len(v.Array); i += 2 {
		out[v.Array[i].Str] = v.Array[i+1].Str
	}
	return out, nil
}

// FlushAll clears the keyspace.
func (c *Client) FlushAll() error {
	_, err := c.Do("FLUSHALL")
	return err
}
