package search

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"laminar/internal/core"
	"laminar/internal/embed"
)

func pe(id int, name, desc string) core.PERecord {
	return core.PERecord{
		PEID: id, PEName: name, Description: desc,
		DescEmbedding: EmbedDescription(desc),
		CodeEmbedding: EmbedCode("def " + name + "():\n    pass"),
	}
}

func wf(id int, name, desc string) core.WorkflowRecord {
	return core.WorkflowRecord{WorkflowID: id, EntryPoint: name, WorkflowName: name, Description: desc}
}

func TestTextPartialMatching(t *testing.T) {
	pes := []core.PERecord{
		pe(1, "NumberProducer", "Random numbers producer"),
		pe(2, "IsPrime", "checks if a number is prime"),
	}
	wfs := []core.WorkflowRecord{
		wf(1, "isPrime", "Workflow that prints random prime numbers"),
		wf(2, "wordCount", "counts words"),
	}
	// 'prime' partially matches 'isPrime' (the Fig. 6 behaviour)
	hits := Text("prime", core.SearchWorkflows, pes, wfs, 0)
	if len(hits) != 1 || hits[0].Name != "isPrime" {
		t.Fatalf("hits: %+v", hits)
	}
	// case-insensitive, matches across both kinds
	hits = Text("PRIME", core.SearchBoth, pes, wfs, 0)
	if len(hits) != 2 {
		t.Fatalf("both: %+v", hits)
	}
	// multi-word queries require all words
	hits = Text("random numbers", core.SearchPEs, pes, wfs, 0)
	if len(hits) != 1 || hits[0].Name != "NumberProducer" {
		t.Fatalf("multi-word: %+v", hits)
	}
	// no match
	if hits = Text("tensor", core.SearchBoth, pes, wfs, 0); len(hits) != 0 {
		t.Fatalf("unexpected hits: %+v", hits)
	}
	// empty query matches nothing
	if hits = Text("", core.SearchBoth, pes, wfs, 0); len(hits) != 0 {
		t.Fatalf("empty query hits: %+v", hits)
	}
}

func TestSemanticRanking(t *testing.T) {
	pes := []core.PERecord{
		pe(1, "WordCounter", "counts the words in a text stream"),
		pe(2, "PrimeChecker", "checks if a number is prime"),
		pe(3, "FileReader", "reads the contents of a file"),
	}
	hits := Semantic("a PE that checks whether numbers are prime", nil, pes, 0)
	if len(hits) != 3 {
		t.Fatalf("hits: %+v", hits)
	}
	if hits[0].Name != "PrimeChecker" {
		t.Errorf("top hit: %+v", hits)
	}
	for i := 1; i < len(hits); i++ {
		if hits[i].Score > hits[i-1].Score {
			t.Errorf("scores not descending: %+v", hits)
		}
	}
}

func TestSemanticSkipsRecordsWithoutEmbeddings(t *testing.T) {
	pes := []core.PERecord{
		{PEID: 1, PEName: "NoEmbedding", Description: "whatever"},
		pe(2, "PrimeChecker", "checks if a number is prime"),
	}
	hits := Semantic("prime check", nil, pes, 0)
	if len(hits) != 1 || hits[0].ID != 2 {
		t.Fatalf("hits: %+v", hits)
	}
}

func TestCompletionRanking(t *testing.T) {
	pes := []core.PERecord{
		{PEID: 1, PEName: "RandomProducer", Description: "",
			CodeEmbedding: EmbedCode("def _process(self):\n    import random\n    return random.randint(1, 1000)")},
		{PEID: 2, PEName: "Upper", Description: "",
			CodeEmbedding: EmbedCode("def _process(self, text):\n    return text.upper()")},
	}
	hits := Completion("random.randint(1, 1000)", nil, pes, 0)
	if len(hits) != 2 || hits[0].Name != "RandomProducer" {
		t.Fatalf("hits: %+v", hits)
	}
}

func TestLimitApplied(t *testing.T) {
	var pes []core.PERecord
	for i := 1; i <= 30; i++ {
		pes = append(pes, pe(i, "PE"+string(rune('A'+i%26)), "a processing element"))
	}
	hits := Semantic("processing element", nil, pes, 0)
	if len(hits) != DefaultLimit {
		t.Errorf("default limit: %d", len(hits))
	}
	hits = Semantic("processing element", nil, pes, 3)
	if len(hits) != 3 {
		t.Errorf("explicit limit: %d", len(hits))
	}
}

// TestSearchBothKeepsWorkflowHits: a flood of matching PEs must not starve
// workflow hits out of a truncated SearchBoth result (the historic
// append-then-truncate bias).
func TestSearchBothKeepsWorkflowHits(t *testing.T) {
	var pes []core.PERecord
	for i := 1; i <= 30; i++ {
		pes = append(pes, core.PERecord{PEID: i, PEName: fmt.Sprintf("StreamPE%d", i), Description: "streams data"})
	}
	wfs := []core.WorkflowRecord{
		wf(1, "streamFlow", "streams records"),
		wf(2, "streamAgg", "streams aggregates"),
	}
	hits := Text("stream", core.SearchBoth, pes, wfs, 10)
	if len(hits) != 10 {
		t.Fatalf("limit: %d hits", len(hits))
	}
	var wfCount int
	for _, h := range hits {
		if h.Kind == "workflow" {
			wfCount++
		}
	}
	if wfCount != 2 {
		t.Fatalf("workflow hits starved: %d of %d (%+v)", wfCount, len(hits), hits)
	}
	// Without truncation the historic PE-then-workflow ordering holds.
	hits = Text("stream", core.SearchBoth, pes, wfs, 40)
	if len(hits) != 32 || hits[30].Kind != "workflow" {
		t.Fatalf("untruncated ordering changed: %d hits, hits[30]=%+v", len(hits), hits[30])
	}
}

// referenceRank is the historic brute-force ranking (score everything, full
// sort.Slice, truncate), kept verbatim as the parity oracle for the
// heap-based rankers and the Flat index.
func referenceRank(query []float32, pes []core.PERecord, vec func(core.PERecord) []float32, limit int) []core.SearchHit {
	if limit <= 0 {
		limit = DefaultLimit
	}
	var hits []core.SearchHit
	for _, pe := range pes {
		v := vec(pe)
		if len(v) == 0 {
			continue
		}
		score := embed.Cosine(embed.Vector(query), embed.Vector(v))
		hits = append(hits, core.SearchHit{
			Kind: "pe", ID: pe.PEID, Name: pe.PEName, Description: pe.Description, Score: score,
		})
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].ID < hits[j].ID
	})
	if len(hits) > limit {
		hits = hits[:limit]
	}
	return hits
}

// TestRankingParityWithBruteForce: the top-k heap ranking must be
// byte-identical (ids, order and float scores) to the historic full-sort
// scan, for Semantic and Completion, across limits.
func TestRankingParityWithBruteForce(t *testing.T) {
	var pes []core.PERecord
	for i := 1; i <= 60; i++ {
		desc := fmt.Sprintf("element %d that processes stream topic %d", i, i%7)
		code := fmt.Sprintf("def _process(self, v):\n    return v * %d + %d", i%5, i)
		pes = append(pes, core.PERecord{
			PEID: i, PEName: fmt.Sprintf("PE%d", i), Description: desc,
			DescEmbedding: EmbedDescription(desc),
			CodeEmbedding: EmbedCode(code),
		})
	}
	// a PE with no embeddings must be skipped by both paths
	pes = append(pes, core.PERecord{PEID: 61, PEName: "Bare", Description: "no embeddings"})
	for _, limit := range []int{0, 1, 3, 10, 100} {
		q := "a PE that processes a stream of records"
		want := referenceRank(EmbedDescription(q), pes, func(pe core.PERecord) []float32 { return pe.DescEmbedding }, limit)
		got := Semantic(q, nil, pes, limit)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("semantic limit=%d diverged:\n got %+v\nwant %+v", limit, got, want)
		}
		snip := "return v * 3"
		want = referenceRank(EmbedCode(snip), pes, func(pe core.PERecord) []float32 { return pe.CodeEmbedding }, limit)
		got = Completion(snip, nil, pes, limit)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("completion limit=%d diverged:\n got %+v\nwant %+v", limit, got, want)
		}
	}
}

func TestNormalize(t *testing.T) {
	cases := map[string]string{
		"IsPrime":     "isprime",
		"  Word  up ": "word up",
		"a-b_c":       "a b c",
	}
	for in, want := range cases {
		if got := normalize(in); got != want {
			t.Errorf("normalize(%q) = %q want %q", in, got, want)
		}
	}
}

func TestMergeRanked(t *testing.T) {
	pe := func(id int, score float64) core.SearchHit {
		return core.SearchHit{Kind: "pe", ID: id, Score: score}
	}
	wf := func(id int, score float64) core.SearchHit {
		return core.SearchHit{Kind: "workflow", ID: id, Score: score}
	}
	got := MergeRanked(
		[]core.SearchHit{pe(1, 0.9), pe(2, 0.5), pe(3, 0.1)},
		[]core.SearchHit{wf(1, 0.7), wf(2, 0.5), wf(3, 0.3)},
		4)
	want := []core.SearchHit{pe(1, 0.9), wf(1, 0.7), pe(2, 0.5), wf(2, 0.5)}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merge:\n got %+v\nwant %+v", got, want)
	}
	// ties break pe before workflow (kind then id), keeping merges stable
	got = MergeRanked([]core.SearchHit{pe(7, 0.5)}, []core.SearchHit{wf(7, 0.5)}, 10)
	if len(got) != 2 || got[0].Kind != "pe" {
		t.Fatalf("tie break: %+v", got)
	}
	// one side empty, limit defaulting, nil on no hits
	if got = MergeRanked(nil, []core.SearchHit{wf(1, 1)}, 0); len(got) != 1 {
		t.Fatalf("one-sided merge: %+v", got)
	}
	if got = MergeRanked(nil, nil, 5); got != nil {
		t.Fatalf("empty merge should be nil: %+v", got)
	}
}
