package search

import (
	"testing"

	"laminar/internal/core"
)

func pe(id int, name, desc string) core.PERecord {
	return core.PERecord{
		PEID: id, PEName: name, Description: desc,
		DescEmbedding: EmbedDescription(desc),
		CodeEmbedding: EmbedCode("def " + name + "():\n    pass"),
	}
}

func wf(id int, name, desc string) core.WorkflowRecord {
	return core.WorkflowRecord{WorkflowID: id, EntryPoint: name, WorkflowName: name, Description: desc}
}

func TestTextPartialMatching(t *testing.T) {
	pes := []core.PERecord{
		pe(1, "NumberProducer", "Random numbers producer"),
		pe(2, "IsPrime", "checks if a number is prime"),
	}
	wfs := []core.WorkflowRecord{
		wf(1, "isPrime", "Workflow that prints random prime numbers"),
		wf(2, "wordCount", "counts words"),
	}
	// 'prime' partially matches 'isPrime' (the Fig. 6 behaviour)
	hits := Text("prime", core.SearchWorkflows, pes, wfs, 0)
	if len(hits) != 1 || hits[0].Name != "isPrime" {
		t.Fatalf("hits: %+v", hits)
	}
	// case-insensitive, matches across both kinds
	hits = Text("PRIME", core.SearchBoth, pes, wfs, 0)
	if len(hits) != 2 {
		t.Fatalf("both: %+v", hits)
	}
	// multi-word queries require all words
	hits = Text("random numbers", core.SearchPEs, pes, wfs, 0)
	if len(hits) != 1 || hits[0].Name != "NumberProducer" {
		t.Fatalf("multi-word: %+v", hits)
	}
	// no match
	if hits = Text("tensor", core.SearchBoth, pes, wfs, 0); len(hits) != 0 {
		t.Fatalf("unexpected hits: %+v", hits)
	}
	// empty query matches nothing
	if hits = Text("", core.SearchBoth, pes, wfs, 0); len(hits) != 0 {
		t.Fatalf("empty query hits: %+v", hits)
	}
}

func TestSemanticRanking(t *testing.T) {
	pes := []core.PERecord{
		pe(1, "WordCounter", "counts the words in a text stream"),
		pe(2, "PrimeChecker", "checks if a number is prime"),
		pe(3, "FileReader", "reads the contents of a file"),
	}
	hits := Semantic("a PE that checks whether numbers are prime", nil, pes, 0)
	if len(hits) != 3 {
		t.Fatalf("hits: %+v", hits)
	}
	if hits[0].Name != "PrimeChecker" {
		t.Errorf("top hit: %+v", hits)
	}
	for i := 1; i < len(hits); i++ {
		if hits[i].Score > hits[i-1].Score {
			t.Errorf("scores not descending: %+v", hits)
		}
	}
}

func TestSemanticSkipsRecordsWithoutEmbeddings(t *testing.T) {
	pes := []core.PERecord{
		{PEID: 1, PEName: "NoEmbedding", Description: "whatever"},
		pe(2, "PrimeChecker", "checks if a number is prime"),
	}
	hits := Semantic("prime check", nil, pes, 0)
	if len(hits) != 1 || hits[0].ID != 2 {
		t.Fatalf("hits: %+v", hits)
	}
}

func TestCompletionRanking(t *testing.T) {
	pes := []core.PERecord{
		{PEID: 1, PEName: "RandomProducer", Description: "",
			CodeEmbedding: EmbedCode("def _process(self):\n    import random\n    return random.randint(1, 1000)")},
		{PEID: 2, PEName: "Upper", Description: "",
			CodeEmbedding: EmbedCode("def _process(self, text):\n    return text.upper()")},
	}
	hits := Completion("random.randint(1, 1000)", nil, pes, 0)
	if len(hits) != 2 || hits[0].Name != "RandomProducer" {
		t.Fatalf("hits: %+v", hits)
	}
}

func TestLimitApplied(t *testing.T) {
	var pes []core.PERecord
	for i := 1; i <= 30; i++ {
		pes = append(pes, pe(i, "PE"+string(rune('A'+i%26)), "a processing element"))
	}
	hits := Semantic("processing element", nil, pes, 0)
	if len(hits) != DefaultLimit {
		t.Errorf("default limit: %d", len(hits))
	}
	hits = Semantic("processing element", nil, pes, 3)
	if len(hits) != 3 {
		t.Errorf("explicit limit: %d", len(hits))
	}
}

func TestNormalize(t *testing.T) {
	cases := map[string]string{
		"IsPrime":     "isprime",
		"  Word  up ": "word up",
		"a-b_c":       "a b c",
	}
	for in, want := range cases {
		if got := normalize(in); got != want {
			t.Errorf("normalize(%q) = %q want %q", in, got, want)
		}
	}
}
