package search

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"laminar/internal/core"
)

// genLeg builds a random ranked hit list. Scores are descending but
// arbitrary; ids are drawn from a small pool so legs overlap, and a few
// in-leg duplicates are injected to exercise first-occurrence dedup.
func genLeg(rng *rand.Rand, n int) []core.SearchHit {
	kinds := []string{"pe", "workflow"}
	leg := make([]core.SearchHit, 0, n)
	score := 1.0
	for i := 0; i < n; i++ {
		score -= rng.Float64() * 0.05
		kind := kinds[rng.Intn(2)]
		id := rng.Intn(20)
		leg = append(leg, core.SearchHit{
			Kind: kind, ID: id,
			Name:        fmt.Sprintf("%s-%d", kind, id),
			Description: fmt.Sprintf("doc %d", id),
			Score:       score,
		})
	}
	return leg
}

func TestFuseRRFPermutationInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		nLegs := 2 + rng.Intn(3)
		legs := make([][]core.SearchHit, nLegs)
		for i := range legs {
			legs[i] = genLeg(rng, 1+rng.Intn(30))
		}
		want := FuseRRF(10, legs...)
		perm := rng.Perm(nLegs)
		shuffled := make([][]core.SearchHit, nLegs)
		for i, p := range perm {
			shuffled[i] = legs[p]
		}
		got := FuseRRF(10, shuffled...)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: fusion depends on leg order\nperm %v\n got %+v\nwant %+v",
				trial, perm, got, want)
		}
	}
}

func TestFuseRRFDeterministicUnderTies(t *testing.T) {
	// Disjoint single-doc legs: every doc gets the identical score
	// 1/(RRFK+1), so the entire output order is decided by the tiebreak.
	mk := func(kind string, id int) []core.SearchHit {
		return []core.SearchHit{{Kind: kind, ID: id, Name: "n", Score: 0.5}}
	}
	legs := [][]core.SearchHit{
		mk("workflow", 3), mk("pe", 9), mk("pe", 2), mk("workflow", 1), mk("pe", 5),
	}
	want := []struct {
		kind string
		id   int
	}{{"pe", 2}, {"pe", 5}, {"pe", 9}, {"workflow", 1}, {"workflow", 3}}
	for trial := 0; trial < 50; trial++ {
		got := FuseRRF(10, legs...)
		if len(got) != len(want) {
			t.Fatalf("got %d hits, want %d", len(got), len(want))
		}
		for i, w := range want {
			if got[i].Kind != w.kind || got[i].ID != w.id {
				t.Fatalf("trial %d: tied docs ordered %+v, want kind asc then id asc %+v",
					trial, got, want)
			}
			if got[i].Score != 1/float64(RRFK+1) {
				t.Fatalf("rank-1 single-leg score = %v, want 1/%d", got[i].Score, RRFK+1)
			}
		}
	}
}

func TestFuseRRFDegradesToSurvivingLeg(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 100; trial++ {
		leg := genLeg(rng, 1+rng.Intn(25))
		for _, legs := range [][][]core.SearchHit{
			{leg, nil},
			{nil, leg},
			{leg, {}},
			{nil, leg, nil},
		} {
			got := FuseRRF(100, legs...)
			// The surviving leg passes through in its own order (deduped):
			// 1/(RRFK+rank) is strictly decreasing in rank.
			var want []core.SearchHit
			seen := map[string]bool{}
			for i, h := range leg {
				key := fmt.Sprintf("%s/%d", h.Kind, h.ID)
				if seen[key] {
					continue
				}
				seen[key] = true
				h.Score = 1 / float64(RRFK+i+1)
				want = append(want, h)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d: single surviving leg not preserved\n got %+v\nwant %+v",
					trial, got, want)
			}
		}
	}
	if got := FuseRRF(10, nil, nil); got != nil {
		t.Fatalf("all-empty legs returned %+v, want nil", got)
	}
	if got := FuseRRF(10); got != nil {
		t.Fatalf("no legs returned %+v, want nil", got)
	}
}

func TestFuseRRFScoresAndLimit(t *testing.T) {
	a := []core.SearchHit{
		{Kind: "pe", ID: 1, Score: 0.9},
		{Kind: "pe", ID: 2, Score: 0.8},
		{Kind: "pe", ID: 3, Score: 0.7},
	}
	b := []core.SearchHit{
		{Kind: "pe", ID: 2, Score: 12.0},
		{Kind: "pe", ID: 4, Score: 11.0},
	}
	got := FuseRRF(10, a, b)
	// Doc 2 appears in both legs (ranks 2 and 1) and must win.
	if got[0].ID != 2 {
		t.Fatalf("doc in both legs should rank first, got %+v", got)
	}
	wantTop := 1/float64(RRFK+2) + 1/float64(RRFK+1)
	if got[0].Score != wantTop {
		t.Fatalf("fused score = %v, want %v", got[0].Score, wantTop)
	}
	// Docs 1 and 4 are both sole-leg rank-1... no: doc 1 is rank 1 in a,
	// doc 4 is rank 2 in b. Order: 2, 1 (1/61), 4 (1/62), 3 (1/63).
	wantIDs := []int{2, 1, 4, 3}
	for i, id := range wantIDs {
		if got[i].ID != id {
			t.Fatalf("fused order %+v, want ids %v", got, wantIDs)
		}
	}
	if limited := FuseRRF(2, a, b); len(limited) != 2 || limited[0].ID != 2 || limited[1].ID != 1 {
		t.Fatalf("limit=2 gave %+v", limited)
	}
}

func TestFuseRRFDuplicateWithinLegCountsOnce(t *testing.T) {
	leg := []core.SearchHit{
		{Kind: "pe", ID: 7, Score: 0.9},
		{Kind: "pe", ID: 7, Score: 0.8}, // duplicate: ignored
		{Kind: "pe", ID: 8, Score: 0.7},
	}
	got := FuseRRF(10, leg)
	if len(got) != 2 {
		t.Fatalf("got %d hits, want 2: %+v", len(got), got)
	}
	if got[0].ID != 7 || got[0].Score != 1/float64(RRFK+1) {
		t.Fatalf("duplicate counted at wrong rank: %+v", got[0])
	}
	if got[1].ID != 8 || got[1].Score != 1/float64(RRFK+3) {
		t.Fatalf("doc after duplicate keeps its own rank 3: %+v", got[1])
	}
}

func TestMergeRankedDeterministicUnderTies(t *testing.T) {
	// MergeRanked is the SearchBoth score-merge; the fusion property wall
	// covers it too since hybrid SearchBoth fuses its output. Equal scores
	// must break kind asc then id asc regardless of argument order.
	a := []core.SearchHit{
		{Kind: "workflow", ID: 1, Score: 0.5},
		{Kind: "workflow", ID: 3, Score: 0.5},
	}
	b := []core.SearchHit{
		{Kind: "pe", ID: 2, Score: 0.5},
		{Kind: "pe", ID: 9, Score: 0.5},
	}
	want := []struct {
		kind string
		id   int
	}{{"pe", 2}, {"pe", 9}, {"workflow", 1}, {"workflow", 3}}
	for _, got := range [][]core.SearchHit{MergeRanked(a, b, 10), MergeRanked(b, a, 10)} {
		if len(got) != 4 {
			t.Fatalf("got %d hits: %+v", len(got), got)
		}
		for i, w := range want {
			if got[i].Kind != w.kind || got[i].ID != w.id {
				t.Fatalf("tied merge ordered %+v, want %+v", got, want)
			}
		}
	}
}

func TestRerankEmptyQueryAndPoolPassThrough(t *testing.T) {
	hits := []core.SearchHit{
		{Kind: "pe", ID: 1, Name: "alpha", Description: "first", Score: 0.03},
		{Kind: "pe", ID: 2, Name: "beta", Description: "second", Score: 0.02},
		{Kind: "pe", ID: 3, Name: "gamma", Description: "third", Score: 0.01},
	}
	if got := Rerank("", hits, 2); len(got) != 2 || got[0].ID != 1 || got[1].ID != 2 {
		t.Fatalf("empty query should pass through top-limit, got %+v", got)
	}
	if got := Rerank("query", nil, 5); got != nil {
		t.Fatalf("empty pool returned %+v, want nil", got)
	}
}

func TestRerankDeterministicAndScored(t *testing.T) {
	hits := []core.SearchHit{
		{Kind: "pe", ID: 1, Name: "renderDashboard", Description: "a PE that renders dashboard widgets", Score: 0.03},
		{Kind: "pe", ID: 2, Name: "filterPhotons", Description: "a PE that filters photon events by threshold", Score: 0.02},
		{Kind: "pe", ID: 3, Name: "aggregateCounts", Description: "a PE that aggregates window counts", Score: 0.01},
	}
	first := Rerank("filter photon events", hits, 3)
	if len(first) != 3 {
		t.Fatalf("got %d hits, want 3", len(first))
	}
	if first[0].ID != 2 {
		t.Fatalf("cross-encoder should surface the matching PE first, got %+v", first)
	}
	for i := 1; i < len(first); i++ {
		if first[i-1].Score < first[i].Score {
			t.Fatalf("rerank scores not descending: %+v", first)
		}
	}
	for trial := 0; trial < 10; trial++ {
		if got := Rerank("filter photon events", hits, 3); !reflect.DeepEqual(got, first) {
			t.Fatalf("trial %d: rerank nondeterministic\n got %+v\nwant %+v", trial, got, first)
		}
	}
}
