package search

import (
	"laminar/internal/core"
	"laminar/internal/embed"
)

// Rerank is the optional third retrieval stage: the ColBERT-style
// CrossEncoder rescores every hit in the (typically fused, overfetched)
// pool against the query text with token-level soft alignment, and the
// best limit survive. Hits come back carrying their cross-encoder score.
//
// The stage is deterministic: RankStrings breaks score ties by input
// position, so when the cross-encoder cannot discriminate (all-stopword
// queries score every candidate 0) the incoming fused order survives
// untouched. A query with no text to align (empty string — e.g. a
// pre-embedded request that never shipped its words) skips rescoring and
// returns the pool's own top limit.
func Rerank(query string, hits []core.SearchHit, limit int) []core.SearchHit {
	if limit <= 0 {
		limit = DefaultLimit
	}
	if len(hits) == 0 {
		return nil
	}
	if query == "" {
		if len(hits) > limit {
			hits = hits[:limit]
		}
		return hits
	}
	texts := make([]string, len(hits))
	for i, h := range hits {
		texts[i] = h.Name + "\n" + h.Description
	}
	ce := embed.NewCrossEncoder(embed.MustLookup(TextModel))
	order, scores := ce.RankStrings(query, texts)
	out := make([]core.SearchHit, 0, min(limit, len(hits)))
	for i, idx := range order {
		if len(out) == limit {
			break
		}
		h := hits[idx]
		h.Score = scores[i]
		out = append(out, h)
	}
	return out
}
