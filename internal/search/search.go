// Package search implements the three registry search mechanisms of
// Section 4: text-based search with normalized partial matching (4.1),
// semantic code search over stored description embeddings (4.2), and
// retrieval-based code completion over stored code embeddings (4.3). The
// bi-encoder contract (Section 2.4) is honored throughout: embeddings are
// computed once at registration and only compared at query time.
package search

import (
	"sort"
	"strings"

	"laminar/internal/core"
	"laminar/internal/embed"
)

// DefaultLimit caps result lists when the caller does not specify one.
const DefaultLimit = 10

// TextModel is the embedding model for descriptions and text queries
// (unixcoder-code-search, chosen in Table 6).
var TextModel = embed.ModelCodeSearch

// CodeModel is the embedding model for PE code and code-completion queries
// (ReACC-py-retriever, chosen by Precision@1 in Table 7).
var CodeModel = embed.ModelReACC

// normalize lowercases and collapses separators — the preprocessing step
// behind partial matching ("prime" finds "isPrime").
func normalize(s string) string {
	var sb strings.Builder
	for _, r := range strings.ToLower(s) {
		if r >= 'a' && r <= 'z' || r >= '0' && r <= '9' {
			sb.WriteRune(r)
		} else {
			sb.WriteByte(' ')
		}
	}
	return strings.Join(strings.Fields(sb.String()), " ")
}

// textMatches reports whether the normalized query occurs in the normalized
// target (substring over collapsed text, so "prime" matches "isPrime").
func textMatches(query, target string) bool {
	nq := normalize(query)
	nt := normalize(target)
	if nq == "" {
		return false
	}
	if strings.Contains(strings.ReplaceAll(nt, " ", ""), strings.ReplaceAll(nq, " ", "")) {
		return true
	}
	// every query word present somewhere
	for _, w := range strings.Fields(nq) {
		if !strings.Contains(nt, w) {
			return false
		}
	}
	return true
}

// Text performs text-based search over PEs and workflows by name and
// description (Fig. 6).
func Text(query string, st core.SearchType, pes []core.PERecord, wfs []core.WorkflowRecord, limit int) []core.SearchHit {
	if limit <= 0 {
		limit = DefaultLimit
	}
	var hits []core.SearchHit
	if st == core.SearchPEs || st == core.SearchBoth {
		for _, pe := range pes {
			if textMatches(query, pe.PEName) || textMatches(query, pe.Description) {
				hits = append(hits, core.SearchHit{
					Kind: "pe", ID: pe.PEID, Name: pe.PEName, Description: pe.Description,
				})
			}
		}
	}
	if st == core.SearchWorkflows || st == core.SearchBoth {
		for _, wf := range wfs {
			if textMatches(query, wf.EntryPoint) || textMatches(query, wf.WorkflowName) || textMatches(query, wf.Description) {
				hits = append(hits, core.SearchHit{
					Kind: "workflow", ID: wf.WorkflowID, Name: wf.EntryPoint, Description: wf.Description,
				})
			}
		}
	}
	if len(hits) > limit {
		hits = hits[:limit]
	}
	return hits
}

// EmbedDescription computes the stored description embedding
// (unixcoder-code-search).
func EmbedDescription(text string) []float32 {
	return embed.MustLookup(TextModel).Embed(text)
}

// EmbedCode computes the stored code embedding (ReACC-py-retriever).
func EmbedCode(code string) []float32 {
	return embed.MustLookup(CodeModel).Embed(code)
}

// Semantic ranks PEs against a natural-language query by cosine similarity
// of description embeddings (Fig. 7). Pass a precomputed query embedding
// (bi-encoder: the client embeds its own query); when nil it is computed
// here.
func Semantic(query string, queryEmbedding []float32, pes []core.PERecord, limit int) []core.SearchHit {
	if queryEmbedding == nil {
		queryEmbedding = EmbedDescription(query)
	}
	return rankByEmbedding(queryEmbedding, pes, func(pe core.PERecord) []float32 {
		return pe.DescEmbedding
	}, limit)
}

// Completion ranks PEs against a (possibly partial) code snippet by cosine
// similarity of code embeddings (Fig. 8).
func Completion(snippet string, queryEmbedding []float32, pes []core.PERecord, limit int) []core.SearchHit {
	if queryEmbedding == nil {
		queryEmbedding = EmbedCode(snippet)
	}
	return rankByEmbedding(queryEmbedding, pes, func(pe core.PERecord) []float32 {
		return pe.CodeEmbedding
	}, limit)
}

func rankByEmbedding(query []float32, pes []core.PERecord, vec func(core.PERecord) []float32, limit int) []core.SearchHit {
	if limit <= 0 {
		limit = DefaultLimit
	}
	var hits []core.SearchHit
	for _, pe := range pes {
		v := vec(pe)
		if len(v) == 0 {
			continue // registered without embeddings: not searchable semantically
		}
		score := embed.Cosine(embed.Vector(query), embed.Vector(v))
		hits = append(hits, core.SearchHit{
			Kind: "pe", ID: pe.PEID, Name: pe.PEName, Description: pe.Description, Score: score,
		})
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].ID < hits[j].ID
	})
	if len(hits) > limit {
		hits = hits[:limit]
	}
	return hits
}
