// Package search implements the three registry search mechanisms of
// Section 4: text-based search with normalized partial matching (4.1),
// semantic code search over stored description embeddings (4.2), and
// retrieval-based code completion over stored code embeddings (4.3). The
// bi-encoder contract (Section 2.4) is honored throughout: embeddings are
// computed once at registration and only compared at query time.
//
// Beyond the paper, workflow descriptions are embedded with the same text
// model as PE descriptions, so a semantic SearchBoth ranks both registry
// kinds in one cosine space (MergeRanked) instead of falling back to text
// matching for workflows.
package search

import (
	"strings"

	"laminar/internal/core"
	"laminar/internal/embed"
	"laminar/internal/index"
)

// DefaultLimit caps result lists when the caller does not specify one.
const DefaultLimit = 10

// TextModel is the embedding model for descriptions and text queries
// (unixcoder-code-search, chosen in Table 6).
var TextModel = embed.ModelCodeSearch

// CodeModel is the embedding model for PE code and code-completion queries
// (ReACC-py-retriever, chosen by Precision@1 in Table 7).
var CodeModel = embed.ModelReACC

// normalize lowercases and collapses separators — the preprocessing step
// behind partial matching ("prime" finds "isPrime").
func normalize(s string) string {
	var sb strings.Builder
	for _, r := range strings.ToLower(s) {
		if r >= 'a' && r <= 'z' || r >= '0' && r <= '9' {
			sb.WriteRune(r)
		} else {
			sb.WriteByte(' ')
		}
	}
	return strings.Join(strings.Fields(sb.String()), " ")
}

// textMatches reports whether the normalized query occurs in the normalized
// target (substring over collapsed text, so "prime" matches "isPrime").
func textMatches(query, target string) bool {
	nq := normalize(query)
	nt := normalize(target)
	if nq == "" {
		return false
	}
	if strings.Contains(strings.ReplaceAll(nt, " ", ""), strings.ReplaceAll(nq, " ", "")) {
		return true
	}
	// every query word present somewhere
	for _, w := range strings.Fields(nq) {
		if !strings.Contains(nt, w) {
			return false
		}
	}
	return true
}

// Text performs text-based search over PEs and workflows by name and
// description (Fig. 6). When a SearchBoth query overflows the limit, PE and
// workflow hits are interleaved before truncation, so a flood of matching
// PEs can no longer silently starve every workflow hit (and vice versa).
func Text(query string, st core.SearchType, pes []core.PERecord, wfs []core.WorkflowRecord, limit int) []core.SearchHit {
	if limit <= 0 {
		limit = DefaultLimit
	}
	var peHits, wfHits []core.SearchHit
	if st == core.SearchPEs || st == core.SearchBoth {
		for _, pe := range pes {
			if textMatches(query, pe.PEName) || textMatches(query, pe.Description) {
				peHits = append(peHits, core.SearchHit{
					Kind: "pe", ID: pe.PEID, Name: pe.PEName, Description: pe.Description,
				})
			}
		}
	}
	if st == core.SearchWorkflows || st == core.SearchBoth {
		for _, wf := range wfs {
			if textMatches(query, wf.EntryPoint) || textMatches(query, wf.WorkflowName) || textMatches(query, wf.Description) {
				wfHits = append(wfHits, core.SearchHit{
					Kind: "workflow", ID: wf.WorkflowID, Name: wf.EntryPoint, Description: wf.Description,
				})
			}
		}
	}
	if len(peHits)+len(wfHits) <= limit {
		return append(peHits, wfHits...)
	}
	return interleave(peHits, wfHits, limit)
}

// interleave merges two hit lists round-robin up to limit, preserving each
// list's internal order and draining the remainder from whichever list is
// longer.
func interleave(a, b []core.SearchHit, limit int) []core.SearchHit {
	out := make([]core.SearchHit, 0, limit)
	for i := 0; len(out) < limit && (i < len(a) || i < len(b)); i++ {
		if i < len(a) {
			out = append(out, a[i])
		}
		if len(out) < limit && i < len(b) {
			out = append(out, b[i])
		}
	}
	return out
}

// EmbedDescription computes the stored description embedding
// (unixcoder-code-search).
func EmbedDescription(text string) []float32 {
	return embed.MustLookup(TextModel).Embed(text)
}

// EmbedCode computes the stored code embedding (ReACC-py-retriever).
func EmbedCode(code string) []float32 {
	return embed.MustLookup(CodeModel).Embed(code)
}

// Semantic ranks PEs against a natural-language query by cosine similarity
// of description embeddings (Fig. 7). Pass a precomputed query embedding
// (bi-encoder: the client embeds its own query); when nil it is computed
// here.
func Semantic(query string, queryEmbedding []float32, pes []core.PERecord, limit int) []core.SearchHit {
	if queryEmbedding == nil {
		queryEmbedding = EmbedDescription(query)
	}
	return rankByEmbedding(queryEmbedding, pes, func(pe core.PERecord) []float32 {
		return pe.DescEmbedding
	}, limit)
}

// Completion ranks PEs against a (possibly partial) code snippet by cosine
// similarity of code embeddings (Fig. 8).
func Completion(snippet string, queryEmbedding []float32, pes []core.PERecord, limit int) []core.SearchHit {
	if queryEmbedding == nil {
		queryEmbedding = EmbedCode(snippet)
	}
	return rankByEmbedding(queryEmbedding, pes, func(pe core.PERecord) []float32 {
		return pe.CodeEmbedding
	}, limit)
}

// rankByEmbedding scores every PE against the query with the same float64
// dot product the vector indexes use, keeping only the top limit hits in a
// bounded heap (O(N log k)) instead of sorting the full corpus. PE ids are
// unique in the registry, so (score, id) is a strict total order and the
// result matches a full sort byte-for-byte.
func rankByEmbedding(query []float32, pes []core.PERecord, vec func(core.PERecord) []float32, limit int) []core.SearchHit {
	if limit <= 0 {
		limit = DefaultLimit
	}
	top := index.NewTopK(limit)
	pos := make(map[int]int, len(pes)) // PE id → slice position; avoids copying every record
	for i, pe := range pes {
		v := vec(pe)
		if len(v) == 0 {
			continue // registered without embeddings: not searchable semantically
		}
		pos[pe.PEID] = i
		top.Push(index.Candidate{ID: pe.PEID, Score: embed.Cosine(embed.Vector(query), embed.Vector(v))})
	}
	return HitsFromCandidates(top.Sorted(), func(id int) (core.PERecord, bool) {
		i, ok := pos[id]
		if !ok {
			return core.PERecord{}, false
		}
		return pes[i], true
	})
}

// HitsFromCandidates resolves ranked index candidates back to search hits
// via a record lookup. It is shared by the slice-based rankers above and by
// the registry's index-backed search path.
func HitsFromCandidates(cands []index.Candidate, lookup func(id int) (core.PERecord, bool)) []core.SearchHit {
	if len(cands) == 0 {
		return nil // historic brute force returned nil on no hits
	}
	hits := make([]core.SearchHit, 0, len(cands))
	for _, c := range cands {
		pe, ok := lookup(c.ID)
		if !ok {
			continue
		}
		hits = append(hits, core.SearchHit{
			Kind: "pe", ID: pe.PEID, Name: pe.PEName, Description: pe.Description, Score: c.Score,
		})
	}
	return hits
}

// WorkflowHitsFromCandidates is HitsFromCandidates for the workflow index:
// candidates resolve to workflow records and hits carry Kind "workflow"
// (named by entry point, like text search's workflow hits).
func WorkflowHitsFromCandidates(cands []index.Candidate, lookup func(id int) (core.WorkflowRecord, bool)) []core.SearchHit {
	if len(cands) == 0 {
		return nil
	}
	hits := make([]core.SearchHit, 0, len(cands))
	for _, c := range cands {
		wf, ok := lookup(c.ID)
		if !ok {
			continue
		}
		hits = append(hits, core.SearchHit{
			Kind: "workflow", ID: wf.WorkflowID, Name: wf.EntryPoint, Description: wf.Description, Score: c.Score,
		})
	}
	return hits
}

// MergeRanked merges two score-descending hit lists into one, keeping the
// best limit hits. Both semantic indexes embed with the same model, so PE
// and workflow scores live in the same cosine space and rank directly
// against each other (unlike text search, which has no scores and
// interleaves instead). Ties break by kind then id, keeping SearchBoth
// results deterministic.
func MergeRanked(a, b []core.SearchHit, limit int) []core.SearchHit {
	if limit <= 0 {
		limit = DefaultLimit
	}
	better := func(x, y core.SearchHit) bool {
		if x.Score != y.Score {
			return x.Score > y.Score
		}
		if x.Kind != y.Kind {
			return x.Kind < y.Kind
		}
		return x.ID < y.ID
	}
	out := make([]core.SearchHit, 0, min(limit, len(a)+len(b)))
	i, j := 0, 0
	for len(out) < limit && (i < len(a) || j < len(b)) {
		switch {
		case i >= len(a):
			out = append(out, b[j])
			j++
		case j >= len(b):
			out = append(out, a[i])
			i++
		case better(a[i], b[j]):
			out = append(out, a[i])
			i++
		default:
			out = append(out, b[j])
			j++
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}
