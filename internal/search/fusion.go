package search

import (
	"sort"

	"laminar/internal/core"
)

// RRFK is the reciprocal-rank-fusion constant: each leg contributes
// 1/(RRFK+rank) per document, so a top hit is worth 1/61 and the constant
// damps how much rank-1 dominance one leg can exert. 60 is the value from
// the original RRF paper (Cormack et al., SIGIR 2009) and works unchanged
// here — fusion quality is famously insensitive to it.
const RRFK = 60

// FuseRRF merges ranked hit lists ("legs" — e.g. the ANN leg and the BM25
// lexical leg) by reciprocal-rank fusion. Only ranks matter: a document's
// fused score is the sum of 1/(RRFK+rank) over the legs it appears in
// (rank is 1-based; duplicate appearances within one leg count once, at
// their best rank), which makes the incomparable score scales of cosine
// similarity and BM25 irrelevant.
//
// The result is deterministic and permutation-invariant in leg order: per
// document the rank contributions are summed in ascending-rank order so
// float addition sees one canonical sequence, metadata is taken from the
// best-ranked appearance, and the final order is score descending with
// ties broken by kind then id — the same total order MergeRanked uses. A
// single non-empty leg therefore passes through in its own order, so the
// pipeline degrades cleanly when one retrieval leg comes back empty.
func FuseRRF(limit int, legs ...[]core.SearchHit) []core.SearchHit {
	if limit <= 0 {
		limit = DefaultLimit
	}
	type fuseKey struct {
		kind string
		id   int
	}
	type fusedDoc struct {
		hit      core.SearchHit
		ranks    []int
		bestRank int
	}
	acc := make(map[fuseKey]*fusedDoc)
	for _, leg := range legs {
		seen := make(map[fuseKey]bool, len(leg))
		for i, h := range leg {
			k := fuseKey{h.Kind, h.ID}
			if seen[k] {
				continue
			}
			seen[k] = true
			rank := i + 1
			f := acc[k]
			if f == nil {
				f = &fusedDoc{hit: h, bestRank: rank}
				acc[k] = f
			} else if rank < f.bestRank {
				f.bestRank = rank
				f.hit = h
			}
			f.ranks = append(f.ranks, rank)
		}
	}
	if len(acc) == 0 {
		return nil
	}
	out := make([]core.SearchHit, 0, len(acc))
	for _, f := range acc {
		sort.Ints(f.ranks)
		var score float64
		for _, r := range f.ranks {
			score += 1 / float64(RRFK+r)
		}
		h := f.hit
		h.Score = score
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool {
		x, y := out[i], out[j]
		if x.Score != y.Score {
			return x.Score > y.Score
		}
		if x.Kind != y.Kind {
			return x.Kind < y.Kind
		}
		return x.ID < y.ID
	})
	if len(out) > limit {
		out = out[:limit]
	}
	return out
}
