package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"

	"laminar/internal/core"
)

// shardStub is a recording stand-in for one shard node's HTTP API.
type shardStub struct {
	srv *httptest.Server

	mu        sync.Mutex
	registers int
	peIDs     []int
	wfIDs     []int
}

func newShardStub(t *testing.T) *shardStub {
	s := &shardStub{}
	s.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		defer s.mu.Unlock()
		switch r.URL.Path {
		case "/auth/register":
			s.registers++
			w.WriteHeader(http.StatusCreated)
			json.NewEncoder(w).Encode(core.UserRecord{UserID: 1, UserName: "u"})
		case "/registry/u/pe/add":
			var req core.AddPERequest
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				t.Errorf("stub: bad AddPE body: %v", err)
			}
			s.peIDs = append(s.peIDs, req.PEID)
			w.WriteHeader(http.StatusCreated)
			json.NewEncoder(w).Encode(core.PERecord{PEID: req.PEID, PEName: req.PEName})
		case "/registry/u/workflow/add":
			var req core.AddWorkflowRequest
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				t.Errorf("stub: bad AddWorkflow body: %v", err)
			}
			s.wfIDs = append(s.wfIDs, req.WorkflowID)
			w.WriteHeader(http.StatusCreated)
			json.NewEncoder(w).Encode(core.WorkflowRecord{WorkflowID: req.WorkflowID, WorkflowName: req.WorkflowName})
		default:
			t.Errorf("stub: unexpected path %s", r.URL.Path)
			w.WriteHeader(http.StatusNotFound)
		}
	}))
	t.Cleanup(s.srv.Close)
	return s
}

func TestRouterValidatesPrimaryCoverage(t *testing.T) {
	ring, err := NewRing(RingConfig{Shards: []string{"a", "b"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRouter(ring, map[string]*HTTPPeer{"a": NewHTTPPeer("a", "http://x")}); err == nil {
		t.Error("missing primary must be rejected")
	}
	if _, err := NewRouter(ring, map[string]*HTTPPeer{
		"a": NewHTTPPeer("a", "http://x"), "b": NewHTTPPeer("b", "http://y"), "c": NewHTTPPeer("c", "http://z"),
	}); err == nil {
		t.Error("extra primary must be rejected")
	}
}

func TestRouterRoutesWritesByRingOwner(t *testing.T) {
	names := []string{"a", "b", "c"}
	ring, err := NewRing(RingConfig{Shards: names})
	if err != nil {
		t.Fatal(err)
	}
	stubs := map[string]*shardStub{}
	primaries := map[string]*HTTPPeer{}
	for _, name := range names {
		stubs[name] = newShardStub(t)
		primaries[name] = NewHTTPPeer(name, stubs[name].srv.URL)
	}
	rt, err := NewRouter(ring, primaries)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	if err := rt.Register(ctx, "u", "pw"); err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		if stubs[name].registers != 1 {
			t.Errorf("shard %s saw %d registers, want 1 (registration broadcasts)", name, stubs[name].registers)
		}
	}

	// Every registration must land on the ring owner of its pre-assigned
	// id, and the id sequence must be global and gapless.
	for i := 1; i <= 30; i++ {
		pe, owner, err := rt.AddPE(ctx, "u", core.AddPERequest{PEName: "PE" + strconv.Itoa(i), PECode: "c"})
		if err != nil {
			t.Fatal(err)
		}
		if pe.PEID != i {
			t.Fatalf("PE %d assigned id %d; router ids must be sequential", i, pe.PEID)
		}
		if want := ring.Owner(pe.PEID); owner != want {
			t.Fatalf("PE id %d routed to %s, ring owner is %s", pe.PEID, owner, want)
		}
	}
	total := 0
	for _, name := range names {
		for _, id := range stubs[name].peIDs {
			if got := ring.Owner(id); got != name {
				t.Errorf("shard %s received PE id %d owned by %s", name, id, got)
			}
		}
		total += len(stubs[name].peIDs)
	}
	if total != 30 {
		t.Errorf("shards received %d PEs in total, want 30", total)
	}

	if wf, owner, err := rt.AddWorkflow(ctx, "u", core.AddWorkflowRequest{WorkflowName: "W", WorkflowCode: "c"}); err != nil {
		t.Fatal(err)
	} else if wf.WorkflowID != 1 || owner != ring.Owner(1) {
		t.Errorf("workflow routed wrong: id=%d owner=%s", wf.WorkflowID, owner)
	}
}

func TestRouterSeedIDsAdvancesCounters(t *testing.T) {
	ring, err := NewRing(RingConfig{Shards: []string{"a"}})
	if err != nil {
		t.Fatal(err)
	}
	stub := newShardStub(t)
	rt, err := NewRouter(ring, map[string]*HTTPPeer{"a": NewHTTPPeer("a", stub.srv.URL)})
	if err != nil {
		t.Fatal(err)
	}
	rt.SeedIDs(100, 7)
	pe, _, err := rt.AddPE(context.Background(), "u", core.AddPERequest{PEName: "PE", PECode: "c"})
	if err != nil {
		t.Fatal(err)
	}
	if pe.PEID != 101 {
		t.Errorf("after SeedIDs(100, 7) the next PE id is %d, want 101", pe.PEID)
	}
	wf, _, err := rt.AddWorkflow(context.Background(), "u", core.AddWorkflowRequest{WorkflowName: "W", WorkflowCode: "c"})
	if err != nil {
		t.Fatal(err)
	}
	if wf.WorkflowID != 8 {
		t.Errorf("after SeedIDs(100, 7) the next workflow id is %d, want 8", wf.WorkflowID)
	}
}

func TestRouterRegisterTreatsConflictAsSuccess(t *testing.T) {
	conflict := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusConflict)
		json.NewEncoder(w).Encode(map[string]string{"message": "user exists"})
	}))
	defer conflict.Close()
	ring, err := NewRing(RingConfig{Shards: []string{"a"}})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRouter(ring, map[string]*HTTPPeer{"a": NewHTTPPeer("a", conflict.URL)})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Register(context.Background(), "u", "pw"); err != nil {
		t.Errorf("re-registering an existing user must be idempotent, got %v", err)
	}
}

func TestRouterRegisterPartialFailureIsError(t *testing.T) {
	good := newShardStub(t)
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer bad.Close()
	ring, err := NewRing(RingConfig{Shards: []string{"a", "b"}})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRouter(ring, map[string]*HTTPPeer{
		"a": NewHTTPPeer("a", good.srv.URL),
		"b": NewHTTPPeer("b", bad.URL),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Register(context.Background(), "u", "pw"); err == nil {
		t.Error("a user present on only some shards must be a hard error")
	}
}
