package cluster

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"laminar/internal/core"
	"laminar/internal/search"
)

// Peer is one queryable cluster node. Implementations must honor the
// context (the coordinator cancels it on per-shard timeout and on query
// completion) and must be safe for concurrent use.
type Peer interface {
	// Name identifies the node in errors and telemetry.
	Name() string
	// Search answers one semantic/completion query with the node's local
	// top-k, ranked the way /registry/{user}/search ranks.
	Search(ctx context.Context, user string, req core.SearchRequest) ([]core.SearchHit, error)
}

// Shard is one ring partition: the primary that owns the partition's
// records plus optional read replicas (snapshot-restored, read-only) the
// coordinator may hedge or fail over to.
type Shard struct {
	Name     string
	Primary  Peer
	Replicas []Peer
}

// Coordinator defaults.
const (
	// DefaultShardTimeout bounds one shard's contribution to a fan-out.
	DefaultShardTimeout = 2 * time.Second
	// DefaultFailureBackoff is the first unhealthy-shard retry delay; it
	// doubles per consecutive failure up to DefaultMaxBackoff.
	DefaultFailureBackoff = 500 * time.Millisecond
	// DefaultMaxBackoff caps the exponential unhealthy-shard backoff.
	DefaultMaxBackoff = 30 * time.Second
)

// CoordinatorConfig assembles a Coordinator.
type CoordinatorConfig struct {
	// Shards is the fan-out set, one entry per ring partition, in ring
	// config order.
	Shards []Shard
	// ShardTimeout bounds each shard's whole attempt — primary plus any
	// hedged replica — per query (0 = DefaultShardTimeout). One slow
	// shard therefore delays a query by at most this much.
	ShardTimeout time.Duration
	// HedgeDelay, when > 0 and the shard has replicas, launches the next
	// replica if the primary has not answered within the delay; the first
	// success wins. 0 disables hedging (replicas still serve as failover
	// targets when the primary errors outright).
	HedgeDelay time.Duration
	// FailureBackoff is the initial retry delay after a shard failure
	// (0 = DefaultFailureBackoff); it doubles per consecutive failure.
	FailureBackoff time.Duration
	// MaxBackoff caps the exponential backoff (0 = DefaultMaxBackoff).
	MaxBackoff time.Duration
	// Clock is injectable for the health/backoff tests (nil = time.Now).
	Clock func() time.Time
}

// shardHealth is the coordinator's view of one shard's availability.
type shardHealth struct {
	healthy  bool
	failures int       // consecutive failures
	retryAt  time.Time // next probe time while unhealthy
}

// Coordinator scatter-gathers queries across shards and merges the
// per-shard top-k lists with search.MergeRanked. A shard that times out,
// refuses connections or answers garbage is marked unhealthy and skipped —
// with exponential backoff before it is probed again — and the query
// returns the surviving shards' hits as a partial result with the
// Degraded flag set, never an error.
type Coordinator struct {
	cfg CoordinatorConfig

	mu     sync.Mutex
	health map[string]*shardHealth

	metrics *Metrics
}

// Result is one coordinated query's outcome.
type Result struct {
	// Hits is the merged ranking over every shard that answered.
	Hits []core.SearchHit
	// Degraded reports that at least one shard contributed nothing (down,
	// timed out, or failed) — Hits is a partial view of the corpus.
	Degraded bool
	// Failed names the shards that contributed nothing, sorted.
	Failed []string
}

// NewCoordinator validates the shard set.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("cluster: coordinator needs at least one shard")
	}
	seen := map[string]bool{}
	for _, sh := range cfg.Shards {
		if sh.Name == "" {
			return nil, fmt.Errorf("cluster: shard name must not be empty")
		}
		if seen[sh.Name] {
			return nil, fmt.Errorf("cluster: duplicate shard %q", sh.Name)
		}
		seen[sh.Name] = true
		if sh.Primary == nil {
			return nil, fmt.Errorf("cluster: shard %q has no primary peer", sh.Name)
		}
	}
	co := &Coordinator{cfg: cfg, health: make(map[string]*shardHealth, len(cfg.Shards))}
	for _, sh := range cfg.Shards {
		co.health[sh.Name] = &shardHealth{healthy: true}
	}
	return co, nil
}

// SetMetrics installs the coordinator's telemetry instruments and
// initializes the per-shard health gauges (1 = healthy) so the scrape
// shows every shard from the first fan-out, not only the ones that have
// already failed.
func (co *Coordinator) SetMetrics(m *Metrics) {
	co.mu.Lock()
	defer co.mu.Unlock()
	co.metrics = m
	if m == nil {
		return
	}
	for name, h := range co.health {
		v := 0.0
		if h.healthy {
			v = 1.0
		}
		m.ShardHealthy.With(name).Set(v)
	}
}

// Shards reports the configured shard names, in order.
func (co *Coordinator) Shards() []string {
	out := make([]string, len(co.cfg.Shards))
	for i, sh := range co.cfg.Shards {
		out[i] = sh.Name
	}
	return out
}

func (co *Coordinator) now() time.Time {
	if co.cfg.Clock != nil {
		return co.cfg.Clock()
	}
	return time.Now()
}

func (co *Coordinator) shardTimeout() time.Duration {
	if co.cfg.ShardTimeout > 0 {
		return co.cfg.ShardTimeout
	}
	return DefaultShardTimeout
}

// admit decides whether a shard joins this query's fan-out. An unhealthy
// shard is skipped until its backoff window closes; the first query after
// the window probes it again (and a failure re-arms a longer window).
func (co *Coordinator) admit(name string) bool {
	co.mu.Lock()
	defer co.mu.Unlock()
	h := co.health[name]
	if h.healthy {
		return true
	}
	return !co.now().Before(h.retryAt)
}

// markSuccess returns the shard to the healthy pool.
func (co *Coordinator) markSuccess(name string) {
	co.mu.Lock()
	defer co.mu.Unlock()
	h := co.health[name]
	h.healthy = true
	h.failures = 0
	if co.metrics != nil {
		co.metrics.ShardHealthy.With(name).Set(1)
	}
}

// markFailure takes the shard out of the fan-out and arms the next probe:
// FailureBackoff doubled per consecutive failure, capped at MaxBackoff.
func (co *Coordinator) markFailure(name string) {
	co.mu.Lock()
	defer co.mu.Unlock()
	h := co.health[name]
	h.healthy = false
	h.failures++
	base := co.cfg.FailureBackoff
	if base <= 0 {
		base = DefaultFailureBackoff
	}
	max := co.cfg.MaxBackoff
	if max <= 0 {
		max = DefaultMaxBackoff
	}
	backoff := base
	for i := 1; i < h.failures && backoff < max; i++ {
		backoff *= 2
	}
	if backoff > max {
		backoff = max
	}
	h.retryAt = co.now().Add(backoff)
	if co.metrics != nil {
		co.metrics.ShardHealthy.With(name).Set(0)
		co.metrics.ShardFailures.With(name).Inc()
	}
}

// Search scatter-gathers one query. Every admitted shard is queried
// concurrently under its own deadline; the per-shard top-k lists are
// reduced with search.MergeRanked into one global ranking. Shards that
// are down, time out, or fail mid-query cost the result coverage, not
// availability: the reply is partial and Degraded, never an error.
func (co *Coordinator) Search(ctx context.Context, user string, req core.SearchRequest) Result {
	type shardOut struct {
		hits []core.SearchHit
		err  error
		skip bool
	}
	outs := make([]shardOut, len(co.cfg.Shards))
	var wg sync.WaitGroup
	for i, sh := range co.cfg.Shards {
		if !co.admit(sh.Name) {
			outs[i].skip = true
			continue
		}
		wg.Add(1)
		go func(i int, sh Shard) {
			defer wg.Done()
			start := time.Now()
			hits, err := co.searchShard(ctx, sh, user, req)
			if co.metrics != nil {
				co.metrics.ShardSearchSeconds.With(sh.Name).ObserveSince(start)
			}
			if err != nil {
				co.markFailure(sh.Name)
				outs[i].err = err
				return
			}
			co.markSuccess(sh.Name)
			outs[i].hits = hits
		}(i, sh)
	}
	wg.Wait()

	limit := req.Limit
	if limit <= 0 {
		limit = search.DefaultLimit
	}
	var res Result
	var merged []core.SearchHit
	for i, sh := range co.cfg.Shards {
		out := outs[i]
		if out.skip || out.err != nil {
			res.Degraded = true
			res.Failed = append(res.Failed, sh.Name)
			continue
		}
		merged = search.MergeRanked(merged, out.hits, limit)
	}
	sort.Strings(res.Failed)
	res.Hits = merged
	if co.metrics != nil {
		status := "full"
		if res.Degraded {
			status = "partial"
		}
		co.metrics.Searches.With(status).Inc()
	}
	return res
}

// searchShard runs one shard's attempt chain — primary first, then (on
// outright failure, or after HedgeDelay with hedging on) each replica —
// under the shard deadline. First success wins; attempt goroutines write
// to a buffered channel sized for all of them, so none can leak by
// blocking on a send after the chain resolves.
func (co *Coordinator) searchShard(ctx context.Context, sh Shard, user string, req core.SearchRequest) ([]core.SearchHit, error) {
	sctx, cancel := context.WithTimeout(ctx, co.shardTimeout())
	defer cancel()

	attempts := append([]Peer{sh.Primary}, sh.Replicas...)
	type attemptOut struct {
		hits []core.SearchHit
		err  error
	}
	ch := make(chan attemptOut, len(attempts))
	launch := func(p Peer) {
		go func() {
			hits, err := p.Search(sctx, user, req)
			ch <- attemptOut{hits: hits, err: err}
		}()
	}
	launched := 1
	launch(attempts[0])

	var hedge <-chan time.Time
	if co.cfg.HedgeDelay > 0 && len(attempts) > 1 {
		t := time.NewTimer(co.cfg.HedgeDelay)
		defer t.Stop()
		hedge = t.C
	}

	var firstErr error
	settled := 0
	for {
		select {
		case out := <-ch:
			if out.err == nil {
				return out.hits, nil
			}
			settled++
			if firstErr == nil {
				firstErr = out.err
			}
			if launched < len(attempts) {
				// Outright failure: fail over to the next replica without
				// waiting for the hedge timer.
				launch(attempts[launched])
				launched++
			} else if settled == launched {
				return nil, firstErr
			}
		case <-hedge:
			hedge = nil
			if launched < len(attempts) {
				if co.metrics != nil {
					co.metrics.Hedges.Inc()
				}
				launch(attempts[launched])
				launched++
			}
		case <-sctx.Done():
			if firstErr != nil {
				return nil, firstErr
			}
			return nil, fmt.Errorf("cluster: shard %s: %w", sh.Name, sctx.Err())
		}
	}
}
