package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"laminar/internal/core"
	"laminar/internal/telemetry"
)

// fakePeer implements Peer with an injectable handler.
type fakePeer struct {
	name string
	fn   func(ctx context.Context, user string, req core.SearchRequest) ([]core.SearchHit, error)
}

func (p *fakePeer) Name() string { return p.name }
func (p *fakePeer) Search(ctx context.Context, user string, req core.SearchRequest) ([]core.SearchHit, error) {
	return p.fn(ctx, user, req)
}

func hitPeer(name string, hits ...core.SearchHit) *fakePeer {
	return &fakePeer{name: name, fn: func(context.Context, string, core.SearchRequest) ([]core.SearchHit, error) {
		return hits, nil
	}}
}

func hit(id int, score float64) core.SearchHit {
	return core.SearchHit{Kind: "pe", ID: id, Name: fmt.Sprintf("PE%d", id), Score: score}
}

func TestCoordinatorRejectsBadConfigs(t *testing.T) {
	for _, cfg := range []CoordinatorConfig{
		{},
		{Shards: []Shard{{Name: "", Primary: hitPeer("x")}}},
		{Shards: []Shard{{Name: "a", Primary: nil}}},
		{Shards: []Shard{{Name: "a", Primary: hitPeer("a")}, {Name: "a", Primary: hitPeer("a")}}},
	} {
		if _, err := NewCoordinator(cfg); err == nil {
			t.Errorf("NewCoordinator(%+v): want error", cfg)
		}
	}
}

func TestCoordinatorMergesShardRankings(t *testing.T) {
	co, err := NewCoordinator(CoordinatorConfig{Shards: []Shard{
		{Name: "a", Primary: hitPeer("a", hit(1, 0.9), hit(2, 0.5))},
		{Name: "b", Primary: hitPeer("b", hit(3, 0.7), hit(4, 0.1))},
	}})
	if err != nil {
		t.Fatal(err)
	}
	res := co.Search(context.Background(), "u", core.SearchRequest{Limit: 3})
	if res.Degraded || len(res.Failed) != 0 {
		t.Fatalf("healthy fan-out came back degraded: %+v", res)
	}
	wantIDs := []int{1, 3, 2}
	if len(res.Hits) != len(wantIDs) {
		t.Fatalf("got %d hits, want %d: %+v", len(res.Hits), len(wantIDs), res.Hits)
	}
	for i, id := range wantIDs {
		if res.Hits[i].ID != id {
			t.Errorf("rank %d: id %d, want %d", i, res.Hits[i].ID, id)
		}
	}
}

// The three failure modes the issue calls out — shard timeout, connection
// refused, malformed response — must every one degrade the reply, never
// error it.

func TestCoordinatorShardTimeoutDegrades(t *testing.T) {
	slow := &fakePeer{name: "slow", fn: func(ctx context.Context, _ string, _ core.SearchRequest) ([]core.SearchHit, error) {
		<-ctx.Done() // honors the per-shard deadline
		return nil, ctx.Err()
	}}
	co, err := NewCoordinator(CoordinatorConfig{
		Shards:       []Shard{{Name: "fast", Primary: hitPeer("fast", hit(1, 0.9))}, {Name: "slow", Primary: slow}},
		ShardTimeout: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res := co.Search(context.Background(), "u", core.SearchRequest{})
	if took := time.Since(start); took > 2*time.Second {
		t.Fatalf("query took %v; the shard timeout should bound it near 30ms", took)
	}
	assertPartial(t, res, "slow", 1)
}

func TestCoordinatorConnectionRefusedDegrades(t *testing.T) {
	// A listener that is closed before any query: real ECONNREFUSED.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadURL := "http://" + ln.Addr().String()
	ln.Close()

	co, err := NewCoordinator(CoordinatorConfig{Shards: []Shard{
		{Name: "up", Primary: hitPeer("up", hit(7, 0.8))},
		{Name: "down", Primary: NewHTTPPeer("down", deadURL)},
	}})
	if err != nil {
		t.Fatal(err)
	}
	assertPartial(t, co.Search(context.Background(), "u", core.SearchRequest{}), "down", 7)
}

func TestCoordinatorMalformedResponseDegrades(t *testing.T) {
	garbage := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "this is not json{{{")
	}))
	defer garbage.Close()

	co, err := NewCoordinator(CoordinatorConfig{Shards: []Shard{
		{Name: "up", Primary: hitPeer("up", hit(7, 0.8))},
		{Name: "garbage", Primary: NewHTTPPeer("garbage", garbage.URL)},
	}})
	if err != nil {
		t.Fatal(err)
	}
	assertPartial(t, co.Search(context.Background(), "u", core.SearchRequest{}), "garbage", 7)
}

// assertPartial checks the degraded-mode contract: the named shard is
// reported failed, the reply is flagged partial, and the surviving
// shard's hit is still there.
func assertPartial(t *testing.T, res Result, failedShard string, wantID int) {
	t.Helper()
	if !res.Degraded {
		t.Fatalf("want a degraded partial result, got %+v", res)
	}
	if len(res.Failed) != 1 || res.Failed[0] != failedShard {
		t.Fatalf("Failed = %v, want [%s]", res.Failed, failedShard)
	}
	if len(res.Hits) != 1 || res.Hits[0].ID != wantID {
		t.Fatalf("surviving shard's hits lost: %+v", res.Hits)
	}
}

func TestCoordinatorAllShardsDownStillNoError(t *testing.T) {
	failing := &fakePeer{name: "f", fn: func(context.Context, string, core.SearchRequest) ([]core.SearchHit, error) {
		return nil, errors.New("boom")
	}}
	co, err := NewCoordinator(CoordinatorConfig{Shards: []Shard{{Name: "only", Primary: failing}}})
	if err != nil {
		t.Fatal(err)
	}
	res := co.Search(context.Background(), "u", core.SearchRequest{})
	if !res.Degraded || len(res.Hits) != 0 {
		t.Fatalf("want empty degraded result, got %+v", res)
	}
}

func TestCoordinatorFailsOverToReplica(t *testing.T) {
	dead := &fakePeer{name: "p", fn: func(context.Context, string, core.SearchRequest) ([]core.SearchHit, error) {
		return nil, errors.New("connection refused")
	}}
	co, err := NewCoordinator(CoordinatorConfig{Shards: []Shard{
		{Name: "a", Primary: dead, Replicas: []Peer{hitPeer("a-replica", hit(5, 0.6))}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	res := co.Search(context.Background(), "u", core.SearchRequest{})
	if res.Degraded {
		t.Fatalf("replica failover should keep the reply full: %+v", res)
	}
	if len(res.Hits) != 1 || res.Hits[0].ID != 5 {
		t.Fatalf("want the replica's hit, got %+v", res.Hits)
	}
}

func TestCoordinatorHedgesSlowPrimary(t *testing.T) {
	primaryDone := make(chan struct{})
	slow := &fakePeer{name: "p", fn: func(ctx context.Context, _ string, _ core.SearchRequest) ([]core.SearchHit, error) {
		defer close(primaryDone)
		select {
		case <-time.After(2 * time.Second):
			return []core.SearchHit{hit(1, 0.9)}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}}
	reg := telemetry.NewRegistry()
	m := NewMetrics(reg)
	co, err := NewCoordinator(CoordinatorConfig{
		Shards:     []Shard{{Name: "a", Primary: slow, Replicas: []Peer{hitPeer("a-replica", hit(2, 0.8))}}},
		HedgeDelay: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	co.SetMetrics(m)
	start := time.Now()
	res := co.Search(context.Background(), "u", core.SearchRequest{})
	if took := time.Since(start); took > time.Second {
		t.Fatalf("hedged query took %v; the replica should win within ~HedgeDelay", took)
	}
	if res.Degraded || len(res.Hits) != 1 || res.Hits[0].ID != 2 {
		t.Fatalf("want the hedged replica's answer, got %+v", res)
	}
	if got := m.Hedges.Value(); got != 1 {
		t.Errorf("laminar_cluster_hedges_total = %d, want 1", got)
	}
	<-primaryDone // the abandoned primary attempt must still unwind
}

func TestCoordinatorBackoffSkipsUnhealthyShard(t *testing.T) {
	var calls atomic.Int64
	flaky := &fakePeer{name: "f", fn: func(context.Context, string, core.SearchRequest) ([]core.SearchHit, error) {
		calls.Add(1)
		return nil, errors.New("down")
	}}
	now := time.Unix(1000, 0)
	co, err := NewCoordinator(CoordinatorConfig{
		Shards:         []Shard{{Name: "ok", Primary: hitPeer("ok", hit(1, 0.9))}, {Name: "f", Primary: flaky}},
		FailureBackoff: time.Second,
		MaxBackoff:     8 * time.Second,
		Clock:          func() time.Time { return now },
	})
	if err != nil {
		t.Fatal(err)
	}

	// First query probes the shard and fails it; while the 1s backoff
	// window is open, further queries must not touch the peer.
	co.Search(context.Background(), "u", core.SearchRequest{})
	if got := calls.Load(); got != 1 {
		t.Fatalf("first query made %d peer calls, want 1", got)
	}
	for i := 0; i < 3; i++ {
		res := co.Search(context.Background(), "u", core.SearchRequest{})
		if !res.Degraded {
			t.Fatal("skipped shard must still flag the reply degraded")
		}
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("backoff window leaked %d extra peer calls", got-1)
	}

	// Past the window the shard is probed again; the second consecutive
	// failure doubles the backoff (1s -> 2s), so a query 1.5s later skips.
	now = now.Add(1100 * time.Millisecond)
	co.Search(context.Background(), "u", core.SearchRequest{})
	if got := calls.Load(); got != 2 {
		t.Fatalf("post-window probe missing: %d calls, want 2", got)
	}
	now = now.Add(1500 * time.Millisecond)
	co.Search(context.Background(), "u", core.SearchRequest{})
	if got := calls.Load(); got != 2 {
		t.Fatalf("doubled backoff not honored: %d calls, want still 2", got)
	}

	// Recovery: the peer starts answering, the next admitted probe heals
	// the shard, and subsequent replies are full again.
	flaky.fn = hitPeer("f", hit(2, 0.5)).fn
	now = now.Add(time.Hour)
	if res := co.Search(context.Background(), "u", core.SearchRequest{}); res.Degraded {
		t.Fatalf("healed shard still degraded: %+v", res)
	}
	if res := co.Search(context.Background(), "u", core.SearchRequest{}); res.Degraded || len(res.Hits) != 2 {
		t.Fatalf("want both shards' hits after recovery, got %+v", res)
	}
}

func TestCoordinatorMetrics(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := NewMetrics(reg)
	failing := &fakePeer{name: "b", fn: func(context.Context, string, core.SearchRequest) ([]core.SearchHit, error) {
		return nil, errors.New("down")
	}}
	co, err := NewCoordinator(CoordinatorConfig{Shards: []Shard{
		{Name: "a", Primary: hitPeer("a", hit(1, 0.9))},
		{Name: "b", Primary: failing},
	}})
	if err != nil {
		t.Fatal(err)
	}
	co.SetMetrics(m)
	if v := m.ShardHealthy.Values(); v["a"] != 1 || v["b"] != 1 {
		t.Fatalf("gauges not initialized healthy: %v", v)
	}
	co.Search(context.Background(), "u", core.SearchRequest{})
	if v := m.ShardHealthy.Values(); v["a"] != 1 || v["b"] != 0 {
		t.Errorf("health gauges after one failure: %v, want a=1 b=0", v)
	}
	if v := m.Searches.Values(); v["partial"] != 1 {
		t.Errorf("searches_total: %v, want partial=1", v)
	}
	if v := m.ShardFailures.Values(); v["b"] != 1 {
		t.Errorf("shard_failures_total: %v, want b=1", v)
	}
	if c := m.ShardSearchSeconds.With("a").Count(); c != 1 {
		t.Errorf("shard a search histogram count = %d, want 1", c)
	}
}

func TestCoordinatorLeaksNoGoroutines(t *testing.T) {
	slow := &fakePeer{name: "slow", fn: func(ctx context.Context, _ string, _ core.SearchRequest) ([]core.SearchHit, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}}
	ln, _ := net.Listen("tcp", "127.0.0.1:0")
	deadURL := "http://" + ln.Addr().String()
	ln.Close()
	co, err := NewCoordinator(CoordinatorConfig{
		Shards: []Shard{
			{Name: "ok", Primary: hitPeer("ok", hit(1, 0.9)), Replicas: []Peer{hitPeer("ok-r", hit(1, 0.9))}},
			{Name: "slow", Primary: slow, Replicas: []Peer{slow}},
			{Name: "down", Primary: NewHTTPPeer("down", deadURL)},
		},
		ShardTimeout: 20 * time.Millisecond,
		HedgeDelay:   5 * time.Millisecond,
		// Zero-length backoff window via a frozen clock would skip the
		// shard; default backoff is fine, the test only needs goroutines
		// to settle.
	})
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		co.Search(context.Background(), "u", core.SearchRequest{})
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("goroutines did not settle: %d before, %d after 20 degraded fan-outs", before, runtime.NumGoroutine())
}
