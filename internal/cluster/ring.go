// Package cluster distributes the Laminar registry across N laminar-server
// nodes (ROADMAP item 1): records are partitioned by consistent hashing on
// record id, semantic/completion queries are scatter-gathered across the
// shards by a coordinator that merges per-shard top-k lists with
// search.MergeRanked, and stateless read replicas restore read-only index
// snapshots straight from the v2 sidecar. "A Prototype of Serverless
// Lucene" is the model: ephemeral searchers pulling prebuilt index shards
// from shared storage.
//
// The package is transport-agnostic at its core — the coordinator fans out
// to Peer implementations — with two in-repo transports: plain HTTP against
// each shard's existing /registry/{user}/search endpoint (HTTPPeer) and the
// repo's own RESP stack (RESPPeer against a ServeRESP listener), so a
// deployment can coordinate over the same protocol substrate the Redis
// dataflow mapping already uses. See docs/cluster.md.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultVirtualNodes is how many points each shard contributes to the
// ring when RingConfig.VirtualNodes is 0. 64 points per shard keeps the
// keyspace imbalance across a handful of shards in the few-percent range
// while the ring stays small enough to rebuild on every config load.
const DefaultVirtualNodes = 64

// RingConfig describes a consistent-hash ring. Every node of a deployment
// builds its ring from the same shard-name list (shared via config), so
// owner decisions agree everywhere without any coordination traffic.
type RingConfig struct {
	// Shards are the shard names, in config order. Names must be unique
	// and non-empty.
	Shards []string
	// VirtualNodes is how many ring points each shard contributes
	// (0 = DefaultVirtualNodes). More points smooth the partition at the
	// cost of a larger ring.
	VirtualNodes int
}

// Ring is an immutable consistent-hash ring over shard names. Methods are
// safe for concurrent use (the ring never changes after construction —
// a config change builds a new ring).
type Ring struct {
	points []ringPoint // sorted by hash
	shards []string
}

type ringPoint struct {
	hash  uint64
	shard string
}

// NewRing builds the ring. It is deterministic: the same config produces
// the same ring on every node and every run — the property the whole
// scheme rests on.
func NewRing(cfg RingConfig) (*Ring, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one shard")
	}
	vn := cfg.VirtualNodes
	if vn <= 0 {
		vn = DefaultVirtualNodes
	}
	seen := map[string]bool{}
	r := &Ring{points: make([]ringPoint, 0, len(cfg.Shards)*vn)}
	for _, name := range cfg.Shards {
		if name == "" {
			return nil, fmt.Errorf("cluster: ring shard name must not be empty")
		}
		if seen[name] {
			return nil, fmt.Errorf("cluster: duplicate ring shard %q", name)
		}
		seen[name] = true
		r.shards = append(r.shards, name)
		for v := 0; v < vn; v++ {
			r.points = append(r.points, ringPoint{hash: ringHash(name + "#" + strconv.Itoa(v)), shard: name})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// A full 64-bit hash collision between two points is vanishingly
		// rare but must still order deterministically across nodes.
		return r.points[i].shard < r.points[j].shard
	})
	return r, nil
}

// Shards returns the shard names in config order.
func (r *Ring) Shards() []string { return append([]string(nil), r.shards...) }

// Owner maps a record id to the shard that owns it: the first ring point
// clockwise from the id's hash.
func (r *Ring) Owner(id int) string {
	h := ringHash(strconv.Itoa(id))
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap around
	}
	return r.points[i].shard
}

// ringHash is FNV-1a plus a 64-bit finalizer mix — dependency-free and
// stable across platforms and Go releases (unlike maphash, whose seed is
// per-process). Raw FNV-1a of short, similar keys (the "name#N" virtual
// node points) clusters in a narrow band of the hash space, which skews
// shard ownership badly; the multiply-xorshift finalizer (murmur3's
// fmix64) spreads the points across the whole ring.
func ringHash(key string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
