package cluster

import (
	"fmt"

	"laminar/internal/index"
	"laminar/internal/registry"
)

// OpenReplica builds a stateless read replica: a registry restored
// straight from a shard's persisted snapshot (the v2 sidecar restores the
// trained index structure, so no k-means runs) and locked read-only. The
// caller serves it behind an ordinary laminar-server node and lists it as
// a replica peer on the shard — the coordinator hedges to it or fails
// over when the primary is slow or down.
//
// factory selects the vector-index implementation the primary was
// configured with; nil keeps the default exact Flat index. When factory
// is non-nil the replica refuses to start unless the snapshot actually
// restored (a retrain on a "stateless" replica would mean the snapshot
// and records drifted apart — a deployment bug worth failing loudly on).
func OpenReplica(path string, factory index.Factory) (*registry.Store, error) {
	st := registry.NewStore()
	if err := st.Load(path); err != nil {
		return nil, fmt.Errorf("cluster: replica restore from %s: %w", path, err)
	}
	if factory != nil {
		st.ConfigureIndex(factory)
		if !st.IndexesRestored() {
			return nil, fmt.Errorf("cluster: replica %s: snapshot did not restore the trained index (records and sidecar out of sync)", path)
		}
	}
	st.SetReadOnly(true)
	return st, nil
}
