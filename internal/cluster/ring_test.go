package cluster

import (
	"fmt"
	"testing"
)

func TestRingRejectsBadConfigs(t *testing.T) {
	for _, cfg := range []RingConfig{
		{},
		{Shards: []string{"a", ""}},
		{Shards: []string{"a", "b", "a"}},
	} {
		if _, err := NewRing(cfg); err == nil {
			t.Errorf("NewRing(%+v): want error", cfg)
		}
	}
}

func TestRingIsDeterministic(t *testing.T) {
	cfg := RingConfig{Shards: []string{"a", "b", "c"}}
	r1, err := NewRing(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRing(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for id := 1; id <= 5000; id++ {
		if o1, o2 := r1.Owner(id), r2.Owner(id); o1 != o2 {
			t.Fatalf("id %d: ring built twice from the same config disagrees (%s vs %s)", id, o1, o2)
		}
	}
}

func TestRingBalance(t *testing.T) {
	r, err := NewRing(RingConfig{Shards: []string{"a", "b", "c"}})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const n = 30000
	for id := 1; id <= n; id++ {
		counts[r.Owner(id)]++
	}
	for _, name := range r.Shards() {
		share := float64(counts[name]) / n
		if share < 0.15 || share > 0.55 {
			t.Errorf("shard %s owns %.1f%% of ids, outside the plausible band for 64 virtual nodes (%v)",
				name, 100*share, counts)
		}
	}
}

func TestRingMinimalRemapOnShardAdd(t *testing.T) {
	r3, err := NewRing(RingConfig{Shards: []string{"a", "b", "c"}})
	if err != nil {
		t.Fatal(err)
	}
	r4, err := NewRing(RingConfig{Shards: []string{"a", "b", "c", "d"}})
	if err != nil {
		t.Fatal(err)
	}
	const n = 30000
	moved, toNew := 0, 0
	for id := 1; id <= n; id++ {
		o3, o4 := r3.Owner(id), r4.Owner(id)
		if o3 != o4 {
			moved++
			if o4 != "d" {
				t.Fatalf("id %d moved from %s to %s: adding a shard must only move ids onto the new shard", id, o3, o4)
			}
			toNew++
		}
	}
	// Consistent hashing's whole point: ~1/4 of the keyspace moves when a
	// fourth shard joins, not ~3/4 like a mod-N scheme.
	if frac := float64(moved) / n; frac > 0.40 {
		t.Errorf("%.1f%% of ids moved when adding one shard to three; consistent hashing should move ~25%%", 100*frac)
	}
	if toNew == 0 {
		t.Error("no ids moved to the new shard at all")
	}
}

func TestRingVirtualNodeCountSmoothsBalance(t *testing.T) {
	// Not a strict assertion on variance — just that a custom VirtualNodes
	// value is honored and still covers every shard.
	r, err := NewRing(RingConfig{Shards: []string{"a", "b"}, VirtualNodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for id := 1; id <= 10000; id++ {
		seen[r.Owner(id)] = true
	}
	if !seen["a"] || !seen["b"] {
		t.Errorf("with 4 virtual nodes each, both shards should still own ids: %v", seen)
	}
}

func TestParseShards(t *testing.T) {
	shards, err := ParseShards("a=http://h1:1,b=http://h2:2|http://h3:3")
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 2 {
		t.Fatalf("got %d shards, want 2", len(shards))
	}
	if shards[0].Name != "a" || shards[0].Primary.Name() != "a" || len(shards[0].Replicas) != 0 {
		t.Errorf("shard a parsed wrong: %+v", shards[0])
	}
	if shards[1].Name != "b" || len(shards[1].Replicas) != 1 {
		t.Fatalf("shard b parsed wrong: %+v", shards[1])
	}
	if got := shards[1].Replicas[0].Name(); got != "b-replica1" {
		t.Errorf("replica name %q, want b-replica1", got)
	}
}

func TestParseShardsRejectsBadSpecs(t *testing.T) {
	for _, spec := range []string{
		"",
		"   ",
		",",
		"nourl",
		"=http://h:1",
		"a=",
		"a=ftp://h:1",
		"a=http://h:1,a=http://h:2",
		"a=http://h:1||http://h:3",
	} {
		if _, err := ParseShards(spec); err == nil {
			t.Errorf("ParseShards(%q): want error", spec)
		}
	}
}

func ExampleRing_Owner() {
	r, _ := NewRing(RingConfig{Shards: []string{"a", "b", "c"}})
	fmt.Println(r.Owner(1) != "", r.Owner(1) == r.Owner(1))
	// Output: true true
}
