package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"

	"laminar/internal/core"
	"laminar/internal/resp"
)

// ---- HTTP transport ----

// HTTPPeer talks to a shard node over the node's ordinary JSON HTTP API:
// searches go to POST /registry/{user}/search, writes to the pe/workflow
// add endpoints. It is the default transport — every laminar-server
// already speaks it, so a cluster is just N plain nodes plus config.
type HTTPPeer struct {
	name string
	base string
	hc   *http.Client
}

// NewHTTPPeer creates a peer for the node serving at baseURL
// (e.g. "http://10.0.0.7:8080"). The peer deliberately carries no
// client-side timeout of its own: the coordinator's per-shard context
// bounds every call.
func NewHTTPPeer(name, baseURL string) *HTTPPeer {
	return &HTTPPeer{name: name, base: strings.TrimRight(baseURL, "/"), hc: &http.Client{}}
}

// Name identifies the node in errors and telemetry.
func (p *HTTPPeer) Name() string { return p.name }

// Search implements Peer over POST /registry/{user}/search.
func (p *HTTPPeer) Search(ctx context.Context, user string, req core.SearchRequest) ([]core.SearchHit, error) {
	var out core.SearchResponse
	if err := p.post(ctx, "/registry/"+user+"/search", req, http.StatusOK, &out); err != nil {
		return nil, err
	}
	return out.Hits, nil
}

// Register creates the user on the node. Registration is broadcast to
// every shard (searches resolve {user} locally on each node), so an
// already-registered user is success, not a conflict.
func (p *HTTPPeer) Register(ctx context.Context, userName, password string) error {
	err := p.post(ctx, "/auth/register",
		core.RegisterUserRequest{UserName: userName, Password: password}, http.StatusCreated, nil)
	if err != nil && strings.Contains(err.Error(), "status 409") {
		return nil
	}
	return err
}

// AddPE registers a PE on the node (the router pre-assigns req.PEID so the
// ring owner is derivable from the record id on every node).
func (p *HTTPPeer) AddPE(ctx context.Context, user string, req core.AddPERequest) (*core.PERecord, error) {
	var out core.PERecord
	if err := p.post(ctx, "/registry/"+user+"/pe/add", req, http.StatusCreated, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// AddWorkflow registers a workflow on the node.
func (p *HTTPPeer) AddWorkflow(ctx context.Context, user string, req core.AddWorkflowRequest) (*core.WorkflowRecord, error) {
	var out core.WorkflowRecord
	if err := p.post(ctx, "/registry/"+user+"/workflow/add", req, http.StatusCreated, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// post sends one JSON request and decodes the reply into out (when
// non-nil). A non-want status or an undecodable body is an error — the
// coordinator turns it into a degraded partial result, never a panic.
func (p *HTTPPeer) post(ctx context.Context, path string, body any, want int, out any) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("cluster: %s: encoding request: %w", p.name, err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, p.base+path, bytes.NewReader(raw))
	if err != nil {
		return fmt.Errorf("cluster: %s: %w", p.name, err)
	}
	req.Header.Set("Content-Type", "application/json")
	res, err := p.hc.Do(req)
	if err != nil {
		return fmt.Errorf("cluster: %s: %w", p.name, err)
	}
	defer res.Body.Close()
	if res.StatusCode != want {
		msg, _ := io.ReadAll(io.LimitReader(res.Body, 512))
		return fmt.Errorf("cluster: %s: %s: status %d (%s)", p.name, path, res.StatusCode, strings.TrimSpace(string(msg)))
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(res.Body).Decode(out); err != nil {
		return fmt.Errorf("cluster: %s: malformed reply: %w", p.name, err)
	}
	return nil
}

// ---- RESP transport ----

// The RESP transport reuses the repo's Redis protocol stack as the
// fan-out substrate: a shard node runs a RESPServer beside its HTTP
// listener, and the coordinator queries it with one custom command,
//
//	CSEARCH <user> <SearchRequest JSON>  →  bulk string <SearchResponse JSON>
//
// (plus PING for liveness). Queries only: writes always travel over HTTP.

// SearchFunc answers one search the way POST /registry/{user}/search
// would; server.Server exposes a compatible method (ClusterSearchLocal).
type SearchFunc func(user string, req core.SearchRequest) (core.SearchResponse, error)

// RESPServer is a minimal RESP2 listener serving CSEARCH.
type RESPServer struct {
	ln     net.Listener
	fn     SearchFunc
	wg     sync.WaitGroup
	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]bool
}

// ServeRESP listens on addr ("127.0.0.1:0" picks a free port) and serves
// connections in the background.
func ServeRESP(addr string, fn SearchFunc) (*RESPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: resp listen: %w", err)
	}
	s := &RESPServer{ln: ln, fn: fn, conns: map[net.Conn]bool{}}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener address ("host:port").
func (s *RESPServer) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and every open connection.
func (s *RESPServer) Close() error {
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *RESPServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *RESPServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()
	r := resp.NewReader(conn)
	w := resp.NewWriter(conn)
	for {
		v, err := r.Read()
		if err != nil {
			return
		}
		if v.Type != resp.TypeArray || len(v.Array) == 0 {
			_ = writeFlush(w, resp.Err("ERR expected command array"))
			continue
		}
		cmd := strings.ToUpper(v.Array[0].Str)
		switch cmd {
		case "PING":
			_ = writeFlush(w, resp.Simple("PONG"))
		case "CSEARCH":
			if len(v.Array) != 3 {
				_ = writeFlush(w, resp.Err("ERR CSEARCH wants <user> <request-json>"))
				continue
			}
			var req core.SearchRequest
			if err := json.Unmarshal([]byte(v.Array[2].Str), &req); err != nil {
				_ = writeFlush(w, resp.Err("ERR malformed search request: "+err.Error()))
				continue
			}
			res, err := s.fn(v.Array[1].Str, req)
			if err != nil {
				_ = writeFlush(w, resp.Err("ERR "+err.Error()))
				continue
			}
			raw, err := json.Marshal(res)
			if err != nil {
				_ = writeFlush(w, resp.Err("ERR encoding reply: "+err.Error()))
				continue
			}
			_ = writeFlush(w, resp.Bulk(string(raw)))
		default:
			_ = writeFlush(w, resp.Err("ERR unknown command '"+cmd+"'"))
		}
	}
}

func writeFlush(w *resp.Writer, v resp.Value) error {
	if err := w.Write(v); err != nil {
		return err
	}
	return w.Flush()
}

// RESPPeer queries a shard's RESPServer. Each Search dials a fresh
// connection — simple, per-query isolated (a poisoned stream never
// outlives its query), and bounded by the coordinator's shard deadline,
// which is applied to the socket.
type RESPPeer struct {
	name string
	addr string
}

// NewRESPPeer creates a peer for the RESPServer at addr ("host:port").
func NewRESPPeer(name, addr string) *RESPPeer { return &RESPPeer{name: name, addr: addr} }

// Name identifies the node in errors and telemetry.
func (p *RESPPeer) Name() string { return p.name }

// Search implements Peer over CSEARCH.
func (p *RESPPeer) Search(ctx context.Context, user string, req core.SearchRequest) ([]core.SearchHit, error) {
	raw, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("cluster: %s: encoding request: %w", p.name, err)
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", p.addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: %s: %w", p.name, err)
	}
	defer conn.Close()
	if dl, ok := ctx.Deadline(); ok {
		_ = conn.SetDeadline(dl)
	}
	w := resp.NewWriter(conn)
	if err := w.WriteCommand("CSEARCH", user, string(raw)); err != nil {
		return nil, fmt.Errorf("cluster: %s: %w", p.name, err)
	}
	v, err := resp.NewReader(conn).Read()
	if err != nil {
		return nil, fmt.Errorf("cluster: %s: %w", p.name, err)
	}
	if v.IsError() {
		return nil, fmt.Errorf("cluster: %s: %s", p.name, v.Str)
	}
	if v.Type != resp.TypeBulkString || v.Null {
		return nil, fmt.Errorf("cluster: %s: unexpected reply type %q", p.name, string(v.Type))
	}
	var out core.SearchResponse
	if err := json.Unmarshal([]byte(v.Str), &out); err != nil {
		return nil, fmt.Errorf("cluster: %s: malformed reply: %w", p.name, err)
	}
	return out.Hits, nil
}
