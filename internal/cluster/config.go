package cluster

import (
	"fmt"
	"strings"
)

// ParseShards parses the -cluster-peers flag syntax into a coordinator
// shard set:
//
//	name=primaryURL[|replicaURL...][,name=primaryURL...]
//
// e.g. "a=http://10.0.0.1:8080,b=http://10.0.0.2:8080|http://10.0.0.3:8080"
// declares two shards, the second with one read replica. Every URL becomes
// an HTTPPeer; replica peers are named "<shard>-replica<N>".
func ParseShards(spec string) ([]Shard, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, fmt.Errorf("cluster: empty shard spec")
	}
	var shards []Shard
	seen := map[string]bool{}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, urls, ok := strings.Cut(part, "=")
		name = strings.TrimSpace(name)
		if !ok || name == "" {
			return nil, fmt.Errorf("cluster: shard %q: want name=primaryURL[|replicaURL...]", part)
		}
		if seen[name] {
			return nil, fmt.Errorf("cluster: duplicate shard %q", name)
		}
		seen[name] = true
		var sh Shard
		sh.Name = name
		for i, u := range strings.Split(urls, "|") {
			u = strings.TrimSpace(u)
			if u == "" {
				return nil, fmt.Errorf("cluster: shard %q: empty peer URL", name)
			}
			if !strings.HasPrefix(u, "http://") && !strings.HasPrefix(u, "https://") {
				return nil, fmt.Errorf("cluster: shard %q: peer URL %q must start with http:// or https://", name, u)
			}
			if i == 0 {
				sh.Primary = NewHTTPPeer(name, u)
			} else {
				sh.Replicas = append(sh.Replicas, NewHTTPPeer(fmt.Sprintf("%s-replica%d", name, i), u))
			}
		}
		if sh.Primary == nil {
			return nil, fmt.Errorf("cluster: shard %q has no primary URL", name)
		}
		shards = append(shards, sh)
	}
	if len(shards) == 0 {
		return nil, fmt.Errorf("cluster: empty shard spec")
	}
	return shards, nil
}
