package cluster

import "laminar/internal/telemetry"

// Metrics is the coordinator's observability surface, exported on the
// coordinator node's /metrics endpoint (rows in docs/operations.md).
// server.New registers the families eagerly — before any cluster traffic,
// whether or not the node even coordinates — so the runbook/endpoint sync
// the metrics-smoke gate enforces holds from the first scrape.
type Metrics struct {
	// ShardSearchSeconds times each shard's contribution to a fan-out
	// (from dispatch to merged or failed), labeled by shard.
	ShardSearchSeconds *telemetry.HistogramVec
	// Searches counts coordinated queries by outcome: status="full" when
	// every shard answered, status="partial" when the reply is degraded.
	Searches *telemetry.CounterVec
	// ShardHealthy is 1 while the coordinator considers the shard
	// eligible for fan-out, 0 while it is marked down and backing off.
	ShardHealthy *telemetry.GaugeVec
	// ShardFailures counts per-shard fan-out failures (timeouts,
	// connection errors, malformed replies).
	ShardFailures *telemetry.CounterVec
	// Hedges counts hedged requests: a replica launched because the
	// primary outlived the hedge delay.
	Hedges *telemetry.Counter
}

// NewMetrics registers the laminar_cluster_* families on reg.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	return &Metrics{
		ShardSearchSeconds: reg.HistogramVec("laminar_cluster_shard_search_seconds",
			"Per-shard scatter-gather latency, by shard.", telemetry.LatencyBuckets(), "shard"),
		Searches: reg.CounterVec("laminar_cluster_searches_total",
			"Coordinated searches by outcome (full = every shard answered, partial = degraded).", "status"),
		ShardHealthy: reg.GaugeVec("laminar_cluster_shard_healthy",
			"1 while the shard is eligible for fan-out, 0 while marked down.", "shard"),
		ShardFailures: reg.CounterVec("laminar_cluster_shard_failures_total",
			"Per-shard fan-out failures (timeout, connection, malformed reply).", "shard"),
		Hedges: reg.Counter("laminar_cluster_hedges_total",
			"Replica requests hedged because the primary outlived the hedge delay."),
	}
}
