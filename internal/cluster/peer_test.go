package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"testing"
	"time"

	"laminar/internal/core"
	"laminar/internal/resp"
)

func TestRESPRoundTrip(t *testing.T) {
	want := []core.SearchHit{hit(3, 0.9), hit(1, 0.4)}
	srv, err := ServeRESP("127.0.0.1:0", func(user string, req core.SearchRequest) (core.SearchResponse, error) {
		if user != "alice" {
			t.Errorf("user = %q, want alice", user)
		}
		if req.QueryType != core.QuerySemantic || req.Limit != 2 {
			t.Errorf("request lost in transit: %+v", req)
		}
		return core.SearchResponse{Hits: want}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	p := NewRESPPeer("a", srv.Addr())
	hits, err := p.Search(context.Background(), "alice", core.SearchRequest{
		SearchType: core.SearchPEs, QueryType: core.QuerySemantic, Limit: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 || hits[0].ID != 3 || hits[1].ID != 1 {
		t.Fatalf("hits = %+v, want %+v", hits, want)
	}
}

func TestRESPPeerSurfacesServerError(t *testing.T) {
	srv, err := ServeRESP("127.0.0.1:0", func(string, core.SearchRequest) (core.SearchResponse, error) {
		return core.SearchResponse{}, errors.New("no such user")
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	if _, err := NewRESPPeer("a", srv.Addr()).Search(context.Background(), "ghost", core.SearchRequest{}); err == nil {
		t.Fatal("want the server's error surfaced to the peer")
	}
}

func TestRESPServerAnswersPingAndRejectsUnknown(t *testing.T) {
	srv, err := ServeRESP("127.0.0.1:0", func(string, core.SearchRequest) (core.SearchResponse, error) {
		return core.SearchResponse{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	w := resp.NewWriter(conn)
	r := resp.NewReader(conn)

	if err := w.WriteCommand("PING"); err != nil {
		t.Fatal(err)
	}
	v, err := r.Read()
	if err != nil {
		t.Fatal(err)
	}
	if v.Str != "PONG" {
		t.Fatalf("PING -> %q, want PONG", v.Str)
	}

	if err := w.WriteCommand("FLUSHALL"); err != nil {
		t.Fatal(err)
	}
	v, err = r.Read()
	if err != nil {
		t.Fatal(err)
	}
	if !v.IsError() {
		t.Fatalf("unknown command must error, got %+v", v)
	}

	// Malformed CSEARCH payloads error per-command; the connection
	// survives for the next command.
	if err := w.WriteCommand("CSEARCH", "u", "{not json"); err != nil {
		t.Fatal(err)
	}
	v, err = r.Read()
	if err != nil {
		t.Fatal(err)
	}
	if !v.IsError() {
		t.Fatalf("malformed request must error, got %+v", v)
	}
	if err := w.WriteCommand("PING"); err != nil {
		t.Fatal(err)
	}
	if v, err = r.Read(); err != nil || v.Str != "PONG" {
		t.Fatalf("connection did not survive a bad command: %v %+v", err, v)
	}
}

func TestRESPPeerHonorsDeadline(t *testing.T) {
	// A SearchFunc that never returns: the peer's socket deadline (from
	// the coordinator's per-shard context) must break the read.
	block := make(chan struct{})
	srv, err := ServeRESP("127.0.0.1:0", func(string, core.SearchRequest) (core.SearchResponse, error) {
		<-block
		return core.SearchResponse{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Unblock the handler before Close: Close waits for every serveConn
	// goroutine, and a handler stuck in the SearchFunc would deadlock it.
	defer func() { close(block); srv.Close() }()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = NewRESPPeer("a", srv.Addr()).Search(ctx, "u", core.SearchRequest{})
	if err == nil {
		t.Fatal("want a deadline error")
	}
	if took := time.Since(start); took > 2*time.Second {
		t.Fatalf("deadline not applied to the socket: took %v", took)
	}
}

func TestRESPPeerAsCoordinatorTransport(t *testing.T) {
	// The whole point of the RESP transport: it slots into the same
	// coordinator fan-out as HTTP peers.
	srv, err := ServeRESP("127.0.0.1:0", func(user string, req core.SearchRequest) (core.SearchResponse, error) {
		return core.SearchResponse{Hits: []core.SearchHit{hit(9, 0.9)}}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	co, err := NewCoordinator(CoordinatorConfig{Shards: []Shard{
		{Name: "resp", Primary: NewRESPPeer("resp", srv.Addr())},
		{Name: "fake", Primary: hitPeer("fake", hit(4, 0.5))},
	}})
	if err != nil {
		t.Fatal(err)
	}
	res := co.Search(context.Background(), "u", core.SearchRequest{})
	if res.Degraded || len(res.Hits) != 2 || res.Hits[0].ID != 9 {
		t.Fatalf("mixed-transport fan-out: %+v", res)
	}
}

func TestRESPValueJSONSymmetry(t *testing.T) {
	// Guards the wire contract the two transports share: a
	// SearchResponse's degraded flag must survive the RESP bulk-JSON hop.
	raw, err := json.Marshal(core.SearchResponse{Hits: []core.SearchHit{hit(1, 0.5)}, Degraded: true})
	if err != nil {
		t.Fatal(err)
	}
	var out core.SearchResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Degraded || len(out.Hits) != 1 {
		t.Fatalf("round trip lost fields: %+v", out)
	}
}
