package cluster

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"laminar/internal/core"
	"laminar/internal/index"
	"laminar/internal/registry"
)

// buildShardSnapshot makes a primary-shaped store — clustered index,
// trained, populated — and saves it in the v2 format.
func buildShardSnapshot(t *testing.T, path string, factory index.Factory) (userID int, query []float32) {
	t.Helper()
	st := registry.NewStore()
	if factory != nil {
		st.ConfigureIndex(factory)
	}
	u, err := st.RegisterUser("alice", "pw")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 80; i++ {
		vec := make([]float32, 8)
		vec[i%8] = 1
		if _, err := st.AddPE(u.UserID, core.AddPERequest{
			PEName: fmt.Sprintf("PE%03d", i), PECode: "c", DescEmbedding: vec,
		}); err != nil {
			t.Fatal(err)
		}
	}
	st.RetrainIndexes()
	st.WaitIndexReady()
	if err := st.Save(path); err != nil {
		t.Fatal(err)
	}
	q := make([]float32, 8)
	q[3] = 1
	return u.UserID, q
}

func clusteredFactory() index.VectorIndex {
	return index.NewClustered(index.ClusteredConfig{RecallTarget: 1.0})
}

func TestOpenReplicaRestoresWithoutRetraining(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "shard.json")
	userID, q := buildShardSnapshot(t, path, clusteredFactory)

	rep, err := OpenReplica(path, clusteredFactory)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.IndexesRestored() {
		t.Fatal("replica ran k-means instead of restoring the sidecar snapshot")
	}
	if !rep.ReadOnly() {
		t.Fatal("replica is not read-only")
	}
	hits := rep.SemanticSearch(userID, q, 5)
	if len(hits) == 0 {
		t.Fatal("restored replica answers no queries")
	}
	if hits[0].Score < 0.99 {
		t.Errorf("best hit score %.3f, want ~1.0 for an exact-match query", hits[0].Score)
	}
}

func TestOpenReplicaRejectsWrites(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "shard.json")
	userID, _ := buildShardSnapshot(t, path, clusteredFactory)

	rep, err := OpenReplica(path, clusteredFactory)
	if err != nil {
		t.Fatal(err)
	}
	wantForbidden := func(label string, err error) {
		t.Helper()
		if err == nil {
			t.Fatalf("%s: read-only replica accepted the write", label)
		}
		var apiErr *core.APIError
		if !errors.As(err, &apiErr) || apiErr.Code != 403 {
			t.Errorf("%s: got %v, want a 403 APIError", label, err)
		}
	}
	_, err = rep.AddPE(userID, core.AddPERequest{PEName: "new", PECode: "c"})
	wantForbidden("AddPE", err)
	wantForbidden("RemovePE", rep.RemovePE(userID, 1))
	_, err = rep.AddWorkflow(userID, core.AddWorkflowRequest{WorkflowName: "W", WorkflowCode: "c"})
	wantForbidden("AddWorkflow", err)
	_, err = rep.RegisterUser("bob", "pw")
	wantForbidden("RegisterUser", err)

	// Reads — including login, which replicas must serve — still work.
	if _, _, err := rep.Login("alice", "pw"); err != nil {
		t.Errorf("replica refused a login: %v", err)
	}
	if pes := rep.PEsForUser(userID); len(pes) != 80 {
		t.Errorf("replica lists %d PEs, want 80", len(pes))
	}
}

func TestOpenReplicaFailsOnMissingSnapshot(t *testing.T) {
	if _, err := OpenReplica(filepath.Join(t.TempDir(), "absent.json"), nil); err == nil {
		t.Fatal("want an error for a missing snapshot")
	}
}

func TestOpenReplicaFailsWhenSidecarMissing(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "shard.json")
	buildShardSnapshot(t, path, clusteredFactory)

	// Delete the vector sidecar: the registry JSON alone cannot restore
	// the trained index, and a "stateless" replica must refuse to boot
	// rather than silently run k-means.
	matches, err := filepath.Glob(filepath.Join(dir, "shard.json-*.vec"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no v2 sidecar next to the snapshot (matches=%v err=%v)", matches, err)
	}
	for _, m := range matches {
		if err := os.Remove(m); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := OpenReplica(path, clusteredFactory); err == nil {
		t.Fatal("replica booted from a snapshot whose sidecar is gone")
	}
}

func TestOpenReplicaWithNilFactoryUsesFlat(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "shard.json")
	userID, q := buildShardSnapshot(t, path, nil)

	rep, err := OpenReplica(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if hits := rep.SemanticSearch(userID, q, 5); len(hits) == 0 {
		t.Fatal("flat replica answers no queries")
	}
}
