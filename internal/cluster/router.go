package cluster

import (
	"context"
	"fmt"
	"sync/atomic"

	"laminar/internal/core"
)

// Router is the cluster's write path: it pre-assigns globally unique
// record ids and routes each registration to the ring owner of that id,
// so every node can derive a record's home shard from its id alone —
// exactly the property the coordinator's scatter-gather and the v2
// snapshot fan-out rely on. Users are broadcast to every shard (each node
// resolves {user} locally; accounts are tiny and write-rare).
//
// Ids are assigned from a single router-owned counter. One router per
// cluster is the deployment contract — multiple concurrent writers would
// need an external id sequencer, which is out of scope here.
type Router struct {
	ring     *Ring
	primary  map[string]*HTTPPeer
	nextPEID atomic.Int64
	nextWFID atomic.Int64
}

// NewRouter builds the write router. primaries maps every ring shard name
// to its primary node; a missing or extra entry is a config bug and is
// rejected.
func NewRouter(ring *Ring, primaries map[string]*HTTPPeer) (*Router, error) {
	shards := ring.Shards()
	if len(primaries) != len(shards) {
		return nil, fmt.Errorf("cluster: router has %d primaries for %d ring shards", len(primaries), len(shards))
	}
	for _, name := range shards {
		if primaries[name] == nil {
			return nil, fmt.Errorf("cluster: router is missing a primary for shard %q", name)
		}
	}
	rt := &Router{ring: ring, primary: primaries}
	rt.nextPEID.Store(0)
	rt.nextWFID.Store(0)
	return rt, nil
}

// SeedIDs advances the id counters past existing records (restarts over a
// populated cluster).
func (rt *Router) SeedIDs(maxPEID, maxWorkflowID int) {
	if int64(maxPEID) > rt.nextPEID.Load() {
		rt.nextPEID.Store(int64(maxPEID))
	}
	if int64(maxWorkflowID) > rt.nextWFID.Load() {
		rt.nextWFID.Store(int64(maxWorkflowID))
	}
}

// Register creates the user on every shard. Partial failure is an error —
// a user present on some shards would make that user's search results
// silently shard-dependent.
func (rt *Router) Register(ctx context.Context, userName, password string) error {
	for _, name := range rt.ring.Shards() {
		if err := rt.primary[name].Register(ctx, userName, password); err != nil {
			return fmt.Errorf("cluster: registering %q on shard %s: %w", userName, name, err)
		}
	}
	return nil
}

// AddPE assigns the next global PE id, routes the registration to the
// ring owner, and reports which shard took it.
func (rt *Router) AddPE(ctx context.Context, user string, req core.AddPERequest) (*core.PERecord, string, error) {
	req.PEID = int(rt.nextPEID.Add(1))
	owner := rt.ring.Owner(req.PEID)
	pe, err := rt.primary[owner].AddPE(ctx, user, req)
	if err != nil {
		return nil, owner, err
	}
	return pe, owner, nil
}

// AddWorkflow assigns the next global workflow id and routes the
// registration to the ring owner.
func (rt *Router) AddWorkflow(ctx context.Context, user string, req core.AddWorkflowRequest) (*core.WorkflowRecord, string, error) {
	req.WorkflowID = int(rt.nextWFID.Add(1))
	owner := rt.ring.Owner(req.WorkflowID)
	wf, err := rt.primary[owner].AddWorkflow(ctx, user, req)
	if err != nil {
		return nil, owner, err
	}
	return wf, owner, nil
}
