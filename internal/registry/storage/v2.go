package storage

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"laminar/internal/core"
	"laminar/internal/index"
	"laminar/internal/lexical"
)

// v2Prefix is the exact byte prefix every v2 JSON file starts with; the
// writer emits it verbatim, which is what makes format detection a fixed
// prefix compare instead of a parse.
const v2Prefix = `{"format":"laminar/v2"`

// v2Header is the small fixed part of the v2 JSON file. Everything bulky
// (records) streams after it; everything binary (vectors, index structure)
// lives in the sidecar it names.
type v2Header struct {
	Format         string `json:"format"`
	Version        int    `json:"version"`
	Sidecar        string `json:"sidecar"`
	SidecarSum     string `json:"sidecarSum"`
	NextUserID     int    `json:"nextUserId"`
	NextPEID       int    `json:"nextPeId"`
	NextWorkflowID int    `json:"nextWorkflowId"`
}

// saveV2 writes the streamed-JSON + sidecar pair. Install order is the
// crash-safety argument: the content-named sidecar lands first (no existing
// JSON references that name), then the JSON renames over the old one —
// after which, and only after which, the old generation's sidecar is swept.
func saveV2(path string, snap *Snapshot) error {
	dir, base := filepath.Dir(path), filepath.Base(path)
	vecName, vecSum, err := writeSidecar(dir, base, snap)
	if err != nil {
		return err
	}
	err = writeFileAtomic(path, func(f *os.File) error {
		return encodeV2JSON(f, snap, v2Header{
			Format:         "laminar/v2",
			Version:        2,
			Sidecar:        vecName,
			SidecarSum:     vecSum,
			NextUserID:     snap.NextUserID,
			NextPEID:       snap.NextPEID,
			NextWorkflowID: snap.NextWorkflowID,
		})
	})
	if err != nil {
		// The freshly installed sidecar may now be unreferenced; leave it for
		// the next successful save's sweep rather than racing a reader.
		return err
	}
	cleanSidecars(dir, base, vecName)
	// A full snapshot subsumes any delta journal that was chained to the
	// previous base; sweep it only after the JSON rename committed. A crash
	// before this point leaves stale segments whose base fingerprint no
	// longer matches — the loader ignores them and the next save sweeps.
	cleanDeltaSegments(dir, base)
	return nil
}

// encodeV2JSON streams the JSON half: header fields first (so detection and
// header-only reads touch a fixed prefix), then each record array encoded
// element by element. At no point does the registry exist as one marshaled
// document — the largest single allocation is one record.
func encodeV2JSON(f *os.File, snap *Snapshot, hdr v2Header) error {
	w := bufio.NewWriterSize(f, 1<<16)
	writeField := func(name string, v any, first bool) error {
		if !first {
			if _, err := w.WriteString(","); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%q:", name); err != nil {
			return err
		}
		data, err := json.Marshal(v)
		if err != nil {
			return err
		}
		_, err = w.Write(data)
		return err
	}
	// The prefix must match v2Prefix byte for byte.
	if _, err := w.WriteString(v2Prefix); err != nil {
		return err
	}
	if err := writeField("version", hdr.Version, false); err != nil {
		return err
	}
	if err := writeField("sidecar", hdr.Sidecar, false); err != nil {
		return err
	}
	if err := writeField("sidecarSum", hdr.SidecarSum, false); err != nil {
		return err
	}
	if err := writeField("nextUserId", hdr.NextUserID, false); err != nil {
		return err
	}
	if err := writeField("nextPeId", hdr.NextPEID, false); err != nil {
		return err
	}
	if err := writeField("nextWorkflowId", hdr.NextWorkflowID, false); err != nil {
		return err
	}
	streamArray := func(name string, n int, elem func(i int) any) error {
		if _, err := fmt.Fprintf(w, ",%q:[", name); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			if i > 0 {
				if err := w.WriteByte(','); err != nil {
					return err
				}
			}
			data, err := json.Marshal(elem(i))
			if err != nil {
				return err
			}
			if _, err := w.Write(data); err != nil {
				return err
			}
		}
		_, err := w.WriteString("]")
		return err
	}
	if err := streamArray("users", len(snap.Users), func(i int) any { return &snap.Users[i] }); err != nil {
		return err
	}
	if err := writeField("passwordHashes", snap.PasswordHashes, false); err != nil {
		return err
	}
	if err := streamArray("pes", len(snap.PEs), func(i int) any { return &snap.PEs[i] }); err != nil {
		return err
	}
	if err := streamArray("workflows", len(snap.Workflows), func(i int) any { return &snap.Workflows[i] }); err != nil {
		return err
	}
	if err := writeField("userPes", snap.UserPEs, false); err != nil {
		return err
	}
	if err := writeField("userWorkflows", snap.UserWorkflows, false); err != nil {
		return err
	}
	if err := writeField("workflowPes", snap.WorkflowPEs, false); err != nil {
		return err
	}
	if _, err := w.WriteString("}\n"); err != nil {
		return err
	}
	return w.Flush()
}

// expectDelim consumes one JSON token and checks it is the wanted
// delimiter.
func expectDelim(dec *json.Decoder, want rune) error {
	tok, err := dec.Token()
	if err != nil {
		return err
	}
	if d, ok := tok.(json.Delim); !ok || rune(d) != want {
		return fmt.Errorf("storage: parse v2 snapshot: got token %v, want %q", tok, want)
	}
	return nil
}

// decodeV2JSON walks the top-level object with a token decoder, decoding
// array elements one record at a time. Key order is not assumed.
func decodeV2JSON(r io.Reader) (*Snapshot, *v2Header, error) {
	dec := json.NewDecoder(bufio.NewReaderSize(r, 1<<16))
	snap := &Snapshot{
		PasswordHashes:   map[int]string{},
		UserPEs:          map[int][]int{},
		UserWorkflows:    map[int][]int{},
		WorkflowPEs:      map[int][]int{},
		PEDescVecs:       map[int][]float32{},
		PECodeVecs:       map[int][]float32{},
		WorkflowDescVecs: map[int][]float32{},
	}
	hdr := &v2Header{}
	if err := expectDelim(dec, '{'); err != nil {
		return nil, nil, err
	}
	decodeArray := func(decodeElem func() error) error {
		if err := expectDelim(dec, '['); err != nil {
			return err
		}
		for dec.More() {
			if err := decodeElem(); err != nil {
				return err
			}
		}
		return expectDelim(dec, ']')
	}
	for dec.More() {
		keyTok, err := dec.Token()
		if err != nil {
			return nil, nil, err
		}
		key, ok := keyTok.(string)
		if !ok {
			return nil, nil, fmt.Errorf("storage: parse v2 snapshot: non-string key %v", keyTok)
		}
		switch key {
		case "format":
			err = dec.Decode(&hdr.Format)
		case "version":
			err = dec.Decode(&hdr.Version)
		case "sidecar":
			err = dec.Decode(&hdr.Sidecar)
		case "sidecarSum":
			err = dec.Decode(&hdr.SidecarSum)
		case "nextUserId":
			err = dec.Decode(&snap.NextUserID)
		case "nextPeId":
			err = dec.Decode(&snap.NextPEID)
		case "nextWorkflowId":
			err = dec.Decode(&snap.NextWorkflowID)
		case "users":
			err = decodeArray(func() error {
				var u core.UserRecord
				if derr := dec.Decode(&u); derr != nil {
					return derr
				}
				snap.Users = append(snap.Users, u)
				return nil
			})
		case "pes":
			err = decodeArray(func() error {
				var pe core.PERecord
				if derr := dec.Decode(&pe); derr != nil {
					return derr
				}
				snap.PEs = append(snap.PEs, pe)
				return nil
			})
		case "workflows":
			err = decodeArray(func() error {
				var wf core.WorkflowRecord
				if derr := dec.Decode(&wf); derr != nil {
					return derr
				}
				snap.Workflows = append(snap.Workflows, wf)
				return nil
			})
		case "passwordHashes":
			err = dec.Decode(&snap.PasswordHashes)
		case "userPes":
			err = dec.Decode(&snap.UserPEs)
		case "userWorkflows":
			err = dec.Decode(&snap.UserWorkflows)
		case "workflowPes":
			err = dec.Decode(&snap.WorkflowPEs)
		default:
			// Unknown field from a newer minor revision: skip its value.
			var skip json.RawMessage
			err = dec.Decode(&skip)
		}
		if err != nil {
			return nil, nil, fmt.Errorf("storage: parse v2 snapshot field %q: %w", key, err)
		}
	}
	if err := expectDelim(dec, '}'); err != nil {
		return nil, nil, err
	}
	if hdr.Version != 2 {
		return nil, nil, fmt.Errorf("storage: v2 snapshot claims version %d", hdr.Version)
	}
	if hdr.Sidecar == "" {
		return nil, nil, fmt.Errorf("storage: v2 snapshot names no sidecar")
	}
	return snap, hdr, nil
}

// loadV2 reads the JSON half record-by-record, then attaches the sidecar's
// vectors and index snapshots. Vector sections are load-bearing data and
// fail the load on corruption; index sections are derivable and degrade to
// a rebuild instead.
func loadV2(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("storage: read snapshot: %w", err)
	}
	snap, hdr, err := func() (*Snapshot, *v2Header, error) {
		defer f.Close()
		return decodeV2JSON(f)
	}()
	if err != nil {
		return nil, err
	}

	vf, sections, err := openSidecar(filepath.Join(filepath.Dir(path), hdr.Sidecar))
	if err != nil {
		return nil, err
	}
	defer vf.Close()
	if got := combinedSum(sections); got != hdr.SidecarSum {
		return nil, fmt.Errorf("storage: sidecar %s does not pair with %s (checksum %s, JSON expects %s)",
			hdr.Sidecar, filepath.Base(path), got, hdr.SidecarSum)
	}
	byName := map[string]sidecarSection{}
	for _, sec := range sections {
		byName[sec.name] = sec
	}
	readVecs := func(name string) (map[int][]float32, error) {
		sec, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("storage: sidecar is missing section %s", name)
		}
		var out map[int][]float32
		err := readSection(vf, sec, func(r io.Reader) error {
			var derr error
			out, derr = decodeVecSection(r)
			return derr
		})
		return out, err
	}
	if snap.PEDescVecs, err = readVecs(secPEDesc); err != nil {
		return nil, err
	}
	if snap.PECodeVecs, err = readVecs(secPECode); err != nil {
		return nil, err
	}
	if snap.WorkflowDescVecs, err = readVecs(secWFDesc); err != nil {
		return nil, err
	}
	readIdx := func(name string) *index.Snapshot {
		sec, ok := byName[name]
		if !ok {
			return nil
		}
		var out *index.Snapshot
		if err := readSection(vf, sec, func(r io.Reader) error {
			var derr error
			out, derr = index.DecodeSnapshotBinary(r)
			return derr
		}); err != nil {
			return nil // derivable: the serving layer rebuilds
		}
		return out
	}
	// The q8 companion sections are doubly derivable: skipped when absent
	// (pre-quantization sidecar, or quantization off) and dropped when
	// corrupt — the index rebuilds the companion from the float vectors it
	// restores either way.
	readQuant := func(name string, into *index.Snapshot) {
		if into == nil {
			return
		}
		sec, ok := byName[name]
		if !ok {
			return
		}
		var out *index.QuantizedSnapshot
		if err := readSection(vf, sec, func(r io.Reader) error {
			var derr error
			out, derr = index.DecodeQuantizedBinary(r)
			return derr
		}); err != nil {
			return // derivable: the index re-quantizes on restore
		}
		into.Quantized = out
	}
	idx := &IndexSnapshots{
		Desc:     readIdx(secIdxDesc),
		Code:     readIdx(secIdxCode),
		Workflow: readIdx(secIdxWF),
	}
	readQuant(secQ8Desc, idx.Desc)
	readQuant(secQ8Code, idx.Code)
	readQuant(secQ8WF, idx.Workflow)
	if idx.Desc != nil || idx.Code != nil || idx.Workflow != nil {
		snap.Indexes = idx
	}
	// The lexical sections follow the index-section contract: absent
	// (pre-lexical sidecar) or corrupt sections degrade to nil, and the
	// serving layer re-tokenizes the records instead of failing the load.
	readLex := func(name string) *lexical.Snapshot {
		sec, ok := byName[name]
		if !ok {
			return nil
		}
		var out *lexical.Snapshot
		if err := readSection(vf, sec, func(r io.Reader) error {
			var derr error
			out, derr = lexical.DecodeSnapshot(r)
			return derr
		}); err != nil {
			return nil // derivable: the serving layer rebuilds
		}
		return out
	}
	lex := &LexicalSnapshots{
		PE:       readLex(secLexPE),
		Workflow: readLex(secLexWF),
	}
	if lex.PE != nil || lex.Workflow != nil {
		snap.Lexical = lex
	}
	return snap, nil
}

// readV2Header parses just the fixed header fields of a v2 file — enough
// for DiskSize and tooling, without touching the record arrays.
func readV2Header(path string) (*v2Header, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	dec := json.NewDecoder(bufio.NewReader(f))
	if err := expectDelim(dec, '{'); err != nil {
		return nil, err
	}
	hdr := &v2Header{}
	for dec.More() {
		keyTok, err := dec.Token()
		if err != nil {
			return nil, err
		}
		key, _ := keyTok.(string)
		switch key {
		case "format":
			err = dec.Decode(&hdr.Format)
		case "version":
			err = dec.Decode(&hdr.Version)
		case "sidecar":
			err = dec.Decode(&hdr.Sidecar)
		case "sidecarSum":
			err = dec.Decode(&hdr.SidecarSum)
		default:
			// Header fields are written first; the first non-header key means
			// we have everything.
			if hdr.Sidecar != "" {
				return hdr, nil
			}
			var skip json.RawMessage
			err = dec.Decode(&skip)
		}
		if err != nil {
			return nil, err
		}
	}
	return hdr, nil
}
