package storage

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestFormatNames(t *testing.T) {
	if FormatV1.String() != "v1" || FormatV2.String() != "v2" {
		t.Fatalf("format names wrong: %s / %s", FormatV1, FormatV2)
	}
	if got := Format(9).String(); got != "Format(9)" {
		t.Fatalf("unknown format string = %q", got)
	}
	for name, want := range map[string]Format{"": FormatV2, "v2": FormatV2, "v1": FormatV1} {
		got, err := ParseFormat(name)
		if err != nil || got != want {
			t.Fatalf("ParseFormat(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseFormat("v3"); err == nil {
		t.Fatal("ParseFormat accepted v3")
	}
}

func TestSaveUnknownFormat(t *testing.T) {
	err := Save(filepath.Join(t.TempDir(), "r.json"), Format(7), testSnapshot(t, 2))
	if err == nil || !strings.Contains(err.Error(), "unknown format") {
		t.Fatalf("err = %v", err)
	}
}

func TestPackedVecForms(t *testing.T) {
	orig := packedVec{1.5, -2.25, 0, 3e-9}
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back packedVec
	if err := json.Unmarshal(data, &back); err != nil || !reflect.DeepEqual(back, orig) {
		t.Fatalf("packed round trip: %v, %v", back, err)
	}
	// Legacy number-array form still loads.
	var legacy packedVec
	if err := json.Unmarshal([]byte("[1.5,-2.25,0]"), &legacy); err != nil || len(legacy) != 3 {
		t.Fatalf("legacy array: %v, %v", legacy, err)
	}
	// A plain quoted string takes the zero-copy fast path; a string with a
	// JSON escape falls back to the full unmarshal. Both must decode.
	var plain, escaped packedVec
	if err := json.Unmarshal([]byte(`"AAAAAA=="`), &plain); err != nil || len(plain) != 1 {
		t.Fatalf("plain base64: %v, %v", plain, err)
	}
	if err := json.Unmarshal([]byte(`"\u0041AAAAA=="`), &escaped); err != nil || len(escaped) != 1 {
		t.Fatalf("escaped base64: %v, %v", escaped, err)
	}
	for name, bad := range map[string]string{
		"bad base64":    `"!!!!"`,
		"short payload": `"QUFB"`, // 3 bytes, not a multiple of 4
		"bad array":     `[1,"x"]`,
		"bad string":    `{"x":1}`,
	} {
		var v packedVec
		if err := json.Unmarshal([]byte(bad), &v); err == nil {
			t.Fatalf("%s: unmarshal accepted %s", name, bad)
		}
	}
}

func TestDiskSizeFormats(t *testing.T) {
	dir := t.TempDir()
	if _, err := DiskSize(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("DiskSize of missing file succeeded")
	}

	v1 := filepath.Join(dir, "v1.json")
	if err := Save(v1, FormatV1, testSnapshot(t, 4)); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(v1)
	if err != nil {
		t.Fatal(err)
	}
	if size, err := DiskSize(v1); err != nil || size != fi.Size() {
		t.Fatalf("v1 DiskSize = %d, %v; want %d", size, err, fi.Size())
	}

	v2 := filepath.Join(dir, "v2.json")
	if err := Save(v2, FormatV2, testSnapshot(t, 4)); err != nil {
		t.Fatal(err)
	}
	bare, err := DiskSize(v2)
	if err != nil {
		t.Fatal(err)
	}
	jfi, err := os.Stat(v2)
	if err != nil {
		t.Fatal(err)
	}
	if bare <= jfi.Size() {
		t.Fatalf("v2 DiskSize %d does not include the sidecar (json alone is %d)", bare, jfi.Size())
	}

	// Journal segments count toward the footprint.
	chain, err := DeltaChainOf(v2)
	if err != nil {
		t.Fatal(err)
	}
	chain, err = SaveDelta(v2, chain, churnDelta(1))
	if err != nil {
		t.Fatal(err)
	}
	withDelta, err := DiskSize(v2)
	if err != nil {
		t.Fatal(err)
	}
	if withDelta != bare+chain.Bytes {
		t.Fatalf("DiskSize with journal = %d, want %d + %d", withDelta, bare, chain.Bytes)
	}
}

func TestLoadV1Corrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.json")
	if err := os.WriteFile(path, []byte("{ this is not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Load(path); err == nil {
		t.Fatal("corrupt v1 file loaded")
	}
}
