package storage

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"laminar/internal/core"
)

// The delta journal is the incremental half of v2 persistence: instead of
// rewriting the full snapshot pair on every save, a small change appends a
// small *segment* next to the base — `<base>.delta-000001`, -000002, … —
// holding only the records, ownership rows and embedding vectors that
// changed since the previous save. Each segment is a self-contained
// sectioned container in the sidecar's mold:
//
//	magic "LMDJ" | u32 version
//	section payloads, back to back:
//	  "meta"    JSON  {format, version, seq, base, parent}
//	  "records" JSON  upserts, removals, ownership rows, next-id counters
//	  "pe-desc" / "pe-code" / "wf-desc"  binary vec sections (upserts only)
//	footer: u32 count, then per-section {name, offset, length, fnv1a64}
//	trailer: u64 footerOffset | magic "LMDE"
//
// Chain integrity is a hash chain over the combined section checksums:
// segment 1's meta names the base snapshot's pairing sum (the sidecarSum
// echoed in the v2 JSON header), and every later segment names its
// predecessor's combined sum. A loader therefore proves, before applying
// anything, that the segments it found belong to exactly this base and
// form an unbroken prefix — segments from a pre-compaction base (stale
// leftovers of a crash between install and sweep) fail the base check and
// are ignored, and a truncated or corrupt *tail* segment degrades to
// lossless recovery of the prefix before it. A damaged segment *followed*
// by a provably-chained later segment is unrecoverable data loss and fails
// the load loudly; silently skipping the hole would load wrong data.
//
// Install ordering is the same story as the base pair: a segment is
// written to a temp name, fsynced, and renamed to its sequence name, so a
// crash mid-write leaves nothing visible. A full save supersedes the whole
// journal and sweeps it (saveV2 removes every segment after the JSON
// rename commits).
const (
	deltaMagic        = "LMDJ"
	deltaTrailerMagic = "LMDE"
	deltaVersion      = 1
	deltaFormatName   = "laminar/delta"

	secDeltaMeta    = "meta"
	secDeltaRecords = "records"
)

// Delta is one journal segment's logical content: everything that changed
// between two saves. Upserted records carry their embeddings detached in
// the vec maps (exactly like Snapshot); an upserted record with no vec-map
// entry has no embedding of that kind, which is how an embedding removal
// travels. Ownership rows are full replacements for the touched owner,
// never diffs — a row's absence means "unchanged", not "empty".
type Delta struct {
	Users            []core.UserRecord
	PasswordHashes   map[int]string
	PEs              []core.PERecord
	Workflows        []core.WorkflowRecord
	RemovedPEs       []int
	RemovedWorkflows []int
	UserPEs          map[int][]int
	UserWorkflows    map[int][]int
	WorkflowPEs      map[int][]int
	NextUserID       int
	NextPEID         int
	NextWorkflowID   int

	PEDescVecs       map[int][]float32
	PECodeVecs       map[int][]float32
	WorkflowDescVecs map[int][]float32
}

// Empty reports whether the delta carries no changes at all (the next-id
// counters alone don't warrant a segment — they only ever advance alongside
// a record change).
func (d *Delta) Empty() bool {
	return len(d.Users) == 0 && len(d.PEs) == 0 && len(d.Workflows) == 0 &&
		len(d.RemovedPEs) == 0 && len(d.RemovedWorkflows) == 0 &&
		len(d.UserPEs) == 0 && len(d.UserWorkflows) == 0 && len(d.WorkflowPEs) == 0
}

// deltaMeta is the chain-link header section.
type deltaMeta struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
	Seq     uint64 `json:"seq"`
	Base    string `json:"base"`
	Parent  string `json:"parent"`
}

// deltaRecords is the JSON wire shape of the records section.
type deltaRecords struct {
	Users            []core.UserRecord     `json:"users,omitempty"`
	PasswordHashes   map[int]string        `json:"passwordHashes,omitempty"`
	PEs              []core.PERecord       `json:"pes,omitempty"`
	Workflows        []core.WorkflowRecord `json:"workflows,omitempty"`
	RemovedPEs       []int                 `json:"removedPes,omitempty"`
	RemovedWorkflows []int                 `json:"removedWorkflows,omitempty"`
	UserPEs          map[int][]int         `json:"userPes,omitempty"`
	UserWorkflows    map[int][]int         `json:"userWorkflows,omitempty"`
	WorkflowPEs      map[int][]int         `json:"workflowPes,omitempty"`
	NextUserID       int                   `json:"nextUserId"`
	NextPEID         int                   `json:"nextPeId"`
	NextWorkflowID   int                   `json:"nextWorkflowId"`
}

// DeltaChain is the loader/saver bookkeeping for a journal: the identity of
// the base snapshot, the last installed segment and the journal's on-disk
// footprint. The zero value means "no delta-capable base" (v1 file, or no
// save yet) — SaveDelta refuses it and the owner falls back to a full save.
type DeltaChain struct {
	// BaseSum is the pairing fingerprint of the base v2 snapshot (its
	// sidecarSum); "" when the base cannot anchor a journal.
	BaseSum string
	// Seq is the sequence number of the last installed segment (0 = none).
	Seq uint64
	// LastSum is the combined section checksum of the last installed
	// segment; the next segment's parent link.
	LastSum string
	// Bytes is the total size of the installed segments.
	Bytes int64
}

// tip is the checksum the next segment must name as its parent.
func (c DeltaChain) tip() string {
	if c.Seq == 0 {
		return c.BaseSum
	}
	return c.LastSum
}

// deltaSegmentName names segment seq of the journal for base
// ("registry.json" → "registry.json.delta-000001"). Fixed-width sequence
// numbers keep lexical order equal to numeric order for the first million
// segments; compaction thresholds keep real journals orders of magnitude
// shorter.
func deltaSegmentName(base string, seq uint64) string {
	return fmt.Sprintf("%s.delta-%06d", base, seq)
}

// parseDeltaSeq extracts the sequence number from a segment file name, or
// 0 when name is not a well-formed segment name for base.
func parseDeltaSeq(name, base string) uint64 {
	rest, ok := strings.CutPrefix(name, base+".delta-")
	if !ok || len(rest) < 6 {
		return 0
	}
	var seq uint64
	for _, c := range rest {
		if c < '0' || c > '9' {
			return 0
		}
		seq = seq*10 + uint64(c-'0')
	}
	return seq
}

// BaseIdentity reports the pairing fingerprint of the snapshot at path that
// a delta journal chains to: the v2 sidecarSum, or "" for a v1 file (which
// cannot anchor a journal).
func BaseIdentity(path string) (string, error) {
	format, err := DetectFormat(path)
	if err != nil {
		return "", err
	}
	if format != FormatV2 {
		return "", nil
	}
	hdr, err := readV2Header(path)
	if err != nil {
		return "", err
	}
	return hdr.SidecarSum, nil
}

// SaveDelta installs the next journal segment for the base snapshot at
// path, returning the advanced chain. The caller owns chain continuity
// (the registry tracks it across saves and loads) and must serialize calls
// the same way it serializes full saves.
func SaveDelta(path string, chain DeltaChain, d *Delta) (DeltaChain, error) {
	if chain.BaseSum == "" {
		return chain, fmt.Errorf("storage: no delta-capable base snapshot to chain to (save a full v2 snapshot first)")
	}
	seq := chain.Seq + 1
	meta := deltaMeta{
		Format:  deltaFormatName,
		Version: deltaVersion,
		Seq:     seq,
		Base:    chain.BaseSum,
		Parent:  chain.tip(),
	}
	dir, base := filepath.Dir(path), filepath.Base(path)
	segPath := filepath.Join(dir, deltaSegmentName(base, seq))
	sum, size, err := writeDeltaSegment(segPath, meta, d)
	if err != nil {
		return chain, err
	}
	return DeltaChain{BaseSum: chain.BaseSum, Seq: seq, LastSum: sum, Bytes: chain.Bytes + size}, nil
}

// writeDeltaSegment writes one segment atomically (temp + fsync + rename —
// the rename is the install point, so a crash mid-write leaves nothing
// visible under a sequence name) and returns its combined section checksum
// and size.
func writeDeltaSegment(path string, meta deltaMeta, d *Delta) (sum string, size int64, err error) {
	var sections []sidecarSection
	err = writeFileAtomic(path, func(f *os.File) error {
		cw := &countingWriter{w: bufio.NewWriterSize(f, 1<<16)}
		if _, err := cw.Write([]byte(deltaMagic)); err != nil {
			return err
		}
		if err := writeU32(cw, deltaVersion); err != nil {
			return err
		}
		writeSec := func(name string, body func(io.Writer) error) error {
			start := cw.off
			cw.beginSection()
			if err := body(cw); err != nil {
				return fmt.Errorf("storage: write delta section %s: %w", name, err)
			}
			sections = append(sections, cw.endSection(name, start))
			return nil
		}
		if err := writeSec(secDeltaMeta, func(w io.Writer) error {
			return json.NewEncoder(w).Encode(&meta)
		}); err != nil {
			return err
		}
		if err := writeSec(secDeltaRecords, func(w io.Writer) error {
			return json.NewEncoder(w).Encode(&deltaRecords{
				Users:            d.Users,
				PasswordHashes:   d.PasswordHashes,
				PEs:              d.PEs,
				Workflows:        d.Workflows,
				RemovedPEs:       d.RemovedPEs,
				RemovedWorkflows: d.RemovedWorkflows,
				UserPEs:          d.UserPEs,
				UserWorkflows:    d.UserWorkflows,
				WorkflowPEs:      d.WorkflowPEs,
				NextUserID:       d.NextUserID,
				NextPEID:         d.NextPEID,
				NextWorkflowID:   d.NextWorkflowID,
			})
		}); err != nil {
			return err
		}
		for _, vs := range []struct {
			name string
			vecs map[int][]float32
		}{
			{secPEDesc, d.PEDescVecs},
			{secPECode, d.PECodeVecs},
			{secWFDesc, d.WorkflowDescVecs},
		} {
			vecs := vs.vecs
			if err := writeSec(vs.name, func(w io.Writer) error { return encodeVecSection(w, vecs) }); err != nil {
				return err
			}
		}
		footerOff := cw.off
		if err := writeU32(cw, uint32(len(sections))); err != nil {
			return err
		}
		for _, sec := range sections {
			if err := writeSecHeader(cw, sec); err != nil {
				return err
			}
		}
		if err := writeU64(cw, footerOff); err != nil {
			return err
		}
		if _, err := cw.Write([]byte(deltaTrailerMagic)); err != nil {
			return err
		}
		size = int64(cw.off)
		return cw.w.Flush()
	})
	if err != nil {
		return "", 0, err
	}
	return combinedSum(sections), size, nil
}

// DecodeDelta validates and decodes one journal segment from raw bytes: the
// magic/version head, the footer-indexed section table, every per-section
// checksum, and the meta and payload sections themselves. It returns the
// delta, its chain-link meta and the segment's combined checksum. This is
// the whole trust boundary for journal bytes — the crash-torture tests and
// the FuzzDecodeDelta target drive arbitrary inputs through it, and the
// contract is an error, never a panic and never silently wrong data.
func DecodeDelta(data []byte) (*Delta, DeltaMeta, string, error) {
	r := bytes.NewReader(data)
	sections, err := readSectionTable(r, int64(len(data)), deltaMagic, deltaTrailerMagic, deltaVersion, "delta segment")
	if err != nil {
		return nil, DeltaMeta{}, "", err
	}
	byName := map[string]sidecarSection{}
	for _, sec := range sections {
		byName[sec.name] = sec
	}
	readJSON := func(name string, into any) error {
		sec, ok := byName[name]
		if !ok {
			return fmt.Errorf("storage: delta segment is missing section %s", name)
		}
		return readSection(r, sec, func(sr io.Reader) error {
			dec := json.NewDecoder(sr)
			if err := dec.Decode(into); err != nil {
				return err
			}
			// Trailing garbage after the JSON document inside a checksummed
			// section cannot happen from our writer; reject it rather than
			// ignore bytes that were deliberately placed there.
			if dec.More() {
				return fmt.Errorf("trailing data after JSON document")
			}
			return nil
		})
	}
	var meta deltaMeta
	if err := readJSON(secDeltaMeta, &meta); err != nil {
		return nil, DeltaMeta{}, "", err
	}
	if meta.Format != deltaFormatName || meta.Version != deltaVersion {
		return nil, DeltaMeta{}, "", fmt.Errorf("storage: delta segment claims format %q version %d", meta.Format, meta.Version)
	}
	if meta.Seq == 0 || meta.Base == "" || meta.Parent == "" {
		return nil, DeltaMeta{}, "", fmt.Errorf("storage: delta segment meta incomplete (seq %d)", meta.Seq)
	}
	var recs deltaRecords
	if err := readJSON(secDeltaRecords, &recs); err != nil {
		return nil, DeltaMeta{}, "", err
	}
	d := &Delta{
		Users:            recs.Users,
		PasswordHashes:   recs.PasswordHashes,
		PEs:              recs.PEs,
		Workflows:        recs.Workflows,
		RemovedPEs:       recs.RemovedPEs,
		RemovedWorkflows: recs.RemovedWorkflows,
		UserPEs:          recs.UserPEs,
		UserWorkflows:    recs.UserWorkflows,
		WorkflowPEs:      recs.WorkflowPEs,
		NextUserID:       recs.NextUserID,
		NextPEID:         recs.NextPEID,
		NextWorkflowID:   recs.NextWorkflowID,
	}
	readVecs := func(name string) (map[int][]float32, error) {
		sec, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("storage: delta segment is missing section %s", name)
		}
		var out map[int][]float32
		err := readSection(r, sec, func(sr io.Reader) error {
			var derr error
			out, derr = decodeVecSection(sr)
			return derr
		})
		return out, err
	}
	if d.PEDescVecs, err = readVecs(secPEDesc); err != nil {
		return nil, DeltaMeta{}, "", err
	}
	if d.PECodeVecs, err = readVecs(secPECode); err != nil {
		return nil, DeltaMeta{}, "", err
	}
	if d.WorkflowDescVecs, err = readVecs(secWFDesc); err != nil {
		return nil, DeltaMeta{}, "", err
	}
	return d, DeltaMeta{Seq: meta.Seq, Base: meta.Base, Parent: meta.Parent}, combinedSum(sections), nil
}

// DeltaMeta is a decoded segment's chain link, exported for tooling and
// tests.
type DeltaMeta struct {
	Seq    uint64
	Base   string
	Parent string
}

// readDeltaSegment decodes the segment file at path.
func readDeltaSegment(path string) (d *Delta, meta DeltaMeta, sum string, size int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, DeltaMeta{}, "", 0, err
	}
	d, meta, sum, err = DecodeDelta(data)
	return d, meta, sum, int64(len(data)), err
}

// LoadWithDeltas loads the snapshot at path together with its valid delta
// chain. The returned deltas are the longest prefix of segments that
// provably chain to this exact base, in order; the caller applies them on
// top of the base snapshot. Recovery semantics:
//
//   - a missing, truncated, corrupt or foreign-base segment at the *tail*
//     ends the chain — the prefix before it loads losslessly (a crash mid
//     append loses at most the never-installed segment);
//   - the same damage *mid-chain* — a later segment provably belongs to
//     this base — is unrecoverable loss and fails the load, because
//     applying segments across the hole would silently load wrong data.
func LoadWithDeltas(path string) (*Snapshot, []*Delta, DeltaChain, Format, error) {
	snap, format, err := Load(path)
	if err != nil {
		return nil, nil, DeltaChain{}, 0, err
	}
	if format != FormatV2 {
		return snap, nil, DeltaChain{}, format, nil
	}
	baseSum, err := BaseIdentity(path)
	if err != nil {
		return nil, nil, DeltaChain{}, 0, err
	}
	chain := DeltaChain{BaseSum: baseSum}
	dir, base := filepath.Dir(path), filepath.Base(path)
	var deltas []*Delta
	for seq := uint64(1); ; seq++ {
		segPath := filepath.Join(dir, deltaSegmentName(base, seq))
		d, meta, sum, size, derr := readDeltaSegment(segPath)
		if derr == nil && meta.Base != baseSum {
			derr = fmt.Errorf("storage: delta segment %d chains to base %s, not %s (stale journal)", seq, meta.Base, baseSum)
		}
		if derr == nil && (meta.Seq != seq || meta.Parent != chain.tip()) {
			derr = fmt.Errorf("storage: delta segment %d does not chain (seq %d, parent %s)", seq, meta.Seq, meta.Parent)
		}
		if derr != nil {
			if later := laterChainSegment(dir, base, seq, baseSum); later != 0 {
				return nil, nil, DeltaChain{}, 0, fmt.Errorf("storage: delta journal damaged at segment %d but segment %d still chains to this base — refusing to load around the hole: %v", seq, later, derr)
			}
			// Tail damage (or simply the end of the journal): the prefix is
			// the last consistent state. Quantifying what was dropped is the
			// caller's journal-sweep job; loading it is ours.
			break
		}
		deltas = append(deltas, d)
		chain.Seq, chain.LastSum, chain.Bytes = seq, sum, chain.Bytes+size
	}
	return snap, deltas, chain, format, nil
}

// laterChainSegment reports the lowest segment sequence above seq that
// decodes cleanly and names baseSum as its base — proof that the journal
// did not end at seq. Undecodable later files prove nothing (they may be
// unrelated garbage) and stale-base files are exactly the leftovers a
// compaction sweep missed.
func laterChainSegment(dir, base string, seq uint64, baseSum string) uint64 {
	matches, err := filepath.Glob(filepath.Join(dir, base+".delta-*"))
	if err != nil {
		return 0
	}
	seqs := make([]uint64, 0, len(matches))
	for _, m := range matches {
		if s := parseDeltaSeq(filepath.Base(m), base); s > seq {
			seqs = append(seqs, s)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, s := range seqs {
		_, meta, _, _, err := readDeltaSegment(filepath.Join(dir, deltaSegmentName(base, s)))
		if err == nil && meta.Base == baseSum {
			return s
		}
	}
	return 0
}

// cleanDeltaSegments removes every journal segment for base in dir. A full
// save calls it after its JSON rename commits: the new base subsumes the
// journal, and any segment left behind would be a stale-base leftover the
// loader has to ignore anyway.
func cleanDeltaSegments(dir, base string) {
	matches, err := filepath.Glob(filepath.Join(dir, base+".delta-*"))
	if err != nil {
		return
	}
	for _, m := range matches {
		if parseDeltaSeq(filepath.Base(m), base) != 0 {
			os.Remove(m)
		}
	}
}

// DeltaChainOf scans the journal for the base at path without loading the
// base records — the chain state a store needs to *continue* a journal it
// did not just write (benchmarks and tooling; the registry gets the same
// state from LoadWithDeltas).
func DeltaChainOf(path string) (DeltaChain, error) {
	baseSum, err := BaseIdentity(path)
	if err != nil {
		return DeltaChain{}, err
	}
	chain := DeltaChain{BaseSum: baseSum}
	if baseSum == "" {
		return chain, nil
	}
	dir, base := filepath.Dir(path), filepath.Base(path)
	for seq := uint64(1); ; seq++ {
		_, meta, sum, size, derr := readDeltaSegment(filepath.Join(dir, deltaSegmentName(base, seq)))
		if derr != nil || meta.Base != baseSum || meta.Seq != seq || meta.Parent != chain.tip() {
			break
		}
		chain.Seq, chain.LastSum, chain.Bytes = seq, sum, chain.Bytes+size
	}
	return chain, nil
}
