package storage

import (
	"encoding/json"
	"fmt"
	"os"

	"laminar/internal/core"
)

// v1Document is the legacy single-file JSON layout, byte-compatible with
// every registry file written before the layered storage refactor: records
// inline, embeddings packed as base64 float32 in id-keyed maps (or, in the
// oldest files, inline number arrays on the records themselves), index
// snapshots embedded as JSON under "indexes".
type v1Document struct {
	Users          []core.UserRecord     `json:"users"`
	PasswordHashes map[int]string        `json:"passwordHashes"`
	PEs            []core.PERecord       `json:"pes"`
	Workflows      []core.WorkflowRecord `json:"workflows"`
	UserPEs        map[int][]int         `json:"userPes"`
	UserWorkflows  map[int][]int         `json:"userWorkflows"`
	WorkflowPEs    map[int][]int         `json:"workflowPes"`
	NextUserID     int                   `json:"nextUserId"`
	NextPEID       int                   `json:"nextPeId"`
	NextWorkflowID int                   `json:"nextWorkflowId"`

	PEDescVecs       map[int]packedVec `json:"peDescVecs,omitempty"`
	PECodeVecs       map[int]packedVec `json:"peCodeVecs,omitempty"`
	WorkflowDescVecs map[int]packedVec `json:"workflowDescVecs,omitempty"`

	Indexes *IndexSnapshots `json:"indexes,omitempty"`
}

// saveV1 writes the legacy monolithic document. Unlike v2 this necessarily
// materializes the whole registry as one indented JSON byte slice — that is
// the format; it exists so migration tests and the v1-vs-v2 benchmark rows
// have a faithful baseline to measure.
func saveV1(path string, snap *Snapshot) error {
	doc := v1Document{
		Users:            snap.Users,
		PasswordHashes:   snap.PasswordHashes,
		PEs:              snap.PEs,
		Workflows:        snap.Workflows,
		UserPEs:          snap.UserPEs,
		UserWorkflows:    snap.UserWorkflows,
		WorkflowPEs:      snap.WorkflowPEs,
		NextUserID:       snap.NextUserID,
		NextPEID:         snap.NextPEID,
		NextWorkflowID:   snap.NextWorkflowID,
		PEDescVecs:       map[int]packedVec{},
		PECodeVecs:       map[int]packedVec{},
		WorkflowDescVecs: map[int]packedVec{},
		Indexes:          snap.Indexes,
	}
	for id, v := range snap.PEDescVecs {
		doc.PEDescVecs[id] = packedVec(v)
	}
	for id, v := range snap.PECodeVecs {
		doc.PECodeVecs[id] = packedVec(v)
	}
	for id, v := range snap.WorkflowDescVecs {
		doc.WorkflowDescVecs[id] = packedVec(v)
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return fmt.Errorf("storage: marshal v1 snapshot: %w", err)
	}
	return writeFileAtomic(path, func(f *os.File) error {
		_, werr := f.Write(data)
		return werr
	})
}

// loadV1 reads a legacy file, normalizing the two historic embedding
// placements (packed maps, inline arrays) into the snapshot's vector maps.
func loadV1(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("storage: read snapshot: %w", err)
	}
	var doc v1Document
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("storage: parse v1 snapshot: %w", err)
	}
	snap := &Snapshot{
		Users:            doc.Users,
		PasswordHashes:   doc.PasswordHashes,
		PEs:              doc.PEs,
		Workflows:        doc.Workflows,
		UserPEs:          doc.UserPEs,
		UserWorkflows:    doc.UserWorkflows,
		WorkflowPEs:      doc.WorkflowPEs,
		NextUserID:       doc.NextUserID,
		NextPEID:         doc.NextPEID,
		NextWorkflowID:   doc.NextWorkflowID,
		PEDescVecs:       map[int][]float32{},
		PECodeVecs:       map[int][]float32{},
		WorkflowDescVecs: map[int][]float32{},
		Indexes:          doc.Indexes,
	}
	for id, v := range doc.PEDescVecs {
		snap.PEDescVecs[id] = v
	}
	for id, v := range doc.PECodeVecs {
		snap.PECodeVecs[id] = v
	}
	for id, v := range doc.WorkflowDescVecs {
		snap.WorkflowDescVecs[id] = v
	}
	// Oldest files carry embeddings inline on the records; detach them so
	// the serving layer sees one shape regardless of file vintage. Packed
	// maps win when both are somehow present (they are what newer writers
	// maintained).
	for i := range snap.PEs {
		pe := &snap.PEs[i]
		if len(pe.DescEmbedding) > 0 {
			if _, ok := snap.PEDescVecs[pe.PEID]; !ok {
				snap.PEDescVecs[pe.PEID] = pe.DescEmbedding
			}
			pe.DescEmbedding = nil
		}
		if len(pe.CodeEmbedding) > 0 {
			if _, ok := snap.PECodeVecs[pe.PEID]; !ok {
				snap.PECodeVecs[pe.PEID] = pe.CodeEmbedding
			}
			pe.CodeEmbedding = nil
		}
	}
	for i := range snap.Workflows {
		wf := &snap.Workflows[i]
		if len(wf.DescEmbedding) > 0 {
			if _, ok := snap.WorkflowDescVecs[wf.WorkflowID]; !ok {
				snap.WorkflowDescVecs[wf.WorkflowID] = wf.DescEmbedding
			}
			wf.DescEmbedding = nil
		}
	}
	return snap, nil
}
