package storage

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// pristineSegment writes one valid journal segment and returns its bytes.
func pristineSegment(t *testing.T) []byte {
	t.Helper()
	p := filepath.Join(t.TempDir(), "seg")
	meta := deltaMeta{Format: deltaFormatName, Version: deltaVersion, Seq: 1, Base: "b", Parent: "p"}
	if _, _, err := writeDeltaSegment(p, meta, churnDelta(1)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestSectionTableValidation drives every structural check in
// readSectionTable through DecodeDelta by surgically damaging the parts of
// a valid segment that no checksum covers: the head, the trailer and the
// footer itself.
func TestSectionTableValidation(t *testing.T) {
	pristine := pristineSegment(t)
	footerOff := binary.LittleEndian.Uint64(pristine[len(pristine)-12 : len(pristine)-4])

	mutate := func(fn func(b []byte)) []byte {
		b := append([]byte(nil), pristine...)
		fn(b)
		return b
	}
	for name, tc := range map[string]struct {
		data []byte
		want string
	}{
		"head too short": {pristine[:6], "too short"},
		"wrong magic": {mutate(func(b []byte) {
			copy(b, "XXXX")
		}), "not a delta segment"},
		"version mismatch": {mutate(func(b []byte) {
			binary.LittleEndian.PutUint32(b[4:], 99)
		}), "version 99"},
		"no room for trailer": {pristine[:10], "truncated"},
		"trailer magic damaged": {mutate(func(b []byte) {
			copy(b[len(b)-4:], "XXXX")
		}), "trailer damaged"},
		"footer offset out of range": {mutate(func(b []byte) {
			binary.LittleEndian.PutUint64(b[len(b)-12:], uint64(len(b))*2)
		}), "footer offset out of range"},
		"absurd section count": {mutate(func(b []byte) {
			binary.LittleEndian.PutUint32(b[footerOff:], 65)
		}), "claims 65 sections"},
		"section overruns footer": {mutate(func(b []byte) {
			// First section header: u16 name len, name, then
			// offset/length/sum u64s. Blow up the length.
			nameLen := binary.LittleEndian.Uint16(b[footerOff+4:])
			numsOff := footerOff + 4 + 2 + uint64(nameLen)
			binary.LittleEndian.PutUint64(b[numsOff+8:], uint64(len(b))*4)
		}), "overruns footer"},
		"truncated footer": {mutate(func(b []byte) {
			// Point the trailer just before its own offset: the section
			// table read runs out of bytes mid-header.
			binary.LittleEndian.PutUint64(b[len(b)-12:], uint64(len(b))-14)
		}), ""},
	} {
		_, _, _, err := DecodeDelta(tc.data)
		if err == nil {
			t.Fatalf("%s: decode accepted damaged segment", name)
		}
		if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: err = %v, want %q", name, err, tc.want)
		}
	}
}

// TestSectionChecksumMismatch flips a payload byte without touching the
// footer: the per-section checksum must catch it.
func TestSectionChecksumMismatch(t *testing.T) {
	pristine := pristineSegment(t)
	b := append([]byte(nil), pristine...)
	b[10] ^= 0x01 // inside the meta section payload
	_, _, _, err := DecodeDelta(b)
	if err == nil || !strings.Contains(err.Error(), "checksum mismatch") {
		t.Fatalf("err = %v, want checksum mismatch", err)
	}
}

func TestVecSectionCodec(t *testing.T) {
	vecs := map[int][]float32{1: {0.5, -1}, 42: {}, -7: {3}}
	var buf bytes.Buffer
	if err := encodeVecSection(&buf, vecs); err != nil {
		t.Fatal(err)
	}
	got, err := decodeVecSection(bytes.NewReader(buf.Bytes()))
	if err != nil || !reflect.DeepEqual(got, vecs) {
		t.Fatalf("round trip: %v, %v", got, err)
	}

	// Validation: absurd counts and dims are rejected before allocation,
	// truncation is an error.
	huge := make([]byte, 8)
	binary.LittleEndian.PutUint64(huge, 1<<41)
	if _, err := decodeVecSection(bytes.NewReader(huge)); err == nil {
		t.Fatal("accepted absurd entry count")
	}
	var bad bytes.Buffer
	binary.LittleEndian.PutUint64(huge, 1)
	bad.Write(huge)
	var rec [12]byte
	binary.LittleEndian.PutUint32(rec[8:], 1<<21)
	bad.Write(rec[:])
	if _, err := decodeVecSection(bytes.NewReader(bad.Bytes())); err == nil {
		t.Fatal("accepted absurd dim")
	}
	if _, err := decodeVecSection(bytes.NewReader(buf.Bytes()[:9])); err == nil {
		t.Fatal("accepted truncated section")
	}
	if _, err := decodeVecSection(bytes.NewReader(nil)); err == nil {
		t.Fatal("accepted empty section")
	}
}

func TestIsSidecarName(t *testing.T) {
	base := "registry.json"
	for name, want := range map[string]bool{
		"registry.json-0123456789abcdef.vec": true,
		"registry.json-0123456789ABCDEF.vec": false, // uppercase hex
		"registry.json-0123456789abcde.vec":  false, // 15 chars
		"registry.json-0123456789abcdef.bak": false,
		"other.json-0123456789abcdef.vec":    false,
		"registry.json-0123456789abcdeg.vec": false, // non-hex
	} {
		if got := isSidecarName(name, base); got != want {
			t.Fatalf("isSidecarName(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestReadV2Header(t *testing.T) {
	dir := t.TempDir()
	write := func(content string) string {
		p := filepath.Join(dir, "h.json")
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	if _, err := readV2Header(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("read header of missing file")
	}
	if _, err := readV2Header(write("[1,2]")); err == nil {
		t.Fatal("accepted non-object document")
	}
	if _, err := readV2Header(write(`{"format":`)); err == nil {
		t.Fatal("accepted truncated header")
	}
	// Header fields then a record key: parse stops at the first non-header
	// key once the sidecar name is known.
	hdr, err := readV2Header(write(`{"format":"laminar/registry","version":2,"sidecar":"s.vec","sidecarSum":"ab","users":[]}`))
	if err != nil || hdr.Sidecar != "s.vec" || hdr.SidecarSum != "ab" {
		t.Fatalf("header = %+v, %v", hdr, err)
	}
	// An unknown key before the sidecar field is skipped, not fatal.
	hdr, err = readV2Header(write(`{"comment":{"x":1},"format":"laminar/registry","version":2,"sidecar":"t.vec","sidecarSum":"cd"}`))
	if err != nil || hdr.Sidecar != "t.vec" {
		t.Fatalf("header with leading unknown key = %+v, %v", hdr, err)
	}
}
