package storage

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"laminar/internal/core"
)

// TestLoadV1InlineEmbeddings exercises the oldest file vintage: embeddings
// inline on the records, no packed maps. The loader must detach them into
// the vector maps; where a packed map entry exists too, the packed form
// wins.
func TestLoadV1InlineEmbeddings(t *testing.T) {
	doc := `{
  "users": [{"userId": 1, "userName": "ann"}],
  "passwordHashes": {"1": "h"},
  "pes": [
    {"peId": 1, "peName": "a", "descEmbedding": [1, 2], "codeEmbedding": [3, 4]},
    {"peId": 2, "peName": "b", "descEmbedding": [9, 9]}
  ],
  "workflows": [{"workflowId": 1, "workflowName": "w", "descEmbedding": [5, 6]}],
  "userPes": {"1": [1, 2]},
  "userWorkflows": {"1": [1]},
  "workflowPes": {"1": [1]},
  "nextUserId": 2, "nextPeId": 3, "nextWorkflowId": 2,
  "peDescVecs": {"2": [7, 8]}
}`
	path := filepath.Join(t.TempDir(), "old.json")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	snap, format, err := Load(path)
	if err != nil || format != FormatV1 {
		t.Fatalf("load = format %v, err %v", format, err)
	}
	if !reflect.DeepEqual(snap.PEDescVecs[1], []float32{1, 2}) {
		t.Fatalf("pe 1 desc vec not detached: %v", snap.PEDescVecs[1])
	}
	if !reflect.DeepEqual(snap.PECodeVecs[1], []float32{3, 4}) {
		t.Fatalf("pe 1 code vec not detached: %v", snap.PECodeVecs[1])
	}
	if !reflect.DeepEqual(snap.PEDescVecs[2], []float32{7, 8}) {
		t.Fatalf("packed map did not win over inline: %v", snap.PEDescVecs[2])
	}
	if !reflect.DeepEqual(snap.WorkflowDescVecs[1], []float32{5, 6}) {
		t.Fatalf("workflow vec not detached: %v", snap.WorkflowDescVecs[1])
	}
}

// TestSaveDetachesInlineWorkflowEmbeddings drives the normalized() detach
// path via the workflow-only trigger: no PE carries an inline embedding but
// a workflow does, and the caller's snapshot must not be mutated.
func TestSaveDetachesInlineWorkflowEmbeddings(t *testing.T) {
	snap := &Snapshot{
		Workflows: []core.WorkflowRecord{{
			WorkflowID: 1, WorkflowName: "w", DescEmbedding: []float32{1, 2, 3},
		}},
		UserWorkflows: map[int][]int{},
		WorkflowPEs:   map[int][]int{1: {}},
		NextUserID:    1, NextPEID: 1, NextWorkflowID: 2,
	}
	path := filepath.Join(t.TempDir(), "r.json")
	if err := Save(path, FormatV2, snap); err != nil {
		t.Fatal(err)
	}
	if snap.Workflows[0].DescEmbedding == nil {
		t.Fatal("save mutated the caller's snapshot")
	}
	loaded, _, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(loaded.WorkflowDescVecs[1], []float32{1, 2, 3}) {
		t.Fatalf("workflow embedding lost: %v", loaded.WorkflowDescVecs)
	}
	if loaded.Workflows[0].DescEmbedding != nil {
		t.Fatal("loaded record still carries an inline embedding")
	}
}
