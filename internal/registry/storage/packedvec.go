package storage

import (
	"bytes"
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
)

// packedVec is the v1 persistence encoding for embedding vectors: base64
// over little-endian float32 bits. A JSON number array costs ~12 bytes and
// a float parse per component; packed is 5.3 bytes and a bit-copy.
// Unmarshal also accepts the historic number-array form, so registry files
// written before packing still load. (v2 does better still — raw binary in
// the sidecar, 4 bytes per component and no base64 round trip — which is
// why this type is now v1-only.)
type packedVec []float32

// MarshalJSON encodes the vector as a base64 string of float32 bits.
func (p packedVec) MarshalJSON() ([]byte, error) {
	buf := make([]byte, 4*len(p))
	for i, x := range p {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(x))
	}
	return json.Marshal(base64.StdEncoding.EncodeToString(buf))
}

// UnmarshalJSON decodes either the packed base64 form or a legacy JSON
// number array.
func (p *packedVec) UnmarshalJSON(data []byte) error {
	if len(data) > 0 && data[0] == '[' {
		var f []float32
		if err := json.Unmarshal(data, &f); err != nil {
			return err
		}
		*p = f
		return nil
	}
	// Base64 contains no characters that need JSON escaping, so when the
	// literal is a plain quoted string the bytes between the quotes ARE the
	// encoded payload — skip the per-vector json.Unmarshal round trip,
	// which is measurable across millions of stored floats.
	var s string
	if n := len(data); n >= 2 && data[0] == '"' && data[n-1] == '"' && !bytes.ContainsRune(data[1:n-1], '\\') {
		s = string(data[1 : n-1])
	} else if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	raw, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return fmt.Errorf("storage: packed vector: %w", err)
	}
	if len(raw)%4 != 0 {
		return fmt.Errorf("storage: packed vector length %d is not a multiple of 4", len(raw))
	}
	out := make([]float32, len(raw)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	*p = out
	return nil
}
