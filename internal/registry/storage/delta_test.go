package storage

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"laminar/internal/core"
)

// writeBase saves a v2 base snapshot and returns its path and the fresh
// (segment-less) chain anchored to it.
func writeBase(t *testing.T, dir string) (string, DeltaChain) {
	t.Helper()
	path := filepath.Join(dir, "registry.json")
	if err := Save(path, FormatV2, testSnapshot(t, 8)); err != nil {
		t.Fatalf("save base: %v", err)
	}
	chain, err := DeltaChainOf(path)
	if err != nil {
		t.Fatalf("chain of base: %v", err)
	}
	if chain.BaseSum == "" || chain.Seq != 0 {
		t.Fatalf("fresh base chain looks wrong: %+v", chain)
	}
	return path, chain
}

// churnDelta builds a distinguishable delta for segment seq: one PE upsert
// with both embeddings, one removal, a replaced ownership row and advanced
// counters.
func churnDelta(seq int) *Delta {
	id := 100 + seq
	return &Delta{
		PEs: []core.PERecord{{
			PEID: id, PEName: fmt.Sprintf("delta-pe-%03d", seq),
			Description: "from delta", PECode: fmt.Sprintf("code-v%d", seq),
			CreatedAt: time.Date(2026, 2, 1, 0, 0, seq, 0, time.UTC),
		}},
		RemovedPEs:     []int{seq},
		UserPEs:        map[int][]int{1: {id}},
		NextUserID:     3,
		NextPEID:       id + 1,
		NextWorkflowID: 5,
		PEDescVecs:     map[int][]float32{id: {float32(seq), 0.5, -1}},
		PECodeVecs:     map[int][]float32{id: {0, float32(seq), 2}},
	}
}

// appendSegments installs n chained segments and returns the deltas written
// plus the advanced chain.
func appendSegments(t *testing.T, path string, chain DeltaChain, n int) ([]*Delta, DeltaChain) {
	t.Helper()
	var written []*Delta
	for i := 1; i <= n; i++ {
		d := churnDelta(i)
		var err error
		chain, err = SaveDelta(path, chain, d)
		if err != nil {
			t.Fatalf("save delta %d: %v", i, err)
		}
		written = append(written, d)
	}
	return written, chain
}

func segPath(path string, seq uint64) string {
	return filepath.Join(filepath.Dir(path), deltaSegmentName(filepath.Base(path), seq))
}

// assertDeltaEqual compares a decoded delta against the one written.
// Decoded vec maps come back non-nil-but-empty where the writer had nil,
// so vec maps are compared by content.
func assertDeltaEqual(t *testing.T, got, want *Delta, seq int) {
	t.Helper()
	if !reflect.DeepEqual(got.PEs, want.PEs) || !reflect.DeepEqual(got.RemovedPEs, want.RemovedPEs) {
		t.Fatalf("segment %d records diverged:\n got %+v\nwant %+v", seq, got, want)
	}
	if !reflect.DeepEqual(got.UserPEs, want.UserPEs) {
		t.Fatalf("segment %d ownership diverged: got %v want %v", seq, got.UserPEs, want.UserPEs)
	}
	if got.NextUserID != want.NextUserID || got.NextPEID != want.NextPEID || got.NextWorkflowID != want.NextWorkflowID {
		t.Fatalf("segment %d counters diverged", seq)
	}
	for name, pair := range map[string][2]map[int][]float32{
		"peDesc": {got.PEDescVecs, want.PEDescVecs},
		"peCode": {got.PECodeVecs, want.PECodeVecs},
	} {
		if len(pair[0]) != len(pair[1]) {
			t.Fatalf("segment %d %s vec count diverged: %d vs %d", seq, name, len(pair[0]), len(pair[1]))
		}
		for id, v := range pair[1] {
			if !reflect.DeepEqual(pair[0][id], v) {
				t.Fatalf("segment %d %s vec %d diverged", seq, name, id)
			}
		}
	}
}

func TestDeltaChainRoundTrip(t *testing.T) {
	path, chain := writeBase(t, t.TempDir())
	written, saved := appendSegments(t, path, chain, 3)

	snap, deltas, loaded, format, err := LoadWithDeltas(path)
	if err != nil {
		t.Fatalf("load with deltas: %v", err)
	}
	if format != FormatV2 {
		t.Fatalf("format = %v, want v2", format)
	}
	if snap == nil || len(snap.PEs) != 8 {
		t.Fatalf("base snapshot wrong: %+v", snap)
	}
	if len(deltas) != 3 {
		t.Fatalf("got %d deltas, want 3", len(deltas))
	}
	for i, d := range deltas {
		assertDeltaEqual(t, d, written[i], i+1)
	}
	if loaded != saved {
		t.Fatalf("reloaded chain %+v != saved chain %+v", loaded, saved)
	}
	rescanned, err := DeltaChainOf(path)
	if err != nil || rescanned != saved {
		t.Fatalf("DeltaChainOf = %+v, %v; want %+v", rescanned, err, saved)
	}
}

func TestSaveDeltaRefusesMissingBase(t *testing.T) {
	_, err := SaveDelta(filepath.Join(t.TempDir(), "registry.json"), DeltaChain{}, churnDelta(1))
	if err == nil || !strings.Contains(err.Error(), "no delta-capable base") {
		t.Fatalf("err = %v, want no-base refusal", err)
	}
}

func TestV1CannotAnchorJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "registry.json")
	if err := Save(path, FormatV1, testSnapshot(t, 4)); err != nil {
		t.Fatalf("save v1: %v", err)
	}
	sum, err := BaseIdentity(path)
	if err != nil || sum != "" {
		t.Fatalf("BaseIdentity(v1) = %q, %v; want empty", sum, err)
	}
	chain, err := DeltaChainOf(path)
	if err != nil || chain != (DeltaChain{}) {
		t.Fatalf("DeltaChainOf(v1) = %+v, %v; want zero chain", chain, err)
	}
	if _, err := SaveDelta(path, chain, churnDelta(1)); err == nil {
		t.Fatal("SaveDelta chained to a v1 base")
	}
	snap, deltas, _, format, err := LoadWithDeltas(path)
	if err != nil || format != FormatV1 || len(deltas) != 0 || snap == nil {
		t.Fatalf("LoadWithDeltas(v1) = %v deltas, format %v, err %v", len(deltas), format, err)
	}
}

// TestDeltaTailDamageRecoversPrefix truncates and byte-flips the *last*
// segment at fuzzed offsets: every flavor of tail damage must degrade to a
// lossless load of the two segments before it.
func TestDeltaTailDamageRecoversPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 12; trial++ {
		dir := t.TempDir()
		path, chain := writeBase(t, dir)
		written, _ := appendSegments(t, path, chain, 3)
		tail := segPath(path, 3)
		data, err := os.ReadFile(tail)
		if err != nil {
			t.Fatal(err)
		}
		switch trial % 3 {
		case 0: // truncate at a random offset (including zero bytes)
			cut := rng.Intn(len(data))
			if err := os.WriteFile(tail, data[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
		case 1: // flip a random byte in place
			off := rng.Intn(len(data))
			data[off] ^= 0xff
			if err := os.WriteFile(tail, data, 0o644); err != nil {
				t.Fatal(err)
			}
		case 2: // the never-installed segment: gone entirely
			if err := os.Remove(tail); err != nil {
				t.Fatal(err)
			}
		}
		_, deltas, loaded, _, err := LoadWithDeltas(path)
		if err != nil {
			t.Fatalf("trial %d: tail damage must not fail the load: %v", trial, err)
		}
		if len(deltas) != 2 {
			t.Fatalf("trial %d: got %d deltas, want prefix of 2", trial, len(deltas))
		}
		for i, d := range deltas {
			assertDeltaEqual(t, d, written[i], i+1)
		}
		if loaded.Seq != 2 {
			t.Fatalf("trial %d: chain seq = %d, want 2", trial, loaded.Seq)
		}
	}
}

// TestDeltaMidChainDamageFailsLoudly damages segment 2 of 3 in every
// flavor. Segment 3 provably chains to this base, so the loader must
// refuse rather than apply segments across the hole.
func TestDeltaMidChainDamageFailsLoudly(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 9; trial++ {
		dir := t.TempDir()
		path, chain := writeBase(t, dir)
		appendSegments(t, path, chain, 3)
		mid := segPath(path, 2)
		data, err := os.ReadFile(mid)
		if err != nil {
			t.Fatal(err)
		}
		switch trial % 3 {
		case 0:
			if err := os.WriteFile(mid, data[:rng.Intn(len(data))], 0o644); err != nil {
				t.Fatal(err)
			}
		case 1:
			data[rng.Intn(len(data))] ^= 0xff
			if err := os.WriteFile(mid, data, 0o644); err != nil {
				t.Fatal(err)
			}
		case 2:
			if err := os.Remove(mid); err != nil {
				t.Fatal(err)
			}
		}
		_, _, _, _, err = LoadWithDeltas(path)
		if err == nil || !strings.Contains(err.Error(), "refusing to load around the hole") {
			t.Fatalf("trial %d: err = %v, want refusal to load around the hole", trial, err)
		}
	}
}

// TestDeltaStaleJournalIgnored reproduces a crash between a compacting full
// save's rename and its segment sweep: segments chained to the *old* base
// linger next to the new one. They must be ignored, not applied and not
// fatal.
func TestDeltaStaleJournalIgnored(t *testing.T) {
	dir := t.TempDir()
	path, chain := writeBase(t, dir)
	appendSegments(t, path, chain, 2)

	// Stash the segments, full-save a *different* snapshot (new sidecarSum),
	// then put the stale segments back as the crash would have left them.
	stashed := map[string][]byte{}
	for seq := uint64(1); seq <= 2; seq++ {
		data, err := os.ReadFile(segPath(path, seq))
		if err != nil {
			t.Fatal(err)
		}
		stashed[segPath(path, seq)] = data
	}
	if err := Save(path, FormatV2, testSnapshot(t, 6)); err != nil {
		t.Fatalf("compacting save: %v", err)
	}
	if matches, _ := filepath.Glob(path + ".delta-*"); len(matches) != 0 {
		t.Fatalf("full save left segments behind: %v", matches)
	}
	for p, data := range stashed {
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	snap, deltas, loaded, _, err := LoadWithDeltas(path)
	if err != nil {
		t.Fatalf("stale journal must not fail the load: %v", err)
	}
	if len(deltas) != 0 {
		t.Fatalf("stale segments were applied: %d deltas", len(deltas))
	}
	if len(snap.PEs) != 6 {
		t.Fatalf("loaded wrong base: %d PEs", len(snap.PEs))
	}
	if loaded.Seq != 0 || loaded.BaseSum == chain.BaseSum {
		t.Fatalf("chain did not re-anchor: %+v", loaded)
	}
}

// TestDeltaForeignTailGarbage plants undecodable garbage at the next
// sequence name. Garbage proves nothing about the journal continuing, so
// the valid prefix loads.
func TestDeltaForeignTailGarbage(t *testing.T) {
	path, chain := writeBase(t, t.TempDir())
	appendSegments(t, path, chain, 2)
	if err := os.WriteFile(segPath(path, 3), []byte("not a segment"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, deltas, _, _, err := LoadWithDeltas(path)
	if err != nil || len(deltas) != 2 {
		t.Fatalf("got %d deltas, err %v; want 2, nil", len(deltas), err)
	}
}

func TestDeltaSegmentNameParsing(t *testing.T) {
	base := "registry.json"
	if got := deltaSegmentName(base, 7); got != "registry.json.delta-000007" {
		t.Fatalf("segment name = %q", got)
	}
	for name, want := range map[string]uint64{
		"registry.json.delta-000001":  1,
		"registry.json.delta-123456":  123456,
		"registry.json.delta-1000000": 1000000,
		"registry.json.delta-00001":   0, // too short
		"registry.json.delta-0000xy":  0,
		"registry.json.vec-abcdef":    0,
		"other.json.delta-000001":     0,
		"registry.json":               0,
	} {
		if got := parseDeltaSeq(name, base); got != want {
			t.Fatalf("parseDeltaSeq(%q) = %d, want %d", name, got, want)
		}
	}
}

func TestDeltaEmpty(t *testing.T) {
	if !(&Delta{NextUserID: 9, NextPEID: 9, NextWorkflowID: 9}).Empty() {
		t.Fatal("counter-only delta should be empty")
	}
	if (&Delta{RemovedPEs: []int{1}}).Empty() {
		t.Fatal("removal-carrying delta should not be empty")
	}
	if (&Delta{UserPEs: map[int][]int{1: {}}}).Empty() {
		t.Fatal("ownership-row delta should not be empty")
	}
}

// TestDecodeDeltaRejectsMalformed drives the decoder's validation paths
// that the file-level torture tests cannot reach deterministically.
func TestDecodeDeltaRejectsMalformed(t *testing.T) {
	dir := t.TempDir()
	segs := 0
	valid := func(meta deltaMeta) []byte {
		t.Helper()
		segs++
		p := filepath.Join(dir, fmt.Sprintf("seg-%03d", segs))
		if _, _, err := writeDeltaSegment(p, meta, churnDelta(1)); err != nil {
			t.Fatalf("write segment: %v", err)
		}
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	goodMeta := deltaMeta{Format: deltaFormatName, Version: deltaVersion, Seq: 1, Base: "b", Parent: "p"}
	if _, meta, sum, err := DecodeDelta(valid(goodMeta)); err != nil || meta.Seq != 1 || sum == "" {
		t.Fatalf("valid segment rejected: %+v, %q, %v", meta, sum, err)
	}
	for name, data := range map[string][]byte{
		"empty":        nil,
		"short":        []byte("LM"),
		"wrong magic":  []byte("XXXX garbage that is long enough to have a trailer maybe"),
		"format claim": valid(deltaMeta{Format: "laminar/other", Version: deltaVersion, Seq: 1, Base: "b", Parent: "p"}),
		"zero seq":     valid(deltaMeta{Format: deltaFormatName, Version: deltaVersion, Seq: 0, Base: "b", Parent: "p"}),
		"no base":      valid(deltaMeta{Format: deltaFormatName, Version: deltaVersion, Seq: 2, Base: "", Parent: "p"}),
		"no parent":    valid(deltaMeta{Format: deltaFormatName, Version: deltaVersion, Seq: 3, Base: "b", Parent: ""}),
	} {
		if _, _, _, err := DecodeDelta(data); err == nil {
			t.Fatalf("%s: decode accepted malformed segment", name)
		}
	}
}

// TestDeltaOutOfOrderSegmentEndsChain renames segment 2 to sequence 3: the
// loader sees a gap at 2 and a segment at 3 whose meta says 2 — it chains
// to this base, so the load must refuse.
func TestDeltaSeqMismatchRefuses(t *testing.T) {
	path, chain := writeBase(t, t.TempDir())
	appendSegments(t, path, chain, 2)
	if err := os.Rename(segPath(path, 2), segPath(path, 3)); err != nil {
		t.Fatal(err)
	}
	_, _, _, _, err := LoadWithDeltas(path)
	if err == nil || !strings.Contains(err.Error(), "refusing to load around the hole") {
		t.Fatalf("err = %v, want refusal", err)
	}
}

// FuzzDecodeDelta is the trust-boundary fuzz target: arbitrary bytes must
// produce an error or a structurally valid delta — never a panic. Seeds
// cover a pristine segment, every flavor of damage the torture tests use,
// and the checked-in corpus under testdata/fuzz.
func FuzzDecodeDelta(f *testing.F) {
	dir := f.TempDir()
	p := filepath.Join(dir, "seed-segment")
	meta := deltaMeta{Format: deltaFormatName, Version: deltaVersion, Seq: 1, Base: "basesum", Parent: "basesum"}
	if _, _, err := writeDeltaSegment(p, meta, churnDelta(1)); err != nil {
		f.Fatalf("write seed segment: %v", err)
	}
	pristine, err := os.ReadFile(p)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(pristine)
	f.Add(pristine[:len(pristine)/2])
	f.Add(pristine[:4])
	flipped := append([]byte(nil), pristine...)
	flipped[len(flipped)/3] ^= 0x55
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte(deltaMagic))

	f.Fuzz(func(t *testing.T, data []byte) {
		d, meta, sum, err := DecodeDelta(data)
		if err != nil {
			if d != nil {
				t.Fatal("decode returned both a delta and an error")
			}
			return
		}
		if d == nil || sum == "" {
			t.Fatal("successful decode returned no delta or no checksum")
		}
		if meta.Seq == 0 || meta.Base == "" || meta.Parent == "" {
			t.Fatalf("successful decode with incomplete meta: %+v", meta)
		}
	})
}
