// Package storage is the registry's persistence layer: it owns the on-disk
// snapshot formats and nothing else. The serving layer (internal/registry)
// hands it a logical Snapshot — plain records, relation tables, embedding
// maps and index snapshots — and gets one back on load; locking, index
// maintenance and every business rule stay out of this package.
//
// Two formats are supported:
//
//   - v1 (legacy): one monolithic JSON document, embeddings packed as
//     base64 float32, index snapshots embedded as JSON. Every registry file
//     written before the layered storage refactor is a v1 file. v1 loads
//     forever; writing it is kept only for migration tests and benchmarks.
//   - v2 (current): record metadata is *streamed* as JSON — encoded and
//     decoded record by record, never materializing the registry as one
//     giant in-memory document — while embeddings and index snapshots live
//     in a binary little-endian float32 sidecar file with per-section
//     FNV-1a checksums. The sidecar is content-named and installed before
//     the JSON, so the pair is crash-consistent (see docs/storage.md).
//
// Load auto-detects the format; Save writes whichever format it is asked
// for, which is also the entire migration story: load a v1 file, save, and
// the registry is a v2 pair on disk.
package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"laminar/internal/core"
	"laminar/internal/index"
	"laminar/internal/lexical"
)

// Format identifies an on-disk snapshot format.
type Format int

// The supported formats.
const (
	// FormatV1 is the legacy monolithic JSON document.
	FormatV1 Format = 1
	// FormatV2 is the streamed JSON + binary sidecar pair (current).
	FormatV2 Format = 2
)

// String names the format ("v1", "v2").
func (f Format) String() string {
	switch f {
	case FormatV1:
		return "v1"
	case FormatV2:
		return "v2"
	default:
		return fmt.Sprintf("Format(%d)", int(f))
	}
}

// ParseFormat resolves a format name; the empty string selects the current
// default (v2).
func ParseFormat(name string) (Format, error) {
	switch name {
	case "", "v2":
		return FormatV2, nil
	case "v1":
		return FormatV1, nil
	default:
		return 0, fmt.Errorf("storage: unknown format %q (want v1 or v2)", name)
	}
}

// IndexSnapshots groups the per-embedding-kind vector-index snapshots.
type IndexSnapshots struct {
	Desc     *index.Snapshot `json:"desc,omitempty"`
	Code     *index.Snapshot `json:"code,omitempty"`
	Workflow *index.Snapshot `json:"workflow,omitempty"`
}

// LexicalSnapshots groups the BM25 inverted-index snapshots (PE documents
// and workflow documents). Like the vector-index snapshots they are
// derivable state: v2 persists them as optional sidecar sections, v1 does
// not persist them at all, and a missing or stale snapshot means the
// serving layer re-tokenizes the records — never a load failure.
type LexicalSnapshots struct {
	PE       *lexical.Snapshot
	Workflow *lexical.Snapshot
}

// Snapshot is the logical registry state exchanged with the serving layer.
// Records never carry embeddings here — vectors travel in the id-keyed
// maps, which is what lets v2 route them to the binary sidecar. Save
// normalizes a snapshot whose records still hold embeddings inline, so
// callers may be naive about it.
type Snapshot struct {
	Users          []core.UserRecord
	PasswordHashes map[int]string
	PEs            []core.PERecord
	Workflows      []core.WorkflowRecord
	UserPEs        map[int][]int
	UserWorkflows  map[int][]int
	WorkflowPEs    map[int][]int
	NextUserID     int
	NextPEID       int
	NextWorkflowID int

	// Embedding vectors by record id; only records with a non-empty
	// embedding appear.
	PEDescVecs       map[int][]float32
	PECodeVecs       map[int][]float32
	WorkflowDescVecs map[int][]float32

	// Indexes carries the serialized vector-index structure (centroids +
	// assignments, not vectors); nil when no usable snapshot exists, in
	// which case the serving layer rebuilds.
	Indexes *IndexSnapshots

	// Lexical carries the BM25 inverted-index statistics; nil when no
	// usable snapshot exists (v1 files, pre-lexical v2 sidecars), in which
	// case the serving layer re-tokenizes the records.
	Lexical *LexicalSnapshots
}

// Save writes the snapshot to path in the requested format, atomically: a
// crash mid-write never damages the previous good snapshot. Concurrent
// Saves to the *same* path must be serialized by the caller (the registry
// store does): the v2 post-install sidecar sweep assumes no other install
// is in flight for that path.
func Save(path string, format Format, snap *Snapshot) error {
	snap = snap.normalized()
	switch format {
	case FormatV1:
		return saveV1(path, snap)
	case FormatV2:
		return saveV2(path, snap)
	default:
		return fmt.Errorf("storage: unknown format %d", int(format))
	}
}

// Load reads a snapshot from path, auto-detecting the format, and reports
// which format the file was in. The returned snapshot always has
// embeddings detached into the vector maps regardless of source format.
func Load(path string) (*Snapshot, Format, error) {
	format, err := DetectFormat(path)
	if err != nil {
		return nil, 0, err
	}
	switch format {
	case FormatV2:
		snap, err := loadV2(path)
		return snap, FormatV2, err
	default:
		snap, err := loadV1(path)
		return snap, FormatV1, err
	}
}

// DetectFormat sniffs the on-disk format of path without loading it. v2
// files start with the exact byte prefix the v2 writer emits; everything
// else that exists is treated as v1 (whose own parser reports corruption).
func DetectFormat(path string) (Format, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("storage: read snapshot: %w", err)
	}
	defer f.Close()
	prefix := make([]byte, len(v2Prefix))
	n, _ := f.Read(prefix)
	if string(prefix[:n]) == v2Prefix {
		return FormatV2, nil
	}
	return FormatV1, nil
}

// DiskSize reports the total on-disk footprint of the snapshot at path —
// the file itself plus, for v2, its sidecar.
func DiskSize(path string) (int64, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	total := fi.Size()
	format, err := DetectFormat(path)
	if err != nil {
		return 0, err
	}
	if format == FormatV2 {
		hdr, err := readV2Header(path)
		if err != nil {
			return 0, err
		}
		sfi, err := os.Stat(filepath.Join(filepath.Dir(path), hdr.Sidecar))
		if err != nil {
			return 0, err
		}
		total += sfi.Size()
		// Journal segments are part of the snapshot's footprint: a reload
		// reads base + segments, and the churn benchmarks compare exactly
		// that against a monolithic full save.
		dir, base := filepath.Dir(path), filepath.Base(path)
		if matches, err := filepath.Glob(filepath.Join(dir, base+".delta-*")); err == nil {
			for _, m := range matches {
				if parseDeltaSeq(filepath.Base(m), base) == 0 {
					continue
				}
				if fi, err := os.Stat(m); err == nil {
					total += fi.Size()
				}
			}
		}
	}
	return total, nil
}

// normalized returns a copy of the snapshot with record-inline embeddings
// detached into the vector maps and records sorted by id, without mutating
// the caller's snapshot. The record slices are always copied (sorting must
// not reorder the caller's); the vector maps are copy-on-write — the
// registry's collectSnapshot already hands over fully-detached maps, and
// re-copying three 10k-entry maps on every periodic save would be pure
// allocation overhead, so they are only cloned when a naive caller left
// embeddings inline. Vector slices themselves are shared, never copied —
// they are immutable by convention across the registry.
func (s *Snapshot) normalized() *Snapshot {
	out := *s
	out.Users = append([]core.UserRecord(nil), s.Users...)
	out.PEs = append([]core.PERecord(nil), s.PEs...)
	out.Workflows = append([]core.WorkflowRecord(nil), s.Workflows...)
	needsDetach := false
	for i := range out.PEs {
		if len(out.PEs[i].DescEmbedding) > 0 || len(out.PEs[i].CodeEmbedding) > 0 {
			needsDetach = true
			break
		}
	}
	if !needsDetach {
		for i := range out.Workflows {
			if len(out.Workflows[i].DescEmbedding) > 0 {
				needsDetach = true
				break
			}
		}
	}
	if needsDetach {
		out.PEDescVecs = copyVecMap(s.PEDescVecs)
		out.PECodeVecs = copyVecMap(s.PECodeVecs)
		out.WorkflowDescVecs = copyVecMap(s.WorkflowDescVecs)
		for i := range out.PEs {
			pe := &out.PEs[i]
			if len(pe.DescEmbedding) > 0 {
				out.PEDescVecs[pe.PEID] = pe.DescEmbedding
				pe.DescEmbedding = nil
			}
			if len(pe.CodeEmbedding) > 0 {
				out.PECodeVecs[pe.PEID] = pe.CodeEmbedding
				pe.CodeEmbedding = nil
			}
		}
		for i := range out.Workflows {
			wf := &out.Workflows[i]
			if len(wf.DescEmbedding) > 0 {
				out.WorkflowDescVecs[wf.WorkflowID] = wf.DescEmbedding
				wf.DescEmbedding = nil
			}
		}
	}
	if out.PEDescVecs == nil {
		out.PEDescVecs = map[int][]float32{}
	}
	if out.PECodeVecs == nil {
		out.PECodeVecs = map[int][]float32{}
	}
	if out.WorkflowDescVecs == nil {
		out.WorkflowDescVecs = map[int][]float32{}
	}
	sort.Slice(out.Users, func(i, j int) bool { return out.Users[i].UserID < out.Users[j].UserID })
	sort.Slice(out.PEs, func(i, j int) bool { return out.PEs[i].PEID < out.PEs[j].PEID })
	sort.Slice(out.Workflows, func(i, j int) bool { return out.Workflows[i].WorkflowID < out.Workflows[j].WorkflowID })
	return &out
}

func copyVecMap(m map[int][]float32) map[int][]float32 {
	out := make(map[int][]float32, len(m))
	for id, v := range m {
		out[id] = v
	}
	return out
}

// writeFileAtomic writes data-producing fn to a temp file in path's
// directory, fsyncs, and renames over path. The fsync-before-rename matters:
// some filesystems commit the rename ahead of the data blocks, and a power
// loss would otherwise install an empty file.
func writeFileAtomic(path string, fn func(f *os.File) error) error {
	dir, base := filepath.Split(path)
	f, err := os.CreateTemp(dir, "."+base+".tmp-*")
	if err != nil {
		return fmt.Errorf("storage: write snapshot: %w", err)
	}
	tmp := f.Name()
	err = fn(f)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: write snapshot: %w", err)
	}
	return nil
}
