package storage

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"laminar/internal/core"
	"laminar/internal/index"
)

// testSnapshot builds a snapshot with n PEs, n/2 workflows, 2 users, full
// relation tables and trained clustered index snapshots.
func testSnapshot(t *testing.T, n int) *Snapshot {
	t.Helper()
	now := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	snap := &Snapshot{
		PasswordHashes:   map[int]string{1: "hash-one", 2: "hash-two"},
		UserPEs:          map[int][]int{1: {}, 2: {}},
		UserWorkflows:    map[int][]int{1: {}, 2: {}},
		WorkflowPEs:      map[int][]int{},
		NextUserID:       3,
		NextPEID:         n + 1,
		NextWorkflowID:   n/2 + 1,
		PEDescVecs:       map[int][]float32{},
		PECodeVecs:       map[int][]float32{},
		WorkflowDescVecs: map[int][]float32{},
	}
	snap.Users = []core.UserRecord{
		{UserID: 1, UserName: "ann", PasswordHash: "hash-one", CreatedAt: now},
		{UserID: 2, UserName: "bob", PasswordHash: "hash-two", CreatedAt: now},
	}
	descIdx := index.NewClustered(index.ClusteredConfig{Centroids: 4, NProbe: 2})
	codeIdx := index.NewClustered(index.ClusteredConfig{Centroids: 4, NProbe: 2})
	wfIdx := index.NewFlat()
	for i := 1; i <= n; i++ {
		v := []float32{float32(i) / float32(n), 1 - float32(i)/float32(n), 0.25}
		snap.PEs = append(snap.PEs, core.PERecord{
			PEID: i, PEName: fmt.Sprintf("PE%04d", i), Description: "desc",
			PECode: "code", PEImports: []string{"math"}, CreatedAt: now,
		})
		snap.PEDescVecs[i] = v
		snap.PECodeVecs[i] = v
		descIdx.Upsert(i, v)
		codeIdx.Upsert(i, v)
		owner := 1 + i%2
		snap.UserPEs[owner] = append(snap.UserPEs[owner], i)
	}
	for i := 1; i <= n/2; i++ {
		v := []float32{0.5, float32(i) / float32(n), 0}
		snap.Workflows = append(snap.Workflows, core.WorkflowRecord{
			WorkflowID: i, WorkflowName: fmt.Sprintf("wf%03d", i),
			EntryPoint: fmt.Sprintf("entry%03d", i), WorkflowCode: "wfcode", CreatedAt: now,
		})
		snap.WorkflowDescVecs[i] = v
		wfIdx.Upsert(i, v)
		snap.UserWorkflows[1] = append(snap.UserWorkflows[1], i)
		snap.WorkflowPEs[i] = []int{i, (i % n) + 1}
	}
	descIdx.WaitRetrain()
	codeIdx.WaitRetrain()
	snap.Indexes = &IndexSnapshots{
		Desc:     descIdx.Snapshot(),
		Code:     codeIdx.Snapshot(),
		Workflow: wfIdx.Snapshot(),
	}
	return snap
}

// assertSnapshotsEqual compares two snapshots field by field (records must
// already be id-sorted, which both Save paths guarantee).
func assertSnapshotsEqual(t *testing.T, got, want *Snapshot) {
	t.Helper()
	if !reflect.DeepEqual(got.Users, want.Users) {
		t.Fatalf("users diverged:\n got %+v\nwant %+v", got.Users, want.Users)
	}
	if !reflect.DeepEqual(got.PEs, want.PEs) {
		t.Fatalf("pes diverged (lens %d vs %d)", len(got.PEs), len(want.PEs))
	}
	if !reflect.DeepEqual(got.Workflows, want.Workflows) {
		t.Fatalf("workflows diverged")
	}
	if !reflect.DeepEqual(got.PasswordHashes, want.PasswordHashes) {
		t.Fatalf("password hashes diverged")
	}
	for name, pair := range map[string][2]map[int][]int{
		"userPes":       {got.UserPEs, want.UserPEs},
		"userWorkflows": {got.UserWorkflows, want.UserWorkflows},
		"workflowPes":   {got.WorkflowPEs, want.WorkflowPEs},
	} {
		if !reflect.DeepEqual(pair[0], pair[1]) {
			t.Fatalf("%s diverged:\n got %v\nwant %v", name, pair[0], pair[1])
		}
	}
	for name, pair := range map[string][2]map[int][]float32{
		"peDescVecs":       {got.PEDescVecs, want.PEDescVecs},
		"peCodeVecs":       {got.PECodeVecs, want.PECodeVecs},
		"workflowDescVecs": {got.WorkflowDescVecs, want.WorkflowDescVecs},
	} {
		if !reflect.DeepEqual(pair[0], pair[1]) {
			t.Fatalf("%s diverged", name)
		}
	}
	if got.NextUserID != want.NextUserID || got.NextPEID != want.NextPEID || got.NextWorkflowID != want.NextWorkflowID {
		t.Fatalf("counters diverged: %d/%d/%d vs %d/%d/%d",
			got.NextUserID, got.NextPEID, got.NextWorkflowID,
			want.NextUserID, want.NextPEID, want.NextWorkflowID)
	}
	if !reflect.DeepEqual(got.Indexes, want.Indexes) {
		t.Fatalf("index snapshots diverged:\n got %+v\nwant %+v", got.Indexes, want.Indexes)
	}
}

// strippedUsers mirrors what loads return: UserRecord.PasswordHash is a
// json:"-" field, so it round-trips via the PasswordHashes map, not the
// record.
func stripHashes(snap *Snapshot) *Snapshot {
	out := snap.normalized()
	for i := range out.Users {
		out.Users[i].PasswordHash = ""
	}
	return out
}

func TestV2RoundTrip(t *testing.T) {
	snap := testSnapshot(t, 100)
	path := filepath.Join(t.TempDir(), "registry.json")
	if err := Save(path, FormatV2, snap); err != nil {
		t.Fatal(err)
	}
	got, format, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if format != FormatV2 {
		t.Fatalf("detected format %v, want v2", format)
	}
	assertSnapshotsEqual(t, got, stripHashes(snap))
}

func TestV1RoundTrip(t *testing.T) {
	snap := testSnapshot(t, 60)
	path := filepath.Join(t.TempDir(), "registry.json")
	if err := Save(path, FormatV1, snap); err != nil {
		t.Fatal(err)
	}
	got, format, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if format != FormatV1 {
		t.Fatalf("detected format %v, want v1", format)
	}
	assertSnapshotsEqual(t, got, stripHashes(snap))
}

// TestV1ToV2Migration is the storage-level half of the migration story: a
// v1 file loads, saves as v2, and the v2 pair carries the identical
// snapshot — including the index structure, bit for bit.
func TestV1ToV2Migration(t *testing.T) {
	snap := testSnapshot(t, 80)
	dir := t.TempDir()
	v1Path := filepath.Join(dir, "registry.json")
	if err := Save(v1Path, FormatV1, snap); err != nil {
		t.Fatal(err)
	}
	loaded, format, err := Load(v1Path)
	if err != nil || format != FormatV1 {
		t.Fatalf("load v1: %v (format %v)", err, format)
	}
	v2Path := filepath.Join(dir, "registry2.json")
	if err := Save(v2Path, FormatV2, loaded); err != nil {
		t.Fatal(err)
	}
	migrated, format, err := Load(v2Path)
	if err != nil || format != FormatV2 {
		t.Fatalf("load migrated v2: %v (format %v)", err, format)
	}
	assertSnapshotsEqual(t, migrated, stripHashes(snap))
}

// TestV2SmallerThanV1: the binary sidecar must beat base64-in-JSON on disk.
func TestV2SmallerThanV1(t *testing.T) {
	snap := testSnapshot(t, 200)
	dir := t.TempDir()
	v1Path := filepath.Join(dir, "v1.json")
	v2Path := filepath.Join(dir, "v2.json")
	if err := Save(v1Path, FormatV1, snap); err != nil {
		t.Fatal(err)
	}
	if err := Save(v2Path, FormatV2, snap); err != nil {
		t.Fatal(err)
	}
	v1Size, err := DiskSize(v1Path)
	if err != nil {
		t.Fatal(err)
	}
	v2Size, err := DiskSize(v2Path)
	if err != nil {
		t.Fatal(err)
	}
	if v2Size >= v1Size {
		t.Fatalf("v2 on-disk total %d >= v1 %d", v2Size, v1Size)
	}
}

// TestV2CorruptVectorSectionFailsLoad: flipping one payload byte in a
// vector section must fail the load — embeddings are data, not derivable.
func TestV2CorruptVectorSectionFailsLoad(t *testing.T) {
	snap := testSnapshot(t, 70)
	dir := t.TempDir()
	path := filepath.Join(dir, "registry.json")
	if err := Save(path, FormatV2, snap); err != nil {
		t.Fatal(err)
	}
	hdr, err := readV2Header(path)
	if err != nil {
		t.Fatal(err)
	}
	vecPath := filepath.Join(dir, hdr.Sidecar)
	raw, err := os.ReadFile(vecPath)
	if err != nil {
		t.Fatal(err)
	}
	// The first vector section's payload starts right after the 8-byte
	// header; flip a byte well inside it.
	raw[64] ^= 0xff
	if err := os.WriteFile(vecPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Load(path); err == nil {
		t.Fatal("corrupt vector section loaded cleanly")
	} else if !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("unexpected error (want checksum failure): %v", err)
	}
}

// TestV2MismatchedSidecarFailsLoad: a JSON pointing at a sidecar from a
// different generation must be refused via the pairing checksum.
func TestV2MismatchedSidecarFailsLoad(t *testing.T) {
	dir := t.TempDir()
	pathA := filepath.Join(dir, "a.json")
	pathB := filepath.Join(dir, "b.json")
	if err := Save(pathA, FormatV2, testSnapshot(t, 70)); err != nil {
		t.Fatal(err)
	}
	if err := Save(pathB, FormatV2, testSnapshot(t, 71)); err != nil {
		t.Fatal(err)
	}
	hdrA, err := readV2Header(pathA)
	if err != nil {
		t.Fatal(err)
	}
	hdrB, err := readV2Header(pathB)
	if err != nil {
		t.Fatal(err)
	}
	// Graft B's sidecar under A's expected name.
	bVec, err := os.ReadFile(filepath.Join(dir, hdrB.Sidecar))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, hdrA.Sidecar), bVec, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Load(pathA); err == nil {
		t.Fatal("mismatched sidecar loaded cleanly")
	}
}

// TestV2CorruptIndexSectionDegradesToRebuild: index sections are derivable;
// corruption there must surface as "no index snapshot", not a failed load.
func TestV2CorruptIndexSectionDegradesToRebuild(t *testing.T) {
	snap := testSnapshot(t, 70)
	dir := t.TempDir()
	path := filepath.Join(dir, "registry.json")
	if err := Save(path, FormatV2, snap); err != nil {
		t.Fatal(err)
	}
	hdr, err := readV2Header(path)
	if err != nil {
		t.Fatal(err)
	}
	vecPath := filepath.Join(dir, hdr.Sidecar)
	f, sections, err := openSidecar(vecPath)
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	raw, err := os.ReadFile(vecPath)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := 0
	for _, sec := range sections {
		if strings.HasPrefix(sec.name, "idx-") {
			raw[sec.offset+sec.length/2] ^= 0xff
			corrupted++
		}
	}
	if corrupted == 0 {
		t.Fatal("no index sections present")
	}
	if err := os.WriteFile(vecPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	got, _, err := Load(path)
	if err != nil {
		t.Fatalf("corrupt index section failed the whole load: %v", err)
	}
	if got.Indexes != nil {
		t.Fatalf("corrupt index sections still surfaced: %+v", got.Indexes)
	}
	if len(got.PEs) != len(snap.PEs) {
		t.Fatalf("records lost: %d vs %d", len(got.PEs), len(snap.PEs))
	}
}

// TestSaveSweepsStaleSidecars: each successful save removes the previous
// generation's content-named sidecar.
func TestSaveSweepsStaleSidecars(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "registry.json")
	if err := Save(path, FormatV2, testSnapshot(t, 70)); err != nil {
		t.Fatal(err)
	}
	if err := Save(path, FormatV2, testSnapshot(t, 75)); err != nil {
		t.Fatal(err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "registry.json-*.vec"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 {
		t.Fatalf("expected exactly one live sidecar, found %v", matches)
	}
	if _, _, err := Load(path); err != nil {
		t.Fatalf("load after sweep: %v", err)
	}
}

// TestLoadMissingFile keeps the fs.ErrNotExist contract the façade's
// fresh-start path depends on.
func TestLoadMissingFile(t *testing.T) {
	_, _, err := Load(filepath.Join(t.TempDir(), "absent.json"))
	if err == nil {
		t.Fatal("loading a missing file succeeded")
	}
	if !os.IsNotExist(errUnwrapAll(err)) {
		t.Fatalf("error does not unwrap to fs.ErrNotExist: %v", err)
	}
}

func errUnwrapAll(err error) error {
	for {
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return err
		}
		err = u.Unwrap()
	}
}

// TestNormalizedDetachesInlineEmbeddings: a naive snapshot with embeddings
// still inline on records must persist identically to a pre-stripped one.
func TestNormalizedDetachesInlineEmbeddings(t *testing.T) {
	inline := &Snapshot{
		Users:          []core.UserRecord{{UserID: 1, UserName: "ann"}},
		PasswordHashes: map[int]string{1: "h"},
		PEs: []core.PERecord{{
			PEID: 1, PEName: "X", PECode: "c",
			DescEmbedding: []float32{1, 0}, CodeEmbedding: []float32{0, 1},
		}},
		UserPEs:       map[int][]int{1: {1}},
		UserWorkflows: map[int][]int{1: {}},
		WorkflowPEs:   map[int][]int{},
		NextUserID:    2, NextPEID: 2, NextWorkflowID: 1,
	}
	path := filepath.Join(t.TempDir(), "registry.json")
	if err := Save(path, FormatV2, inline); err != nil {
		t.Fatal(err)
	}
	// Save must not have mutated the caller's records.
	if len(inline.PEs[0].DescEmbedding) == 0 {
		t.Fatal("Save mutated the caller's snapshot")
	}
	got, _, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.PEs[0].DescEmbedding) != 0 {
		t.Fatal("embeddings not detached from records")
	}
	if !reflect.DeepEqual(got.PEDescVecs[1], []float32{1, 0}) || !reflect.DeepEqual(got.PECodeVecs[1], []float32{0, 1}) {
		t.Fatalf("vectors lost: %v %v", got.PEDescVecs, got.PECodeVecs)
	}
}

// TestV2MissingSidecarIsNotErrNotExist: a JSON half whose sidecar is gone
// is a damaged snapshot, not an absent one — the error must NOT satisfy
// fs.ErrNotExist, or the façade's fresh-start exemption would boot an
// empty registry over the still-recoverable JSON and let the shutdown
// save destroy it.
func TestV2MissingSidecarIsNotErrNotExist(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "registry.json")
	if err := Save(path, FormatV2, testSnapshot(t, 70)); err != nil {
		t.Fatal(err)
	}
	hdr, err := readV2Header(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, hdr.Sidecar)); err != nil {
		t.Fatal(err)
	}
	_, _, err = Load(path)
	if err == nil {
		t.Fatal("load with a missing sidecar succeeded")
	}
	if errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing-sidecar error satisfies fs.ErrNotExist (would boot empty over a recoverable file): %v", err)
	}
}

// TestSweepSparesForeignSidecars: the post-save sweep must only remove
// this registry's own content-named generations, never the live sidecar
// of another registry in the same directory whose name shares the prefix.
func TestSweepSparesForeignSidecars(t *testing.T) {
	dir := t.TempDir()
	main := filepath.Join(dir, "registry.json")
	foreign := filepath.Join(dir, "registry.json-staging")
	if err := Save(foreign, FormatV2, testSnapshot(t, 70)); err != nil {
		t.Fatal(err)
	}
	if err := Save(main, FormatV2, testSnapshot(t, 71)); err != nil {
		t.Fatal(err)
	}
	// The foreign registry (whose sidecar "registry.json-staging-<sum>.vec"
	// matches the loose glob "registry.json-*.vec") must still load.
	if _, _, err := Load(foreign); err != nil {
		t.Fatalf("foreign registry damaged by sweep: %v", err)
	}
	if _, _, err := Load(main); err != nil {
		t.Fatal(err)
	}
}

// quantizedSnapshot swaps the desc index of a testSnapshot for one with
// int8 quantization configured, so its snapshot carries a companion set.
func quantizedSnapshot(t *testing.T, n int) *Snapshot {
	t.Helper()
	snap := testSnapshot(t, n)
	desc := index.NewClustered(index.ClusteredConfig{Centroids: 4, NProbe: 2, Quantize: true})
	for id, v := range snap.PEDescVecs {
		desc.Upsert(id, v)
	}
	desc.WaitRetrain()
	snap.Indexes.Desc = desc.Snapshot()
	if snap.Indexes.Desc.Quantized == nil {
		t.Fatal("quantize-configured index snapshot carries no companion set")
	}
	return snap
}

// TestV2QuantizedSectionRoundTrip: a quantized index snapshot persists
// its companion set in a q8 sidecar section and a load restores it bit
// for bit; indexes without a companion set write no q8 section at all,
// which is also why pre-quantization sidecars keep loading unchanged.
func TestV2QuantizedSectionRoundTrip(t *testing.T) {
	snap := quantizedSnapshot(t, 80)
	dir := t.TempDir()
	path := filepath.Join(dir, "registry.json")
	if err := Save(path, FormatV2, snap); err != nil {
		t.Fatal(err)
	}
	hdr, err := readV2Header(path)
	if err != nil {
		t.Fatal(err)
	}
	f, sections, err := openSidecar(filepath.Join(dir, hdr.Sidecar))
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	have := map[string]bool{}
	for _, sec := range sections {
		have[sec.name] = true
	}
	if !have[secQ8Desc] {
		t.Fatalf("quantized desc index wrote no %s section (sections: %v)", secQ8Desc, have)
	}
	if have[secQ8Code] || have[secQ8WF] {
		t.Fatalf("unquantized indexes wrote q8 sections (sections: %v)", have)
	}
	got, format, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if format != FormatV2 {
		t.Fatalf("detected format %v, want v2", format)
	}
	assertSnapshotsEqual(t, got, stripHashes(snap))
}

// TestV1QuantizedRoundTrip: the monolithic JSON format carries the
// companion set inline through the snapshot's Quantized field.
func TestV1QuantizedRoundTrip(t *testing.T) {
	snap := quantizedSnapshot(t, 70)
	path := filepath.Join(t.TempDir(), "registry.json")
	if err := Save(path, FormatV1, snap); err != nil {
		t.Fatal(err)
	}
	got, _, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	assertSnapshotsEqual(t, got, stripHashes(snap))
}

// TestV2CorruptQuantizedSectionDegrades: the companion set is doubly
// derivable, so a damaged q8 section must cost exactly that section —
// the load succeeds, the index snapshots survive, and the restoring
// index re-quantizes from its float vectors.
func TestV2CorruptQuantizedSectionDegrades(t *testing.T) {
	snap := quantizedSnapshot(t, 80)
	dir := t.TempDir()
	path := filepath.Join(dir, "registry.json")
	if err := Save(path, FormatV2, snap); err != nil {
		t.Fatal(err)
	}
	hdr, err := readV2Header(path)
	if err != nil {
		t.Fatal(err)
	}
	vecPath := filepath.Join(dir, hdr.Sidecar)
	f, sections, err := openSidecar(vecPath)
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	raw, err := os.ReadFile(vecPath)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := 0
	for _, sec := range sections {
		if strings.HasPrefix(sec.name, "q8-") {
			raw[sec.offset+sec.length/2] ^= 0xff
			corrupted++
		}
	}
	if corrupted == 0 {
		t.Fatal("no q8 sections present")
	}
	if err := os.WriteFile(vecPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	got, _, err := Load(path)
	if err != nil {
		t.Fatalf("corrupt quantized section failed the whole load: %v", err)
	}
	if got.Indexes == nil || got.Indexes.Desc == nil {
		t.Fatal("index snapshots lost with the quantized section")
	}
	if got.Indexes.Desc.Quantized != nil {
		t.Fatal("corrupt quantized section still surfaced a companion set")
	}
	if len(got.PEs) != len(snap.PEs) {
		t.Fatalf("records lost: %d vs %d", len(got.PEs), len(snap.PEs))
	}
}
