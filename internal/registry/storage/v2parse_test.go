package storage

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestV2ParseRejections drives decodeV2JSON's validation branches through
// hand-written files that pass format sniffing (they start with the exact
// v2 prefix) but are structurally wrong.
func TestV2ParseRejections(t *testing.T) {
	dir := t.TempDir()
	load := func(content string) error {
		p := filepath.Join(dir, "r.json")
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		_, _, err := Load(p)
		return err
	}
	for name, tc := range map[string]struct {
		doc  string
		want string
	}{
		"truncated mid-document": {v2Prefix + `,"version":2,"sid`, ""},
		"non-string key":         {v2Prefix + `,"version":2,"sidecar":"s.vec",3:1}`, ""},
		"bad users array":        {v2Prefix + `,"version":2,"sidecar":"s.vec","users":{"not":"array"}}`, `field "users"`},
		"bad record element":     {v2Prefix + `,"version":2,"sidecar":"s.vec","pes":[17]}`, `field "pes"`},
		"wrong version":          {v2Prefix + `,"version":3,"sidecar":"s.vec"}`, "claims version 3"},
		"no sidecar":             {v2Prefix + `,"version":2}`, "names no sidecar"},
	} {
		err := load(tc.doc)
		if err == nil {
			t.Fatalf("%s: load accepted malformed v2 file", name)
		}
		if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: err = %v, want %q", name, err, tc.want)
		}
	}
	// Unknown top-level fields from a newer minor revision are skipped, so
	// the only remaining complaint is the missing sidecar file, not a parse
	// error.
	err := load(v2Prefix + `,"version":2,"sidecar":"nope.vec","futureField":{"a":[1,2]}}`)
	if err == nil || !strings.Contains(err.Error(), "sidecar") || strings.Contains(err.Error(), "parse") {
		t.Fatalf("future-field doc: err = %v, want missing-sidecar failure", err)
	}
}

// TestBaseIdentityErrors covers the identity probe's failure modes: missing
// file and a v2-sniffing file whose header does not parse.
func TestBaseIdentityErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := BaseIdentity(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("BaseIdentity of missing file succeeded")
	}
	p := filepath.Join(dir, "broken.json")
	if err := os.WriteFile(p, []byte(v2Prefix+",,,"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := BaseIdentity(p); err == nil {
		t.Fatal("BaseIdentity of unparseable v2 header succeeded")
	}
	if _, err := DiskSize(p); err == nil {
		t.Fatal("DiskSize of unparseable v2 header succeeded")
	}
	if _, err := DeltaChainOf(p); err == nil {
		t.Fatal("DeltaChainOf of unparseable v2 header succeeded")
	}
}
