package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/fnv"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"laminar/internal/index"
	"laminar/internal/lexical"
)

// The sidecar is the binary half of a v2 snapshot: every embedding vector
// and every vector-index snapshot, as little-endian float32, so the JSON
// half stays small and parse-cheap. Layout:
//
//	magic "LMSC" | u32 version
//	section payloads, back to back
//	footer: u32 count, then per section
//	        {u16 nameLen, name, u64 offset, u64 length, u64 fnv1a64(payload)}
//	trailer: u64 footerOffset | magic "LMSE"
//
// The footer-at-the-end design is what lets the writer stream: payloads are
// written (and hashed) in one pass with no per-section buffering, and the
// reader seeks to the trailer to find them again. Each section carries its
// own checksum so corruption is localized; the combined checksum over all
// section descriptors is echoed in the JSON header, pairing the two files
// of a generation.
const (
	sidecarMagic        = "LMSC"
	sidecarTrailerMagic = "LMSE"
	sidecarVersion      = 1
)

// Section names. The three vector sections are always present; the index
// sections are present only when the registry had a snapshot to persist.
// The q8 sections carry each index's int8 quantized companion set and are
// doubly optional: written only when quantization was on, and treated as
// derivable on read — absent or corrupt q8 bytes degrade to a rebuild from
// the float vectors, never to a load failure. Pre-quantization sidecars
// therefore keep loading unchanged.
// The lex sections carry the BM25 inverted-index statistics and follow the
// same optional/derivable contract as q8: written only when the registry
// had lexical snapshots to persist, rebuilt from record text when absent or
// corrupt. Pre-lexical sidecars keep loading unchanged.
const (
	secPEDesc  = "pe-desc"
	secPECode  = "pe-code"
	secWFDesc  = "wf-desc"
	secIdxDesc = "idx-desc"
	secIdxCode = "idx-code"
	secIdxWF   = "idx-wf"
	secQ8Desc  = "q8-desc"
	secQ8Code  = "q8-code"
	secQ8WF    = "q8-wf"
	secLexPE   = "lex-pe"
	secLexWF   = "lex-wf"
)

type sidecarSection struct {
	name   string
	offset uint64
	length uint64
	sum    uint64
}

// combinedSum folds every section descriptor into one pairing fingerprint.
func combinedSum(sections []sidecarSection) string {
	h := fnv.New64a()
	for _, s := range sections {
		io.WriteString(h, s.name)
		var b [24]byte
		binary.LittleEndian.PutUint64(b[0:], s.offset)
		binary.LittleEndian.PutUint64(b[8:], s.length)
		binary.LittleEndian.PutUint64(b[16:], s.sum)
		h.Write(b[:])
	}
	return fmt.Sprintf("fnv1a64:%016x", h.Sum64())
}

// sidecarName derives the content-addressed sidecar file name for a
// registry at base (e.g. "registry.json" → "registry.json-<sum>.vec").
// Naming by content is what makes the two-file install crash-consistent:
// the new sidecar lands under a name no previous JSON references, so until
// the JSON rename commits, the old JSON + old sidecar pair stays intact.
func sidecarName(base, sum string) string {
	short := strings.TrimPrefix(sum, "fnv1a64:")
	return base + "-" + short + ".vec"
}

// countingWriter tracks the byte offset and hashes everything written while
// a section is open.
type countingWriter struct {
	w   *bufio.Writer
	off uint64
	h   hash.Hash64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.off += uint64(n)
	if cw.h != nil {
		cw.h.Write(p[:n])
	}
	return n, err
}

func (cw *countingWriter) beginSection() { cw.h = fnv.New64a() }

func (cw *countingWriter) endSection(name string, start uint64) sidecarSection {
	sec := sidecarSection{name: name, offset: start, length: cw.off - start, sum: cw.h.Sum64()}
	cw.h = nil
	return sec
}

// writeSidecar writes the sidecar for snap into dir, returning the final
// (content-named) file name and the combined checksum to echo in the JSON
// header. The file is written to a temp name, fsynced, and renamed to its
// content name before the caller installs the JSON.
func writeSidecar(dir, base string, snap *Snapshot) (name, sum string, err error) {
	f, err := os.CreateTemp(dir, "."+base+".vec-*")
	if err != nil {
		return "", "", fmt.Errorf("storage: write sidecar: %w", err)
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			os.Remove(tmp)
		}
	}()

	cw := &countingWriter{w: bufio.NewWriterSize(f, 1<<16)}
	if _, err = cw.Write([]byte(sidecarMagic)); err != nil {
		return "", "", err
	}
	if err = writeU32(cw, sidecarVersion); err != nil {
		return "", "", err
	}

	var sections []sidecarSection
	writeSec := func(secName string, body func(io.Writer) error) error {
		start := cw.off
		cw.beginSection()
		if err := body(cw); err != nil {
			return err
		}
		sections = append(sections, cw.endSection(secName, start))
		return nil
	}
	vecSections := []struct {
		name string
		vecs map[int][]float32
	}{
		{secPEDesc, snap.PEDescVecs},
		{secPECode, snap.PECodeVecs},
		{secWFDesc, snap.WorkflowDescVecs},
	}
	for _, vs := range vecSections {
		if err = writeSec(vs.name, func(w io.Writer) error { return encodeVecSection(w, vs.vecs) }); err != nil {
			return "", "", fmt.Errorf("storage: write sidecar section %s: %w", vs.name, err)
		}
	}
	if snap.Indexes != nil {
		idxSections := []struct {
			name  string
			qname string
			snap  *index.Snapshot
		}{
			{secIdxDesc, secQ8Desc, snap.Indexes.Desc},
			{secIdxCode, secQ8Code, snap.Indexes.Code},
			{secIdxWF, secQ8WF, snap.Indexes.Workflow},
		}
		for _, is := range idxSections {
			if is.snap == nil {
				continue
			}
			if err = writeSec(is.name, is.snap.EncodeBinary); err != nil {
				return "", "", fmt.Errorf("storage: write sidecar section %s: %w", is.name, err)
			}
			if is.snap.Quantized == nil {
				continue
			}
			if err = writeSec(is.qname, is.snap.Quantized.EncodeBinary); err != nil {
				return "", "", fmt.Errorf("storage: write sidecar section %s: %w", is.qname, err)
			}
		}
	}
	if snap.Lexical != nil {
		lexSections := []struct {
			name string
			snap *lexical.Snapshot
		}{
			{secLexPE, snap.Lexical.PE},
			{secLexWF, snap.Lexical.Workflow},
		}
		for _, ls := range lexSections {
			if ls.snap == nil {
				continue
			}
			if err = writeSec(ls.name, ls.snap.Encode); err != nil {
				return "", "", fmt.Errorf("storage: write sidecar section %s: %w", ls.name, err)
			}
		}
	}

	// Footer + trailer.
	footerOff := cw.off
	if err = writeU32(cw, uint32(len(sections))); err != nil {
		return "", "", err
	}
	for _, sec := range sections {
		if err = writeSecHeader(cw, sec); err != nil {
			return "", "", err
		}
	}
	if err = writeU64(cw, footerOff); err != nil {
		return "", "", err
	}
	if _, err = cw.Write([]byte(sidecarTrailerMagic)); err != nil {
		return "", "", err
	}
	if err = cw.w.Flush(); err != nil {
		return "", "", err
	}
	if err = f.Sync(); err != nil {
		f.Close()
		return "", "", fmt.Errorf("storage: sync sidecar: %w", err)
	}
	if err = f.Close(); err != nil {
		return "", "", fmt.Errorf("storage: close sidecar: %w", err)
	}
	sum = combinedSum(sections)
	name = sidecarName(base, sum)
	if err = os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		return "", "", fmt.Errorf("storage: install sidecar: %w", err)
	}
	return name, sum, nil
}

func writeSecHeader(w io.Writer, sec sidecarSection) error {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], uint16(len(sec.name)))
	if _, err := w.Write(b[:]); err != nil {
		return err
	}
	if _, err := io.WriteString(w, sec.name); err != nil {
		return err
	}
	if err := writeU64(w, sec.offset); err != nil {
		return err
	}
	if err := writeU64(w, sec.length); err != nil {
		return err
	}
	return writeU64(w, sec.sum)
}

func writeU32(w io.Writer, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func writeU64(w io.Writer, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	_, err := w.Write(b[:])
	return err
}

// encodeVecSection streams an id-keyed vector map: u64 count, then per
// entry (id-sorted for determinism) i64 id, u32 dim, dim×f32.
func encodeVecSection(w io.Writer, vecs map[int][]float32) error {
	ids := make([]int, 0, len(vecs))
	for id := range vecs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	if err := writeU64(w, uint64(len(ids))); err != nil {
		return err
	}
	var buf []byte
	for _, id := range ids {
		v := vecs[id]
		need := 8 + 4 + 4*len(v)
		if cap(buf) < need {
			buf = make([]byte, need)
		}
		b := buf[:need]
		binary.LittleEndian.PutUint64(b[0:], uint64(int64(id)))
		binary.LittleEndian.PutUint32(b[8:], uint32(len(v)))
		for i, x := range v {
			binary.LittleEndian.PutUint32(b[12+4*i:], math.Float32bits(x))
		}
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}

// decodeVecSection reads what encodeVecSection wrote.
func decodeVecSection(r io.Reader) (map[int][]float32, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	count := binary.LittleEndian.Uint64(hdr[:])
	if count > 1<<40 {
		return nil, fmt.Errorf("vector section claims %d entries", count)
	}
	// Clamp the allocation hint: count is an untrusted on-disk field (the
	// FNV checksums detect corruption, not tampering), and pre-sizing a map
	// for 2^40 entries would be a multi-GB allocation before the first
	// record byte is even read. Oversized honest sections just grow the map
	// incrementally past the hint.
	hint := count
	if hint > 1<<20 {
		hint = 1 << 20
	}
	out := make(map[int][]float32, hint)
	var rec [12]byte
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, err
		}
		id := int(int64(binary.LittleEndian.Uint64(rec[0:])))
		dim := binary.LittleEndian.Uint32(rec[8:])
		if dim > 1<<20 {
			return nil, fmt.Errorf("vector for id %d claims dim %d", id, dim)
		}
		raw := make([]byte, 4*dim)
		if _, err := io.ReadFull(br, raw); err != nil {
			return nil, err
		}
		v := make([]float32, dim)
		for j := range v {
			v[j] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*j:]))
		}
		out[id] = v
	}
	return out, nil
}

// openSidecar reads and validates the sidecar's footer, returning the open
// file and the section table. The caller is responsible for closing f.
func openSidecar(path string) (f *os.File, sections []sidecarSection, err error) {
	f, err = os.Open(path)
	if err != nil {
		// Deliberately %v, not %w: a JSON half that exists but points at a
		// missing sidecar is a *damaged* snapshot, and the error must not
		// satisfy errors.Is(err, fs.ErrNotExist) — the façade treats
		// ErrNotExist as "fresh start", and booting empty here would let
		// the shutdown save overwrite the still-recoverable JSON.
		return nil, nil, fmt.Errorf("storage: open sidecar: %v (snapshot damaged: the JSON half exists but its sidecar is unreadable)", err)
	}
	defer func() {
		if err != nil {
			f.Close()
		}
	}()
	fi, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	sections, err = readSectionTable(f, fi.Size(), sidecarMagic, sidecarTrailerMagic, sidecarVersion, "sidecar")
	if err != nil {
		return nil, nil, err
	}
	return f, sections, nil
}

// readSectionTable validates the magic/version head and the
// footer-at-the-end section table shared by every sectioned container
// (the v2 sidecar and the delta journal segments). kind only flavors the
// error messages.
func readSectionTable(r io.ReaderAt, size int64, magic, trailerMagic string, version uint32, kind string) ([]sidecarSection, error) {
	var head [8]byte
	if size < int64(len(head)) {
		return nil, fmt.Errorf("storage: %s too short", kind)
	}
	if _, err := r.ReadAt(head[:], 0); err != nil {
		return nil, fmt.Errorf("storage: %s too short: %w", kind, err)
	}
	if string(head[:4]) != magic {
		return nil, fmt.Errorf("storage: not a %s file", kind)
	}
	if v := binary.LittleEndian.Uint32(head[4:]); v != version {
		return nil, fmt.Errorf("storage: %s version %d, want %d", kind, v, version)
	}
	var trailer [12]byte
	if size < int64(len(trailer)) {
		return nil, fmt.Errorf("storage: %s truncated", kind)
	}
	if _, err := r.ReadAt(trailer[:], size-int64(len(trailer))); err != nil {
		return nil, err
	}
	if string(trailer[8:]) != trailerMagic {
		return nil, fmt.Errorf("storage: %s trailer damaged (truncated write?)", kind)
	}
	footerOff := int64(binary.LittleEndian.Uint64(trailer[:8]))
	if footerOff < 8 || footerOff >= size-int64(len(trailer)) {
		return nil, fmt.Errorf("storage: %s footer offset out of range", kind)
	}
	fr := bufio.NewReader(io.NewSectionReader(r, footerOff, size-int64(len(trailer))-footerOff))
	var cnt [4]byte
	if _, err := io.ReadFull(fr, cnt[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(cnt[:])
	if n > 64 {
		return nil, fmt.Errorf("storage: %s claims %d sections", kind, n)
	}
	var sections []sidecarSection
	for i := uint32(0); i < n; i++ {
		var nl [2]byte
		if _, err := io.ReadFull(fr, nl[:]); err != nil {
			return nil, err
		}
		nameLen := int(binary.LittleEndian.Uint16(nl[:]))
		nameBuf := make([]byte, nameLen)
		if _, err := io.ReadFull(fr, nameBuf); err != nil {
			return nil, err
		}
		var nums [24]byte
		if _, err := io.ReadFull(fr, nums[:]); err != nil {
			return nil, err
		}
		sec := sidecarSection{
			name:   string(nameBuf),
			offset: binary.LittleEndian.Uint64(nums[0:]),
			length: binary.LittleEndian.Uint64(nums[8:]),
			sum:    binary.LittleEndian.Uint64(nums[16:]),
		}
		if sec.offset+sec.length > uint64(footerOff) {
			return nil, fmt.Errorf("storage: %s section %s overruns footer", kind, sec.name)
		}
		sections = append(sections, sec)
	}
	return sections, nil
}

// readSection validates a section's checksum and hands the payload to
// decode. The checksum pass is separate from the decode pass on purpose:
// the sum must cover exactly the payload bytes, independent of how much a
// buffered decoder happens to consume.
func readSection(f io.ReaderAt, sec sidecarSection, decode func(io.Reader) error) error {
	h := fnv.New64a()
	if _, err := io.Copy(h, io.NewSectionReader(f, int64(sec.offset), int64(sec.length))); err != nil {
		return fmt.Errorf("storage: sidecar section %s: %w", sec.name, err)
	}
	if h.Sum64() != sec.sum {
		return fmt.Errorf("storage: sidecar section %s checksum mismatch (corrupt sidecar)", sec.name)
	}
	if err := decode(io.NewSectionReader(f, int64(sec.offset), int64(sec.length))); err != nil {
		return fmt.Errorf("storage: sidecar section %s: %w", sec.name, err)
	}
	return nil
}

// cleanSidecars removes stale content-named sidecars for base in dir,
// keeping keep. A crash between installs leaves at most one stale file,
// which the next successful save sweeps. Only names of the exact shape
// sidecarName emits (base-<16 hex>.vec) are eligible: a looser glob like
// base+"-*.vec" would also match the live sidecar of a *different*
// registry in the same directory whose file name happens to start with
// this base (e.g. "registry.json" sweeping "registry.json-staging-….vec").
func cleanSidecars(dir, base, keep string) {
	matches, err := filepath.Glob(filepath.Join(dir, base+"-*.vec"))
	if err != nil {
		return
	}
	for _, m := range matches {
		name := filepath.Base(m)
		if name == keep || !isSidecarName(name, base) {
			continue
		}
		os.Remove(m)
	}
}

// isSidecarName reports whether name is exactly base-<16 lowercase hex>.vec.
func isSidecarName(name, base string) bool {
	rest, ok := strings.CutPrefix(name, base+"-")
	if !ok {
		return false
	}
	sum, ok := strings.CutSuffix(rest, ".vec")
	if !ok || len(sum) != 16 {
		return false
	}
	for _, c := range sum {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
