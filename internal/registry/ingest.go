package registry

import (
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"laminar/internal/core"
)

// Live ingestion: a watcher (or any event source) feeds upsert/remove
// events for PEs; the Ingestor coalesces them per record, debounces the
// burst, and applies the surviving batch through the store's incremental
// paths — UpsertPE / RemovePEByName keep the vector indexes, the BM25
// postings and the quantized sets in step without a rebuild, and an
// optional SaveDelta per batch journals the change to disk. An editor
// save storm on one file therefore costs one registry mutation, not
// fifty, and a small change persists as a small delta segment.

// Ingest event kinds, used as the "kind" label on the laminar_ingest_*
// metric families.
const (
	IngestUpsert = "upsert"
	IngestRemove = "remove"
)

// IngestEvent is one observed source change.
type IngestEvent struct {
	// Kind is IngestUpsert or IngestRemove.
	Kind string
	// UserID owns the registration.
	UserID int
	// Req carries the new content for upserts; Req.PEName is the
	// coalescing identity for both kinds.
	Req core.AddPERequest
}

// name returns the event's PE name regardless of kind.
func (e IngestEvent) name() string { return e.Req.PEName }

// IngestorOptions configures an Ingestor.
type IngestorOptions struct {
	// Debounce is how long the ingestor waits after the last event before
	// applying the pending batch (0 = 50ms). Events for the same PE
	// arriving within the window coalesce to the last one.
	Debounce time.Duration
	// MaxBatch applies the batch early once this many distinct records
	// are pending, bounding memory under sustained churn (0 = 256).
	MaxBatch int
	// SavePath, when non-empty, journals each applied batch with
	// Store.SaveDelta — the persistence leg of continuous ingestion.
	SavePath string
	// Buffer sizes the event channel (0 = 1024). Enqueue blocks when
	// full, back-pressuring the watcher rather than dropping events.
	Buffer int
}

// Ingestor is the debounced apply loop. Create with Store.NewIngestor,
// feed with Upsert/Remove, stop with Close. All methods are safe for
// concurrent use; events enqueued before Close returns are applied.
type Ingestor struct {
	store *Store
	opts  IngestorOptions

	events chan IngestEvent
	flush  chan chan error
	quit   chan struct{}
	done   chan struct{}

	closeOnce sync.Once
	closeErr  error
}

// NewIngestor starts an ingestor's apply loop against the store.
func (s *Store) NewIngestor(opts IngestorOptions) *Ingestor {
	if opts.Debounce <= 0 {
		opts.Debounce = 50 * time.Millisecond
	}
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = 256
	}
	if opts.Buffer <= 0 {
		opts.Buffer = 1024
	}
	ing := &Ingestor{
		store:  s,
		opts:   opts,
		events: make(chan IngestEvent, opts.Buffer),
		flush:  make(chan chan error),
		quit:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	go ing.run()
	return ing
}

// Upsert enqueues a registration (create or in-place replace) for the
// named PE. Blocks only when the event buffer is full.
func (ing *Ingestor) Upsert(userID int, req core.AddPERequest) {
	ing.enqueue(IngestEvent{Kind: IngestUpsert, UserID: userID, Req: req})
}

// Remove enqueues a removal of the user's PE by name.
func (ing *Ingestor) Remove(userID int, peName string) {
	ing.enqueue(IngestEvent{Kind: IngestRemove, UserID: userID, Req: core.AddPERequest{PEName: peName}})
}

// Enqueue submits an arbitrary event (the watcher-facing entry point).
func (ing *Ingestor) Enqueue(ev IngestEvent) { ing.enqueue(ev) }

func (ing *Ingestor) enqueue(ev IngestEvent) {
	if m := ing.store.instruments(); m != nil {
		m.ingestEvents.With(ev.Kind).Inc()
	}
	select {
	case ing.events <- ev:
	case <-ing.quit:
		// Closed ingestor: drop silently — the watcher is racing shutdown
		// and the next full save or session replays the source of truth.
	}
}

// Flush applies everything enqueued so far and blocks until the batch
// (and its delta save, when configured) lands. Returns the first apply
// or save error of that batch.
func (ing *Ingestor) Flush() error {
	ack := make(chan error, 1)
	select {
	case ing.flush <- ack:
		return <-ack
	case <-ing.done:
		return ing.closeErr
	}
}

// Close flushes pending events, stops the apply loop and waits for it
// to exit. Safe to call more than once; later calls return the first
// close's error.
func (ing *Ingestor) Close() error {
	ing.closeOnce.Do(func() {
		close(ing.quit)
		<-ing.done
	})
	return ing.closeErr
}

// batch is the coalesced pending set: one slot per (user, PE name),
// last event wins, apply order is first-touch order for determinism.
type batch struct {
	pending map[string]IngestEvent
	order   []string
}

func newBatch() *batch {
	return &batch{pending: map[string]IngestEvent{}}
}

func (b *batch) add(ev IngestEvent) {
	key := fmt.Sprintf("%d\x00%s", ev.UserID, ev.name())
	if _, seen := b.pending[key]; !seen {
		b.order = append(b.order, key)
	}
	b.pending[key] = ev
}

func (b *batch) len() int { return len(b.order) }

func (ing *Ingestor) run() {
	defer close(ing.done)
	b := newBatch()
	timer := time.NewTimer(ing.opts.Debounce)
	if !timer.Stop() {
		<-timer.C
	}
	armed := false
	disarm := func() {
		if armed && !timer.Stop() {
			<-timer.C
		}
		armed = false
	}
	apply := func() error {
		disarm()
		if b.len() == 0 {
			return nil
		}
		err := ing.apply(b)
		b = newBatch()
		return err
	}
	for {
		select {
		case ev := <-ing.events:
			b.add(ev)
			if b.len() >= ing.opts.MaxBatch {
				if err := apply(); err != nil && ing.closeErr == nil {
					ing.closeErr = err
				}
				continue
			}
			disarm()
			timer.Reset(ing.opts.Debounce)
			armed = true
		case <-timer.C:
			armed = false
			if err := apply(); err != nil && ing.closeErr == nil {
				ing.closeErr = err
			}
		case ack := <-ing.flush:
			ing.drain(b)
			ack <- apply()
		case <-ing.quit:
			ing.drain(b)
			if err := apply(); err != nil && ing.closeErr == nil {
				ing.closeErr = err
			}
			return
		}
	}
}

// drain moves everything already sitting in the event channel into the
// batch without blocking, so Flush/Close cover events enqueued before
// the call.
func (ing *Ingestor) drain(b *batch) {
	for {
		select {
		case ev := <-ing.events:
			b.add(ev)
		default:
			return
		}
	}
}

// apply runs the coalesced batch against the store and journals it.
func (ing *Ingestor) apply(b *batch) error {
	m := ing.store.instruments()
	start := time.Now()
	var firstErr error
	for _, key := range b.order {
		ev := b.pending[key]
		var err error
		switch ev.Kind {
		case IngestUpsert:
			_, _, err = ing.store.UpsertPE(ev.UserID, ev.Req)
		case IngestRemove:
			err = ing.store.RemovePEByName(ev.UserID, ev.name())
			// Removing a record that never landed (or was already removed)
			// is the natural end state of a churned file; not an error.
			var apiErr *core.APIError
			if errors.As(err, &apiErr) && apiErr.Code == http.StatusNotFound {
				err = nil
			}
		default:
			err = fmt.Errorf("ingest: unknown event kind %q", ev.Kind)
		}
		if err != nil {
			if m != nil {
				m.ingestErrors.Inc()
			}
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if m != nil {
			m.ingestApplied.With(ev.Kind).Inc()
		}
	}
	if ing.opts.SavePath != "" {
		if err := ing.store.SaveDelta(ing.opts.SavePath); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if m != nil {
		m.ingestBatches.Inc()
		m.ingestBatchSeconds.Observe(time.Since(start).Seconds())
	}
	return firstErr
}
