package registry

import (
	"fmt"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"laminar/internal/core"
)

// TestStressConcurrentMutateSearchSave hammers the sharded store from four
// directions at once — PE registrations, removals, semantic searches, and
// full Saves — and then checks the survivors are intact. Run under
// `make race` this is the package's data-race canary for the per-domain
// locking; the assertions at the end catch lost updates.
func TestStressConcurrentMutateSearchSave(t *testing.T) {
	s := NewStore()
	s.ConfigureIndex(clusteredFactory())
	u := newUser(t, s, "zz46")
	dir := t.TempDir()

	// A settled base corpus so searches have something to rank while the
	// churn runs.
	const base = 64
	for i := 0; i < base; i++ {
		addEmbeddedPE(t, s, u.UserID, fmt.Sprintf("base%03d", i), "pe", circleVec(i, base))
	}

	const (
		workers = 4
		perW    = 60
	)
	var bounded, searchers sync.WaitGroup
	var stop atomic.Bool

	// Mutators: register churn PEs, then remove the even-indexed ones again.
	for w := 0; w < workers; w++ {
		bounded.Add(1)
		go func() {
			defer bounded.Done()
			for i := 0; i < perW; i++ {
				name := fmt.Sprintf("churn-%d-%d", w, i)
				pe, err := s.AddPE(u.UserID, core.AddPERequest{
					PEName: name, PECode: "code",
					DescEmbedding: circleVec(w*perW+i, workers*perW),
					CodeEmbedding: circleVec(w*perW+i, workers*perW),
				})
				if err != nil {
					t.Errorf("AddPE: %v", err)
					return
				}
				if i%2 == 0 {
					if err := s.RemovePE(u.UserID, pe.PEID); err != nil {
						t.Errorf("RemovePE: %v", err)
						return
					}
				}
			}
		}()
	}
	// Searchers: all three query kinds, continuously until the writers are
	// done.
	for w := 0; w < workers; w++ {
		searchers.Add(1)
		go func() {
			defer searchers.Done()
			for i := 0; !stop.Load(); i++ {
				q := circleVec(i%97, 97)
				s.SemanticSearch(u.UserID, q, 5)
				s.CompletionSearch(u.UserID, q, 5)
				s.SemanticSearchBoth(u.UserID, q, 5)
			}
		}()
	}
	// Saver: full snapshots while the corpus is moving.
	bounded.Add(1)
	go func() {
		defer bounded.Done()
		for i := 0; i < 6; i++ {
			path := filepath.Join(dir, fmt.Sprintf("reg-%d.json", i))
			if err := s.Save(path); err != nil {
				t.Errorf("Save: %v", err)
				return
			}
		}
	}()
	// Workflow churn rides along so the wfs shard sees writes too.
	bounded.Add(1)
	go func() {
		defer bounded.Done()
		for i := 0; i < 40; i++ {
			wf, err := s.AddWorkflow(u.UserID, core.AddWorkflowRequest{
				EntryPoint: fmt.Sprintf("wf-%d", i), WorkflowCode: "wf",
				DescEmbedding: circleVec(i, 40),
			})
			if err != nil {
				t.Errorf("AddWorkflow: %v", err)
				return
			}
			if i%2 == 0 {
				if err := s.RemoveWorkflow(u.UserID, wf.WorkflowID); err != nil {
					t.Errorf("RemoveWorkflow: %v", err)
					return
				}
			}
		}
	}()

	bounded.Wait()
	stop.Store(true)
	searchers.Wait()
	if t.Failed() {
		return
	}

	// Survivor accounting: base PEs plus the odd-indexed churn PEs.
	wantPEs := base + workers*perW/2
	if got := len(s.PEsForUser(u.UserID)); got != wantPEs {
		t.Fatalf("surviving PEs: %d, want %d", got, wantPEs)
	}
	if got := len(s.WorkflowsForUser(u.UserID)); got != 20 {
		t.Fatalf("surviving workflows: %d, want 20", got)
	}
	// The store still round-trips losslessly after the storm.
	s.WaitIndexReady()
	path := filepath.Join(dir, "final.json")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	fresh := NewStore()
	fresh.ConfigureIndex(clusteredFactory())
	if err := fresh.Load(path); err != nil {
		t.Fatal(err)
	}
	if !fresh.IndexesRestored() {
		t.Fatal("settled save did not restore on load")
	}
	q := circleVec(7, 97)
	if got, want := fresh.SemanticSearch(u.UserID, q, 10), s.SemanticSearch(u.UserID, q, 10); !reflect.DeepEqual(got, want) {
		t.Fatalf("post-stress round trip diverged:\n got %+v\nwant %+v", got, want)
	}
}

// TestConcurrentSaveSamePath: overlapping Saves to one path must leave a
// loadable pair behind. Before Save was serialized per store, two
// interleaved v2 installs could each sweep the sidecar the other's JSON
// referenced, wedging the next Load.
func TestConcurrentSaveSamePath(t *testing.T) {
	s := NewStore()
	u := newUser(t, s, "zz46")
	for i := 0; i < 32; i++ {
		addEmbeddedPE(t, s, u.UserID, fmt.Sprintf("pe%02d", i), "pe", circleVec(i, 32))
	}
	path := filepath.Join(t.TempDir(), "reg.json")
	for round := 0; round < 4; round++ {
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := s.Save(path); err != nil {
					t.Errorf("Save: %v", err)
				}
			}()
		}
		wg.Wait()
		fresh := NewStore()
		if err := fresh.Load(path); err != nil {
			t.Fatalf("round %d: load after concurrent saves: %v", round, err)
		}
		if got := len(fresh.PEsForUser(u.UserID)); got != 32 {
			t.Fatalf("round %d: %d PEs after reload", round, got)
		}
	}
}
