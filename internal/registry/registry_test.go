package registry

import (
	"fmt"
	"math"
	"path/filepath"
	"reflect"
	"testing"

	"laminar/internal/core"
	"laminar/internal/index"
	"laminar/internal/registry/storage"
	"laminar/internal/search"
)

func newUser(t *testing.T, s *Store, name string) *core.UserRecord {
	t.Helper()
	u, err := s.RegisterUser(name, "pw-"+name)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func addPE(t *testing.T, s *Store, userID int, name string) *core.PERecord {
	t.Helper()
	pe, err := s.AddPE(userID, core.AddPERequest{
		PEName: name, Description: "desc " + name, PECode: "CODE-" + name,
		PEImports:     []string{"random"},
		CodeEmbedding: []float32{1, 2, 3},
		DescEmbedding: []float32{4, 5, 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	return pe
}

func TestUserLifecycle(t *testing.T) {
	s := NewStore()
	u := newUser(t, s, "ann")
	if u.UserID != 1 {
		t.Errorf("id = %d", u.UserID)
	}
	if _, err := s.RegisterUser("ann", "other"); err == nil {
		t.Error("duplicate user should conflict")
	}
	if _, err := s.RegisterUser("", "pw"); err == nil {
		t.Error("empty user name should fail")
	}
	if _, err := s.RegisterUser("bob", ""); err == nil {
		t.Error("empty password should fail")
	}
	got, token, err := s.Login("ann", "pw-ann")
	if err != nil || got.UserID != u.UserID || token == "" {
		t.Fatalf("login: %v %v %q", got, err, token)
	}
	if id, ok := s.UserIDForToken(token); !ok || id != u.UserID {
		t.Errorf("token resolution: %d %v", id, ok)
	}
	if _, _, err := s.Login("ann", "wrong"); err == nil {
		t.Error("wrong password should fail")
	}
	if _, _, err := s.Login("ghost", "pw"); err == nil {
		t.Error("unknown user should fail")
	}
	if len(s.Users()) != 1 {
		t.Errorf("users: %v", s.Users())
	}
}

func TestPELifecycleAndOwnership(t *testing.T) {
	s := NewStore()
	ann := newUser(t, s, "ann")
	bob := newUser(t, s, "bob")

	pe := addPE(t, s, ann.UserID, "IsPrime")
	if pe.PEID != 1 {
		t.Errorf("pe id = %d", pe.PEID)
	}
	// Bob registering the same PE name becomes an additional owner, not a
	// duplicate (Section 3.1).
	pe2, err := s.AddPE(bob.UserID, core.AddPERequest{PEName: "IsPrime", PECode: "CODE"})
	if err != nil {
		t.Fatal(err)
	}
	if pe2.PEID != pe.PEID {
		t.Errorf("duplicate entry created: %d vs %d", pe2.PEID, pe.PEID)
	}
	if got := s.PEsForUser(bob.UserID); len(got) != 1 {
		t.Errorf("bob's PEs: %v", got)
	}
	// Ann removes: the PE survives for Bob.
	if err := s.RemovePE(ann.UserID, pe.PEID); err != nil {
		t.Fatal(err)
	}
	if _, err := s.PEByID(ann.UserID, pe.PEID); err == nil {
		t.Error("ann should no longer see the PE")
	}
	if _, err := s.PEByID(bob.UserID, pe.PEID); err != nil {
		t.Errorf("bob should still see the PE: %v", err)
	}
	// Bob removes too: the record is deleted.
	if err := s.RemovePEByName(bob.UserID, "IsPrime"); err != nil {
		t.Fatal(err)
	}
	if err := s.RemovePE(bob.UserID, pe.PEID); err == nil {
		t.Error("removing a removed PE should fail")
	}
}

func TestPEValidationAndLookups(t *testing.T) {
	s := NewStore()
	ann := newUser(t, s, "ann")
	if _, err := s.AddPE(ann.UserID, core.AddPERequest{PEName: "", PECode: "x"}); err == nil {
		t.Error("empty name should fail")
	}
	if _, err := s.AddPE(ann.UserID, core.AddPERequest{PEName: "X", PECode: ""}); err == nil {
		t.Error("empty code should fail")
	}
	if _, err := s.AddPE(999, core.AddPERequest{PEName: "X", PECode: "c"}); err == nil {
		t.Error("unknown user should fail")
	}
	addPE(t, s, ann.UserID, "A")
	addPE(t, s, ann.UserID, "B")
	if _, err := s.PEByName(ann.UserID, "missing"); err == nil {
		t.Error("missing PE should 404")
	}
	pes := s.PEsForUser(ann.UserID)
	if len(pes) != 2 || pes[0].PEName != "A" || pes[1].PEName != "B" {
		t.Errorf("listing: %v", pes)
	}
	// embeddings survive storage
	if len(pes[0].CodeEmbedding) != 3 || len(pes[0].DescEmbedding) != 3 {
		t.Errorf("embeddings lost: %+v", pes[0])
	}
}

func TestWorkflowLifecycleAndAssociations(t *testing.T) {
	s := NewStore()
	ann := newUser(t, s, "ann")
	p1 := addPE(t, s, ann.UserID, "Producer")
	p2 := addPE(t, s, ann.UserID, "Consumer")
	wf, err := s.AddWorkflow(ann.UserID, core.AddWorkflowRequest{
		WorkflowName: "IsPrime", EntryPoint: "isPrime",
		Description: "prime workflow", WorkflowCode: "WF-CODE",
		PEIDs: []int{p1.PEID, p2.PEID},
	})
	if err != nil {
		t.Fatal(err)
	}
	pes, err := s.PEsByWorkflow(ann.UserID, wf.WorkflowID)
	if err != nil || len(pes) != 2 {
		t.Fatalf("workflow PEs: %v %v", pes, err)
	}
	// associate a third PE after the fact
	p3 := addPE(t, s, ann.UserID, "Filter")
	if err := s.AssociatePE(ann.UserID, wf.WorkflowID, p3.PEID); err != nil {
		t.Fatal(err)
	}
	pes, _ = s.PEsByWorkflow(ann.UserID, wf.WorkflowID)
	if len(pes) != 3 {
		t.Errorf("after associate: %v", pes)
	}
	// lookups by both name fields
	if _, err := s.WorkflowByName(ann.UserID, "isPrime"); err != nil {
		t.Errorf("by entry point: %v", err)
	}
	if _, err := s.WorkflowByName(ann.UserID, "IsPrime"); err != nil {
		t.Errorf("by workflow name: %v", err)
	}
	// removal
	if err := s.RemoveWorkflowByName(ann.UserID, "isPrime"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.WorkflowByID(ann.UserID, wf.WorkflowID); err == nil {
		t.Error("workflow should be gone")
	}
}

func TestWorkflowValidation(t *testing.T) {
	s := NewStore()
	ann := newUser(t, s, "ann")
	if _, err := s.AddWorkflow(ann.UserID, core.AddWorkflowRequest{EntryPoint: "", WorkflowCode: "c"}); err == nil {
		t.Error("empty entry point should fail")
	}
	if _, err := s.AddWorkflow(ann.UserID, core.AddWorkflowRequest{EntryPoint: "x", WorkflowCode: ""}); err == nil {
		t.Error("empty code should fail")
	}
	if err := s.AssociatePE(ann.UserID, 42, 42); err == nil {
		t.Error("associating unknown entities should fail")
	}
	if _, err := s.PEsByWorkflow(ann.UserID, 42); err == nil {
		t.Error("unknown workflow should 404")
	}
}

func TestListing(t *testing.T) {
	s := NewStore()
	ann := newUser(t, s, "ann")
	addPE(t, s, ann.UserID, "A")
	if _, err := s.AddWorkflow(ann.UserID, core.AddWorkflowRequest{EntryPoint: "w", WorkflowCode: "c"}); err != nil {
		t.Fatal(err)
	}
	listing := s.Listing(ann.UserID)
	if len(listing.PEs) != 1 || len(listing.Workflows) != 1 {
		t.Errorf("listing: %+v", listing)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s := NewStore()
	ann := newUser(t, s, "ann")
	bob := newUser(t, s, "bob")
	p := addPE(t, s, ann.UserID, "Shared")
	if _, err := s.AddPE(bob.UserID, core.AddPERequest{PEName: "Shared", PECode: "c"}); err != nil {
		t.Fatal(err)
	}
	wf, err := s.AddWorkflow(ann.UserID, core.AddWorkflowRequest{
		EntryPoint: "wf1", WorkflowCode: "code", PEIDs: []int{p.PEID},
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "registry.json")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	s2 := NewStore()
	if err := s2.Load(path); err != nil {
		t.Fatal(err)
	}
	// users, credentials, ownership and associations survive
	if _, _, err := s2.Login("ann", "pw-ann"); err != nil {
		t.Errorf("login after load: %v", err)
	}
	got, err := s2.PEByID(bob.UserID, p.PEID)
	if err != nil || got.PEName != "Shared" {
		t.Errorf("bob's ownership lost: %v %v", got, err)
	}
	pes, err := s2.PEsByWorkflow(ann.UserID, wf.WorkflowID)
	if err != nil || len(pes) != 1 {
		t.Errorf("workflow association lost: %v %v", pes, err)
	}
	// id counters continue
	p2 := addPE(t, s2, ann.UserID, "New")
	if p2.PEID <= p.PEID {
		t.Errorf("id counter regressed: %d", p2.PEID)
	}
}

func TestLoadMissingFileFails(t *testing.T) {
	s := NewStore()
	if err := s.Load(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("loading a missing snapshot should fail")
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := NewStore()
	ann := newUser(t, s, "ann")
	done := make(chan bool)
	for i := 0; i < 8; i++ {
		go func(i int) {
			defer func() { done <- true }()
			for j := 0; j < 20; j++ {
				name := "PE" + string(rune('A'+i))
				_, _ = s.AddPE(ann.UserID, core.AddPERequest{PEName: name, PECode: "c"})
				_ = s.PEsForUser(ann.UserID)
				_, _ = s.PEByName(ann.UserID, name)
			}
		}(i)
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	if got := len(s.PEsForUser(ann.UserID)); got != 8 {
		t.Errorf("concurrent adds produced %d PEs, want 8 (deduped)", got)
	}
}

// ---- vector-index maintenance ----

func addEmbeddedPE(t *testing.T, s *Store, userID int, name, desc string, emb []float32) *core.PERecord {
	t.Helper()
	pe, err := s.AddPE(userID, core.AddPERequest{
		PEName: name, Description: desc, PECode: "CODE-" + name,
		DescEmbedding: emb, CodeEmbedding: emb,
	})
	if err != nil {
		t.Fatal(err)
	}
	return pe
}

func TestIndexMaintainedIncrementally(t *testing.T) {
	s := NewStore()
	u := newUser(t, s, "zz46")
	a := addEmbeddedPE(t, s, u.UserID, "A", "alpha", []float32{1, 0})
	b := addEmbeddedPE(t, s, u.UserID, "B", "beta", []float32{0, 1})

	hits := s.SemanticSearch(u.UserID, []float32{1, 0}, 10)
	if len(hits) != 2 || hits[0].ID != a.PEID || hits[1].ID != b.PEID {
		t.Fatalf("hits: %+v", hits)
	}
	// deleting the last owner must also evict the PE from both indexes
	if err := s.RemovePE(u.UserID, a.PEID); err != nil {
		t.Fatal(err)
	}
	hits = s.SemanticSearch(u.UserID, []float32{1, 0}, 10)
	if len(hits) != 1 || hits[0].ID != b.PEID {
		t.Fatalf("after remove: %+v", hits)
	}
	if hits = s.CompletionSearch(u.UserID, []float32{0, 1}, 10); len(hits) != 1 || hits[0].ID != b.PEID {
		t.Fatalf("code index after remove: %+v", hits)
	}
}

func TestIndexSearchRespectsOwnership(t *testing.T) {
	s := NewStore()
	u1 := newUser(t, s, "owner")
	u2 := newUser(t, s, "other")
	addEmbeddedPE(t, s, u1.UserID, "Mine", "mine", []float32{1, 0})

	if hits := s.SemanticSearch(u2.UserID, []float32{1, 0}, 10); len(hits) != 0 {
		t.Fatalf("other user sees foreign PE: %+v", hits)
	}
	if hits := s.SemanticSearch(u1.UserID, []float32{1, 0}, 10); len(hits) != 1 {
		t.Fatalf("owner search: %+v", hits)
	}
}

func TestLoadRebuildsIndexes(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "reg.json")
	s := NewStore()
	u := newUser(t, s, "zz46")
	addEmbeddedPE(t, s, u.UserID, "A", "alpha", []float32{1, 0})
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}

	fresh := NewStore()
	if err := fresh.Load(path); err != nil {
		t.Fatal(err)
	}
	hits := fresh.SemanticSearch(u.UserID, []float32{1, 0}, 10)
	if len(hits) != 1 || hits[0].Name != "A" {
		t.Fatalf("index not rebuilt after Load: %+v", hits)
	}
}

func addEmbeddedWorkflow(t *testing.T, s *Store, userID int, name string, emb []float32) *core.WorkflowRecord {
	t.Helper()
	wf, err := s.AddWorkflow(userID, core.AddWorkflowRequest{
		WorkflowName: name, EntryPoint: name, Description: "wf " + name,
		WorkflowCode: "WF-" + name, DescEmbedding: emb,
	})
	if err != nil {
		t.Fatal(err)
	}
	return wf
}

func TestWorkflowSemanticSearch(t *testing.T) {
	s := NewStore()
	u := newUser(t, s, "zz46")
	w1 := addEmbeddedWorkflow(t, s, u.UserID, "seismic", []float32{1, 0})
	w2 := addEmbeddedWorkflow(t, s, u.UserID, "astro", []float32{0, 1})

	hits := s.SemanticSearchWorkflows(u.UserID, []float32{1, 0}, 10)
	if len(hits) != 2 || hits[0].ID != w1.WorkflowID || hits[0].Kind != "workflow" {
		t.Fatalf("workflow hits: %+v", hits)
	}
	// removal evicts from the workflow index
	if err := s.RemoveWorkflow(u.UserID, w1.WorkflowID); err != nil {
		t.Fatal(err)
	}
	hits = s.SemanticSearchWorkflows(u.UserID, []float32{1, 0}, 10)
	if len(hits) != 1 || hits[0].ID != w2.WorkflowID {
		t.Fatalf("after remove: %+v", hits)
	}
	// ownership filtering
	other := newUser(t, s, "other")
	if hits := s.SemanticSearchWorkflows(other.UserID, []float32{1, 0}, 10); len(hits) != 0 {
		t.Fatalf("foreign workflows visible: %+v", hits)
	}
}

// TestPEReRegistrationAdoptsEmbeddings mirrors the workflow adoption path:
// a PE stored without embeddings becomes searchable when a newer client
// re-registers the name with them.
func TestPEReRegistrationAdoptsEmbeddings(t *testing.T) {
	s := NewStore()
	u := newUser(t, s, "zz46")
	if _, err := s.AddPE(u.UserID, core.AddPERequest{PEName: "Legacy", PECode: "c"}); err != nil {
		t.Fatal(err)
	}
	if hits := s.SemanticSearch(u.UserID, []float32{1, 0}, 10); len(hits) != 0 {
		t.Fatalf("embedding-less PE searchable: %+v", hits)
	}
	pe, err := s.AddPE(u.UserID, core.AddPERequest{
		PEName: "Legacy", PECode: "c",
		DescEmbedding: []float32{1, 0}, CodeEmbedding: []float32{0, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if hits := s.SemanticSearch(u.UserID, []float32{1, 0}, 10); len(hits) != 1 || hits[0].ID != pe.PEID {
		t.Fatalf("adopted desc embedding not indexed: %+v", hits)
	}
	if hits := s.CompletionSearch(u.UserID, []float32{0, 1}, 10); len(hits) != 1 || hits[0].ID != pe.PEID {
		t.Fatalf("adopted code embedding not indexed: %+v", hits)
	}
}

// TestWorkflowReRegistrationAdoptsEmbedding: re-registering an existing
// entry point with an embedding the stored record lacks must make the
// workflow semantically searchable rather than silently dropping it.
func TestWorkflowReRegistrationAdoptsEmbedding(t *testing.T) {
	s := NewStore()
	u := newUser(t, s, "zz46")
	// Registered by an embedding-less client: invisible to semantic search.
	if _, err := s.AddWorkflow(u.UserID, core.AddWorkflowRequest{
		EntryPoint: "legacy", WorkflowCode: "WF",
	}); err != nil {
		t.Fatal(err)
	}
	if hits := s.SemanticSearchWorkflows(u.UserID, []float32{1, 0}, 10); len(hits) != 0 {
		t.Fatalf("embedding-less workflow searchable: %+v", hits)
	}
	// Same entry point re-registered by a newer client carrying one.
	wf, err := s.AddWorkflow(u.UserID, core.AddWorkflowRequest{
		EntryPoint: "legacy", WorkflowCode: "WF", DescEmbedding: []float32{1, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	hits := s.SemanticSearchWorkflows(u.UserID, []float32{1, 0}, 10)
	if len(hits) != 1 || hits[0].ID != wf.WorkflowID {
		t.Fatalf("adopted embedding not indexed: %+v", hits)
	}
}

// TestSemanticSearchBothSingleRoundTrip: the combined search must return
// the score-merge of the two kinds while paying the simulated WAN latency
// once, not once per index.
func TestSemanticSearchBothSingleRoundTrip(t *testing.T) {
	s := NewStore()
	u := newUser(t, s, "zz46")
	addEmbeddedPE(t, s, u.UserID, "A", "alpha", []float32{1, 0})
	addEmbeddedPE(t, s, u.UserID, "B", "beta", []float32{0, 1})
	addEmbeddedWorkflow(t, s, u.UserID, "wfA", []float32{0.9, 0.1})

	query := []float32{1, 0}
	want := search.MergeRanked(
		s.SemanticSearch(u.UserID, query, 10),
		s.SemanticSearchWorkflows(u.UserID, query, 10), 10)
	got := s.SemanticSearchBoth(u.UserID, query, 10)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SemanticSearchBoth diverged from merged parts:\n got %+v\nwant %+v", got, want)
	}

	before := s.WANHops()
	s.SemanticSearchBoth(u.UserID, query, 10)
	if hops := s.WANHops() - before; hops != 1 {
		t.Fatalf("SemanticSearchBoth made %d WAN round trips, want 1", hops)
	}
}

func TestConfigureIndexPreservesResults(t *testing.T) {
	s := NewStore()
	u := newUser(t, s, "zz46")
	// 100 PEs: above the clustered index's training threshold, so the
	// reconfigured index really shards and probes instead of brute-scanning.
	for i := 0; i < 100; i++ {
		angle := float64(i) / 100
		addEmbeddedPE(t, s, u.UserID, fmt.Sprintf("PE%d", i), "pe",
			[]float32{float32(1 - angle), float32(angle)})
	}
	query := []float32{0.7, 0.3}
	flatHits := s.SemanticSearch(u.UserID, query, 10)
	s.ConfigureIndex(func() index.VectorIndex {
		return index.NewClustered(index.ClusteredConfig{Centroids: 4, NProbe: 4})
	})
	if s.IndexName() != "clustered" {
		t.Fatalf("index name: %s", s.IndexName())
	}
	clusHits := s.SemanticSearch(u.UserID, query, 10)
	if !reflect.DeepEqual(flatHits, clusHits) {
		t.Fatalf("full-probe clustered diverged from flat:\n flat %+v\n clus %+v", flatHits, clusHits)
	}
}

// ---- index persistence ----

func clusteredFactory() index.Factory {
	return func() index.VectorIndex {
		return index.NewClustered(index.ClusteredConfig{Centroids: 8, NProbe: 3})
	}
}

// circleVec is a deterministic unit-vector family for persistence tests.
func circleVec(i, n int) []float32 {
	angle := 2 * math.Pi * float64(i) / float64(n)
	return []float32{float32(0.8 * math.Cos(angle)), float32(0.8 * math.Sin(angle)), 0.6}
}

// populate fills a store with n embedded PEs and n/2 embedded workflows.
func populate(t *testing.T, s *Store, n int) *core.UserRecord {
	t.Helper()
	u := newUser(t, s, "zz46")
	for i := 0; i < n; i++ {
		addEmbeddedPE(t, s, u.UserID, fmt.Sprintf("PE%03d", i), "pe", circleVec(i, n))
	}
	for i := 0; i < n/2; i++ {
		addEmbeddedWorkflow(t, s, u.UserID, fmt.Sprintf("wf%03d", i), circleVec(i, n/2))
	}
	return u
}

// TestSaveLoadRestoresClusteredWithoutRetrain is the restart guarantee: a
// clustered deployment saves its trained structure and a fresh process
// restores it byte-identically to serving state — same limited-probe search
// results — with zero k-means retrains.
func TestSaveLoadRestoresClusteredWithoutRetrain(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reg.json")
	s := NewStore()
	s.ConfigureIndex(clusteredFactory())
	u := populate(t, s, 200)
	s.WaitIndexReady()
	query := []float32{0.7, 0.3, 0.1}
	wantPE := s.SemanticSearch(u.UserID, query, 10)
	wantCode := s.CompletionSearch(u.UserID, query, 10)
	wantWF := s.SemanticSearchWorkflows(u.UserID, query, 10)
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}

	fresh := NewStore()
	fresh.ConfigureIndex(clusteredFactory())
	if err := fresh.Load(path); err != nil {
		t.Fatal(err)
	}
	if !fresh.IndexesRestored() {
		t.Fatal("indexes were rebuilt, not restored from snapshot")
	}
	for name, idx := range map[string]index.VectorIndex{
		"desc": fresh.descIndex, "code": fresh.codeIndex, "workflow": fresh.wfIndex,
	} {
		c, ok := idx.(*index.Clustered)
		if !ok {
			t.Fatalf("%s index is %T, want clustered", name, idx)
		}
		if c.Retrains() != 0 {
			t.Fatalf("%s index retrained %d times on restore, want 0", name, c.Retrains())
		}
	}
	if got := fresh.SemanticSearch(u.UserID, query, 10); !reflect.DeepEqual(got, wantPE) {
		t.Fatalf("restored PE search diverged:\n got %+v\nwant %+v", got, wantPE)
	}
	if got := fresh.CompletionSearch(u.UserID, query, 10); !reflect.DeepEqual(got, wantCode) {
		t.Fatalf("restored code search diverged:\n got %+v\nwant %+v", got, wantCode)
	}
	if got := fresh.SemanticSearchWorkflows(u.UserID, query, 10); !reflect.DeepEqual(got, wantWF) {
		t.Fatalf("restored workflow search diverged:\n got %+v\nwant %+v", got, wantWF)
	}
}

// TestConfigureIndexAfterLoadRestores covers the façade's order of
// operations when the kinds differ at load time: Load under the default
// flat factory (clustered snapshot rejected, flat rebuild), then
// ConfigureIndex(clustered) restores from the stashed snapshots instead of
// retraining.
func TestConfigureIndexAfterLoadRestores(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reg.json")
	s := NewStore()
	s.ConfigureIndex(clusteredFactory())
	u := populate(t, s, 150)
	s.WaitIndexReady()
	query := []float32{0.2, -0.9, 0.4}
	want := s.SemanticSearch(u.UserID, query, 10)
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}

	fresh := NewStore() // flat factory
	if err := fresh.Load(path); err != nil {
		t.Fatal(err)
	}
	if fresh.IndexesRestored() {
		t.Fatal("clustered snapshot restored into a flat index")
	}
	fresh.ConfigureIndex(clusteredFactory())
	if !fresh.IndexesRestored() {
		t.Fatal("ConfigureIndex after Load rebuilt instead of restoring")
	}
	if c := fresh.descIndex.(*index.Clustered); c.Retrains() != 0 {
		t.Fatalf("restore retrained %d times", c.Retrains())
	}
	if got := fresh.SemanticSearch(u.UserID, query, 10); !reflect.DeepEqual(got, want) {
		t.Fatalf("restored search diverged:\n got %+v\nwant %+v", got, want)
	}
}

// TestLoadFlatRestoreSkipsRebuild: with the default flat factory a clean
// snapshot restores directly — Load no longer unconditionally rebuilds.
func TestLoadFlatRestoreSkipsRebuild(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reg.json")
	s := NewStore()
	u := populate(t, s, 20)
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	fresh := NewStore()
	if err := fresh.Load(path); err != nil {
		t.Fatal(err)
	}
	if !fresh.IndexesRestored() {
		t.Fatal("flat snapshot did not restore cleanly")
	}
	query := []float32{1, 0, 0}
	if got, want := fresh.SemanticSearch(u.UserID, query, 5), s.SemanticSearch(u.UserID, query, 5); !reflect.DeepEqual(got, want) {
		t.Fatalf("restored flat search diverged:\n got %+v\nwant %+v", got, want)
	}
}

// TestLoadStaleSnapshotFallsBackToRebuild: records edited behind the
// snapshot's back fail the checksum and trigger a full rebuild — queries
// then reflect the *edited* records, never the stale structure.
func TestLoadStaleSnapshotFallsBackToRebuild(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reg.json")
	s := NewStore()
	s.ConfigureIndex(clusteredFactory())
	u := populate(t, s, 100)
	s.WaitIndexReady()
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}

	// Edit one embedding behind the index snapshot's back: load the raw
	// snapshot, swap a vector, and write it back with the original (now
	// stale) index structure still attached. The storage layer re-checksums
	// its own sections, so the file is internally consistent — only the
	// index-to-records binding is stale, which is exactly what the restore
	// path must catch.
	snap, _, err := storage.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	editedID := snap.PEs[0].PEID
	snap.PEDescVecs[editedID] = []float32{0, 0, 1}
	if err := storage.Save(path, storage.FormatV2, snap); err != nil {
		t.Fatal(err)
	}

	fresh := NewStore()
	fresh.ConfigureIndex(clusteredFactory())
	if err := fresh.Load(path); err != nil {
		t.Fatal(err)
	}
	if fresh.IndexesRestored() {
		t.Fatal("stale snapshot restored despite checksum mismatch")
	}
	fresh.WaitIndexReady()
	// The rebuilt index serves the edited embedding.
	hits := fresh.SemanticSearch(u.UserID, []float32{0, 0, 1}, 1)
	if len(hits) != 1 || hits[0].ID != editedID {
		t.Fatalf("rebuild did not pick up edited records: %+v", hits)
	}
}

// TestV1ToV2MigrationRoundTrip is the serving-layer migration guarantee:
// a registry persisted in the legacy v1 format loads into a fresh store
// with its trained indexes restored (zero retrains), and the next Save —
// the store's default being v2 — migrates it to the layered format without
// losing a record or a search result.
func TestV1ToV2MigrationRoundTrip(t *testing.T) {
	dir := t.TempDir()
	v1Path := filepath.Join(dir, "legacy.json")
	s := NewStore()
	s.ConfigureIndex(clusteredFactory())
	u := populate(t, s, 200)
	s.WaitIndexReady()
	if err := s.SetStoreFormat("v1"); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(v1Path); err != nil {
		t.Fatal(err)
	}
	if f, _, err := storage.Load(v1Path); err != nil {
		t.Fatal(err)
	} else if len(f.PEs) != 200 {
		t.Fatalf("v1 file carries %d PEs", len(f.PEs))
	}
	query := []float32{0.6, -0.4, 0.2}
	wantPE := s.SemanticSearch(u.UserID, query, 10)
	wantWF := s.SemanticSearchWorkflows(u.UserID, query, 10)

	// Load the v1 file into a default-format (v2) store: lossless, indexes
	// restored with zero k-means.
	mid := NewStore()
	mid.ConfigureIndex(clusteredFactory())
	if err := mid.Load(v1Path); err != nil {
		t.Fatal(err)
	}
	if !mid.IndexesRestored() {
		t.Fatal("v1 load rebuilt instead of restoring")
	}
	if c := mid.descIndex.(*index.Clustered); c.Retrains() != 0 {
		t.Fatalf("v1 load retrained %d times", c.Retrains())
	}
	if got := mid.SemanticSearch(u.UserID, query, 10); !reflect.DeepEqual(got, wantPE) {
		t.Fatalf("v1 load diverged:\n got %+v\nwant %+v", got, wantPE)
	}

	// One-shot migration: the first Save writes v2 (JSON + sidecar).
	v2Path := filepath.Join(dir, "migrated.json")
	if err := mid.Save(v2Path); err != nil {
		t.Fatal(err)
	}
	if f, err := storage.DetectFormat(v2Path); err != nil || f != storage.FormatV2 {
		t.Fatalf("migrated file format: %v (%v)", f, err)
	}
	fresh := NewStore()
	fresh.ConfigureIndex(clusteredFactory())
	if err := fresh.Load(v2Path); err != nil {
		t.Fatal(err)
	}
	if !fresh.IndexesRestored() {
		t.Fatal("migrated v2 load rebuilt instead of restoring")
	}
	if c := fresh.descIndex.(*index.Clustered); c.Retrains() != 0 {
		t.Fatalf("migrated load retrained %d times", c.Retrains())
	}
	if got := len(fresh.PEsForUser(u.UserID)); got != 200 {
		t.Fatalf("records lost in migration: %d PEs", got)
	}
	if got := fresh.SemanticSearch(u.UserID, query, 10); !reflect.DeepEqual(got, wantPE) {
		t.Fatalf("migrated PE search diverged:\n got %+v\nwant %+v", got, wantPE)
	}
	if got := fresh.SemanticSearchWorkflows(u.UserID, query, 10); !reflect.DeepEqual(got, wantWF) {
		t.Fatalf("migrated workflow search diverged:\n got %+v\nwant %+v", got, wantWF)
	}
	// Credentials and counters survive the format hop.
	if _, _, err := fresh.Login("zz46", "pw-zz46"); err != nil {
		t.Fatalf("login after migration: %v", err)
	}
	pe, err := fresh.AddPE(u.UserID, core.AddPERequest{PEName: "post-migration", PECode: "c"})
	if err != nil || pe.PEID != 201 {
		t.Fatalf("id counter after migration: %+v %v", pe, err)
	}
}
