package registry

import (
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"laminar/internal/core"
	"laminar/internal/index"
)

func newUser(t *testing.T, s *Store, name string) *core.UserRecord {
	t.Helper()
	u, err := s.RegisterUser(name, "pw-"+name)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func addPE(t *testing.T, s *Store, userID int, name string) *core.PERecord {
	t.Helper()
	pe, err := s.AddPE(userID, core.AddPERequest{
		PEName: name, Description: "desc " + name, PECode: "CODE-" + name,
		PEImports:     []string{"random"},
		CodeEmbedding: []float32{1, 2, 3},
		DescEmbedding: []float32{4, 5, 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	return pe
}

func TestUserLifecycle(t *testing.T) {
	s := NewStore()
	u := newUser(t, s, "ann")
	if u.UserID != 1 {
		t.Errorf("id = %d", u.UserID)
	}
	if _, err := s.RegisterUser("ann", "other"); err == nil {
		t.Error("duplicate user should conflict")
	}
	if _, err := s.RegisterUser("", "pw"); err == nil {
		t.Error("empty user name should fail")
	}
	if _, err := s.RegisterUser("bob", ""); err == nil {
		t.Error("empty password should fail")
	}
	got, token, err := s.Login("ann", "pw-ann")
	if err != nil || got.UserID != u.UserID || token == "" {
		t.Fatalf("login: %v %v %q", got, err, token)
	}
	if id, ok := s.UserIDForToken(token); !ok || id != u.UserID {
		t.Errorf("token resolution: %d %v", id, ok)
	}
	if _, _, err := s.Login("ann", "wrong"); err == nil {
		t.Error("wrong password should fail")
	}
	if _, _, err := s.Login("ghost", "pw"); err == nil {
		t.Error("unknown user should fail")
	}
	if len(s.Users()) != 1 {
		t.Errorf("users: %v", s.Users())
	}
}

func TestPELifecycleAndOwnership(t *testing.T) {
	s := NewStore()
	ann := newUser(t, s, "ann")
	bob := newUser(t, s, "bob")

	pe := addPE(t, s, ann.UserID, "IsPrime")
	if pe.PEID != 1 {
		t.Errorf("pe id = %d", pe.PEID)
	}
	// Bob registering the same PE name becomes an additional owner, not a
	// duplicate (Section 3.1).
	pe2, err := s.AddPE(bob.UserID, core.AddPERequest{PEName: "IsPrime", PECode: "CODE"})
	if err != nil {
		t.Fatal(err)
	}
	if pe2.PEID != pe.PEID {
		t.Errorf("duplicate entry created: %d vs %d", pe2.PEID, pe.PEID)
	}
	if got := s.PEsForUser(bob.UserID); len(got) != 1 {
		t.Errorf("bob's PEs: %v", got)
	}
	// Ann removes: the PE survives for Bob.
	if err := s.RemovePE(ann.UserID, pe.PEID); err != nil {
		t.Fatal(err)
	}
	if _, err := s.PEByID(ann.UserID, pe.PEID); err == nil {
		t.Error("ann should no longer see the PE")
	}
	if _, err := s.PEByID(bob.UserID, pe.PEID); err != nil {
		t.Errorf("bob should still see the PE: %v", err)
	}
	// Bob removes too: the record is deleted.
	if err := s.RemovePEByName(bob.UserID, "IsPrime"); err != nil {
		t.Fatal(err)
	}
	if err := s.RemovePE(bob.UserID, pe.PEID); err == nil {
		t.Error("removing a removed PE should fail")
	}
}

func TestPEValidationAndLookups(t *testing.T) {
	s := NewStore()
	ann := newUser(t, s, "ann")
	if _, err := s.AddPE(ann.UserID, core.AddPERequest{PEName: "", PECode: "x"}); err == nil {
		t.Error("empty name should fail")
	}
	if _, err := s.AddPE(ann.UserID, core.AddPERequest{PEName: "X", PECode: ""}); err == nil {
		t.Error("empty code should fail")
	}
	if _, err := s.AddPE(999, core.AddPERequest{PEName: "X", PECode: "c"}); err == nil {
		t.Error("unknown user should fail")
	}
	addPE(t, s, ann.UserID, "A")
	addPE(t, s, ann.UserID, "B")
	if _, err := s.PEByName(ann.UserID, "missing"); err == nil {
		t.Error("missing PE should 404")
	}
	pes := s.PEsForUser(ann.UserID)
	if len(pes) != 2 || pes[0].PEName != "A" || pes[1].PEName != "B" {
		t.Errorf("listing: %v", pes)
	}
	// embeddings survive storage
	if len(pes[0].CodeEmbedding) != 3 || len(pes[0].DescEmbedding) != 3 {
		t.Errorf("embeddings lost: %+v", pes[0])
	}
}

func TestWorkflowLifecycleAndAssociations(t *testing.T) {
	s := NewStore()
	ann := newUser(t, s, "ann")
	p1 := addPE(t, s, ann.UserID, "Producer")
	p2 := addPE(t, s, ann.UserID, "Consumer")
	wf, err := s.AddWorkflow(ann.UserID, core.AddWorkflowRequest{
		WorkflowName: "IsPrime", EntryPoint: "isPrime",
		Description: "prime workflow", WorkflowCode: "WF-CODE",
		PEIDs: []int{p1.PEID, p2.PEID},
	})
	if err != nil {
		t.Fatal(err)
	}
	pes, err := s.PEsByWorkflow(ann.UserID, wf.WorkflowID)
	if err != nil || len(pes) != 2 {
		t.Fatalf("workflow PEs: %v %v", pes, err)
	}
	// associate a third PE after the fact
	p3 := addPE(t, s, ann.UserID, "Filter")
	if err := s.AssociatePE(ann.UserID, wf.WorkflowID, p3.PEID); err != nil {
		t.Fatal(err)
	}
	pes, _ = s.PEsByWorkflow(ann.UserID, wf.WorkflowID)
	if len(pes) != 3 {
		t.Errorf("after associate: %v", pes)
	}
	// lookups by both name fields
	if _, err := s.WorkflowByName(ann.UserID, "isPrime"); err != nil {
		t.Errorf("by entry point: %v", err)
	}
	if _, err := s.WorkflowByName(ann.UserID, "IsPrime"); err != nil {
		t.Errorf("by workflow name: %v", err)
	}
	// removal
	if err := s.RemoveWorkflowByName(ann.UserID, "isPrime"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.WorkflowByID(ann.UserID, wf.WorkflowID); err == nil {
		t.Error("workflow should be gone")
	}
}

func TestWorkflowValidation(t *testing.T) {
	s := NewStore()
	ann := newUser(t, s, "ann")
	if _, err := s.AddWorkflow(ann.UserID, core.AddWorkflowRequest{EntryPoint: "", WorkflowCode: "c"}); err == nil {
		t.Error("empty entry point should fail")
	}
	if _, err := s.AddWorkflow(ann.UserID, core.AddWorkflowRequest{EntryPoint: "x", WorkflowCode: ""}); err == nil {
		t.Error("empty code should fail")
	}
	if err := s.AssociatePE(ann.UserID, 42, 42); err == nil {
		t.Error("associating unknown entities should fail")
	}
	if _, err := s.PEsByWorkflow(ann.UserID, 42); err == nil {
		t.Error("unknown workflow should 404")
	}
}

func TestListing(t *testing.T) {
	s := NewStore()
	ann := newUser(t, s, "ann")
	addPE(t, s, ann.UserID, "A")
	if _, err := s.AddWorkflow(ann.UserID, core.AddWorkflowRequest{EntryPoint: "w", WorkflowCode: "c"}); err != nil {
		t.Fatal(err)
	}
	listing := s.Listing(ann.UserID)
	if len(listing.PEs) != 1 || len(listing.Workflows) != 1 {
		t.Errorf("listing: %+v", listing)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s := NewStore()
	ann := newUser(t, s, "ann")
	bob := newUser(t, s, "bob")
	p := addPE(t, s, ann.UserID, "Shared")
	if _, err := s.AddPE(bob.UserID, core.AddPERequest{PEName: "Shared", PECode: "c"}); err != nil {
		t.Fatal(err)
	}
	wf, err := s.AddWorkflow(ann.UserID, core.AddWorkflowRequest{
		EntryPoint: "wf1", WorkflowCode: "code", PEIDs: []int{p.PEID},
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "registry.json")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	s2 := NewStore()
	if err := s2.Load(path); err != nil {
		t.Fatal(err)
	}
	// users, credentials, ownership and associations survive
	if _, _, err := s2.Login("ann", "pw-ann"); err != nil {
		t.Errorf("login after load: %v", err)
	}
	got, err := s2.PEByID(bob.UserID, p.PEID)
	if err != nil || got.PEName != "Shared" {
		t.Errorf("bob's ownership lost: %v %v", got, err)
	}
	pes, err := s2.PEsByWorkflow(ann.UserID, wf.WorkflowID)
	if err != nil || len(pes) != 1 {
		t.Errorf("workflow association lost: %v %v", pes, err)
	}
	// id counters continue
	p2 := addPE(t, s2, ann.UserID, "New")
	if p2.PEID <= p.PEID {
		t.Errorf("id counter regressed: %d", p2.PEID)
	}
}

func TestLoadMissingFileFails(t *testing.T) {
	s := NewStore()
	if err := s.Load(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("loading a missing snapshot should fail")
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := NewStore()
	ann := newUser(t, s, "ann")
	done := make(chan bool)
	for i := 0; i < 8; i++ {
		go func(i int) {
			defer func() { done <- true }()
			for j := 0; j < 20; j++ {
				name := "PE" + string(rune('A'+i))
				_, _ = s.AddPE(ann.UserID, core.AddPERequest{PEName: name, PECode: "c"})
				_ = s.PEsForUser(ann.UserID)
				_, _ = s.PEByName(ann.UserID, name)
			}
		}(i)
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	if got := len(s.PEsForUser(ann.UserID)); got != 8 {
		t.Errorf("concurrent adds produced %d PEs, want 8 (deduped)", got)
	}
}

// ---- vector-index maintenance ----

func addEmbeddedPE(t *testing.T, s *Store, userID int, name, desc string, emb []float32) *core.PERecord {
	t.Helper()
	pe, err := s.AddPE(userID, core.AddPERequest{
		PEName: name, Description: desc, PECode: "CODE-" + name,
		DescEmbedding: emb, CodeEmbedding: emb,
	})
	if err != nil {
		t.Fatal(err)
	}
	return pe
}

func TestIndexMaintainedIncrementally(t *testing.T) {
	s := NewStore()
	u := newUser(t, s, "zz46")
	a := addEmbeddedPE(t, s, u.UserID, "A", "alpha", []float32{1, 0})
	b := addEmbeddedPE(t, s, u.UserID, "B", "beta", []float32{0, 1})

	hits := s.SemanticSearch(u.UserID, []float32{1, 0}, 10)
	if len(hits) != 2 || hits[0].ID != a.PEID || hits[1].ID != b.PEID {
		t.Fatalf("hits: %+v", hits)
	}
	// deleting the last owner must also evict the PE from both indexes
	if err := s.RemovePE(u.UserID, a.PEID); err != nil {
		t.Fatal(err)
	}
	hits = s.SemanticSearch(u.UserID, []float32{1, 0}, 10)
	if len(hits) != 1 || hits[0].ID != b.PEID {
		t.Fatalf("after remove: %+v", hits)
	}
	if hits = s.CompletionSearch(u.UserID, []float32{0, 1}, 10); len(hits) != 1 || hits[0].ID != b.PEID {
		t.Fatalf("code index after remove: %+v", hits)
	}
}

func TestIndexSearchRespectsOwnership(t *testing.T) {
	s := NewStore()
	u1 := newUser(t, s, "owner")
	u2 := newUser(t, s, "other")
	addEmbeddedPE(t, s, u1.UserID, "Mine", "mine", []float32{1, 0})

	if hits := s.SemanticSearch(u2.UserID, []float32{1, 0}, 10); len(hits) != 0 {
		t.Fatalf("other user sees foreign PE: %+v", hits)
	}
	if hits := s.SemanticSearch(u1.UserID, []float32{1, 0}, 10); len(hits) != 1 {
		t.Fatalf("owner search: %+v", hits)
	}
}

func TestLoadRebuildsIndexes(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "reg.json")
	s := NewStore()
	u := newUser(t, s, "zz46")
	addEmbeddedPE(t, s, u.UserID, "A", "alpha", []float32{1, 0})
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}

	fresh := NewStore()
	if err := fresh.Load(path); err != nil {
		t.Fatal(err)
	}
	hits := fresh.SemanticSearch(u.UserID, []float32{1, 0}, 10)
	if len(hits) != 1 || hits[0].Name != "A" {
		t.Fatalf("index not rebuilt after Load: %+v", hits)
	}
}

func TestConfigureIndexPreservesResults(t *testing.T) {
	s := NewStore()
	u := newUser(t, s, "zz46")
	// 100 PEs: above the clustered index's training threshold, so the
	// reconfigured index really shards and probes instead of brute-scanning.
	for i := 0; i < 100; i++ {
		angle := float64(i) / 100
		addEmbeddedPE(t, s, u.UserID, fmt.Sprintf("PE%d", i), "pe",
			[]float32{float32(1 - angle), float32(angle)})
	}
	query := []float32{0.7, 0.3}
	flatHits := s.SemanticSearch(u.UserID, query, 10)
	s.ConfigureIndex(func() index.VectorIndex {
		return index.NewClustered(index.ClusteredConfig{Centroids: 4, NProbe: 4})
	})
	if s.IndexName() != "clustered" {
		t.Fatalf("index name: %s", s.IndexName())
	}
	clusHits := s.SemanticSearch(u.UserID, query, 10)
	if !reflect.DeepEqual(flatHits, clusHits) {
		t.Fatalf("full-probe clustered diverged from flat:\n flat %+v\n clus %+v", flatHits, clusHits)
	}
}
