package registry

import (
	"sort"
	"time"

	"laminar/internal/registry/storage"
)

// Dirty-record tracking and the delta-save path. Every mutator marks the
// records and relation rows it touched in a dirty set (and bumps the
// mutation epoch query caches key their entries to); SaveDelta drains the
// set into a small journal segment instead of rewriting the full snapshot
// pair, compacting into a full save once the journal passes the configured
// segment-count or size-ratio threshold. See docs/storage.md.

// dirtyState records which ids changed since the last save. One set per
// record domain is enough for both upserts and removals: at capture time,
// an id still present in the record map is an upsert, an absent one is a
// removal — last state wins, exactly the apply semantics. Ownership rows
// are tracked by owner id and travel as full replacement rows.
type dirtyState struct {
	users    map[int]bool // upserted user ids (users are never removed)
	pes      map[int]bool // touched PE ids (upserted or removed)
	wfs      map[int]bool // touched workflow ids (upserted or removed)
	ownerPEs map[int]bool // userIDs whose userPEs row changed
	ownerWFs map[int]bool // userIDs whose userWorkflows row changed
	assocWFs map[int]bool // workflowIDs whose workflowPEs row changed
}

func newDirtyState() dirtyState {
	return dirtyState{
		users:    map[int]bool{},
		pes:      map[int]bool{},
		wfs:      map[int]bool{},
		ownerPEs: map[int]bool{},
		ownerWFs: map[int]bool{},
		assocWFs: map[int]bool{},
	}
}

func (d dirtyState) empty() bool {
	return len(d.users) == 0 && len(d.pes) == 0 && len(d.wfs) == 0 &&
		len(d.ownerPEs) == 0 && len(d.ownerWFs) == 0 && len(d.assocWFs) == 0
}

// count is the number of touched records (not ownership rows) — the size
// signal the compaction policy compares against the corpus.
func (d dirtyState) count() int { return len(d.users) + len(d.pes) + len(d.wfs) }

// markDirty lets a mutator record what it touched. Called while holding the
// mutated shard's write lock; dirtyMu is a leaf lock below every shard
// lock, and the epoch bump rides along so "something changed" and "caches
// must revalidate" can never disagree.
func (s *Store) markDirty(fn func(*dirtyState)) {
	s.dirtyMu.Lock()
	fn(&s.dirty)
	s.dirtyMu.Unlock()
	s.epoch.Add(1)
}

// mergeDirty unions a captured-but-unsaved dirty set back in (the failure
// path of a save). Over-marking is harmless — the worst case is a record
// saved twice.
func (s *Store) mergeDirty(d dirtyState) {
	s.dirtyMu.Lock()
	defer s.dirtyMu.Unlock()
	for id := range d.users {
		s.dirty.users[id] = true
	}
	for id := range d.pes {
		s.dirty.pes[id] = true
	}
	for id := range d.wfs {
		s.dirty.wfs[id] = true
	}
	for id := range d.ownerPEs {
		s.dirty.ownerPEs[id] = true
	}
	for id := range d.ownerWFs {
		s.dirty.ownerWFs[id] = true
	}
	for id := range d.assocWFs {
		s.dirty.assocWFs[id] = true
	}
}

// swapDirtyLocked takes the dirty set, leaving a fresh one. Callers hold
// the shard read locks of everything the set describes, so no mutator can
// interleave between the state copy and the swap.
func (s *Store) swapDirtyLocked() dirtyState {
	s.dirtyMu.Lock()
	defer s.dirtyMu.Unlock()
	d := s.dirty
	s.dirty = newDirtyState()
	return d
}

// Epoch reports the registry mutation epoch: a counter bumped on every
// mutation, every Load, every ConfigureIndex and every SetReadOnly flip.
// Query caches tag entries with it (paired with IndexGeneration) and treat
// any change as an invalidation — including the replica-side
// restore/read-only transitions that change what a search may return
// without touching a single record.
func (s *Store) Epoch() int64 { return s.epoch.Load() }

// IndexGeneration folds the three vector indexes' trained-structure
// generations into one number. It moves when a retrain completes or a
// snapshot restores — the moments a cached ANN answer may go stale with no
// record mutation. Index swaps (rebuild, ConfigureIndex) can reset it, but
// every swap path also bumps the epoch, and caches compare the (epoch,
// generation) pair.
func (s *Store) IndexGeneration() uint64 {
	desc, code, wf := s.indexes()
	var g uint64
	for _, idx := range []interface{ Name() string }{desc, code, wf} {
		if gen, ok := idx.(interface{ Generation() uint64 }); ok {
			g += gen.Generation()
		}
	}
	return g
}

// DeltaPolicy is the journal compaction policy: a delta save falls back to
// a full (compacting) save once the journal holds MaxSegments segments,
// once its bytes exceed CompactRatio of the base snapshot's, or once a
// single delta would carry at least CompactRatio of the records anyway.
type DeltaPolicy struct {
	MaxSegments  int
	CompactRatio float64
}

// DefaultDeltaPolicy is the policy SaveDelta uses until SetDeltaPolicy.
func DefaultDeltaPolicy() DeltaPolicy { return DeltaPolicy{MaxSegments: 64, CompactRatio: 0.5} }

// SetDeltaPolicy configures the journal compaction thresholds. Zero fields
// keep their defaults.
func (s *Store) SetDeltaPolicy(p DeltaPolicy) {
	s.saveMu.Lock()
	defer s.saveMu.Unlock()
	if p.MaxSegments > 0 {
		s.deltaPolicy.MaxSegments = p.MaxSegments
	}
	if p.CompactRatio > 0 {
		s.deltaPolicy.CompactRatio = p.CompactRatio
	}
}

// DeltaChainInfo reports the live journal state: installed segments and
// their total bytes (0, 0 right after a full save or against a v1 base).
func (s *Store) DeltaChainInfo() (segments uint64, bytes int64) {
	s.saveMu.Lock()
	defer s.saveMu.Unlock()
	return s.chain.Seq, s.chain.Bytes
}

// SaveDelta persists the changes since the last save as one journal
// segment when that is cheap and sound, and as a full snapshot otherwise
// (no delta-capable base yet, v1 format, compaction threshold passed, or a
// change set so large a delta would not pay). It is the save entry point
// churn-driven owners (the ingestor, periodic saves) should prefer: cost
// scales with what changed, not with corpus size.
func (s *Store) SaveDelta(path string) error {
	s.saveMu.Lock()
	defer s.saveMu.Unlock()
	if s.format() != storage.FormatV2 || s.chainPath != path || s.chain.BaseSum == "" {
		return s.saveFullLocked(path, false)
	}
	pol := s.deltaPolicy
	dirtyCount, total := s.dirtySizeHint()
	if int(s.chain.Seq) >= pol.MaxSegments ||
		(s.chainBaseBytes > 0 && float64(s.chain.Bytes) >= pol.CompactRatio*float64(s.chainBaseBytes)) ||
		(total > 0 && float64(dirtyCount) >= pol.CompactRatio*float64(total)) {
		return s.saveFullLocked(path, true)
	}
	m := s.instruments()
	start := time.Now()
	captured, delta := s.collectDelta()
	if delta.Empty() {
		s.mergeDirty(captured) // nothing record-level; keep any stray marks
		return nil
	}
	chain, err := storage.SaveDelta(path, s.chain, delta)
	if err != nil {
		s.mergeDirty(captured)
		if m != nil {
			m.deltaSaveErrors.Inc()
		}
		return err
	}
	s.chain = chain
	s.chainSegments.Store(int64(chain.Seq))
	if m != nil {
		m.deltaSaves.Inc()
		m.deltaSaveSeconds.ObserveSince(start)
	}
	return nil
}

// dirtySizeHint sizes the pending change set against the corpus without
// taking shard locks in any particular order long (reads only counters).
func (s *Store) dirtySizeHint() (dirty, total int) {
	s.dirtyMu.Lock()
	dirty = s.dirty.count()
	s.dirtyMu.Unlock()
	s.usersMu.RLock()
	total = len(s.users)
	s.usersMu.RUnlock()
	s.pesMu.RLock()
	total += len(s.pes)
	s.pesMu.RUnlock()
	s.wfsMu.RLock()
	total += len(s.workflows)
	s.wfsMu.RUnlock()
	return dirty, total
}

// saveFullLocked is the full-snapshot save path shared by Save and
// SaveDelta's fallback/compaction branches. Caller holds saveMu. On
// success the delta chain re-anchors to the fresh base (whose install
// swept any previous journal).
func (s *Store) saveFullLocked(path string, compaction bool) error {
	m := s.instruments()
	start := time.Now()
	snap, captured := s.collectSnapshot()
	err := storage.Save(path, s.format(), snap)
	if err != nil {
		s.mergeDirty(captured)
		if m != nil {
			m.saveErrors.Inc()
		}
		return err
	}
	if m != nil {
		m.saves.Inc()
		m.saveSeconds.ObserveSince(start)
		if compaction {
			m.compactions.Inc()
		}
	}
	s.chainPath = path
	baseSum, berr := storage.BaseIdentity(path)
	if berr != nil {
		baseSum = ""
	}
	s.chain = storage.DeltaChain{BaseSum: baseSum}
	s.chainSegments.Store(0)
	if size, serr := storage.DiskSize(path); serr == nil {
		s.chainBaseBytes = size
	} else {
		s.chainBaseBytes = 0
	}
	return nil
}

// collectDelta captures the dirty set and materializes it as a storage
// delta under the shard read locks — the same consistency argument as
// collectSnapshot, scoped to what changed. The swap happens under those
// locks too, so a mutation lands either in this delta or in the next dirty
// set, never between.
func (s *Store) collectDelta() (dirtyState, *storage.Delta) {
	s.usersMu.RLock()
	defer s.usersMu.RUnlock()
	s.pesMu.RLock()
	defer s.pesMu.RUnlock()
	s.wfsMu.RLock()
	defer s.wfsMu.RUnlock()

	d := s.swapDirtyLocked()
	delta := &storage.Delta{
		PasswordHashes:   map[int]string{},
		UserPEs:          map[int][]int{},
		UserWorkflows:    map[int][]int{},
		WorkflowPEs:      map[int][]int{},
		NextUserID:       s.nextUserID,
		NextPEID:         s.nextPEID,
		NextWorkflowID:   s.nextWorkflowID,
		PEDescVecs:       map[int][]float32{},
		PECodeVecs:       map[int][]float32{},
		WorkflowDescVecs: map[int][]float32{},
	}
	for id := range d.users {
		if u := s.users[id]; u != nil {
			delta.Users = append(delta.Users, *u)
			delta.PasswordHashes[id] = u.PasswordHash
		}
	}
	for id := range d.pes {
		pe := s.pes[id]
		if pe == nil {
			delta.RemovedPEs = append(delta.RemovedPEs, id)
			continue
		}
		rec := *pe
		if len(rec.DescEmbedding) > 0 {
			delta.PEDescVecs[id] = rec.DescEmbedding
			rec.DescEmbedding = nil
		}
		if len(rec.CodeEmbedding) > 0 {
			delta.PECodeVecs[id] = rec.CodeEmbedding
			rec.CodeEmbedding = nil
		}
		delta.PEs = append(delta.PEs, rec)
	}
	for id := range d.wfs {
		wf := s.workflows[id]
		if wf == nil {
			delta.RemovedWorkflows = append(delta.RemovedWorkflows, id)
			continue
		}
		rec := *wf
		if len(rec.DescEmbedding) > 0 {
			delta.WorkflowDescVecs[id] = rec.DescEmbedding
			rec.DescEmbedding = nil
		}
		delta.Workflows = append(delta.Workflows, rec)
	}
	for uid := range d.ownerPEs {
		delta.UserPEs[uid] = setToSlice(s.userPEs[uid])
	}
	for uid := range d.ownerWFs {
		delta.UserWorkflows[uid] = setToSlice(s.userWorkflows[uid])
	}
	for wid := range d.assocWFs {
		// A removed workflow's row travels via RemovedWorkflows; replaying
		// an empty row for it would resurrect an orphan entry.
		if _, ok := s.workflows[wid]; ok {
			delta.WorkflowPEs[wid] = setToSlice(s.workflowPEs[wid])
		}
	}
	sort.Slice(delta.Users, func(i, j int) bool { return delta.Users[i].UserID < delta.Users[j].UserID })
	sort.Slice(delta.PEs, func(i, j int) bool { return delta.PEs[i].PEID < delta.PEs[j].PEID })
	sort.Slice(delta.Workflows, func(i, j int) bool { return delta.Workflows[i].WorkflowID < delta.Workflows[j].WorkflowID })
	sort.Ints(delta.RemovedPEs)
	sort.Ints(delta.RemovedWorkflows)
	return d, delta
}

// applyDeltaLocked replays one journal segment through the serving-layer
// state: records are replaced or deleted, and the vector, quantized and
// lexical indexes are maintained *incrementally* — the same path live
// mutations take — so a restored-then-replayed index never retrains.
// Caller holds every shard write lock (the Load path).
func (s *Store) applyDeltaLocked(d *storage.Delta) {
	for i := range d.Users {
		u := d.Users[i]
		u.PasswordHash = d.PasswordHashes[u.UserID]
		s.users[u.UserID] = &u
		if u.UserID >= s.nextUserID {
			s.nextUserID = u.UserID + 1
		}
	}
	for _, id := range d.RemovedPEs {
		if _, ok := s.pes[id]; ok {
			delete(s.pes, id)
			s.descIndex.Delete(id)
			s.codeIndex.Delete(id)
			s.peLex.Delete(id)
		}
	}
	for i := range d.PEs {
		pe := d.PEs[i]
		pe.DescEmbedding = d.PEDescVecs[pe.PEID]
		pe.CodeEmbedding = d.PECodeVecs[pe.PEID]
		s.pes[pe.PEID] = &pe
		if len(pe.DescEmbedding) > 0 {
			s.descIndex.Upsert(pe.PEID, pe.DescEmbedding)
		} else {
			s.descIndex.Delete(pe.PEID)
		}
		if len(pe.CodeEmbedding) > 0 {
			s.codeIndex.Upsert(pe.PEID, pe.CodeEmbedding)
		} else {
			s.codeIndex.Delete(pe.PEID)
		}
		s.peLex.Upsert(pe.PEID, peLexDoc(&pe))
	}
	for _, id := range d.RemovedWorkflows {
		if _, ok := s.workflows[id]; ok {
			delete(s.workflows, id)
			delete(s.workflowPEs, id)
			s.wfIndex.Delete(id)
			s.wfLex.Delete(id)
		}
	}
	for i := range d.Workflows {
		wf := d.Workflows[i]
		wf.DescEmbedding = d.WorkflowDescVecs[wf.WorkflowID]
		s.workflows[wf.WorkflowID] = &wf
		if len(wf.DescEmbedding) > 0 {
			s.wfIndex.Upsert(wf.WorkflowID, wf.DescEmbedding)
		} else {
			s.wfIndex.Delete(wf.WorkflowID)
		}
		s.wfLex.Upsert(wf.WorkflowID, wfLexDoc(&wf))
	}
	for uid, ids := range d.UserPEs {
		s.userPEs[uid] = intSet(ids)
	}
	for uid, ids := range d.UserWorkflows {
		s.userWorkflows[uid] = intSet(ids)
	}
	for wid, ids := range d.WorkflowPEs {
		if _, ok := s.workflows[wid]; ok {
			s.workflowPEs[wid] = intSet(ids)
		}
	}
	if d.NextUserID > s.nextUserID {
		s.nextUserID = d.NextUserID
	}
	if d.NextPEID > s.nextPEID {
		s.nextPEID = d.NextPEID
	}
	if d.NextWorkflowID > s.nextWorkflowID {
		s.nextWorkflowID = d.NextWorkflowID
	}
}

func intSet(ids []int) map[int]bool {
	set := make(map[int]bool, len(ids))
	for _, id := range ids {
		set[id] = true
	}
	return set
}
