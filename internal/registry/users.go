package registry

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"laminar/internal/core"
)

// User operations live entirely on the users shard: registrations and
// logins never contend with PE/workflow traffic or searches.

func hashPassword(userName, password string) string {
	h := sha256.Sum256([]byte("laminar:" + userName + ":" + password))
	return hex.EncodeToString(h[:])
}

// RegisterUser creates a user with a unique name.
func (s *Store) RegisterUser(userName, password string) (*core.UserRecord, error) {
	s.simulateWAN()
	if err := s.checkWritable(); err != nil {
		return nil, err
	}
	if strings.TrimSpace(userName) == "" {
		return nil, core.ErrBadRequest("userName", "user name must not be empty")
	}
	if password == "" {
		return nil, core.ErrBadRequest("password", "password must not be empty")
	}
	s.usersMu.Lock()
	defer s.usersMu.Unlock()
	for _, u := range s.users {
		if u.UserName == userName {
			return nil, core.ErrConflict("userName", "user %q already exists", userName)
		}
	}
	u := &core.UserRecord{
		UserID:       s.nextUserID,
		UserName:     userName,
		PasswordHash: hashPassword(userName, password),
		CreatedAt:    s.clock(),
	}
	s.nextUserID++
	s.users[u.UserID] = u
	// The per-user ownership sets on the pes/wfs shards are created lazily
	// by AddPE/AddWorkflow, so registration touches only this shard.
	s.markDirty(func(d *dirtyState) { d.users[u.UserID] = true })
	return u, nil
}

// Login validates credentials and mints a session token.
func (s *Store) Login(userName, password string) (*core.UserRecord, string, error) {
	s.simulateWAN()
	s.usersMu.Lock()
	defer s.usersMu.Unlock()
	for _, u := range s.users {
		if u.UserName == userName {
			if u.PasswordHash != hashPassword(userName, password) {
				return nil, "", core.ErrUnauthorized("invalid login credentials for %q", userName)
			}
			token := s.mintTokenLocked(u.UserID)
			return u, token, nil
		}
	}
	return nil, "", core.ErrUnauthorized("invalid login credentials for %q", userName)
}

func (s *Store) mintTokenLocked(userID int) string {
	raw := fmt.Sprintf("%d:%d:%d", userID, s.clock().UnixNano(), len(s.tokens))
	h := sha256.Sum256([]byte(raw))
	token := hex.EncodeToString(h[:16])
	s.tokens[token] = userID
	return token
}

// UserByName resolves a user name.
func (s *Store) UserByName(userName string) (*core.UserRecord, error) {
	s.simulateWAN()
	s.usersMu.RLock()
	defer s.usersMu.RUnlock()
	for _, u := range s.users {
		if u.UserName == userName {
			return u, nil
		}
	}
	return nil, core.ErrNotFound("user", "no such user %q", userName)
}

// Users lists all users (GET /auth/all).
func (s *Store) Users() []core.UserRecord {
	s.simulateWAN()
	s.usersMu.RLock()
	defer s.usersMu.RUnlock()
	out := make([]core.UserRecord, 0, len(s.users))
	for _, u := range s.users {
		out = append(out, *u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].UserID < out[j].UserID })
	return out
}

// userExists reports whether a user id is registered (a read on the users
// shard only — PE/workflow writers call this before taking their own
// shard's lock; users are never deleted, so the check cannot go stale).
func (s *Store) userExists(userID int) bool {
	s.usersMu.RLock()
	defer s.usersMu.RUnlock()
	_, ok := s.users[userID]
	return ok
}

// UserIDForToken resolves a session token.
func (s *Store) UserIDForToken(token string) (int, bool) {
	s.usersMu.RLock()
	defer s.usersMu.RUnlock()
	id, ok := s.tokens[token]
	return id, ok
}
