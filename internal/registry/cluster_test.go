package registry

import (
	"errors"
	"testing"

	"laminar/internal/core"
)

// The cluster write router pre-assigns globally unique record ids and
// pins them on the registration (AddPERequest.PEID), so every node can
// derive a record's ring owner from its id. These tests pin the explicit
// id contract on the store.

func TestAddPEHonorsExplicitID(t *testing.T) {
	s := NewStore()
	u := newUser(t, s, "ann")

	pe, err := s.AddPE(u.UserID, core.AddPERequest{PEID: 40, PEName: "Pinned", PECode: "c"})
	if err != nil {
		t.Fatal(err)
	}
	if pe.PEID != 40 {
		t.Fatalf("explicit id ignored: got %d, want 40", pe.PEID)
	}

	// The auto counter must advance past the pinned id, so a later
	// unpinned registration cannot collide with it.
	auto, err := s.AddPE(u.UserID, core.AddPERequest{PEName: "Auto", PECode: "c"})
	if err != nil {
		t.Fatal(err)
	}
	if auto.PEID != 41 {
		t.Fatalf("auto id after a pinned 40 is %d, want 41", auto.PEID)
	}

	// A taken id is a conflict, not a silent overwrite.
	if _, err := s.AddPE(u.UserID, core.AddPERequest{PEID: 40, PEName: "Clash", PECode: "c"}); err == nil {
		t.Fatal("pinning a taken id must conflict")
	} else {
		var apiErr *core.APIError
		if !errors.As(err, &apiErr) || apiErr.Code != 409 {
			t.Errorf("want a 409 APIError, got %v", err)
		}
	}

	// Negative pins are malformed.
	if _, err := s.AddPE(u.UserID, core.AddPERequest{PEID: -3, PEName: "Neg", PECode: "c"}); err == nil {
		t.Fatal("negative pinned id must be rejected")
	}

	// A lower unused pin still works and does not rewind the counter.
	low, err := s.AddPE(u.UserID, core.AddPERequest{PEID: 7, PEName: "Low", PECode: "c"})
	if err != nil {
		t.Fatal(err)
	}
	if low.PEID != 7 {
		t.Fatalf("low pin: got %d, want 7", low.PEID)
	}
	next, err := s.AddPE(u.UserID, core.AddPERequest{PEName: "Next", PECode: "c"})
	if err != nil {
		t.Fatal(err)
	}
	if next.PEID != 42 {
		t.Fatalf("counter rewound by a low pin: got %d, want 42", next.PEID)
	}
}

func TestAddWorkflowHonorsExplicitID(t *testing.T) {
	s := NewStore()
	u := newUser(t, s, "ann")

	wf, err := s.AddWorkflow(u.UserID, core.AddWorkflowRequest{WorkflowID: 9, WorkflowName: "W", EntryPoint: "w", WorkflowCode: "c"})
	if err != nil {
		t.Fatal(err)
	}
	if wf.WorkflowID != 9 {
		t.Fatalf("explicit id ignored: got %d, want 9", wf.WorkflowID)
	}
	auto, err := s.AddWorkflow(u.UserID, core.AddWorkflowRequest{WorkflowName: "W2", EntryPoint: "w2", WorkflowCode: "c"})
	if err != nil {
		t.Fatal(err)
	}
	if auto.WorkflowID != 10 {
		t.Fatalf("auto id after a pinned 9 is %d, want 10", auto.WorkflowID)
	}
	if _, err := s.AddWorkflow(u.UserID, core.AddWorkflowRequest{WorkflowID: 9, WorkflowName: "W3", EntryPoint: "w3", WorkflowCode: "c"}); err == nil {
		t.Fatal("pinning a taken workflow id must conflict")
	}
	if _, err := s.AddWorkflow(u.UserID, core.AddWorkflowRequest{WorkflowID: -1, WorkflowName: "W4", EntryPoint: "w4", WorkflowCode: "c"}); err == nil {
		t.Fatal("negative pinned workflow id must be rejected")
	}
}

// TestReadOnlyStoreRejectsEveryWrite pins the replica contract: every
// mutating entry point returns a 403 APIError while reads — including
// login and search — keep working.
func TestReadOnlyStoreRejectsEveryWrite(t *testing.T) {
	s := NewStore()
	u := newUser(t, s, "ann")
	pe := addPE(t, s, u.UserID, "P1")
	wf, err := s.AddWorkflow(u.UserID, core.AddWorkflowRequest{WorkflowName: "W", EntryPoint: "w", WorkflowCode: "c"})
	if err != nil {
		t.Fatal(err)
	}

	s.SetReadOnly(true)
	if !s.ReadOnly() {
		t.Fatal("ReadOnly() = false after SetReadOnly(true)")
	}

	wantForbidden := func(label string, err error) {
		t.Helper()
		if err == nil {
			t.Fatalf("%s: accepted on a read-only store", label)
		}
		var apiErr *core.APIError
		if !errors.As(err, &apiErr) || apiErr.Code != 403 {
			t.Errorf("%s: got %v, want a 403 APIError", label, err)
		}
	}
	_, err = s.RegisterUser("bob", "pw")
	wantForbidden("RegisterUser", err)
	_, err = s.AddPE(u.UserID, core.AddPERequest{PEName: "P2", PECode: "c"})
	wantForbidden("AddPE", err)
	wantForbidden("RemovePE", s.RemovePE(u.UserID, pe.PEID))
	wantForbidden("RemovePEByName", s.RemovePEByName(u.UserID, "P1"))
	_, err = s.AddWorkflow(u.UserID, core.AddWorkflowRequest{WorkflowName: "W2", EntryPoint: "w2", WorkflowCode: "c"})
	wantForbidden("AddWorkflow", err)
	wantForbidden("RemoveWorkflow", s.RemoveWorkflow(u.UserID, wf.WorkflowID))
	wantForbidden("AssociatePE", s.AssociatePE(u.UserID, wf.WorkflowID, pe.PEID))

	// Reads still serve.
	if _, _, err := s.Login("ann", "pw-ann"); err != nil {
		t.Errorf("login on a read-only store: %v", err)
	}
	if got, err := s.PEByID(u.UserID, pe.PEID); err != nil || got.PEName != "P1" {
		t.Errorf("read on a read-only store: %v %v", got, err)
	}
	if hits := s.SemanticSearch(u.UserID, []float32{4, 5, 6}, 5); len(hits) == 0 {
		t.Error("search on a read-only store returned nothing")
	}

	// And the switch flips back (tests and failover promotions need it).
	s.SetReadOnly(false)
	if _, err := s.AddPE(u.UserID, core.AddPERequest{PEName: "P2", PECode: "c"}); err != nil {
		t.Errorf("write after SetReadOnly(false): %v", err)
	}
}
