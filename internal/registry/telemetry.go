package registry

import (
	"laminar/internal/index"
	"laminar/internal/telemetry"
)

// Telemetry wiring. The registry exports two metric groups (all names
// documented in docs/operations.md, cross-validated by `make
// metrics-smoke`):
//
//   - persistence: save/load counters, error counters and duration
//     histograms, plus live record-count gauges read at scrape time;
//   - per-index query/retrain instruments, partitioned by an "index"
//     label (desc | code | workflow) and installed into every Clustered
//     index the store creates — including the fresh ones a rebuild,
//     restore or ConfigureIndex swaps in later.

// indexLabels are the "index" label values, in the store's canonical
// desc/code/workflow order.
var indexLabels = [3]string{"desc", "code", "workflow"}

// storeMetrics holds the registry's instruments; nil until SetTelemetry.
type storeMetrics struct {
	saves       *telemetry.Counter
	saveErrors  *telemetry.Counter
	saveSeconds *telemetry.Histogram
	loads       *telemetry.Counter
	loadErrors  *telemetry.Counter
	loadSeconds *telemetry.Histogram

	// delta-journal instruments: incremental saves, their failures, the
	// full-save compactions the policy triggers, and save latency.
	deltaSaves       *telemetry.Counter
	deltaSaveErrors  *telemetry.Counter
	deltaSaveSeconds *telemetry.Histogram
	compactions      *telemetry.Counter

	// live-ingestion instruments, shared by every Ingestor attached to the
	// store (watcher events in, batches applied, failures).
	ingestEvents       *telemetry.CounterVec
	ingestBatches      *telemetry.Counter
	ingestBatchSeconds *telemetry.Histogram
	ingestApplied      *telemetry.CounterVec
	ingestErrors       *telemetry.Counter

	// hybrid-retrieval instruments: the BM25 lexical leg and the optional
	// cross-encoder rerank stage.
	lexicalSearches *telemetry.Counter
	lexicalSeconds  *telemetry.Histogram
	rerankSearches  *telemetry.Counter
	rerankSeconds   *telemetry.Histogram
	rerankPool      *telemetry.Histogram

	// perIndex maps an index label to the instrument set installed into
	// that index (shared family, curried label).
	perIndex map[string]*index.ClusteredMetrics
}

// SetTelemetry registers the store's metrics on t and installs the
// per-index instruments into the live vector indexes. Call it once per
// store, at wiring time — registering the same store on the same
// telemetry registry twice panics (duplicate metric names), which is the
// wiring bug it should be.
func (s *Store) SetTelemetry(t *telemetry.Registry) {
	m := &storeMetrics{
		saves: t.Counter("laminar_registry_saves_total",
			"Successful registry snapshot saves."),
		saveErrors: t.Counter("laminar_registry_save_errors_total",
			"Registry snapshot saves that returned an error."),
		saveSeconds: t.Histogram("laminar_registry_save_seconds",
			"Wall-clock duration of successful registry saves.", telemetry.LatencyBuckets()),
		loads: t.Counter("laminar_registry_loads_total",
			"Successful registry snapshot loads."),
		loadErrors: t.Counter("laminar_registry_load_errors_total",
			"Registry snapshot loads that returned an error."),
		loadSeconds: t.Histogram("laminar_registry_load_seconds",
			"Wall-clock duration of successful registry loads.", telemetry.LatencyBuckets()),
		deltaSaves: t.Counter("laminar_registry_delta_saves_total",
			"Successful incremental delta-journal saves."),
		deltaSaveErrors: t.Counter("laminar_registry_delta_save_errors_total",
			"Delta-journal saves that returned an error."),
		deltaSaveSeconds: t.Histogram("laminar_registry_delta_save_seconds",
			"Wall-clock duration of successful delta-journal saves.", telemetry.LatencyBuckets()),
		compactions: t.Counter("laminar_registry_delta_compactions_total",
			"Delta chains compacted into a full snapshot by the save policy."),
		ingestEvents: t.CounterVec("laminar_ingest_events_total",
			"Ingestion events accepted by the live ingestor.", "kind"),
		ingestBatches: t.Counter("laminar_ingest_batches_total",
			"Coalesced ingestion batches applied to the registry."),
		ingestBatchSeconds: t.Histogram("laminar_ingest_batch_seconds",
			"Wall-clock duration of applied ingestion batches.", telemetry.LatencyBuckets()),
		ingestApplied: t.CounterVec("laminar_ingest_applied_total",
			"Registry mutations applied by the live ingestor.", "kind"),
		ingestErrors: t.Counter("laminar_ingest_errors_total",
			"Ingestion events whose registry mutation failed."),
		lexicalSearches: t.Counter("laminar_lexical_searches_total",
			"BM25 lexical-leg retrievals served by hybrid search."),
		lexicalSeconds: t.Histogram("laminar_lexical_search_seconds",
			"Wall-clock duration of BM25 lexical-leg retrievals.", telemetry.LatencyBuckets()),
		rerankSearches: t.Counter("laminar_rerank_searches_total",
			"Cross-encoder rerank stages executed by hybrid search."),
		rerankSeconds: t.Histogram("laminar_rerank_seconds",
			"Wall-clock duration of cross-encoder rerank stages.", telemetry.LatencyBuckets()),
		rerankPool: t.Histogram("laminar_rerank_pool_size",
			"Fused candidate-pool size entering the rerank stage.", telemetry.CountBuckets()),
		perIndex: map[string]*index.ClusteredMetrics{},
	}
	probes := t.HistogramVec("laminar_index_probe_shards",
		"Shards scanned per vector-index query.", telemetry.CountBuckets(), "index")
	scanned := t.HistogramVec("laminar_index_scanned_vectors",
		"Candidate vectors scored per vector-index query.", telemetry.CountBuckets(), "index")
	stops := t.CounterVec("laminar_index_query_stops_total",
		"Vector-index queries by the rule that ended their shard scan.", "index", "rule")
	retrains := t.CounterVec("laminar_index_retrains_total",
		"Completed full index retrains.", "index")
	retrainSeconds := t.HistogramVec("laminar_index_retrain_seconds",
		"Wall-clock duration of completed index retrains.", telemetry.LatencyBuckets(), "index")
	quantizedScans := t.CounterVec("laminar_index_quantized_scans_total",
		"Vector-index queries whose candidate pass scored int8 quantized codes.", "index")
	batchSize := t.HistogramVec("laminar_index_batch_size",
		"Queries per batched vector-index search call.", telemetry.CountBuckets(), "index")
	for _, label := range indexLabels {
		m.perIndex[label] = &index.ClusteredMetrics{
			Probes:         probes.With(label),
			Scanned:        scanned.With(label),
			Stops:          stops.Curry(label),
			Retrains:       retrains.With(label),
			RetrainSeconds: retrainSeconds.With(label),
			QuantizedScans: quantizedScans.With(label),
			BatchSize:      batchSize.With(label),
		}
	}

	t.GaugeFunc("laminar_registry_delta_segments", "Delta-journal segments pending compaction.", func() float64 {
		return float64(s.chainSegments.Load())
	})
	t.GaugeFunc("laminar_registry_users", "Registered user accounts.", func() float64 {
		s.usersMu.RLock()
		defer s.usersMu.RUnlock()
		return float64(len(s.users))
	})
	t.GaugeFunc("laminar_registry_pes", "Registered Processing Elements.", func() float64 {
		s.pesMu.RLock()
		defer s.pesMu.RUnlock()
		return float64(len(s.pes))
	})
	t.GaugeFunc("laminar_registry_workflows", "Registered workflows.", func() float64 {
		s.wfsMu.RLock()
		defer s.wfsMu.RUnlock()
		return float64(len(s.workflows))
	})
	t.GaugeFunc("laminar_lexical_docs", "Documents in the BM25 lexical indexes (PEs + workflows).", func() float64 {
		docs, _ := s.LexicalStats()
		return float64(docs)
	})
	t.GaugeFunc("laminar_lexical_terms", "Distinct terms with live postings in the BM25 lexical indexes.", func() float64 {
		_, terms := s.LexicalStats()
		return float64(terms)
	})

	s.idxMu.Lock()
	s.metrics = m
	s.applyIndexMetricsLocked()
	s.idxMu.Unlock()
}

// Instrumented reports whether SetTelemetry has run. The server checks it
// so an owner that instrumented the store early (the façade does, before
// loading, so the startup load is counted) is not instrumented twice.
func (s *Store) Instrumented() bool {
	s.idxMu.RLock()
	defer s.idxMu.RUnlock()
	return s.metrics != nil
}

// applyIndexMetricsLocked installs the per-index instruments into every
// live index that supports them (the Flat index exports nothing — its
// cost model is a constant full scan). Caller holds idxMu.W. Rebuilds,
// restores and ConfigureIndex call this after swapping in fresh indexes,
// so the instruments survive index replacement.
func (s *Store) applyIndexMetricsLocked() {
	if s.metrics == nil {
		return
	}
	for i, idx := range []index.VectorIndex{s.descIndex, s.codeIndex, s.wfIndex} {
		if setter, ok := idx.(interface{ SetMetrics(*index.ClusteredMetrics) }); ok {
			setter.SetMetrics(s.metrics.perIndex[indexLabels[i]])
		}
	}
}
