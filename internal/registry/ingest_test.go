package registry

import (
	"fmt"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"laminar/internal/core"
)

func upsertReq(name, code string) core.AddPERequest {
	return core.AddPERequest{
		PEName: name, Description: "desc " + name, PECode: code,
		CodeEmbedding: []float32{1, 2, 3}, DescEmbedding: []float32{4, 5, 6},
	}
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestIngestorCoalescesSaveStorm models an editor save storm: many
// versions of one PE inside the debounce window must apply as one upsert
// carrying the final content.
func TestIngestorCoalescesSaveStorm(t *testing.T) {
	s := NewStore()
	u := newUser(t, s, "ann")
	ing := s.NewIngestor(IngestorOptions{Debounce: time.Hour}) // flush drives the apply
	defer ing.Close()

	for i := 0; i < 50; i++ {
		ing.Upsert(u.UserID, upsertReq("Churned", fmt.Sprintf("v%d", i)))
	}
	if err := ing.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	pe, err := s.PEByName(u.UserID, "Churned")
	if err != nil || pe.PECode != "v49" {
		t.Fatalf("pe = %+v, %v; want final version v49", pe, err)
	}
	if got := len(s.PEsForUser(u.UserID)); got != 1 {
		t.Fatalf("%d PEs after coalesced storm, want 1", got)
	}
	// Upsert kept the identity stable across the storm.
	if pe.PEID != 1 {
		t.Fatalf("coalesced upsert minted a new id: %d", pe.PEID)
	}
}

// TestIngestorRemoveWinsOverEarlierUpsert: the last event for a name wins
// the coalescing slot, so an upsert followed by a remove leaves nothing.
func TestIngestorRemoveWinsOverEarlierUpsert(t *testing.T) {
	s := NewStore()
	u := newUser(t, s, "ann")
	ing := s.NewIngestor(IngestorOptions{Debounce: time.Hour})
	defer ing.Close()

	ing.Upsert(u.UserID, upsertReq("Fleeting", "v1"))
	ing.Remove(u.UserID, "Fleeting")
	if err := ing.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if _, err := s.PEByName(u.UserID, "Fleeting"); err == nil {
		t.Fatal("removed PE still present")
	}
	// Removing something that never existed is the natural end state of a
	// churned file, not an error.
	ing.Remove(u.UserID, "NeverExisted")
	if err := ing.Flush(); err != nil {
		t.Fatalf("flush after missing remove: %v", err)
	}
}

// TestIngestorDebounceApplies verifies the timer path: no Flush, the batch
// lands on its own after the debounce window.
func TestIngestorDebounceApplies(t *testing.T) {
	s := NewStore()
	u := newUser(t, s, "ann")
	ing := s.NewIngestor(IngestorOptions{Debounce: 5 * time.Millisecond})
	defer ing.Close()

	ing.Upsert(u.UserID, upsertReq("Timed", "v1"))
	waitFor(t, "debounced apply", func() bool {
		_, err := s.PEByName(u.UserID, "Timed")
		return err == nil
	})
}

// TestIngestorMaxBatchAppliesEarly verifies the memory bound: the batch
// applies as soon as MaxBatch distinct records are pending, without
// waiting out the debounce.
func TestIngestorMaxBatchAppliesEarly(t *testing.T) {
	s := NewStore()
	u := newUser(t, s, "ann")
	ing := s.NewIngestor(IngestorOptions{Debounce: time.Hour, MaxBatch: 3})
	defer ing.Close()

	for i := 0; i < 3; i++ {
		ing.Upsert(u.UserID, upsertReq(fmt.Sprintf("Early%d", i), "v1"))
	}
	waitFor(t, "max-batch apply", func() bool {
		return len(s.PEsForUser(u.UserID)) == 3
	})
}

// TestIngestorJournalsBatches wires SavePath: each applied batch lands as
// a delta segment chained to the base snapshot, and a cold reload sees
// the churned state.
func TestIngestorJournalsBatches(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "reg.json")
	s := NewStore()
	u := newUser(t, s, "ann")
	addPE(t, s, u.UserID, "Stable")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}

	ing := s.NewIngestor(IngestorOptions{Debounce: time.Hour, SavePath: path})
	ing.Upsert(u.UserID, upsertReq("Live", "v1"))
	if err := ing.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if segs, bytes := s.DeltaChainInfo(); segs != 1 || bytes <= 0 {
		t.Fatalf("chain = %d segments, %d bytes; want one journaled batch", segs, bytes)
	}
	if err := ing.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	s2 := NewStore()
	if err := s2.Load(path); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.PEByName(u.UserID, "Live"); err != nil {
		t.Fatalf("journaled PE missing after reload: %v", err)
	}
	if _, err := s2.PEByName(u.UserID, "Stable"); err != nil {
		t.Fatalf("base PE missing after reload: %v", err)
	}
}

// TestIngestorCloseDrains: events enqueued before Close are applied by it,
// and the worker goroutine is gone afterwards.
func TestIngestorCloseDrains(t *testing.T) {
	s := NewStore()
	u := newUser(t, s, "ann")

	before := runtime.NumGoroutine()
	ing := s.NewIngestor(IngestorOptions{Debounce: time.Hour})
	ing.Upsert(u.UserID, upsertReq("LastGasp", "v1"))
	if err := ing.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := s.PEByName(u.UserID, "LastGasp"); err != nil {
		t.Fatalf("event enqueued before Close was dropped: %v", err)
	}
	// Close is idempotent, and the API stays callable after it.
	if err := ing.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := ing.Flush(); err != nil {
		t.Fatalf("flush after close: %v", err)
	}
	ing.Upsert(u.UserID, upsertReq("Ghost", "v1")) // dropped, must not panic
	waitFor(t, "worker goroutine exit", func() bool {
		return runtime.NumGoroutine() <= before
	})
}

// TestIngestorSurfacesApplyErrors: a batch whose apply fails reports the
// first error through Flush.
func TestIngestorSurfacesApplyErrors(t *testing.T) {
	s := NewStore()
	ing := s.NewIngestor(IngestorOptions{Debounce: time.Hour})
	defer ing.Close()

	// No such user: UpsertPE fails.
	ing.Upsert(999, upsertReq("Orphan", "v1"))
	if err := ing.Flush(); err == nil {
		t.Fatal("flush swallowed the apply error")
	}
	// Unknown event kinds are rejected, not silently skipped.
	ing.Enqueue(IngestEvent{Kind: "rename", UserID: 1, Req: core.AddPERequest{PEName: "x"}})
	if err := ing.Flush(); err == nil {
		t.Fatal("unknown event kind accepted")
	}
}
