package registry

import (
	"path/filepath"
	"testing"

	"laminar/internal/core"
	"laminar/internal/search"
)

// addLexPE registers a PE whose description and code carry real text (and
// real embeddings), so both retrieval legs have something to find.
func addLexPE(t *testing.T, s *Store, userID int, name, desc, code string) *core.PERecord {
	t.Helper()
	pe, err := s.AddPE(userID, core.AddPERequest{
		PEName:        name,
		Description:   desc,
		PECode:        code,
		CodeEmbedding: search.EmbedCode(code),
		DescEmbedding: search.EmbedDescription(desc),
	})
	if err != nil {
		t.Fatal(err)
	}
	return pe
}

func TestHybridSearchFindsExactIdentifier(t *testing.T) {
	s := NewStore()
	u := newUser(t, s, "hy")
	// Descriptions are near-identical so the ANN leg cannot tell the PEs
	// apart; the unique identifier lives only in the code.
	var want *core.PERecord
	for i, ident := range []string{
		"photon_events_filter_0042", "photon_events_filter_0043",
		"photon_events_filter_0044", "photon_events_filter_0045",
	} {
		pe := addLexPE(t, s, u.UserID, ident,
			"a PE that filters photon events by threshold",
			"def "+ident+"(stream):\n    return stream")
		if i == 0 {
			want = pe
		}
	}
	query := "photon_events_filter_0042"
	hits := s.HybridSearch(u.UserID, HybridQuery{
		Text:      query,
		Embedding: search.EmbedDescription(query),
		Type:      core.SearchPEs,
		Limit:     2,
	})
	if len(hits) == 0 || hits[0].ID != want.PEID {
		t.Fatalf("exact-identifier query missed its PE: %+v (want id %d)", hits, want.PEID)
	}
}

func TestHybridSearchDegradesPerLeg(t *testing.T) {
	s := NewStore()
	u := newUser(t, s, "deg")
	pe := addLexPE(t, s, u.UserID, "aggWindow",
		"a PE that aggregates window counts", "def agg_window(s): pass")

	// No embedding: lexical-only still answers.
	hits := s.HybridSearch(u.UserID, HybridQuery{
		Text: "aggregates window counts", Type: core.SearchPEs, Limit: 5,
	})
	if len(hits) != 1 || hits[0].ID != pe.PEID {
		t.Fatalf("lexical-only leg failed: %+v", hits)
	}
	// No text: ANN-only still answers.
	hits = s.HybridSearch(u.UserID, HybridQuery{
		Embedding: search.EmbedDescription("aggregates window counts"),
		Type:      core.SearchPEs, Limit: 5,
	})
	if len(hits) != 1 || hits[0].ID != pe.PEID {
		t.Fatalf("ANN-only leg failed: %+v", hits)
	}
	// Neither: no hits, no panic.
	if hits = s.HybridSearch(u.UserID, HybridQuery{Type: core.SearchPEs, Limit: 5}); hits != nil {
		t.Fatalf("empty query returned %+v", hits)
	}
}

func TestHybridSearchBothKindsAndVisibility(t *testing.T) {
	s := NewStore()
	u := newUser(t, s, "both")
	other := newUser(t, s, "other")
	pe := addLexPE(t, s, u.UserID, "renderGauge",
		"a PE that renders gauge widgets", "def render_gauge(s): pass")
	// A PE visible only to the other user must never surface.
	addLexPE(t, s, other.UserID, "renderGaugeSecret",
		"a PE that renders gauge widgets secretly", "def render_gauge_secret(s): pass")
	wf, err := s.AddWorkflow(u.UserID, core.AddWorkflowRequest{
		WorkflowName: "gaugeFlow", EntryPoint: "runGaugeFlow",
		Description:   "a workflow that renders gauge dashboards",
		WorkflowCode:  "code",
		DescEmbedding: search.EmbedDescription("a workflow that renders gauge dashboards"),
	})
	if err != nil {
		t.Fatal(err)
	}
	hits := s.HybridSearch(u.UserID, HybridQuery{
		Text:      "renders gauge",
		Embedding: search.EmbedDescription("renders gauge"),
		Type:      core.SearchBoth,
		Limit:     10,
	})
	var sawPE, sawWF bool
	for _, h := range hits {
		if h.Kind == "pe" && h.ID == pe.PEID {
			sawPE = true
		}
		if h.Kind == "workflow" && h.ID == wf.WorkflowID {
			sawWF = true
		}
		if h.Kind == "pe" && h.ID != pe.PEID {
			t.Fatalf("foreign user's PE leaked into results: %+v", hits)
		}
	}
	if !sawPE || !sawWF {
		t.Fatalf("SearchBoth missed a kind (pe=%v wf=%v): %+v", sawPE, sawWF, hits)
	}
}

func TestHybridSearchRerankedMode(t *testing.T) {
	s := NewStore()
	u := newUser(t, s, "rr")
	want := addLexPE(t, s, u.UserID, "filterPhotons",
		"a PE that filters photon events by threshold", "def filter_photons(s): pass")
	addLexPE(t, s, u.UserID, "renderDash",
		"a PE that renders dashboard widgets", "def render_dash(s): pass")
	addLexPE(t, s, u.UserID, "aggCounts",
		"a PE that aggregates window counts", "def agg_counts(s): pass")
	q := "filter photon events"
	hits := s.HybridSearch(u.UserID, HybridQuery{
		Text:      q,
		Embedding: search.EmbedDescription(q),
		Type:      core.SearchPEs,
		Limit:     3,
		Rerank:    true,
	})
	if len(hits) == 0 || hits[0].ID != want.PEID {
		t.Fatalf("reranked query missed the matching PE: %+v", hits)
	}
	// Determinism across repeated calls.
	again := s.HybridSearch(u.UserID, HybridQuery{
		Text: q, Embedding: search.EmbedDescription(q),
		Type: core.SearchPEs, Limit: 3, Rerank: true,
	})
	if len(again) != len(hits) {
		t.Fatalf("rerank nondeterministic: %d vs %d hits", len(again), len(hits))
	}
	for i := range hits {
		if hits[i].ID != again[i].ID {
			t.Fatalf("rerank nondeterministic:\n%+v\n%+v", hits, again)
		}
	}
}

func TestLexicalIndexMaintainedOnRemove(t *testing.T) {
	s := NewStore()
	u := newUser(t, s, "rm")
	pe := addLexPE(t, s, u.UserID, "uniqueSprocket",
		"a PE that sprockets uniquely", "def unique_sprocket(s): pass")
	wf, err := s.AddWorkflow(u.UserID, core.AddWorkflowRequest{
		WorkflowName: "sprocketFlow", EntryPoint: "runSprockets",
		Description: "a workflow of sprockets", WorkflowCode: "code",
	})
	if err != nil {
		t.Fatal(err)
	}
	if docs, _ := s.LexicalStats(); docs != 2 {
		t.Fatalf("LexicalStats docs = %d, want 2", docs)
	}
	if err := s.RemovePE(u.UserID, pe.PEID); err != nil {
		t.Fatal(err)
	}
	if err := s.RemoveWorkflow(u.UserID, wf.WorkflowID); err != nil {
		t.Fatal(err)
	}
	if docs, _ := s.LexicalStats(); docs != 0 {
		t.Fatalf("LexicalStats docs = %d after removals, want 0", docs)
	}
	if hits := s.HybridSearch(u.UserID, HybridQuery{
		Text: "sprocket", Type: core.SearchBoth, Limit: 5,
	}); len(hits) != 0 {
		t.Fatalf("removed records still lexically retrievable: %+v", hits)
	}
}

func TestLexicalSnapshotRoundTripThroughSave(t *testing.T) {
	s := NewStore()
	u := newUser(t, s, "persist")
	addLexPE(t, s, u.UserID, "photonFilter",
		"a PE that filters photon events", "def photon_filter(s): pass")
	addLexPE(t, s, u.UserID, "countAgg",
		"a PE that aggregates counts", "def count_agg(s): pass")
	path := filepath.Join(t.TempDir(), "registry.json")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	fresh := NewStore()
	if err := fresh.Load(path); err != nil {
		t.Fatal(err)
	}
	// The restored store must answer lexical queries identically.
	for _, q := range []string{"photon filter", "photon_filter", "aggregates counts"} {
		a := s.HybridSearch(u.UserID, HybridQuery{Text: q, Type: core.SearchPEs, Limit: 10})
		b := fresh.HybridSearch(u.UserID, HybridQuery{Text: q, Type: core.SearchPEs, Limit: 10})
		if len(a) != len(b) {
			t.Fatalf("query %q: %d vs %d hits after reload", q, len(a), len(b))
		}
		for i := range a {
			if a[i].ID != b[i].ID || a[i].Score != b[i].Score {
				t.Fatalf("query %q hit %d differs after reload: %+v vs %+v", q, i, a[i], b[i])
			}
		}
	}
	if docs, terms := fresh.LexicalStats(); docs != 2 || terms == 0 {
		t.Fatalf("restored lexical stats docs=%d terms=%d", docs, terms)
	}
}
