package registry

import (
	"laminar/internal/core"
	"laminar/internal/index"
	"laminar/internal/search"
)

// Vector search. Probes hold only the read lock of the shard whose records
// they resolve (pes for PE queries, wfs for workflow queries) — the index
// pointer itself is copied under a momentary idxMu.R — so concurrent
// searches run fully in parallel and a Save's marshal/IO phase never
// blocks them.

// SemanticSearch ranks the user's visible PEs against a description-
// embedding query via the incrementally maintained description index
// (Section 4.2). Unlike the historic path there is no per-query snapshot of
// every record: the index answers the top-k probe directly.
func (s *Store) SemanticSearch(userID int, queryEmbedding []float32, limit int) []core.SearchHit {
	return s.indexSearch(userID, queryEmbedding, limit, false)
}

// CompletionSearch ranks the user's visible PEs against a code-embedding
// query via the incrementally maintained code index (Section 4.3).
func (s *Store) CompletionSearch(userID int, queryEmbedding []float32, limit int) []core.SearchHit {
	return s.indexSearch(userID, queryEmbedding, limit, true)
}

// SemanticSearchWorkflows ranks the user's visible workflows against a
// description-embedding query via the workflow index — the paper only
// indexes PEs; this makes SearchBoth semantic for both registry kinds.
func (s *Store) SemanticSearchWorkflows(userID int, queryEmbedding []float32, limit int) []core.SearchHit {
	s.simulateWAN()
	if limit <= 0 {
		limit = search.DefaultLimit
	}
	s.wfsMu.RLock()
	defer s.wfsMu.RUnlock()
	return s.wfHitsLocked(userID, queryEmbedding, limit)
}

// SemanticSearchBoth probes the PE-description and workflow indexes in a
// single registry round trip (one simulated WAN hop) and merges the two
// score-descending lists — the SearchBoth serving path must not pay the
// remote-registry latency twice.
func (s *Store) SemanticSearchBoth(userID int, queryEmbedding []float32, limit int) []core.SearchHit {
	s.simulateWAN()
	if limit <= 0 {
		limit = search.DefaultLimit
	}
	s.pesMu.RLock()
	defer s.pesMu.RUnlock()
	s.wfsMu.RLock()
	defer s.wfsMu.RUnlock()
	return search.MergeRanked(
		s.peHitsLocked(userID, queryEmbedding, limit, false),
		s.wfHitsLocked(userID, queryEmbedding, limit),
		limit)
}

// SemanticSearchBatch answers many description-embedding queries in one
// registry round trip (a single simulated WAN hop and one lock
// acquisition), letting the index amortize probe work across the batch.
// Each result list is identical to the corresponding SemanticSearch call.
func (s *Store) SemanticSearchBatch(userID int, queryEmbeddings [][]float32, limit int) [][]core.SearchHit {
	return s.indexSearchBatch(userID, queryEmbeddings, limit, false)
}

// CompletionSearchBatch is SemanticSearchBatch over the code index.
func (s *Store) CompletionSearchBatch(userID int, queryEmbeddings [][]float32, limit int) [][]core.SearchHit {
	return s.indexSearchBatch(userID, queryEmbeddings, limit, true)
}

func (s *Store) indexSearchBatch(userID int, queries [][]float32, limit int, code bool) [][]core.SearchHit {
	s.simulateWAN()
	if limit <= 0 {
		limit = search.DefaultLimit
	}
	s.pesMu.RLock()
	defer s.pesMu.RUnlock()
	desc, codeIdx, _ := s.indexes()
	idx := desc
	if code {
		idx = codeIdx
	}
	visible := s.userPEs[userID]
	batches := index.SearchBatchOf(idx, queries, limit, func(id int) bool { return visible[id] })
	out := make([][]core.SearchHit, len(batches))
	for i, cands := range batches {
		out[i] = search.HitsFromCandidates(cands, func(id int) (core.PERecord, bool) {
			if pe := s.pes[id]; pe != nil {
				return *pe, true
			}
			return core.PERecord{}, false
		})
	}
	return out
}

func (s *Store) indexSearch(userID int, query []float32, limit int, code bool) []core.SearchHit {
	s.simulateWAN()
	if limit <= 0 {
		limit = search.DefaultLimit
	}
	s.pesMu.RLock()
	defer s.pesMu.RUnlock()
	return s.peHitsLocked(userID, query, limit, code)
}

// peHitsLocked probes a PE index (description or code embeddings) under the
// held pes read lock and resolves the candidates to hits. The lock covers
// the probe because the visibility filter reads the live ownership set.
func (s *Store) peHitsLocked(userID int, query []float32, limit int, code bool) []core.SearchHit {
	desc, codeIdx, _ := s.indexes()
	idx := desc
	if code {
		idx = codeIdx
	}
	visible := s.userPEs[userID]
	cands := idx.Search(query, limit, func(id int) bool { return visible[id] })
	return search.HitsFromCandidates(cands, func(id int) (core.PERecord, bool) {
		if pe := s.pes[id]; pe != nil {
			return *pe, true
		}
		return core.PERecord{}, false
	})
}

// wfHitsLocked probes the workflow index under the held wfs read lock.
func (s *Store) wfHitsLocked(userID int, query []float32, limit int) []core.SearchHit {
	_, _, wfIdx := s.indexes()
	visible := s.userWorkflows[userID]
	cands := wfIdx.Search(query, limit, func(id int) bool { return visible[id] })
	return search.WorkflowHitsFromCandidates(cands, func(id int) (core.WorkflowRecord, bool) {
		if wf := s.workflows[id]; wf != nil {
			return *wf, true
		}
		return core.WorkflowRecord{}, false
	})
}
