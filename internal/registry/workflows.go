package registry

import (
	"sort"
	"strings"

	"laminar/internal/core"
)

// Workflow operations live on the wfs shard; the ones that validate or
// resolve PE ids additionally take the pes shard read lock, always in the
// pes → wfs order.

// AddWorkflow registers a workflow, associating any referenced PEs.
func (s *Store) AddWorkflow(userID int, req core.AddWorkflowRequest) (*core.WorkflowRecord, error) {
	s.simulateWAN()
	if err := s.checkWritable(); err != nil {
		return nil, err
	}
	if req.WorkflowID < 0 {
		return nil, core.ErrBadRequest("workflowId", "workflowId must be positive when set")
	}
	if strings.TrimSpace(req.EntryPoint) == "" {
		return nil, core.ErrBadRequest("entryPoint", "workflow entry point must not be empty")
	}
	if req.WorkflowCode == "" {
		return nil, core.ErrBadRequest("workflowCode", "workflow code must not be empty")
	}
	if !s.userExists(userID) {
		return nil, core.ErrNotFound("user", "no such user id %d", userID)
	}
	// The pes read lock is held across the whole insert so the PEIDs
	// validated below cannot be deleted out from under the association.
	s.pesMu.RLock()
	defer s.pesMu.RUnlock()
	s.wfsMu.Lock()
	defer s.wfsMu.Unlock()
	if s.userWorkflows[userID] == nil {
		s.userWorkflows[userID] = map[int]bool{}
	}
	for _, wf := range s.workflows {
		if wf.EntryPoint == req.EntryPoint {
			s.userWorkflows[userID][wf.WorkflowID] = true
			// Adopt an embedding the stored record lacks (a record predating
			// workflow embeddings, re-registered by a newer client) so the
			// workflow becomes semantically searchable instead of silently
			// dropping what the client computed.
			adopted := false
			if len(wf.DescEmbedding) == 0 && len(req.DescEmbedding) > 0 {
				wf.DescEmbedding = append([]float32(nil), req.DescEmbedding...)
				s.indexWorkflow(wf.WorkflowID, wf)
				adopted = true
			}
			wfID := wf.WorkflowID
			s.markDirty(func(d *dirtyState) {
				if adopted {
					d.wfs[wfID] = true
				}
				d.ownerWFs[userID] = true
			})
			return wf, nil
		}
	}
	// A pinned id (cluster write routing — see AddPE) is honored verbatim;
	// a collision is a conflict, never a reassignment.
	id := s.nextWorkflowID
	if req.WorkflowID > 0 {
		if _, taken := s.workflows[req.WorkflowID]; taken {
			return nil, core.ErrConflict("workflowId", "workflow id %d is already registered", req.WorkflowID)
		}
		id = req.WorkflowID
	}
	wf := &core.WorkflowRecord{
		WorkflowID:    id,
		WorkflowName:  req.WorkflowName,
		EntryPoint:    req.EntryPoint,
		Description:   req.Description,
		WorkflowCode:  req.WorkflowCode,
		DescEmbedding: append([]float32(nil), req.DescEmbedding...),
		CreatedAt:     s.clock(),
	}
	if wf.WorkflowID >= s.nextWorkflowID {
		s.nextWorkflowID = wf.WorkflowID + 1
	}
	s.workflows[wf.WorkflowID] = wf
	s.indexWorkflow(wf.WorkflowID, wf)
	s.userWorkflows[userID][wf.WorkflowID] = true
	s.workflowPEs[wf.WorkflowID] = map[int]bool{}
	for _, peID := range req.PEIDs {
		if _, ok := s.pes[peID]; ok {
			s.workflowPEs[wf.WorkflowID][peID] = true
		}
	}
	s.markDirty(func(d *dirtyState) {
		d.wfs[wf.WorkflowID] = true
		d.ownerWFs[userID] = true
		d.assocWFs[wf.WorkflowID] = true
	})
	return wf, nil
}

// WorkflowByID fetches a user's workflow by id.
func (s *Store) WorkflowByID(userID, wfID int) (*core.WorkflowRecord, error) {
	s.simulateWAN()
	s.wfsMu.RLock()
	defer s.wfsMu.RUnlock()
	wf, ok := s.workflows[wfID]
	if !ok {
		return nil, core.ErrNotFound("workflowId", "no workflow with id %d", wfID)
	}
	if !s.userWorkflows[userID][wfID] {
		return nil, core.ErrNotFound("workflowId", "workflow %d is not registered to this user", wfID)
	}
	return wf, nil
}

// WorkflowByName fetches a user's workflow by its entry point name.
func (s *Store) WorkflowByName(userID int, name string) (*core.WorkflowRecord, error) {
	s.simulateWAN()
	s.wfsMu.RLock()
	defer s.wfsMu.RUnlock()
	for id := range s.userWorkflows[userID] {
		if wf := s.workflows[id]; wf != nil && (wf.EntryPoint == name || wf.WorkflowName == name) {
			return wf, nil
		}
	}
	return nil, core.ErrNotFound("workflowName", "no workflow named %q for this user", name)
}

// WorkflowsForUser lists the user's workflows ordered by id.
func (s *Store) WorkflowsForUser(userID int) []core.WorkflowRecord {
	s.simulateWAN()
	s.wfsMu.RLock()
	defer s.wfsMu.RUnlock()
	var out []core.WorkflowRecord
	for id := range s.userWorkflows[userID] {
		if wf := s.workflows[id]; wf != nil {
			out = append(out, *wf)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].WorkflowID < out[j].WorkflowID })
	return out
}

// RemoveWorkflow detaches a workflow from the user, deleting it when
// orphaned.
func (s *Store) RemoveWorkflow(userID, wfID int) error {
	s.simulateWAN()
	if err := s.checkWritable(); err != nil {
		return err
	}
	s.wfsMu.Lock()
	defer s.wfsMu.Unlock()
	if _, ok := s.workflows[wfID]; !ok {
		return core.ErrNotFound("workflowId", "no workflow with id %d", wfID)
	}
	if !s.userWorkflows[userID][wfID] {
		return core.ErrNotFound("workflowId", "workflow %d is not registered to this user", wfID)
	}
	delete(s.userWorkflows[userID], wfID)
	owned := false
	for _, set := range s.userWorkflows {
		if set[wfID] {
			owned = true
			break
		}
	}
	if !owned {
		delete(s.workflows, wfID)
		delete(s.workflowPEs, wfID)
		_, _, wfIdx := s.indexes()
		wfIdx.Delete(wfID)
		_, wfLex := s.lexIndexes()
		wfLex.Delete(wfID)
	}
	s.markDirty(func(d *dirtyState) {
		d.ownerWFs[userID] = true
		if !owned {
			d.wfs[wfID] = true
		}
	})
	return nil
}

// RemoveWorkflowByName removes the user's workflow by name.
func (s *Store) RemoveWorkflowByName(userID int, name string) error {
	wf, err := s.WorkflowByName(userID, name)
	if err != nil {
		return err
	}
	return s.RemoveWorkflow(userID, wf.WorkflowID)
}

// AssociatePE links a PE to a workflow
// (PUT /registry/{user}/workflow/{workflowId}/pe/{peId}).
func (s *Store) AssociatePE(userID, wfID, peID int) error {
	s.simulateWAN()
	if err := s.checkWritable(); err != nil {
		return err
	}
	s.pesMu.RLock()
	defer s.pesMu.RUnlock()
	s.wfsMu.Lock()
	defer s.wfsMu.Unlock()
	if !s.userWorkflows[userID][wfID] {
		return core.ErrNotFound("workflowId", "workflow %d is not registered to this user", wfID)
	}
	if _, ok := s.pes[peID]; !ok {
		return core.ErrNotFound("peId", "no PE with id %d", peID)
	}
	if s.workflowPEs[wfID] == nil {
		s.workflowPEs[wfID] = map[int]bool{}
	}
	s.workflowPEs[wfID][peID] = true
	s.markDirty(func(d *dirtyState) { d.assocWFs[wfID] = true })
	return nil
}

// PEsByWorkflow returns all PEs belonging to a workflow — the query the
// two-way many-to-many design exists to make cheap (Section 3.1).
func (s *Store) PEsByWorkflow(userID, wfID int) ([]core.PERecord, error) {
	s.simulateWAN()
	s.pesMu.RLock()
	defer s.pesMu.RUnlock()
	s.wfsMu.RLock()
	defer s.wfsMu.RUnlock()
	if !s.userWorkflows[userID][wfID] {
		return nil, core.ErrNotFound("workflowId", "workflow %d is not registered to this user", wfID)
	}
	var out []core.PERecord
	for peID := range s.workflowPEs[wfID] {
		if pe := s.pes[peID]; pe != nil {
			out = append(out, *pe)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PEID < out[j].PEID })
	return out, nil
}

// Listing returns everything the user has registered
// (GET /registry/{user}/all).
func (s *Store) Listing(userID int) core.RegistryListing {
	return core.RegistryListing{
		PEs:       s.PEsForUser(userID),
		Workflows: s.WorkflowsForUser(userID),
	}
}
