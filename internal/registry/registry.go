// Package registry implements Laminar's central repository (Section 3.1):
// users, Processing Elements and workflows with the exact schema of Table 2,
// one-way many-to-many user↔PE/workflow ownership, two-way many-to-many
// PE↔workflow association, and stored embeddings for semantic search.
//
// The paper hosts the registry on a remote web-based MySQL service; this
// implementation is an embedded, JSON-persistable store with a configurable
// simulated WAN latency so the remote-registry deployments of Table 5 can
// be reproduced.
package registry

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"laminar/internal/core"
	"laminar/internal/index"
	"laminar/internal/search"
)

// Store is the registry state. All methods are safe for concurrent use.
type Store struct {
	mu sync.RWMutex

	users     map[int]*core.UserRecord
	pes       map[int]*core.PERecord
	workflows map[int]*core.WorkflowRecord

	userPEs       map[int]map[int]bool // userID → set of peIDs (ownership)
	userWorkflows map[int]map[int]bool // userID → set of workflowIDs
	workflowPEs   map[int]map[int]bool // workflowID → set of peIDs
	tokens        map[string]int       // session token → userID

	// The registry owns one vector index per stored embedding kind and
	// maintains both incrementally on PE register/update/delete, so
	// semantic queries never re-snapshot the record set (Section 4.2/4.3).
	indexFactory index.Factory
	descIndex    index.VectorIndex // description embeddings (semantic search)
	codeIndex    index.VectorIndex // code embeddings (code completion)

	nextUserID     int
	nextPEID       int
	nextWorkflowID int

	// latency simulates the WAN round trip to the remote registry service.
	latency time.Duration
	// clock is injectable for tests.
	clock func() time.Time
}

// NewStore creates an empty registry backed by the exact Flat index.
func NewStore() *Store {
	factory := func() index.VectorIndex { return index.NewFlat() }
	return &Store{
		users:          map[int]*core.UserRecord{},
		pes:            map[int]*core.PERecord{},
		workflows:      map[int]*core.WorkflowRecord{},
		userPEs:        map[int]map[int]bool{},
		userWorkflows:  map[int]map[int]bool{},
		workflowPEs:    map[int]map[int]bool{},
		tokens:         map[string]int{},
		indexFactory:   factory,
		descIndex:      factory(),
		codeIndex:      factory(),
		nextUserID:     1,
		nextPEID:       1,
		nextWorkflowID: 1,
		clock:          time.Now,
	}
}

// ConfigureIndex swaps the vector-index implementation (e.g. for the
// clustered ANN index) and rebuilds both indexes from the current PE set.
func (s *Store) ConfigureIndex(factory index.Factory) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.indexFactory = factory
	s.rebuildIndexesLocked()
}

// IndexName reports the active vector-index implementation.
func (s *Store) IndexName() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.descIndex.Name()
}

func (s *Store) rebuildIndexesLocked() {
	s.descIndex = s.indexFactory()
	s.codeIndex = s.indexFactory()
	for id, pe := range s.pes {
		s.indexPELocked(id, pe)
	}
}

// indexPELocked upserts a PE's stored embeddings into both indexes (empty
// embeddings are skipped — such PEs are not semantically searchable).
func (s *Store) indexPELocked(id int, pe *core.PERecord) {
	if len(pe.DescEmbedding) > 0 {
		s.descIndex.Upsert(id, pe.DescEmbedding)
	}
	if len(pe.CodeEmbedding) > 0 {
		s.codeIndex.Upsert(id, pe.CodeEmbedding)
	}
}

// SetLatency configures the simulated WAN round trip applied to every
// operation (the registry is "hosted remotely on the web-based service").
func (s *Store) SetLatency(d time.Duration) {
	s.mu.Lock()
	s.latency = d
	s.mu.Unlock()
}

func (s *Store) simulateWAN() {
	s.mu.RLock()
	d := s.latency
	s.mu.RUnlock()
	if d > 0 {
		time.Sleep(d)
	}
}

func hashPassword(userName, password string) string {
	h := sha256.Sum256([]byte("laminar:" + userName + ":" + password))
	return hex.EncodeToString(h[:])
}

// ---- users ----

// RegisterUser creates a user with a unique name.
func (s *Store) RegisterUser(userName, password string) (*core.UserRecord, error) {
	s.simulateWAN()
	if strings.TrimSpace(userName) == "" {
		return nil, core.ErrBadRequest("userName", "user name must not be empty")
	}
	if password == "" {
		return nil, core.ErrBadRequest("password", "password must not be empty")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, u := range s.users {
		if u.UserName == userName {
			return nil, core.ErrConflict("userName", "user %q already exists", userName)
		}
	}
	u := &core.UserRecord{
		UserID:       s.nextUserID,
		UserName:     userName,
		PasswordHash: hashPassword(userName, password),
		CreatedAt:    s.clock(),
	}
	s.nextUserID++
	s.users[u.UserID] = u
	s.userPEs[u.UserID] = map[int]bool{}
	s.userWorkflows[u.UserID] = map[int]bool{}
	return u, nil
}

// Login validates credentials and mints a session token.
func (s *Store) Login(userName, password string) (*core.UserRecord, string, error) {
	s.simulateWAN()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, u := range s.users {
		if u.UserName == userName {
			if u.PasswordHash != hashPassword(userName, password) {
				return nil, "", core.ErrUnauthorized("invalid login credentials for %q", userName)
			}
			token := s.mintTokenLocked(u.UserID)
			return u, token, nil
		}
	}
	return nil, "", core.ErrUnauthorized("invalid login credentials for %q", userName)
}

func (s *Store) mintTokenLocked(userID int) string {
	raw := fmt.Sprintf("%d:%d:%d", userID, s.clock().UnixNano(), len(s.tokens))
	h := sha256.Sum256([]byte(raw))
	token := hex.EncodeToString(h[:16])
	s.tokens[token] = userID
	return token
}

// UserByName resolves a user name.
func (s *Store) UserByName(userName string) (*core.UserRecord, error) {
	s.simulateWAN()
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, u := range s.users {
		if u.UserName == userName {
			return u, nil
		}
	}
	return nil, core.ErrNotFound("user", "no such user %q", userName)
}

// Users lists all users (GET /auth/all).
func (s *Store) Users() []core.UserRecord {
	s.simulateWAN()
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]core.UserRecord, 0, len(s.users))
	for _, u := range s.users {
		out = append(out, *u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].UserID < out[j].UserID })
	return out
}

// ---- PEs ----

// AddPE registers a PE for a user. When a PE with the same name and code
// already exists (registered by another user), the user is added as an
// additional owner instead of creating a duplicate entry (Section 3.1).
func (s *Store) AddPE(userID int, req core.AddPERequest) (*core.PERecord, error) {
	s.simulateWAN()
	if strings.TrimSpace(req.PEName) == "" {
		return nil, core.ErrBadRequest("peName", "PE name must not be empty")
	}
	if req.PECode == "" {
		return nil, core.ErrBadRequest("peCode", "PE code must not be empty")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.users[userID]; !ok {
		return nil, core.ErrNotFound("user", "no such user id %d", userID)
	}
	for _, pe := range s.pes {
		if pe.PEName == req.PEName {
			// Same name: associate this user as an additional owner.
			s.userPEs[userID][pe.PEID] = true
			return pe, nil
		}
	}
	pe := &core.PERecord{
		PEID:           s.nextPEID,
		PEName:         req.PEName,
		Description:    req.Description,
		AutoSummarized: req.AutoSummarized,
		PECode:         req.PECode,
		PEImports:      append([]string(nil), req.PEImports...),
		CodeEmbedding:  append([]float32(nil), req.CodeEmbedding...),
		DescEmbedding:  append([]float32(nil), req.DescEmbedding...),
		CreatedAt:      s.clock(),
	}
	s.nextPEID++
	s.pes[pe.PEID] = pe
	s.userPEs[userID][pe.PEID] = true
	s.indexPELocked(pe.PEID, pe)
	return pe, nil
}

// PEByID fetches a PE owned by (or visible to) the user.
func (s *Store) PEByID(userID, peID int) (*core.PERecord, error) {
	s.simulateWAN()
	s.mu.RLock()
	defer s.mu.RUnlock()
	pe, ok := s.pes[peID]
	if !ok {
		return nil, core.ErrNotFound("peId", "no PE with id %d", peID)
	}
	if !s.userPEs[userID][peID] {
		return nil, core.ErrNotFound("peId", "PE %d is not registered to this user", peID)
	}
	return pe, nil
}

// PEByName fetches a user's PE by class name.
func (s *Store) PEByName(userID int, name string) (*core.PERecord, error) {
	s.simulateWAN()
	s.mu.RLock()
	defer s.mu.RUnlock()
	for id := range s.userPEs[userID] {
		if pe := s.pes[id]; pe != nil && pe.PEName == name {
			return pe, nil
		}
	}
	return nil, core.ErrNotFound("peName", "no PE named %q for this user", name)
}

// PEsForUser lists the user's PEs ordered by id.
func (s *Store) PEsForUser(userID int) []core.PERecord {
	s.simulateWAN()
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []core.PERecord
	for id := range s.userPEs[userID] {
		if pe := s.pes[id]; pe != nil {
			out = append(out, *pe)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PEID < out[j].PEID })
	return out
}

// RemovePE detaches the PE from the user; the record is deleted once no
// owner remains.
func (s *Store) RemovePE(userID, peID int) error {
	s.simulateWAN()
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.pes[peID]; !ok {
		return core.ErrNotFound("peId", "no PE with id %d", peID)
	}
	if !s.userPEs[userID][peID] {
		return core.ErrNotFound("peId", "PE %d is not registered to this user", peID)
	}
	delete(s.userPEs[userID], peID)
	// delete fully when orphaned
	owned := false
	for _, set := range s.userPEs {
		if set[peID] {
			owned = true
			break
		}
	}
	if !owned {
		delete(s.pes, peID)
		s.descIndex.Delete(peID)
		s.codeIndex.Delete(peID)
		for wid := range s.workflowPEs {
			delete(s.workflowPEs[wid], peID)
		}
	}
	return nil
}

// RemovePEByName removes the user's PE by class name.
func (s *Store) RemovePEByName(userID int, name string) error {
	pe, err := s.PEByName(userID, name)
	if err != nil {
		return err
	}
	return s.RemovePE(userID, pe.PEID)
}

// ---- workflows ----

// AddWorkflow registers a workflow, associating any referenced PEs.
func (s *Store) AddWorkflow(userID int, req core.AddWorkflowRequest) (*core.WorkflowRecord, error) {
	s.simulateWAN()
	if strings.TrimSpace(req.EntryPoint) == "" {
		return nil, core.ErrBadRequest("entryPoint", "workflow entry point must not be empty")
	}
	if req.WorkflowCode == "" {
		return nil, core.ErrBadRequest("workflowCode", "workflow code must not be empty")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.users[userID]; !ok {
		return nil, core.ErrNotFound("user", "no such user id %d", userID)
	}
	for _, wf := range s.workflows {
		if wf.EntryPoint == req.EntryPoint {
			s.userWorkflows[userID][wf.WorkflowID] = true
			return wf, nil
		}
	}
	wf := &core.WorkflowRecord{
		WorkflowID:   s.nextWorkflowID,
		WorkflowName: req.WorkflowName,
		EntryPoint:   req.EntryPoint,
		Description:  req.Description,
		WorkflowCode: req.WorkflowCode,
		CreatedAt:    s.clock(),
	}
	s.nextWorkflowID++
	s.workflows[wf.WorkflowID] = wf
	s.userWorkflows[userID][wf.WorkflowID] = true
	s.workflowPEs[wf.WorkflowID] = map[int]bool{}
	for _, peID := range req.PEIDs {
		if _, ok := s.pes[peID]; ok {
			s.workflowPEs[wf.WorkflowID][peID] = true
		}
	}
	return wf, nil
}

// WorkflowByID fetches a user's workflow by id.
func (s *Store) WorkflowByID(userID, wfID int) (*core.WorkflowRecord, error) {
	s.simulateWAN()
	s.mu.RLock()
	defer s.mu.RUnlock()
	wf, ok := s.workflows[wfID]
	if !ok {
		return nil, core.ErrNotFound("workflowId", "no workflow with id %d", wfID)
	}
	if !s.userWorkflows[userID][wfID] {
		return nil, core.ErrNotFound("workflowId", "workflow %d is not registered to this user", wfID)
	}
	return wf, nil
}

// WorkflowByName fetches a user's workflow by its entry point name.
func (s *Store) WorkflowByName(userID int, name string) (*core.WorkflowRecord, error) {
	s.simulateWAN()
	s.mu.RLock()
	defer s.mu.RUnlock()
	for id := range s.userWorkflows[userID] {
		if wf := s.workflows[id]; wf != nil && (wf.EntryPoint == name || wf.WorkflowName == name) {
			return wf, nil
		}
	}
	return nil, core.ErrNotFound("workflowName", "no workflow named %q for this user", name)
}

// WorkflowsForUser lists the user's workflows ordered by id.
func (s *Store) WorkflowsForUser(userID int) []core.WorkflowRecord {
	s.simulateWAN()
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []core.WorkflowRecord
	for id := range s.userWorkflows[userID] {
		if wf := s.workflows[id]; wf != nil {
			out = append(out, *wf)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].WorkflowID < out[j].WorkflowID })
	return out
}

// RemoveWorkflow detaches a workflow from the user, deleting it when
// orphaned.
func (s *Store) RemoveWorkflow(userID, wfID int) error {
	s.simulateWAN()
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.workflows[wfID]; !ok {
		return core.ErrNotFound("workflowId", "no workflow with id %d", wfID)
	}
	if !s.userWorkflows[userID][wfID] {
		return core.ErrNotFound("workflowId", "workflow %d is not registered to this user", wfID)
	}
	delete(s.userWorkflows[userID], wfID)
	owned := false
	for _, set := range s.userWorkflows {
		if set[wfID] {
			owned = true
			break
		}
	}
	if !owned {
		delete(s.workflows, wfID)
		delete(s.workflowPEs, wfID)
	}
	return nil
}

// RemoveWorkflowByName removes the user's workflow by name.
func (s *Store) RemoveWorkflowByName(userID int, name string) error {
	wf, err := s.WorkflowByName(userID, name)
	if err != nil {
		return err
	}
	return s.RemoveWorkflow(userID, wf.WorkflowID)
}

// AssociatePE links a PE to a workflow
// (PUT /registry/{user}/workflow/{workflowId}/pe/{peId}).
func (s *Store) AssociatePE(userID, wfID, peID int) error {
	s.simulateWAN()
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.userWorkflows[userID][wfID] {
		return core.ErrNotFound("workflowId", "workflow %d is not registered to this user", wfID)
	}
	if _, ok := s.pes[peID]; !ok {
		return core.ErrNotFound("peId", "no PE with id %d", peID)
	}
	if s.workflowPEs[wfID] == nil {
		s.workflowPEs[wfID] = map[int]bool{}
	}
	s.workflowPEs[wfID][peID] = true
	return nil
}

// PEsByWorkflow returns all PEs belonging to a workflow — the query the
// two-way many-to-many design exists to make cheap (Section 3.1).
func (s *Store) PEsByWorkflow(userID, wfID int) ([]core.PERecord, error) {
	s.simulateWAN()
	s.mu.RLock()
	defer s.mu.RUnlock()
	if !s.userWorkflows[userID][wfID] {
		return nil, core.ErrNotFound("workflowId", "workflow %d is not registered to this user", wfID)
	}
	var out []core.PERecord
	for peID := range s.workflowPEs[wfID] {
		if pe := s.pes[peID]; pe != nil {
			out = append(out, *pe)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PEID < out[j].PEID })
	return out, nil
}

// Listing returns everything the user has registered
// (GET /registry/{user}/all).
func (s *Store) Listing(userID int) core.RegistryListing {
	return core.RegistryListing{
		PEs:       s.PEsForUser(userID),
		Workflows: s.WorkflowsForUser(userID),
	}
}

// ---- vector search ----

// SemanticSearch ranks the user's visible PEs against a description-
// embedding query via the incrementally maintained description index
// (Section 4.2). Unlike the historic path there is no per-query snapshot of
// every record: the index answers the top-k probe directly.
func (s *Store) SemanticSearch(userID int, queryEmbedding []float32, limit int) []core.SearchHit {
	return s.indexSearch(userID, queryEmbedding, limit, false)
}

// CompletionSearch ranks the user's visible PEs against a code-embedding
// query via the incrementally maintained code index (Section 4.3).
func (s *Store) CompletionSearch(userID int, queryEmbedding []float32, limit int) []core.SearchHit {
	return s.indexSearch(userID, queryEmbedding, limit, true)
}

func (s *Store) indexSearch(userID int, query []float32, limit int, code bool) []core.SearchHit {
	s.simulateWAN()
	if limit <= 0 {
		limit = search.DefaultLimit
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	idx := s.descIndex
	if code {
		idx = s.codeIndex
	}
	visible := s.userPEs[userID]
	cands := idx.Search(query, limit, func(id int) bool { return visible[id] })
	return search.HitsFromCandidates(cands, func(id int) (core.PERecord, bool) {
		if pe := s.pes[id]; pe != nil {
			return *pe, true
		}
		return core.PERecord{}, false
	})
}

// ---- persistence ----

// snapshot is the JSON-serializable registry state.
type snapshot struct {
	Users          []core.UserRecord     `json:"users"`
	PasswordHashes map[int]string        `json:"passwordHashes"`
	PEs            []core.PERecord       `json:"pes"`
	Workflows      []core.WorkflowRecord `json:"workflows"`
	UserPEs        map[int][]int         `json:"userPes"`
	UserWorkflows  map[int][]int         `json:"userWorkflows"`
	WorkflowPEs    map[int][]int         `json:"workflowPes"`
	NextUserID     int                   `json:"nextUserId"`
	NextPEID       int                   `json:"nextPeId"`
	NextWorkflowID int                   `json:"nextWorkflowId"`
}

// Save writes the registry to a JSON file.
func (s *Store) Save(path string) error {
	s.mu.RLock()
	snap := snapshot{
		PasswordHashes: map[int]string{},
		UserPEs:        map[int][]int{},
		UserWorkflows:  map[int][]int{},
		WorkflowPEs:    map[int][]int{},
		NextUserID:     s.nextUserID,
		NextPEID:       s.nextPEID,
		NextWorkflowID: s.nextWorkflowID,
	}
	for _, u := range s.users {
		snap.Users = append(snap.Users, *u)
		snap.PasswordHashes[u.UserID] = u.PasswordHash
	}
	for _, pe := range s.pes {
		snap.PEs = append(snap.PEs, *pe)
	}
	for _, wf := range s.workflows {
		snap.Workflows = append(snap.Workflows, *wf)
	}
	for uid, set := range s.userPEs {
		snap.UserPEs[uid] = setToSlice(set)
	}
	for uid, set := range s.userWorkflows {
		snap.UserWorkflows[uid] = setToSlice(set)
	}
	for wid, set := range s.workflowPEs {
		snap.WorkflowPEs[wid] = setToSlice(set)
	}
	s.mu.RUnlock()
	sort.Slice(snap.Users, func(i, j int) bool { return snap.Users[i].UserID < snap.Users[j].UserID })
	sort.Slice(snap.PEs, func(i, j int) bool { return snap.PEs[i].PEID < snap.PEs[j].PEID })
	sort.Slice(snap.Workflows, func(i, j int) bool { return snap.Workflows[i].WorkflowID < snap.Workflows[j].WorkflowID })
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return fmt.Errorf("registry: marshal snapshot: %w", err)
	}
	return os.WriteFile(path, data, 0o644)
}

// Load replaces the registry contents from a JSON file.
func (s *Store) Load(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("registry: read snapshot: %w", err)
	}
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("registry: parse snapshot: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.users = map[int]*core.UserRecord{}
	s.pes = map[int]*core.PERecord{}
	s.workflows = map[int]*core.WorkflowRecord{}
	s.userPEs = map[int]map[int]bool{}
	s.userWorkflows = map[int]map[int]bool{}
	s.workflowPEs = map[int]map[int]bool{}
	for i := range snap.Users {
		u := snap.Users[i]
		u.PasswordHash = snap.PasswordHashes[u.UserID]
		s.users[u.UserID] = &u
		s.userPEs[u.UserID] = map[int]bool{}
		s.userWorkflows[u.UserID] = map[int]bool{}
	}
	for i := range snap.PEs {
		pe := snap.PEs[i]
		s.pes[pe.PEID] = &pe
	}
	for i := range snap.Workflows {
		wf := snap.Workflows[i]
		s.workflows[wf.WorkflowID] = &wf
	}
	for uid, ids := range snap.UserPEs {
		if s.userPEs[uid] == nil {
			s.userPEs[uid] = map[int]bool{}
		}
		for _, id := range ids {
			s.userPEs[uid][id] = true
		}
	}
	for uid, ids := range snap.UserWorkflows {
		if s.userWorkflows[uid] == nil {
			s.userWorkflows[uid] = map[int]bool{}
		}
		for _, id := range ids {
			s.userWorkflows[uid][id] = true
		}
	}
	for wid, ids := range snap.WorkflowPEs {
		s.workflowPEs[wid] = map[int]bool{}
		for _, id := range ids {
			s.workflowPEs[wid][id] = true
		}
	}
	s.nextUserID = snap.NextUserID
	s.nextPEID = snap.NextPEID
	s.nextWorkflowID = snap.NextWorkflowID
	s.rebuildIndexesLocked()
	return nil
}

func setToSlice(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// UserIDForToken resolves a session token.
func (s *Store) UserIDForToken(token string) (int, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	id, ok := s.tokens[token]
	return id, ok
}
