// Package registry implements Laminar's central repository (Section 3.1):
// users, Processing Elements and workflows with the exact schema of Table 2,
// one-way many-to-many user↔PE/workflow ownership, two-way many-to-many
// PE↔workflow association, and stored embeddings for semantic search.
//
// The store owns three incrementally maintained vector indexes — PE
// descriptions, PE code, and workflow descriptions — and persists their
// trained structure (packed embeddings plus centroids/assignments) inside
// its JSON snapshot, so Load restores a trained index with no k-means
// retrain whenever the snapshot still matches the records.
//
// The paper hosts the registry on a remote web-based MySQL service; this
// implementation is an embedded, JSON-persistable store with a configurable
// simulated WAN latency so the remote-registry deployments of Table 5 can
// be reproduced.
package registry

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"laminar/internal/core"
	"laminar/internal/index"
	"laminar/internal/search"
)

// Store is the registry state. All methods are safe for concurrent use.
type Store struct {
	mu sync.RWMutex

	users     map[int]*core.UserRecord
	pes       map[int]*core.PERecord
	workflows map[int]*core.WorkflowRecord

	userPEs       map[int]map[int]bool // userID → set of peIDs (ownership)
	userWorkflows map[int]map[int]bool // userID → set of workflowIDs
	workflowPEs   map[int]map[int]bool // workflowID → set of peIDs
	tokens        map[string]int       // session token → userID

	// The registry owns one vector index per stored embedding kind and
	// maintains each incrementally on record register/update/delete, so
	// semantic queries never re-snapshot the record set (Section 4.2/4.3).
	indexFactory index.Factory
	descIndex    index.VectorIndex // PE description embeddings (semantic search)
	codeIndex    index.VectorIndex // PE code embeddings (code completion)
	wfIndex      index.VectorIndex // workflow description embeddings

	// loadedIndexSnaps stashes the index snapshots read by the last Load.
	// Lifecycle: a successful restore (in Load or ConfigureIndex) clears
	// it, and ConfigureIndex consumes it even on failure; it survives a
	// failed Load-restore only so an embedder using the load-then-configure
	// order can still restore (the checksum guards staleness). The one
	// case that retains it for the store's lifetime is a kind-switch
	// restart with no later ConfigureIndex — bounded by one registry's
	// assignment maps.
	loadedIndexSnaps *indexSnapshots
	// indexesRestored records whether the live indexes came from a snapshot
	// restore (true) or a rebuild (false) — observability for the
	// restart-without-retrain guarantee.
	indexesRestored bool

	nextUserID     int
	nextPEID       int
	nextWorkflowID int

	// latency simulates the WAN round trip to the remote registry service;
	// wanHops counts the simulated round trips taken (observability, and it
	// lets tests pin "one registry call" deterministically instead of
	// timing sleeps).
	latency time.Duration
	wanHops atomic.Int64
	// clock is injectable for tests.
	clock func() time.Time
}

// NewStore creates an empty registry backed by the exact Flat index.
func NewStore() *Store {
	factory := func() index.VectorIndex { return index.NewFlat() }
	return &Store{
		users:          map[int]*core.UserRecord{},
		pes:            map[int]*core.PERecord{},
		workflows:      map[int]*core.WorkflowRecord{},
		userPEs:        map[int]map[int]bool{},
		userWorkflows:  map[int]map[int]bool{},
		workflowPEs:    map[int]map[int]bool{},
		tokens:         map[string]int{},
		indexFactory:   factory,
		descIndex:      factory(),
		codeIndex:      factory(),
		wfIndex:        factory(),
		nextUserID:     1,
		nextPEID:       1,
		nextWorkflowID: 1,
		clock:          time.Now,
	}
}

// ConfigureIndex swaps the vector-index implementation (e.g. for the
// clustered ANN index) and repopulates all three indexes from the current
// record set — restoring from the snapshots of the last Load when they
// still match, retraining only when they don't. It consumes the stash
// either way: a stash that failed here can only fail again (the records
// it would have to match are not going to change back).
func (s *Store) ConfigureIndex(factory index.Factory) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.indexFactory = factory
	if !s.tryRestoreIndexesLocked() {
		s.rebuildIndexesLocked()
	}
	s.loadedIndexSnaps = nil
}

// IndexName reports the active vector-index implementation.
func (s *Store) IndexName() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.descIndex.Name()
}

// IndexesRestored reports whether the live vector indexes were restored
// from a persisted snapshot (no retrain) rather than rebuilt.
func (s *Store) IndexesRestored() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.indexesRestored
}

// WaitIndexReady blocks until no background index retrain is in flight —
// benchmarks and tests use it to measure a settled index; the serving path
// never calls it.
func (s *Store) WaitIndexReady() {
	s.mu.RLock()
	indexes := []index.VectorIndex{s.descIndex, s.codeIndex, s.wfIndex}
	s.mu.RUnlock()
	for _, idx := range indexes {
		if w, ok := idx.(interface{ WaitRetrain() }); ok {
			w.WaitRetrain()
		}
	}
}

// RetrainIndexes forces one full synchronous retrain of every index that
// supports it, reaching the same fully-trained-over-the-whole-corpus state
// a snapshot restore reproduces instantly. The three indexes retrain
// concurrently, mirroring the parallel restore path, so the
// rebuild-vs-restore benchmark compares like with like. It is the
// benchmark baseline for the restore path; serving deployments rely on
// background retrains instead.
func (s *Store) RetrainIndexes() {
	s.mu.RLock()
	indexes := []index.VectorIndex{s.descIndex, s.codeIndex, s.wfIndex}
	s.mu.RUnlock()
	var wg sync.WaitGroup
	for _, idx := range indexes {
		if tr, ok := idx.(interface{ TrainNow() }); ok {
			wg.Add(1)
			go func() {
				defer wg.Done()
				tr.TrainNow()
			}()
		}
	}
	wg.Wait()
}

func (s *Store) rebuildIndexesLocked() {
	s.indexesRestored = false
	s.descIndex = s.indexFactory()
	s.codeIndex = s.indexFactory()
	s.wfIndex = s.indexFactory()
	for id, pe := range s.pes {
		s.indexPELocked(id, pe)
	}
	for id, wf := range s.workflows {
		s.indexWorkflowLocked(id, wf)
	}
}

// indexPELocked upserts a PE's stored embeddings into both PE indexes
// (empty embeddings are skipped — such PEs are not semantically
// searchable).
func (s *Store) indexPELocked(id int, pe *core.PERecord) {
	if len(pe.DescEmbedding) > 0 {
		s.descIndex.Upsert(id, pe.DescEmbedding)
	}
	if len(pe.CodeEmbedding) > 0 {
		s.codeIndex.Upsert(id, pe.CodeEmbedding)
	}
}

// indexWorkflowLocked upserts a workflow's description embedding into the
// workflow index.
func (s *Store) indexWorkflowLocked(id int, wf *core.WorkflowRecord) {
	if len(wf.DescEmbedding) > 0 {
		s.wfIndex.Upsert(id, wf.DescEmbedding)
	}
}

// SetLatency configures the simulated WAN round trip applied to every
// operation (the registry is "hosted remotely on the web-based service").
func (s *Store) SetLatency(d time.Duration) {
	s.mu.Lock()
	s.latency = d
	s.mu.Unlock()
}

func (s *Store) simulateWAN() {
	s.wanHops.Add(1)
	s.mu.RLock()
	d := s.latency
	s.mu.RUnlock()
	if d > 0 {
		time.Sleep(d)
	}
}

// WANHops reports how many simulated remote round trips the store has
// served.
func (s *Store) WANHops() int64 { return s.wanHops.Load() }

func hashPassword(userName, password string) string {
	h := sha256.Sum256([]byte("laminar:" + userName + ":" + password))
	return hex.EncodeToString(h[:])
}

// ---- users ----

// RegisterUser creates a user with a unique name.
func (s *Store) RegisterUser(userName, password string) (*core.UserRecord, error) {
	s.simulateWAN()
	if strings.TrimSpace(userName) == "" {
		return nil, core.ErrBadRequest("userName", "user name must not be empty")
	}
	if password == "" {
		return nil, core.ErrBadRequest("password", "password must not be empty")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, u := range s.users {
		if u.UserName == userName {
			return nil, core.ErrConflict("userName", "user %q already exists", userName)
		}
	}
	u := &core.UserRecord{
		UserID:       s.nextUserID,
		UserName:     userName,
		PasswordHash: hashPassword(userName, password),
		CreatedAt:    s.clock(),
	}
	s.nextUserID++
	s.users[u.UserID] = u
	s.userPEs[u.UserID] = map[int]bool{}
	s.userWorkflows[u.UserID] = map[int]bool{}
	return u, nil
}

// Login validates credentials and mints a session token.
func (s *Store) Login(userName, password string) (*core.UserRecord, string, error) {
	s.simulateWAN()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, u := range s.users {
		if u.UserName == userName {
			if u.PasswordHash != hashPassword(userName, password) {
				return nil, "", core.ErrUnauthorized("invalid login credentials for %q", userName)
			}
			token := s.mintTokenLocked(u.UserID)
			return u, token, nil
		}
	}
	return nil, "", core.ErrUnauthorized("invalid login credentials for %q", userName)
}

func (s *Store) mintTokenLocked(userID int) string {
	raw := fmt.Sprintf("%d:%d:%d", userID, s.clock().UnixNano(), len(s.tokens))
	h := sha256.Sum256([]byte(raw))
	token := hex.EncodeToString(h[:16])
	s.tokens[token] = userID
	return token
}

// UserByName resolves a user name.
func (s *Store) UserByName(userName string) (*core.UserRecord, error) {
	s.simulateWAN()
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, u := range s.users {
		if u.UserName == userName {
			return u, nil
		}
	}
	return nil, core.ErrNotFound("user", "no such user %q", userName)
}

// Users lists all users (GET /auth/all).
func (s *Store) Users() []core.UserRecord {
	s.simulateWAN()
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]core.UserRecord, 0, len(s.users))
	for _, u := range s.users {
		out = append(out, *u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].UserID < out[j].UserID })
	return out
}

// ---- PEs ----

// AddPE registers a PE for a user. When a PE with the same name and code
// already exists (registered by another user), the user is added as an
// additional owner instead of creating a duplicate entry (Section 3.1).
func (s *Store) AddPE(userID int, req core.AddPERequest) (*core.PERecord, error) {
	s.simulateWAN()
	if strings.TrimSpace(req.PEName) == "" {
		return nil, core.ErrBadRequest("peName", "PE name must not be empty")
	}
	if req.PECode == "" {
		return nil, core.ErrBadRequest("peCode", "PE code must not be empty")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.users[userID]; !ok {
		return nil, core.ErrNotFound("user", "no such user id %d", userID)
	}
	for _, pe := range s.pes {
		if pe.PEName == req.PEName {
			// Same name: associate this user as an additional owner. As with
			// workflows, adopt embeddings the stored record lacks (a record
			// predating stored embeddings, re-registered by a newer client)
			// rather than silently discarding what the client computed.
			s.userPEs[userID][pe.PEID] = true
			adopted := false
			if len(pe.DescEmbedding) == 0 && len(req.DescEmbedding) > 0 {
				pe.DescEmbedding = append([]float32(nil), req.DescEmbedding...)
				adopted = true
			}
			if len(pe.CodeEmbedding) == 0 && len(req.CodeEmbedding) > 0 {
				pe.CodeEmbedding = append([]float32(nil), req.CodeEmbedding...)
				adopted = true
			}
			if adopted {
				s.indexPELocked(pe.PEID, pe)
			}
			return pe, nil
		}
	}
	pe := &core.PERecord{
		PEID:           s.nextPEID,
		PEName:         req.PEName,
		Description:    req.Description,
		AutoSummarized: req.AutoSummarized,
		PECode:         req.PECode,
		PEImports:      append([]string(nil), req.PEImports...),
		CodeEmbedding:  append([]float32(nil), req.CodeEmbedding...),
		DescEmbedding:  append([]float32(nil), req.DescEmbedding...),
		CreatedAt:      s.clock(),
	}
	s.nextPEID++
	s.pes[pe.PEID] = pe
	s.userPEs[userID][pe.PEID] = true
	s.indexPELocked(pe.PEID, pe)
	return pe, nil
}

// PEByID fetches a PE owned by (or visible to) the user.
func (s *Store) PEByID(userID, peID int) (*core.PERecord, error) {
	s.simulateWAN()
	s.mu.RLock()
	defer s.mu.RUnlock()
	pe, ok := s.pes[peID]
	if !ok {
		return nil, core.ErrNotFound("peId", "no PE with id %d", peID)
	}
	if !s.userPEs[userID][peID] {
		return nil, core.ErrNotFound("peId", "PE %d is not registered to this user", peID)
	}
	return pe, nil
}

// PEByName fetches a user's PE by class name.
func (s *Store) PEByName(userID int, name string) (*core.PERecord, error) {
	s.simulateWAN()
	s.mu.RLock()
	defer s.mu.RUnlock()
	for id := range s.userPEs[userID] {
		if pe := s.pes[id]; pe != nil && pe.PEName == name {
			return pe, nil
		}
	}
	return nil, core.ErrNotFound("peName", "no PE named %q for this user", name)
}

// PEsForUser lists the user's PEs ordered by id.
func (s *Store) PEsForUser(userID int) []core.PERecord {
	s.simulateWAN()
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []core.PERecord
	for id := range s.userPEs[userID] {
		if pe := s.pes[id]; pe != nil {
			out = append(out, *pe)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PEID < out[j].PEID })
	return out
}

// RemovePE detaches the PE from the user; the record is deleted once no
// owner remains.
func (s *Store) RemovePE(userID, peID int) error {
	s.simulateWAN()
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.pes[peID]; !ok {
		return core.ErrNotFound("peId", "no PE with id %d", peID)
	}
	if !s.userPEs[userID][peID] {
		return core.ErrNotFound("peId", "PE %d is not registered to this user", peID)
	}
	delete(s.userPEs[userID], peID)
	// delete fully when orphaned
	owned := false
	for _, set := range s.userPEs {
		if set[peID] {
			owned = true
			break
		}
	}
	if !owned {
		delete(s.pes, peID)
		s.descIndex.Delete(peID)
		s.codeIndex.Delete(peID)
		for wid := range s.workflowPEs {
			delete(s.workflowPEs[wid], peID)
		}
	}
	return nil
}

// RemovePEByName removes the user's PE by class name.
func (s *Store) RemovePEByName(userID int, name string) error {
	pe, err := s.PEByName(userID, name)
	if err != nil {
		return err
	}
	return s.RemovePE(userID, pe.PEID)
}

// ---- workflows ----

// AddWorkflow registers a workflow, associating any referenced PEs.
func (s *Store) AddWorkflow(userID int, req core.AddWorkflowRequest) (*core.WorkflowRecord, error) {
	s.simulateWAN()
	if strings.TrimSpace(req.EntryPoint) == "" {
		return nil, core.ErrBadRequest("entryPoint", "workflow entry point must not be empty")
	}
	if req.WorkflowCode == "" {
		return nil, core.ErrBadRequest("workflowCode", "workflow code must not be empty")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.users[userID]; !ok {
		return nil, core.ErrNotFound("user", "no such user id %d", userID)
	}
	for _, wf := range s.workflows {
		if wf.EntryPoint == req.EntryPoint {
			s.userWorkflows[userID][wf.WorkflowID] = true
			// Adopt an embedding the stored record lacks (a record predating
			// workflow embeddings, re-registered by a newer client) so the
			// workflow becomes semantically searchable instead of silently
			// dropping what the client computed.
			if len(wf.DescEmbedding) == 0 && len(req.DescEmbedding) > 0 {
				wf.DescEmbedding = append([]float32(nil), req.DescEmbedding...)
				s.indexWorkflowLocked(wf.WorkflowID, wf)
			}
			return wf, nil
		}
	}
	wf := &core.WorkflowRecord{
		WorkflowID:    s.nextWorkflowID,
		WorkflowName:  req.WorkflowName,
		EntryPoint:    req.EntryPoint,
		Description:   req.Description,
		WorkflowCode:  req.WorkflowCode,
		DescEmbedding: append([]float32(nil), req.DescEmbedding...),
		CreatedAt:     s.clock(),
	}
	s.nextWorkflowID++
	s.workflows[wf.WorkflowID] = wf
	s.indexWorkflowLocked(wf.WorkflowID, wf)
	s.userWorkflows[userID][wf.WorkflowID] = true
	s.workflowPEs[wf.WorkflowID] = map[int]bool{}
	for _, peID := range req.PEIDs {
		if _, ok := s.pes[peID]; ok {
			s.workflowPEs[wf.WorkflowID][peID] = true
		}
	}
	return wf, nil
}

// WorkflowByID fetches a user's workflow by id.
func (s *Store) WorkflowByID(userID, wfID int) (*core.WorkflowRecord, error) {
	s.simulateWAN()
	s.mu.RLock()
	defer s.mu.RUnlock()
	wf, ok := s.workflows[wfID]
	if !ok {
		return nil, core.ErrNotFound("workflowId", "no workflow with id %d", wfID)
	}
	if !s.userWorkflows[userID][wfID] {
		return nil, core.ErrNotFound("workflowId", "workflow %d is not registered to this user", wfID)
	}
	return wf, nil
}

// WorkflowByName fetches a user's workflow by its entry point name.
func (s *Store) WorkflowByName(userID int, name string) (*core.WorkflowRecord, error) {
	s.simulateWAN()
	s.mu.RLock()
	defer s.mu.RUnlock()
	for id := range s.userWorkflows[userID] {
		if wf := s.workflows[id]; wf != nil && (wf.EntryPoint == name || wf.WorkflowName == name) {
			return wf, nil
		}
	}
	return nil, core.ErrNotFound("workflowName", "no workflow named %q for this user", name)
}

// WorkflowsForUser lists the user's workflows ordered by id.
func (s *Store) WorkflowsForUser(userID int) []core.WorkflowRecord {
	s.simulateWAN()
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []core.WorkflowRecord
	for id := range s.userWorkflows[userID] {
		if wf := s.workflows[id]; wf != nil {
			out = append(out, *wf)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].WorkflowID < out[j].WorkflowID })
	return out
}

// RemoveWorkflow detaches a workflow from the user, deleting it when
// orphaned.
func (s *Store) RemoveWorkflow(userID, wfID int) error {
	s.simulateWAN()
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.workflows[wfID]; !ok {
		return core.ErrNotFound("workflowId", "no workflow with id %d", wfID)
	}
	if !s.userWorkflows[userID][wfID] {
		return core.ErrNotFound("workflowId", "workflow %d is not registered to this user", wfID)
	}
	delete(s.userWorkflows[userID], wfID)
	owned := false
	for _, set := range s.userWorkflows {
		if set[wfID] {
			owned = true
			break
		}
	}
	if !owned {
		delete(s.workflows, wfID)
		delete(s.workflowPEs, wfID)
		s.wfIndex.Delete(wfID)
	}
	return nil
}

// RemoveWorkflowByName removes the user's workflow by name.
func (s *Store) RemoveWorkflowByName(userID int, name string) error {
	wf, err := s.WorkflowByName(userID, name)
	if err != nil {
		return err
	}
	return s.RemoveWorkflow(userID, wf.WorkflowID)
}

// AssociatePE links a PE to a workflow
// (PUT /registry/{user}/workflow/{workflowId}/pe/{peId}).
func (s *Store) AssociatePE(userID, wfID, peID int) error {
	s.simulateWAN()
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.userWorkflows[userID][wfID] {
		return core.ErrNotFound("workflowId", "workflow %d is not registered to this user", wfID)
	}
	if _, ok := s.pes[peID]; !ok {
		return core.ErrNotFound("peId", "no PE with id %d", peID)
	}
	if s.workflowPEs[wfID] == nil {
		s.workflowPEs[wfID] = map[int]bool{}
	}
	s.workflowPEs[wfID][peID] = true
	return nil
}

// PEsByWorkflow returns all PEs belonging to a workflow — the query the
// two-way many-to-many design exists to make cheap (Section 3.1).
func (s *Store) PEsByWorkflow(userID, wfID int) ([]core.PERecord, error) {
	s.simulateWAN()
	s.mu.RLock()
	defer s.mu.RUnlock()
	if !s.userWorkflows[userID][wfID] {
		return nil, core.ErrNotFound("workflowId", "workflow %d is not registered to this user", wfID)
	}
	var out []core.PERecord
	for peID := range s.workflowPEs[wfID] {
		if pe := s.pes[peID]; pe != nil {
			out = append(out, *pe)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PEID < out[j].PEID })
	return out, nil
}

// Listing returns everything the user has registered
// (GET /registry/{user}/all).
func (s *Store) Listing(userID int) core.RegistryListing {
	return core.RegistryListing{
		PEs:       s.PEsForUser(userID),
		Workflows: s.WorkflowsForUser(userID),
	}
}

// ---- vector search ----

// SemanticSearch ranks the user's visible PEs against a description-
// embedding query via the incrementally maintained description index
// (Section 4.2). Unlike the historic path there is no per-query snapshot of
// every record: the index answers the top-k probe directly.
func (s *Store) SemanticSearch(userID int, queryEmbedding []float32, limit int) []core.SearchHit {
	return s.indexSearch(userID, queryEmbedding, limit, false)
}

// CompletionSearch ranks the user's visible PEs against a code-embedding
// query via the incrementally maintained code index (Section 4.3).
func (s *Store) CompletionSearch(userID int, queryEmbedding []float32, limit int) []core.SearchHit {
	return s.indexSearch(userID, queryEmbedding, limit, true)
}

// SemanticSearchWorkflows ranks the user's visible workflows against a
// description-embedding query via the workflow index — the paper only
// indexes PEs; this makes SearchBoth semantic for both registry kinds.
func (s *Store) SemanticSearchWorkflows(userID int, queryEmbedding []float32, limit int) []core.SearchHit {
	s.simulateWAN()
	if limit <= 0 {
		limit = search.DefaultLimit
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.wfHitsLocked(userID, queryEmbedding, limit)
}

// SemanticSearchBoth probes the PE-description and workflow indexes in a
// single registry round trip (one simulated WAN hop, one lock hold) and
// merges the two score-descending lists — the SearchBoth serving path must
// not pay the remote-registry latency twice.
func (s *Store) SemanticSearchBoth(userID int, queryEmbedding []float32, limit int) []core.SearchHit {
	s.simulateWAN()
	if limit <= 0 {
		limit = search.DefaultLimit
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return search.MergeRanked(
		s.peHitsLocked(userID, queryEmbedding, limit, false),
		s.wfHitsLocked(userID, queryEmbedding, limit),
		limit)
}

func (s *Store) indexSearch(userID int, query []float32, limit int, code bool) []core.SearchHit {
	s.simulateWAN()
	if limit <= 0 {
		limit = search.DefaultLimit
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.peHitsLocked(userID, query, limit, code)
}

// peHitsLocked probes a PE index (description or code embeddings) under the
// held read lock and resolves the candidates to hits.
func (s *Store) peHitsLocked(userID int, query []float32, limit int, code bool) []core.SearchHit {
	idx := s.descIndex
	if code {
		idx = s.codeIndex
	}
	visible := s.userPEs[userID]
	cands := idx.Search(query, limit, func(id int) bool { return visible[id] })
	return search.HitsFromCandidates(cands, func(id int) (core.PERecord, bool) {
		if pe := s.pes[id]; pe != nil {
			return *pe, true
		}
		return core.PERecord{}, false
	})
}

// wfHitsLocked probes the workflow index under the held read lock.
func (s *Store) wfHitsLocked(userID int, query []float32, limit int) []core.SearchHit {
	visible := s.userWorkflows[userID]
	cands := s.wfIndex.Search(query, limit, func(id int) bool { return visible[id] })
	return search.WorkflowHitsFromCandidates(cands, func(id int) (core.WorkflowRecord, bool) {
		if wf := s.workflows[id]; wf != nil {
			return *wf, true
		}
		return core.WorkflowRecord{}, false
	})
}

// ---- persistence ----

// snapshot is the JSON-serializable registry state.
type snapshot struct {
	Users          []core.UserRecord     `json:"users"`
	PasswordHashes map[int]string        `json:"passwordHashes"`
	PEs            []core.PERecord       `json:"pes"`
	Workflows      []core.WorkflowRecord `json:"workflows"`
	UserPEs        map[int][]int         `json:"userPes"`
	UserWorkflows  map[int][]int         `json:"userWorkflows"`
	WorkflowPEs    map[int][]int         `json:"workflowPes"`
	NextUserID     int                   `json:"nextUserId"`
	NextPEID       int                   `json:"nextPeId"`
	NextWorkflowID int                   `json:"nextWorkflowId"`
	// Embeddings are persisted packed (base64 float32, see packedVec) in
	// these id-keyed maps rather than inline in the records — at registry
	// scale the inline JSON number arrays dominated both file size and
	// load time. Legacy files carry them inline instead; Load accepts both.
	PEDescVecs       map[int]packedVec `json:"peDescVecs,omitempty"`
	PECodeVecs       map[int]packedVec `json:"peCodeVecs,omitempty"`
	WorkflowDescVecs map[int]packedVec `json:"workflowDescVecs,omitempty"`
	// Indexes carries the serialized vector-index structure (centroids +
	// shard assignments, not vectors — those live in the maps above) so
	// a restart restores the trained clustering instead of re-running
	// k-means. Absent in pre-index snapshot files, which simply rebuild.
	Indexes *indexSnapshots `json:"indexes,omitempty"`
}

// indexSnapshots groups the per-embedding-kind index snapshots.
type indexSnapshots struct {
	Desc     *index.Snapshot `json:"desc,omitempty"`
	Code     *index.Snapshot `json:"code,omitempty"`
	Workflow *index.Snapshot `json:"workflow,omitempty"`
}

// Save writes the registry to a JSON file.
func (s *Store) Save(path string) error {
	s.mu.RLock()
	snap := snapshot{
		PasswordHashes: map[int]string{},
		UserPEs:        map[int][]int{},
		UserWorkflows:  map[int][]int{},
		WorkflowPEs:    map[int][]int{},
		NextUserID:     s.nextUserID,
		NextPEID:       s.nextPEID,
		NextWorkflowID: s.nextWorkflowID,
	}
	for _, u := range s.users {
		snap.Users = append(snap.Users, *u)
		snap.PasswordHashes[u.UserID] = u.PasswordHash
	}
	snap.PEDescVecs = map[int]packedVec{}
	snap.PECodeVecs = map[int]packedVec{}
	snap.WorkflowDescVecs = map[int]packedVec{}
	for _, pe := range s.pes {
		rec := *pe
		if len(rec.DescEmbedding) > 0 {
			snap.PEDescVecs[rec.PEID] = packedVec(rec.DescEmbedding)
			rec.DescEmbedding = nil
		}
		if len(rec.CodeEmbedding) > 0 {
			snap.PECodeVecs[rec.PEID] = packedVec(rec.CodeEmbedding)
			rec.CodeEmbedding = nil
		}
		snap.PEs = append(snap.PEs, rec)
	}
	for _, wf := range s.workflows {
		rec := *wf
		if len(rec.DescEmbedding) > 0 {
			snap.WorkflowDescVecs[rec.WorkflowID] = packedVec(rec.DescEmbedding)
			rec.DescEmbedding = nil
		}
		snap.Workflows = append(snap.Workflows, rec)
	}
	for uid, set := range s.userPEs {
		snap.UserPEs[uid] = setToSlice(set)
	}
	for uid, set := range s.userWorkflows {
		snap.UserWorkflows[uid] = setToSlice(set)
	}
	for wid, set := range s.workflowPEs {
		snap.WorkflowPEs[wid] = setToSlice(set)
	}
	snap.Indexes = &indexSnapshots{
		Desc:     s.descIndex.Snapshot(),
		Code:     s.codeIndex.Snapshot(),
		Workflow: s.wfIndex.Snapshot(),
	}
	s.mu.RUnlock()
	sort.Slice(snap.Users, func(i, j int) bool { return snap.Users[i].UserID < snap.Users[j].UserID })
	sort.Slice(snap.PEs, func(i, j int) bool { return snap.PEs[i].PEID < snap.PEs[j].PEID })
	sort.Slice(snap.Workflows, func(i, j int) bool { return snap.Workflows[i].WorkflowID < snap.Workflows[j].WorkflowID })
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return fmt.Errorf("registry: marshal snapshot: %w", err)
	}
	// Atomic replace: a crash mid-write must never leave a truncated file
	// where the previous good snapshot used to be (Load refuses to boot
	// over damaged JSON, so a torn write would otherwise wedge restarts).
	// The data is fsynced before the rename — without it, some filesystems
	// commit the rename ahead of the data blocks and power loss still
	// yields an empty file.
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("registry: write snapshot: %w", err)
	}
	if _, err := f.Write(data); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("registry: write snapshot: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("registry: install snapshot: %w", err)
	}
	return nil
}

// Load replaces the registry contents from a JSON file.
func (s *Store) Load(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("registry: read snapshot: %w", err)
	}
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("registry: parse snapshot: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.users = map[int]*core.UserRecord{}
	s.pes = map[int]*core.PERecord{}
	s.workflows = map[int]*core.WorkflowRecord{}
	s.userPEs = map[int]map[int]bool{}
	s.userWorkflows = map[int]map[int]bool{}
	s.workflowPEs = map[int]map[int]bool{}
	for i := range snap.Users {
		u := snap.Users[i]
		u.PasswordHash = snap.PasswordHashes[u.UserID]
		s.users[u.UserID] = &u
		s.userPEs[u.UserID] = map[int]bool{}
		s.userWorkflows[u.UserID] = map[int]bool{}
	}
	for i := range snap.PEs {
		pe := snap.PEs[i]
		// Re-attach packed embeddings; legacy files carry them inline and
		// the maps are simply absent.
		if v, ok := snap.PEDescVecs[pe.PEID]; ok && len(pe.DescEmbedding) == 0 {
			pe.DescEmbedding = v
		}
		if v, ok := snap.PECodeVecs[pe.PEID]; ok && len(pe.CodeEmbedding) == 0 {
			pe.CodeEmbedding = v
		}
		s.pes[pe.PEID] = &pe
	}
	for i := range snap.Workflows {
		wf := snap.Workflows[i]
		if v, ok := snap.WorkflowDescVecs[wf.WorkflowID]; ok && len(wf.DescEmbedding) == 0 {
			wf.DescEmbedding = v
		}
		s.workflows[wf.WorkflowID] = &wf
	}
	for uid, ids := range snap.UserPEs {
		if s.userPEs[uid] == nil {
			s.userPEs[uid] = map[int]bool{}
		}
		for _, id := range ids {
			s.userPEs[uid][id] = true
		}
	}
	for uid, ids := range snap.UserWorkflows {
		if s.userWorkflows[uid] == nil {
			s.userWorkflows[uid] = map[int]bool{}
		}
		for _, id := range ids {
			s.userWorkflows[uid][id] = true
		}
	}
	for wid, ids := range snap.WorkflowPEs {
		s.workflowPEs[wid] = map[int]bool{}
		for _, id := range ids {
			s.workflowPEs[wid][id] = true
		}
	}
	s.nextUserID = snap.NextUserID
	s.nextPEID = snap.NextPEID
	s.nextWorkflowID = snap.NextWorkflowID
	// Restore the persisted index structure when it still matches the
	// records (same kind, same version, checksum over exactly these
	// embeddings); otherwise — missing, stale, or foreign-kind snapshot —
	// fall back to a full rebuild. The snapshots are also stashed so a
	// later ConfigureIndex (the façade selects the index kind after
	// loading) gets the same restore-first treatment.
	s.loadedIndexSnaps = snap.Indexes
	if !s.tryRestoreIndexesLocked() {
		s.rebuildIndexesLocked()
	}
	return nil
}

// embeddingSetsLocked collects the per-kind embedding maps exactly as the
// indexes hold them: only records with a non-empty embedding appear (the
// rest are not semantically searchable), so the maps line up with the
// snapshot checksums.
func (s *Store) embeddingSetsLocked() (desc, code, wf map[int][]float32) {
	desc = map[int][]float32{}
	code = map[int][]float32{}
	wf = map[int][]float32{}
	for id, pe := range s.pes {
		if len(pe.DescEmbedding) > 0 {
			desc[id] = pe.DescEmbedding
		}
		if len(pe.CodeEmbedding) > 0 {
			code[id] = pe.CodeEmbedding
		}
	}
	for id, w := range s.workflows {
		if len(w.DescEmbedding) > 0 {
			wf[id] = w.DescEmbedding
		}
	}
	return desc, code, wf
}

// tryRestoreIndexesLocked attempts to bring up all three indexes from the
// snapshots stashed by the last Load, restoring them in parallel (checksum
// validation and vector copies dominate and are independent per index).
// All-or-nothing: a single mismatch (kind, version, checksum) leaves the
// previous indexes in place and reports false so the caller rebuilds
// instead.
func (s *Store) tryRestoreIndexesLocked() bool {
	snaps := s.loadedIndexSnaps
	if snaps == nil || snaps.Desc == nil || snaps.Code == nil || snaps.Workflow == nil {
		return false
	}
	descVecs, codeVecs, wfVecs := s.embeddingSetsLocked()
	desc, code, wf := s.indexFactory(), s.indexFactory(), s.indexFactory()
	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i, r := range []struct {
		idx  index.VectorIndex
		snap *index.Snapshot
		vecs map[int][]float32
	}{
		{desc, snaps.Desc, descVecs},
		{code, snaps.Code, codeVecs},
		{wf, snaps.Workflow, wfVecs},
	} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = r.idx.Restore(r.snap, r.vecs)
		}()
	}
	wg.Wait()
	if errs[0] != nil || errs[1] != nil || errs[2] != nil {
		return false
	}
	s.descIndex, s.codeIndex, s.wfIndex = desc, code, wf
	s.indexesRestored = true
	// The stash has served its purpose; dropping it releases the O(N)
	// assignment maps instead of pinning them for the store's lifetime.
	// (On failure Load keeps it for a subsequent ConfigureIndex with the
	// matching kind, which consumes it either way.)
	s.loadedIndexSnaps = nil
	return true
}

func setToSlice(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// UserIDForToken resolves a session token.
func (s *Store) UserIDForToken(token string) (int, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	id, ok := s.tokens[token]
	return id, ok
}
