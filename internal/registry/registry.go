// Package registry implements Laminar's central repository (Section 3.1):
// users, Processing Elements and workflows with the exact schema of Table 2,
// one-way many-to-many user↔PE/workflow ownership, two-way many-to-many
// PE↔workflow association, and stored embeddings for semantic search.
//
// The package is the registry's *serving* layer. Since the layered-storage
// refactor it is organized by domain — users.go, pes.go, workflows.go,
// search.go — with persistence delegated to internal/registry/storage
// (persist.go holds the glue). Concurrency is sharded the same way: each
// domain has its own RWMutex, and each vector index is internally
// synchronized, so heavy semantic-search traffic on the PE shard no longer
// serializes against user logins or workflow registrations, and Save never
// holds any write lock while marshaling (see docs/storage.md).
//
// The store owns three incrementally maintained vector indexes — PE
// descriptions, PE code, and workflow descriptions — and persists their
// trained structure alongside its records, so Load restores a trained
// index with no k-means retrain whenever the snapshot still matches the
// records.
//
// The paper hosts the registry on a remote web-based MySQL service; this
// implementation is an embedded, durable store with a configurable
// simulated WAN latency so the remote-registry deployments of Table 5 can
// be reproduced.
package registry

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"laminar/internal/core"
	"laminar/internal/index"
	"laminar/internal/lexical"
	"laminar/internal/registry/storage"
)

// Store is the registry state. All methods are safe for concurrent use.
//
// Locking is sharded per domain. The shards are independent for
// single-domain operations; an operation spanning shards acquires them in
// the fixed order users → pes → wfs → idx (never the reverse), which is
// what makes the compound paths (AddWorkflow validating PE ids,
// RemovePE detaching workflow associations, Save copying everything)
// deadlock-free.
type Store struct {
	// users shard: accounts and session tokens.
	usersMu    sync.RWMutex
	users      map[int]*core.UserRecord
	tokens     map[string]int // session token → userID
	nextUserID int

	// pes shard: PE records and user→PE ownership.
	pesMu    sync.RWMutex
	pes      map[int]*core.PERecord
	userPEs  map[int]map[int]bool // userID → set of peIDs (ownership)
	nextPEID int

	// wfs shard: workflow records, user→workflow ownership, and the two-way
	// workflow↔PE association table.
	wfsMu          sync.RWMutex
	workflows      map[int]*core.WorkflowRecord
	userWorkflows  map[int]map[int]bool // userID → set of workflowIDs
	workflowPEs    map[int]map[int]bool // workflowID → set of peIDs
	nextWorkflowID int

	// idx shard guards the index *pointers* and restore bookkeeping; the
	// indexes themselves are internally synchronized, so holding idxMu.R
	// just long enough to copy a pointer is all a search needs.
	idxMu        sync.RWMutex
	indexFactory index.Factory
	descIndex    index.VectorIndex // PE description embeddings (semantic search)
	codeIndex    index.VectorIndex // PE code embeddings (code completion)
	wfIndex      index.VectorIndex // workflow description embeddings
	// The BM25 lexical leg of hybrid retrieval: inverted indexes over PE
	// text (name + description + decoded code) and workflow text. Guarded
	// by idxMu like the vector-index pointers; internally synchronized.
	peLex *lexical.Index
	wfLex *lexical.Index

	// loadedIndexSnaps stashes the index snapshots read by the last Load.
	// Lifecycle: a successful restore (in Load or ConfigureIndex) clears
	// it, and ConfigureIndex consumes it even on failure; it survives a
	// failed Load-restore only so an embedder using the load-then-configure
	// order can still restore (the checksum guards staleness). The one
	// case that retains it for the store's lifetime is a kind-switch
	// restart with no later ConfigureIndex — bounded by one registry's
	// assignment maps.
	loadedIndexSnaps *storage.IndexSnapshots
	// indexesRestored records whether the live indexes came from a snapshot
	// restore (true) or a rebuild (false) — observability for the
	// restart-without-retrain guarantee.
	indexesRestored bool
	// metrics, when set by SetTelemetry, holds the store's persistence
	// instruments and the per-index instrument sets re-installed into
	// every fresh index (guarded by idxMu).
	metrics *storeMetrics

	// storeFormat selects the on-disk snapshot format Save writes
	// (storage.Format; 0 = the current default, v2).
	storeFormat atomic.Int32
	// saveMu serializes Save calls. The shard locks make the state *copy*
	// safe, but two interleaved v2 installs to the same path could each
	// sweep the sidecar the other's JSON references; one save at a time
	// keeps the sweep sound (and overlapping full-snapshot writes would
	// only waste IO anyway). It also guards the delta-chain bookkeeping
	// below — chain continuity is meaningless across interleaved saves.
	saveMu sync.Mutex
	// chain/chainPath/chainBaseBytes track the delta journal anchored to
	// the last full save or load at chainPath; deltaPolicy holds the
	// compaction thresholds. All guarded by saveMu. chainSegments mirrors
	// chain.Seq for lock-free telemetry scrapes.
	chain          storage.DeltaChain
	chainPath      string
	chainBaseBytes int64
	deltaPolicy    DeltaPolicy
	chainSegments  atomic.Int64

	// epoch counts mutations (plus loads, index reconfigurations and
	// read-only flips — anything that may change what a search returns).
	// Query caches tag entries with it; see Epoch.
	epoch atomic.Int64
	// dirtyMu guards dirty, the record/row change set the next SaveDelta
	// drains. A leaf lock: taken briefly under shard locks, never around
	// them.
	dirtyMu sync.Mutex
	dirty   dirtyState

	// readOnly, when set, rejects every mutating operation with
	// core.ErrReadOnly. Cluster query replicas restored from a snapshot
	// run in this mode: they serve searches and reads, never writes.
	readOnly atomic.Bool

	// latency simulates the WAN round trip to the remote registry service
	// (nanoseconds); wanHops counts the simulated round trips taken
	// (observability, and it lets tests pin "one registry call"
	// deterministically instead of timing sleeps).
	latency atomic.Int64
	wanHops atomic.Int64
	// clock is injectable for tests; set at construction, never mutated.
	clock func() time.Time
}

// NewStore creates an empty registry backed by the exact Flat index.
func NewStore() *Store {
	factory := func() index.VectorIndex { return index.NewFlat() }
	return &Store{
		users:          map[int]*core.UserRecord{},
		tokens:         map[string]int{},
		pes:            map[int]*core.PERecord{},
		userPEs:        map[int]map[int]bool{},
		workflows:      map[int]*core.WorkflowRecord{},
		userWorkflows:  map[int]map[int]bool{},
		workflowPEs:    map[int]map[int]bool{},
		indexFactory:   factory,
		descIndex:      factory(),
		codeIndex:      factory(),
		wfIndex:        factory(),
		peLex:          lexical.New(),
		wfLex:          lexical.New(),
		nextUserID:     1,
		nextPEID:       1,
		nextWorkflowID: 1,
		clock:          time.Now,
		dirty:          newDirtyState(),
		deltaPolicy:    DefaultDeltaPolicy(),
	}
}

// ConfigureIndex swaps the vector-index implementation (e.g. for the
// clustered ANN index) and repopulates all three indexes from the current
// record set — restoring from the snapshots of the last Load when they
// still match, retraining only when they don't. It consumes the stash
// either way: a stash that failed here can only fail again (the records
// it would have to match are not going to change back).
func (s *Store) ConfigureIndex(factory index.Factory) {
	s.pesMu.RLock()
	defer s.pesMu.RUnlock()
	s.wfsMu.RLock()
	defer s.wfsMu.RUnlock()
	s.idxMu.Lock()
	defer s.idxMu.Unlock()
	s.indexFactory = factory
	if !s.tryRestoreIndexesLocked() {
		s.rebuildIndexesLocked()
	}
	s.loadedIndexSnaps = nil
	// Swapping the index implementation replaces the structures every
	// cached ANN answer came from; the epoch bump is what invalidates them
	// (the per-index generation counter restarts with the fresh indexes).
	s.epoch.Add(1)
}

// IndexName reports the active vector-index implementation.
func (s *Store) IndexName() string {
	s.idxMu.RLock()
	defer s.idxMu.RUnlock()
	return s.descIndex.Name()
}

// IndexesRestored reports whether the live vector indexes were restored
// from a persisted snapshot (no retrain) rather than rebuilt.
func (s *Store) IndexesRestored() bool {
	s.idxMu.RLock()
	defer s.idxMu.RUnlock()
	return s.indexesRestored
}

// indexes returns the three live index pointers under a brief read lock.
func (s *Store) indexes() (desc, code, wf index.VectorIndex) {
	s.idxMu.RLock()
	defer s.idxMu.RUnlock()
	return s.descIndex, s.codeIndex, s.wfIndex
}

// WaitIndexReady blocks until no background index retrain is in flight —
// benchmarks and tests use it to measure a settled index; the serving path
// never calls it.
func (s *Store) WaitIndexReady() {
	desc, code, wf := s.indexes()
	for _, idx := range []index.VectorIndex{desc, code, wf} {
		if w, ok := idx.(interface{ WaitRetrain() }); ok {
			w.WaitRetrain()
		}
	}
}

// RetrainIndexes forces one full synchronous retrain of every index that
// supports it, reaching the same fully-trained-over-the-whole-corpus state
// a snapshot restore reproduces instantly. The three indexes retrain
// concurrently, mirroring the parallel restore path, so the
// rebuild-vs-restore benchmark compares like with like. It is the
// benchmark baseline for the restore path; serving deployments rely on
// background retrains instead.
func (s *Store) RetrainIndexes() {
	desc, code, wf := s.indexes()
	var wg sync.WaitGroup
	for _, idx := range []index.VectorIndex{desc, code, wf} {
		if tr, ok := idx.(interface{ TrainNow() }); ok {
			wg.Add(1)
			go func() {
				defer wg.Done()
				tr.TrainNow()
			}()
		}
	}
	wg.Wait()
}

// rebuildIndexesLocked re-creates all three indexes from the records.
// Caller holds pesMu.R (or stronger), wfsMu.R (or stronger) and idxMu.W.
func (s *Store) rebuildIndexesLocked() {
	s.indexesRestored = false
	s.descIndex = s.indexFactory()
	s.codeIndex = s.indexFactory()
	s.wfIndex = s.indexFactory()
	s.applyIndexMetricsLocked()
	for id, pe := range s.pes {
		if len(pe.DescEmbedding) > 0 {
			s.descIndex.Upsert(id, pe.DescEmbedding)
		}
		if len(pe.CodeEmbedding) > 0 {
			s.codeIndex.Upsert(id, pe.CodeEmbedding)
		}
	}
	for id, wf := range s.workflows {
		if len(wf.DescEmbedding) > 0 {
			s.wfIndex.Upsert(id, wf.DescEmbedding)
		}
	}
}

// indexPE upserts a PE's stored embeddings into both PE indexes (empty
// embeddings are skipped — such PEs are not semantically searchable) and
// its text into the lexical index (unconditionally — the BM25 leg works
// without embeddings). Callers hold the pes shard lock; the index pointers
// are fetched under idxMu.R, respecting the lock order.
func (s *Store) indexPE(id int, pe *core.PERecord) {
	desc, code, _ := s.indexes()
	if len(pe.DescEmbedding) > 0 {
		desc.Upsert(id, pe.DescEmbedding)
	}
	if len(pe.CodeEmbedding) > 0 {
		code.Upsert(id, pe.CodeEmbedding)
	}
	peLex, _ := s.lexIndexes()
	peLex.Upsert(id, peLexDoc(pe))
}

// indexWorkflow upserts a workflow's description embedding into the
// workflow index and its text into the workflow lexical index.
func (s *Store) indexWorkflow(id int, wf *core.WorkflowRecord) {
	if len(wf.DescEmbedding) > 0 {
		_, _, wfIdx := s.indexes()
		wfIdx.Upsert(id, wf.DescEmbedding)
	}
	_, wfLex := s.lexIndexes()
	wfLex.Upsert(id, wfLexDoc(wf))
}

// SetReadOnly switches the store's write protection. A read-only store
// (a cluster query replica) rejects registrations, removals and
// associations with a 403 ReadOnlyError; reads, logins and searches are
// unaffected. An actual flip bumps the mutation epoch: a replica being
// promoted (or a primary demoted) is exactly the moment cached results
// from the previous role must stop being served.
func (s *Store) SetReadOnly(ro bool) {
	if s.readOnly.Swap(ro) != ro {
		s.epoch.Add(1)
	}
}

// ReadOnly reports whether the store rejects mutations.
func (s *Store) ReadOnly() bool { return s.readOnly.Load() }

// checkWritable is the guard every mutating operation calls first.
func (s *Store) checkWritable() error {
	if s.readOnly.Load() {
		return core.ErrReadOnly("this node is a read-only query replica; send writes to a shard primary")
	}
	return nil
}

// SetLatency configures the simulated WAN round trip applied to every
// operation (the registry is "hosted remotely on the web-based service").
func (s *Store) SetLatency(d time.Duration) {
	s.latency.Store(int64(d))
}

func (s *Store) simulateWAN() {
	s.wanHops.Add(1)
	if d := time.Duration(s.latency.Load()); d > 0 {
		time.Sleep(d)
	}
}

// WANHops reports how many simulated remote round trips the store has
// served.
func (s *Store) WANHops() int64 { return s.wanHops.Load() }

func setToSlice(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}
