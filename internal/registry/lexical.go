package registry

import (
	"strings"
	"time"

	"laminar/internal/codec"
	"laminar/internal/core"
	"laminar/internal/lexical"
	"laminar/internal/registry/storage"
	"laminar/internal/search"
)

// The hybrid retrieval pipeline (ROADMAP item 3): the ANN leg and the BM25
// lexical leg each retrieve an overfetched candidate pool, reciprocal-rank
// fusion merges the two rankings, and an optional cross-encoder rerank
// rescores the fused pool before the final top-k. The lexical indexes are
// maintained incrementally by the same indexPE/indexWorkflow/Remove hooks
// that maintain the vector indexes, and persist as optional v2 sidecar
// sections.

// hybridOverfetch widens both retrieval legs (and the fused pool the
// reranker sees) to limit × hybridOverfetch candidates, so a document
// ranked modestly by both legs — or poorly by ANN but well lexically —
// can still reach the final top-k.
const hybridOverfetch = 4

// lexIndexes returns the two live lexical-index pointers under a brief
// read lock, mirroring indexes().
func (s *Store) lexIndexes() (pe, wf *lexical.Index) {
	s.idxMu.RLock()
	defer s.idxMu.RUnlock()
	return s.peLex, s.wfLex
}

// peLexDoc builds a PE's lexical document: name, description, and code.
// PECode is normally a codec envelope (compressed, base64 — opaque to a
// tokenizer), so it is decoded back to class name + source + imports;
// plain-text code from older clients indexes as-is.
func peLexDoc(pe *core.PERecord) string {
	code := pe.PECode
	if env, err := codec.Decode(pe.PECode); err == nil {
		code = env.Name + "\n" + env.Source + "\n" + strings.Join(env.Imports, "\n")
	}
	return pe.PEName + "\n" + pe.Description + "\n" + code
}

// wfLexDoc builds a workflow's lexical document: name, entry point and
// description — the fields workflow search matches on.
func wfLexDoc(wf *core.WorkflowRecord) string {
	return wf.WorkflowName + "\n" + wf.EntryPoint + "\n" + wf.Description
}

// restoreOrRebuildLexicalLocked replaces both lexical indexes after a Load:
// restored from the snapshot when every per-document source checksum still
// matches the freshly loaded records (all-or-nothing across both indexes),
// re-tokenized from scratch otherwise — absent sections (v1 files,
// pre-lexical sidecars) and stale snapshots cost a rebuild, never a load
// failure. Caller holds pesMu and wfsMu (read or stronger) and idxMu.W.
func (s *Store) restoreOrRebuildLexicalLocked(snaps *storage.LexicalSnapshots) {
	peDocs := make(map[int]string, len(s.pes))
	for id, pe := range s.pes {
		peDocs[id] = peLexDoc(pe)
	}
	wfDocs := make(map[int]string, len(s.workflows))
	for id, wf := range s.workflows {
		wfDocs[id] = wfLexDoc(wf)
	}
	if snaps != nil {
		peLex, wfLex := lexical.New(), lexical.New()
		if peLex.Restore(snaps.PE, peDocs) == nil && wfLex.Restore(snaps.Workflow, wfDocs) == nil {
			s.peLex, s.wfLex = peLex, wfLex
			return
		}
	}
	peLex, wfLex := lexical.New(), lexical.New()
	for id, doc := range peDocs {
		peLex.Upsert(id, doc)
	}
	for id, doc := range wfDocs {
		wfLex.Upsert(id, doc)
	}
	s.peLex, s.wfLex = peLex, wfLex
}

// HybridQuery parameterizes HybridSearch.
type HybridQuery struct {
	// Text is the query text driving the lexical leg and the rerank
	// stage. Empty text skips both (the pipeline degrades to pure ANN).
	Text string
	// Embedding is the precomputed query embedding for the ANN leg
	// (bi-encoder contract: the client embeds its own query). Nil skips
	// the ANN leg — the pipeline degrades to pure lexical.
	Embedding []float32
	// Code selects the PE code index for the ANN leg (code-completion
	// queries); code queries never target workflows, matching the ANN
	// serving path.
	Code bool
	// Type selects PEs, workflows, or both.
	Type core.SearchType
	// Limit is the final result count (DefaultLimit when unset).
	Limit int
	// Rerank enables the cross-encoder stage over the fused pool.
	Rerank bool
}

// HybridSearch runs the hybrid retrieval pipeline in one registry round
// trip (a single simulated WAN hop, like SemanticSearchBoth): ANN and
// lexical legs each retrieve limit×hybridOverfetch candidates under the
// held shard read locks, reciprocal-rank fusion merges them, and when
// requested the cross-encoder reranks the fused pool down to the final
// limit. Either leg may be absent (nil embedding, empty text) — fusion
// degrades to the surviving leg, so hybrid mode never returns less than
// the stronger single-leg answer.
func (s *Store) HybridSearch(userID int, q HybridQuery) []core.SearchHit {
	s.simulateWAN()
	limit := q.Limit
	if limit <= 0 {
		limit = search.DefaultLimit
	}
	pool := limit * hybridOverfetch
	searchPEs := q.Type == core.SearchPEs || q.Type == core.SearchBoth
	searchWFs := (q.Type == core.SearchWorkflows || q.Type == core.SearchBoth) && !q.Code
	if searchPEs {
		s.pesMu.RLock()
		defer s.pesMu.RUnlock()
	}
	if searchWFs {
		s.wfsMu.RLock()
		defer s.wfsMu.RUnlock()
	}
	m := s.instruments()

	var annLeg []core.SearchHit
	if q.Embedding != nil {
		var peHits, wfHits []core.SearchHit
		if searchPEs {
			peHits = s.peHitsLocked(userID, q.Embedding, pool, q.Code)
		}
		if searchWFs {
			wfHits = s.wfHitsLocked(userID, q.Embedding, pool)
		}
		annLeg = search.MergeRanked(peHits, wfHits, pool)
	}

	var lexLeg []core.SearchHit
	if q.Text != "" {
		start := time.Now()
		var peHits, wfHits []core.SearchHit
		if searchPEs {
			peHits = s.lexPEHitsLocked(userID, q.Text, pool)
		}
		if searchWFs {
			wfHits = s.lexWFHitsLocked(userID, q.Text, pool)
		}
		// BM25 scores from the two lexical indexes share one scoring
		// scheme, so a score merge is meaningful (as it is for the two
		// cosine legs of SemanticSearchBoth).
		lexLeg = search.MergeRanked(peHits, wfHits, pool)
		if m != nil {
			m.lexicalSearches.Inc()
			m.lexicalSeconds.ObserveSince(start)
		}
	}

	if !q.Rerank {
		return search.FuseRRF(limit, annLeg, lexLeg)
	}
	fused := search.FuseRRF(pool, annLeg, lexLeg)
	start := time.Now()
	out := search.Rerank(q.Text, fused, limit)
	if m != nil {
		m.rerankSearches.Inc()
		m.rerankSeconds.ObserveSince(start)
		m.rerankPool.Observe(float64(len(fused)))
	}
	return out
}

// lexPEHitsLocked probes the PE lexical index under the held pes read lock
// — the BM25 twin of peHitsLocked, sharing its visibility filter and
// candidate resolution.
func (s *Store) lexPEHitsLocked(userID int, query string, limit int) []core.SearchHit {
	peLex, _ := s.lexIndexes()
	visible := s.userPEs[userID]
	cands := peLex.Search(query, limit, func(id int) bool { return visible[id] })
	return search.HitsFromCandidates(cands, func(id int) (core.PERecord, bool) {
		if pe := s.pes[id]; pe != nil {
			return *pe, true
		}
		return core.PERecord{}, false
	})
}

// lexWFHitsLocked probes the workflow lexical index under the held wfs
// read lock — the BM25 twin of wfHitsLocked.
func (s *Store) lexWFHitsLocked(userID int, query string, limit int) []core.SearchHit {
	_, wfLex := s.lexIndexes()
	visible := s.userWorkflows[userID]
	cands := wfLex.Search(query, limit, func(id int) bool { return visible[id] })
	return search.WorkflowHitsFromCandidates(cands, func(id int) (core.WorkflowRecord, bool) {
		if wf := s.workflows[id]; wf != nil {
			return *wf, true
		}
		return core.WorkflowRecord{}, false
	})
}

// LexicalStats reports the live document and distinct-term counts across
// both lexical indexes (PEs + workflows) — the scrape-time gauges.
func (s *Store) LexicalStats() (docs, terms int) {
	pe, wf := s.lexIndexes()
	return pe.Len() + wf.Len(), pe.Terms() + wf.Terms()
}
