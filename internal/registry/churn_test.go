package registry

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"laminar/internal/core"
	"laminar/internal/registry/storage"
)

// The churn wall: randomized add/remove/replace/search/save interleavings,
// asserting that a store reloaded through the base + delta-journal chain is
// byte-for-byte identical to one reloaded from a monolithic full save of
// the same live state. Run under -race it doubles as a locking audit of the
// dirty-tracking and journal paths.

// recordBytes serializes a store's record state deterministically. Trained
// index structure and lexical postings are stripped: a restore and a replay
// legitimately build different internal shapes over the same records, and
// search equivalence is asserted separately.
func recordBytes(t *testing.T, s *Store, dir, name string) []byte {
	t.Helper()
	snap, _ := s.collectSnapshot()
	snap.Indexes = nil
	snap.Lexical = nil
	p := filepath.Join(dir, name)
	if err := storage.Save(p, storage.FormatV1, snap); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func churnVec(rng *rand.Rand) []float32 {
	return []float32{rng.Float32(), rng.Float32(), rng.Float32()}
}

func TestChurnWallDeltaReloadMatchesFullSave(t *testing.T) {
	for trial := 0; trial < 5; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(1000 + trial)))
			dir := t.TempDir()
			path := filepath.Join(dir, "reg.json")
			s := NewStore()
			// Long chains are the interesting case; keep compaction out of
			// the way except in the trial that provokes it.
			s.SetDeltaPolicy(DeltaPolicy{MaxSegments: 500, CompactRatio: 0.95})
			u := newUser(t, s, "ann")
			for i := 0; i < 12; i++ {
				addPE(t, s, u.UserID, fmt.Sprintf("Seed%02d", i))
			}
			if err := s.Save(path); err != nil {
				t.Fatal(err)
			}

			names := func() []string {
				var out []string
				for _, pe := range s.PEsForUser(u.UserID) {
					out = append(out, pe.PEName)
				}
				return out
			}
			nextWF := 0
			for op := 0; op < 120; op++ {
				switch rng.Intn(10) {
				case 0, 1, 2: // new or replacing registration
					name := fmt.Sprintf("Churn%02d", rng.Intn(20))
					_, _, err := s.UpsertPE(u.UserID, core.AddPERequest{
						PEName: name, Description: "d " + name,
						PECode:        fmt.Sprintf("code-op%d", op),
						DescEmbedding: churnVec(rng), CodeEmbedding: churnVec(rng),
					})
					if err != nil {
						t.Fatalf("op %d upsert: %v", op, err)
					}
				case 3: // removal
					if ns := names(); len(ns) > 1 {
						if err := s.RemovePEByName(u.UserID, ns[rng.Intn(len(ns))]); err != nil {
							t.Fatalf("op %d remove: %v", op, err)
						}
					}
				case 4: // workflows churn too
					nextWF++
					if _, err := s.AddWorkflow(u.UserID, core.AddWorkflowRequest{
						WorkflowName: fmt.Sprintf("wf%03d", nextWF), EntryPoint: "run",
						WorkflowCode: "code", DescEmbedding: churnVec(rng),
					}); err != nil {
						t.Fatalf("op %d workflow: %v", op, err)
					}
				case 5: // concurrent-feeling reads between mutations
					s.SemanticSearch(u.UserID, churnVec(rng), 5)
				case 6, 7: // delta save mid-stream
					if err := s.SaveDelta(path); err != nil {
						t.Fatalf("op %d delta save: %v", op, err)
					}
				case 8: // retrain: moves the generation, must not corrupt state
					s.RetrainIndexes()
				case 9: // occasional full save re-anchors the journal
					if trial%2 == 0 {
						if err := s.Save(path); err != nil {
							t.Fatalf("op %d full save: %v", op, err)
						}
					}
				}
			}
			if err := s.SaveDelta(path); err != nil {
				t.Fatal(err)
			}

			// Ground truth: a monolithic save of the same live state.
			fullPath := filepath.Join(dir, "full.json")
			if err := s.Save(fullPath); err != nil {
				t.Fatal(err)
			}

			viaDeltas := NewStore()
			if err := viaDeltas.Load(path); err != nil {
				t.Fatalf("load via delta chain: %v", err)
			}
			viaFull := NewStore()
			if err := viaFull.Load(fullPath); err != nil {
				t.Fatalf("load via full save: %v", err)
			}

			got := recordBytes(t, viaDeltas, dir, "via-deltas.json")
			want := recordBytes(t, viaFull, dir, "via-full.json")
			if !bytes.Equal(got, want) {
				t.Fatalf("delta-chain reload diverged from full-save reload (%d vs %d bytes)", len(got), len(want))
			}

			// Search equivalence over the reloaded stores: same records must
			// answer the same queries identically (flat index, exact scan).
			for q := 0; q < 10; q++ {
				vec := churnVec(rng)
				a := viaDeltas.SemanticSearch(u.UserID, vec, 5)
				b := viaFull.SemanticSearch(u.UserID, vec, 5)
				if len(a) != len(b) {
					t.Fatalf("query %d: %d vs %d hits", q, len(a), len(b))
				}
				for i := range a {
					if a[i].ID != b[i].ID || a[i].Score != b[i].Score {
						t.Fatalf("query %d hit %d diverged: %+v vs %+v", q, i, a[i], b[i])
					}
				}
			}
		})
	}
}

// TestChurnCompactionThreshold drives the journal past its segment budget
// and checks the save path compacts into a fresh base instead of growing
// the chain without bound.
func TestChurnCompactionThreshold(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "reg.json")
	s := NewStore()
	s.SetDeltaPolicy(DeltaPolicy{MaxSegments: 3, CompactRatio: 0.95})
	u := newUser(t, s, "ann")
	for i := 0; i < 40; i++ {
		addPE(t, s, u.UserID, fmt.Sprintf("Seed%02d", i))
	}
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	maxSeen := uint64(0)
	for i := 0; i < 12; i++ {
		if _, _, err := s.UpsertPE(u.UserID, core.AddPERequest{
			PEName: "Hot", PECode: fmt.Sprintf("v%d", i),
			DescEmbedding: []float32{1, 0, 0}, CodeEmbedding: []float32{0, 1, 0},
		}); err != nil {
			t.Fatal(err)
		}
		if err := s.SaveDelta(path); err != nil {
			t.Fatal(err)
		}
		if segs, _ := s.DeltaChainInfo(); segs > maxSeen {
			maxSeen = segs
		}
	}
	if maxSeen < 3 {
		t.Fatalf("journal never grew (max %d segments) — thresholds too eager for the test", maxSeen)
	}
	if segs, _ := s.DeltaChainInfo(); segs > 3 {
		t.Fatalf("chain at %d segments, policy caps at 3", segs)
	}
	// The compacted state still reloads losslessly.
	s2 := NewStore()
	if err := s2.Load(path); err != nil {
		t.Fatal(err)
	}
	pe, err := s2.PEByName(u.UserID, "Hot")
	if err != nil || pe.PECode != "v11" {
		t.Fatalf("hot record after compaction = %+v, %v", pe, err)
	}
}

// TestEpochMovesOnReplicaTransitions pins the cache-invalidation contract
// for every transition that changes what a search may return without
// touching a record: restore (Load), read-only flips, index swaps.
func TestEpochMovesOnReplicaTransitions(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "reg.json")
	seed := NewStore()
	u := newUser(t, seed, "ann")
	addPE(t, seed, u.UserID, "Alpha")
	if err := seed.Save(path); err != nil {
		t.Fatal(err)
	}

	s := NewStore()
	mark := s.Epoch()
	step := func(what string, fn func()) {
		t.Helper()
		fn()
		if now := s.Epoch(); now == mark {
			t.Fatalf("%s did not move the epoch", what)
		} else {
			mark = now
		}
	}
	step("Load (replica restore)", func() {
		if err := s.Load(path); err != nil {
			t.Fatal(err)
		}
	})
	step("SetReadOnly(true)", func() { s.SetReadOnly(true) })
	step("SetReadOnly(false)", func() { s.SetReadOnly(false) })
	step("mutation", func() { addPE(t, s, u.UserID, "Beta") })
	// Same-value flips are not transitions and must not thrash caches.
	s.SetReadOnly(false)
	if s.Epoch() != mark {
		t.Fatal("no-op read-only set bumped the epoch")
	}
}
