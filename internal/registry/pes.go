package registry

import (
	"sort"
	"strings"

	"laminar/internal/core"
)

// PE operations live on the pes shard. Registrations and removals contend
// only with other PE traffic (and searches resolving PE candidates), never
// with user or workflow operations.

// AddPE registers a PE for a user. When a PE with the same name and code
// already exists (registered by another user), the user is added as an
// additional owner instead of creating a duplicate entry (Section 3.1).
func (s *Store) AddPE(userID int, req core.AddPERequest) (*core.PERecord, error) {
	s.simulateWAN()
	if err := s.checkWritable(); err != nil {
		return nil, err
	}
	if req.PEID < 0 {
		return nil, core.ErrBadRequest("peId", "peId must be positive when set")
	}
	if strings.TrimSpace(req.PEName) == "" {
		return nil, core.ErrBadRequest("peName", "PE name must not be empty")
	}
	if req.PECode == "" {
		return nil, core.ErrBadRequest("peCode", "PE code must not be empty")
	}
	if !s.userExists(userID) {
		return nil, core.ErrNotFound("user", "no such user id %d", userID)
	}
	s.pesMu.Lock()
	defer s.pesMu.Unlock()
	if s.userPEs[userID] == nil {
		s.userPEs[userID] = map[int]bool{}
	}
	for _, pe := range s.pes {
		if pe.PEName == req.PEName {
			// Same name: associate this user as an additional owner. As with
			// workflows, adopt embeddings the stored record lacks (a record
			// predating stored embeddings, re-registered by a newer client)
			// rather than silently discarding what the client computed.
			s.userPEs[userID][pe.PEID] = true
			adopted := false
			if len(pe.DescEmbedding) == 0 && len(req.DescEmbedding) > 0 {
				pe.DescEmbedding = append([]float32(nil), req.DescEmbedding...)
				adopted = true
			}
			if len(pe.CodeEmbedding) == 0 && len(req.CodeEmbedding) > 0 {
				pe.CodeEmbedding = append([]float32(nil), req.CodeEmbedding...)
				adopted = true
			}
			if adopted {
				s.indexPE(pe.PEID, pe)
			}
			peID := pe.PEID
			s.markDirty(func(d *dirtyState) {
				if adopted {
					d.pes[peID] = true
				}
				d.ownerPEs[userID] = true
			})
			return pe, nil
		}
	}
	// A pinned id (cluster write routing: the coordinator assigns global
	// ids and consistent-hashes them to shards) is honored verbatim; a
	// collision is a conflict, never a silent reassignment, because the
	// record's home shard is derived from its id.
	id := s.nextPEID
	if req.PEID > 0 {
		if _, taken := s.pes[req.PEID]; taken {
			return nil, core.ErrConflict("peId", "PE id %d is already registered", req.PEID)
		}
		id = req.PEID
	}
	pe := &core.PERecord{
		PEID:           id,
		PEName:         req.PEName,
		Description:    req.Description,
		AutoSummarized: req.AutoSummarized,
		PECode:         req.PECode,
		PEImports:      append([]string(nil), req.PEImports...),
		CodeEmbedding:  append([]float32(nil), req.CodeEmbedding...),
		DescEmbedding:  append([]float32(nil), req.DescEmbedding...),
		CreatedAt:      s.clock(),
	}
	if pe.PEID >= s.nextPEID {
		s.nextPEID = pe.PEID + 1
	}
	s.pes[pe.PEID] = pe
	s.userPEs[userID][pe.PEID] = true
	s.indexPE(pe.PEID, pe)
	s.markDirty(func(d *dirtyState) {
		d.pes[pe.PEID] = true
		d.ownerPEs[userID] = true
	})
	return pe, nil
}

// UpsertPE registers a PE or — unlike AddPE, whose same-name path only
// *adds an owner* — replaces an existing same-name PE's content in place:
// description, code, imports and embeddings are overwritten (the id, the
// creation time and every ownership row survive) and all indexes are
// updated incrementally. This is the re-registration path continuous
// ingestion needs: a watched source file changed, so the record must
// follow it. Reports whether a new record was created.
func (s *Store) UpsertPE(userID int, req core.AddPERequest) (*core.PERecord, bool, error) {
	s.simulateWAN()
	if err := s.checkWritable(); err != nil {
		return nil, false, err
	}
	if strings.TrimSpace(req.PEName) == "" {
		return nil, false, core.ErrBadRequest("peName", "PE name must not be empty")
	}
	if req.PECode == "" {
		return nil, false, core.ErrBadRequest("peCode", "PE code must not be empty")
	}
	if !s.userExists(userID) {
		return nil, false, core.ErrNotFound("user", "no such user id %d", userID)
	}
	s.pesMu.Lock()
	var existing *core.PERecord
	for _, pe := range s.pes {
		if pe.PEName == req.PEName {
			existing = pe
			break
		}
	}
	if existing == nil {
		s.pesMu.Unlock()
		// No record to replace: a plain registration. AddPE re-validates and
		// re-scans under its own lock acquisition; a same-name record that
		// appeared in the window becomes an owner association, which a
		// subsequent upsert will replace — eventual convergence under racing
		// ingestors, never a duplicate.
		pe, err := s.AddPE(userID, req)
		return pe, err == nil, err
	}
	defer s.pesMu.Unlock()
	if s.userPEs[userID] == nil {
		s.userPEs[userID] = map[int]bool{}
	}
	s.userPEs[userID][existing.PEID] = true
	existing.Description = req.Description
	existing.AutoSummarized = req.AutoSummarized
	existing.PECode = req.PECode
	existing.PEImports = append([]string(nil), req.PEImports...)
	existing.DescEmbedding = append([]float32(nil), req.DescEmbedding...)
	existing.CodeEmbedding = append([]float32(nil), req.CodeEmbedding...)
	// Re-index under the same shard lock. indexPE skips empty embeddings,
	// so stale index entries for an embedding the new content dropped must
	// be deleted explicitly.
	desc, code, _ := s.indexes()
	if len(existing.DescEmbedding) == 0 {
		desc.Delete(existing.PEID)
	}
	if len(existing.CodeEmbedding) == 0 {
		code.Delete(existing.PEID)
	}
	s.indexPE(existing.PEID, existing)
	s.markDirty(func(d *dirtyState) {
		d.pes[existing.PEID] = true
		d.ownerPEs[userID] = true
	})
	return existing, false, nil
}

// PEByID fetches a PE owned by (or visible to) the user.
func (s *Store) PEByID(userID, peID int) (*core.PERecord, error) {
	s.simulateWAN()
	s.pesMu.RLock()
	defer s.pesMu.RUnlock()
	pe, ok := s.pes[peID]
	if !ok {
		return nil, core.ErrNotFound("peId", "no PE with id %d", peID)
	}
	if !s.userPEs[userID][peID] {
		return nil, core.ErrNotFound("peId", "PE %d is not registered to this user", peID)
	}
	return pe, nil
}

// PEByName fetches a user's PE by class name.
func (s *Store) PEByName(userID int, name string) (*core.PERecord, error) {
	s.simulateWAN()
	s.pesMu.RLock()
	defer s.pesMu.RUnlock()
	for id := range s.userPEs[userID] {
		if pe := s.pes[id]; pe != nil && pe.PEName == name {
			return pe, nil
		}
	}
	return nil, core.ErrNotFound("peName", "no PE named %q for this user", name)
}

// PEsForUser lists the user's PEs ordered by id.
func (s *Store) PEsForUser(userID int) []core.PERecord {
	s.simulateWAN()
	s.pesMu.RLock()
	defer s.pesMu.RUnlock()
	var out []core.PERecord
	for id := range s.userPEs[userID] {
		if pe := s.pes[id]; pe != nil {
			out = append(out, *pe)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PEID < out[j].PEID })
	return out
}

// RemovePE detaches the PE from the user; the record is deleted once no
// owner remains.
func (s *Store) RemovePE(userID, peID int) error {
	s.simulateWAN()
	if err := s.checkWritable(); err != nil {
		return err
	}
	s.pesMu.Lock()
	defer s.pesMu.Unlock()
	if _, ok := s.pes[peID]; !ok {
		return core.ErrNotFound("peId", "no PE with id %d", peID)
	}
	if !s.userPEs[userID][peID] {
		return core.ErrNotFound("peId", "PE %d is not registered to this user", peID)
	}
	delete(s.userPEs[userID], peID)
	// delete fully when orphaned
	owned := false
	for _, set := range s.userPEs {
		if set[peID] {
			owned = true
			break
		}
	}
	var detachedWFs []int
	if !owned {
		delete(s.pes, peID)
		desc, code, _ := s.indexes()
		desc.Delete(peID)
		code.Delete(peID)
		peLex, _ := s.lexIndexes()
		peLex.Delete(peID)
		// Detach the orphaned PE from every workflow. Taking the wfs lock
		// while holding the pes lock follows the pes → wfs shard order.
		s.wfsMu.Lock()
		for wid := range s.workflowPEs {
			if s.workflowPEs[wid][peID] {
				detachedWFs = append(detachedWFs, wid)
			}
			delete(s.workflowPEs[wid], peID)
		}
		s.wfsMu.Unlock()
	}
	s.markDirty(func(d *dirtyState) {
		d.ownerPEs[userID] = true
		if !owned {
			d.pes[peID] = true
			for _, wid := range detachedWFs {
				d.assocWFs[wid] = true
			}
		}
	})
	return nil
}

// RemovePEByName removes the user's PE by class name.
func (s *Store) RemovePEByName(userID int, name string) error {
	pe, err := s.PEByName(userID, name)
	if err != nil {
		return err
	}
	return s.RemovePE(userID, pe.PEID)
}
