package registry

import (
	"errors"
	"io/fs"
	"sync"
	"time"

	"laminar/internal/core"
	"laminar/internal/index"
	"laminar/internal/registry/storage"
)

// Persistence glue. The serving layer's only persistence jobs are (a)
// producing a consistent logical snapshot under briefly-held read locks and
// (b) installing a loaded one under the write locks; every on-disk concern
// — formats, streaming, the binary sidecar, atomicity — belongs to
// internal/registry/storage.

// SetStoreFormat selects the on-disk format Save writes: "v2" (the
// default: streamed JSON + binary vector sidecar) or "v1" (the legacy
// monolithic JSON document). Load always auto-detects, so a v1 file loaded
// by a v2-configured store is migrated in place by its next Save.
func (s *Store) SetStoreFormat(name string) error {
	f, err := storage.ParseFormat(name)
	if err != nil {
		return err
	}
	s.storeFormat.Store(int32(f))
	return nil
}

// StoreFormat reports the configured on-disk format name.
func (s *Store) StoreFormat() string { return s.format().String() }

func (s *Store) format() storage.Format {
	if f := storage.Format(s.storeFormat.Load()); f != 0 {
		return f
	}
	return storage.FormatV2
}

// Save writes the registry to path in the configured format. No shard
// write lock is ever involved and no shard lock at all is held while
// marshaling: collectSnapshot copies the state under the shard read locks
// (concurrent searches keep running; writers wait only for the copy, not
// the serialization or the disk), then the storage layer streams it out.
// Saves themselves are serialized by saveMu so two concurrent Saves to
// the same path cannot sweep each other's sidecar generation. A full save
// also re-anchors the delta journal: the fresh base subsumes (and its
// install sweeps) any segments chained to the previous one. Owners saving
// under churn should prefer SaveDelta, which writes a journal segment
// proportional to what changed and compacts through this path when the
// policy says so.
func (s *Store) Save(path string) error {
	s.saveMu.Lock()
	defer s.saveMu.Unlock()
	return s.saveFullLocked(path, false)
}

// instruments reads the telemetry handle under the idx shard lock.
func (s *Store) instruments() *storeMetrics {
	s.idxMu.RLock()
	defer s.idxMu.RUnlock()
	return s.metrics
}

// collectSnapshot builds the logical snapshot handed to the storage layer.
// All four shard read locks are held together (in lock order) so the copy
// is a consistent point-in-time view; the index snapshots are taken under
// the same locks, which is what keeps their checksums bound to exactly the
// copied records. Vector slices are shared, not copied — they are
// immutable by convention once stored (writers always replace, never
// mutate in place). The dirty set is swapped out under the same locks —
// a full snapshot covers every pending change by construction — and
// returned so a failed save can merge it back.
func (s *Store) collectSnapshot() (*storage.Snapshot, dirtyState) {
	s.usersMu.RLock()
	defer s.usersMu.RUnlock()
	s.pesMu.RLock()
	defer s.pesMu.RUnlock()
	s.wfsMu.RLock()
	defer s.wfsMu.RUnlock()
	s.idxMu.RLock()
	defer s.idxMu.RUnlock()

	captured := s.swapDirtyLocked()

	snap := &storage.Snapshot{
		PasswordHashes:   map[int]string{},
		UserPEs:          map[int][]int{},
		UserWorkflows:    map[int][]int{},
		WorkflowPEs:      map[int][]int{},
		NextUserID:       s.nextUserID,
		NextPEID:         s.nextPEID,
		NextWorkflowID:   s.nextWorkflowID,
		PEDescVecs:       map[int][]float32{},
		PECodeVecs:       map[int][]float32{},
		WorkflowDescVecs: map[int][]float32{},
	}
	for _, u := range s.users {
		snap.Users = append(snap.Users, *u)
		snap.PasswordHashes[u.UserID] = u.PasswordHash
	}
	for _, pe := range s.pes {
		rec := *pe
		if len(rec.DescEmbedding) > 0 {
			snap.PEDescVecs[rec.PEID] = rec.DescEmbedding
			rec.DescEmbedding = nil
		}
		if len(rec.CodeEmbedding) > 0 {
			snap.PECodeVecs[rec.PEID] = rec.CodeEmbedding
			rec.CodeEmbedding = nil
		}
		snap.PEs = append(snap.PEs, rec)
	}
	for _, wf := range s.workflows {
		rec := *wf
		if len(rec.DescEmbedding) > 0 {
			snap.WorkflowDescVecs[rec.WorkflowID] = rec.DescEmbedding
			rec.DescEmbedding = nil
		}
		snap.Workflows = append(snap.Workflows, rec)
	}
	for uid, set := range s.userPEs {
		snap.UserPEs[uid] = setToSlice(set)
	}
	for uid, set := range s.userWorkflows {
		snap.UserWorkflows[uid] = setToSlice(set)
	}
	for wid, set := range s.workflowPEs {
		snap.WorkflowPEs[wid] = setToSlice(set)
	}
	snap.Indexes = &storage.IndexSnapshots{
		Desc:     s.descIndex.Snapshot(),
		Code:     s.codeIndex.Snapshot(),
		Workflow: s.wfIndex.Snapshot(),
	}
	snap.Lexical = &storage.LexicalSnapshots{
		PE:       s.peLex.Snapshot(),
		Workflow: s.wfLex.Snapshot(),
	}
	return snap, captured
}

// Load replaces the registry contents from a snapshot file (either
// format; auto-detected) plus any delta journal chained to it: the base
// installs first (restoring trained indexes when the snapshots still
// match), then each journal segment replays through the incremental index
// paths — the restored structure is kept, never retrained, exactly as if
// the segments' mutations had arrived live.
func (s *Store) Load(path string) error {
	m := s.instruments()
	start := time.Now()
	snap, deltas, chain, _, err := storage.LoadWithDeltas(path)
	if err != nil {
		// An absent file is a fresh start, not a failed load — owners
		// treat it as a no-op, so the error counter must too.
		if m != nil && !errors.Is(err, fs.ErrNotExist) {
			m.loadErrors.Inc()
		}
		return err
	}
	defer func() {
		if m != nil {
			m.loads.Inc()
			m.loadSeconds.ObserveSince(start)
		}
	}()
	// saveMu before the shard locks — the same order Save uses (saveMu →
	// shard read locks) — because the chain bookkeeping updated below
	// belongs to it.
	s.saveMu.Lock()
	defer s.saveMu.Unlock()
	s.usersMu.Lock()
	defer s.usersMu.Unlock()
	s.pesMu.Lock()
	defer s.pesMu.Unlock()
	s.wfsMu.Lock()
	defer s.wfsMu.Unlock()
	s.idxMu.Lock()
	defer s.idxMu.Unlock()

	s.users = map[int]*core.UserRecord{}
	s.pes = map[int]*core.PERecord{}
	s.workflows = map[int]*core.WorkflowRecord{}
	s.userPEs = map[int]map[int]bool{}
	s.userWorkflows = map[int]map[int]bool{}
	s.workflowPEs = map[int]map[int]bool{}
	for i := range snap.Users {
		u := snap.Users[i]
		u.PasswordHash = snap.PasswordHashes[u.UserID]
		s.users[u.UserID] = &u
	}
	for i := range snap.PEs {
		pe := snap.PEs[i]
		if v, ok := snap.PEDescVecs[pe.PEID]; ok {
			pe.DescEmbedding = v
		}
		if v, ok := snap.PECodeVecs[pe.PEID]; ok {
			pe.CodeEmbedding = v
		}
		s.pes[pe.PEID] = &pe
	}
	for i := range snap.Workflows {
		wf := snap.Workflows[i]
		if v, ok := snap.WorkflowDescVecs[wf.WorkflowID]; ok {
			wf.DescEmbedding = v
		}
		s.workflows[wf.WorkflowID] = &wf
	}
	for uid, ids := range snap.UserPEs {
		if s.userPEs[uid] == nil {
			s.userPEs[uid] = map[int]bool{}
		}
		for _, id := range ids {
			s.userPEs[uid][id] = true
		}
	}
	for uid, ids := range snap.UserWorkflows {
		if s.userWorkflows[uid] == nil {
			s.userWorkflows[uid] = map[int]bool{}
		}
		for _, id := range ids {
			s.userWorkflows[uid][id] = true
		}
	}
	for wid, ids := range snap.WorkflowPEs {
		s.workflowPEs[wid] = map[int]bool{}
		for _, id := range ids {
			s.workflowPEs[wid][id] = true
		}
	}
	s.nextUserID = snap.NextUserID
	s.nextPEID = snap.NextPEID
	s.nextWorkflowID = snap.NextWorkflowID
	// Restore the persisted index structure when it still matches the
	// records (same kind, same version, checksum over exactly these
	// embeddings); otherwise — missing, stale, or foreign-kind snapshot —
	// fall back to a full rebuild. The snapshots are also stashed so a
	// later ConfigureIndex (the façade selects the index kind after
	// loading) gets the same restore-first treatment.
	s.loadedIndexSnaps = snap.Indexes
	if !s.tryRestoreIndexesLocked() {
		s.rebuildIndexesLocked()
	}
	// The lexical indexes restore or rebuild on the same terms, but are
	// not stashed: unlike the vector indexes their kind never changes, so
	// no later ConfigureIndex could use a retained snapshot.
	s.restoreOrRebuildLexicalLocked(snap.Lexical)
	// Replay the journal on top of the installed base. The storage layer
	// already proved the segments form an unbroken chain to exactly this
	// base, so applying them in order reproduces the last saved state.
	for _, d := range deltas {
		s.applyDeltaLocked(d)
	}
	// Continue the journal where it left off, with a clean dirty set (the
	// in-memory state now equals the on-disk state byte for byte). saveMu
	// is already held (taken above, before the shard locks).
	s.chainPath = path
	s.chain = chain
	s.chainSegments.Store(int64(chain.Seq))
	if size, serr := storage.DiskSize(path); serr == nil {
		s.chainBaseBytes = size - chain.Bytes
	} else {
		s.chainBaseBytes = 0
	}
	s.swapDirtyLocked()
	// A load replaces every record a cached result could reference.
	s.epoch.Add(1)
	return nil
}

// embeddingSetsLocked collects the per-kind embedding maps exactly as the
// indexes hold them: only records with a non-empty embedding appear (the
// rest are not semantically searchable), so the maps line up with the
// snapshot checksums. Caller holds pesMu and wfsMu (read or write).
func (s *Store) embeddingSetsLocked() (desc, code, wf map[int][]float32) {
	desc = map[int][]float32{}
	code = map[int][]float32{}
	wf = map[int][]float32{}
	for id, pe := range s.pes {
		if len(pe.DescEmbedding) > 0 {
			desc[id] = pe.DescEmbedding
		}
		if len(pe.CodeEmbedding) > 0 {
			code[id] = pe.CodeEmbedding
		}
	}
	for id, w := range s.workflows {
		if len(w.DescEmbedding) > 0 {
			wf[id] = w.DescEmbedding
		}
	}
	return desc, code, wf
}

// tryRestoreIndexesLocked attempts to bring up all three indexes from the
// snapshots stashed by the last Load, restoring them in parallel (checksum
// validation and vector copies dominate and are independent per index).
// All-or-nothing: a single mismatch (kind, version, checksum) leaves the
// previous indexes in place and reports false so the caller rebuilds
// instead. Caller holds pesMu.R/wfsMu.R (or stronger) and idxMu.W.
func (s *Store) tryRestoreIndexesLocked() bool {
	snaps := s.loadedIndexSnaps
	if snaps == nil || snaps.Desc == nil || snaps.Code == nil || snaps.Workflow == nil {
		return false
	}
	descVecs, codeVecs, wfVecs := s.embeddingSetsLocked()
	desc, code, wf := s.indexFactory(), s.indexFactory(), s.indexFactory()
	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i, r := range []struct {
		idx  index.VectorIndex
		snap *index.Snapshot
		vecs map[int][]float32
	}{
		{desc, snaps.Desc, descVecs},
		{code, snaps.Code, codeVecs},
		{wf, snaps.Workflow, wfVecs},
	} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = r.idx.Restore(r.snap, r.vecs)
		}()
	}
	wg.Wait()
	if errs[0] != nil || errs[1] != nil || errs[2] != nil {
		return false
	}
	s.descIndex, s.codeIndex, s.wfIndex = desc, code, wf
	s.indexesRestored = true
	s.applyIndexMetricsLocked()
	// The stash has served its purpose; dropping it releases the O(N)
	// assignment maps instead of pinning them for the store's lifetime.
	// (On failure Load keeps it for a subsequent ConfigureIndex with the
	// matching kind, which consumes it either way.)
	s.loadedIndexSnaps = nil
	return true
}
