package pype

import (
	"fmt"
	"strings"

	"laminar/internal/pycode"
)

// ClassSource extracts the self-contained source of one PE class: the
// module-level import statements it may reference plus the class block
// itself. This is what the registry stores as peCode (the paper serializes
// each PE individually with cloudpickle) and what the code embedding is
// computed from — so two PEs defined in the same file embed independently.
func ClassSource(source, className string) (string, error) {
	prog, err := pycode.Parse(source)
	if err != nil {
		return "", err
	}
	lines := strings.Split(source, "\n")
	// top-level statement start lines mark block boundaries
	var starts []int
	var target *pycode.ClassStmt
	for _, st := range prog.Body {
		line, _ := st.Pos()
		starts = append(starts, line)
		if cls, ok := st.(*pycode.ClassStmt); ok && cls.Name == className {
			target = cls
		}
	}
	if target == nil {
		return "", fmt.Errorf("pype: class %q not found in source", className)
	}
	classLine, _ := target.Pos()
	endLine := len(lines)
	for _, s := range starts {
		if s > classLine && s-1 < endLine {
			endLine = s - 1
		}
	}
	var sb strings.Builder
	// carry module-level imports (the class body may reference them)
	for _, st := range prog.Body {
		switch st.(type) {
		case *pycode.ImportStmt, *pycode.FromImportStmt:
			line, _ := st.Pos()
			if line-1 >= 0 && line-1 < len(lines) {
				sb.WriteString(strings.TrimRight(lines[line-1], " \t"))
				sb.WriteString("\n")
			}
		}
	}
	if sb.Len() > 0 {
		sb.WriteString("\n")
	}
	for i := classLine - 1; i < endLine && i < len(lines); i++ {
		sb.WriteString(strings.TrimRight(lines[i], " \t"))
		sb.WriteString("\n")
	}
	return strings.TrimRight(sb.String(), "\n") + "\n", nil
}
