package pype

import (
	"bytes"
	"sort"
	"strings"
	"testing"

	"laminar/internal/dataflow"
)

// isPrimeSource is Listing 3 of the paper, verbatim in shape.
const isPrimeSource = `
import random

class NumberProducer(ProducerPE):
    def __init__(self):
        ProducerPE.__init__(self)
    def _process(self):
        # Generate a random number
        result = random.randint(1, 1000)
        return result

class IsPrime(IterativePE):
    def __init__(self):
        IterativePE.__init__(self)
    def _process(self, num):
        print("before checking data - %s - is prime or not" % num)
        if all(num % i != 0 for i in range(2, num)):
            return num

class PrintPrime(ConsumerPE):
    def __init__(self):
        ConsumerPE.__init__(self)
    def _process(self, num):
        print("the num %s is prime" % num)

pe1 = NumberProducer()
pe2 = IsPrime()
pe3 = PrintPrime()

graph = WorkflowGraph()
graph.connect(pe1, 'output', pe2, 'input')
graph.connect(pe2, 'output', pe3, 'input')
`

func TestBuildIsPrimeWorkflow(t *testing.T) {
	res, err := BuildWorkflow(isPrimeSource, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PENames) != 3 {
		t.Fatalf("PE names: %v", res.PENames)
	}
	pes := res.Graph.PEs()
	if len(pes) != 3 {
		t.Fatalf("graph has %d PEs", len(pes))
	}
	initial, err := res.Graph.InitialPE()
	if err != nil {
		t.Fatal(err)
	}
	if initial.Name() != "NumberProducer" {
		t.Errorf("initial PE = %s", initial.Name())
	}
	// port shapes
	prod, _ := res.Graph.PE("NumberProducer")
	if len(prod.Inputs()) != 0 || len(prod.Outputs()) != 1 {
		t.Errorf("producer ports: %v %v", prod.Inputs(), prod.Outputs())
	}
	cons, _ := res.Graph.PE("PrintPrime")
	if len(cons.Inputs()) != 1 || len(cons.Outputs()) != 0 {
		t.Errorf("consumer ports: %v %v", cons.Inputs(), cons.Outputs())
	}
}

func TestRunIsPrimeAllMappings(t *testing.T) {
	for _, m := range []dataflow.Mapping{dataflow.MappingSimple, dataflow.MappingMulti, dataflow.MappingMPI, dataflow.MappingRedis} {
		m := m
		t.Run(string(m), func(t *testing.T) {
			res, err := BuildWorkflow(isPrimeSource, Options{Seed: 42})
			if err != nil {
				t.Fatal(err)
			}
			var out bytes.Buffer
			result, err := dataflow.Run(res.Graph, dataflow.Options{
				Mapping:    m,
				Iterations: 5,
				Processes:  5,
				Stdout:     &out,
			})
			if err != nil {
				t.Fatal(err)
			}
			if result.Processed("NumberProducer") != 5 {
				t.Errorf("producer ran %d times", result.Processed("NumberProducer"))
			}
			if result.Processed("IsPrime") != 5 {
				t.Errorf("IsPrime processed %d", result.Processed("IsPrime"))
			}
			text := out.String()
			if !strings.Contains(text, "before checking data") {
				t.Errorf("missing IsPrime output: %q", text)
			}
		})
	}
}

func TestStatefulCountWordsGroupBy(t *testing.T) {
	// Listing 2's stateful group-by word count, fed by a deterministic
	// producer, verified across all mappings.
	src := `
from collections import defaultdict

class WordProducer(ProducerPE):
    def __init__(self):
        ProducerPE.__init__(self)
        self.words = ["stream", "data", "flow", "stream", "data", "stream"]
        self.i = 0
    def _process(self):
        word = self.words[self.i % len(self.words)]
        self.i += 1
        return (word, 1)

class CountWords(GenericPE):
    def __init__(self):
        GenericPE.__init__(self)
        self._add_input("input", grouping=[0])
        self._add_output("output")
        self.count = defaultdict(int)
    def _process(self, inputs):
        word, count = inputs['input']
        self.count[word] += count

graph = WorkflowGraph()
wp = WordProducer()
cw = CountWords()
graph.connect(wp, 'output', cw, 'input')
`
	for _, m := range []dataflow.Mapping{dataflow.MappingSimple, dataflow.MappingMulti, dataflow.MappingRedis} {
		m := m
		t.Run(string(m), func(t *testing.T) {
			res, err := BuildWorkflow(src, Options{Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			result, err := dataflow.Run(res.Graph, dataflow.Options{
				Mapping: m, Iterations: 12, Processes: 6,
			})
			if err != nil {
				t.Fatal(err)
			}
			if result.Processed("CountWords") != 12 {
				t.Errorf("CountWords processed %d, want 12", result.Processed("CountWords"))
			}
		})
	}
}

func TestGenericWriteMethod(t *testing.T) {
	// self.write(port, value) inside _process reaches downstream PEs.
	src := `
class Splitter(GenericPE):
    def __init__(self):
        GenericPE.__init__(self)
        self._add_input("input")
        self._add_output("evens")
        self._add_output("odds")
    def _process(self, inputs):
        n = inputs['input']
        if n % 2 == 0:
            self.write("evens", n)
        else:
            self.write("odds", n)

class Numbers(ProducerPE):
    def __init__(self):
        ProducerPE.__init__(self)
        self.n = 0
    def _process(self):
        self.n += 1
        return self.n

graph = WorkflowGraph()
p = Numbers()
s = Splitter()
graph.connect(p, 'output', s, 'input')
`
	res, err := BuildWorkflow(src, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	result, err := dataflow.Run(res.Graph, dataflow.Options{
		Mapping: dataflow.MappingSimple, Iterations: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	evens := result.Outputs("Splitter.evens")
	odds := result.Outputs("Splitter.odds")
	if len(evens) != 5 || len(odds) != 5 {
		t.Fatalf("evens=%v odds=%v", evens, odds)
	}
}

func TestInstancesHaveIndependentState(t *testing.T) {
	// With several instances, each pycode instance keeps its own counter;
	// the counters must sum to the total records.
	src := `
class Producer(ProducerPE):
    def __init__(self):
        ProducerPE.__init__(self)
    def _process(self):
        return 1

class Acc(GenericPE):
    def __init__(self):
        GenericPE.__init__(self)
        self._add_input("input")
        self._add_output("output")
        self.total = 0
    def _process(self, inputs):
        self.total += inputs['input']

graph = WorkflowGraph()
p = Producer()
a = Acc()
graph.connect(p, 'output', a, 'input')
`
	res, err := BuildWorkflow(src, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	result, err := dataflow.Run(res.Graph, dataflow.Options{
		Mapping: dataflow.MappingMulti, Iterations: 20, Processes: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if result.Processed("Acc") != 20 {
		t.Errorf("Acc processed %d", result.Processed("Acc"))
	}
	if result.Alloc["Acc"] < 2 {
		t.Errorf("want multiple Acc instances, got %d", result.Alloc["Acc"])
	}
}

func TestSinglePEFaaSStyle(t *testing.T) {
	// A source with only a PE class runs as a single-PE workflow, like a
	// traditional FaaS function (Section 3.4.1).
	src := `
import random

class NumberProducer(ProducerPE):
    def __init__(self):
        ProducerPE.__init__(self)
    def _process(self):
        return random.randint(1, 1000)
`
	res, err := BuildWorkflow(src, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	result, err := dataflow.Run(res.Graph, dataflow.Options{
		Mapping: dataflow.MappingSimple, Iterations: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	vals := result.Outputs("NumberProducer.output")
	if len(vals) != 3 {
		t.Fatalf("outputs: %v", vals)
	}
	for _, v := range vals {
		n := v.(int64)
		if n < 1 || n > 1000 {
			t.Errorf("out of range: %d", n)
		}
	}
}

func TestSeededRunsAreDeterministic(t *testing.T) {
	runOnce := func() []int64 {
		res, err := BuildWorkflow(isPrimeSource, Options{Seed: 1234})
		if err != nil {
			t.Fatal(err)
		}
		result, err := dataflow.Run(res.Graph, dataflow.Options{
			Mapping: dataflow.MappingSimple, Iterations: 10,
		})
		if err != nil {
			t.Fatal(err)
		}
		var primes []int64
		for _, v := range result.Outputs("PrintPrime.output") {
			primes = append(primes, v.(int64))
		}
		sort.Slice(primes, func(i, j int) bool { return primes[i] < primes[j] })
		return primes
	}
	_ = runOnce // PrintPrime is a consumer: no sink outputs. Verify stdout instead.
	out1 := runStdout(t, 1234)
	out2 := runStdout(t, 1234)
	if out1 != out2 {
		t.Errorf("same seed, different output:\n%q\n%q", out1, out2)
	}
	out3 := runStdout(t, 99)
	if out1 == out3 {
		t.Errorf("different seeds produced identical output")
	}
}

func runStdout(t *testing.T, seed int64) string {
	t.Helper()
	res, err := BuildWorkflow(isPrimeSource, Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	result, err := dataflow.Run(res.Graph, dataflow.Options{
		Mapping: dataflow.MappingSimple, Iterations: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	return result.StdoutText
}

func TestPEClassNames(t *testing.T) {
	names, err := PEClassNames(isPrimeSource)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"NumberProducer", "IsPrime", "PrintPrime"}
	if len(names) != 3 {
		t.Fatalf("names: %v", names)
	}
	for i, n := range want {
		if names[i] != n {
			t.Errorf("names[%d] = %s, want %s", i, names[i], n)
		}
	}
}

func TestDuplicateClassInstancesGetUniqueNodeNames(t *testing.T) {
	src := `
class P(ProducerPE):
    def __init__(self):
        ProducerPE.__init__(self)
    def _process(self):
        return 1

class Merge(GenericPE):
    def __init__(self):
        GenericPE.__init__(self)
        self._add_input("a")
        self._add_input("b")
        self._add_output("output")
    def _process(self, inputs):
        for k in inputs.keys():
            self.write("output", inputs[k])

graph = WorkflowGraph()
p1 = P()
p2 = P()
m = Merge()
graph.connect(p1, 'output', m, 'a')
graph.connect(p2, 'output', m, 'b')
`
	res, err := BuildWorkflow(src, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Graph.PEs()) != 3 {
		t.Fatalf("graph PEs: %d", len(res.Graph.PEs()))
	}
	result, err := dataflow.Run(res.Graph, dataflow.Options{
		Mapping: dataflow.MappingMulti, Iterations: 4, Processes: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(result.Outputs("Merge.output")); got != 8 {
		t.Errorf("merged outputs = %d, want 8", got)
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := BuildWorkflow("x = 1\n", Options{}); err == nil {
		t.Error("expected error for source with no PEs")
	}
	if _, err := BuildWorkflow("def f(:\n", Options{}); err == nil {
		t.Error("expected syntax error")
	}
	// missing base __init__ call means no port tables
	bad := `
class Broken(ProducerPE):
    def __init__(self):
        self.x = 1
    def _process(self):
        return 1

g = WorkflowGraph()
b = Broken()
c = Broken()
g.connect(b, 'output', c, 'input')
`
	if _, err := BuildWorkflow(bad, Options{}); err == nil {
		t.Error("expected error for PE that skips base __init__")
	}
}

func TestGroupingConversions(t *testing.T) {
	src := `
class G(GenericPE):
    def __init__(self):
        GenericPE.__init__(self)
        self._add_input("byKey", grouping=[0, 1])
        self._add_input("bcast", grouping="all")
        self._add_input("oneone", grouping="one-to-one")
        self._add_input("plain")
`
	pe, err := NewPE(src, "G", Options{})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]dataflow.Port{}
	for _, p := range pe.Inputs() {
		byName[p.Name] = p
	}
	if byName["byKey"].Grouping.Kind != dataflow.GroupByKey || len(byName["byKey"].Grouping.Keys) != 2 {
		t.Errorf("byKey grouping: %+v", byName["byKey"].Grouping)
	}
	if byName["bcast"].Grouping.Kind != dataflow.GroupAll {
		t.Errorf("bcast grouping: %+v", byName["bcast"].Grouping)
	}
	if byName["oneone"].Grouping.Kind != dataflow.GroupOneToOne {
		t.Errorf("oneone grouping: %+v", byName["oneone"].Grouping)
	}
	if byName["plain"].Grouping.Kind != dataflow.GroupShuffle {
		t.Errorf("plain grouping: %+v", byName["plain"].Grouping)
	}
}

func TestClassSourceExtraction(t *testing.T) {
	src := `
import random
import math

class First(ProducerPE):
    def __init__(self):
        ProducerPE.__init__(self)
    def _process(self):
        return random.randint(1, 10)

class Second(ConsumerPE):
    def __init__(self):
        ConsumerPE.__init__(self)
    def _process(self, v):
        print(v)

graph = WorkflowGraph()
`
	first, err := ClassSource(src, "First")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(first, "class First(ProducerPE)") {
		t.Errorf("missing class: %s", first)
	}
	if strings.Contains(first, "class Second") || strings.Contains(first, "WorkflowGraph") {
		t.Errorf("leaked neighbours: %s", first)
	}
	if !strings.Contains(first, "import random") {
		t.Errorf("missing module imports: %s", first)
	}
	// the extracted source must itself build as a single-PE workflow
	res, err := BuildWorkflow(first, Options{Seed: 3})
	if err != nil {
		t.Fatalf("extracted source does not build: %v", err)
	}
	if res.PENames[0] != "First" {
		t.Errorf("PE names: %v", res.PENames)
	}
	if _, err := ClassSource(src, "Missing"); err == nil {
		t.Error("missing class should fail")
	}
}
